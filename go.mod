module dyncq

go 1.24
