//go:build tools

// Package tools pins the CI analysis tools as blank imports so the Go
// module machinery tracks their versions (the canonical "tools.go"
// pattern). The build tag keeps the imports out of every real build;
// `go mod tidy` in this directory still sees them and retains the
// pinned requires in go.mod.
//
// Upgrading a tool is a one-line go.mod change here, reviewed like any
// other dependency bump — CI never floats on a `go run tool@latest`.
package tools

import (
	_ "golang.org/x/vuln/cmd/govulncheck"
	_ "honnef.co/go/tools/cmd/staticcheck"
)
