// Nested tools module: pins the versions of the external analysis
// tools CI runs (staticcheck, govulncheck) without adding them — or
// their dependency trees — to the engine module. CI materialises the
// go.sum with `go mod tidy` (which respects these pins) and builds the
// tools from here; the engine module itself stays offline-buildable
// from its vendor directory.
module dyncq/tools

go 1.24

require (
	golang.org/x/vuln v1.1.4
	honnef.co/go/tools v0.6.1
)
