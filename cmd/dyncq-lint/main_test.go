package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// buildLint builds the dyncq-lint binary once per test run into a shared
// temp dir and returns its path.
func buildLint(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	bin := filepath.Join(dir, "dyncq-lint")
	if runtime.GOOS == "windows" {
		bin += ".exe"
	}
	cmd := exec.Command("go", "build", "-o", bin, "dyncq/cmd/dyncq-lint")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build dyncq-lint: %v\n%s", err, out)
	}
	return bin
}

// repoRoot locates the module root (the directory holding go.mod) from
// the test's working directory, cmd/dyncq-lint.
func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for dir := wd; ; dir = filepath.Dir(dir) {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		if filepath.Dir(dir) == dir {
			t.Fatalf("no go.mod above %s", wd)
		}
	}
}

// seedModule writes a throwaway module with one deliberate determinism
// violation in a package path the analyzer scopes to, plus an allowed
// twin, and returns the module directory. The module vendors nothing and
// imports only the stdlib, so `go vet` works offline.
func seedModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module dyncq\n\ngo 1.24\n",
		"internal/core/bad.go": `package core

import "time"

// Stamp is the seeded violation: wall-clock reads are forbidden in core.
func Stamp() int64 { return time.Now().UnixNano() }

// Allowed shows a justified suppression passing through untouched.
func Allowed() int64 {
	return time.Now().UnixNano() //dyncq:allow determinism fixture: exercising the suppression path
}
`,
	}
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// runLint runs the built binary in dir with args, returning the combined
// stdout/stderr and the exit code.
func runLint(t *testing.T, bin, dir string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("running %s: %v\n%s", bin, err, out)
		}
		code = ee.ExitCode()
	}
	return string(out), code
}

// TestSeededViolationFailsVet is the acceptance demonstration: a CI run
// over a module containing a determinism violation must fail with a
// finding naming the analyzer, and the justified allow must not fire.
func TestSeededViolationFailsVet(t *testing.T) {
	bin := buildLint(t)
	mod := seedModule(t)
	out, code := runLint(t, bin, mod, "./...")
	if code == 0 {
		t.Fatalf("expected non-zero exit on seeded violation, got 0\n%s", out)
	}
	if !strings.Contains(out, "bad.go:6") || !strings.Contains(out, "deterministic engine package") {
		t.Fatalf("expected a determinism finding at bad.go:6, got:\n%s", out)
	}
	if strings.Count(out, "time.Now") != 1 {
		t.Fatalf("expected exactly one time.Now finding (the allow must suppress the second), got:\n%s", out)
	}
}

// TestGithubModeAnnotates checks -github rewrites findings into GitHub
// Actions workflow commands on stdout.
func TestGithubModeAnnotates(t *testing.T) {
	bin := buildLint(t)
	mod := seedModule(t)
	out, code := runLint(t, bin, mod, "-github", "./...")
	if code == 0 {
		t.Fatalf("expected non-zero exit, got 0\n%s", out)
	}
	if !strings.Contains(out, "::error file=") || !strings.Contains(out, "line=6") {
		t.Fatalf("expected a ::error annotation for line 6, got:\n%s", out)
	}
}

// TestRepoIsClean runs the suite over this repository itself: after the
// burn-down, dyncq-lint ./... must exit 0. Skipped in -short mode (it
// type-checks the whole module).
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-repo vet run")
	}
	bin := buildLint(t)
	out, code := runLint(t, bin, repoRoot(t), "./...")
	if code != 0 {
		t.Fatalf("dyncq-lint found issues in the repo (exit %d):\n%s", code, out)
	}
}
