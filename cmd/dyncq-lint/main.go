// Command dyncq-lint runs the project's custom go/analysis suite (see
// internal/analysis): lockorder, epochstep, determinism,
// decodeboundary, and hotalloc — the compile-time guards for the
// engine's concurrency, epoch-lockstep, determinism, interning, and
// hot-path allocation invariants.
//
// It speaks the `go vet -vettool` protocol, so both forms work:
//
//	go build -o bin/dyncq-lint ./cmd/dyncq-lint
//	go vet -vettool=bin/dyncq-lint ./...
//
//	go run ./cmd/dyncq-lint ./...        # standalone: re-execs go vet
//	go run ./cmd/dyncq-lint -github ./... # findings as ::error annotations
//
// The -github mode rewrites findings into GitHub Actions workflow
// commands (::error file=...,line=...,col=...::message) so CI failures
// surface as PR annotations on the offending lines.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strings"

	"dyncq/internal/analysis"

	"golang.org/x/tools/go/analysis/unitchecker"
)

func main() {
	if vetProtocol(os.Args[1:]) {
		unitchecker.Main(analysis.Analyzers()...) // exits
	}

	fs := flag.NewFlagSet("dyncq-lint", flag.ExitOnError)
	github := fs.Bool("github", false, "emit findings as GitHub Actions ::error annotations")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: dyncq-lint [-github] [packages]\n\nRuns the dyncq analyzer suite via go vet. Default package pattern is ./...\n\nAnalyzers:\n")
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(fs.Output(), "  %-16s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	fs.Parse(os.Args[1:])
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	os.Exit(runVet(patterns, *github))
}

// vetProtocol reports whether the arguments are the go vet -vettool
// driver protocol rather than a human invocation: a version query
// (-V=full), a flag probe (-flags), or a unit config file.
func vetProtocol(args []string) bool {
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "-flags":
			return true
		case strings.HasSuffix(a, ".cfg"):
			return true
		}
	}
	return false
}

// findingRe matches one go vet diagnostic line: path.go:line:col: message.
var findingRe = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

// runVet re-executes this binary through go vet and streams the
// findings, optionally rewritten as GitHub annotations. Returns the
// exit code to use.
func runVet(patterns []string, github bool) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dyncq-lint: %v\n", err)
		return 2
	}
	args := append([]string{"vet", "-vettool=" + exe}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stdout = os.Stdout
	stderr, err := cmd.StderrPipe()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dyncq-lint: %v\n", err)
		return 2
	}
	if err := cmd.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "dyncq-lint: %v\n", err)
		return 2
	}
	sc := bufio.NewScanner(stderr)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if m := findingRe.FindStringSubmatch(line); m != nil && github {
			// Workflow commands are read from stdout; keep the human
			// line on stderr too so plain logs stay readable.
			fmt.Printf("::error file=%s,line=%s,col=%s::%s\n", m[1], m[2], m[3], escapeAnnotation(m[4]))
		}
		fmt.Fprintln(os.Stderr, line)
	}
	if err := cmd.Wait(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "dyncq-lint: %v\n", err)
		return 2
	}
	return 0
}

// escapeAnnotation escapes the characters the workflow-command parser
// treats specially in message data.
func escapeAnnotation(s string) string {
	r := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A")
	return r.Replace(s)
}
