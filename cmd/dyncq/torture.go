package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dyncq/internal/torture"
)

// cmdTorture drives the torture/soak harness (internal/torture) outside
// `go test`: the same seeded category matrix, runnable as a one-shot
// sweep or a time-budgeted soak. Exit status 1 means at least one
// scenario failed; every failure prints the exact `go test` repro line,
// and -failure-file records them for CI artifact upload.
func cmdTorture(args []string) error {
	fs := flag.NewFlagSet("dyncq torture", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "base seed; soak round r runs every scenario at seed+r")
	duration := fs.Duration("duration", 0, "soak budget (e.g. 10m); 0 runs the matrix exactly once")
	category := fs.String("category", "", "restrict to one category (parse, eval, error, lifecycle, concurrency, fanout)")
	failureFile := fs.String("failure-file", "", "write repro lines for every failure to this file")
	list := fs.Bool("list", false, "list the scenario matrix and exit")
	quiet := fs.Bool("quiet", false, "suppress per-round progress lines")
	if err := fs.Parse(args); err != nil {
		return err
	}
	scenarios := torture.All()
	if *category != "" {
		scenarios = torture.ByCategory(*category)
		if len(scenarios) == 0 {
			return fmt.Errorf("unknown torture category %q (want one of %s)",
				*category, strings.Join(torture.Categories(), ", "))
		}
	}
	if *list {
		for _, sc := range scenarios {
			fmt.Printf("%-12s %-28s %s\n", sc.Category, sc.Name, sc.Brief)
		}
		return nil
	}
	logf := func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) }
	if *quiet {
		logf = nil
	}
	failures := torture.Soak(scenarios, *seed, *duration, logf)
	if len(failures) == 0 {
		fmt.Printf("torture: %d scenario(s) clean (seed=%d, duration=%s)\n", len(scenarios), *seed, *duration)
		return nil
	}
	var lines []string
	for _, f := range failures {
		lines = append(lines, f.Repro())
		fmt.Fprintf(os.Stderr, "FAIL %s/%s seed=%d: %v\n  repro: %s\n",
			f.Scenario.Category, f.Scenario.Name, f.Seed, f.Err, f.Repro())
	}
	if *failureFile != "" {
		body := strings.Join(lines, "\n") + "\n"
		if err := os.WriteFile(*failureFile, []byte(body), 0o644); err != nil {
			return fmt.Errorf("%d torture failure(s); writing %s also failed: %v", len(failures), *failureFile, err)
		}
		fmt.Fprintf(os.Stderr, "torture: wrote %d repro line(s) to %s\n", len(lines), *failureFile)
	}
	return fmt.Errorf("torture: %d scenario run(s) failed", len(failures))
}
