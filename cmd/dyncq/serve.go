package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dyncq/internal/cq"
	"dyncq/internal/server"
	"dyncq/pkg/dyncq"
)

// cmdServe implements `dyncq serve`: a long-lived TCP server owning one
// workspace and speaking the line protocol of internal/server (see the
// package doc of internal/server/wire.go for the grammar). Readers are
// MVCC — an enumeration held open by one client never blocks another
// client's commit — and subscriptions stream per-commit delta frames.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("dyncq serve", flag.ExitOnError)
	addr := fs.String("addr", ":7421", "TCP listen address")
	workers := fs.Int("workers", 0, "workspace worker count (0 = sequential)")
	var queries queryFlags
	fs.Var(&queries, "query", "pre-registered query, repeatable; 'name=Q(x) :- …' or bare query text (auto-named q1, q2, …). Clients can register more at runtime.")
	outbox := fs.Int("outbox", 0, "per-connection outgoing frame queue bound (0 = default 256); a subscriber that falls further behind is resynced, never waited on")
	writeTimeout := fs.Duration("write-timeout", 0, "per-frame write deadline (0 = default 10s, negative = none); a stuck peer is disconnected")
	if err := fs.Parse(args); err != nil {
		return err
	}
	srv := server.New(server.Options{
		Workers:      *workers,
		OutboxFrames: *outbox,
		WriteTimeout: *writeTimeout,
	})
	ws := srv.Workspace()
	taken := map[string]bool{}
	next := 1
	for _, arg := range queries {
		name, text := splitNamedQuery(arg)
		q, err := cq.Parse(text)
		if err != nil {
			return fmt.Errorf("-query %q: %w", arg, err)
		}
		if name == "" {
			for ; ; next++ {
				if auto := fmt.Sprintf("q%d", next); !taken[auto] {
					name = auto
					break
				}
			}
		}
		taken[name] = true
		h, err := ws.RegisterQuery(name, q, dyncq.Options{})
		if err != nil {
			return err
		}
		fmt.Printf("query %-8s %s  [%s]\n", h.Name()+":", h.Query(), h.Strategy())
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("dyncq serve: listening on %s (workers %d)\n", l.Addr(), *workers)

	// SIGINT/SIGTERM drain live sessions (bounded by DrainTimeout)
	// instead of dropping them mid-frame.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		fmt.Fprintf(os.Stderr, "dyncq serve: %v, shutting down\n", s)
		srv.Close()
	}()

	err = srv.Serve(l)
	if err == server.ErrClosed {
		return nil
	}
	return err
}

// cmdClient implements `dyncq client`: an interactive line client for a
// running server. It is a transparent pipe — stdin lines go to the
// server verbatim, everything the server sends (responses, snapshot
// frames, subscribed delta frames) is printed as it arrives — so the
// full wire grammar is available, including subscriptions whose frames
// interleave with the prompt.
func cmdClient(args []string) error {
	fs := flag.NewFlagSet("dyncq client", flag.ExitOnError)
	addr := fs.String("addr", "localhost:7421", "server address to dial")
	timeout := fs.Duration("dial-timeout", 5*time.Second, "connect timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	conn, err := net.DialTimeout("tcp", *addr, *timeout)
	if err != nil {
		return err
	}
	defer conn.Close()
	fmt.Fprintf(os.Stderr, "connected to %s (try: register q Q(y) :- E(x,y), T(y) | apply +E(1,2) | count q | subscribe q | quit)\n", conn.RemoteAddr())

	// Server → stdout until the connection closes (the server's "bye"
	// reply to quit, a server shutdown, or a dropped link).
	done := make(chan error, 1)
	go func() {
		_, err := io.Copy(os.Stdout, conn)
		done <- err
	}()

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 64<<10), 16<<20)
	for in.Scan() {
		line := in.Text()
		if _, err := io.WriteString(conn, line+"\n"); err != nil {
			break
		}
		if strings.TrimSpace(line) == "quit" {
			break
		}
	}
	if err := in.Err(); err != nil {
		return err
	}
	// Let the server's farewell (or pending frames) flush before closing.
	select {
	case <-done:
	case <-time.After(2 * time.Second):
	}
	return nil
}
