// Command dyncq is the command-line front end of the repository: it
// loads a conjunctive query, classifies it, routes it to the best
// maintenance strategy (pkg/dyncq), applies update streams, and answers
// count/enumerate requests; its bench subcommand runs the benchmark
// harness (internal/bench) over generated workloads and writes a JSON
// report.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"dyncq/internal/bench"
	"dyncq/internal/cq"
	"dyncq/internal/dict"
	"dyncq/internal/dyndb"
	"dyncq/internal/qtree"
	"dyncq/internal/workload"
	"dyncq/pkg/dyncq"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = cmdRun(os.Args[2:])
	case "bench":
		err = cmdBench(os.Args[2:])
	case "classify":
		err = cmdClassify(os.Args[2:])
	case "torture":
		err = cmdTorture(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "client":
		err = cmdClient(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "dyncq: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dyncq:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: dyncq <subcommand> [flags]

Subcommands:
  run       load a database, apply an update stream to one shared
            workspace serving one or more live queries, count/enumerate
  bench     run the benchmark suite, write a JSON report
  classify  print the classification and routing decision for a query
  torture   run the seeded torture/soak matrix (internal/torture)
  serve     long-lived TCP query server: MVCC snapshot readers, live
            delta subscriptions (protocol: internal/server/wire.go)
  client    interactive line client for a running serve instance

Run 'dyncq <subcommand> -h' for flags.

Query syntax:     Q(x,y) :- R(x,y), S(y).   (head = free variables)
Stream syntax:    one update per line: +E(1,2) inserts, -E(1,2) deletes;
                  blank lines and #-comments are skipped. With run
                  -strings, tuple entries are arbitrary string constants
                  (dictionary-encoded) instead of int64 literals.
`)
}

// loadQuery resolves the -q/-qf flag pair.
func loadQuery(text, file string) (*cq.Query, error) {
	if (text == "") == (file == "") {
		return nil, fmt.Errorf("exactly one of -q (query text) and -qf (query file) is required")
	}
	if file != "" {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		text = strings.TrimSpace(string(data))
	}
	return cq.Parse(text)
}

// queryFlags collects the repeatable -query flag.
type queryFlags []string

func (q *queryFlags) String() string { return strings.Join(*q, " ; ") }

func (q *queryFlags) Set(v string) error {
	*q = append(*q, v)
	return nil
}

// splitNamedQuery parses one -query argument: an optional "name=" prefix
// (identifier before a '=' that precedes the query head's parenthesis)
// followed by the query text. An empty returned name means "auto-name
// me" (the caller assigns q1, q2, … skipping names already taken).
func splitNamedQuery(arg string) (name, text string) {
	if eq := strings.IndexByte(arg, '='); eq > 0 {
		open := strings.IndexByte(arg, '(')
		if open < 0 || eq < open {
			candidate := strings.TrimSpace(arg[:eq])
			if candidate != "" && !strings.ContainsAny(candidate, " \t(),:-") {
				return candidate, strings.TrimSpace(arg[eq+1:])
			}
		}
	}
	return "", strings.TrimSpace(arg)
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("dyncq run", flag.ExitOnError)
	qText := fs.String("q", "", "query text, e.g. 'Q(x) :- E(x,y), T(y)'")
	qFile := fs.String("qf", "", "file containing the query")
	var queries queryFlags
	fs.Var(&queries, "query", "live query, repeatable; 'name=Q(x) :- …' or bare query text (auto-named q1, q2, …). All registered queries share one database and one update stream.")
	dataFile := fs.String("data", "", "initial database stream (loaded before the update stream)")
	updFile := fs.String("updates", "", "update stream to apply")
	strategyName := fs.String("strategy", "auto", "maintenance strategy for every query: auto, core, ivm or recompute")
	batch := fs.Int("batch", 0, "apply streams in batches of this many updates (0 = one batch per stream)")
	parallel := fs.Int("parallel", 1, "shard workers per batch (>1: core backends apply shard deltas in parallel)")
	stringsMode := fs.Bool("strings", false, "parse stream tuple entries as string constants through the workspace dictionary instead of int64 literals")
	doCount := fs.Bool("count", false, "print |Q(D)| per query after the stream")
	doAnswer := fs.Bool("answer", false, "print whether Q(D) is nonempty, per query")
	doEnum := fs.Bool("enumerate", false, "print the result tuples, per query")
	limit := fs.Int("limit", 0, "cap on enumerated tuples per query (0 = all)")
	doStats := fs.Bool("stats", false, "print dictionary statistics (symbol count, encode hit rate) after the stream; most useful with -strings")
	if err := fs.Parse(args); err != nil {
		return err
	}
	type namedQuery struct {
		name string // "" = auto-name
		q    *cq.Query
	}
	var named []namedQuery
	for _, arg := range queries {
		name, text := splitNamedQuery(arg)
		q, err := cq.Parse(text)
		if err != nil {
			if name == "" {
				return fmt.Errorf("-query %q: %w", arg, err)
			}
			return fmt.Errorf("query %s: %w", name, err)
		}
		named = append(named, namedQuery{name, q})
	}
	if *qText != "" || *qFile != "" {
		q, err := loadQuery(*qText, *qFile)
		if err != nil {
			return err
		}
		named = append(named, namedQuery{"q", q})
	}
	if len(named) == 0 {
		return fmt.Errorf("at least one query is required (-q, -qf, or repeatable -query)")
	}
	// Auto-name the bare queries q1, q2, … skipping names the user chose
	// explicitly, so 'dyncq run -query "q2=…" -query "…"' cannot collide.
	taken := make(map[string]bool, len(named))
	for _, nq := range named {
		taken[nq.name] = nq.name != ""
	}
	next := 1
	for i := range named {
		if named[i].name != "" {
			continue
		}
		for ; ; next++ {
			if auto := fmt.Sprintf("q%d", next); !taken[auto] {
				named[i].name = auto
				taken[auto] = true
				break
			}
		}
	}
	strategy, err := dyncq.ParseStrategy(*strategyName)
	if err != nil {
		return err
	}

	ws := dyncq.NewWorkspace(dyncq.WorkspaceOptions{Workers: *parallel})
	for _, nq := range named {
		h, err := ws.RegisterQuery(nq.name, nq.q, dyncq.Options{Force: strategy})
		if err != nil {
			return err
		}
		fmt.Printf("query %-8s %s  [%s]\n", h.Name()+":", h.Query(), h.Strategy())
	}
	if *parallel > 1 {
		// Report the EFFECTIVE configuration from the workspace's own
		// introspection instead of re-deriving the shard heuristics.
		p := ws.Parallelism()
		var shardInfo []string
		for _, h := range ws.Handles() {
			if s := p.QueryShards[h.Name()]; s > 1 {
				shardInfo = append(shardInfo, fmt.Sprintf("%s=%d", h.Name(), s))
			}
		}
		detail := "no sharded query backends; store phase and handle fan-out only"
		if len(shardInfo) > 0 {
			detail = "query shards " + strings.Join(shardInfo, ",")
		}
		fmt.Printf("workers:  %d (store shards %d, %s)\n", p.Workers, p.StoreShards, detail)
	}
	var d *dict.Dict
	if *stringsMode {
		d = ws.Dict()
	}
	batchSize := *batch
	if batchSize <= 0 && *parallel > 1 {
		// Parallel workers need batches to fan out over; default to a
		// reasonable chunk instead of silently staying sequential.
		batchSize = 512
	}
	schema := ws.Schema()
	if *dataFile != "" {
		if err := loadDatabaseFile(ws, schema, *dataFile, d); err != nil {
			return err
		}
	}
	if *updFile != "" {
		if err := applyStreamFile(ws, schema, *updFile, batchSize, d); err != nil {
			return err
		}
	}
	fmt.Printf("database: %d tuples, active domain %d, %d store mutations\n",
		ws.Cardinality(), ws.ActiveDomainSize(), ws.StoreMutations())
	if *doStats {
		st := ws.Dict().Stats()
		fmt.Printf("dict:     %d symbols, %d encode hits / %d misses (hit rate %.1f%%)\n",
			st.Size, st.Hits, st.Misses, 100*st.HitRate())
	}
	for _, h := range ws.Handles() {
		if *doAnswer {
			fmt.Printf("answer %-8s %v\n", h.Name()+":", h.Answer())
		}
		if *doCount {
			fmt.Printf("count %-8s %d\n", h.Name()+":", h.Count())
		}
		if *doEnum {
			n := 0
			h.Enumerate(func(t []dyncq.Value) bool {
				fmt.Printf("%s%s\n", enumPrefix(len(named), h.Name()), formatTuple(t, d))
				n++
				return *limit == 0 || n < *limit
			})
			fmt.Printf("enumerated %d tuples for %s\n", n, h.Name())
		}
	}
	return nil
}

// enumPrefix labels enumerated tuples with their query when more than
// one query is live.
func enumPrefix(numQueries int, name string) string {
	if numQueries <= 1 {
		return ""
	}
	return name + ": "
}

// warnUnknown prints the typo warning for relations outside the query.
func warnUnknown(path string, unknown map[string]bool) {
	if len(unknown) == 0 {
		return
	}
	names := make([]string, 0, len(unknown))
	for r := range unknown {
		names = append(names, r)
	}
	sort.Strings(names)
	fmt.Fprintf(os.Stderr, "warning: %s: relations not in the query (likely a typo): %s\n",
		path, strings.Join(names, ", "))
}

// loadDatabaseFile reads an initial-database stream and feeds it to the
// workspace through the bulk Load path (reset-then-load, one counting
// pass + one weight pass on core backends) instead of replaying
// per-tuple updates. The single parse pass checks arities against the
// union query schema with line numbers and collects typo warnings. A
// non-nil dict switches the parser to string mode.
func loadDatabaseFile(ws *dyncq.Workspace, schema map[string]int, path string, d *dict.Dict) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sr := dyncq.NewStreamReader(f)
	if d != nil {
		sr.UseDict(d)
	}
	db := dyncq.NewDatabase()
	unknown := map[string]bool{}
	total := 0
	for {
		u, line, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if want, ok := schema[u.Rel]; !ok {
			unknown[u.Rel] = true
		} else if want != len(u.Tuple) {
			return fmt.Errorf("%s: line %d: %s has arity %d in the query, got tuple of length %d",
				path, line, u.Rel, want, len(u.Tuple))
		}
		if _, err := db.Apply(u); err != nil {
			return fmt.Errorf("%s: line %d: %w", path, line, err)
		}
		total++
	}
	warnUnknown(path, unknown)
	if err := ws.Load(db); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Printf("loaded:   %d commands from %s (bulk load: %d tuples)\n", total, path, db.Cardinality())
	return nil
}

// applyStreamFile streams one update file into the workspace in a
// single parse pass via dyncq.ApplyStreamReader: commands are batched
// through ApplyBatch (one shared-store application fanned out to every
// registered query), arity mismatches against the union schema are
// reported with the offending line number, and relations outside every
// query earn a typo warning — spotted on the same pass, not a separate
// parse. A non-nil dict switches the parser to string mode.
func applyStreamFile(ws *dyncq.Workspace, schema map[string]int, path string, batchSize int, d *dict.Dict) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sr := dyncq.NewStreamReader(f)
	if d != nil {
		sr.UseDict(d)
	}
	unknown := map[string]bool{}
	total := 0
	applied, err := dyncq.ApplyStreamReader(ws, sr, batchSize, func(u dyncq.Update, _ int) {
		if _, ok := schema[u.Rel]; !ok {
			unknown[u.Rel] = true
		}
		total++
	})
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	warnUnknown(path, unknown)
	if batchSize > 0 {
		fmt.Printf("applied:  %d updates from %s in batches of %d (%d net changes)\n",
			total, path, batchSize, applied)
	} else {
		fmt.Printf("applied:  %d updates from %s (%d net changes)\n", total, path, applied)
	}
	return nil
}

// formatTuple renders one result tuple. This is the decode boundary of
// the interning pipeline: enumeration streams raw interned codes
// ([]dyncq.Value) all the way here, and only at this point — in string
// mode — are codes turned back into symbols, via the read-only
// TryDecode. One builder per tuple, no intermediate string slices.
func formatTuple(t []dyncq.Value, d *dict.Dict) string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			b.WriteByte(',')
		}
		if d != nil {
			if name, ok := d.TryDecode(v); ok {
				b.WriteString(name)
				continue
			}
		}
		b.WriteString(strconv.FormatInt(int64(v), 10))
	}
	b.WriteByte(')')
	return b.String()
}

func cmdClassify(args []string) error {
	fs := flag.NewFlagSet("dyncq classify", flag.ExitOnError)
	qText := fs.String("q", "", "query text")
	qFile := fs.String("qf", "", "file containing the query")
	if err := fs.Parse(args); err != nil {
		return err
	}
	q, err := loadQuery(*qText, *qFile)
	if err != nil {
		return err
	}
	class := qtree.Classify(q)
	fmt.Printf("query: %s\n%s", q, class)
	sess, err := dyncq.New(q)
	if err != nil {
		return err
	}
	fmt.Printf("routing: %s\n", sess.Strategy())
	return nil
}

func cmdBench(args []string) error {
	if len(args) > 0 && (args[0] == "-compare" || args[0] == "--compare") {
		return cmdBenchCompare(args[1:])
	}
	if len(args) > 0 && (args[0] == "-speedup" || args[0] == "--speedup") {
		return cmdBenchSpeedup(args[1:])
	}
	fs := flag.NewFlagSet("dyncq bench", flag.ExitOnError)
	out := fs.String("out", "BENCH_PR10.json", "output JSON path")
	seed := fs.Int64("seed", 1, "workload RNG seed")
	n := fs.Int("n", 300, "star and hard-sqet case size (node count / domain); random-qh uses a fixed small domain")
	streamLen := fs.Int("updates", 2000, "measured update-stream length per case")
	maxEnum := fs.Int("max-enumerate", 10000, "cap on tuples pulled during delay measurement")
	strategiesFlag := fs.String("strategies", "core,ivm,recompute", "comma-separated strategies to measure")
	batchesFlag := fs.String("batches", "64,512", "comma-separated batch sizes for the batch phase (empty = skip)")
	workersFlag := fs.String("workers", "1,2,4", "comma-separated worker counts for the parallel phase (empty = skip)")
	sweepFlag := fs.String("sweep", "100,200,400,800", "comma-separated database sizes for the star scaling sweep (empty = skip)")
	sweepUpdates := fs.Int("sweep-updates", 500, "measured update-stream length per sweep point")
	repeat := fs.Int("repeat", 3, "repetitions per measurement; the report keeps the best latencies (steadies the regression gate)")
	multi := fs.Bool("multi", true, "run the multi-query workspace phase (K queries over one shared store)")
	multiBatch := fs.Int("multi-batch", 256, "batch size of the multi-query phase")
	multiWorkersFlag := fs.String("multi-workers", "1,2,4", "comma-separated worker counts for the multi-query scaling phase (empty = skip)")
	serverPhase := fs.Bool("server", false, "run the server phase (internal/server front door: notify latency, concurrent MVCC reader throughput)")
	readPhase := fs.Bool("read", false, "run the read phase (snapshot pinning: cold vs hot pin latency, reader throughput, cache hit rate)")
	large := fs.Bool("large", false, "run the production-scale tier (grouped schema, Zipf stream, K live queries)")
	largeTuples := fs.Int("large-tuples", 1_000_000, "initial database size of the large tier")
	largeUpdates := fs.Int("large-updates", 100_000, "measured stream length of the large tier")
	largeQueries := fs.Int("large-queries", 64, "live query count of the large tier (multiple of 4; 4 per relation group)")
	largeBatch := fs.Int("large-batch", 1024, "batch size of the large tier's update phase")
	largeWorkersFlag := fs.String("large-workers", "1,2,4", "comma-separated worker counts for the large tier")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var strategies []dyncq.Strategy
	for _, name := range strings.Split(*strategiesFlag, ",") {
		st, err := dyncq.ParseStrategy(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		strategies = append(strategies, st)
	}
	batchSizes, err := parseIntList(*batchesFlag)
	if err != nil {
		return fmt.Errorf("-batches: %w", err)
	}
	workerCounts, err := parseIntList(*workersFlag)
	if err != nil {
		return fmt.Errorf("-workers: %w", err)
	}
	sweepSizes, err := parseIntList(*sweepFlag)
	if err != nil {
		return fmt.Errorf("-sweep: %w", err)
	}
	cases, err := DefaultSuite(*seed, *n, *streamLen, *maxEnum, batchSizes)
	if err != nil {
		return err
	}
	for i := range cases {
		cases[i].Repeat = *repeat
		cases[i].Workers = workerCounts
	}
	rep, err := bench.Run(cases, strategies)
	if err != nil {
		return err
	}
	if len(sweepSizes) > 0 {
		sweep, err := StarSweep(*seed, sweepSizes, *sweepUpdates, *maxEnum)
		if err != nil {
			return err
		}
		sweep.Repeat = *repeat
		sw, err := bench.RunSweep(sweep, strategies)
		if err != nil {
			return err
		}
		rep.Sweeps = append(rep.Sweeps, sw)
	}
	if *multi {
		multiWorkers, err := parseIntList(*multiWorkersFlag)
		if err != nil {
			return fmt.Errorf("-multi-workers: %w", err)
		}
		multiCases, err := DefaultMultiSuite(*seed, *n, *streamLen, *multiBatch, *repeat)
		if err != nil {
			return err
		}
		for i := range multiCases {
			multiCases[i].Workers = multiWorkers
		}
		rep.Multi, err = bench.RunMultiAll(multiCases)
		if err != nil {
			return err
		}
		// matches_solo and matches_workers_1 are correctness bits, not
		// latencies: a divergence between the shared workspace and an
		// independent session, or between worker counts, must fail the
		// bench run itself (and with it the CI smoke step) — the
		// percentile-diffing compare gate would never see it.
		for _, m := range rep.Multi {
			for _, q := range m.Queries {
				if !q.MatchesSolo {
					err = fmt.Errorf("multi case %s: query %s [%s] diverges from its independent session", m.Name, q.Name, q.Strategy)
					fmt.Fprintln(os.Stderr, "dyncq bench:", err)
				}
			}
			for _, sc := range m.Scaling {
				if !sc.MatchesWorkers1 {
					err = fmt.Errorf("multi case %s: workers=%d result diverges from workers=1", m.Name, sc.Workers)
					fmt.Fprintln(os.Stderr, "dyncq bench:", err)
				}
			}
		}
		if err != nil {
			return err
		}
	}
	if *large {
		if *largeQueries < 4 || *largeQueries%4 != 0 {
			return fmt.Errorf("-large-queries must be a positive multiple of 4 (4 queries per relation group), got %d", *largeQueries)
		}
		largeWorkers, err := parseIntList(*largeWorkersFlag)
		if err != nil {
			return fmt.Errorf("-large-workers: %w", err)
		}
		lcfg := bench.DefaultLargeConfig(*seed)
		lcfg.Groups = *largeQueries / 4
		lcfg.Tuples = *largeTuples
		lcfg.Updates = *largeUpdates
		lcfg.BatchSize = *largeBatch
		lcfg.Workers = largeWorkers
		lr, err := bench.RunLarge(lcfg)
		if err != nil {
			return err
		}
		rep.Large = append(rep.Large, lr)
		// Like matches_solo in the multi phase: cross-worker divergence
		// at scale is a correctness failure of the run itself, not a
		// latency for the compare gate to diff.
		for _, workers := range lr.Diverged() {
			err = fmt.Errorf("large tier %s: workers=%d result diverges from workers=1", lr.Name, workers)
			fmt.Fprintln(os.Stderr, "dyncq bench:", err)
		}
		if err != nil {
			return err
		}
	}
	if *serverPhase {
		rep.Server, err = bench.RunServerSuite(bench.DefaultServerSuite())
		if err != nil {
			return err
		}
	}
	if *readPhase {
		rep.Read, err = bench.RunReadSuite(bench.DefaultReadSuite())
		if err != nil {
			return err
		}
		// Record the cold→hot pin improvement in the notes: the whole
		// point of the phase, and the number the acceptance bar reads.
		for _, rr := range rep.Read {
			if rr.HotPinNS.P50 > 0 {
				rep.Notes = append(rep.Notes, fmt.Sprintf(
					"read %s: pin p50 %dns cold (copy-on-pin) -> %dns hot (cached), %.0fx; hit rate %.3f; %s",
					rr.Name, rr.ColdPinNS.P50, rr.HotPinNS.P50,
					float64(rr.ColdPinNS.P50)/float64(rr.HotPinNS.P50),
					rr.CacheHitRate, rr.HotPinAlloc))
			}
		}
	}
	rep.GoVersion = runtime.Version()
	if err := rep.WriteJSON(*out); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d cases, %d sweeps; %d CPU, GOMAXPROCS %d)\n",
		*out, len(rep.Cases), len(rep.Sweeps), rep.NumCPU, rep.Gomaxprocs)
	for _, c := range rep.Cases {
		fmt.Printf("\n%s  %s  (q-hierarchical: %v)\n", c.Name, c.Query, c.QHierarchical)
		for _, s := range c.Strategies {
			fmt.Printf("  %-10s preprocess %8.2fms (bulk %8.2fms)  updates %8.0f/s (p99 %6dns)  count %d in %6dns  delay p99 %6dns over %d tuples\n",
				s.Strategy, float64(s.PreprocessNS)/1e6, float64(s.BulkLoadNS)/1e6, s.UpdatesPerSec, s.UpdateNS.P99,
				s.Count, s.CountNS, s.DelayNS.P99, s.EnumeratedTuples)
			fmt.Printf("             update %s  enumerate %s\n", s.UpdateAlloc, s.EnumerateAlloc)
			for _, b := range s.Batches {
				fmt.Printf("             batch %5d: %8.0f updates/s over %d batches (%d net)\n",
					b.BatchSize, b.UpdatesPerSec, b.Batches, b.NetApplied)
			}
			for _, p := range s.Parallel {
				mode := "sequential"
				if p.Sharded {
					mode = "sharded"
				}
				fmt.Printf("             workers %2d (%s): %8.0f updates/s  speedup %.2fx\n",
					p.Workers, mode, p.UpdatesPerSec, p.SpeedupVs1)
			}
		}
	}
	for _, sw := range rep.Sweeps {
		fmt.Printf("\nsweep %s  %s\n", sw.Name, sw.Query)
		for _, p := range sw.Points {
			fmt.Printf("  n=%-6d", p.N)
			for _, s := range p.Strategies {
				fmt.Printf("  %s p50 %6dns p99 %6dns", s.Strategy, s.UpdateNS.P50, s.UpdateNS.P99)
			}
			fmt.Println()
		}
	}
	for _, m := range rep.Multi {
		fmt.Printf("\nmulti %s  %d queries over one workspace, %d updates in batches of %d\n",
			m.Name, m.NumQueries, m.StreamSize, m.BatchSize)
		fmt.Printf("  store mutations: shared %d vs %d across %d solo sessions (%.1fx saved)\n",
			m.SharedStoreMutations, m.SoloStoreMutations, m.NumQueries,
			float64(m.SoloStoreMutations)/float64(max(m.SharedStoreMutations, 1)))
		fmt.Printf("  shared pipeline: %8.0f updates/s  batch p50 %8dns p99 %8dns  %s  (solo total %.2fms, shared %.2fms)\n",
			m.UpdatesPerSec, m.BatchNS.P50, m.BatchNS.P99, m.Alloc,
			float64(m.SoloTotalNS)/1e6, float64(m.SharedTotalNS)/1e6)
		for _, q := range m.Queries {
			ok := "identical to solo"
			if !q.MatchesSolo {
				ok = "DIVERGES FROM SOLO"
			}
			fmt.Printf("  %-10s [%s] maintain p50 %8dns p99 %8dns  solo-batch p50 %8dns  count %d  %s\n",
				q.Name, q.Strategy, q.MaintainNS.P50, q.MaintainNS.P99, q.SoloUpdateNS.P50, q.Count, ok)
		}
		for _, sc := range m.Scaling {
			fmt.Printf("  scaling workers %2d: %8.0f updates/s  speedup %.2fx\n",
				sc.Workers, sc.UpdatesPerSec, sc.SpeedupVs1)
		}
	}
	for _, sv := range rep.Server {
		fmt.Printf("\nserver %s  %d subscribers, %d readers, %d batches of %d\n",
			sv.Name, sv.Subscribers, sv.Readers, sv.Batches, sv.BatchSize)
		fmt.Printf("  commit p50 %8dns p99 %8dns  notify p50 %8dns p99 %8dns  reads %8.0f/s  dropped frames %d\n",
			sv.CommitNS.P50, sv.CommitNS.P99, sv.NotifyNS.P50, sv.NotifyNS.P99, sv.ReadsPerSec, sv.DroppedFrames)
	}
	for _, rr := range rep.Read {
		fmt.Printf("\nread %s  [%s] %d tuples\n", rr.Name, rr.Strategy, rr.Tuples)
		fmt.Printf("  pin p50 cold %8dns -> hot %6dns (%s)  reads quiet %9.0f/s busy %9.0f/s  commit p50 %8dns p99 %8dns  hit rate %.3f\n",
			rr.ColdPinNS.P50, rr.HotPinNS.P50, rr.HotPinAlloc,
			rr.QuietReadsPerSec, rr.BusyReadsPerSec, rr.CommitNS.P50, rr.CommitNS.P99, rr.CacheHitRate)
	}
	for _, lg := range rep.Large {
		fmt.Printf("\nlarge %s  %d queries over %d groups, %d initial tuples, %d updates in batches of %d (zipf s=%.2f, p-delete %.2f)\n",
			lg.Name, lg.NumQueries, lg.Groups, lg.InitSize, lg.StreamSize, lg.BatchSize, lg.ZipfS, lg.PDelete)
		for _, run := range lg.Runs {
			ok := "identical to workers=1"
			if !run.MatchesWorkers1 {
				ok = "DIVERGES FROM workers=1"
			}
			fmt.Printf("  workers %2d: %8.0f updates/s  speedup %.2fx  (%s)\n",
				run.Workers, run.UpdatesPerSec, run.SpeedupVs1, ok)
			for _, p := range run.Phases {
				fmt.Printf("    %-8s %10.2fms over %8d ops  p99 %10dns  %s\n",
					p.Name, float64(p.TotalNS)/1e6, p.Ops, p.NS.P99, p.Alloc)
			}
		}
	}
	return nil
}

// cmdBenchSpeedup implements the scaling summary:
//
//	dyncq bench -speedup report.json [-min-scaling 1.2] [-gate]
//
// It prints one line per parallel measurement and a notice for every
// sharded workers=2 measurement scaling below the threshold on a
// multi-core machine. Without -gate the notices are advisory (exit 0;
// ::notice annotations under GitHub Actions). With -gate any notice
// fails the command — the CI scaling gate, run against a report the
// runner itself recorded. On a single-CPU machine the summary suppresses
// notices entirely (parallel speedup is physically impossible there), so
// the gate only ever bites where scaling is actually expected.
func cmdBenchSpeedup(args []string) error {
	opt := bench.SpeedupOptions{MinAtTwo: 1.2}
	gate := false
	var files []string
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-min-scaling", "--min-scaling":
			i++
			if i >= len(args) {
				return fmt.Errorf("-min-scaling needs a value")
			}
			v, err := strconv.ParseFloat(args[i], 64)
			if err != nil || v <= 0 {
				return fmt.Errorf("-min-scaling: invalid value %q", args[i])
			}
			opt.MinAtTwo = v
		case "-gate", "--gate":
			gate = true
		case "-h", "--help":
			fmt.Fprintln(os.Stderr, "usage: dyncq bench -speedup report.json [-min-scaling 1.2] [-gate]")
			return nil
		default:
			if strings.HasPrefix(args[i], "-") {
				return fmt.Errorf("bench -speedup: unknown flag %q", args[i])
			}
			files = append(files, args[i])
		}
	}
	if len(files) != 1 {
		return fmt.Errorf("bench -speedup wants exactly one report path, got %d", len(files))
	}
	rep, err := bench.LoadReport(files[0])
	if err != nil {
		return err
	}
	lines, notices := bench.SpeedupSummary(rep, opt)
	for _, l := range lines {
		fmt.Println(l)
	}
	onActions := os.Getenv("GITHUB_ACTIONS") != ""
	for _, n := range notices {
		fmt.Println("notice:", n)
		if onActions && !gate {
			fmt.Printf("::notice title=bench scaling::%s\n", n)
		}
		if onActions && gate {
			fmt.Printf("::error title=bench scaling gate::%s\n", n)
		}
	}
	if len(notices) == 0 {
		fmt.Printf("scaling ok (threshold %.2fx at workers=2)\n", opt.MinAtTwo)
	}
	if gate && len(notices) > 0 {
		return fmt.Errorf("scaling gate: %d measurement(s) under %.2fx at workers=2", len(notices), opt.MinAtTwo)
	}
	return nil
}

// DefaultMultiSuite builds the multi-query workspace case: K = 4 mixed
// core/ivm/recompute queries over one shared {E/2, S/1, T/1} schema and
// one update stream — the workload behind the "shared store applied
// once per batch, results identical to independent sessions" claim.
func DefaultMultiSuite(seed int64, n, streamLen, batchSize, repeat int) ([]bench.MultiConfig, error) {
	rng := rand.New(rand.NewSource(seed + 4))
	schema := map[string]int{"E": 2, "S": 1, "T": 1}
	queries := []struct {
		name, text string
		force      dyncq.Strategy
	}{
		{"star", "Q(y) :- E(x,y), T(y)", dyncq.StrategyAuto},         // core
		{"hard", "Q(x,y) :- S(x), E(x,y), T(y)", dyncq.StrategyAuto}, // ivm
		{"src", "Q(x) :- E(x,y)", dyncq.StrategyAuto},                // core
		{"audit", "Q(y) :- E(x,y), T(y)", dyncq.StrategyRecompute},
	}
	var named []bench.NamedQuery
	for _, q := range queries {
		parsed, err := cq.Parse(q.text)
		if err != nil {
			return nil, err
		}
		named = append(named, bench.NamedQuery{Name: q.name, Query: parsed, Force: q.force})
	}
	initial := workload.RandomDatabase(rng, schema, n, 3*n).Updates()
	stream := workload.RandomStream(rng, schema, n, streamLen, 0.3)
	return []bench.MultiConfig{{
		Name:      "workspace-4q",
		Queries:   named,
		Initial:   initial,
		Stream:    stream,
		BatchSize: batchSize,
		Repeat:    repeat,
	}}, nil
}

// cmdBenchCompare implements the perf-regression gate:
//
//	dyncq bench -compare old.json new.json [-tolerance 0.30]
//	            [-p99-tolerance 0.90] [-floor-ns 5000] [-include-sweeps]
//
// Flags may appear before or after the two report paths. Exits non-zero
// (returns an error) when any latency percentile regressed: medians are
// held to -tolerance, p99 tails to -p99-tolerance (default 3× the median
// tolerance — tails jitter), and values below the floor are ignored as
// timer noise.
func cmdBenchCompare(args []string) error {
	opt := bench.DefaultCompareOptions()
	var files []string
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-tolerance", "--tolerance":
			i++
			if i >= len(args) {
				return fmt.Errorf("-tolerance needs a value")
			}
			v, err := strconv.ParseFloat(args[i], 64)
			if err != nil || v < 0 {
				return fmt.Errorf("-tolerance: invalid value %q", args[i])
			}
			opt.Tolerance = v
		case "-p99-tolerance", "--p99-tolerance":
			i++
			if i >= len(args) {
				return fmt.Errorf("-p99-tolerance needs a value")
			}
			v, err := strconv.ParseFloat(args[i], 64)
			if err != nil || v < 0 {
				return fmt.Errorf("-p99-tolerance: invalid value %q", args[i])
			}
			opt.P99Tolerance = v
		case "-include-sweeps", "--include-sweeps":
			opt.IncludeSweeps = true
		case "-floor-ns", "--floor-ns":
			i++
			if i >= len(args) {
				return fmt.Errorf("-floor-ns needs a value")
			}
			v, err := strconv.ParseInt(args[i], 10, 64)
			if err != nil || v < 0 {
				return fmt.Errorf("-floor-ns: invalid value %q", args[i])
			}
			opt.FloorNS = v
		case "-h", "--help":
			fmt.Fprintln(os.Stderr, "usage: dyncq bench -compare old.json new.json [-tolerance 0.30] [-p99-tolerance 0.90] [-floor-ns 5000] [-include-sweeps]")
			if len(args) == 1 {
				return nil
			}
			// A gate command must not share the success exit path with a
			// stray -h in a mangled invocation: no comparison ran.
			return fmt.Errorf("bench -compare: -h given, no comparison performed")
		default:
			if strings.HasPrefix(args[i], "-") {
				return fmt.Errorf("bench -compare: unknown flag %q", args[i])
			}
			files = append(files, args[i])
		}
	}
	if len(files) != 2 {
		return fmt.Errorf("bench -compare wants exactly two report paths, got %d", len(files))
	}
	oldRep, err := bench.LoadReport(files[0])
	if err != nil {
		return err
	}
	newRep, err := bench.LoadReport(files[1])
	if err != nil {
		return err
	}
	regs, notices := bench.CompareWithNotices(oldRep, newRep, opt)
	// Phases the baseline predates are skipped with a visible notice,
	// not an error: an old baseline keeps gating everything it can.
	for _, n := range notices {
		fmt.Fprintln(os.Stderr, "notice:", n)
	}
	if len(regs) == 0 {
		fmt.Printf("no regressions: %s vs %s (tolerance %.0f%%, floor %dns, %d phase(s) skipped)\n",
			files[0], files[1], opt.Tolerance*100, opt.FloorNS, len(notices))
		return nil
	}
	for _, r := range regs {
		fmt.Fprintln(os.Stderr, "regression:", r)
	}
	return fmt.Errorf("%d latency regression(s) beyond %.0f%% tolerance", len(regs), opt.Tolerance*100)
}

func parseIntList(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, err
		}
		if v <= 0 {
			return nil, fmt.Errorf("size %d is not positive", v)
		}
		out = append(out, v)
	}
	return out, nil
}

// DefaultSuite builds the standard benchmark cases:
//
//   - star: the paper's scaling workload for the q-hierarchical query
//     Q(y) :- E(x,y), T(y) (core vs the baselines);
//   - hard-sqet: ϕS-E-T = Q(x,y) :- S(x), E(x,y), T(y), the canonical
//     non-q-hierarchical query where Theorem 3.3's lower bound bites and
//     routing must fall back to IVM;
//   - random-qh: a seed-derived random q-hierarchical query under a mixed
//     insert/delete stream;
//   - deep-paths: a 5-variable q-hierarchical query with arity-3 atoms
//     and a self-join, whose long root paths make the per-update
//     bottom-up propagation expensive — the workload where bulk Load's
//     deferred weight pass pays off most.
//
// batchSizes configures the batch phase of every case (see
// bench.Config.BatchSizes).
func DefaultSuite(seed int64, n, streamLen, maxEnum int, batchSizes []int) ([]bench.Config, error) {
	rng := rand.New(rand.NewSource(seed))

	starQ, err := cq.Parse("Q(y) :- E(x,y), T(y)")
	if err != nil {
		return nil, err
	}
	starInit := workload.StarSchemaStream(rng, n, 3)
	starStream := workload.RandomStream(rng, starQ.Schema(), n, streamLen, 0.3)

	hardQ, err := cq.Parse("Q(x,y) :- S(x), E(x,y), T(y)")
	if err != nil {
		return nil, err
	}
	hardInit := workload.RandomDatabase(rng, hardQ.Schema(), n, n).Updates()
	hardStream := workload.RandomStream(rng, hardQ.Schema(), n, streamLen, 0.3)

	// Small domain so the multi-way joins of the random query actually
	// produce result tuples to enumerate.
	randQ := workload.RandomQHierarchical(rng, workload.DefaultQHOptions())
	randStream := workload.RandomStream(rng, randQ.Schema(), 8, streamLen, 0.4)

	deepQ, err := cq.Parse("Q(x,y,z,yp,zp) :- R(x,y,z), R(x,y,zp), E(x,y), E(x,yp), S(x,y,z)")
	if err != nil {
		return nil, err
	}
	deepDomain := n / 10
	if deepDomain < 8 {
		deepDomain = 8
	}
	deepInit := workload.RandomDatabase(rng, deepQ.Schema(), deepDomain, n).Updates()
	deepStream := workload.RandomStream(rng, deepQ.Schema(), deepDomain, streamLen, 0.35)

	return []bench.Config{
		{Name: "star", Query: starQ, Initial: starInit, Stream: starStream, MaxEnumerate: maxEnum, BatchSizes: batchSizes},
		{Name: "hard-sqet", Query: hardQ, Initial: hardInit, Stream: hardStream, MaxEnumerate: maxEnum, BatchSizes: batchSizes},
		{Name: "random-qh", Query: randQ, Initial: nil, Stream: randStream, MaxEnumerate: maxEnum, BatchSizes: batchSizes},
		{Name: "deep-paths", Query: deepQ, Initial: deepInit, Stream: deepStream, MaxEnumerate: maxEnum, BatchSizes: batchSizes},
	}, nil
}

// StarSweep builds the scaling sweep over database size n for the star
// workload: per-update latency of the core engine must stay flat as n
// grows (Theorem 3.2's O(1) updates) while the IVM baseline's residual
// joins grow, which the sweep records point by point.
func StarSweep(seed int64, sizes []int, streamLen, maxEnum int) (bench.SweepConfig, error) {
	starQ, err := cq.Parse("Q(y) :- E(x,y), T(y)")
	if err != nil {
		return bench.SweepConfig{}, err
	}
	return bench.SweepConfig{
		Name:  "star-scaling",
		Query: starQ,
		Sizes: sizes,
		Generate: func(n int) (initial, stream []dyndb.Update) {
			// Fresh, size-seeded RNG per point: deterministic in (seed, n).
			rng := rand.New(rand.NewSource(seed + int64(n)))
			initial = workload.StarSchemaStream(rng, n, 3)
			stream = workload.RandomStream(rng, starQ.Schema(), n, streamLen, 0.3)
			return initial, stream
		},
		MaxEnumerate: maxEnum,
	}, nil
}
