// Command dyncq is the command-line front end of the repository: it
// loads a conjunctive query, classifies it, routes it to the best
// maintenance strategy (pkg/dyncq), applies update streams, and answers
// count/enumerate requests; its bench subcommand runs the benchmark
// harness (internal/bench) over generated workloads and writes a JSON
// report.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"

	"dyncq/internal/bench"
	"dyncq/internal/cq"
	"dyncq/internal/qtree"
	"dyncq/internal/workload"
	"dyncq/pkg/dyncq"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = cmdRun(os.Args[2:])
	case "bench":
		err = cmdBench(os.Args[2:])
	case "classify":
		err = cmdClassify(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "dyncq: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dyncq:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: dyncq <subcommand> [flags]

Subcommands:
  run       load a database, apply an update stream, count/enumerate
  bench     run the benchmark suite, write a JSON report
  classify  print the classification and routing decision for a query

Run 'dyncq <subcommand> -h' for flags.

Query syntax:     Q(x,y) :- R(x,y), S(y).   (head = free variables)
Stream syntax:    one update per line: +E(1,2) inserts, -E(1,2) deletes;
                  blank lines and #-comments are skipped.
`)
}

// loadQuery resolves the -q/-qf flag pair.
func loadQuery(text, file string) (*cq.Query, error) {
	if (text == "") == (file == "") {
		return nil, fmt.Errorf("exactly one of -q (query text) and -qf (query file) is required")
	}
	if file != "" {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		text = strings.TrimSpace(string(data))
	}
	return cq.Parse(text)
}

func loadStream(path string) ([]dyncq.Update, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dyncq.ParseStream(f)
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("dyncq run", flag.ExitOnError)
	qText := fs.String("q", "", "query text, e.g. 'Q(x) :- E(x,y), T(y)'")
	qFile := fs.String("qf", "", "file containing the query")
	dataFile := fs.String("data", "", "initial database stream (loaded before the update stream)")
	updFile := fs.String("updates", "", "update stream to apply")
	strategyName := fs.String("strategy", "auto", "maintenance strategy: auto, core, ivm or recompute")
	doCount := fs.Bool("count", false, "print |Q(D)| after the stream")
	doAnswer := fs.Bool("answer", false, "print whether Q(D) is nonempty")
	doEnum := fs.Bool("enumerate", false, "print the result tuples")
	limit := fs.Int("limit", 0, "cap on enumerated tuples (0 = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	q, err := loadQuery(*qText, *qFile)
	if err != nil {
		return err
	}
	strategy, err := dyncq.ParseStrategy(*strategyName)
	if err != nil {
		return err
	}
	sess, err := dyncq.NewWithOptions(q, dyncq.Options{Force: strategy})
	if err != nil {
		return err
	}
	fmt.Printf("query:    %s\n", q)
	fmt.Printf("strategy: %s\n", sess.Strategy())
	schema := q.Schema()
	for _, path := range []string{*dataFile, *updFile} {
		if path == "" {
			continue
		}
		updates, err := loadStream(path)
		if err != nil {
			return err
		}
		unknown := map[string]bool{}
		for _, u := range updates {
			if _, ok := schema[u.Rel]; !ok {
				unknown[u.Rel] = true
			}
		}
		if len(unknown) > 0 {
			names := make([]string, 0, len(unknown))
			for r := range unknown {
				names = append(names, r)
			}
			sort.Strings(names)
			fmt.Fprintf(os.Stderr, "warning: %s: relations not in the query (likely a typo): %s\n",
				path, strings.Join(names, ", "))
		}
		if err := sess.ApplyAll(updates); err != nil {
			return err
		}
		fmt.Printf("applied:  %d updates from %s\n", len(updates), path)
	}
	fmt.Printf("database: %d tuples, active domain %d\n", sess.Cardinality(), sess.ActiveDomainSize())
	if *doAnswer {
		fmt.Printf("answer:   %v\n", sess.Answer())
	}
	if *doCount {
		fmt.Printf("count:    %d\n", sess.Count())
	}
	if *doEnum {
		n := 0
		sess.Enumerate(func(t []dyncq.Value) bool {
			fmt.Println(formatTuple(t))
			n++
			return *limit == 0 || n < *limit
		})
		fmt.Printf("enumerated %d tuples\n", n)
	}
	return nil
}

func formatTuple(t []dyncq.Value) string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = fmt.Sprint(v)
	}
	return "(" + strings.Join(parts, ",") + ")"
}

func cmdClassify(args []string) error {
	fs := flag.NewFlagSet("dyncq classify", flag.ExitOnError)
	qText := fs.String("q", "", "query text")
	qFile := fs.String("qf", "", "file containing the query")
	if err := fs.Parse(args); err != nil {
		return err
	}
	q, err := loadQuery(*qText, *qFile)
	if err != nil {
		return err
	}
	class := qtree.Classify(q)
	fmt.Printf("query: %s\n%s", q, class)
	sess, err := dyncq.New(q)
	if err != nil {
		return err
	}
	fmt.Printf("routing: %s\n", sess.Strategy())
	return nil
}

func cmdBench(args []string) error {
	fs := flag.NewFlagSet("dyncq bench", flag.ExitOnError)
	out := fs.String("out", "BENCH_PR1.json", "output JSON path")
	seed := fs.Int64("seed", 1, "workload RNG seed")
	n := fs.Int("n", 300, "star and hard-sqet case size (node count / domain); random-qh uses a fixed small domain")
	streamLen := fs.Int("updates", 2000, "measured update-stream length per case")
	maxEnum := fs.Int("max-enumerate", 10000, "cap on tuples pulled during delay measurement")
	strategiesFlag := fs.String("strategies", "core,ivm,recompute", "comma-separated strategies to measure")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var strategies []dyncq.Strategy
	for _, name := range strings.Split(*strategiesFlag, ",") {
		st, err := dyncq.ParseStrategy(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		strategies = append(strategies, st)
	}
	cases, err := DefaultSuite(*seed, *n, *streamLen, *maxEnum)
	if err != nil {
		return err
	}
	rep, err := bench.Run(cases, strategies)
	if err != nil {
		return err
	}
	rep.GoVersion = runtime.Version()
	if err := rep.WriteJSON(*out); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d cases)\n", *out, len(rep.Cases))
	for _, c := range rep.Cases {
		fmt.Printf("\n%s  %s  (q-hierarchical: %v)\n", c.Name, c.Query, c.QHierarchical)
		for _, s := range c.Strategies {
			fmt.Printf("  %-10s preprocess %8.2fms  updates %8.0f/s (p99 %6dns)  count %d in %6dns  delay p99 %6dns over %d tuples\n",
				s.Strategy, float64(s.PreprocessNS)/1e6, s.UpdatesPerSec, s.UpdateNS.P99,
				s.Count, s.CountNS, s.DelayNS.P99, s.EnumeratedTuples)
		}
	}
	return nil
}

// DefaultSuite builds the standard benchmark cases:
//
//   - star: the paper's scaling workload for the q-hierarchical query
//     Q(y) :- E(x,y), T(y) (core vs the baselines);
//   - hard-sqet: ϕS-E-T = Q(x,y) :- S(x), E(x,y), T(y), the canonical
//     non-q-hierarchical query where Theorem 3.3's lower bound bites and
//     routing must fall back to IVM;
//   - random-qh: a seed-derived random q-hierarchical query under a mixed
//     insert/delete stream.
func DefaultSuite(seed int64, n, streamLen, maxEnum int) ([]bench.Config, error) {
	rng := rand.New(rand.NewSource(seed))

	starQ, err := cq.Parse("Q(y) :- E(x,y), T(y)")
	if err != nil {
		return nil, err
	}
	starInit := workload.StarSchemaStream(rng, n, 3)
	starStream := workload.RandomStream(rng, starQ.Schema(), n, streamLen, 0.3)

	hardQ, err := cq.Parse("Q(x,y) :- S(x), E(x,y), T(y)")
	if err != nil {
		return nil, err
	}
	hardInit := workload.RandomDatabase(rng, hardQ.Schema(), n, n).Updates()
	hardStream := workload.RandomStream(rng, hardQ.Schema(), n, streamLen, 0.3)

	// Small domain so the multi-way joins of the random query actually
	// produce result tuples to enumerate.
	randQ := workload.RandomQHierarchical(rng, workload.DefaultQHOptions())
	randStream := workload.RandomStream(rng, randQ.Schema(), 8, streamLen, 0.4)

	return []bench.Config{
		{Name: "star", Query: starQ, Initial: starInit, Stream: starStream, MaxEnumerate: maxEnum},
		{Name: "hard-sqet", Query: hardQ, Initial: hardInit, Stream: hardStream, MaxEnumerate: maxEnum},
		{Name: "random-qh", Query: randQ, Initial: nil, Stream: randStream, MaxEnumerate: maxEnum},
	}, nil
}
