package dyncq

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"unicode"

	"dyncq/internal/dyndb"
)

// This file implements the textual update-stream format the CLI reads.
// One command per line:
//
//	+E(1,2)     insert E(1,2)
//	-E(1,2)     delete E(1,2)
//	E(1,2)      insert (the sign is optional for database files)
//	# comment   (blank lines and #-comments are skipped)
//
// Tuple entries are int64 constants.

// ParseUpdate parses one update command line.
func ParseUpdate(line string) (Update, error) {
	s := strings.TrimSpace(line)
	op := dyndb.OpInsert
	switch {
	case strings.HasPrefix(s, "+"):
		s = strings.TrimSpace(s[1:])
	case strings.HasPrefix(s, "-"):
		op = dyndb.OpDelete
		s = strings.TrimSpace(s[1:])
	}
	open := strings.IndexByte(s, '(')
	if open <= 0 || !strings.HasSuffix(s, ")") {
		return Update{}, fmt.Errorf("malformed update %q (want [+|-]R(v1,…,vr))", line)
	}
	rel := strings.TrimSpace(s[:open])
	if !validRelName(rel) {
		return Update{}, fmt.Errorf("malformed update %q: invalid relation name %q", line, rel)
	}
	body := s[open+1 : len(s)-1]
	var tuple []Value
	for _, f := range strings.Split(body, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			return Update{}, fmt.Errorf("malformed update %q: empty tuple entry", line)
		}
		v, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return Update{}, fmt.Errorf("malformed update %q: %w", line, err)
		}
		tuple = append(tuple, v)
	}
	if len(tuple) == 0 {
		return Update{}, fmt.Errorf("malformed update %q: empty tuple", line)
	}
	return Update{Op: op, Rel: rel, Tuple: tuple}, nil
}

// validRelName mirrors the identifier rules of the query syntax (cq.Parse):
// a letter or underscore followed by letters, digits, underscores or primes.
func validRelName(rel string) bool {
	if rel == "" {
		return false
	}
	for i, r := range rel {
		letter := r == '_' || unicode.IsLetter(r)
		if i == 0 {
			if !letter {
				return false
			}
			continue
		}
		if !letter && r != '\'' && !unicode.IsDigit(r) {
			return false
		}
	}
	return true
}

// ParseStream reads an update stream, one command per line, skipping
// blank lines and #-comments.
func ParseStream(r io.Reader) ([]Update, error) {
	var out []Update
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		u, err := ParseUpdate(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		out = append(out, u)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// FormatUpdate renders an update in the stream syntax, the inverse of
// ParseUpdate.
func FormatUpdate(u Update) string {
	var b strings.Builder
	if u.Op == dyndb.OpDelete {
		b.WriteByte('-')
	} else {
		b.WriteByte('+')
	}
	b.WriteString(u.Rel)
	b.WriteByte('(')
	for i, v := range u.Tuple {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatInt(v, 10))
	}
	b.WriteByte(')')
	return b.String()
}
