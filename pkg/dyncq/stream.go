package dyncq

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"unicode"

	"dyncq/internal/dict"
	"dyncq/internal/dyndb"
)

// This file implements the textual update-stream format the CLI reads.
// One command per line:
//
//	+E(1,2)     insert E(1,2)
//	-E(1,2)     delete E(1,2)
//	E(1,2)      insert (the sign is optional for database files)
//	# comment   (blank lines and #-comments are skipped)
//
// Tuple entries are int64 constants. The parser is strict: exactly one
// optional sign, a valid relation identifier, one parenthesised tuple,
// and nothing after the closing parenthesis. Malformed input is rejected
// with an error naming the offence (doubled sign, trailing garbage,
// non-integer entry, …) rather than whatever the nearest scanner rule
// happened to produce.

// ParseUpdate parses one update command line.
func ParseUpdate(line string) (Update, error) {
	return parseUpdateWith(line, nil)
}

// ParseUpdateDict parses one update command line whose tuple entries are
// arbitrary string constants (anything without a comma or parenthesis,
// surrounding whitespace trimmed), encoding them through d — the
// -strings mode of the CLI stream parser. Note "42" in dict mode is a
// string constant, not the integer 42.
func ParseUpdateDict(line string, d *dict.Dict) (Update, error) {
	if d == nil {
		return Update{}, fmt.Errorf("malformed update %q: nil dictionary for string mode", line)
	}
	return parseUpdateWith(line, d)
}

// parseUpdateWith parses one command, decoding tuple entries as int64
// constants (d == nil) or as dictionary-encoded strings (d != nil).
func parseUpdateWith(line string, d *dict.Dict) (Update, error) {
	s := strings.TrimSpace(line)
	if s == "" {
		return Update{}, fmt.Errorf("malformed update %q: empty command (want [+|-]R(v1,…,vr))", line)
	}
	op := dyndb.OpInsert
	switch s[0] {
	case '+':
		s = strings.TrimSpace(s[1:])
	case '-':
		op = dyndb.OpDelete
		s = strings.TrimSpace(s[1:])
	}
	// A second sign after the first is a doubled sign ("+-E(1,2)"), not a
	// weird relation name: reject it explicitly.
	if s != "" && (s[0] == '+' || s[0] == '-') {
		return Update{}, fmt.Errorf("malformed update %q: doubled sign", line)
	}
	open := strings.IndexByte(s, '(')
	if open <= 0 {
		return Update{}, fmt.Errorf("malformed update %q (want [+|-]R(v1,…,vr))", line)
	}
	closing := strings.IndexByte(s, ')')
	switch {
	case closing < 0:
		return Update{}, fmt.Errorf("malformed update %q: missing ')'", line)
	case closing != len(s)-1:
		return Update{}, fmt.Errorf("malformed update %q: garbage after ')': %q", line, s[closing+1:])
	}
	rel := strings.TrimSpace(s[:open])
	if !validRelName(rel) {
		return Update{}, fmt.Errorf("malformed update %q: invalid relation name %q", line, rel)
	}
	body := s[open+1 : closing]
	var tuple []Value
	for i, f := range strings.Split(body, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			if i == 0 && !strings.Contains(body, ",") {
				return Update{}, fmt.Errorf("malformed update %q: empty tuple", line)
			}
			return Update{}, fmt.Errorf("malformed update %q: empty tuple entry %d", line, i+1)
		}
		if d != nil {
			tuple = append(tuple, d.Encode(f))
			continue
		}
		v, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return Update{}, fmt.Errorf("malformed update %q: tuple entry %d (%q) is not an int64", line, i+1, f)
		}
		tuple = append(tuple, v)
	}
	return Update{Op: op, Rel: rel, Tuple: tuple}, nil
}

// validRelName mirrors the identifier rules of the query syntax (cq.Parse):
// a letter or underscore followed by letters, digits, underscores or primes.
func validRelName(rel string) bool {
	if rel == "" {
		return false
	}
	for i, r := range rel {
		letter := r == '_' || unicode.IsLetter(r)
		if i == 0 {
			if !letter {
				return false
			}
			continue
		}
		if !letter && r != '\'' && !unicode.IsDigit(r) {
			return false
		}
	}
	return true
}

// StreamReader reads an update stream command by command, tracking line
// numbers so errors — both parse errors here and apply-time errors in
// ApplyStream — can name the offending line. Blank lines and #-comments
// are skipped.
type StreamReader struct {
	sc   *bufio.Scanner
	line int
	dict *dict.Dict
}

// NewStreamReader returns a reader over r. Lines up to 16MiB are
// accepted.
func NewStreamReader(r io.Reader) *StreamReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &StreamReader{sc: sc}
}

// UseDict switches the reader to string mode: tuple entries are parsed
// as arbitrary string constants and encoded through d (ParseUpdateDict)
// instead of int64 literals. Call it before the first Next.
func (r *StreamReader) UseDict(d *dict.Dict) { r.dict = d }

// Next returns the next update and its 1-based line number. At the end
// of the stream it returns io.EOF; parse and read errors carry the line
// number.
func (r *StreamReader) Next() (Update, int, error) {
	for r.sc.Scan() {
		r.line++
		line := strings.TrimSpace(r.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		u, err := parseUpdateWith(line, r.dict)
		if err != nil {
			return Update{}, r.line, fmt.Errorf("line %d: %w", r.line, err)
		}
		return u, r.line, nil
	}
	if err := r.sc.Err(); err != nil {
		// I/O and scanner errors (e.g. a line over the 16MiB cap) strike
		// after the last successfully read line — point there so the
		// offending region is locatable, like every parse error.
		return Update{}, r.line, fmt.Errorf("after line %d: %w", r.line, err)
	}
	return Update{}, r.line, io.EOF
}

// ParseStream reads a whole update stream, one command per line.
func ParseStream(r io.Reader) ([]Update, error) {
	var out []Update
	sr := NewStreamReader(r)
	for {
		u, _, err := sr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, u)
	}
}

// streamApplier is the slice of the session API ApplyStream needs;
// *Session, *ConcurrentSession and *Workspace all satisfy it (the
// workspace's Schema is the union over its registered queries).
type streamApplier interface {
	Schema() map[string]int
	ApplyBatch(updates []Update) (int, error)
}

// Schema returns the query's relation→arity map (see cq.Query.Schema).
func (s *Session) Schema() map[string]int { return s.h.query.Schema() }

// Schema returns the query's relation→arity map. Immutable after
// construction.
func (c *ConcurrentSession) Schema() map[string]int { return c.s.Schema() }

// ApplyStream reads the update stream from r and applies it to the
// session in batches of batchSize commands (batchSize <= 0 applies one
// batch at the end). Every command's arity is checked against the
// session's query schema at apply time, so a mismatch is reported with
// the offending line number — something the backends' own arity errors
// cannot do once the text positions are gone. Returns the number of net
// commands that changed the database, stopping at the first error.
func ApplyStream(sess streamApplier, r io.Reader, batchSize int) (int, error) {
	return ApplyStreamFunc(sess, r, batchSize, nil)
}

// ApplyStreamFunc is ApplyStream with an observer: observe (if non-nil)
// is called for every parsed command with its line number, before the
// command is batched — the hook the CLI uses to count commands and warn
// about relations outside the query on the same single parse pass.
func ApplyStreamFunc(sess streamApplier, r io.Reader, batchSize int, observe func(u Update, line int)) (int, error) {
	return ApplyStreamReader(sess, NewStreamReader(r), batchSize, observe)
}

// ApplyStreamReader is ApplyStreamFunc over an already-constructed
// StreamReader — the entry point for callers that configured the reader
// first (UseDict for the CLI's -strings mode).
func ApplyStreamReader(sess streamApplier, sr *StreamReader, batchSize int, observe func(u Update, line int)) (int, error) {
	schema := sess.Schema()
	applied := 0
	var pending []Update
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		n, err := sess.ApplyBatch(pending)
		applied += n
		pending = pending[:0]
		return err
	}
	for {
		u, line, err := sr.Next()
		if err == io.EOF {
			return applied, flush()
		}
		if err != nil {
			return applied, err
		}
		if want, ok := schema[u.Rel]; ok && want != len(u.Tuple) {
			return applied, fmt.Errorf("line %d: %s has arity %d in the query, got tuple of length %d",
				line, u.Rel, want, len(u.Tuple))
		}
		if observe != nil {
			observe(u, line)
		}
		pending = append(pending, u)
		if batchSize > 0 && len(pending) >= batchSize {
			if err := flush(); err != nil {
				return applied, err
			}
		}
	}
}

// FormatUpdate renders an update in the stream syntax, the inverse of
// ParseUpdate.
func FormatUpdate(u Update) string {
	var b strings.Builder
	if u.Op == dyndb.OpDelete {
		b.WriteByte('-')
	} else {
		b.WriteByte('+')
	}
	b.WriteString(u.Rel)
	b.WriteByte('(')
	for i, v := range u.Tuple {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatInt(v, 10))
	}
	b.WriteByte(')')
	return b.String()
}
