package dyncq

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"dyncq/internal/cq"
	"dyncq/internal/dyndb"
	"dyncq/internal/workload"
)

// snapshotsIdentical asserts two snapshots of the same query at the
// same version are byte-identical: same header, same rows, same order.
func snapshotsIdentical(t *testing.T, got, want *QuerySnapshot, where string) {
	t.Helper()
	if got.Version() != want.Version() {
		t.Fatalf("%s: version %d vs %d", where, got.Version(), want.Version())
	}
	if got.Len() != want.Len() || got.Arity() != want.Arity() {
		t.Fatalf("%s: shape (%d,%d) vs (%d,%d)", where, got.Len(), got.Arity(), want.Len(), want.Arity())
	}
	if len(got.flat) != len(want.flat) {
		t.Fatalf("%s: flat length %d vs %d", where, len(got.flat), len(want.flat))
	}
	for i := range got.flat {
		if got.flat[i] != want.flat[i] {
			row := i / got.Arity()
			t.Fatalf("%s: row %d differs: %v vs %v", where, row, got.Tuple(row), want.Tuple(row))
		}
	}
}

// TestSnapshotAdvanceMatchesFreshPin: a cache advanced commit-by-commit
// (delta patch or rebuild, whichever the crossover picks) is
// byte-identical at EVERY version of a seeded stream to a fresh
// copy-on-pin snapshot at that version — for all three strategies, with
// and without a delta capture feeding the patch path, across single
// updates, batches, and a mid-stream Load.
func TestSnapshotAdvanceMatchesFreshPin(t *testing.T) {
	for _, force := range []Strategy{StrategyCore, StrategyIVM, StrategyRecompute} {
		for _, capture := range []bool{true, false} {
			name := force.String()
			if capture {
				name += "/capture"
			}
			t.Run(name, func(t *testing.T) {
				rng := rand.New(rand.NewSource(1031))
				ws := NewWorkspace(WorkspaceOptions{})
				q := cq.MustParse("Q(x,y) :- E(x,y), T(y)")
				// Two registrations of the same query over the shared
				// store: "adv" keeps its cache alive across every commit
				// (pinned each version, so the advance path maintains
				// it); "fresh" is evicted before each pin, forcing the
				// copy-on-pin materialisation the cache replaces.
				adv, err := ws.RegisterQuery("adv", q, Options{Force: force})
				if err != nil {
					t.Fatal(err)
				}
				fresh, err := ws.RegisterQuery("fresh", q, Options{Force: force})
				if err != nil {
					t.Fatal(err)
				}
				if capture {
					if err := ws.CaptureDeltas("adv", func(DeltaEvent) {}); err != nil {
						t.Fatal(err)
					}
				}
				adv.Snapshot() // prime the cache at the empty version

				check := func(where string) {
					t.Helper()
					fresh.EvictSnapshot()
					want := fresh.Snapshot()
					got := adv.Snapshot()
					if got2 := adv.CachedSnapshot(); got2 != got {
						t.Fatalf("%s: cache not stable across pins", where)
					}
					// Different handles, same query, same stream: the
					// maintained results must agree row for row (core
					// order is a function of the shared update history;
					// the other strategies are canonically sorted).
					if got.Name() != "adv" || want.Name() != "fresh" {
						t.Fatalf("%s: names %q/%q", where, got.Name(), want.Name())
					}
					got = &QuerySnapshot{name: "q", version: got.version, epoch: got.epoch,
						card: got.card, adom: got.adom, arity: got.arity, n: got.n, flat: got.flat}
					want = &QuerySnapshot{name: "q", version: want.version, epoch: want.epoch,
						card: want.card, adom: want.adom, arity: want.arity, n: want.n, flat: want.flat}
					snapshotsIdentical(t, got, want, where)
				}

				stream := workload.RandomStream(rng, q.Schema(), 12, 160, 0.35)
				for i, u := range stream[:60] {
					if _, err := ws.Apply(u); err != nil {
						t.Fatal(err)
					}
					check("single update " + string(rune('0'+i%10)))
				}
				for i := 60; i+20 <= len(stream); i += 20 {
					if _, err := ws.ApplyBatch(stream[i : i+20]); err != nil {
						t.Fatal(err)
					}
					check("batch")
				}
				db := dyndb.New()
				for _, u := range []Update{
					dyndb.Insert("E", 1, 2), dyndb.Insert("E", 7, 2), dyndb.Insert("T", 2),
				} {
					if _, err := db.Apply(u); err != nil {
						t.Fatal(err)
					}
				}
				if err := ws.Load(db); err != nil {
					t.Fatal(err)
				}
				check("after Load")
				for _, u := range workload.RandomStream(rng, q.Schema(), 12, 40, 0.3) {
					if _, err := ws.Apply(u); err != nil {
						t.Fatal(err)
					}
					check("post-Load update")
				}

				st := adv.SnapshotCacheStats()
				if st.Hits == 0 {
					t.Fatal("advancing cache never served a hit")
				}
				if capture && force != StrategyCore && st.Patched == 0 {
					t.Fatalf("capture-fed %s cache never took the delta-patch path: %+v", force, st)
				}
				if force == StrategyCore && st.Patched > 0 {
					// Core results here have arity 2; only arity-0
					// header refreshes may count as patches for core.
					t.Fatalf("core cache claims delta patches: %+v", st)
				}
			})
		}
	}
}

// TestSnapshotRePinZeroAlloc: re-pinning an unchanged version is one
// pointer load — zero allocations, zero enumeration, same shared
// snapshot, hit counter advancing.
func TestSnapshotRePinZeroAlloc(t *testing.T) {
	ws := NewWorkspace(WorkspaceOptions{})
	h, err := ws.Register("q", "Q(x,y) :- E(x,y)")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	if _, err := ws.ApplyBatch(workload.RandomStream(rng, map[string]int{"E": 2}, 40, 500, 0.1)); err != nil {
		t.Fatal(err)
	}
	s0 := h.Snapshot()
	before := h.SnapshotCacheStats()
	var s *QuerySnapshot
	if n := testing.AllocsPerRun(200, func() { s = h.Snapshot() }); n != 0 {
		t.Fatalf("re-pin allocates %.1f per op, want 0", n)
	}
	if s != s0 {
		t.Fatal("re-pin returned a different snapshot than the cached one")
	}
	after := h.SnapshotCacheStats()
	if after.Misses != before.Misses {
		t.Fatalf("re-pin materialised: misses %d -> %d", before.Misses, after.Misses)
	}
	if after.Hits <= before.Hits {
		t.Fatalf("hit counter did not advance: %d -> %d", before.Hits, after.Hits)
	}
}

// TestSnapshotDemandDecay: a cache that stops being pinned is dropped
// after snapDemandGrace commits instead of taxing every commit forever,
// and the next pin re-materialises.
func TestSnapshotDemandDecay(t *testing.T) {
	ws := NewWorkspace(WorkspaceOptions{})
	h, err := ws.Register("q", "Q(x,y) :- E(x,y)")
	if err != nil {
		t.Fatal(err)
	}
	h.Snapshot()
	for i := 0; i < snapDemandGrace; i++ {
		if _, err := ws.Apply(dyndb.Insert("E", Value(i), Value(i))); err != nil {
			t.Fatal(err)
		}
		if h.snap.Load() == nil {
			t.Fatalf("cache dropped after %d commits, grace is %d", i+1, snapDemandGrace)
		}
	}
	if _, err := ws.Apply(dyndb.Insert("E", 999, 999)); err != nil {
		t.Fatal(err)
	}
	if h.snap.Load() != nil {
		t.Fatal("cache survived past the demand grace with no pins")
	}
	if st := h.SnapshotCacheStats(); st.Invalidated == 0 {
		t.Fatalf("decay not counted as invalidation: %+v", st)
	}
	s := h.Snapshot() // re-pin re-materialises and re-arms
	if s == nil || s.Version() != ws.Version() {
		t.Fatal("re-pin after decay did not materialise a current snapshot")
	}
}

// TestSnapshotUnregisterInvalidates: Unregister drops the cache so a
// re-registered name can never be served a stale buffer.
func TestSnapshotUnregisterInvalidates(t *testing.T) {
	ws := NewWorkspace(WorkspaceOptions{})
	h, err := ws.Register("q", "Q(x) :- S(x)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ws.Apply(dyndb.Insert("S", 1)); err != nil {
		t.Fatal(err)
	}
	h.Snapshot()
	if !ws.Unregister("q") {
		t.Fatal("unregister failed")
	}
	if h.snap.Load() != nil {
		t.Fatal("unregistered handle still holds a cached snapshot")
	}
	h2, err := ws.Register("q", "Q(x) :- T(x)")
	if err != nil {
		t.Fatal(err)
	}
	if got := h2.Snapshot(); got.Len() != 0 {
		t.Fatalf("re-registered query sees %d stale tuples", got.Len())
	}
}

// TestSnapshotPinRace: N goroutines pinning (mixing the lock-free probe
// and the full pin) while a writer commits. Every pinned snapshot must
// be internally consistent and at a version the workspace actually
// reached; run under -race this also proves the fast path publishes
// safely.
func TestSnapshotPinRace(t *testing.T) {
	ws := NewWorkspace(WorkspaceOptions{})
	h, err := ws.Register("q", "Q(x,y) :- E(x,y)")
	if err != nil {
		t.Fatal(err)
	}
	const (
		pinners = 8
		commits = 400
	)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for p := 0; p < pinners; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for !stop.Load() {
				var s *QuerySnapshot
				if p%2 == 0 {
					s = h.Snapshot()
				} else if s = h.CachedSnapshot(); s == nil {
					continue
				}
				if len(s.flat) != s.Len()*s.Arity() {
					t.Errorf("pinned snapshot shape broken: n=%d arity=%d flat=%d", s.Len(), s.Arity(), len(s.flat))
					return
				}
				for i := 0; i < s.Len(); i++ {
					if tup := s.Tuple(i); len(tup) != 2 {
						t.Errorf("tuple %d has arity %d", i, len(tup))
						return
					}
				}
				if v := s.Version(); v > ws.Version() {
					t.Errorf("snapshot version %d ahead of workspace", v)
					return
				}
			}
		}(p)
	}
	rng := rand.New(rand.NewSource(99))
	for _, u := range workload.RandomStream(rng, map[string]int{"E": 2}, 25, commits, 0.3) {
		if _, err := ws.Apply(u); err != nil {
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()
}

// TestPatchSortedFlat: the merge patch against a brute-force reference
// (apply delta to row set, re-sort) over randomized cases.
func TestPatchSortedFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 300; iter++ {
		arity := 1 + rng.Intn(3)
		rows := map[string][]Value{}
		for i, n := 0, rng.Intn(30); i < n; i++ {
			row := make([]Value, arity)
			for k := range row {
				row[k] = Value(rng.Intn(8))
			}
			rows[fmtRow(row)] = row
		}
		var prevRows, removed [][]Value
		for _, r := range rows {
			prevRows = append(prevRows, r)
		}
		sortTuplesLex(prevRows)
		prev := make([]Value, 0, len(prevRows)*arity)
		for _, r := range prevRows {
			prev = append(prev, r...)
		}
		var added [][]Value
		for _, r := range prevRows {
			if rng.Float64() < 0.3 {
				removed = append(removed, r)
				delete(rows, fmtRow(r))
			}
		}
		for i, n := 0, rng.Intn(8); i < n; i++ {
			row := make([]Value, arity)
			for k := range row {
				row[k] = Value(8 + rng.Intn(8)) // disjoint domain: Added ∩ prev = ∅
			}
			if _, dup := rows[fmtRow(row)]; dup {
				continue
			}
			rows[fmtRow(row)] = row
			added = append(added, row)
		}
		sortTuplesLex(added)
		sortTuplesLex(removed)

		got := patchSortedFlat(prev, arity, added, removed)
		var wantRows [][]Value
		for _, r := range rows {
			wantRows = append(wantRows, r)
		}
		sortTuplesLex(wantRows)
		want := make([]Value, 0, len(wantRows)*arity)
		for _, r := range wantRows {
			want = append(want, r...)
		}
		if len(got) != len(want) {
			t.Fatalf("iter %d: patched length %d, want %d", iter, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("iter %d: patched buffer diverges at %d", iter, i)
			}
		}
		if cap(got) != len(want) {
			t.Fatalf("iter %d: patch over-allocated: cap %d, want exactly %d", iter, cap(got), len(want))
		}
	}
}

func fmtRow(r []Value) string {
	b := make([]byte, 0, len(r)*4)
	for _, v := range r {
		b = append(b, byte(v), ',')
	}
	return string(b)
}

// TestSnapshotTuplesSharesFlat: Tuples slices straight out of the flat
// buffer — one slice-header array allocation, rows aliasing flat.
func TestSnapshotTuplesSharesFlat(t *testing.T) {
	ws := NewWorkspace(WorkspaceOptions{})
	h, err := ws.Register("q", "Q(x,y) :- E(x,y)")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := ws.Apply(dyndb.Insert("E", Value(i), Value(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	s := h.Snapshot()
	rows := s.Tuples()
	if len(rows) != s.Len() {
		t.Fatalf("Tuples returned %d rows, want %d", len(rows), s.Len())
	}
	for i, row := range rows {
		if &row[0] != &s.flat[i*s.arity] {
			t.Fatalf("row %d does not alias the flat buffer", i)
		}
		if cap(row) != s.arity {
			t.Fatalf("row %d capacity %d leaks past its row (arity %d)", i, cap(row), s.arity)
		}
	}
}
