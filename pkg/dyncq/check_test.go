package dyncq

import (
	"strings"
	"testing"
)

func TestCheckInvariantsHealthyWorkspace(t *testing.T) {
	ws := NewWorkspace(WorkspaceOptions{})
	if _, err := ws.Register("core", "Q(y) :- E(x,y), T(y)"); err != nil {
		t.Fatal(err)
	}
	// An IVM query so the shared index set exists and the epoch-lockstep
	// check has something to verify.
	if _, err := ws.Register("hard", "Q(x,y) :- S(x), E(x,y), T(y)"); err != nil {
		t.Fatal(err)
	}
	if err := ws.CheckInvariants(); err != nil {
		t.Fatalf("fresh workspace: %v", err)
	}
	updates := []Update{
		Insert("E", 1, 2), Insert("E", 2, 3), Insert("T", 2), Insert("S", 1),
		Delete("E", 1, 2), Insert("E", 1, 2),
	}
	for _, u := range updates {
		if _, err := ws.Apply(u); err != nil {
			t.Fatal(err)
		}
		if err := ws.CheckInvariants(); err != nil {
			t.Fatalf("after %s: %v", u, err)
		}
	}
	// Force index builds by reading the IVM query, then re-check.
	ws.Handle("hard").Count()
	if _, err := ws.ApplyBatch([]Update{Insert("E", 5, 6), Insert("T", 6), Delete("S", 1)}); err != nil {
		t.Fatal(err)
	}
	if err := ws.CheckInvariants(); err != nil {
		t.Fatalf("after batch: %v", err)
	}
}

func TestCheckInvariantsDetectsBypassedMutation(t *testing.T) {
	ws := NewWorkspace(WorkspaceOptions{})
	if _, err := ws.Register("hard", "Q(x,y) :- S(x), E(x,y), T(y)"); err != nil {
		t.Fatal(err)
	}
	if _, err := ws.Insert("E", 1, 2); err != nil {
		t.Fatal(err)
	}
	before := ws.StoreEpoch()
	// Mutate the shared store directly, bypassing the update pipeline —
	// exactly the silent movement the epoch lockstep is there to catch.
	if _, err := ws.store.Insert("E", 9, 9); err != nil {
		t.Fatal(err)
	}
	if ws.StoreEpoch() == before {
		t.Fatal("direct store mutation did not advance the epoch")
	}
	err := ws.CheckInvariants()
	if err == nil || !strings.Contains(err.Error(), "epoch") {
		t.Fatalf("CheckInvariants = %v, want epoch-lockstep violation", err)
	}
}
