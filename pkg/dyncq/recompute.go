package dyncq

import (
	"fmt"

	"dyncq/internal/cq"
	"dyncq/internal/dyndb"
	"dyncq/internal/eval"
)

// recompute is the recompute-from-scratch strategy: updates only touch
// the stored database; Count, Answer and Enumerate re-evaluate the query
// with internal/eval. Updates are as cheap as the database operation, but
// every read pays full join cost — the static baseline the dynamic
// strategies are measured against.
type recompute struct {
	q      *cq.Query
	db     *dyndb.Database
	schema map[string]int
}

func newRecompute(q *cq.Query) (*recompute, error) {
	return &recompute{q: q, db: dyndb.New(), schema: q.Schema()}, nil
}

func (r *recompute) Apply(u dyndb.Update) (bool, error) {
	if want, ok := r.schema[u.Rel]; ok && want != len(u.Tuple) {
		return false, fmt.Errorf("recompute: %s has arity %d in query, got tuple of length %d", u.Rel, want, len(u.Tuple))
	}
	return r.db.Apply(u)
}

func (r *recompute) Count() uint64 { return uint64(eval.Count(r.q, r.db)) }

func (r *recompute) Answer() bool { return eval.Answer(r.q, r.db) }

func (r *recompute) Enumerate(yield func(tuple []Value) bool) {
	eval.Evaluate(r.q, r.db).Each(yield)
}

func (r *recompute) Cardinality() int { return r.db.Cardinality() }

func (r *recompute) ActiveDomainSize() int { return r.db.ActiveDomainSize() }
