package dyncq

import (
	"fmt"

	"dyncq/internal/cq"
	"dyncq/internal/dyndb"
	"dyncq/internal/eval"
)

// recompute is the recompute-from-scratch strategy: it keeps no state of
// its own at all — the workspace owns the shared store, updates cost the
// store mutation only, and Count, Answer and Enumerate re-evaluate the
// query over the store with internal/eval. Updates are as cheap as the
// database operation, but every read pays full join cost — the static
// baseline the dynamic strategies are measured against.
type recompute struct {
	q      *cq.Query
	store  *dyndb.Database
	schema map[string]int
}

// newRecomputeOn builds the strategy over the workspace's shared store.
func newRecomputeOn(q *cq.Query, store *dyndb.Database) *recompute {
	return &recompute{q: q, store: store, schema: q.Schema()}
}

// validate checks the shared store against the query schema — the
// rebuild step of a strategy with no materialised state.
func (r *recompute) validate() error {
	for _, rel := range r.store.Relations() {
		if want, ok := r.schema[rel]; ok && want != r.store.Relation(rel).Arity() {
			return fmt.Errorf("recompute: %s has arity %d in query, %d in the shared store", rel, want, r.store.Relation(rel).Arity())
		}
	}
	return nil
}

func (r *recompute) Count() uint64 { return uint64(eval.Count(r.q, r.store)) }

func (r *recompute) Answer() bool { return eval.Answer(r.q, r.store) }

// Enumerate re-evaluates the query and streams the result. The yielded
// slice follows the uniform contract of Session.Enumerate (callee-owned,
// valid only during the call) even though this backend yields slices of
// a throwaway result set today — callers must not rely on backend
// accidents that are stronger than the contract.
func (r *recompute) Enumerate(yield func(tuple []Value) bool) {
	eval.Evaluate(r.q, r.store).Each(yield)
}
