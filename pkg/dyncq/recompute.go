package dyncq

import (
	"fmt"

	"dyncq/internal/cq"
	"dyncq/internal/dyndb"
	"dyncq/internal/eval"
)

// recompute is the recompute-from-scratch strategy: updates only touch
// the stored database; Count, Answer and Enumerate re-evaluate the query
// with internal/eval. Updates are as cheap as the database operation, but
// every read pays full join cost — the static baseline the dynamic
// strategies are measured against.
type recompute struct {
	q      *cq.Query
	db     *dyndb.Database
	schema map[string]int
}

func newRecompute(q *cq.Query) (*recompute, error) {
	return &recompute{q: q, db: dyndb.New(), schema: q.Schema()}, nil
}

func (r *recompute) Apply(u dyndb.Update) (bool, error) {
	if want, ok := r.schema[u.Rel]; ok && want != len(u.Tuple) {
		return false, fmt.Errorf("recompute: %s has arity %d in query, got tuple of length %d", u.Rel, want, len(u.Tuple))
	}
	return r.db.Apply(u)
}

// ApplyBatch applies the coalesced net commands to the stored database.
// No view maintenance happens here at all — the strategy recomputes on
// read, so a batch costs its database operations plus at most one
// recompute at the next Count/Answer/Enumerate, however large it is.
// Arity-against-schema errors reject the batch before any change, as in
// the other backends.
func (r *recompute) ApplyBatch(updates []dyndb.Update) (int, error) {
	net := dyndb.Coalesce(updates)
	for _, u := range net {
		if want, ok := r.schema[u.Rel]; ok && want != len(u.Tuple) {
			return 0, fmt.Errorf("recompute: %s has arity %d in query, got tuple of length %d", u.Rel, want, len(u.Tuple))
		}
	}
	applied := 0
	for _, u := range net {
		changed, err := r.db.Apply(u)
		if err != nil {
			return applied, err
		}
		if changed {
			applied++
		}
	}
	return applied, nil
}

// Load adopts the initial database wholesale, with the uniform
// reset-then-load contract: after Load the strategy stores exactly db,
// discarding earlier updates (see pkg/dyncq.Session.Load). A failed
// Load (a relation clashing with the query schema's arity) leaves the
// strategy storing the EMPTY database; either way the prior state is
// discarded.
func (r *recompute) Load(db *dyndb.Database) error {
	for _, rel := range db.Relations() {
		if want, ok := r.schema[rel]; ok && want != db.Relation(rel).Arity() {
			r.db = dyndb.New()
			return fmt.Errorf("recompute: %s has arity %d in query, %d in the loaded database", rel, want, db.Relation(rel).Arity())
		}
	}
	r.db = db.Clone()
	return nil
}

func (r *recompute) Count() uint64 { return uint64(eval.Count(r.q, r.db)) }

func (r *recompute) Answer() bool { return eval.Answer(r.q, r.db) }

// Enumerate re-evaluates the query and streams the result. The yielded
// slice follows the uniform contract of Session.Enumerate (callee-owned,
// valid only during the call) even though this backend yields slices of
// a throwaway result set today — callers must not rely on backend
// accidents that are stronger than the contract.
func (r *recompute) Enumerate(yield func(tuple []Value) bool) {
	eval.Evaluate(r.q, r.db).Each(yield)
}

func (r *recompute) Cardinality() int { return r.db.Cardinality() }

func (r *recompute) ActiveDomainSize() int { return r.db.ActiveDomainSize() }
