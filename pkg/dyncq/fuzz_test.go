package dyncq

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzParseUpdate fuzzes the stream-format parser, seeded with the
// accept/reject corpus of the unit tests. Properties: the parser never
// panics; every accepted command has a valid relation name, a non-empty
// tuple, and round-trips exactly through FormatUpdate → ParseUpdate;
// and commands with a doubled sign or text after the closing parenthesis
// are never accepted. Run the baked-in corpus with go test; explore with
// go test -fuzz=FuzzParseUpdate ./pkg/dyncq.
func FuzzParseUpdate(f *testing.F) {
	for _, seed := range []string{
		// accepted forms
		"+E(1,2)", "E(1,2)", "-E(1,2)", "  - T( 7 ) ", "+R_1(-3,0,42)",
		"E'(9223372036854775807)", "_x(-9223372036854775808)",
		// rejected forms
		"", "E", "E()", "+(1)", "E(1", "E(a)", "E(1,,2)", "+-E(1,2)",
		"1E(1)", "E x(1)", "--E(1)", "E(1,2)x", "E(1,2) # c", "E(1)(2)",
		"E(1 2)", "E(0x1)", "E(1,2,)", "+", "-", "E((1))", "E(١)",
		"#E(1)", "\x00E(1)", "E(18446744073709551615)",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, line string) {
		u, err := ParseUpdate(line)
		if err != nil {
			return // rejection is always acceptable; not panicking is the point
		}
		if !validRelName(u.Rel) {
			t.Fatalf("ParseUpdate(%q) accepted invalid relation name %q", line, u.Rel)
		}
		if len(u.Tuple) == 0 {
			t.Fatalf("ParseUpdate(%q) accepted an empty tuple", line)
		}
		// No doubled sign can have been accepted.
		s := strings.TrimSpace(line)
		if len(s) > 0 && (s[0] == '+' || s[0] == '-') {
			rest := strings.TrimSpace(s[1:])
			if len(rest) > 0 && (rest[0] == '+' || rest[0] == '-') {
				t.Fatalf("ParseUpdate(%q) accepted a doubled sign", line)
			}
		}
		// Nothing after the closing parenthesis can have been accepted.
		if i := strings.IndexByte(s, ')'); i >= 0 && i != len(s)-1 {
			t.Fatalf("ParseUpdate(%q) accepted trailing garbage", line)
		}
		// Round trip: format and reparse must reproduce the update exactly.
		formatted := FormatUpdate(u)
		if !utf8.ValidString(formatted) {
			t.Fatalf("FormatUpdate(%v) produced invalid UTF-8", u)
		}
		u2, err := ParseUpdate(formatted)
		if err != nil {
			t.Fatalf("round trip of %q: ParseUpdate(%q): %v", line, formatted, err)
		}
		if u2.Op != u.Op || u2.Rel != u.Rel || len(u2.Tuple) != len(u.Tuple) {
			t.Fatalf("round trip of %q: %v != %v", line, u2, u)
		}
		for i := range u.Tuple {
			if u.Tuple[i] != u2.Tuple[i] {
				t.Fatalf("round trip of %q: tuple diverges at %d", line, i)
			}
		}
	})
}
