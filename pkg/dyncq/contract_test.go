package dyncq

import (
	"math/rand"
	"testing"

	"dyncq/internal/cq"
	"dyncq/internal/dyndb"
	"dyncq/internal/eval"
	"dyncq/internal/workload"
)

// This file pins the two cross-backend contracts of the session layer:
//
//   - Enumerate yields callee-owned slices (valid only during the call;
//     retention requires a copy, which Tuples performs), and an abusive
//     caller that mutates the yielded slice cannot corrupt the session;
//   - Load is reset-then-load on every backend: after Load the session
//     represents exactly the loaded database.

// TestEnumerateContract drives every backend through the same data and
// checks the aliasing rules: copied yields must equal Tuples() and the
// oracle; Tuples() must return freshly allocated slices (mutation-proof);
// and mutating the yielded slice inside yield must corrupt neither the
// rest of the enumeration's copied values nor the session state.
func TestEnumerateContract(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	queries := []*cq.Query{
		cq.MustParse("Q(y) :- E(x,y), T(y)"),
		cq.MustParse("Q(x,y) :- S(x), E(x,y), T(y)"),
		cq.MustParse("Q(x,u) :- S(x), U(u)"),
	}
	for i := 0; i < 3; i++ {
		queries = append(queries, workload.RandomQHierarchical(rng, workload.DefaultQHOptions()))
	}
	for _, q := range queries {
		db := workload.RandomDatabase(rng, q.Schema(), 6, 40)
		want := eval.Evaluate(q, db)
		for _, st := range []Strategy{StrategyAuto, StrategyIVM, StrategyRecompute} {
			s, err := NewWithOptions(q, Options{Force: st})
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Load(db); err != nil {
				t.Fatal(err)
			}
			// 1. Copied yields agree with Tuples() and the oracle.
			var copied [][]Value
			s.Enumerate(func(tu []Value) bool {
				copied = append(copied, append([]Value(nil), tu...))
				return true
			})
			if !sameTuples(copied, s.Tuples()) {
				t.Fatalf("%s [%v]: copied enumeration disagrees with Tuples()", q, s.Strategy())
			}
			if !sameTuples(copied, want.Tuples()) {
				t.Fatalf("%s [%v]: enumeration disagrees with oracle", q, s.Strategy())
			}
			// 2. Tuples() hands out fresh slices: scribbling over them must
			// not be visible to a second call.
			got := s.Tuples()
			for _, tu := range got {
				for i := range tu {
					tu[i] = -999
				}
			}
			if len(got) > 0 && len(got[0]) > 0 && !sameTuples(s.Tuples(), want.Tuples()) {
				t.Fatalf("%s [%v]: mutating Tuples() output corrupted a later Tuples()", q, s.Strategy())
			}
			// 3. An abusive yield that scribbles over every slice it is
			// handed: values copied BEFORE the scribble must stay correct,
			// and the session must remain fully intact afterwards.
			var abused [][]Value
			s.Enumerate(func(tu []Value) bool {
				abused = append(abused, append([]Value(nil), tu...))
				for i := range tu {
					tu[i] = -12345
				}
				return true
			})
			if !sameTuples(abused, want.Tuples()) {
				t.Fatalf("%s [%v]: slice reuse leaked a caller mutation into a later yield", q, s.Strategy())
			}
			if got := s.Count(); got != uint64(want.Len()) {
				t.Fatalf("%s [%v]: count %d after abusive enumeration, want %d", q, s.Strategy(), got, want.Len())
			}
			if !sameTuples(s.Tuples(), want.Tuples()) {
				t.Fatalf("%s [%v]: session state corrupted by mutating yielded slices", q, s.Strategy())
			}
		}
	}
}

// TestLoadReplacesState: Load on a non-empty session resets to exactly
// the loaded database on every backend — the same observable behaviour
// everywhere, then updates keep working on the fresh state.
func TestLoadReplacesState(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	q := cq.MustParse("Q(y) :- E(x,y), T(y)")
	first := workload.RandomDatabase(rng, q.Schema(), 8, 30)
	second := workload.RandomDatabase(rng, q.Schema(), 8, 25)
	want := eval.Evaluate(q, second)
	for _, st := range []Strategy{StrategyCore, StrategyIVM, StrategyRecompute} {
		s, err := NewWithOptions(q, Options{Force: st})
		if err != nil {
			t.Fatal(err)
		}
		// Dirty the session: a load plus some single updates.
		if err := s.Load(first); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Insert("E", 900, 901); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Insert("T", 901); err != nil {
			t.Fatal(err)
		}
		// Reload: everything above must vanish.
		if err := s.Load(second); err != nil {
			t.Fatalf("[%v]: Load on non-empty session: %v", st, err)
		}
		if got := s.Count(); got != uint64(want.Len()) {
			t.Fatalf("[%v]: count %d after reload, oracle %d", st, got, want.Len())
		}
		if s.Cardinality() != second.Cardinality() {
			t.Fatalf("[%v]: |D| = %d after reload, want %d", st, s.Cardinality(), second.Cardinality())
		}
		if !sameTuples(s.Tuples(), want.Tuples()) {
			t.Fatalf("[%v]: tuples after reload disagree with oracle", st)
		}
		// The session stays live: updates against the new state agree with
		// the oracle.
		oracle := second.Clone()
		stream := workload.RandomStream(rng, q.Schema(), 8, 60, 0.4)
		for _, u := range stream {
			if _, err := s.Apply(u); err != nil {
				t.Fatal(err)
			}
			if _, err := oracle.Apply(u); err != nil {
				t.Fatal(err)
			}
		}
		if got, w := s.Count(), eval.Count(q, oracle); got != uint64(w) {
			t.Fatalf("[%v]: count %d after post-reload stream, oracle %d", st, got, w)
		}
	}
}

// TestLoadFailureLeavesEmpty: a Load that fails (arity clash against the
// query schema) leaves the session representing the EMPTY database on
// every backend — prior state is discarded either way — and the session
// stays fully usable.
func TestLoadFailureLeavesEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	q := cq.MustParse("Q(y) :- E(x,y), T(y)")
	good := workload.RandomDatabase(rng, q.Schema(), 8, 20)
	bad := dyndb.New()
	if _, err := bad.Insert("E", 1); err != nil { // unary E, query wants binary
		t.Fatal(err)
	}
	for _, st := range []Strategy{StrategyCore, StrategyIVM, StrategyRecompute} {
		s, err := NewWithOptions(q, Options{Force: st})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Load(good); err != nil {
			t.Fatal(err)
		}
		if err := s.Load(bad); err == nil {
			t.Fatalf("[%v]: mismatched-arity Load accepted", st)
		}
		if s.Count() != 0 || s.Answer() || s.Cardinality() != 0 {
			t.Fatalf("[%v]: count=%d answer=%v |D|=%d after failed Load, want empty",
				st, s.Count(), s.Answer(), s.Cardinality())
		}
		// Still alive: fresh updates behave normally.
		if _, err := s.Insert("E", 1, 2); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Insert("T", 2); err != nil {
			t.Fatal(err)
		}
		if s.Count() != 1 {
			t.Fatalf("[%v]: count %d after recovery inserts, want 1", st, s.Count())
		}
	}
}

// TestLoadForgetsDrainedForeignRelations: inserting and deleting a tuple
// of a relation outside the query schema must not leave a stale arity
// registration that breaks a later Load declaring that relation with a
// different arity (reset-then-load means ALL prior state is gone).
func TestLoadForgetsDrainedForeignRelations(t *testing.T) {
	q := cq.MustParse("Q(y) :- E(x,y), T(y)")
	for _, st := range []Strategy{StrategyCore, StrategyIVM, StrategyRecompute} {
		s, err := NewWithOptions(q, Options{Force: st})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Insert("X", 1); err != nil { // X is not in the query
			t.Fatal(err)
		}
		if _, err := s.Delete("X", 1); err != nil {
			t.Fatal(err)
		}
		db := dyndb.New()
		if _, err := db.Insert("X", 1, 2); err != nil { // X with arity 2 now
			t.Fatal(err)
		}
		if _, err := db.Insert("E", 1, 2); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Insert("T", 2); err != nil {
			t.Fatal(err)
		}
		if err := s.Load(db); err != nil {
			t.Fatalf("[%v]: Load after draining foreign relation X: %v", st, err)
		}
		if s.Count() != 1 || s.Cardinality() != 3 {
			t.Fatalf("[%v]: count=%d |D|=%d after Load, want 1 and 3", st, s.Count(), s.Cardinality())
		}
	}
}
