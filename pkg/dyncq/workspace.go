package dyncq

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dyncq/internal/core"
	"dyncq/internal/cq"
	"dyncq/internal/dict"
	"dyncq/internal/dyndb"
	"dyncq/internal/eval"
	"dyncq/internal/ivm"
	"dyncq/internal/qtree"
)

// This file implements the workspace front door: ONE shared
// dyndb.Database serving any number of registered live queries. The
// paper maintains one data structure per fixed query; a production
// system serves many queries over one update stream, and the shape both
// the UCQ extension (Berkholz et al. 2018) and the free-access-patterns
// line (Kara et al. 2023) presuppose is exactly this one — a shared
// database with per-query maintenance structures fed by a common delta
// stream.
//
// The pipeline, per batch: coalesce once, validate once (against the
// union schema of all registered queries and the store, so a bad batch
// is rejected atomically), compute the net delta against the shared
// store once (dyndb.NetDelta), apply it to the store once — the store
// mutation count is independent of how many queries are registered —
// and fan the same delta out to every query's maintenance structure
// (core / ivm / recompute, routed per query exactly as for a single
// Session). IVM backends need the store in a specific state relative to
// each relation's mutation (deletion deltas evaluate on the pre-state,
// insertion deltas on the post-state), so the fan-out interleaves
// per-relation hooks with the store mutation; core backends receive the
// whole delta after the store is current, in delta order, reusing the
// sharded parallel path when the workspace was built with workers.
//
// Concurrency: a Workspace is safe for concurrent use with the same
// model as the former ConcurrentSession — writers serialise behind a
// write lock and commit atomically, readers (every Handle method and
// View) share a read lock and always observe the state after some whole
// prefix of the committed batch sequence. Version() counts committed
// state changes across ALL queries: after any commit, every registered
// query observes the same version.

// queryBackend is the per-query maintenance interface the workspace
// drives. The workspace owns the shared store and the update pipeline;
// backends only maintain their per-query view structures.
type queryBackend interface {
	// Reads, in the uniform Session contract.
	Count() uint64
	Answer() bool
	Enumerate(yield func(tuple []Value) bool)

	// Single-update fast path: preDeleteOne runs before the store
	// deletes (IVM's pre-state delta), postApplyOne after the store
	// applied the command.
	preDeleteOne(rel string, tuple []Value)
	postApplyOne(u Update)

	// Batch pipeline: beginBatch opens a nonempty net delta; preDelete /
	// postInsert bracket each relation's store mutation; finishBatch
	// closes the batch with the full delta once the store is current.
	// wantsRelationHooks (valid between beginBatch and finishBatch)
	// reports whether this backend needs the relation-phased store
	// schedule this batch: when no registered backend does, the workspace
	// applies the whole net delta to the store shard-parallel instead.
	beginBatch(survivors int)
	wantsRelationHooks() bool
	preDelete(rel string, tuples [][]Value)
	postInsert(rel string, tuples [][]Value)
	finishBatch(survivors []Update, workers int)

	// rebuild brings the structure up to date with the shared store's
	// current contents (Load, late registration); clear leaves it
	// representing the empty database. Both rebind to idx, the shared
	// index set (nil when no IVM query is registered).
	rebuild(idx *eval.IndexSet) error
	clear(idx *eval.IndexSet)

	// shards reports the backend's shard count (0 when sharding does not
	// apply) — the introspection behind Parallel().
	shards() int
}

// WorkspaceOptions configures NewWorkspace.
type WorkspaceOptions struct {
	// Workers is the number of goroutines each batch's maintenance work
	// is spread over (<= 1 keeps every path sequential). It controls
	// three independent axes of one batch: the shard-parallel store
	// phase (when no IVM backend needs the relation-phased schedule),
	// the per-handle fan-out of independent queries' maintenance, and
	// the shard-disjoint delta application inside each core engine. Core
	// engines registered without an explicit Options.Shards are built
	// with 4×Workers shards, exactly as NewConcurrent derives them.
	Workers int
	// StoreShards is the number of hash shards the shared store's
	// relation maps and adom counts are split into. 0 derives it from
	// Workers (4×Workers when Workers > 1, else 1 — the paper's exact
	// single-map layout). The shard count changes no observable content.
	StoreShards int
}

// Workspace is the shared front door: one dynamic database, one update
// pipeline, many registered live queries. Build one with NewWorkspace;
// the zero value is not ready. Safe for concurrent use.
type Workspace struct {
	mu       sync.RWMutex
	store    *dyndb.Database
	idx      *eval.IndexSet // shared by IVM backends; nil while none is registered
	dictOnce sync.Once
	d        *dict.Dict     // lazily created by Dict/InsertS/DeleteS; guarded by dictOnce, not mu
	schema   map[string]int // union schema over all registered queries
	owner    map[string]string
	handles  map[string]*Handle
	order    []*Handle // registration order
	workers  int

	// version counts committed state changes. It is atomic so the
	// cached-snapshot fast path (Handle.CachedSnapshot) can validate a
	// pinned version without the read lock; it only ever advances with
	// exclusive access to the workspace.
	version atomic.Uint64
}

// NewWorkspace returns an empty workspace with no registered queries.
// Updates applied before any registration only populate the shared
// store; queries registered later are brought up to date against it.
func NewWorkspace(opt WorkspaceOptions) *Workspace {
	shards := opt.StoreShards
	if shards == 0 && opt.Workers > 1 {
		shards = 4 * opt.Workers
	}
	if shards < 1 {
		shards = 1
	}
	return &Workspace{
		store:   dyndb.NewSharded(shards),
		schema:  make(map[string]int),
		owner:   make(map[string]string),
		handles: make(map[string]*Handle),
		workers: opt.Workers,
	}
}

// Handle is the read surface of one registered live query. All read
// methods are safe for concurrent use and observe the workspace's
// latest committed state; use Workspace.View for multi-call snapshot
// consistency. A Handle stays valid until its query is unregistered;
// after that, reads on a retained handle are undefined beyond being
// safe: core and IVM handles answer from their structure's last
// maintained state, while a recompute handle (which stores nothing)
// keeps re-evaluating the live shared store. Drop handles when
// unregistering.
type Handle struct {
	ws       *Workspace
	name     string
	query    *cq.Query
	class    qtree.Classification
	strategy Strategy
	back     queryBackend

	// maintainNS accumulates the time the batch pipeline spent
	// maintaining this query (delta hooks + finishBatch), and batches
	// the number of nonempty batches it participated in — the per-query
	// split of the shared pipeline's cost, reported by the bench
	// harness. The single-update fast path is deliberately untimed.
	maintainNS int64
	batches    int64

	// capture is the active delta export (CaptureDeltas), nil while no
	// subscriber wants this query's per-commit deltas.
	capture *deltaCapture

	// snap is the version-keyed cached snapshot (snapshot_cache.go): the
	// latest materialised QuerySnapshot, shared by every pinner at its
	// version. nil until a reader pins, and again after the demand-decay
	// invalidation. The pointer only moves with the workspace write lock
	// held or under the read lock (slow-path pin, where writers are
	// excluded), which is what makes the lock-free fast path's
	// pointer-then-version load order linearizable.
	snap atomic.Pointer[QuerySnapshot]

	// demand is the cache keep-alive countdown: every pin rearms it to
	// snapDemandGrace, every commit decrements it, and when it runs out
	// the commit invalidates the cache instead of advancing it — a
	// write-only stream stops paying the O(|result|) advance after a
	// bounded number of commits per past pin.
	demand atomic.Int32

	// Cache observability (SnapshotCacheStats).
	snapHits        atomic.Uint64
	snapMisses      atomic.Uint64
	snapPatched     atomic.Uint64
	snapRebuilt     atomic.Uint64
	snapInvalidated atomic.Uint64
}

// Name returns the registration name.
func (h *Handle) Name() string { return h.name }

// Query returns the maintained query. Immutable after registration.
func (h *Handle) Query() *cq.Query { return h.query }

// Strategy returns the backend serving this query (never StrategyAuto).
func (h *Handle) Strategy() Strategy { return h.strategy }

// Classification returns the taxonomy verdict computed at registration.
func (h *Handle) Classification() qtree.Classification { return h.class }

// Count returns |ϕ(D)| over the latest committed shared state.
func (h *Handle) Count() uint64 {
	h.ws.mu.RLock()
	defer h.ws.mu.RUnlock()
	return h.back.Count()
}

// Answer reports whether ϕ(D) is nonempty.
func (h *Handle) Answer() bool {
	h.ws.mu.RLock()
	defer h.ws.mu.RUnlock()
	return h.back.Answer()
}

// Enumerate streams the result of the latest committed state under the
// workspace read lock, with the uniform Session.Enumerate slice
// contract (callee-owned; copy to retain). The lock is not reentrant:
// yield must not call workspace or handle methods.
func (h *Handle) Enumerate(yield func(tuple []Value) bool) {
	h.ws.mu.RLock()
	defer h.ws.mu.RUnlock()
	h.back.Enumerate(yield)
}

// Tuples returns the full result as freshly allocated tuples, in the
// backend's enumeration order.
func (h *Handle) Tuples() [][]Value {
	h.ws.mu.RLock()
	defer h.ws.mu.RUnlock()
	return collectTuples(h.back)
}

// Version returns the workspace version — identical across all handles
// of one workspace at any committed state.
func (h *Handle) Version() uint64 { return h.ws.Version() }

// Cardinality returns |D| of the shared store.
func (h *Handle) Cardinality() int { return h.ws.Cardinality() }

// ActiveDomainSize returns n = |adom(D)| of the shared store.
func (h *Handle) ActiveDomainSize() int { return h.ws.ActiveDomainSize() }

// MaintenanceNS returns the cumulative time the batch pipeline spent
// maintaining this query, and the number of nonempty batches it
// participated in. The per-batch delta of the first value is the
// per-query update latency the bench harness reports. The timer is
// wall-clock: with Workers > 1 the per-handle fan-out runs handles
// concurrently, so each handle's time includes scheduler contention
// from the others and the sum over handles can exceed the batch's
// duration — compare per-handle timings across runs only at the same
// worker count (the bench harness measures its per-query percentiles
// on a sequential workspace for exactly this reason).
func (h *Handle) MaintenanceNS() (ns int64, batches int64) {
	h.ws.mu.RLock()
	defer h.ws.mu.RUnlock()
	return h.maintainNS, h.batches
}

func collectTuples(back queryBackend) [][]Value {
	var out [][]Value
	back.Enumerate(func(t []Value) bool {
		out = append(out, append([]Value(nil), t...))
		return true
	})
	return out
}

// Register parses the query text (cq.Parse syntax) and registers it
// under the given name with automatic routing — the one-call entry
// point the CLI uses.
func (w *Workspace) Register(name, text string) (*Handle, error) {
	q, err := cq.Parse(text)
	if err != nil {
		return nil, err
	}
	return w.RegisterQuery(name, q, Options{})
}

// RegisterQuery registers a query under a unique name with explicit
// options, routing by classification exactly as NewWithOptions does for
// a Session: core for q-hierarchical queries, IVM otherwise, unless
// opt.Force pins a strategy. The new query's schema must be consistent
// with every already-registered query and with the relations already
// declared in the shared store. Registration against a populated store
// runs the strategy's preprocessing phase over the current contents, so
// late-registered queries are immediately up to date. Registration does
// not advance the version (the data did not change).
func (w *Workspace) RegisterQuery(name string, q *cq.Query, opt Options) (*Handle, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if name == "" {
		return nil, fmt.Errorf("dyncq: empty query name")
	}
	if _, ok := w.handles[name]; ok {
		return nil, fmt.Errorf("dyncq: query %q is already registered", name)
	}
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("dyncq: %w", err)
	}
	for rel, ar := range q.Schema() {
		if want, ok := w.schema[rel]; ok && want != ar {
			return nil, fmt.Errorf("dyncq: %s has arity %d in query %q, but arity %d in already-registered query %q",
				rel, ar, name, want, w.owner[rel])
		}
		if r := w.store.Relation(rel); r != nil && r.Arity() != ar {
			return nil, fmt.Errorf("dyncq: %s has arity %d in query %q, but arity %d in the shared store", rel, ar, name, r.Arity())
		}
	}
	h := &Handle{ws: w, name: name, query: q, class: qtree.Classify(q)}
	strategy := opt.Force
	if strategy == StrategyAuto {
		if h.class.QHierarchical {
			strategy = StrategyCore
		} else {
			strategy = StrategyIVM
		}
	}
	switch strategy {
	case StrategyCore:
		shards := opt.Shards
		if shards == 0 && w.workers > 1 {
			shards = 4 * w.workers
		}
		if shards < 1 {
			shards = 1
		}
		e, err := core.NewOnStore(q, shards, w.store)
		if err != nil {
			return nil, fmt.Errorf("dyncq: %w", err)
		}
		h.back = &coreBackend{e: e}
	case StrategyIVM:
		if w.idx == nil {
			w.idx = eval.NewIndexSet(w.store)
		}
		m, err := ivm.NewOnStore(q, w.store, w.idx)
		if err != nil {
			return nil, fmt.Errorf("dyncq: %w", err)
		}
		h.back = &ivmBackend{m: m}
	case StrategyRecompute:
		h.back = &recomputeBackend{r: newRecomputeOn(q, w.store)}
	default:
		return nil, fmt.Errorf("dyncq: invalid strategy %v", strategy)
	}
	h.strategy = strategy
	// Catch up with the store's current contents before going live.
	if err := h.back.rebuild(w.idx); err != nil {
		return nil, fmt.Errorf("dyncq: %w", err)
	}
	for rel, ar := range q.Schema() {
		if _, ok := w.schema[rel]; !ok {
			w.schema[rel] = ar
			w.owner[rel] = name
		}
	}
	w.handles[name] = h
	w.order = append(w.order, h)
	return h, nil
}

// Unregister removes the named query from the workspace, reporting
// whether it was registered. The shared store keeps its data (including
// relations only that query mentioned); the union schema shrinks to the
// remaining queries.
func (w *Workspace) Unregister(name string) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	h, ok := w.handles[name]
	if !ok {
		return false
	}
	h.capture = nil // no further delta events for a dropped query
	h.snap.Store(nil)
	h.snapInvalidated.Add(1) // a dropped query's cache must never serve a re-registered name
	delete(w.handles, name)
	for i, o := range w.order {
		if o == h {
			w.order = append(w.order[:i], w.order[i+1:]...)
			break
		}
	}
	w.schema = make(map[string]int)
	w.owner = make(map[string]string)
	ivmLeft := false
	for _, o := range w.order {
		for rel, ar := range o.query.Schema() {
			if _, ok := w.schema[rel]; !ok {
				w.schema[rel] = ar
				w.owner[rel] = o.name
			}
		}
		if o.strategy == StrategyIVM {
			ivmLeft = true
		}
	}
	if !ivmLeft {
		w.idx = nil // stop maintaining indexes nobody evaluates against
	}
	return true
}

// Handle returns the handle registered under name, or nil.
func (w *Workspace) Handle(name string) *Handle {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.handles[name]
}

// Handles returns the registered handles in registration order.
func (w *Workspace) Handles() []*Handle {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return append([]*Handle(nil), w.order...)
}

// Workers returns the configured worker count.
func (w *Workspace) Workers() int { return w.workers }

// Parallelism is the effective parallel configuration of a workspace —
// what actually engages per batch, not what was requested. CLI and
// bench reporting read it instead of re-deriving the shard heuristics.
type Parallelism struct {
	// Workers is the per-batch worker count (<= 1: every path
	// sequential).
	Workers int
	// StoreShards is the shared store's hash shard count; > 1 means the
	// store phase applies shard-parallel when no IVM delta-join batch
	// forces the relation-phased schedule.
	StoreShards int
	// QueryShards maps each registered query to its engine's shard
	// count: > 1 means its delta application runs shard-parallel; 0
	// means sharding does not apply to its backend (ivm, recompute).
	QueryShards map[string]int
	// IndexRebuilds is the shared index set's epoch-fallback counter
	// (eval.IndexSet.Rebuilds): nonzero means the store moved without
	// notifying the set and built indexes were silently dropped and
	// rebuilt by relation scans. In a healthy workspace — where every
	// mutation goes through the update pipeline — it stays zero. Zero
	// also when no IVM query is registered (there is no index set).
	IndexRebuilds uint64
}

// Parallelism returns the workspace's effective worker and shard
// counts, plus the shared index set's rebuild counter.
func (w *Workspace) Parallelism() Parallelism {
	w.mu.RLock()
	defer w.mu.RUnlock()
	p := Parallelism{
		Workers:     w.workers,
		StoreShards: w.store.Shards(),
		QueryShards: make(map[string]int, len(w.order)),
	}
	if w.idx != nil {
		p.IndexRebuilds = w.idx.Rebuilds()
	}
	for _, h := range w.order {
		p.QueryShards[h.name] = h.back.shards()
	}
	return p
}

// Schema returns the union relation→arity schema over all registered
// queries (a copy).
func (w *Workspace) Schema() map[string]int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	out := make(map[string]int, len(w.schema))
	for rel, ar := range w.schema {
		out[rel] = ar
	}
	return out
}

// Version returns the number of committed state changes (every Load
// counts as one — even a failed Load discards the prior state). All
// registered queries observe the same version at any committed state.
func (w *Workspace) Version() uint64 {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.version.Load()
}

// Cardinality returns |D| of the shared store.
func (w *Workspace) Cardinality() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.store.Cardinality()
}

// ActiveDomainSize returns n = |adom(D)| of the shared store.
func (w *Workspace) ActiveDomainSize() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.store.ActiveDomainSize()
}

// StoreMutations returns the shared store's lifetime mutation count
// (dyndb.Database.Mutations) — the number the "store applied once per
// batch, independent of the number of registered queries" guarantee is
// measured in.
func (w *Workspace) StoreMutations() uint64 {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.store.Mutations()
}

// Dict returns the workspace's dictionary, creating it on first use.
// The dictionary backs the string-accepting helpers (InsertS/DeleteS)
// and the CLI's -strings stream mode. Dict itself never takes the
// workspace lock, so it is callable from inside Enumerate/View
// callbacks (e.g. to Decode tuple values while enumerating). The
// returned dictionary is NOT independently goroutine-safe: do not call
// Encode on it concurrently with workspace writers — use the helpers,
// which encode under the workspace lock.
func (w *Workspace) Dict() *dict.Dict {
	w.dictOnce.Do(func() { w.d = dict.New() })
	return w.d
}

// InsertS inserts a tuple of external string constants, encoding them
// through the workspace dictionary (Workspace.Dict). The arity check
// runs before any encoding, so a rejected insert assigns no codes.
func (w *Workspace) InsertS(rel string, names ...string) (bool, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.checkArity(rel, len(names)); err != nil {
		return false, err
	}
	d := w.Dict() //dyncq:allow lockorder Dict is lock-free by construction (sync.Once, no w.mu), the PR 6 deadlock fix
	tuple := make([]Value, len(names))
	for i, n := range names {
		tuple[i] = d.Encode(n)
	}
	return w.applyExclusive(dyndb.Insert(rel, tuple...))
}

// DeleteS deletes a tuple of external string constants. A name the
// dictionary has never seen cannot occur in any stored tuple, so such a
// deletion is a no-op (and assigns no code) — but an arity mismatch
// still errors, exactly as on every other write path.
func (w *Workspace) DeleteS(rel string, names ...string) (bool, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.checkArity(rel, len(names)); err != nil {
		return false, err
	}
	d := w.Dict() //dyncq:allow lockorder Dict is lock-free by construction (sync.Once, no w.mu), the PR 6 deadlock fix
	tuple := make([]Value, len(names))
	for i, n := range names {
		c, ok := d.Lookup(n)
		if !ok {
			return false, nil
		}
		tuple[i] = c
	}
	return w.applyExclusive(dyndb.Delete(rel, tuple...))
}

// Insert applies "insert R(a1,…,ar)" to the shared store and every
// registered query, reporting whether the database changed.
func (w *Workspace) Insert(rel string, tuple ...Value) (bool, error) {
	return w.Apply(dyndb.Insert(rel, tuple...))
}

// Delete applies "delete R(a1,…,ar)", reporting whether the database
// changed.
func (w *Workspace) Delete(rel string, tuple ...Value) (bool, error) {
	return w.Apply(dyndb.Delete(rel, tuple...))
}

// Apply executes one update command atomically across the shared store
// and every registered query.
func (w *Workspace) Apply(u Update) (bool, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.applyExclusive(u)
}

// ApplyAll executes a sequence of updates one at a time, stopping at
// the first error. For bulk work prefer ApplyBatch.
func (w *Workspace) ApplyAll(updates []Update) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, u := range updates {
		if _, err := w.applyExclusive(u); err != nil {
			return err
		}
	}
	return nil
}

// checkArity validates one command against the union schema (errors
// name the owning query) and, for relations outside every query, the
// shared store's declaration.
func (w *Workspace) checkArity(rel string, arity int) error {
	if want, ok := w.schema[rel]; ok {
		if want != arity {
			return fmt.Errorf("dyncq: %s has arity %d in query %q, got tuple of length %d", rel, want, w.owner[rel], arity)
		}
		return nil
	}
	if r := w.store.Relation(rel); r != nil && r.Arity() != arity {
		return fmt.Errorf("dyncq: %s has arity %d in the shared store, got tuple of length %d", rel, r.Arity(), arity)
	}
	return nil
}

// applyExclusive is the single-update fast path: one arity check, one
// store mutation, one fan-out loop — no batch bookkeeping.
//
// The *Exclusive methods (applyExclusive, applyBatchExclusive,
// loadExclusive) require exclusive access to the workspace: either the
// caller holds w.mu.Lock (the exported write methods) or the workspace
// is privately owned by a single-goroutine caller (a Session over the
// workspace it created — which is why a Session keeps the lock-free
// cost and reentrancy behaviour of the pre-workspace session layer).
func (w *Workspace) applyExclusive(u Update) (bool, error) {
	if err := w.checkArity(u.Rel, len(u.Tuple)); err != nil {
		return false, err
	}
	if u.Op == dyndb.OpDelete {
		if !w.store.Has(u.Rel, u.Tuple...) {
			return false, nil
		}
		// IVM deletion deltas evaluate on the pre-state: hooks run before
		// the store (and the shared index) forget the tuple.
		for _, h := range w.order {
			h.back.preDeleteOne(u.Rel, u.Tuple)
		}
		if _, err := w.store.Delete(u.Rel, u.Tuple...); err != nil { //dyncq:allow epochstep single-update fast path; idx.ApplyUpdate follows below in lockstep
			panic("dyncq: validated delete failed to apply: " + err.Error())
		}
	} else {
		changed, err := w.store.Insert(u.Rel, u.Tuple...) //dyncq:allow epochstep single-update fast path; idx.ApplyUpdate follows below in lockstep
		if err != nil || !changed {
			return changed, err
		}
	}
	if w.idx != nil {
		w.idx.ApplyUpdate(u)
	}
	for _, h := range w.order {
		h.back.postApplyOne(u)
	}
	w.version.Add(1)
	w.afterCommitLocked()
	return true, nil
}

// ApplyBatch executes a batch atomically across the shared store and
// every registered query: the batch is coalesced, validated as a whole
// (a bad command rejects the batch with nothing applied), reduced to
// the net delta that actually changes the store, applied to the store
// ONCE, and fanned out to every query's maintenance structure. Readers
// observe either the state before the whole batch or after it. Returns
// the number of net commands that changed the database.
func (w *Workspace) ApplyBatch(updates []Update) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.applyBatchExclusive(updates)
}

// ApplyBatched splits the updates into chunks of batchSize and commits
// each chunk atomically (readers may observe the state between chunks —
// each chunk is one version). batchSize <= 0 applies one batch.
func (w *Workspace) ApplyBatched(updates []Update, batchSize int) (int, error) {
	return applyInChunks(updates, batchSize, w.ApplyBatch)
}

//dyncq:hot
func (w *Workspace) applyBatchExclusive(updates []Update) (int, error) {
	// Union-schema validation first: errors name the owning query.
	// Store-level arity validation (relations outside every query, and
	// intra-batch consistency of newly declared relations) happens
	// inside NetDelta. Either failure rejects the batch atomically.
	for _, u := range updates {
		if err := w.checkArity(u.Rel, len(u.Tuple)); err != nil {
			return 0, err
		}
	}
	survivors, err := w.store.NetDelta(updates)
	if err != nil {
		return 0, fmt.Errorf("dyncq: %w", err) //dyncq:allow hotalloc cold error path, never taken by validated batches
	}
	if len(survivors) == 0 {
		return 0, nil
	}

	for _, h := range w.order {
		h.back.beginBatch(len(survivors))
	}
	perNS := make([]int64, len(w.order))

	// Store phase. Two schedules, chosen per batch:
	//
	//   - If any backend needs the relation-phased schedule (an IVM query
	//     whose crossover chose delta joins: deletion deltas evaluate on
	//     the pre-state, insertion deltas on the post-state), each
	//     relation's mutation is bracketed by the pre/post hooks,
	//     sequentially.
	//   - Otherwise the whole net delta goes to the store through the
	//     shard-disjoint parallel path (dyndb.ApplyNetDelta) — the store
	//     phase is no longer serialised behind a single map.
	//
	// Either way the store (and the shared index) is written exactly once
	// per net command, independent of the number of queries.
	hooked := false
	for _, h := range w.order {
		if h.back.wantsRelationHooks() {
			hooked = true
			break
		}
	}
	if hooked {
		w.runHookedStorePhase(survivors, perNS)
	} else {
		w.store.ApplyNetDelta(survivors, w.workers)
		if w.idx != nil {
			w.idx.ApplyDelta(survivors)
		}
	}

	// Fan-out phase: every backend sees the full delta with the store
	// current (core runs its per-atom procedures here, parallel when the
	// workspace has workers; IVM closes its batch, rebuilding if the
	// crossover chose to). Every handle's batch close-out — core,
	// recompute AND ivm — fans out across one worker pool: per-handle
	// state is private, and the one shared structure (the index set) is
	// safe for concurrent evaluators over a quiescent store. Each
	// handle's work is self-contained, so the result is byte-identical
	// at any worker count.
	w.finishBatchFanOut(survivors, perNS)
	for i, h := range w.order {
		h.maintainNS += perNS[i]
		h.batches++
	}
	w.version.Add(1)
	w.afterCommitLocked()
	return len(survivors), nil
}

// runHookedStorePhase is the relation-phased store schedule: the delta
// grouped per relation in first-appearance order, each relation's
// deletions and insertions bracketed by the pre/post hooks — the exact
// schedule of the single-query IVM batch pipeline, so every IVM
// backend's maintained multiplicities are identical to a private-store
// maintainer replaying the same stream.
//
// Two axes of the schedule are parallel while its ordering contract is
// preserved: the hook phases fan each relation's pre/post hooks out
// across the handles on a worker pool (per-handle IVM state is private
// and the shared index set is safe for concurrent evaluators over a
// quiescent store), and each relation's store mutation goes through the
// shard-disjoint parallel path (dyndb.ApplyNetDelta) instead of
// per-tuple sequential writes — a delta-join batch no longer forces the
// whole store phase sequential. Only IVM backends do work in the hooks,
// so only they pay the per-hook clock reads; the other strategies'
// hooks are no-ops and contribute zero to their timers by construction.
func (w *Workspace) runHookedStorePhase(survivors []Update, perNS []int64) {
	type relDelta struct {
		dels, ins [][]Value
		cmds      []Update // the relation's slice of the net delta
	}
	deltas := make(map[string]*relDelta)
	var relOrder []string
	for _, u := range survivors {
		d := deltas[u.Rel]
		if d == nil {
			d = &relDelta{}
			deltas[u.Rel] = d
			relOrder = append(relOrder, u.Rel)
		}
		if u.Op == dyndb.OpInsert {
			d.ins = append(d.ins, u.Tuple)
		} else {
			d.dels = append(d.dels, u.Tuple)
		}
		d.cmds = append(d.cmds, u)
	}
	all := w.allHandles()
	hook := func(i int, fn func(back queryBackend)) {
		h := w.order[i]
		if h.strategy != StrategyIVM {
			fn(h.back)
			return
		}
		t0 := time.Now()
		fn(h.back)
		perNS[i] += time.Since(t0).Nanoseconds()
	}
	for _, rel := range relOrder {
		d := deltas[rel]
		if len(d.dels) > 0 {
			// Pre-state hooks: the store has not applied this relation's
			// delta yet.
			runPool(all, w.workers, func(i int) {
				hook(i, func(back queryBackend) { back.preDelete(rel, d.dels) })
			})
		}
		// One relation's slice of a validated net delta is itself a net
		// delta against the current state (relations are disjoint, earlier
		// phases touched other relations), so the shard-parallel store
		// path applies — and the index set's epoch advances in lockstep.
		w.store.ApplyNetDelta(d.cmds, w.workers)
		if w.idx != nil {
			w.idx.ApplyDelta(d.cmds)
		}
		if len(d.ins) > 0 {
			// Post-state hooks: this relation's delta is fully applied.
			runPool(all, w.workers, func(i int) {
				hook(i, func(back queryBackend) { back.postInsert(rel, d.ins) })
			})
		}
	}
}

// allHandles returns the indices of every registered handle — the
// fan-out pools run all of them concurrently: core and recompute
// backends touch only private structures, and IVM backends share only
// the index set, which is safe for concurrent evaluators while the
// store is quiescent.
func (w *Workspace) allHandles() []int {
	out := make([]int, len(w.order))
	for i := range out {
		out[i] = i
	}
	return out
}

// runPool runs fn(i) for every i in items on up to workers goroutines
// claimed off a shared counter (sequentially when workers <= 1 or there
// is at most one item). A panic inside fn is re-raised on the caller's
// stack after the pool drains, matching the sequential path's failure
// semantics (if several workers panic, the lowest worker index wins).
func runPool(items []int, workers int, fn func(i int)) {
	if workers > len(items) {
		workers = len(items)
	}
	if workers <= 1 {
		for _, i := range items {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	panics := make([]any, workers)
	wg.Add(workers)
	for k := 0; k < workers; k++ {
		go func(k int) {
			defer wg.Done()
			defer func() { panics[k] = recover() }()
			for {
				j := int(next.Add(1)) - 1
				if j >= len(items) {
					return
				}
				fn(items[j])
			}
		}(k)
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
}

// finishBatchFanOut runs every backend's finishBatch — core, recompute
// and ivm alike — over up to w.workers goroutines; there is no
// sequential IVM tail. The worker budget is divided across the
// concurrently running handles (each core backend's ApplySharedDelta
// spawns its own shard workers), so a batch never oversubscribes
// Workers² goroutines. Per-handle timings land in perNS.
func (w *Workspace) finishBatchFanOut(survivors []Update, perNS []int64) {
	all := w.allHandles()
	concurrency := w.workers
	if concurrency > len(all) {
		concurrency = len(all)
	}
	inner := w.workers
	if concurrency > 1 {
		inner = w.workers / concurrency
		if inner < 1 {
			inner = 1
		}
	}
	runPool(all, w.workers, func(i int) {
		t0 := time.Now()
		w.order[i].back.finishBatch(survivors, inner)
		perNS[i] += time.Since(t0).Nanoseconds()
	})
}

// Load performs the preprocessing phase for an initial database across
// the whole workspace, with the uniform reset-then-load contract of the
// session layer: after Load the shared store holds exactly db and every
// registered query represents exactly its result over db, discarding
// all prior state. A failed Load (an arity clash between db and any
// registered query) leaves the workspace representing the EMPTY
// database. Either way the version advances once, and all queries
// observe it.
func (w *Workspace) Load(db *Database) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.loadExclusive(db)
}

func (w *Workspace) loadExclusive(db *dyndb.Database) error {
	w.version.Add(1)
	fail := func(err error) error {
		w.store.Clear()
		w.resetIdxLocked()
		for _, h := range w.order {
			h.back.clear(w.idx)
		}
		// The version advanced and the state changed (to empty):
		// subscribers get their per-version event either way.
		w.afterCommitLocked()
		return err
	}
	for _, rel := range db.Relations() {
		if want, ok := w.schema[rel]; ok && want != db.Relation(rel).Arity() {
			return fail(fmt.Errorf("dyncq: %s has arity %d in query %q, %d in the loaded database",
				rel, want, w.owner[rel], db.Relation(rel).Arity()))
		}
	}
	// Incremental index preservation: when the shared index set has
	// built indexes, compute the old→new net delta BEFORE the store is
	// replaced and patch the indexes with it afterwards (eval.Reload) —
	// a Load of an overlapping database then keeps its warm indexes
	// instead of paying full relation-scan rebuilds on the next
	// evaluation. When the diff is unusable (a foreign relation changed
	// arity across Loads) or no index is built, fall back to a fresh
	// set, which rebuilds lazily.
	var diff []Update
	warm := w.idx != nil && w.idx.Built() > 0
	if warm {
		// Only relations with built indexes matter to the reconciliation
		// (Reload drops commands on any other relation), and the diff is
		// capped at half the combined cardinality: beyond that the
		// databases are mostly disjoint and patching indexes command by
		// command costs more than dropping them and letting the next
		// evaluation rebuild with one relation scan.
		diff, warm = storeDiff(w.store, db, (w.store.Cardinality()+db.Cardinality())/2, w.idx.IndexedRelations())
	}
	w.store.Clear()
	if err := w.store.CopyFrom(db); err != nil {
		return fail(err) // unreachable: the store was just cleared
	}
	if warm {
		w.idx.Reload(diff)
	} else {
		w.resetIdxLocked()
	}
	if err := w.rebuildFanOut(fail); err != nil {
		return err // fail() already delivered the capture events
	}
	w.afterCommitLocked()
	return nil
}

// rebuildFanOut brings every backend up to date with the store's
// current contents, all of them concurrently on up to w.workers
// goroutines: core and recompute preprocessing only reads the shared
// store, and IVM backends evaluate through the shared index set, whose
// lazy builds and epoch sync are internally locked. The first error in
// handle order wins and fails the whole load atomically.
func (w *Workspace) rebuildFanOut(fail func(error) error) error {
	errs := make([]error, len(w.order))
	runPool(w.allHandles(), w.workers, func(i int) {
		errs[i] = w.order[i].back.rebuild(w.idx)
	})
	for _, err := range errs {
		if err != nil {
			return fail(err)
		}
	}
	return nil
}

// storeDiff returns the net delta transforming old's contents into
// db's, restricted to the given relations (the ones with built indexes
// — nothing else benefits from reconciliation): per-relation deletions
// of tuples absent from db, then insertions of tuples absent from old.
// The second return is false when the diff is unusable — a covered
// relation exists in both databases with different arities (its tuples
// cannot be expressed as one delta stream), or the diff exceeds maxDiff
// commands (the databases barely overlap, so patching indexes per
// command beats a rebuild by nothing).
func storeDiff(old, db *dyndb.Database, maxDiff int, rels map[string]bool) ([]Update, bool) {
	var diff []Update
	for _, rel := range old.Relations() {
		if !rels[rel] {
			continue
		}
		ro, rn := old.Relation(rel), db.Relation(rel)
		if rn != nil && rn.Arity() != ro.Arity() {
			return nil, false
		}
		ro.Each(func(t []Value) bool {
			if rn == nil || !rn.Has(t) {
				diff = append(diff, dyndb.Delete(rel, t...))
			}
			return len(diff) <= maxDiff
		})
		if len(diff) > maxDiff {
			return nil, false
		}
	}
	for _, rel := range db.Relations() {
		if !rels[rel] {
			continue
		}
		ro, rn := old.Relation(rel), db.Relation(rel)
		rn.Each(func(t []Value) bool {
			if ro == nil || !ro.Has(t) {
				diff = append(diff, dyndb.Insert(rel, t...))
			}
			return len(diff) <= maxDiff
		})
		if len(diff) > maxDiff {
			return nil, false
		}
	}
	return diff, true
}

// resetIdxLocked replaces the shared index set with a fresh one over
// the store's (new) contents, if any IVM query needs one. Indexes are
// rebuilt lazily on the next evaluation.
func (w *Workspace) resetIdxLocked() {
	if w.idx != nil {
		w.idx = eval.NewIndexSet(w.store)
	}
}

// View runs f against an MVCC snapshot of the whole workspace: every
// read f performs — across ALL registered queries — sees the same
// committed state, pinned at one version. The snapshot is materialised
// copy-on-pin under a brief read lock and the lock is RELEASED before f
// runs, so f may take arbitrarily long, call any workspace or handle
// method (including writers — they commit versions the view simply does
// not observe), and never blocks ApplyBatch. The WorkspaceView and its
// yielded tuples stay valid (and immutable) even past f's return,
// though idiomatic callers still treat them as scoped to the callback.
func (w *Workspace) View(f func(v *WorkspaceView)) {
	f(&WorkspaceView{snap: w.Snapshot()})
}

// WorkspaceView is the read surface View hands its callback: a pinned
// WorkspaceSnapshot addressed by registration name. All reads observe
// the one pinned state, lock-free.
type WorkspaceView struct {
	snap *WorkspaceSnapshot
}

// Snapshot returns the underlying pinned snapshot.
func (v *WorkspaceView) Snapshot() *WorkspaceSnapshot { return v.snap }

// Version returns the pinned version.
func (v *WorkspaceView) Version() uint64 { return v.snap.version }

// Cardinality returns |D| of the shared store at the pinned state.
func (v *WorkspaceView) Cardinality() int { return v.snap.card }

// ActiveDomainSize returns n = |adom(D)| at the pinned state.
func (v *WorkspaceView) ActiveDomainSize() int { return v.snap.adom }

func (v *WorkspaceView) query(name string) *QuerySnapshot {
	s := v.snap.queries[name]
	if s == nil {
		panic(fmt.Sprintf("dyncq: no query %q pinned in this view", name))
	}
	return s
}

// Count returns |ϕ(D)| of the named query at the pinned state.
func (v *WorkspaceView) Count(name string) uint64 { return v.query(name).Count() }

// Answer reports whether the named query's result is nonempty.
func (v *WorkspaceView) Answer(name string) bool { return v.query(name).Answer() }

// Enumerate streams the named query's result at the pinned state. The
// yielded slice is a window into the snapshot's immutable buffer (the
// uniform contract — copy to retain — stays safe, merely conservative).
func (v *WorkspaceView) Enumerate(name string, yield func(tuple []Value) bool) {
	v.query(name).Enumerate(yield)
}

// Tuples returns the named query's full result as freshly allocated
// tuples.
func (v *WorkspaceView) Tuples(name string) [][]Value { return v.query(name).Tuples() }

// ---- strategy adapters ----

// coreBackend adapts a shared-store core engine: the per-atom update
// procedures are order-independent of the store mutation, so everything
// runs in finishBatch (parallel over shards when workers allow).
type coreBackend struct {
	e *core.Engine
}

func (b *coreBackend) Count() uint64                      { return b.e.Count() }
func (b *coreBackend) Answer() bool                       { return b.e.Answer() }
func (b *coreBackend) Enumerate(yield func([]Value) bool) { b.e.Enumerate(yield) }
func (b *coreBackend) preDeleteOne(string, []Value)       {}
func (b *coreBackend) postApplyOne(u Update)              { b.e.ApplySharedUpdate(u) }
func (b *coreBackend) beginBatch(int)                     {}
func (b *coreBackend) wantsRelationHooks() bool           { return false }
func (b *coreBackend) preDelete(string, [][]Value)        {}
func (b *coreBackend) postInsert(string, [][]Value)       {}
func (b *coreBackend) finishBatch(survivors []Update, workers int) {
	b.e.ApplySharedDelta(survivors, workers)
}
func (b *coreBackend) rebuild(*eval.IndexSet) error { return b.e.RebuildFromStore() }
func (b *coreBackend) clear(*eval.IndexSet)         { b.e.ClearStructure() }
func (b *coreBackend) shards() int                  { return b.e.Shards() }

// ivmBackend adapts a shared-store IVM maintainer: deltas are
// propagated through the per-relation pre/post hooks; one is a reusable
// singleton slice for the single-update fast path (safe: callers hold
// the workspace write lock, and the hooks do not retain it).
type ivmBackend struct {
	m   *ivm.Maintainer
	one [1][]Value
}

func (b *ivmBackend) Count() uint64                      { return b.m.Count() }
func (b *ivmBackend) Answer() bool                       { return b.m.Answer() }
func (b *ivmBackend) Enumerate(yield func([]Value) bool) { b.m.Enumerate(yield) }
func (b *ivmBackend) preDeleteOne(rel string, tuple []Value) {
	b.one[0] = tuple
	b.m.PreDeleteShared(rel, b.one[:])
}
func (b *ivmBackend) postApplyOne(u Update) {
	if u.Op == dyndb.OpInsert {
		b.one[0] = u.Tuple
		b.m.PostInsertShared(u.Rel, b.one[:])
	}
}
func (b *ivmBackend) beginBatch(survivors int)                { b.m.BeginSharedBatch(survivors) }
func (b *ivmBackend) wantsRelationHooks() bool                { return !b.m.SharedBatchRebuilds() }
func (b *ivmBackend) preDelete(rel string, tuples [][]Value)  { b.m.PreDeleteShared(rel, tuples) }
func (b *ivmBackend) postInsert(rel string, tuples [][]Value) { b.m.PostInsertShared(rel, tuples) }
func (b *ivmBackend) finishBatch([]Update, int)               { b.m.FinishSharedBatch() }
func (b *ivmBackend) rebuild(idx *eval.IndexSet) error        { return b.m.RebuildShared(idx) }
func (b *ivmBackend) clear(idx *eval.IndexSet)                { b.m.ClearShared(idx) }
func (b *ivmBackend) shards() int                             { return 0 }

// recomputeBackend adapts the stateless recompute strategy: it stores
// nothing, so maintenance is free and reads evaluate the shared store.
type recomputeBackend struct {
	r *recompute
}

func (b *recomputeBackend) Count() uint64                      { return b.r.Count() }
func (b *recomputeBackend) Answer() bool                       { return b.r.Answer() }
func (b *recomputeBackend) Enumerate(yield func([]Value) bool) { b.r.Enumerate(yield) }
func (b *recomputeBackend) preDeleteOne(string, []Value)       {}
func (b *recomputeBackend) postApplyOne(Update)                {}
func (b *recomputeBackend) beginBatch(int)                     {}
func (b *recomputeBackend) wantsRelationHooks() bool           { return false }
func (b *recomputeBackend) preDelete(string, [][]Value)        {}
func (b *recomputeBackend) postInsert(string, [][]Value)       {}
func (b *recomputeBackend) finishBatch([]Update, int)          {}
func (b *recomputeBackend) rebuild(*eval.IndexSet) error       { return b.r.validate() }
func (b *recomputeBackend) clear(*eval.IndexSet)               {}
func (b *recomputeBackend) shards() int                        { return 0 }
