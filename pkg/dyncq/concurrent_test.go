package dyncq

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"dyncq/internal/cq"
	"dyncq/internal/dyndb"
	"dyncq/internal/eval"
	"dyncq/internal/workload"
)

// TestConcurrentRouting: parallelism engages exactly on the core backend
// with more than one worker.
func TestConcurrentRouting(t *testing.T) {
	qh := cq.MustParse("Q(y) :- E(x,y), T(y)")
	hard := cq.MustParse("Q(x,y) :- S(x), E(x,y), T(y)")
	cases := []struct {
		q        *cq.Query
		opt      ConcurrentOptions
		strategy Strategy
		parallel bool
	}{
		{qh, ConcurrentOptions{Workers: 4}, StrategyCore, true},
		{qh, ConcurrentOptions{Workers: 1}, StrategyCore, false},
		// An explicit single-shard override forces the sequential path even
		// with workers: Parallel() must not claim otherwise.
		{qh, ConcurrentOptions{Workers: 4, Shards: 1}, StrategyCore, false},
		{qh, ConcurrentOptions{Force: StrategyRecompute, Workers: 4}, StrategyRecompute, false},
		{hard, ConcurrentOptions{Workers: 4}, StrategyIVM, false},
	}
	for _, c := range cases {
		cs, err := NewConcurrent(c.q, c.opt)
		if err != nil {
			t.Fatal(err)
		}
		if cs.Strategy() != c.strategy {
			t.Errorf("%s workers=%d: strategy %v, want %v", c.q, c.opt.Workers, cs.Strategy(), c.strategy)
		}
		if cs.Parallel() != c.parallel {
			t.Errorf("%s workers=%d [%v]: Parallel()=%v, want %v", c.q, c.opt.Workers, cs.Strategy(), cs.Parallel(), c.parallel)
		}
	}
}

// TestConcurrentMatchesSequential: the concurrent session with parallel
// workers reaches exactly the state the plain session reaches on the
// same stream, for every backend.
func TestConcurrentMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for _, st := range []Strategy{StrategyAuto, StrategyIVM, StrategyRecompute} {
		q := cq.MustParse("Q(y) :- E(x,y), T(y)")
		stream := workload.RandomStream(rng, q.Schema(), 12, 300, 0.4)
		plain, err := NewWithOptions(q, Options{Force: st})
		if err != nil {
			t.Fatal(err)
		}
		conc, err := NewConcurrent(q, ConcurrentOptions{Force: st, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := plain.ApplyBatched(stream, 25); err != nil {
			t.Fatal(err)
		}
		if _, err := conc.ApplyBatched(stream, 25); err != nil {
			t.Fatal(err)
		}
		if plain.Count() != conc.Count() {
			t.Fatalf("[%v] counts diverge: %d vs %d", st, plain.Count(), conc.Count())
		}
		if !sameTuples(plain.Tuples(), conc.Tuples()) {
			t.Fatalf("[%v] tuple sets diverge", st)
		}
	}
}

// TestConcurrentSnapshotReaders is the prefix-consistency stress test:
// one writer commits a known sequence of batches while reader goroutines
// continuously take View snapshots; every snapshot must equal the state
// after exactly version committed batches — never a torn mid-batch
// state. Run with -race (the CI race job does).
func TestConcurrentSnapshotReaders(t *testing.T) {
	q := cq.MustParse("Q(y) :- E(x,y), T(y)")
	rng := rand.New(rand.NewSource(59))
	stream := workload.RandomStream(rng, q.Schema(), 30, 1200, 0.35)
	const batch = 40
	// Precompute the expected (count, cardinality) after every batch
	// prefix with an oracle session. Entry 0 is the empty state. Batches
	// that net to zero changes do not bump the version, so record the
	// expectation per committed version, not per submitted batch.
	oracle, err := New(q)
	if err != nil {
		t.Fatal(err)
	}
	type state struct {
		count uint64
		card  int
	}
	wantAt := []state{{0, 0}}
	var chunks [][]Update
	for from := 0; from < len(stream); from += batch {
		to := from + batch
		if to > len(stream) {
			to = len(stream)
		}
		chunks = append(chunks, stream[from:to])
		n, err := oracle.ApplyBatch(stream[from:to])
		if err != nil {
			t.Fatal(err)
		}
		if n > 0 {
			wantAt = append(wantAt, state{oracle.Count(), oracle.Cardinality()})
		}
	}

	cs, err := NewConcurrent(q, ConcurrentOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	var done atomic.Bool
	var wg sync.WaitGroup
	const readers = 4
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				cs.View(func(s *QuerySnapshot, version uint64) {
					if version >= uint64(len(wantAt)) {
						t.Errorf("snapshot at version %d, but only %d commits exist", version, len(wantAt)-1)
						return
					}
					want := wantAt[version]
					if got := s.Count(); got != want.count {
						t.Errorf("version %d: count %d, want %d (torn read)", version, got, want.count)
					}
					if got := s.Cardinality(); got != want.card {
						t.Errorf("version %d: |D| %d, want %d (torn read)", version, got, want.card)
					}
				})
			}
		}()
	}
	for _, ch := range chunks {
		if _, err := cs.ApplyBatch(ch); err != nil {
			t.Fatal(err)
		}
	}
	done.Store(true)
	wg.Wait()
	if got, want := cs.Version(), uint64(len(wantAt)-1); got != want {
		t.Fatalf("final version %d, want %d", got, want)
	}
	final := wantAt[len(wantAt)-1]
	if cs.Count() != final.count {
		t.Fatalf("final count %d, want %d", cs.Count(), final.count)
	}
}

// TestConcurrentShardedWriters: multiple writer goroutines apply
// disjoint shard partitions of one net batch (dyndb.Partition keeps all
// commands on a tuple in one shard, so the partitions commute) while
// readers continuously check internal consistency; the final state must
// match the static oracle. Run with -race.
func TestConcurrentShardedWriters(t *testing.T) {
	q := cq.MustParse("Q(y) :- E(x,y), T(y)")
	rng := rand.New(rand.NewSource(61))
	init := workload.RandomDatabase(rng, q.Schema(), 40, 150)
	// A net batch: coalesce a random stream so the partitions commute.
	net := Coalesce(workload.RandomStream(rng, q.Schema(), 40, 2000, 0.3))
	const writers = 4

	cs, err := NewConcurrent(q, ConcurrentOptions{Workers: writers})
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.Load(init); err != nil {
		t.Fatal(err)
	}
	parts := dyndb.Partition(net, writers)
	var writerWG, readerWG sync.WaitGroup
	var done atomic.Bool
	for r := 0; r < 2; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for !done.Load() {
				cs.View(func(s *QuerySnapshot, _ uint64) {
					if got, want := uint64(len(s.Tuples())), s.Count(); got != want {
						t.Errorf("reader saw %d tuples but count %d", got, want)
					}
				})
			}
		}()
	}
	for _, part := range parts {
		writerWG.Add(1)
		go func(part []Update) {
			defer writerWG.Done()
			if _, err := cs.ApplyBatched(part, 100); err != nil {
				t.Error(err)
			}
		}(part)
	}
	writerWG.Wait()
	done.Store(true)
	readerWG.Wait()

	// Final state must equal the oracle: init plus the net batch.
	db := init.Clone()
	if err := db.ApplyAll(net); err != nil {
		t.Fatal(err)
	}
	want := eval.Evaluate(q, db)
	if got := cs.Count(); got != uint64(want.Len()) {
		t.Fatalf("final count %d, oracle %d", got, want.Len())
	}
	if !sameTuples(cs.Tuples(), want.Tuples()) {
		t.Fatal("final tuples disagree with oracle")
	}
}
