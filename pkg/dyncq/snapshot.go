package dyncq

import (
	"fmt"
	"sort"

	"dyncq/internal/tuplekey"
)

// This file implements the MVCC read side of the workspace and the
// per-query delta export feeding the serving layer (internal/server).
//
// Snapshots are copy-on-pin with a version-keyed shared cache
// (snapshot_cache.go): the FIRST pin at a committed version
// materialises the query's result (and the store's summary statistics)
// into an immutable buffer under a brief read lock; every further pin
// at the same version is one atomic pointer load returning the SAME
// QuerySnapshot — N concurrent readers share one buffer, and re-pinning
// an unchanged version enumerates nothing and allocates nothing. A
// reader iterating a snapshot NEVER blocks ApplyBatch — the paper's
// update procedure keeps running while an arbitrarily slow enumeration
// walks a consistent past state. Commits advance a demanded cache in
// place (delta patch or sized re-enumeration) and drop an undemanded
// one, so a write-only stream pays nothing — updates stay the hot path.
//
// Delta capture is the push half: a registered hook observes, per
// committed version, exactly which tuples each query's result gained
// and lost. The workspace computes the delta generically (a shadow
// result diffed against the backend's enumeration after each commit),
// so every strategy — core, IVM, recompute — exports deltas without
// per-backend plumbing. The cache advance reuses the same diff: when a
// capture is active, the committed DeltaEvent patches the previous flat
// buffer in O(|result| + |delta|) with no backend enumeration at all.

// QuerySnapshot is one query's result pinned at one committed version.
// It is immutable and safe for concurrent use by any number of
// goroutines; it never blocks or observes later writers.
type QuerySnapshot struct {
	name    string
	version uint64
	epoch   uint64
	card    int
	adom    int
	arity   int
	n       int
	flat    []Value // n×arity values, row-major
}

// Name returns the query's registration name.
func (s *QuerySnapshot) Name() string { return s.name }

// Version returns the workspace version the snapshot pinned.
func (s *QuerySnapshot) Version() uint64 { return s.version }

// StoreEpoch returns the shared store's epoch at the pinned version.
func (s *QuerySnapshot) StoreEpoch() uint64 { return s.epoch }

// Cardinality returns |D| of the shared store at the pinned version.
func (s *QuerySnapshot) Cardinality() int { return s.card }

// ActiveDomainSize returns n = |adom(D)| at the pinned version.
func (s *QuerySnapshot) ActiveDomainSize() int { return s.adom }

// Arity returns the width of the result tuples (0 for boolean queries).
func (s *QuerySnapshot) Arity() int { return s.arity }

// Count returns |ϕ(D)| at the pinned version.
func (s *QuerySnapshot) Count() uint64 { return uint64(s.n) }

// Len returns the number of result tuples (int-typed Count).
func (s *QuerySnapshot) Len() int { return s.n }

// Answer reports whether ϕ(D) was nonempty at the pinned version.
func (s *QuerySnapshot) Answer() bool { return s.n > 0 }

// Tuple returns the i-th result tuple as a window into the snapshot's
// buffer. The window is immutable; do not modify it.
func (s *QuerySnapshot) Tuple(i int) []Value {
	if s.arity == 0 {
		return nil
	}
	return s.flat[i*s.arity : (i+1)*s.arity]
}

// Enumerate streams the pinned result in the order the backend
// enumerated it at pin time. Unlike Handle.Enumerate it holds no lock:
// yield may take arbitrarily long, apply updates, or call any workspace
// method — concurrent writers proceed regardless. The yielded slice is
// a window into the snapshot's buffer, valid (and immutable) for the
// snapshot's whole lifetime.
func (s *QuerySnapshot) Enumerate(yield func(tuple []Value) bool) {
	if s.arity == 0 {
		for i := 0; i < s.n; i++ {
			if !yield(nil) {
				return
			}
		}
		return
	}
	for i := 0; i < s.n; i++ {
		if !yield(s.flat[i*s.arity : (i+1)*s.arity]) {
			return
		}
	}
}

// Tuples returns the pinned result as a sized slice of row windows into
// the snapshot's buffer — one allocation regardless of result size. The
// windows are capacity-capped and immutable, exactly like Tuple's: do
// not modify them (the buffer may be shared by any number of pinners).
func (s *QuerySnapshot) Tuples() [][]Value {
	out := make([][]Value, s.n)
	if s.arity == 0 {
		return out // n empty tuples, same shape Enumerate yields
	}
	for i := range out {
		out[i] = s.flat[i*s.arity : (i+1)*s.arity : (i+1)*s.arity]
	}
	return out
}

// snapshotLocked materialises the handle's current result — the
// copy-on-pin slow path behind the version-keyed cache. Callers hold at
// least the workspace read lock (or exclusive access).
//
// Order contract: a core backend's snapshot preserves the engine's live
// enumeration order byte for byte; every other strategy's snapshot is
// canonicalised to lexicographic tuple order. IVM enumerates a Go map
// (nondeterministic between identical pins), so without the sort two
// pins of one unchanged version could disagree — and the delta-patched
// advance needs a deterministic order to merge DeltaEvents into.
func (h *Handle) snapshotLocked() *QuerySnapshot {
	w := h.ws
	s := &QuerySnapshot{
		name:    h.name,
		version: w.version.Load(),
		epoch:   w.store.Epoch(),
		card:    w.store.Cardinality(),
		adom:    w.store.ActiveDomainSize(),
		arity:   h.query.Arity(),
	}
	h.fillSnapshot(s)
	return s
}

// fillSnapshot populates n and the flat buffer from the backend's
// current result, enforcing the order contract above. Callers hold the
// read lock or exclusive access.
func (h *Handle) fillSnapshot(s *QuerySnapshot) {
	if s.arity == 0 {
		// Boolean query: the result is {()} or ∅; do not rely on the
		// backend enumerating empty tuples.
		s.n = int(h.back.Count())
		return
	}
	// Count is O(1) for the maintained strategies, so the flat buffer is
	// one exactly-sized allocation; recompute's Count is itself a full
	// evaluation, so it keeps the growing append instead of paying twice.
	if h.strategy != StrategyRecompute {
		s.flat = make([]Value, 0, int(h.back.Count())*s.arity)
	}
	h.back.Enumerate(func(t []Value) bool {
		s.flat = append(s.flat, t...)
		return true
	})
	s.n = len(s.flat) / s.arity
	if h.strategy != StrategyCore {
		sortFlatRows(s.flat, s.arity)
	}
}

// Snapshot pins this query's result at the latest committed version.
// Pinning an already-materialised version is O(1) — one atomic pointer
// load returning the SAME immutable snapshot every concurrent pinner
// shares, with zero enumeration and zero result-buffer allocation. Only
// the first pin of a version copies the result out under a brief read
// lock. Either way the returned snapshot is read without any lock at
// all: use it whenever the consumer of an enumeration is slow (a
// network peer, a report writer) — Handle.Enumerate holds the read lock
// for its whole run and therefore stalls writers, a pinned snapshot
// never does.
func (h *Handle) Snapshot() *QuerySnapshot {
	if s := h.CachedSnapshot(); s != nil {
		return s
	}
	h.ws.mu.RLock()
	defer h.ws.mu.RUnlock()
	return h.pinLocked()
}

// WorkspaceSnapshot pins several queries' results at ONE committed
// version: all pinned queries observed the same committed prefix of the
// update stream. Like QuerySnapshot it is immutable, lock-free, and
// safe for concurrent use.
type WorkspaceSnapshot struct {
	version uint64
	epoch   uint64
	card    int
	adom    int
	order   []string
	queries map[string]*QuerySnapshot
}

// Version returns the pinned workspace version.
func (s *WorkspaceSnapshot) Version() uint64 { return s.version }

// StoreEpoch returns the shared store's epoch at the pinned version.
func (s *WorkspaceSnapshot) StoreEpoch() uint64 { return s.epoch }

// Cardinality returns |D| of the shared store at the pinned version.
func (s *WorkspaceSnapshot) Cardinality() int { return s.card }

// ActiveDomainSize returns n = |adom(D)| at the pinned version.
func (s *WorkspaceSnapshot) ActiveDomainSize() int { return s.adom }

// Queries returns the pinned query names in registration order.
func (s *WorkspaceSnapshot) Queries() []string { return append([]string(nil), s.order...) }

// Query returns the named query's pinned snapshot, or nil when the
// snapshot does not cover that name.
func (s *WorkspaceSnapshot) Query(name string) *QuerySnapshot { return s.queries[name] }

// Snapshot pins the named queries (all registered queries when none are
// given) at the latest committed version. It panics on a name with no
// registered query, exactly as WorkspaceView reads do.
func (w *Workspace) Snapshot(names ...string) *WorkspaceSnapshot {
	w.mu.RLock()
	defer w.mu.RUnlock()
	s := &WorkspaceSnapshot{
		version: w.version.Load(),
		epoch:   w.store.Epoch(),
		card:    w.store.Cardinality(),
		adom:    w.store.ActiveDomainSize(),
		queries: make(map[string]*QuerySnapshot),
	}
	if len(names) == 0 {
		for _, h := range w.order {
			s.order = append(s.order, h.name)
			s.queries[h.name] = h.pinLocked()
		}
		return s
	}
	for _, name := range names {
		h := w.handles[name]
		if h == nil {
			panic(fmt.Sprintf("dyncq: no query %q registered in this workspace", name))
		}
		if _, dup := s.queries[name]; dup {
			continue
		}
		s.order = append(s.order, name)
		s.queries[name] = h.pinLocked()
	}
	return s
}

// ---- delta capture ----

// DeltaEvent is one query's result change at one committed version: the
// tuples the result gained and lost relative to the previous version.
// Added and Removed are disjoint, each sorted in lexicographic tuple
// order — so the event's rendering is deterministic, byte for byte,
// regardless of worker count or backend enumeration order. Both may be
// empty: every committed version emits exactly one event per captured
// query (subscribers track the committed version in lockstep and an
// unchanged result is itself information).
type DeltaEvent struct {
	// Query is the registration name.
	Query string
	// Version is the committed workspace version the event describes.
	Version uint64
	// Epoch is the shared store's epoch at that version.
	Epoch uint64
	// Added and Removed hold the gained and lost result tuples. The
	// slices (and their tuples) are owned by the hook once delivered.
	Added   [][]Value
	Removed [][]Value
}

// deltaCapture is the per-handle shadow state behind CaptureDeltas: the
// previous result keyed by tuple, diffed against the backend's
// enumeration after every commit. gen stamps the current diff pass so
// one enumeration classifies kept/added and one range sweep finds the
// removed.
type deltaCapture struct {
	hook    func(DeltaEvent)
	shadow  *tuplekey.Map[uint64]
	gen     uint64
	boolean bool
	prev    bool // boolean queries: previous answer bit
}

// CaptureDeltas starts per-commit delta capture for the named query:
// after every committed version change (Apply, ApplyBatch, Load — any
// write path), hook receives exactly one DeltaEvent describing how the
// query's result changed. The hook runs inside the commit, with the
// workspace write lock held: it MUST NOT block and MUST NOT call any
// workspace, handle, or session method (the serving layer's broker
// satisfies this by handing pre-encoded frames to per-connection
// buffers with a non-blocking send). Hooks of different queries may run
// concurrently (the capture fan-out uses the workspace worker pool);
// one query's hook is never invoked concurrently with itself and
// observes strictly increasing versions. Only one capture per query may
// be active; Unregister drops it.
func (w *Workspace) CaptureDeltas(name string, hook func(DeltaEvent)) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	h := w.handles[name]
	if h == nil {
		return fmt.Errorf("dyncq: no query %q registered in this workspace", name)
	}
	if h.capture != nil {
		return fmt.Errorf("dyncq: query %q already has an active delta capture", name)
	}
	if hook == nil {
		return fmt.Errorf("dyncq: nil delta hook for query %q", name)
	}
	c := &deltaCapture{hook: hook, boolean: h.query.Arity() == 0}
	if c.boolean {
		c.prev = h.back.Answer()
	} else {
		c.shadow = tuplekey.NewMap[uint64](int(h.back.Count()))
		h.back.Enumerate(func(t []Value) bool {
			c.shadow.Put(append([]Value(nil), t...), 0)
			return true
		})
	}
	h.capture = c
	return nil
}

// StopDeltaCapture stops delta capture for the named query, reporting
// whether a capture was active. Events already delivered stay
// delivered; no further events follow.
func (w *Workspace) StopDeltaCapture(name string) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	h := w.handles[name]
	if h == nil || h.capture == nil {
		return false
	}
	h.capture = nil
	return true
}

// afterCommitLocked fans the post-commit read-side maintenance out over
// every handle that needs any: the delta-capture diff (CaptureDeltas)
// and the cached-snapshot advance (snapshot_cache.go), on the workspace
// worker pool (per-handle shadows and caches are private; backend reads
// over the now-quiescent store are safe concurrently). Called at the
// end of every committed state change, with exclusive access, after
// w.version moved. Handles with neither a capture nor a cached snapshot
// cost nothing here — the paper's per-update bound is untouched for
// write-only workloads.
func (w *Workspace) afterCommitLocked() {
	var active []int
	for i, h := range w.order {
		if h.capture != nil || h.snap.Load() != nil {
			active = append(active, i)
		}
	}
	if len(active) == 0 {
		return
	}
	runPool(active, w.workers, func(i int) {
		w.order[i].afterCommit()
	})
}

// afterCommit runs one handle's post-commit read-side maintenance. The
// snapshot advance reads the DeltaEvent BEFORE the hook is delivered —
// the event's slices are owned by the hook once delivered, and the
// advance only copies values out, never retains them.
func (h *Handle) afterCommit() {
	if c := h.capture; c != nil {
		ev := h.captureDelta()
		h.advanceSnapshot(&ev)
		c.hook(ev)
		return
	}
	h.advanceSnapshot(nil)
}

// captureDelta diffs the handle's current result against its shadow and
// returns the event (the caller delivers it). One enumeration pass
// stamps kept tuples with the new generation and collects the added
// ones; one sweep over the shadow collects everything the result no
// longer contains.
func (h *Handle) captureDelta() DeltaEvent {
	c := h.capture
	ev := DeltaEvent{Query: h.name, Version: h.ws.version.Load(), Epoch: h.ws.store.Epoch()}
	if c.boolean {
		now := h.back.Answer()
		if now && !c.prev {
			ev.Added = [][]Value{nil}
		} else if !now && c.prev {
			ev.Removed = [][]Value{nil}
		}
		c.prev = now
		return ev
	}
	c.gen++
	n := 0
	h.back.Enumerate(func(t []Value) bool {
		n++
		if _, known := c.shadow.Get(t); known {
			c.shadow.Put(t, c.gen) // existing key is kept; t is not retained
		} else {
			tt := append([]Value(nil), t...)
			c.shadow.Put(tt, c.gen)
			ev.Added = append(ev.Added, tt)
		}
		return true
	})
	if c.shadow.Len() > n {
		c.shadow.Range(func(t []Value, gen uint64) bool {
			if gen != c.gen {
				ev.Removed = append(ev.Removed, t)
			}
			return true
		})
		for _, t := range ev.Removed {
			c.shadow.Delete(t)
		}
	}
	sortTuplesLex(ev.Added)
	sortTuplesLex(ev.Removed)
	return ev
}

// sortTuplesLex orders tuples lexicographically — the deterministic
// order every DeltaEvent is delivered in.
func sortTuplesLex(ts [][]Value) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
}
