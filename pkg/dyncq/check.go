package dyncq

import "fmt"

// This file is the workspace's self-checking surface, built for the
// torture harness (internal/torture) but useful to any operator: one
// call that verifies the cross-layer invariants the engine's correctness
// rests on — store bookkeeping, shared-index epoch lockstep, and index
// content consistency. The checks are read-only and run under the read
// lock, so they can interleave with live readers (but, like every read,
// they serialise behind writers).

// CheckInvariants verifies the workspace's internal invariants against
// its current committed state and returns the first violation found:
//
//   - the shared store's cardinality equals the sum of its relations'
//     sizes (shard bookkeeping);
//   - the shared index set (when an IVM query is registered) is in epoch
//     lockstep with the store — every mutation was reported, so no
//     silent drop-and-rebuild is pending;
//   - every built index passes eval.IndexSet.SanityCheck: bucket
//     position maps exact, no stale tuples, per-relation counts equal
//     the store's.
//
// A healthy workspace — one whose every mutation went through the update
// pipeline — passes at any point between commits. The call is
// read-locked and safe for concurrent use.
func (w *Workspace) CheckInvariants() error {
	w.mu.RLock()
	defer w.mu.RUnlock()
	total := 0
	for _, rel := range w.store.Relations() {
		total += w.store.Relation(rel).Len()
	}
	if total != w.store.Cardinality() {
		return fmt.Errorf("dyncq: store cardinality %d, but relations hold %d tuples", w.store.Cardinality(), total)
	}
	if w.idx != nil {
		if !w.idx.Synced() {
			return fmt.Errorf("dyncq: shared index set at epoch %d, store at epoch %d — a mutation bypassed the pipeline",
				w.idx.Epoch(), w.store.Epoch())
		}
		if err := w.idx.SanityCheck(); err != nil {
			return fmt.Errorf("dyncq: shared index set: %w", err)
		}
	}
	return nil
}

// StoreEpoch returns the shared store's epoch counter (advanced by every
// mutation and Clear) — the number the shared index set's lockstep is
// checked against.
func (w *Workspace) StoreEpoch() uint64 {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.store.Epoch()
}
