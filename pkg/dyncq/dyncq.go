// Package dyncq is the front door of the repository: a workspace layer
// in which ONE shared dynamic database serves any number of registered
// live queries over a common update stream (Workspace / Handle), each
// query classified via internal/qtree and routed to the best
// maintenance strategy the theory allows:
//
//   - q-hierarchical queries go to internal/core.Engine, the paper's
//     Section 6 structure with O(1) update time, O(1) counting and
//     constant-delay enumeration (Theorem 3.2);
//   - everything else falls back to internal/ivm.Maintainer, the
//     counting-based incremental view maintenance baseline whose update
//     cost is a residual join — by Theorems 3.3–3.5 no strategy can do
//     fundamentally better on these queries (conditional on OMv/OV);
//   - a recompute-from-scratch strategy over internal/eval is available
//     for benchmarking and as a correctness oracle.
//
// Every batch is coalesced once, applied to the shared store once, and
// the net delta fanned out to every registered query's maintenance
// structure — the store mutation count is independent of how many
// queries are live. All strategies expose one uniform read API: Count,
// Answer, Enumerate, Tuples; Strategy() and Classification() let
// callers introspect the routing decision. Session (one query, single
// goroutine) and ConcurrentSession (one query, locked) are thin
// compatibility wrappers over a single-query Workspace.
package dyncq

import (
	"fmt"

	"dyncq/internal/cq"
	"dyncq/internal/dyndb"
	"dyncq/internal/qtree"
)

// Value is a database constant.
type Value = dyndb.Value

// Update is a single-tuple update command.
type Update = dyndb.Update

// Op distinguishes the two update commands.
type Op = dyndb.Op

// The two update commands.
const (
	OpInsert = dyndb.OpInsert
	OpDelete = dyndb.OpDelete
)

// Database is a dynamic set-semantics database, the argument of
// Session.Load. Build one with NewDatabase; internal/dyndb is not
// importable from outside the module.
type Database = dyndb.Database

// NewDatabase returns an empty database.
func NewDatabase() *Database { return dyndb.New() }

// Insert returns an insertion command for the given tuple.
func Insert(rel string, tuple ...Value) Update { return dyndb.Insert(rel, tuple...) }

// Delete returns a deletion command for the given tuple.
func Delete(rel string, tuple ...Value) Update { return dyndb.Delete(rel, tuple...) }

// Coalesce reduces a batch to its net effect: the last command per
// (relation, tuple) pair wins. ApplyBatch does this internally; it is
// exported for callers that want to inspect or persist net batches.
func Coalesce(updates []Update) []Update { return dyndb.Coalesce(updates) }

// Strategy identifies the maintenance backend serving a session.
type Strategy int

const (
	// StrategyAuto (the zero value) lets New pick the best backend from
	// the query classification. Session.Strategy never returns it.
	StrategyAuto Strategy = iota
	// StrategyCore is the paper's dynamic structure (internal/core):
	// O(1) updates, O(1) count, constant-delay enumeration. Requires a
	// q-hierarchical query.
	StrategyCore
	// StrategyIVM is counting-based incremental view maintenance
	// (internal/ivm): any CQ, updates cost a residual join.
	StrategyIVM
	// StrategyRecompute stores the database only and re-evaluates the
	// query from scratch (internal/eval) on every read.
	StrategyRecompute
)

// String returns the strategy name used by the CLI and benchmark output.
func (s Strategy) String() string {
	switch s {
	case StrategyAuto:
		return "auto"
	case StrategyCore:
		return "core"
	case StrategyIVM:
		return "ivm"
	case StrategyRecompute:
		return "recompute"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// ParseStrategy converts a CLI name ("auto", "core", "ivm", "recompute")
// to a Strategy.
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "auto":
		return StrategyAuto, nil
	case "core":
		return StrategyCore, nil
	case "ivm":
		return StrategyIVM, nil
	case "recompute":
		return StrategyRecompute, nil
	default:
		return StrategyAuto, fmt.Errorf("unknown strategy %q (want auto, core, ivm or recompute)", name)
	}
}

// Options configures per-query construction (Workspace.RegisterQuery
// and the Session compatibility wrapper).
type Options struct {
	// Force pins the backend instead of routing by classification.
	// StrategyAuto (the zero value) means: classify and choose. Forcing
	// StrategyCore on a non-q-hierarchical query fails with
	// core.ErrNotQHierarchical.
	Force Strategy
	// Shards splits the core engine's per-component state by root-value
	// hash (rounded up to a power of two; 0 or 1 means unsharded, the
	// paper's exact layout with the canonical enumeration order). Sharding
	// is the prerequisite for parallel batch application — see
	// NewConcurrent — and only affects StrategyCore; the other backends
	// ignore it.
	Shards int
}

// Session maintains the result of one conjunctive query under updates
// behind whichever strategy the classification (or Options.Force)
// selected. It is a thin compatibility wrapper over a private Workspace
// with exactly one registered query — new code serving several queries
// over one update stream should use Workspace directly, which shares
// the store instead of duplicating it per query. A Session is not safe
// for concurrent use; wrap it in a ConcurrentSession (NewConcurrent),
// or use a Workspace, to share maintained queries across goroutines.
type Session struct {
	ws *Workspace
	h  *Handle
}

// sessionQueryName is the registration name of a Session's single query
// inside its private workspace.
const sessionQueryName = "q"

// New builds a session for q over the empty database, routing by
// classification: core for q-hierarchical queries, IVM otherwise.
func New(q *cq.Query) (*Session, error) {
	return NewWithOptions(q, Options{})
}

// NewWithOptions builds a session with explicit options.
func NewWithOptions(q *cq.Query, opt Options) (*Session, error) {
	ws := NewWorkspace(WorkspaceOptions{})
	h, err := ws.RegisterQuery(sessionQueryName, q, opt)
	if err != nil {
		return nil, err
	}
	return &Session{ws: ws, h: h}, nil
}

// Workspace returns the workspace backing this session — the migration
// path for callers outgrowing the single-query API: register more
// queries on it and they share the session's store and update stream.
// The session's own methods bypass the workspace lock (a Session is
// single-goroutine by contract), so once the returned workspace is
// shared across goroutines, all concurrent access must go through the
// workspace and its handles, not through this Session.
func (s *Session) Workspace() *Workspace { return s.ws }

// Handle returns the session's query handle inside its workspace.
func (s *Session) Handle() *Handle { return s.h }

// Open parses the query text (see cq.Parse for the syntax) and builds an
// auto-routed session — the one-call entry point used by the CLI.
func Open(text string) (*Session, error) {
	q, err := cq.Parse(text)
	if err != nil {
		return nil, err
	}
	return New(q)
}

// Query returns the maintained query.
func (s *Session) Query() *cq.Query { return s.h.query }

// Strategy returns the backend actually serving this session (never
// StrategyAuto).
func (s *Session) Strategy() Strategy { return s.h.strategy }

// Classification returns the full taxonomy verdict computed at
// construction time.
func (s *Session) Classification() qtree.Classification { return s.h.class }

// Insert applies "insert R(a1,…,ar)", reporting whether the database
// changed (set semantics).
func (s *Session) Insert(rel string, tuple ...Value) (bool, error) {
	return s.ws.applyExclusive(dyndb.Insert(rel, tuple...))
}

// Delete applies "delete R(a1,…,ar)", reporting whether the database
// changed.
func (s *Session) Delete(rel string, tuple ...Value) (bool, error) {
	return s.ws.applyExclusive(dyndb.Delete(rel, tuple...))
}

// Apply executes one update command.
func (s *Session) Apply(u Update) (bool, error) { return s.ws.applyExclusive(u) }

// ApplyAll executes a sequence of updates one at a time, stopping at the
// first error. For bulk work prefer ApplyBatch, which lets the backend
// coalesce the batch and amortise its maintenance cost.
func (s *Session) ApplyAll(updates []Update) error {
	for _, u := range updates {
		if _, err := s.ws.applyExclusive(u); err != nil {
			return err
		}
	}
	return nil
}

// ApplyBatch executes a batch of updates through the backend's batch
// pipeline: the batch is coalesced so insert/delete pairs on the same
// tuple cancel, and the backend propagates the net delta with per-batch
// instead of per-update bookkeeping (core touches each affected view node
// once per net command and bumps its version once; ivm joins each
// relation's delta set against the base relations once per batch; the
// recompute strategy only updates the stored database, deferring its one
// recompute to the next read). Returns the number of net commands that
// changed the database.
func (s *Session) ApplyBatch(updates []Update) (int, error) {
	return s.ws.applyBatchExclusive(updates)
}

// ApplyBatched splits the updates into chunks of batchSize and applies
// each through ApplyBatch, returning the total number of net commands
// that changed the database and stopping at the first error. batchSize
// <= 0 applies everything as a single batch.
func (s *Session) ApplyBatched(updates []Update, batchSize int) (int, error) {
	return applyInChunks(updates, batchSize, s.ApplyBatch)
}

// applyInChunks is the shared chunking loop behind every ApplyBatched
// (Session, ConcurrentSession, Workspace): split into batchSize chunks,
// apply each, accumulate net changes, stop at the first error.
// batchSize <= 0 applies everything as a single batch.
func applyInChunks(updates []Update, batchSize int, apply func([]Update) (int, error)) (int, error) {
	if batchSize <= 0 {
		return apply(updates)
	}
	applied := 0
	for from := 0; from < len(updates); from += batchSize {
		to := from + batchSize
		if to > len(updates) {
			to = len(updates)
		}
		n, err := apply(updates[from:to])
		applied += n
		if err != nil {
			return applied, err
		}
	}
	return applied, nil
}

// Load performs the preprocessing phase for an initial database through
// the backend's bulk path: core builds its counters and fit lists in one
// linear pass, ivm rebuilds its materialised result with a single full
// evaluation, recompute adopts the tuples.
//
// Load has reset-then-load semantics on every backend: after Load the
// session represents exactly db, discarding any state from earlier
// updates or Loads; a failed Load (an arity clash between db and the
// query schema) leaves the session representing the EMPTY database.
// Either way the prior state is discarded. To add a database's tuples
// on top of the current state, feed db.Updates() through ApplyBatch
// instead.
func (s *Session) Load(db *dyndb.Database) error { return s.ws.loadExclusive(db) }

// Count returns |ϕ(D)|, the number of distinct result tuples.
func (s *Session) Count() uint64 { return s.h.back.Count() }

// Answer reports whether ϕ(D) is nonempty.
func (s *Session) Answer() bool { return s.h.back.Answer() }

// Enumerate calls yield for every result tuple until yield returns
// false. For a Boolean query that holds, yield is called once with an
// empty tuple.
//
// The enumeration contract is uniform across all backends: the slice
// passed to yield is owned by the callee and only valid for the duration
// of the call — it may be reused for the next tuple, so callers that
// retain tuples must copy them (Tuples does). Mutating the yielded slice
// inside yield is harmless to the session's state but the mutation is
// not preserved either.
func (s *Session) Enumerate(yield func(tuple []Value) bool) { s.h.back.Enumerate(yield) }

// Tuples returns the full result as freshly allocated tuples, in the
// backend's enumeration order.
func (s *Session) Tuples() [][]Value { return collectTuples(s.h.back) }

// Cardinality returns |D| of the maintained database.
func (s *Session) Cardinality() int { return s.ws.store.Cardinality() }

// ActiveDomainSize returns n = |adom(D)|.
func (s *Session) ActiveDomainSize() int { return s.ws.store.ActiveDomainSize() }
