package dyncq

import (
	"sync"

	"dyncq/internal/cq"
	"dyncq/internal/dyndb"
)

// This file implements the concurrent front door of the session layer:
// a ConcurrentSession serialises all structural commits behind a
// sync.RWMutex — so any number of goroutines may submit updates and read
// results — and, on the core backend, applies each batch's shard-disjoint
// deltas on parallel worker goroutines (core.Engine.ApplyBatchParallel).
//
// The concurrency model, in one paragraph: writers (Insert, Delete,
// Apply, ApplyBatch, ApplyBatched, Load) take the write lock, so exactly
// one batch is in flight at a time and each commits atomically; readers
// (Count, Answer, Enumerate, Tuples, View, …) take the read lock, run
// concurrently with each other, and are excluded only while a write
// holds the lock — a reader therefore always observes the state after
// some whole prefix of the committed batch sequence, never a torn
// mid-batch state. Version() counts committed state changes (the
// session-level analogue of the version counter core.Engine bumps per
// batch to invalidate iterators); View hands a callback the pinned
// version together with locked access, so multi-call reads (count +
// enumerate, say) are snapshot-consistent.

// parallelBatcher is implemented by backends whose ApplyBatch can fan
// shard-disjoint work out to worker goroutines (core.Engine). The other
// backends degrade gracefully to their sequential batch path — for IVM
// and recompute the cross-relation residual joins prevent sharding, so
// there is nothing disjoint to hand to workers. Shards reports the
// backend's shard count: on an unsharded backend ApplyBatchParallel is
// the sequential path, and Parallel() must say so.
type parallelBatcher interface {
	ApplyBatchParallel([]dyndb.Update, int) (int, error)
	Shards() int
}

// ConcurrentOptions configures NewConcurrent.
type ConcurrentOptions struct {
	// Force pins the backend, exactly as Options.Force.
	Force Strategy
	// Workers is the number of goroutines a single batch's shard deltas
	// are applied on (core backend only; <= 1 keeps every path
	// sequential). The core engine is built with 4×Workers shards so the
	// dynamic bucket claim keeps all workers busy even when root values
	// hash unevenly.
	Workers int
	// Shards overrides the shard count derived from Workers (rounded up
	// to a power of two). 0 means derive.
	Shards int
}

// ConcurrentSession is a Session that is safe for concurrent use. Build
// one with NewConcurrent; the zero value is not ready.
type ConcurrentSession struct {
	mu      sync.RWMutex
	s       *Session
	workers int
	version uint64
}

// NewConcurrent builds a concurrency-safe session for q. Routing follows
// the same classification as New; opt.Workers > 1 additionally enables
// sharded parallel batch application when the core backend serves the
// query (other backends keep their sequential batch pipeline and are
// merely lock-protected).
func NewConcurrent(q *cq.Query, opt ConcurrentOptions) (*ConcurrentSession, error) {
	shards := opt.Shards
	if shards == 0 && opt.Workers > 1 {
		shards = 4 * opt.Workers
	}
	s, err := NewWithOptions(q, Options{Force: opt.Force, Shards: shards})
	if err != nil {
		return nil, err
	}
	return &ConcurrentSession{s: s, workers: opt.Workers}, nil
}

// OpenConcurrent parses the query text and builds an auto-routed
// concurrent session with the given worker count.
func OpenConcurrent(text string, workers int) (*ConcurrentSession, error) {
	q, err := cq.Parse(text)
	if err != nil {
		return nil, err
	}
	return NewConcurrent(q, ConcurrentOptions{Workers: workers})
}

// Query returns the maintained query. Immutable after construction.
func (c *ConcurrentSession) Query() *cq.Query { return c.s.Query() }

// Strategy returns the backend serving this session. Immutable after
// construction.
func (c *ConcurrentSession) Strategy() Strategy { return c.s.Strategy() }

// Workers returns the configured worker count.
func (c *ConcurrentSession) Workers() int { return c.workers }

// Parallel reports whether batches are applied with sharded parallel
// workers (core backend, Workers > 1, more than one shard) or through
// the sequential pipeline under the lock.
func (c *ConcurrentSession) Parallel() bool {
	pb, ok := c.s.back.(parallelBatcher)
	return ok && c.workers > 1 && pb.Shards() > 1
}

// Version returns the number of committed state changes (every Load
// counts as one — even a failed Load discards the prior state, see
// Session.Load). Two reads inside one View callback see the same
// version; a bare Version call is only a point-in-time sample.
func (c *ConcurrentSession) Version() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.version
}

// Insert applies one insertion, atomically with respect to readers.
func (c *ConcurrentSession) Insert(rel string, tuple ...Value) (bool, error) {
	return c.Apply(dyndb.Insert(rel, tuple...))
}

// Delete applies one deletion, atomically with respect to readers.
func (c *ConcurrentSession) Delete(rel string, tuple ...Value) (bool, error) {
	return c.Apply(dyndb.Delete(rel, tuple...))
}

// Apply executes one update command under the write lock.
func (c *ConcurrentSession) Apply(u Update) (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	changed, err := c.s.Apply(u)
	if changed {
		c.version++
	}
	return changed, err
}

// ApplyBatch executes a batch atomically: readers observe either the
// state before the whole batch or after it, never a torn intermediate.
// On the core backend with Workers > 1 the coalesced batch's shard
// deltas are applied by parallel worker goroutines; other backends run
// their sequential batch pipeline. Returns the number of net commands
// that changed the database.
func (c *ConcurrentSession) ApplyBatch(updates []Update) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.applyBatchLocked(updates)
}

func (c *ConcurrentSession) applyBatchLocked(updates []Update) (int, error) {
	var (
		n   int
		err error
	)
	if pb, ok := c.s.back.(parallelBatcher); ok && c.workers > 1 {
		n, err = pb.ApplyBatchParallel(updates, c.workers)
	} else {
		n, err = c.s.ApplyBatch(updates)
	}
	if n > 0 {
		c.version++
	}
	return n, err
}

// ApplyBatched splits the updates into chunks of batchSize and commits
// each chunk atomically (readers may observe the state between chunks —
// each chunk is one version). batchSize <= 0 applies one batch.
func (c *ConcurrentSession) ApplyBatched(updates []Update, batchSize int) (int, error) {
	if batchSize <= 0 {
		return c.ApplyBatch(updates)
	}
	applied := 0
	for from := 0; from < len(updates); from += batchSize {
		to := from + batchSize
		if to > len(updates) {
			to = len(updates)
		}
		n, err := c.ApplyBatch(updates[from:to])
		applied += n
		if err != nil {
			return applied, err
		}
	}
	return applied, nil
}

// Load performs the preprocessing phase under the write lock, with the
// uniform reset-then-load contract of Session.Load. The version always
// advances: success and failure both discard the prior state (a failed
// Load leaves the empty database).
func (c *ConcurrentSession) Load(db *Database) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	err := c.s.Load(db)
	c.version++
	return err
}

// Count returns |ϕ(D)| for the latest committed state.
func (c *ConcurrentSession) Count() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.s.Count()
}

// Answer reports whether ϕ(D) is nonempty for the latest committed state.
func (c *ConcurrentSession) Answer() bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.s.Answer()
}

// Enumerate streams the result of the latest committed state, holding
// the read lock for the whole enumeration: writers wait until it
// finishes, and the enumeration is never invalidated mid-way. The
// Session.Enumerate slice contract applies (copy to retain). The lock
// is not reentrant: yield must not call this ConcurrentSession's own
// methods — a writer called from inside the enumeration self-deadlocks.
// Collect the tuples and apply reactions after Enumerate returns.
func (c *ConcurrentSession) Enumerate(yield func(tuple []Value) bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.s.Enumerate(yield)
}

// Tuples returns the full result of the latest committed state as
// freshly allocated tuples.
func (c *ConcurrentSession) Tuples() [][]Value {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.s.Tuples()
}

// Cardinality returns |D| for the latest committed state.
func (c *ConcurrentSession) Cardinality() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.s.Cardinality()
}

// ActiveDomainSize returns n = |adom(D)| for the latest committed state.
func (c *ConcurrentSession) ActiveDomainSize() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.s.ActiveDomainSize()
}

// View runs f with shared (read-locked) access to the session and the
// version the snapshot pins: every read f performs sees the same
// committed state. f must not call the ConcurrentSession's own methods
// (the lock is not reentrant — a blocked writer between the two
// acquisitions would deadlock) and must not retain s or the yielded
// tuples past its return.
func (c *ConcurrentSession) View(f func(s *Session, version uint64)) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	f(c.s, c.version)
}
