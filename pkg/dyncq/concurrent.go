package dyncq

import (
	"sync"

	"dyncq/internal/cq"
	"dyncq/internal/dyndb"
)

// This file implements the concurrent single-query compatibility
// wrapper. A ConcurrentSession is a Workspace with exactly one
// registered query behind one extra lock layer: writers (Insert,
// Delete, Apply, ApplyBatch, ApplyBatched, Load) serialise behind the
// write lock, so exactly one batch is in flight at a time and each
// commits atomically; readers (Count, Answer, Enumerate, Tuples, View,
// …) take the read lock, run concurrently with each other, and always
// observe the state after some whole prefix of the committed batch
// sequence, never a torn mid-batch state. On the core backend with
// Workers > 1 each batch's shard-disjoint deltas are applied on
// parallel worker goroutines (core.Engine's sharded delta path, driven
// by the workspace).
//
// New code sharing SEVERAL queries across goroutines should use
// Workspace directly — it has the same concurrency model (its own
// RWMutex, atomic commits, snapshot View) and shares one store across
// all queries instead of one store per session.

// ConcurrentOptions configures NewConcurrent.
type ConcurrentOptions struct {
	// Force pins the backend, exactly as Options.Force.
	Force Strategy
	// Workers is the number of goroutines a single batch's shard deltas
	// are applied on (core backend only; <= 1 keeps every path
	// sequential). The core engine is built with 4×Workers shards so the
	// dynamic bucket claim keeps all workers busy even when root values
	// hash unevenly.
	Workers int
	// Shards overrides the shard count derived from Workers (rounded up
	// to a power of two). 0 means derive.
	Shards int
}

// ConcurrentSession is a Session that is safe for concurrent use. Build
// one with NewConcurrent; the zero value is not ready.
type ConcurrentSession struct {
	mu      sync.RWMutex
	s       *Session
	workers int
}

// NewConcurrent builds a concurrency-safe session for q. Routing follows
// the same classification as New; opt.Workers > 1 additionally enables
// sharded parallel batch application when the core backend serves the
// query (other backends keep their sequential batch pipeline and are
// merely lock-protected).
func NewConcurrent(q *cq.Query, opt ConcurrentOptions) (*ConcurrentSession, error) {
	shards := opt.Shards
	if shards == 0 && opt.Workers > 1 {
		shards = 4 * opt.Workers
	}
	ws := NewWorkspace(WorkspaceOptions{Workers: opt.Workers})
	h, err := ws.RegisterQuery(sessionQueryName, q, Options{Force: opt.Force, Shards: shards})
	if err != nil {
		return nil, err
	}
	return &ConcurrentSession{s: &Session{ws: ws, h: h}, workers: opt.Workers}, nil
}

// OpenConcurrent parses the query text and builds an auto-routed
// concurrent session with the given worker count.
func OpenConcurrent(text string, workers int) (*ConcurrentSession, error) {
	q, err := cq.Parse(text)
	if err != nil {
		return nil, err
	}
	return NewConcurrent(q, ConcurrentOptions{Workers: workers})
}

// Query returns the maintained query. Immutable after construction.
func (c *ConcurrentSession) Query() *cq.Query { return c.s.Query() }

// Strategy returns the backend serving this session. Immutable after
// construction.
func (c *ConcurrentSession) Strategy() Strategy { return c.s.Strategy() }

// Workers returns the configured worker count.
func (c *ConcurrentSession) Workers() int { return c.workers }

// Parallel reports whether batches are applied with sharded parallel
// workers (core backend, Workers > 1, more than one shard) or through
// the sequential pipeline under the lock.
func (c *ConcurrentSession) Parallel() bool {
	return c.workers > 1 && c.s.h.back.shards() > 1
}

// Parallelism returns the session's effective worker and shard counts
// (see Workspace.Parallelism); the single query is registered under the
// name "q".
func (c *ConcurrentSession) Parallelism() Parallelism {
	return c.s.ws.Parallelism()
}

// Version returns the number of committed state changes (every Load
// counts as one — even a failed Load discards the prior state, see
// Session.Load). Two reads inside one View callback see the same
// version; a bare Version call is only a point-in-time sample.
func (c *ConcurrentSession) Version() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.s.ws.Version()
}

// Insert applies one insertion, atomically with respect to readers.
func (c *ConcurrentSession) Insert(rel string, tuple ...Value) (bool, error) {
	return c.Apply(dyndb.Insert(rel, tuple...))
}

// Delete applies one deletion, atomically with respect to readers.
func (c *ConcurrentSession) Delete(rel string, tuple ...Value) (bool, error) {
	return c.Apply(dyndb.Delete(rel, tuple...))
}

// Apply executes one update command under the write lock.
func (c *ConcurrentSession) Apply(u Update) (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.Apply(u)
}

// ApplyBatch executes a batch atomically: readers observe either the
// state before the whole batch or after it, never a torn intermediate.
// On the core backend with Workers > 1 the coalesced batch's shard
// deltas are applied by parallel worker goroutines; other backends run
// their sequential batch pipeline. Returns the number of net commands
// that changed the database.
func (c *ConcurrentSession) ApplyBatch(updates []Update) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.ApplyBatch(updates)
}

// ApplyBatched splits the updates into chunks of batchSize and commits
// each chunk atomically (readers may observe the state between chunks —
// each chunk is one version). batchSize <= 0 applies one batch.
func (c *ConcurrentSession) ApplyBatched(updates []Update, batchSize int) (int, error) {
	return applyInChunks(updates, batchSize, c.ApplyBatch)
}

// Load performs the preprocessing phase under the write lock, with the
// uniform reset-then-load contract of Session.Load. The version always
// advances: success and failure both discard the prior state (a failed
// Load leaves the empty database).
func (c *ConcurrentSession) Load(db *Database) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.Load(db)
}

// Count returns |ϕ(D)| for the latest committed state.
func (c *ConcurrentSession) Count() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.s.Count()
}

// Answer reports whether ϕ(D) is nonempty for the latest committed state.
func (c *ConcurrentSession) Answer() bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.s.Answer()
}

// Enumerate streams the result of the latest committed state, holding
// the read lock for the whole enumeration: writers wait until it
// finishes, and the enumeration is never invalidated mid-way. The
// Session.Enumerate slice contract applies (copy to retain). The lock
// is not reentrant: yield must not call this ConcurrentSession's own
// methods — a writer called from inside the enumeration self-deadlocks.
// Collect the tuples and apply reactions after Enumerate returns.
func (c *ConcurrentSession) Enumerate(yield func(tuple []Value) bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.s.Enumerate(yield)
}

// Tuples returns the full result of the latest committed state as
// freshly allocated tuples.
func (c *ConcurrentSession) Tuples() [][]Value {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.s.Tuples()
}

// Cardinality returns |D| for the latest committed state.
func (c *ConcurrentSession) Cardinality() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.s.Cardinality()
}

// ActiveDomainSize returns n = |adom(D)| for the latest committed state.
func (c *ConcurrentSession) ActiveDomainSize() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.s.ActiveDomainSize()
}

// View runs f against an MVCC snapshot of the session's query, pinned
// at one committed version: every read f performs sees that one state.
// The snapshot is materialised copy-on-pin under a brief read lock and
// the lock is RELEASED before f runs — readers never block writers, and
// f may freely call the ConcurrentSession's own methods (writers it
// invokes commit versions the pinned snapshot simply does not observe).
// The snapshot stays valid past f's return.
func (c *ConcurrentSession) View(f func(s *QuerySnapshot, version uint64)) {
	snap := c.Snapshot()
	f(snap, snap.Version())
}

// Snapshot pins the query's result at the latest committed version (see
// Handle.Snapshot): the copy is taken under a brief read lock, and the
// returned snapshot is read lock-free. Use it instead of Enumerate when
// the consumer is slow — a pinned enumeration never stalls writers.
func (c *ConcurrentSession) Snapshot() *QuerySnapshot {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.s.h.Snapshot()
}
