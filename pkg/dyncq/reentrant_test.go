package dyncq

import "testing"

// Session.Enumerate must keep the pre-workspace reentrancy behaviour: a
// yield that calls a Session writer must not deadlock (single-goroutine
// sessions take no locks).
func TestSessionEnumerateReentrantWriter(t *testing.T) {
	s, err := Open("Q(y) :- E(x,y), T(y)")
	if err != nil {
		t.Fatal(err)
	}
	s.Insert("E", 1, 2)
	s.Insert("T", 2)
	done := false
	s.Enumerate(func(tu []Value) bool {
		if _, err := s.Insert("E", 99, 100); err != nil { // writer inside yield: must not hang
			t.Fatal(err)
		}
		done = true
		return false // stop immediately; the structure may have shifted under us
	})
	if !done {
		t.Fatal("enumeration yielded nothing")
	}
	if s.Cardinality() != 3 {
		t.Fatalf("|D| = %d, want 3", s.Cardinality())
	}
}
