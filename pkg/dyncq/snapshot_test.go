package dyncq

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"dyncq/internal/cq"
	"dyncq/internal/dyndb"
	"dyncq/internal/workload"
)

// replayOracle maintains a plain map-of-sets replica from delta events,
// checking each event's internal consistency as it applies.
type replayOracle struct {
	tuples map[string]bool
}

func newReplayOracle() *replayOracle { return &replayOracle{tuples: make(map[string]bool)} }

func (r *replayOracle) apply(t *testing.T, ev DeltaEvent) {
	t.Helper()
	for _, tup := range ev.Added {
		k := fmt.Sprint(tup)
		if r.tuples[k] {
			t.Fatalf("version %d: delta adds %v already present", ev.Version, tup)
		}
		r.tuples[k] = true
	}
	for _, tup := range ev.Removed {
		k := fmt.Sprint(tup)
		if !r.tuples[k] {
			t.Fatalf("version %d: delta removes %v not present", ev.Version, tup)
		}
		delete(r.tuples, k)
	}
}

func (r *replayOracle) matches(t *testing.T, tuples [][]Value, where string) {
	t.Helper()
	if len(tuples) != len(r.tuples) {
		t.Fatalf("%s: replica has %d tuples, live result %d", where, len(r.tuples), len(tuples))
	}
	for _, tup := range tuples {
		if !r.tuples[fmt.Sprint(tup)] {
			t.Fatalf("%s: live result tuple %v missing from delta replica", where, tup)
		}
	}
}

// TestCaptureDeltasReplay: replaying the per-commit delta stream
// reconstructs the query result exactly, across single updates,
// batches, and every backend strategy.
func TestCaptureDeltasReplay(t *testing.T) {
	for _, force := range []Strategy{StrategyAuto, StrategyIVM, StrategyRecompute} {
		t.Run(force.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(417))
			ws := NewWorkspace(WorkspaceOptions{})
			q := cq.MustParse("Q(y) :- E(x,y), T(y)")
			h, err := ws.RegisterQuery("q", q, Options{Force: force})
			if err != nil {
				t.Fatal(err)
			}
			// Pre-capture state: the capture baseline must absorb it.
			if _, err := ws.ApplyBatch(workload.RandomStream(rng, q.Schema(), 20, 120, 0.3)); err != nil {
				t.Fatal(err)
			}
			replica := newReplayOracle()
			for _, tup := range h.Tuples() {
				replica.tuples[fmt.Sprint(tup)] = true
			}
			var events []DeltaEvent
			if err := ws.CaptureDeltas("q", func(ev DeltaEvent) { events = append(events, ev) }); err != nil {
				t.Fatal(err)
			}
			if err := ws.CaptureDeltas("q", func(DeltaEvent) {}); err == nil {
				t.Fatal("second CaptureDeltas on the same query succeeded")
			}
			stream := workload.RandomStream(rng, q.Schema(), 20, 600, 0.4)
			for i := 0; i < len(stream); i += 37 {
				end := i + 37
				if end > len(stream) {
					end = len(stream)
				}
				if _, err := ws.ApplyBatch(stream[i:end]); err != nil {
					t.Fatal(err)
				}
			}
			for _, u := range stream[:40] {
				if _, err := ws.Apply(u); err != nil {
					t.Fatal(err)
				}
			}
			wantVersion := ws.Version()
			last := uint64(0)
			for _, ev := range events {
				if ev.Version <= last {
					t.Fatalf("event versions not strictly increasing: %d after %d", ev.Version, last)
				}
				last = ev.Version
				replica.apply(t, ev)
			}
			if last != wantVersion {
				t.Fatalf("last event at version %d, workspace at %d", last, wantVersion)
			}
			replica.matches(t, h.Tuples(), "after stream")

			// Load resets: the delta stream must bridge it too.
			events = events[:0]
			db := dyndb.New()
			for _, u := range workload.RandomDatabase(rng, q.Schema(), 15, 80).Updates() {
				if _, err := db.Apply(u); err != nil {
					t.Fatal(err)
				}
			}
			if err := ws.Load(db); err != nil {
				t.Fatal(err)
			}
			if len(events) != 1 {
				t.Fatalf("Load emitted %d events, want 1", len(events))
			}
			replica.apply(t, events[0])
			replica.matches(t, h.Tuples(), "after load")

			if !ws.StopDeltaCapture("q") {
				t.Fatal("StopDeltaCapture found no active capture")
			}
			events = events[:0]
			if _, err := ws.ApplyBatch(stream[:50]); err != nil {
				t.Fatal(err)
			}
			if len(events) != 0 {
				t.Fatalf("%d events delivered after StopDeltaCapture", len(events))
			}
		})
	}
}

// TestCaptureDeltasEveryVersion: every committed version emits exactly
// one event per captured query, even when that query's result did not
// change — subscribers track versions in lockstep.
func TestCaptureDeltasEveryVersion(t *testing.T) {
	ws := NewWorkspace(WorkspaceOptions{})
	if _, err := ws.Register("q", "Q(y) :- E(x,y), T(y)"); err != nil {
		t.Fatal(err)
	}
	var versions []uint64
	if err := ws.CaptureDeltas("q", func(ev DeltaEvent) { versions = append(versions, ev.Version) }); err != nil {
		t.Fatal(err)
	}
	// E-tuples without matching T never change the result, but each
	// commit still advances the version.
	for i := 0; i < 5; i++ {
		if _, err := ws.Insert("E", Value(i), Value(i+100)); err != nil {
			t.Fatal(err)
		}
	}
	if len(versions) != 5 {
		t.Fatalf("got %d events over 5 commits, want 5", len(versions))
	}
	for i := 1; i < len(versions); i++ {
		if versions[i] != versions[i-1]+1 {
			t.Fatalf("event versions %v not consecutive", versions)
		}
	}
}

// TestCaptureDeltasBoolean: arity-0 queries export their answer-bit
// flips as an empty-tuple delta.
func TestCaptureDeltasBoolean(t *testing.T) {
	ws := NewWorkspace(WorkspaceOptions{})
	if _, err := ws.Register("b", "Q() :- E(x,y), T(y)"); err != nil {
		t.Fatal(err)
	}
	var events []DeltaEvent
	if err := ws.CaptureDeltas("b", func(ev DeltaEvent) { events = append(events, ev) }); err != nil {
		t.Fatal(err)
	}
	mustApply := func(u Update) {
		t.Helper()
		if _, err := ws.Apply(u); err != nil {
			t.Fatal(err)
		}
	}
	mustApply(dyndb.Insert("E", 1, 2))
	mustApply(dyndb.Insert("T", 2)) // answer flips to true
	mustApply(dyndb.Delete("T", 2)) // flips back
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	if len(events[0].Added)+len(events[0].Removed) != 0 {
		t.Fatalf("event 0 should be empty, got %+v", events[0])
	}
	if len(events[1].Added) != 1 || len(events[1].Removed) != 0 {
		t.Fatalf("event 1 should add the empty tuple, got %+v", events[1])
	}
	if len(events[2].Added) != 0 || len(events[2].Removed) != 1 {
		t.Fatalf("event 2 should remove the empty tuple, got %+v", events[2])
	}
}

// TestSnapshotDoesNotBlockWriter is acceptance criterion (b) at the
// library layer: an enumeration held open on a pinned snapshot — the
// reader asleep mid-iteration — must not block a concurrent ApplyBatch.
// The write is time-bounded; with the old read-locked View semantics it
// would wait for the whole sleep.
func TestSnapshotDoesNotBlockWriter(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	ws := NewWorkspace(WorkspaceOptions{})
	q := cq.MustParse("Q(x,y) :- E(x,y)")
	h, err := ws.RegisterQuery("q", q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ws.ApplyBatch(workload.RandomStream(rng, q.Schema(), 40, 400, 0.1)); err != nil {
		t.Fatal(err)
	}
	snap := h.Snapshot()
	if snap.Len() == 0 {
		t.Fatal("empty result; workload too sparse for the test")
	}

	readerHolding := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		seen := 0
		snap.Enumerate(func(tuple []Value) bool {
			seen++
			if seen == 1 {
				close(readerHolding)
				time.Sleep(600 * time.Millisecond) // mid-iteration stall
			}
			return true
		})
		if seen != snap.Len() {
			t.Errorf("enumerated %d tuples, snapshot has %d", seen, snap.Len())
		}
	}()

	<-readerHolding
	start := time.Now()
	if _, err := ws.ApplyBatch(workload.RandomStream(rng, q.Schema(), 40, 200, 0.5)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 300*time.Millisecond {
		t.Fatalf("ApplyBatch took %v while a snapshot reader slept: snapshot readers must not block writers", elapsed)
	}
	preVersion := snap.Version()
	if ws.Version() <= preVersion {
		t.Fatalf("version did not advance past pinned %d", preVersion)
	}
	<-readerDone
	// The pinned snapshot still describes the old state.
	if snap.Version() != preVersion {
		t.Fatal("snapshot version moved")
	}
}

// TestWorkspaceViewIsPinned: a view taken before a concurrent batch
// keeps answering from the pinned state while (and after) the batch
// commits, and f may call locking workspace methods.
func TestWorkspaceViewIsPinned(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ws := NewWorkspace(WorkspaceOptions{})
	q := cq.MustParse("Q(x) :- E(x,y)")
	if _, err := ws.RegisterQuery("q", q, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := ws.ApplyBatch(workload.RandomStream(rng, q.Schema(), 30, 200, 0.2)); err != nil {
		t.Fatal(err)
	}
	ws.View(func(v *WorkspaceView) {
		before := v.Count("q")
		version := v.Version()
		// Re-entrant write from inside a view: legal under MVCC.
		if _, err := ws.ApplyBatch(workload.RandomStream(rng, q.Schema(), 30, 100, 0.9)); err != nil {
			t.Fatal(err)
		}
		if v.Count("q") != before || v.Version() != version {
			t.Fatal("view observed a write committed after it was pinned")
		}
		if ws.Version() != version+1 {
			t.Fatalf("workspace version %d, want %d", ws.Version(), version+1)
		}
	})
}

// TestConcurrentSnapshotReaders: many snapshot readers against a
// committing writer, each read observing a fully consistent pinned
// state. Run with -race.
func TestSnapshotReadersUnderWriterLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	cs, err := OpenConcurrent("Q(y) :- E(x,y), T(y)", 2)
	if err != nil {
		t.Fatal(err)
	}
	q := cs.Query()
	stream := workload.RandomStream(rng, q.Schema(), 25, 2000, 0.35)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := cs.Snapshot()
				if got := uint64(len(snap.Tuples())); got != snap.Count() {
					t.Errorf("snapshot: %d tuples but count %d", got, snap.Count())
					return
				}
			}
		}()
	}
	for i := 0; i < len(stream); i += 100 {
		end := i + 100
		if end > len(stream) {
			end = len(stream)
		}
		if _, err := cs.ApplyBatch(stream[i:end]); err != nil {
			t.Error(err)
			break
		}
	}
	close(stop)
	wg.Wait()
}
