package dyncq

import (
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"dyncq/internal/dict"
	"dyncq/internal/dyndb"
	"dyncq/internal/workload"
)

func TestParseUpdate(t *testing.T) {
	cases := []struct {
		in   string
		want Update
	}{
		{"+E(1,2)", dyndb.Insert("E", 1, 2)},
		{"E(1,2)", dyndb.Insert("E", 1, 2)},
		{"-E(1,2)", dyndb.Delete("E", 1, 2)},
		{"  - T( 7 ) ", dyndb.Delete("T", 7)},
		{"+R_1(-3,0,42)", dyndb.Insert("R_1", -3, 0, 42)},
	}
	for _, c := range cases {
		got, err := ParseUpdate(c.in)
		if err != nil {
			t.Errorf("ParseUpdate(%q): %v", c.in, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseUpdate(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "E", "E()", "+(1)", "E(1", "E(a)", "E(1,,2)", "+-E(1,2)", "1E(1)", "E x(1)"} {
		if _, err := ParseUpdate(bad); err == nil {
			t.Errorf("ParseUpdate(%q): want error", bad)
		}
	}
}

// TestParseUpdateRejectsExplicitly pins the hardened rejections: doubled
// signs and interior/trailing garbage fail with errors naming the
// offence, not whatever a downstream rule tripped over first.
func TestParseUpdateRejectsExplicitly(t *testing.T) {
	cases := []struct{ in, wantSub string }{
		{"+-E(1,2)", "doubled sign"},
		{"-+E(1,2)", "doubled sign"},
		{"--E(1)", "doubled sign"},
		{"+ +E(1)", "doubled sign"},
		{"E(1,2)x", "garbage after ')'"},
		{"E(1,2) extra", "garbage after ')'"},
		{"E(1,2) # trailing comment", "garbage after ')'"},
		{"E(1)(2)", "garbage after ')'"},
		{"E(1,2", "missing ')'"},
		{"E(1 2)", "not an int64"},
		{"E(0x1)", "not an int64"},
		{"E(1,,2)", "empty tuple entry"},
		{"E(1,2,)", "empty tuple entry"},
		{"E()", "empty tuple"},
		{"+", "want [+|-]R"},
		{"-", "want [+|-]R"},
	}
	for _, c := range cases {
		_, err := ParseUpdate(c.in)
		if err == nil {
			t.Errorf("ParseUpdate(%q): want error containing %q, got nil", c.in, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("ParseUpdate(%q): error %q does not mention %q", c.in, err, c.wantSub)
		}
	}
}

// TestApplyStream: streams apply in batches through the session, and an
// arity mismatch against the session's query is reported with the
// offending line number at apply time.
func TestApplyStream(t *testing.T) {
	s, err := Open("Q(y) :- E(x,y), T(y)")
	if err != nil {
		t.Fatal(err)
	}
	n, err := ApplyStream(s, strings.NewReader(`
# initial data
+E(1,2)
+E(3,2)
+T(2)
-E(3,2)
`), 2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("net applied = %d, want 4 (E(3,2) is inserted and deleted in different batches, so both count)", n)
	}
	if got := s.Count(); got != 1 {
		t.Errorf("count = %d, want 1", got)
	}
	// Arity mismatch against the query: line-attributed error.
	_, err = ApplyStream(s, strings.NewReader("+E(1,2)\n+T(2,9)\n"), 0)
	if err == nil || !strings.Contains(err.Error(), "line 2") || !strings.Contains(err.Error(), "arity") {
		t.Fatalf("want line-2 arity error, got %v", err)
	}
	// The concurrent session satisfies the same interface.
	cs, err := OpenConcurrent("Q(y) :- E(x,y), T(y)", 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ApplyStream(cs, strings.NewReader("+E(5,6)\n+T(6)\n"), 1); err != nil {
		t.Fatal(err)
	}
	if got := cs.Count(); got != 1 {
		t.Errorf("concurrent count = %d, want 1", got)
	}
	// Parse errors also carry the line.
	_, err = ApplyStream(s, strings.NewReader("+E(1,2)\n\n+-E(3,4)\n"), 0)
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("want line-3 parse error, got %v", err)
	}
}

// TestStreamReaderLineNumbers: comments and blanks advance the counter.
func TestStreamReaderLineNumbers(t *testing.T) {
	sr := NewStreamReader(strings.NewReader("# c\n\n+E(1,2)\n# c\n-E(1,2)\n"))
	u, line, err := sr.Next()
	if err != nil || line != 3 || u.Rel != "E" {
		t.Fatalf("first Next = %v line %d err %v, want E line 3", u, line, err)
	}
	u, line, err = sr.Next()
	if err != nil || line != 5 || u.Op != OpDelete {
		t.Fatalf("second Next = %v line %d err %v, want delete line 5", u, line, err)
	}
	if _, _, err := sr.Next(); err != io.EOF {
		t.Fatalf("want io.EOF, got %v", err)
	}
}

func TestStreamRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	schema := map[string]int{"E": 2, "T": 1, "S": 3}
	stream := workload.RandomStream(rng, schema, 20, 300, 0.4)
	var b strings.Builder
	b.WriteString("# header comment\n\n")
	for _, u := range stream {
		b.WriteString(FormatUpdate(u))
		b.WriteByte('\n')
	}
	got, err := ParseStream(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, stream) {
		t.Fatalf("round trip mismatch: got %d updates, want %d", len(got), len(stream))
	}
}

func TestParseStreamReportsLine(t *testing.T) {
	_, err := ParseStream(strings.NewReader("+E(1,2)\nbogus line\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("want line-2 error, got %v", err)
	}
}

// TestParseUpdateDict: string mode encodes tuple entries through the
// dictionary, and the StreamReader plumbs it end to end.
func TestParseUpdateDict(t *testing.T) {
	d := dict.New()
	u, err := ParseUpdateDict("+E(alice, bob)", d)
	if err != nil {
		t.Fatal(err)
	}
	if u.Rel != "E" || len(u.Tuple) != 2 {
		t.Fatalf("parsed %v", u)
	}
	if d.Decode(u.Tuple[0]) != "alice" || d.Decode(u.Tuple[1]) != "bob" {
		t.Fatalf("decoded %q, %q", d.Decode(u.Tuple[0]), d.Decode(u.Tuple[1]))
	}
	// The same name maps to the same code; integers are strings here.
	u2, err := ParseUpdateDict("-E(alice, 42)", d)
	if err != nil {
		t.Fatal(err)
	}
	if u2.Op != OpDelete || u2.Tuple[0] != u.Tuple[0] {
		t.Fatalf("re-encoded alice differently: %v vs %v", u2, u)
	}
	if d.Decode(u2.Tuple[1]) != "42" {
		t.Fatalf("string mode decoded %q, want \"42\"", d.Decode(u2.Tuple[1]))
	}
	// Malformed input is rejected exactly as in int mode.
	if _, err := ParseUpdateDict("+-E(a)", d); err == nil {
		t.Fatal("doubled sign accepted in string mode")
	}
	if _, err := ParseUpdateDict("E(a) junk", d); err == nil {
		t.Fatal("trailing garbage accepted in string mode")
	}

	// End to end: a dict-mode stream through a workspace.
	ws := NewWorkspace(WorkspaceOptions{})
	h, err := ws.Register("q", "Q(y) :- E(x,y), T(y)")
	if err != nil {
		t.Fatal(err)
	}
	sr := NewStreamReader(strings.NewReader("+E(alice,bob)\n+T(bob)\n-E(alice,bob)\n+E(carol,bob)\n"))
	sr.UseDict(ws.Dict())
	applied, err := ApplyStreamReader(ws, sr, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if applied == 0 {
		t.Fatal("stream applied nothing")
	}
	tuples := h.Tuples()
	if len(tuples) != 1 || ws.Dict().Decode(tuples[0][0]) != "bob" {
		t.Fatalf("result %v, want [bob]", tuples)
	}
}
