package dyncq

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"dyncq/internal/dyndb"
	"dyncq/internal/workload"
)

func TestParseUpdate(t *testing.T) {
	cases := []struct {
		in   string
		want Update
	}{
		{"+E(1,2)", dyndb.Insert("E", 1, 2)},
		{"E(1,2)", dyndb.Insert("E", 1, 2)},
		{"-E(1,2)", dyndb.Delete("E", 1, 2)},
		{"  - T( 7 ) ", dyndb.Delete("T", 7)},
		{"+R_1(-3,0,42)", dyndb.Insert("R_1", -3, 0, 42)},
	}
	for _, c := range cases {
		got, err := ParseUpdate(c.in)
		if err != nil {
			t.Errorf("ParseUpdate(%q): %v", c.in, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseUpdate(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "E", "E()", "+(1)", "E(1", "E(a)", "E(1,,2)", "+-E(1,2)", "1E(1)", "E x(1)"} {
		if _, err := ParseUpdate(bad); err == nil {
			t.Errorf("ParseUpdate(%q): want error", bad)
		}
	}
}

func TestStreamRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	schema := map[string]int{"E": 2, "T": 1, "S": 3}
	stream := workload.RandomStream(rng, schema, 20, 300, 0.4)
	var b strings.Builder
	b.WriteString("# header comment\n\n")
	for _, u := range stream {
		b.WriteString(FormatUpdate(u))
		b.WriteByte('\n')
	}
	got, err := ParseStream(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, stream) {
		t.Fatalf("round trip mismatch: got %d updates, want %d", len(got), len(stream))
	}
}

func TestParseStreamReportsLine(t *testing.T) {
	_, err := ParseStream(strings.NewReader("+E(1,2)\nbogus line\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("want line-2 error, got %v", err)
	}
}
