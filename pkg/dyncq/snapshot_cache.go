package dyncq

import "sort"

// This file implements the version-keyed shared snapshot cache behind
// Handle.Snapshot — the O(1) pin. Each handle holds at most ONE cached
// QuerySnapshot behind an atomic pointer; a pin whose version is still
// current returns that shared snapshot with one pointer load. Commits
// ADVANCE a demanded cache instead of invalidating it:
//
//   - core backend: re-enumerate into one exactly-sized buffer — the
//     engine's live enumeration order is a function of its fit-list
//     insertion history, not of the result set, so it cannot be
//     reconstructed from a delta and the byte-identical order contract
//     forces a fresh walk (still one allocation, no sort);
//   - ivm/recompute (canonical lexicographic order): when a delta
//     capture is active and the committed delta is small relative to
//     the result, a three-way sorted merge patches the previous flat
//     buffer in O(|result| + |delta|) with NO backend enumeration;
//     past the crossover (or with no capture) it falls back to the
//     sized re-enumeration plus sort.
//
// The fast path is linearizable without any lock: the pointer only
// moves while writers are excluded (write lock held, or the read lock
// on the slow-path pin), and the pin loads the pointer BEFORE the
// atomic version — so a version match proves the snapshot was built at
// the current committed state. Version values are unique and monotonic,
// so a stale pointer can never match.
//
// Demand decay bounds the write-side cost: every pin rearms a countdown
// of snapDemandGrace commits; each commit decrements it and, once it
// runs out, drops the cache instead of advancing it. A burst of reads
// therefore costs at most snapDemandGrace advances after the last pin,
// and a write-only stream pays one pointer load per commit.

// snapDemandGrace is how many commits a cached snapshot survives
// without being re-pinned before the advance gives up and invalidates
// it. Small enough that a departed reader stops taxing commits almost
// immediately; large enough that a reader polling every few commits
// stays on the O(1) hit path throughout.
const snapDemandGrace = 8

// snapPatchCrossover is the delta/result crossover of the merge patch:
// the sorted merge only runs while |delta| * snapPatchCrossover <= n;
// beyond that the churn approaches the result size and one sized
// re-enumeration (plus sort) beats merging row by row.
const snapPatchCrossover = 2

// SnapshotCacheStats is one handle's snapshot-cache observability
// counters. Hits and Misses split the pins (Hits returned the shared
// cached snapshot with zero enumeration; Misses materialised); Patched,
// Rebuilt and Invalidated split the commit-side outcomes for a live
// cache (delta-merged in place, re-enumerated, or dropped by demand
// decay / eviction / unregistration).
type SnapshotCacheStats struct {
	Hits        uint64
	Misses      uint64
	Patched     uint64
	Rebuilt     uint64
	Invalidated uint64
}

// SnapshotCacheStats returns the handle's cache counters. The counters
// are monotonic; sample before and after a phase to rate it.
func (h *Handle) SnapshotCacheStats() SnapshotCacheStats {
	return SnapshotCacheStats{
		Hits:        h.snapHits.Load(),
		Misses:      h.snapMisses.Load(),
		Patched:     h.snapPatched.Load(),
		Rebuilt:     h.snapRebuilt.Load(),
		Invalidated: h.snapInvalidated.Load(),
	}
}

// CachedSnapshot returns the shared snapshot pinned at the workspace's
// current committed version, or nil when no current snapshot is cached
// (no pin since the last commit or invalidation). It takes no lock and
// performs no allocation: one pointer load, one version load. Callers
// wanting a snapshot unconditionally use Snapshot, which falls back to
// materialising; CachedSnapshot is the probe for callers with a cheaper
// cold path of their own (the server answers count/answer from the
// cached header and only takes the read lock when cold).
//
//dyncq:hot
func (h *Handle) CachedSnapshot() *QuerySnapshot {
	s := h.snap.Load()
	if s == nil || s.version != h.ws.version.Load() {
		return nil
	}
	h.demand.Store(snapDemandGrace)
	h.snapHits.Add(1)
	return s
}

// pinLocked is the slow-path pin: re-probe the cache (another reader
// may have materialised this version between the fast-path miss and the
// lock), else materialise, publish, and rearm demand. Callers hold at
// least the workspace read lock; concurrent slow-path pinners may both
// materialise and race the Store, which is benign — the snapshots are
// byte-identical (deterministic order contract) and either wins.
func (h *Handle) pinLocked() *QuerySnapshot {
	if s := h.snap.Load(); s != nil && s.version == h.ws.version.Load() {
		h.demand.Store(snapDemandGrace)
		h.snapHits.Add(1)
		return s
	}
	s := h.snapshotLocked()
	h.snap.Store(s)
	h.demand.Store(snapDemandGrace)
	h.snapMisses.Add(1)
	return s
}

// EvictSnapshot drops the handle's cached snapshot, reporting whether
// one was cached. Snapshots already pinned by readers stay valid and
// immutable; only the cache forgets them, so the next pin materialises
// afresh and commits stop advancing the buffer. A memory knob for
// rarely-read queries with huge results — and the bench harness's way
// of measuring the copy-on-pin baseline the cache replaces.
func (h *Handle) EvictSnapshot() bool {
	h.demand.Store(0)
	if h.snap.Swap(nil) == nil {
		return false
	}
	h.snapInvalidated.Add(1)
	return true
}

// advanceSnapshot is the commit-side half of the cache: bring the
// cached snapshot to the just-committed version, or drop it when demand
// has decayed. ev is the version's DeltaEvent when a capture computed
// one (nil otherwise); its tuples are only read, never retained. Runs
// with exclusive workspace access, after w.version moved, on the
// after-commit worker pool.
//
//dyncq:hot
func (h *Handle) advanceSnapshot(ev *DeltaEvent) {
	prev := h.snap.Load()
	if prev == nil {
		return
	}
	if h.demand.Add(-1) < 0 {
		h.snap.Store(nil)
		h.snapInvalidated.Add(1)
		return
	}
	w := h.ws
	s := &QuerySnapshot{
		name:    prev.name,
		version: w.version.Load(),
		epoch:   w.store.Epoch(),
		card:    w.store.Cardinality(),
		adom:    w.store.ActiveDomainSize(),
		arity:   prev.arity,
	}
	d := 0
	if ev != nil {
		d = len(ev.Added) + len(ev.Removed)
	}
	switch {
	case s.arity == 0:
		// Boolean header refresh: O(1), no buffer at all.
		s.n = int(h.back.Count())
		h.snapPatched.Add(1)
	case h.strategy != StrategyCore && ev != nil && d*snapPatchCrossover <= prev.n:
		// Canonical-order snapshot with a small committed delta: merge
		// the previous sorted buffer with the sorted Added/Removed —
		// no backend enumeration, no sort, one sized allocation.
		s.flat = patchSortedFlat(prev.flat, s.arity, ev.Added, ev.Removed)
		s.n = len(s.flat) / s.arity
		h.snapPatched.Add(1)
	default:
		// Core order is not delta-reconstructible, and a huge delta
		// makes the merge pointless: re-materialise (sized by O(1)
		// Count for the maintained strategies, sorted when canonical).
		h.fillSnapshot(s)
		h.snapRebuilt.Add(1)
	}
	h.snap.Store(s)
}

// patchSortedFlat merges one committed delta into a lex-sorted flat
// row buffer: removed rows are skipped, added rows are spliced at their
// sort position. Added and Removed arrive lex-sorted and disjoint from
// the DeltaEvent contract, Removed ⊆ prev and Added ∩ prev = ∅, so one
// forward pass over the three sequences rebuilds the exact sorted
// result in a single exactly-sized allocation.
//
//dyncq:hot
func patchSortedFlat(prev []Value, arity int, added, removed [][]Value) []Value {
	out := make([]Value, 0, len(prev)+(len(added)-len(removed))*arity)
	ai, ri := 0, 0
	for off := 0; off < len(prev); off += arity {
		row := prev[off : off+arity]
		if ri < len(removed) && rowCompare(row, removed[ri]) == 0 {
			ri++
			continue
		}
		for ai < len(added) && rowCompare(added[ai], row) < 0 {
			out = append(out, added[ai]...)
			ai++
		}
		out = append(out, row...)
	}
	for ; ai < len(added); ai++ {
		out = append(out, added[ai]...)
	}
	return out
}

// rowCompare orders two equal-arity rows lexicographically.
//
//dyncq:hot
func rowCompare(a, b []Value) int {
	for k := range a {
		if a[k] != b[k] {
			if a[k] < b[k] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// sortFlatRows sorts the rows of a flat row-major buffer in
// lexicographic order, in place — the canonical snapshot order of the
// non-core strategies.
func sortFlatRows(flat []Value, arity int) {
	if arity <= 0 || len(flat) <= arity {
		return
	}
	sort.Sort(&flatRowSorter{flat: flat, arity: arity, tmp: make([]Value, arity)})
}

type flatRowSorter struct {
	flat  []Value
	arity int
	tmp   []Value
}

func (s *flatRowSorter) Len() int { return len(s.flat) / s.arity }

func (s *flatRowSorter) Less(i, j int) bool {
	return rowCompare(s.flat[i*s.arity:(i+1)*s.arity], s.flat[j*s.arity:(j+1)*s.arity]) < 0
}

func (s *flatRowSorter) Swap(i, j int) {
	a := s.flat[i*s.arity : (i+1)*s.arity]
	b := s.flat[j*s.arity : (j+1)*s.arity]
	copy(s.tmp, a)
	copy(a, b)
	copy(b, s.tmp)
}
