package dyncq

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"dyncq/internal/cq"
	"dyncq/internal/dyndb"
	"dyncq/internal/eval"
	"dyncq/internal/workload"
)

// TestRoutingQHierarchical: q-hierarchical queries must be served by the
// core engine (the constant-delay path).
func TestRoutingQHierarchical(t *testing.T) {
	for _, text := range []string{
		"Q(y) :- E(x,y), T(y)",
		"Q(x) :- R(x)",
		"Q(x,y) :- E(x,y)",
		"Q() :- E(x,y), T(y)",
		"Q(x) :- R(x), S(x), E(x,y)",
	} {
		s, err := Open(text)
		if err != nil {
			t.Fatalf("Open(%q): %v", text, err)
		}
		if got := s.Strategy(); got != StrategyCore {
			t.Errorf("%s: strategy %v, want core", text, got)
		}
		if !s.Classification().QHierarchical {
			t.Errorf("%s: classification says not q-hierarchical", text)
		}
	}
}

// TestRoutingFallback: non-q-hierarchical queries must fall back to IVM.
func TestRoutingFallback(t *testing.T) {
	for _, text := range []string{
		"Q(x) :- E(x,y), T(y)",                // ϕE-T: violates condition (ii)
		"Q(x,y) :- S(x), E(x,y), T(y)",        // ϕS-E-T
		"Q() :- S(x), E(x,y), T(y)",           // ϕ1: non-hierarchical Boolean
		"Q(x,z) :- E(x,y), F(y,z)",            // path join, no common variable
		"Q() :- E(x,y), E2(y,z), E3(z,x)",     // triangle
		"Q(x,y,z) :- E(x,y), F(y,z), G(z,x)",  // cyclic with free vars
		"Q(a) :- R(a,b), S(b,c), T(c)",        // chain
		"Q(u) :- A(u,v), B(v,w), C(u,w,v)",    // mixed
		"Q(x) :- E(x,y), F(x,z), G(y,z)",      // y,z incomparable overlap
		"Q(v) :- R(v,w), S(w), T(w,u), U(u)",  // deep chain
		"Q(x,y) :- R(x,u), S(u,y), T(y)",      // free vars split by quantified
		"Q() :- R(a,b), S(b,c), T(c,d), U(d)", // long Boolean chain
	} {
		s, err := Open(text)
		if err != nil {
			t.Fatalf("Open(%q): %v", text, err)
		}
		if got := s.Strategy(); got != StrategyIVM {
			t.Errorf("%s: strategy %v, want ivm", text, got)
		}
		if s.Classification().QHierarchical {
			t.Errorf("%s: classification says q-hierarchical", text)
		}
	}
}

func TestForceStrategy(t *testing.T) {
	q := cq.MustParse("Q(y) :- E(x,y), T(y)")
	for _, st := range []Strategy{StrategyCore, StrategyIVM, StrategyRecompute} {
		s, err := NewWithOptions(q, Options{Force: st})
		if err != nil {
			t.Fatalf("force %v: %v", st, err)
		}
		if s.Strategy() != st {
			t.Errorf("forced %v, got %v", st, s.Strategy())
		}
	}
	// Forcing core on a non-q-hierarchical query must fail.
	hard := cq.MustParse("Q(x) :- E(x,y), T(y)")
	if _, err := NewWithOptions(hard, Options{Force: StrategyCore}); err == nil {
		t.Errorf("forcing core on %s: want error, got nil", hard)
	}
}

// TestStrategiesAgree runs the same random streams through every strategy
// and cross-checks count, answer and the enumerated tuple sets against
// the static evaluator.
func TestStrategiesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	queries := []*cq.Query{
		cq.MustParse("Q(y) :- E(x,y), T(y)"),
		cq.MustParse("Q(x) :- E(x,y), T(y)"),
		cq.MustParse("Q(x,y) :- S(x), E(x,y), T(y)"),
		cq.MustParse("Q() :- E(x,y), T(y)"),
	}
	for i := 0; i < 6; i++ {
		queries = append(queries, workload.RandomQHierarchical(rng, workload.DefaultQHOptions()))
	}
	for _, q := range queries {
		stream := workload.RandomStream(rng, q.Schema(), 8, 120, 0.35)
		db := dyndb.New()
		var sessions []*Session
		for _, st := range []Strategy{StrategyAuto, StrategyIVM, StrategyRecompute} {
			s, err := NewWithOptions(q, Options{Force: st})
			if err != nil {
				t.Fatalf("%s force %v: %v", q, st, err)
			}
			sessions = append(sessions, s)
		}
		for ui, u := range stream {
			if _, err := db.Apply(u); err != nil {
				t.Fatalf("%s: db apply: %v", q, err)
			}
			for _, s := range sessions {
				if _, err := s.Apply(u); err != nil {
					t.Fatalf("%s [%v]: apply %s: %v", q, s.Strategy(), u, err)
				}
			}
			if ui%40 != 39 && ui != len(stream)-1 {
				continue
			}
			want := eval.Evaluate(q, db)
			for _, s := range sessions {
				if got := s.Count(); got != uint64(want.Len()) {
					t.Fatalf("%s [%v] after %d updates: count %d, want %d", q, s.Strategy(), ui+1, got, want.Len())
				}
				if got := s.Answer(); got != (want.Len() > 0) {
					t.Fatalf("%s [%v]: answer %v, want %v", q, s.Strategy(), got, want.Len() > 0)
				}
				if !sameTuples(s.Tuples(), want.Tuples()) {
					t.Fatalf("%s [%v]: enumerated tuples disagree with eval", q, s.Strategy())
				}
			}
		}
	}
}

func sameTuples(a, b [][]int64) bool {
	if len(a) != len(b) {
		return false
	}
	if len(a) == 0 {
		return true // nil vs empty slice both mean "no tuples"
	}
	sortTuples(a)
	sortTuples(b)
	return reflect.DeepEqual(a, b)
}

func sortTuples(ts [][]int64) {
	sort.Slice(ts, func(i, j int) bool {
		x, y := ts[i], ts[j]
		for k := range x {
			if x[k] != y[k] {
				return x[k] < y[k]
			}
		}
		return false
	})
}

func TestSessionBasics(t *testing.T) {
	s, err := Open("Q(y) :- E(x,y), T(y)")
	if err != nil {
		t.Fatal(err)
	}
	mustApply := func(changed bool, err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		if !changed {
			t.Fatal("expected a change")
		}
	}
	mustApply(s.Insert("E", 1, 2))
	mustApply(s.Insert("T", 2))
	if got := s.Count(); got != 1 {
		t.Fatalf("count = %d, want 1", got)
	}
	if !s.Answer() {
		t.Fatal("answer = false, want true")
	}
	if got := s.Tuples(); len(got) != 1 || got[0][0] != 2 {
		t.Fatalf("tuples = %v, want [[2]]", got)
	}
	mustApply(s.Delete("T", 2))
	if s.Answer() {
		t.Fatal("answer = true after delete, want false")
	}
	if got := s.Cardinality(); got != 1 {
		t.Fatalf("cardinality = %d, want 1", got)
	}
	// Arity mismatch must surface as an error on every backend.
	if _, err := s.Insert("E", 1); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestLoad(t *testing.T) {
	db := dyndb.New()
	for _, u := range []Update{
		dyndb.Insert("E", 1, 2), dyndb.Insert("E", 3, 2), dyndb.Insert("T", 2),
	} {
		if _, err := db.Apply(u); err != nil {
			t.Fatal(err)
		}
	}
	s, err := Open("Q(x) :- E(x,y), T(y)")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Load(db); err != nil {
		t.Fatal(err)
	}
	if got := s.Count(); got != 2 {
		t.Fatalf("count = %d, want 2", got)
	}
}

func TestParseStrategy(t *testing.T) {
	for _, st := range []Strategy{StrategyAuto, StrategyCore, StrategyIVM, StrategyRecompute} {
		got, err := ParseStrategy(st.String())
		if err != nil || got != st {
			t.Errorf("ParseStrategy(%q) = %v, %v", st.String(), got, err)
		}
	}
	if _, err := ParseStrategy("nope"); err == nil {
		t.Error("ParseStrategy(nope): want error")
	}
}

// TestApplyBatchAgreesAcrossStrategies drives every backend through the
// same stream in batches and checks counts and result sets against the
// static oracle at every batch boundary — the session-level contract of
// the batch pipeline.
func TestApplyBatchAgreesAcrossStrategies(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	queries := []*cq.Query{
		cq.MustParse("Q(y) :- E(x,y), T(y)"),
		cq.MustParse("Q(x,y) :- S(x), E(x,y), T(y)"),
	}
	for i := 0; i < 3; i++ {
		queries = append(queries, workload.RandomQHierarchical(rng, workload.DefaultQHOptions()))
	}
	for _, q := range queries {
		stream := workload.RandomStream(rng, q.Schema(), 6, 120, 0.4)
		db := dyndb.New()
		var sessions []*Session
		for _, st := range []Strategy{StrategyAuto, StrategyIVM, StrategyRecompute} {
			s, err := NewWithOptions(q, Options{Force: st})
			if err != nil {
				t.Fatalf("%s force %v: %v", q, st, err)
			}
			sessions = append(sessions, s)
		}
		size := 13
		for from := 0; from < len(stream); from += size {
			to := from + size
			if to > len(stream) {
				to = len(stream)
			}
			chunk := stream[from:to]
			for _, u := range chunk {
				if _, err := db.Apply(u); err != nil {
					t.Fatal(err)
				}
			}
			for _, s := range sessions {
				if _, err := s.ApplyBatch(chunk); err != nil {
					t.Fatalf("%s [%v]: ApplyBatch: %v", q, s.Strategy(), err)
				}
			}
			want := eval.Evaluate(q, db)
			for _, s := range sessions {
				if got := s.Count(); got != uint64(want.Len()) {
					t.Fatalf("%s [%v]: count %d, oracle %d", q, s.Strategy(), got, want.Len())
				}
				if !sameTuples(s.Tuples(), want.Tuples()) {
					t.Fatalf("%s [%v]: batched tuples disagree with eval", q, s.Strategy())
				}
			}
		}
	}
}

// TestLoadBulkAgreesAcrossStrategies: Session.Load must produce the same
// state as single-update replay on every backend.
func TestLoadBulkAgreesAcrossStrategies(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, qs := range []string{
		"Q(y) :- E(x,y), T(y)",
		"Q(x,y) :- S(x), E(x,y), T(y)",
	} {
		q := cq.MustParse(qs)
		db := workload.RandomDatabase(rng, q.Schema(), 8, 50)
		want := eval.Evaluate(q, db)
		for _, st := range []Strategy{StrategyAuto, StrategyIVM, StrategyRecompute} {
			s, err := NewWithOptions(q, Options{Force: st})
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Load(db); err != nil {
				t.Fatalf("%s [%v]: Load: %v", q, s.Strategy(), err)
			}
			if got := s.Count(); got != uint64(want.Len()) {
				t.Fatalf("%s [%v]: count %d after Load, oracle %d", q, s.Strategy(), got, want.Len())
			}
			if s.Cardinality() != db.Cardinality() {
				t.Fatalf("%s [%v]: |D| = %d, want %d", q, s.Strategy(), s.Cardinality(), db.Cardinality())
			}
		}
	}
}

// TestApplyBatchCancellation: a fully cancelled batch is a no-op on every
// backend.
func TestApplyBatchCancellation(t *testing.T) {
	for _, st := range []Strategy{StrategyCore, StrategyIVM, StrategyRecompute} {
		s, err := NewWithOptions(cq.MustParse("Q(y) :- E(x,y), T(y)"), Options{Force: st})
		if err != nil {
			t.Fatal(err)
		}
		n, err := s.ApplyBatch([]Update{
			dyndb.Insert("E", 1, 2),
			dyndb.Delete("E", 1, 2),
		})
		if err != nil {
			t.Fatalf("[%v]: %v", st, err)
		}
		if n != 0 || s.Cardinality() != 0 {
			t.Errorf("[%v]: net=%d |D|=%d after cancelled batch, want 0 0", st, n, s.Cardinality())
		}
	}
}

// TestApplyBatched: chunked application matches a single batch, and
// batchSize <= 0 means one batch.
func TestApplyBatched(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	q := cq.MustParse("Q(y) :- E(x,y), T(y)")
	stream := workload.RandomStream(rng, q.Schema(), 6, 100, 0.4)
	whole, err := New(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := whole.ApplyBatched(stream, 0); err != nil {
		t.Fatal(err)
	}
	chunked, err := New(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := chunked.ApplyBatched(stream, 7); err != nil {
		t.Fatal(err)
	}
	if whole.Count() != chunked.Count() || whole.Cardinality() != chunked.Cardinality() {
		t.Errorf("whole: count=%d |D|=%d; chunked: count=%d |D|=%d",
			whole.Count(), whole.Cardinality(), chunked.Count(), chunked.Cardinality())
	}
	if !sameTuples(whole.Tuples(), chunked.Tuples()) {
		t.Error("chunked result disagrees with single-batch result")
	}
}

// TestLoadRejectsMismatchedArity: Load of a database whose relations
// clash with the query schema must error on every backend, not panic at
// the next read.
func TestLoadRejectsMismatchedArity(t *testing.T) {
	db := dyndb.New()
	if _, err := db.Insert("E", 1); err != nil { // unary E, query wants binary
		t.Fatal(err)
	}
	for _, st := range []Strategy{StrategyCore, StrategyIVM, StrategyRecompute} {
		s, err := NewWithOptions(cq.MustParse("Q(x) :- E(x,y)"), Options{Force: st})
		if st == StrategyCore {
			// ϕE-T-like projections are fine; Q(x) :- E(x,y) is q-hierarchical.
			if err != nil {
				t.Fatalf("[%v]: %v", st, err)
			}
		} else if err != nil {
			t.Fatal(err)
		}
		if err := s.Load(db); err == nil {
			t.Errorf("[%v]: mismatched-arity Load accepted", s.Strategy())
			s.Count() // must not be reached; would panic on recompute
		}
	}
}
