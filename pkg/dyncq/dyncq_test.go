package dyncq

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"dyncq/internal/cq"
	"dyncq/internal/dyndb"
	"dyncq/internal/eval"
	"dyncq/internal/workload"
)

// TestRoutingQHierarchical: q-hierarchical queries must be served by the
// core engine (the constant-delay path).
func TestRoutingQHierarchical(t *testing.T) {
	for _, text := range []string{
		"Q(y) :- E(x,y), T(y)",
		"Q(x) :- R(x)",
		"Q(x,y) :- E(x,y)",
		"Q() :- E(x,y), T(y)",
		"Q(x) :- R(x), S(x), E(x,y)",
	} {
		s, err := Open(text)
		if err != nil {
			t.Fatalf("Open(%q): %v", text, err)
		}
		if got := s.Strategy(); got != StrategyCore {
			t.Errorf("%s: strategy %v, want core", text, got)
		}
		if !s.Classification().QHierarchical {
			t.Errorf("%s: classification says not q-hierarchical", text)
		}
	}
}

// TestRoutingFallback: non-q-hierarchical queries must fall back to IVM.
func TestRoutingFallback(t *testing.T) {
	for _, text := range []string{
		"Q(x) :- E(x,y), T(y)",                // ϕE-T: violates condition (ii)
		"Q(x,y) :- S(x), E(x,y), T(y)",        // ϕS-E-T
		"Q() :- S(x), E(x,y), T(y)",           // ϕ1: non-hierarchical Boolean
		"Q(x,z) :- E(x,y), F(y,z)",            // path join, no common variable
		"Q() :- E(x,y), E2(y,z), E3(z,x)",     // triangle
		"Q(x,y,z) :- E(x,y), F(y,z), G(z,x)",  // cyclic with free vars
		"Q(a) :- R(a,b), S(b,c), T(c)",        // chain
		"Q(u) :- A(u,v), B(v,w), C(u,w,v)",    // mixed
		"Q(x) :- E(x,y), F(x,z), G(y,z)",      // y,z incomparable overlap
		"Q(v) :- R(v,w), S(w), T(w,u), U(u)",  // deep chain
		"Q(x,y) :- R(x,u), S(u,y), T(y)",      // free vars split by quantified
		"Q() :- R(a,b), S(b,c), T(c,d), U(d)", // long Boolean chain
	} {
		s, err := Open(text)
		if err != nil {
			t.Fatalf("Open(%q): %v", text, err)
		}
		if got := s.Strategy(); got != StrategyIVM {
			t.Errorf("%s: strategy %v, want ivm", text, got)
		}
		if s.Classification().QHierarchical {
			t.Errorf("%s: classification says q-hierarchical", text)
		}
	}
}

func TestForceStrategy(t *testing.T) {
	q := cq.MustParse("Q(y) :- E(x,y), T(y)")
	for _, st := range []Strategy{StrategyCore, StrategyIVM, StrategyRecompute} {
		s, err := NewWithOptions(q, Options{Force: st})
		if err != nil {
			t.Fatalf("force %v: %v", st, err)
		}
		if s.Strategy() != st {
			t.Errorf("forced %v, got %v", st, s.Strategy())
		}
	}
	// Forcing core on a non-q-hierarchical query must fail.
	hard := cq.MustParse("Q(x) :- E(x,y), T(y)")
	if _, err := NewWithOptions(hard, Options{Force: StrategyCore}); err == nil {
		t.Errorf("forcing core on %s: want error, got nil", hard)
	}
}

// TestStrategiesAgree runs the same random streams through every strategy
// and cross-checks count, answer and the enumerated tuple sets against
// the static evaluator.
func TestStrategiesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	queries := []*cq.Query{
		cq.MustParse("Q(y) :- E(x,y), T(y)"),
		cq.MustParse("Q(x) :- E(x,y), T(y)"),
		cq.MustParse("Q(x,y) :- S(x), E(x,y), T(y)"),
		cq.MustParse("Q() :- E(x,y), T(y)"),
	}
	for i := 0; i < 6; i++ {
		queries = append(queries, workload.RandomQHierarchical(rng, workload.DefaultQHOptions()))
	}
	for _, q := range queries {
		stream := workload.RandomStream(rng, q.Schema(), 8, 120, 0.35)
		db := dyndb.New()
		var sessions []*Session
		for _, st := range []Strategy{StrategyAuto, StrategyIVM, StrategyRecompute} {
			s, err := NewWithOptions(q, Options{Force: st})
			if err != nil {
				t.Fatalf("%s force %v: %v", q, st, err)
			}
			sessions = append(sessions, s)
		}
		for ui, u := range stream {
			if _, err := db.Apply(u); err != nil {
				t.Fatalf("%s: db apply: %v", q, err)
			}
			for _, s := range sessions {
				if _, err := s.Apply(u); err != nil {
					t.Fatalf("%s [%v]: apply %s: %v", q, s.Strategy(), u, err)
				}
			}
			if ui%40 != 39 && ui != len(stream)-1 {
				continue
			}
			want := eval.Evaluate(q, db)
			for _, s := range sessions {
				if got := s.Count(); got != uint64(want.Len()) {
					t.Fatalf("%s [%v] after %d updates: count %d, want %d", q, s.Strategy(), ui+1, got, want.Len())
				}
				if got := s.Answer(); got != (want.Len() > 0) {
					t.Fatalf("%s [%v]: answer %v, want %v", q, s.Strategy(), got, want.Len() > 0)
				}
				if !sameTuples(s.Tuples(), want.Tuples()) {
					t.Fatalf("%s [%v]: enumerated tuples disagree with eval", q, s.Strategy())
				}
			}
		}
	}
}

func sameTuples(a, b [][]int64) bool {
	if len(a) != len(b) {
		return false
	}
	if len(a) == 0 {
		return true // nil vs empty slice both mean "no tuples"
	}
	sortTuples(a)
	sortTuples(b)
	return reflect.DeepEqual(a, b)
}

func sortTuples(ts [][]int64) {
	sort.Slice(ts, func(i, j int) bool {
		x, y := ts[i], ts[j]
		for k := range x {
			if x[k] != y[k] {
				return x[k] < y[k]
			}
		}
		return false
	})
}

func TestSessionBasics(t *testing.T) {
	s, err := Open("Q(y) :- E(x,y), T(y)")
	if err != nil {
		t.Fatal(err)
	}
	mustApply := func(changed bool, err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		if !changed {
			t.Fatal("expected a change")
		}
	}
	mustApply(s.Insert("E", 1, 2))
	mustApply(s.Insert("T", 2))
	if got := s.Count(); got != 1 {
		t.Fatalf("count = %d, want 1", got)
	}
	if !s.Answer() {
		t.Fatal("answer = false, want true")
	}
	if got := s.Tuples(); len(got) != 1 || got[0][0] != 2 {
		t.Fatalf("tuples = %v, want [[2]]", got)
	}
	mustApply(s.Delete("T", 2))
	if s.Answer() {
		t.Fatal("answer = true after delete, want false")
	}
	if got := s.Cardinality(); got != 1 {
		t.Fatalf("cardinality = %d, want 1", got)
	}
	// Arity mismatch must surface as an error on every backend.
	if _, err := s.Insert("E", 1); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestLoad(t *testing.T) {
	db := dyndb.New()
	for _, u := range []Update{
		dyndb.Insert("E", 1, 2), dyndb.Insert("E", 3, 2), dyndb.Insert("T", 2),
	} {
		if _, err := db.Apply(u); err != nil {
			t.Fatal(err)
		}
	}
	s, err := Open("Q(x) :- E(x,y), T(y)")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Load(db); err != nil {
		t.Fatal(err)
	}
	if got := s.Count(); got != 2 {
		t.Fatalf("count = %d, want 2", got)
	}
}

func TestParseStrategy(t *testing.T) {
	for _, st := range []Strategy{StrategyAuto, StrategyCore, StrategyIVM, StrategyRecompute} {
		got, err := ParseStrategy(st.String())
		if err != nil || got != st {
			t.Errorf("ParseStrategy(%q) = %v, %v", st.String(), got, err)
		}
	}
	if _, err := ParseStrategy("nope"); err == nil {
		t.Error("ParseStrategy(nope): want error")
	}
}
