package dyncq

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"dyncq/internal/cq"
	"dyncq/internal/eval"
	"dyncq/internal/workload"
)

// TestWorkspaceFanOutByteIdentical is the acceptance check of the
// sharded storage core: a K=4 mixed-strategy workspace replaying one
// stream in batches produces byte-identical counts, answers, and
// enumeration order at every worker count (the engines pinned to one
// shard count so their enumeration order is comparable), while the
// store phase runs over a sharded store rather than one map.
func TestWorkspaceFanOutByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	stream := workload.RandomStream(rng, multiSchema(), 16, 1500, 0.35)
	init := workload.RandomDatabase(rand.New(rand.NewSource(212)), multiSchema(), 16, 80)
	run := func(workers int) *Workspace {
		ws := NewWorkspace(WorkspaceOptions{Workers: workers, StoreShards: 8})
		for _, c := range multiSuite() {
			opt := c.opt
			opt.Shards = 8 // identical shard count ⇒ identical enumeration order
			if _, err := ws.RegisterQuery(c.name, cq.MustParse(c.text), opt); err != nil {
				t.Fatal(err)
			}
		}
		if err := ws.Load(init); err != nil {
			t.Fatal(err)
		}
		if _, err := ws.ApplyBatched(stream, 96); err != nil {
			t.Fatal(err)
		}
		return ws
	}
	seq := run(1)
	for _, workers := range []int{2, 4} {
		par := run(workers)
		p := par.Parallelism()
		if p.StoreShards != 8 {
			t.Fatalf("workers=%d: store shards %d, want 8 (store phase not sharded)", workers, p.StoreShards)
		}
		if p.Workers != workers {
			t.Fatalf("Parallelism().Workers = %d, want %d", p.Workers, workers)
		}
		// Steady state: every store move went through the maintenance
		// entry points, so the shared pool must never have fallen back to
		// dropping its built indexes.
		if p.IndexRebuilds != 0 {
			t.Fatalf("workers=%d: %d index rebuilds in steady state, want 0", workers, p.IndexRebuilds)
		}
		if got, want := par.Version(), seq.Version(); got != want {
			t.Fatalf("workers=%d: version %d, sequential %d", workers, got, want)
		}
		for _, c := range multiSuite() {
			hs, hp := seq.Handle(c.name), par.Handle(c.name)
			if hp.Count() != hs.Count() {
				t.Fatalf("workers=%d query %s: count %d vs %d", workers, c.name, hp.Count(), hs.Count())
			}
			if hp.Answer() != hs.Answer() {
				t.Fatalf("workers=%d query %s: answer diverges", workers, c.name)
			}
			exactTuples(t, hs.Strategy(), "query "+c.name, hp.Tuples(), hs.Tuples())
		}
	}
}

// TestWorkspaceParallelismIntrospection: the effective worker/shard
// counts come from the structures, not from re-derived heuristics.
func TestWorkspaceParallelismIntrospection(t *testing.T) {
	ws := NewWorkspace(WorkspaceOptions{Workers: 2})
	for _, c := range multiSuite() {
		if _, err := ws.RegisterQuery(c.name, cq.MustParse(c.text), c.opt); err != nil {
			t.Fatal(err)
		}
	}
	p := ws.Parallelism()
	if p.Workers != 2 {
		t.Fatalf("Workers = %d, want 2", p.Workers)
	}
	if p.StoreShards != 8 { // derived 4×Workers
		t.Fatalf("StoreShards = %d, want 8", p.StoreShards)
	}
	if p.QueryShards["star"] != 8 { // core engine, derived 4×Workers
		t.Fatalf("star shards = %d, want 8", p.QueryShards["star"])
	}
	if p.QueryShards["hard"] != 0 { // ivm: sharding does not apply
		t.Fatalf("hard shards = %d, want 0", p.QueryShards["hard"])
	}
	if p.QueryShards["scan"] != 0 { // recompute
		t.Fatalf("scan shards = %d, want 0", p.QueryShards["scan"])
	}

	cs, err := OpenConcurrent("Q(y) :- E(x,y), T(y)", 4)
	if err != nil {
		t.Fatal(err)
	}
	cp := cs.Parallelism()
	if cp.Workers != 4 || cp.QueryShards["q"] != 16 {
		t.Fatalf("concurrent parallelism = %+v, want workers 4, q shards 16", cp)
	}
	if !cs.Parallel() {
		t.Fatal("Parallel() = false with 4 workers on a sharded core engine")
	}
}

// TestWorkspaceLoadKeepsWarmIndexes: a Load of an overlapping database
// keeps the shared index set (same object, synced, built indexes
// patched in place) instead of rebuilding it from scratch, and the IVM
// results stay correct.
func TestWorkspaceLoadKeepsWarmIndexes(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	ws := NewWorkspace(WorkspaceOptions{})
	h, err := ws.RegisterQuery("hard", cq.MustParse("Q(x,y) :- S(x), E(x,y), T(y)"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if h.Strategy() != StrategyIVM {
		t.Fatalf("strategy %v, want ivm", h.Strategy())
	}
	db1 := workload.RandomDatabase(rng, multiSchema(), 10, 120)
	if err := ws.Load(db1); err != nil {
		t.Fatal(err)
	}
	// Drive the delta-join path so indexes get built.
	if _, err := ws.ApplyBatch(workload.RandomStream(rng, multiSchema(), 10, 8, 0.5)); err != nil {
		t.Fatal(err)
	}
	idxBefore := ws.idx
	if idxBefore == nil || idxBefore.Built() == 0 {
		t.Skip("no index built by the delta path; nothing to test")
	}
	// Overlapping database: db1 plus a fresh tuple.
	db2 := db1.Clone()
	if _, err := db2.Insert("E", 999, 998); err != nil {
		t.Fatal(err)
	}
	if err := ws.Load(db2); err != nil {
		t.Fatal(err)
	}
	if ws.idx != idxBefore {
		t.Fatal("Load replaced the index set despite an overlapping database")
	}
	if !ws.idx.Synced() {
		t.Fatal("index set out of sync after warm Load")
	}
	if got := ws.Parallelism().IndexRebuilds; got != 0 {
		t.Fatalf("%d index rebuilds across Load/ApplyBatch steady state, want 0", got)
	}
	q := h.Query()
	if got, want := h.Count(), uint64(eval.Count(q, db2)); got != want {
		t.Fatalf("count %d after warm Load, oracle %d", got, want)
	}
	// More updates through the warm indexes stay correct too.
	extra := workload.RandomStream(rng, multiSchema(), 10, 6, 0.5)
	if _, err := ws.ApplyBatch(extra); err != nil {
		t.Fatal(err)
	}
	check := db2.Clone()
	for _, u := range extra {
		if _, err := check.Apply(u); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := h.Count(), uint64(eval.Count(q, check)); got != want {
		t.Fatalf("count %d after post-Load batch, oracle %d", got, want)
	}
}

// TestWorkspaceSharedIndexPoolStress is the -race stress test of the
// goroutine-safe shared index pool: K = 5 IVM handles over one schema
// all lease indexes from the workspace's one eval.IndexSet while the
// parallel fan-out runs their delta-joins concurrently (plus concurrent
// View readers for extra pressure). The results must match a sequential
// replay, and in steady state the pool must stay synced with zero
// fallback rebuilds and a clean structural sanity check. Run with -race
// (the CI race job does, at GOMAXPROCS 1 and 4).
func TestWorkspaceSharedIndexPoolStress(t *testing.T) {
	queries := []struct{ name, text string }{
		{"hard", "Q(x,y) :- S(x), E(x,y), T(y)"}, // ivm by classification
		{"star", "Q(y) :- E(x,y), T(y)"},         // forced onto the pool
		{"fan", "Q(x) :- S(x), E(x,y)"},
		{"pair", "Q(x) :- S(x), T(x)"},
		{"swap", "Q(x,y) :- E(x,y), S(y)"},
	}
	init := workload.RandomDatabase(rand.New(rand.NewSource(331)), multiSchema(), 20, 150)
	stream := workload.RandomStream(rand.New(rand.NewSource(332)), multiSchema(), 20, 1200, 0.4)
	const batch = 64

	run := func(workers int) *Workspace {
		ws := NewWorkspace(WorkspaceOptions{Workers: workers})
		for _, q := range queries {
			h, err := ws.RegisterQuery(q.name, cq.MustParse(q.text), Options{Force: StrategyIVM})
			if err != nil {
				t.Fatal(err)
			}
			if h.Strategy() != StrategyIVM {
				t.Fatalf("query %s resolved to %v, want ivm", q.name, h.Strategy())
			}
		}
		if err := ws.Load(init); err != nil {
			t.Fatal(err)
		}
		return ws
	}

	seq := run(1)
	for from := 0; from < len(stream); from += batch {
		to := min(from+batch, len(stream))
		if _, err := seq.ApplyBatch(stream[from:to]); err != nil {
			t.Fatal(err)
		}
	}

	ws := run(4)
	var done atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				ws.View(func(v *WorkspaceView) {
					version := v.Version()
					for _, q := range queries {
						if a, b := v.Count(q.name), v.Count(q.name); a != b {
							t.Errorf("query %s: count moved inside a snapshot: %d -> %d", q.name, a, b)
						}
					}
					if v.Version() != version {
						t.Errorf("version moved inside a snapshot: %d -> %d", version, v.Version())
					}
				})
			}
		}()
	}
	for from := 0; from < len(stream); from += batch {
		to := min(from+batch, len(stream))
		if _, err := ws.ApplyBatch(stream[from:to]); err != nil {
			t.Fatal(err)
		}
	}
	done.Store(true)
	wg.Wait()

	for _, q := range queries {
		hs, hp := seq.Handle(q.name), ws.Handle(q.name)
		if hp.Count() != hs.Count() {
			t.Fatalf("query %s: count %d parallel vs %d sequential", q.name, hp.Count(), hs.Count())
		}
		exactTuples(t, hp.Strategy(), "query "+q.name, hp.Tuples(), hs.Tuples())
	}
	if ws.idx == nil {
		t.Fatal("no shared index pool despite K IVM handles")
	}
	if !ws.idx.Synced() {
		t.Fatal("shared pool out of sync after the stream")
	}
	if err := ws.idx.SanityCheck(); err != nil {
		t.Fatalf("shared pool sanity check: %v", err)
	}
	if got := ws.Parallelism().IndexRebuilds; got != 0 {
		t.Fatalf("%d fallback rebuilds under parallel fan-out, want 0", got)
	}
}

// TestWorkspaceViewPinnedDuringFanOut is the -race stress test of the
// sharded storage core: while one writer drives parallel batches
// (sharded store application + per-handle fan-out + per-engine shard
// workers), concurrent View readers must always observe one pinned
// version whose per-query counts match the precomputed state after
// exactly that many committed batches. Run with -race (the CI race job
// does).
func TestWorkspaceViewPinnedDuringFanOut(t *testing.T) {
	rng := rand.New(rand.NewSource(223))
	stream := workload.RandomStream(rng, multiSchema(), 24, 1600, 0.35)
	const batch = 64

	// Oracle: a sequential workspace replaying the same chunks records
	// the expected per-version counts of every query.
	oracle := NewWorkspace(WorkspaceOptions{})
	for _, c := range multiSuite() {
		if _, err := oracle.RegisterQuery(c.name, cq.MustParse(c.text), c.opt); err != nil {
			t.Fatal(err)
		}
	}
	type state map[string]uint64
	snapshot := func(ws *Workspace) state {
		s := make(state)
		for _, c := range multiSuite() {
			s[c.name] = ws.Handle(c.name).Count()
		}
		return s
	}
	wantAt := []state{snapshot(oracle)}
	var chunks [][]Update
	for from := 0; from < len(stream); from += batch {
		to := from + batch
		if to > len(stream) {
			to = len(stream)
		}
		chunks = append(chunks, stream[from:to])
		n, err := oracle.ApplyBatch(stream[from:to])
		if err != nil {
			t.Fatal(err)
		}
		if n > 0 {
			wantAt = append(wantAt, snapshot(oracle))
		}
	}

	ws := NewWorkspace(WorkspaceOptions{Workers: 4})
	for _, c := range multiSuite() {
		if _, err := ws.RegisterQuery(c.name, cq.MustParse(c.text), c.opt); err != nil {
			t.Fatal(err)
		}
	}
	var done atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				ws.View(func(v *WorkspaceView) {
					version := v.Version()
					if version >= uint64(len(wantAt)) {
						t.Errorf("snapshot at version %d, but only %d commits exist", version, len(wantAt)-1)
						return
					}
					want := wantAt[version]
					for _, c := range multiSuite() {
						if got := v.Count(c.name); got != want[c.name] {
							t.Errorf("version %d query %s: count %d, want %d (torn read)", version, c.name, got, want[c.name])
						}
					}
					if v.Version() != version {
						t.Errorf("version moved inside a snapshot: %d -> %d", version, v.Version())
					}
				})
			}
		}()
	}
	for _, ch := range chunks {
		if _, err := ws.ApplyBatch(ch); err != nil {
			t.Fatal(err)
		}
	}
	done.Store(true)
	wg.Wait()
	if got, want := ws.Version(), uint64(len(wantAt)-1); got != want {
		t.Fatalf("final version %d, want %d", got, want)
	}
	final := wantAt[len(wantAt)-1]
	for _, c := range multiSuite() {
		if got := ws.Handle(c.name).Count(); got != final[c.name] {
			t.Fatalf("final count of %s = %d, want %d", c.name, got, final[c.name])
		}
	}
}
