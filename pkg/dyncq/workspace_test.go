package dyncq

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"dyncq/internal/cq"
	"dyncq/internal/dyndb"
	"dyncq/internal/eval"
	"dyncq/internal/workload"
)

// multiSuite is the standard mixed-strategy registration set used by the
// workspace tests: K = 4 queries over one shared schema {E/2, S/1, T/1},
// covering all three maintenance strategies.
func multiSuite() []struct {
	name string
	text string
	opt  Options
} {
	return []struct {
		name string
		text string
		opt  Options
	}{
		{"star", "Q(y) :- E(x,y), T(y)", Options{}},                           // core (auto)
		{"hard", "Q(x,y) :- S(x), E(x,y), T(y)", Options{}},                   // ivm (auto: not q-hierarchical)
		{"scan", "Q(x,y) :- E(x,y), T(y)", Options{Force: StrategyRecompute}}, // recompute (forced)
		{"pair", "Q(x) :- S(x), T(x)", Options{}},                             // core (auto)
	}
}

func multiSchema() map[string]int { return map[string]int{"E": 2, "S": 1, "T": 1} }

// exactTuples compares result sequences: core backends have a
// deterministic enumeration order, so shared and solo must agree byte
// for byte in sequence; ivm and recompute enumerate in unspecified
// (map) order, so their sequences are canonicalised by sorting first —
// byte-identical content either way.
func exactTuples(t *testing.T, strategy Strategy, label string, got, want [][]Value) {
	t.Helper()
	if strategy != StrategyCore {
		sortTuples(got)
		sortTuples(want)
	}
	if len(got) == 0 && len(want) == 0 {
		return
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: tuples diverge\n got: %v\nwant: %v", label, got, want)
	}
}

// TestWorkspaceMatchesIndependentSessions is the headline contract of
// the front door: a workspace with K ≥ 3 registered queries (mixed
// core/ivm/recompute) replaying one update stream produces, for every
// query, results identical to K independent Sessions replaying the same
// stream — while the shared store is applied once per batch, so its
// mutation count is that of ONE session, independent of K.
func TestWorkspaceMatchesIndependentSessions(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	suite := multiSuite()
	init := workload.RandomDatabase(rng, multiSchema(), 10, 60)
	stream := workload.RandomStream(rng, multiSchema(), 10, 600, 0.4)

	ws := NewWorkspace(WorkspaceOptions{})
	var handles []*Handle
	var solos []*Session
	for _, c := range suite {
		q := cq.MustParse(c.text)
		h, err := ws.RegisterQuery(c.name, q, c.opt)
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
		s, err := NewWithOptions(q, c.opt)
		if err != nil {
			t.Fatal(err)
		}
		solos = append(solos, s)
	}
	if err := ws.Load(init); err != nil {
		t.Fatal(err)
	}
	for _, s := range solos {
		if err := s.Load(init); err != nil {
			t.Fatal(err)
		}
	}
	wsBase := ws.StoreMutations()
	soloBase := make([]uint64, len(solos))
	for i, s := range solos {
		soloBase[i] = s.Workspace().StoreMutations()
	}

	const batch = 37
	for from := 0; from < len(stream); from += batch {
		to := from + batch
		if to > len(stream) {
			to = len(stream)
		}
		n, err := ws.ApplyBatch(stream[from:to])
		if err != nil {
			t.Fatal(err)
		}
		for i, s := range solos {
			sn, err := s.ApplyBatch(stream[from:to])
			if err != nil {
				t.Fatal(err)
			}
			if sn != n {
				t.Fatalf("batch @%d: workspace applied %d net commands, solo %s applied %d", from, n, suite[i].name, sn)
			}
		}
		// Every query agrees with its independent session at every batch
		// boundary.
		for i, h := range handles {
			if h.Count() != solos[i].Count() {
				t.Fatalf("batch @%d, query %s: shared count %d, solo %d", from, h.Name(), h.Count(), solos[i].Count())
			}
			exactTuples(t, h.Strategy(), fmt.Sprintf("batch @%d, query %s", from, h.Name()),
				h.Tuples(), solos[i].Tuples())
		}
	}

	// The shared store was applied once per batch: its mutation count is
	// exactly one session's worth, no matter how many queries are live.
	wsMuts := ws.StoreMutations() - wsBase
	for i, s := range solos {
		soloMuts := s.Workspace().StoreMutations() - soloBase[i]
		if wsMuts != soloMuts {
			t.Fatalf("store mutations: workspace (K=%d queries) %d, solo %s %d — must be equal",
				len(handles), wsMuts, suite[i].name, soloMuts)
		}
	}
}

// TestWorkspaceStoreMutationsIndependentOfK pins the acceptance claim
// directly: the same stream through workspaces with 1 and with 4
// registered queries mutates the shared store the same number of times.
func TestWorkspaceStoreMutationsIndependentOfK(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	stream := workload.RandomStream(rng, multiSchema(), 8, 400, 0.35)

	run := func(k int) uint64 {
		ws := NewWorkspace(WorkspaceOptions{})
		for _, c := range multiSuite()[:k] {
			if _, err := ws.RegisterQuery(c.name, cq.MustParse(c.text), c.opt); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := ws.ApplyBatched(stream, 50); err != nil {
			t.Fatal(err)
		}
		return ws.StoreMutations()
	}
	m1, m4 := run(1), run(4)
	if m1 != m4 {
		t.Fatalf("store mutations depend on K: %d with one query, %d with four", m1, m4)
	}
	if m1 == 0 {
		t.Fatal("stream produced no mutations; test is vacuous")
	}
}

// TestWorkspaceCrossQueryConsistency: after any ApplyBatch and after a
// failed Load, every registered query observes the same version and the
// same (possibly empty) shared state.
func TestWorkspaceCrossQueryConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	ws := NewWorkspace(WorkspaceOptions{})
	for _, c := range multiSuite() {
		if _, err := ws.RegisterQuery(c.name, cq.MustParse(c.text), c.opt); err != nil {
			t.Fatal(err)
		}
	}
	stream := workload.RandomStream(rng, multiSchema(), 8, 200, 0.4)
	if _, err := ws.ApplyBatched(stream, 25); err != nil {
		t.Fatal(err)
	}
	v := ws.Version()
	if v == 0 {
		t.Fatal("version did not advance")
	}
	for _, h := range ws.Handles() {
		if h.Version() != v {
			t.Fatalf("query %s observes version %d, workspace is at %d", h.Name(), h.Version(), v)
		}
	}

	// A failed Load (arity clash with a registered query) leaves the
	// WHOLE workspace empty, at one new version, and still usable.
	bad := dyndb.New()
	if _, err := bad.Insert("E", 1); err != nil { // unary E, queries want binary
		t.Fatal(err)
	}
	if err := ws.Load(bad); err == nil {
		t.Fatal("mismatched-arity Load accepted")
	}
	v2 := ws.Version()
	if v2 != v+1 {
		t.Fatalf("failed Load advanced version to %d, want %d", v2, v+1)
	}
	if ws.Cardinality() != 0 {
		t.Fatalf("|D| = %d after failed Load, want 0", ws.Cardinality())
	}
	for _, h := range ws.Handles() {
		if h.Version() != v2 {
			t.Fatalf("query %s observes version %d after failed Load, workspace is at %d", h.Name(), h.Version(), v2)
		}
		if h.Count() != 0 || h.Answer() {
			t.Fatalf("query %s: count=%d answer=%v after failed Load, want empty", h.Name(), h.Count(), h.Answer())
		}
	}
	// Still alive.
	for _, u := range []Update{Insert("E", 1, 2), Insert("T", 2), Insert("S", 1)} {
		if _, err := ws.Apply(u); err != nil {
			t.Fatal(err)
		}
	}
	if got := ws.Handle("star").Count(); got != 1 {
		t.Fatalf("star count %d after recovery inserts, want 1", got)
	}
	if got := ws.Handle("hard").Count(); got != 1 {
		t.Fatalf("hard count %d after recovery inserts, want 1", got)
	}
}

// TestWorkspaceHandleContracts re-runs the session-layer Load/Enumerate
// contracts per handle on a multi-query workspace: reset-then-load
// semantics and the callee-owned Enumerate slice contract hold for
// every registered query, not just for single-query sessions.
func TestWorkspaceHandleContracts(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	first := workload.RandomDatabase(rng, multiSchema(), 8, 40)
	second := workload.RandomDatabase(rng, multiSchema(), 8, 30)

	ws := NewWorkspace(WorkspaceOptions{})
	for _, c := range multiSuite() {
		if _, err := ws.RegisterQuery(c.name, cq.MustParse(c.text), c.opt); err != nil {
			t.Fatal(err)
		}
	}
	if err := ws.Load(first); err != nil {
		t.Fatal(err)
	}
	if err := ws.Load(second); err != nil { // reset-then-load on a dirty workspace
		t.Fatal(err)
	}
	for _, h := range ws.Handles() {
		want := eval.Evaluate(h.Query(), second)
		if got := h.Count(); got != uint64(want.Len()) {
			t.Fatalf("query %s: count %d after reload, oracle %d", h.Name(), got, want.Len())
		}
		// Copied yields agree with Tuples() and the oracle.
		var copied [][]Value
		h.Enumerate(func(tu []Value) bool {
			copied = append(copied, append([]Value(nil), tu...))
			return true
		})
		if !sameTuples(copied, h.Tuples()) {
			t.Fatalf("query %s: copied enumeration disagrees with Tuples()", h.Name())
		}
		if !sameTuples(copied, want.Tuples()) {
			t.Fatalf("query %s: enumeration disagrees with oracle", h.Name())
		}
		// An abusive yield that scribbles over every slice it is handed
		// must corrupt neither earlier copies nor the workspace state.
		var abused [][]Value
		h.Enumerate(func(tu []Value) bool {
			abused = append(abused, append([]Value(nil), tu...))
			for i := range tu {
				tu[i] = -12345
			}
			return true
		})
		if !sameTuples(abused, want.Tuples()) {
			t.Fatalf("query %s: slice reuse leaked a caller mutation into a later yield", h.Name())
		}
		if !sameTuples(h.Tuples(), want.Tuples()) {
			t.Fatalf("query %s: state corrupted by mutating yielded slices", h.Name())
		}
	}
}

// TestWorkspaceLateRegister: queries registered against an
// already-populated store are immediately up to date, for every
// strategy.
func TestWorkspaceLateRegister(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	ws := NewWorkspace(WorkspaceOptions{})
	db := workload.RandomDatabase(rng, multiSchema(), 8, 50)
	if err := ws.Load(db); err != nil {
		t.Fatal(err)
	}
	stream := workload.RandomStream(rng, multiSchema(), 8, 100, 0.4)
	if _, err := ws.ApplyBatch(stream); err != nil {
		t.Fatal(err)
	}
	oracle := db.Clone()
	if err := oracle.ApplyAll(dyndb.Coalesce(stream)); err != nil {
		t.Fatal(err)
	}
	for _, c := range multiSuite() {
		q := cq.MustParse(c.text)
		h, err := ws.RegisterQuery(c.name, q, c.opt)
		if err != nil {
			t.Fatal(err)
		}
		want := eval.Evaluate(q, oracle)
		if got := h.Count(); got != uint64(want.Len()) {
			t.Fatalf("late-registered %s [%v]: count %d, oracle %d", c.name, h.Strategy(), got, want.Len())
		}
		if !sameTuples(h.Tuples(), want.Tuples()) {
			t.Fatalf("late-registered %s [%v]: tuples disagree with oracle", c.name, h.Strategy())
		}
	}
	// And they stay live under further updates.
	more := workload.RandomStream(rng, multiSchema(), 8, 80, 0.4)
	if _, err := ws.ApplyBatched(more, 16); err != nil {
		t.Fatal(err)
	}
	if err := oracle.ApplyAll(dyndb.Coalesce(more)); err != nil {
		t.Fatal(err)
	}
	for _, h := range ws.Handles() {
		want := eval.Evaluate(h.Query(), oracle)
		if got := h.Count(); got != uint64(want.Len()) {
			t.Fatalf("%s [%v]: count %d after post-register stream, oracle %d", h.Name(), h.Strategy(), got, want.Len())
		}
	}
}

// TestWorkspaceRegisterRejects: name and schema conflicts are caught at
// registration, atomically.
func TestWorkspaceRegisterRejects(t *testing.T) {
	ws := NewWorkspace(WorkspaceOptions{})
	if _, err := ws.Register("q1", "Q(y) :- E(x,y), T(y)"); err != nil {
		t.Fatal(err)
	}
	if _, err := ws.Register("q1", "Q(x) :- S(x)"); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if _, err := ws.Register("", "Q(x) :- S(x)"); err == nil {
		t.Fatal("empty name accepted")
	}
	// E is binary in q1: a unary E must be rejected.
	if _, err := ws.Register("q2", "Q(x) :- E(x)"); err == nil {
		t.Fatal("conflicting arity across queries accepted")
	}
	// A store-declared relation outside every query also pins its arity.
	if _, err := ws.Insert("X", 1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := ws.Register("q3", "Q(x) :- X(x)"); err == nil {
		t.Fatal("conflicting arity against the store accepted")
	}
	// Forcing core onto a non-q-hierarchical query fails as for Session.
	if _, err := ws.RegisterQuery("q4", cq.MustParse("Q(x,y) :- S(x), E(x,y), T(y)"), Options{Force: StrategyCore}); err == nil {
		t.Fatal("forced core on non-q-hierarchical query accepted")
	}
	// Failed registrations left no handle behind.
	if got := len(ws.Handles()); got != 1 {
		t.Fatalf("%d handles registered, want 1", got)
	}
	// Unregister frees the name and the schema constraint.
	if !ws.Unregister("q1") {
		t.Fatal("Unregister(q1) = false")
	}
	if ws.Unregister("q1") {
		t.Fatal("second Unregister(q1) = true")
	}
	if _, err := ws.Register("q1", "Q(x) :- E(x)"); err != nil {
		t.Fatalf("unary E after unregistering its binary owner: %v", err)
	}
}

// TestWorkspaceView: a snapshot pins one version and one state across
// every registered query.
func TestWorkspaceView(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	ws := NewWorkspace(WorkspaceOptions{})
	for _, c := range multiSuite() {
		if _, err := ws.RegisterQuery(c.name, cq.MustParse(c.text), c.opt); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ws.ApplyBatch(workload.RandomStream(rng, multiSchema(), 8, 150, 0.3)); err != nil {
		t.Fatal(err)
	}
	ws.View(func(v *WorkspaceView) {
		if v.Version() != ws.version.Load() {
			t.Fatalf("view version %d, workspace %d", v.Version(), ws.version.Load())
		}
		for _, c := range multiSuite() {
			if v.Count(c.name) != uint64(len(v.Tuples(c.name))) {
				t.Fatalf("query %s: view count %d but %d tuples", c.name, v.Count(c.name), len(v.Tuples(c.name)))
			}
			if v.Answer(c.name) != (v.Count(c.name) > 0) {
				t.Fatalf("query %s: view answer inconsistent with count", c.name)
			}
		}
		if v.Cardinality() != ws.store.Cardinality() {
			t.Fatalf("view |D| %d, store %d", v.Cardinality(), ws.store.Cardinality())
		}
	})
}

// TestWorkspaceParallelMatchesSequential: a workspace with parallel
// workers reaches exactly the state (including enumeration order, at a
// fixed shard count) of a sequential workspace over the same stream.
func TestWorkspaceParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(127))
	stream := workload.RandomStream(rng, multiSchema(), 20, 800, 0.35)
	run := func(workers int) *Workspace {
		ws := NewWorkspace(WorkspaceOptions{Workers: workers})
		for _, c := range multiSuite() {
			opt := c.opt
			opt.Shards = 8 // identical shard count ⇒ identical enumeration order
			if _, err := ws.RegisterQuery(c.name, cq.MustParse(c.text), opt); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := ws.ApplyBatched(stream, 64); err != nil {
			t.Fatal(err)
		}
		return ws
	}
	seq, par := run(1), run(4)
	for _, c := range multiSuite() {
		hs, hp := seq.Handle(c.name), par.Handle(c.name)
		got, want := hp.Tuples(), hs.Tuples()
		exactTuples(t, hs.Strategy(), "query "+c.name, got, want)
	}
}

// TestWorkspaceDict: the string front door — InsertS/DeleteS encode
// through the workspace dictionary; deleting a never-seen constant is a
// no-op that allocates no code.
func TestWorkspaceDict(t *testing.T) {
	ws := NewWorkspace(WorkspaceOptions{})
	h, err := ws.Register("q", "Q(y) :- E(x,y), T(y)")
	if err != nil {
		t.Fatal(err)
	}
	mustChange := func(changed bool, err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		if !changed {
			t.Fatal("expected a change")
		}
	}
	mustChange(ws.InsertS("E", "alice", "bob"))
	mustChange(ws.InsertS("T", "bob"))
	if got := h.Count(); got != 1 {
		t.Fatalf("count = %d, want 1", got)
	}
	d := ws.Dict()
	tuples := h.Tuples()
	if len(tuples) != 1 || d.Decode(tuples[0][0]) != "bob" {
		t.Fatalf("tuples = %v, want [bob] under the dictionary", tuples)
	}
	before := d.Len()
	if changed, err := ws.DeleteS("E", "alice", "nobody"); err != nil || changed {
		t.Fatalf("DeleteS of unseen constant: changed=%v err=%v, want no-op", changed, err)
	}
	if d.Len() != before {
		t.Fatalf("DeleteS of unseen constant allocated a code (%d -> %d)", before, d.Len())
	}
	// Arity mismatches error even when a name is unseen: the unseen-name
	// no-op must not mask a caller bug the other write paths surface.
	if _, err := ws.DeleteS("E", "nobody"); err == nil {
		t.Fatal("DeleteS with wrong arity accepted")
	}
	// And a rejected InsertS assigns no codes either.
	before = d.Len()
	if _, err := ws.InsertS("E", "p", "q", "r"); err == nil {
		t.Fatal("InsertS with wrong arity accepted")
	}
	if d.Len() != before {
		t.Fatalf("rejected InsertS allocated codes (%d -> %d)", before, d.Len())
	}
	mustChange(ws.DeleteS("T", "bob"))
	if h.Answer() {
		t.Fatal("answer = true after DeleteS, want false")
	}
}

// TestWorkspaceDictInsideCallback: Dict never takes the workspace lock,
// so decoding inside Enumerate/View callbacks (which hold the read
// lock) must not deadlock — the natural way to print string tuples.
func TestWorkspaceDictInsideCallback(t *testing.T) {
	ws := NewWorkspace(WorkspaceOptions{})
	h, err := ws.Register("q", "Q(y) :- E(x,y), T(y)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ws.InsertS("E", "alice", "bob"); err != nil {
		t.Fatal(err)
	}
	if _, err := ws.InsertS("T", "bob"); err != nil {
		t.Fatal(err)
	}
	var got string
	h.Enumerate(func(tuple []Value) bool {
		got = ws.Dict().Decode(tuple[0])
		return true
	})
	if got != "bob" {
		t.Fatalf("decoded %q inside Enumerate, want %q", got, "bob")
	}
	ws.View(func(v *WorkspaceView) {
		if n := ws.Dict().Len(); n != 2 {
			t.Fatalf("dict has %d symbols inside View, want 2", n)
		}
	})

	// First use inside a callback must lazily create the dict without
	// touching the workspace lock either.
	ws2 := NewWorkspace(WorkspaceOptions{})
	if _, err := ws2.Register("q", "Q(y) :- E(x,y), T(y)"); err != nil {
		t.Fatal(err)
	}
	ws2.View(func(v *WorkspaceView) {
		if d := ws2.Dict(); d == nil {
			t.Fatal("Dict() = nil inside View")
		}
	})
}

// TestWorkspaceEmptyThenRegister: updates before the first registration
// populate the store only; a later registration picks them up.
func TestWorkspaceEmptyThenRegister(t *testing.T) {
	ws := NewWorkspace(WorkspaceOptions{})
	if _, err := ws.ApplyBatch([]Update{Insert("E", 1, 2), Insert("T", 2)}); err != nil {
		t.Fatal(err)
	}
	if ws.Cardinality() != 2 {
		t.Fatalf("|D| = %d, want 2", ws.Cardinality())
	}
	h, err := ws.Register("q", "Q(y) :- E(x,y), T(y)")
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Count(); got != 1 {
		t.Fatalf("count = %d after late registration, want 1", got)
	}
}
