package analysis_test

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dyncq/internal/analysis"
	"dyncq/internal/analysis/directive"
)

// TestAllowInventory walks every Go file in the repository and audits
// the //dyncq:allow directives: each one must name a registered analyzer
// and carry a justification. A reason-less allow would not suppress
// anything (directive.Index.Allowed requires a reason), so without this
// meta-test it would silently rot as a comment that looks like a
// suppression but isn't.
//
// Analyzer fixtures under testdata/ are skipped: they are synthetic
// inputs, and negative fixtures may deliberately contain malformed
// allows.
func TestAllowInventory(t *testing.T) {
	root := moduleRoot(t)
	var total int
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case "vendor", "testdata", ".git":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(root, path)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				a, ok := directive.ParseAllow(c.Text)
				if !ok {
					continue
				}
				total++
				line := fset.Position(c.Pos()).Line
				if a.Analyzer == "" {
					t.Errorf("%s:%d: //dyncq:allow without an analyzer name", rel, line)
					continue
				}
				if !analysis.Names()[a.Analyzer] {
					t.Errorf("%s:%d: //dyncq:allow names unknown analyzer %q (known: %s)",
						rel, line, a.Analyzer, strings.Join(analyzerNames(), ", "))
				}
				if a.Reason == "" {
					t.Errorf("%s:%d: //dyncq:allow %s without a reason — reason-less allows suppress nothing",
						rel, line, a.Analyzer)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if total == 0 {
		t.Fatal("inventory found no //dyncq:allow directives; the walk is likely broken (the engine packages contain audited allows)")
	}
	t.Logf("audited %d //dyncq:allow directives", total)
}

func analyzerNames() []string {
	var names []string
	for _, a := range analysis.Analyzers() {
		names = append(names, a.Name)
	}
	return names
}

// moduleRoot walks up from the test's directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for dir := wd; ; dir = filepath.Dir(dir) {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		if filepath.Dir(dir) == dir {
			t.Fatalf("no go.mod above %s", wd)
		}
	}
}
