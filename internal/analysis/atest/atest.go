// Package atest is a small offline analyzer test harness in the style
// of golang.org/x/tools/go/analysis/analysistest (which the vendored
// x/tools subset does not include). It loads a fixture package from
// <testdata>/src/<importpath>, typechecks it against the standard
// library via the source importer (no module downloads, no export
// data), runs the analyzer and its Requires chain in-process, and
// matches reported diagnostics against "// want" comments:
//
//	d.mu.Lock() // want `re-acquiring`
//
// Each want comment carries one or more double- or back-quoted regular
// expressions matched against diagnostics on the comment's line.
// Unmatched expectations and unexpected diagnostics both fail the
// test. Fixture packages may import sibling fixture packages by their
// full fixture import path.
package atest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run loads the fixture package at dir/src/<importPath>, applies the
// analyzer, and checks its diagnostics against the fixture's want
// comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, importPath string) {
	t.Helper()
	ld := newLoader(dir)
	pkg, err := ld.load(importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", importPath, err)
	}
	diags, err := runAnalyzer(a, ld.fset, pkg)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, importPath, err)
	}
	checkWants(t, ld.fset, pkg.files, diags)
}

// loadedPkg is one typechecked fixture package.
type loadedPkg struct {
	pkg   *types.Package
	info  *types.Info
	files []*ast.File
}

type loader struct {
	dir    string // testdata root
	fset   *token.FileSet
	std    types.Importer
	loaded map[string]*loadedPkg
}

func newLoader(dir string) *loader {
	fset := token.NewFileSet()
	return &loader{
		dir:    dir,
		fset:   fset,
		std:    importer.ForCompiler(fset, "source", nil),
		loaded: make(map[string]*loadedPkg),
	}
}

// Import implements types.Importer: fixture-local packages win over
// everything else; the rest (stdlib) goes to the source importer.
func (ld *loader) Import(path string) (*types.Package, error) {
	if fi, err := os.Stat(ld.srcDir(path)); err == nil && fi.IsDir() {
		p, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return p.pkg, nil
	}
	return ld.std.Import(path)
}

func (ld *loader) srcDir(importPath string) string {
	return filepath.Join(ld.dir, "src", filepath.FromSlash(importPath))
}

func (ld *loader) load(importPath string) (*loadedPkg, error) {
	if p, ok := ld.loaded[importPath]; ok {
		return p, nil
	}
	dir := ld.srcDir(importPath)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: ld}
	pkg, err := conf.Check(importPath, ld.fset, files, info)
	if err != nil {
		return nil, err
	}
	p := &loadedPkg{pkg: pkg, info: info, files: files}
	ld.loaded[importPath] = p
	return p, nil
}

// runAnalyzer executes the analyzer's Requires chain and then the
// analyzer itself over the loaded package, collecting diagnostics.
func runAnalyzer(a *analysis.Analyzer, fset *token.FileSet, pkg *loadedPkg) ([]analysis.Diagnostic, error) {
	var diags []analysis.Diagnostic
	results := make(map[*analysis.Analyzer]any)
	var run func(a *analysis.Analyzer, collect bool) error
	run = func(a *analysis.Analyzer, collect bool) error {
		if _, done := results[a]; done && !collect {
			return nil
		}
		for _, dep := range a.Requires {
			if err := run(dep, false); err != nil {
				return err
			}
		}
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      pkg.files,
			Pkg:        pkg.pkg,
			TypesInfo:  pkg.info,
			TypesSizes: types.SizesFor("gc", "amd64"),
			ResultOf:   results,
			ReadFile:   os.ReadFile,
			Report: func(d analysis.Diagnostic) {
				if collect {
					diags = append(diags, d)
				}
			},
		}
		res, err := a.Run(pass)
		if err != nil {
			return fmt.Errorf("%s: %w", a.Name, err)
		}
		results[a] = res
		return nil
	}
	if err := run(a, true); err != nil {
		return nil, err
	}
	return diags, nil
}

// expectation is one want regexp at a file:line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	text string
	met  bool
}

var wantRe = regexp.MustCompile("(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)")

func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				i := strings.Index(text, "// want ")
				if i < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range wantRe.FindAllString(text[i+len("// want "):], -1) {
					var pat string
					if q[0] == '`' {
						pat = q[1 : len(q)-1]
					} else {
						var err error
						pat, err = strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, q, err)
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, text: pat})
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.met && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.text)
		}
	}
}
