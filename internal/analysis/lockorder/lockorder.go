// Package lockorder implements the dyncq-lint pass guarding the
// engine's lock discipline. The workspace layer holds two ordered
// locks — pkg/dyncq.Workspace.mu, then internal/eval.IndexSet.mu — and
// neither is re-entrant; the PR 6 Workspace.Dict deadlock was exactly
// an exported-API call made while the workspace mutex was held.
//
// The pass is an intra-function, syntactic analysis: it walks each
// function body in source order tracking which sync.Mutex/RWMutex
// receivers are locked, and flags, while any lock is held:
//
//   - re-acquiring a lock already held (self-deadlock);
//   - acquiring a second lock against the declared order, or a pair
//     with no declared order at all;
//   - operations that can block indefinitely: channel sends/receives,
//     select without default, WaitGroup.Wait, Cond.Wait, time.Sleep;
//   - calls to exported methods of the lock holder itself (public API
//     re-entry, the Dict deadlock shape);
//   - calls through function values (callbacks can re-enter anything).
//
// Function literals are not attributed to their enclosing function:
// they typically run on other goroutines (pool workers) or as
// callbacks after the lock is released, and the analysis has no way to
// know. Deferred unlocks keep the lock held to the end of the body.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"dyncq/internal/analysis/directive"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

var Analyzer = &analysis.Analyzer{
	Name:     "lockorder",
	Doc:      "enforce the Workspace→IndexSet lock order and flag blocking or re-entrant calls made under an engine lock",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// lockRank is the declared acquisition order, keyed by
// "<pkgpath>.<Type>.<field>". A lock may only be acquired while locks
// of strictly lower rank are held; unranked pairs have no declared
// order and nesting them is flagged.
var lockRank = map[string]int{
	"dyncq/pkg/dyncq.Workspace.mu":    0,
	"dyncq/internal/eval.IndexSet.mu": 1,
	// The subscription broker publishes with the workspace write lock
	// held (commit → delta capture → publish), so its mutex ranks
	// strictly above both engine locks and nothing blocking may run
	// under it — sends to subscriber outboxes must stay select-default.
	"dyncq/internal/server.broker.mu": 2,
	// The enumerate frame cache is innermost of all: its mutex guards
	// only the map probe/store (frames are encoded OUTSIDE it), so no
	// other ranked lock — and no function call that could take one —
	// is permitted under it.
	"dyncq/internal/server.frameCache.mu": 3,
}

// heldLock is one lock the current function has acquired and not yet
// released at the point of analysis.
type heldLock struct {
	expr   string // source text of the lock receiver, e.g. "w.mu"
	holder string // source text of the struct holding it, e.g. "w"
	id     string // qualified id for rank lookup, "" if not a named field
	rank   int    // declared rank, -1 if unranked
	pos    token.Pos
}

func run(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	allows := directive.NewIndex(pass.Fset, pass.Files)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil {
			return
		}
		if strings.HasSuffix(pass.Fset.Position(fd.Pos()).Filename, "_test.go") {
			return
		}
		checkFunc(pass, allows, fd)
	})
	return nil, nil
}

func checkFunc(pass *analysis.Pass, allows *directive.Index, fd *ast.FuncDecl) {
	var held []heldLock

	heldNames := func() string {
		names := make([]string, len(held))
		for i, h := range held {
			names[i] = h.expr
		}
		return strings.Join(names, ", ")
	}

	reportBlocking := func(pos token.Pos, what string) {
		if len(held) == 0 {
			return
		}
		allows.Report(pass, pos, "%s while holding %s can block indefinitely with the lock held", what, heldNames())
	}

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			// defer x.Unlock() pins the lock to the end of the body —
			// exactly what the held-set already models. Other deferred
			// calls run after the body; don't analyze them in sequence.
			return false
		case *ast.GoStmt:
			// The spawned goroutine does not hold this function's locks.
			return false
		case *ast.SelectStmt:
			if !hasDefault(n) {
				reportBlocking(n.Pos(), "select without default")
			}
			// The comm clauses are part of the select already reported;
			// walk only the clause bodies.
			for _, clause := range n.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok {
					for _, s := range cc.Body {
						ast.Inspect(s, walk)
					}
				}
			}
			return false
		case *ast.SendStmt:
			reportBlocking(n.Pos(), "channel send")
			return true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				reportBlocking(n.Pos(), "channel receive")
			}
			return true
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					reportBlocking(n.Pos(), "range over channel")
				}
			}
			return true
		case *ast.CallExpr:
			held = handleCall(pass, allows, fd, held, n, heldNames)
			return true
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

func handleCall(pass *analysis.Pass, allows *directive.Index, fd *ast.FuncDecl, held []heldLock, call *ast.CallExpr, heldNames func() string) []heldLock {
	if lk, kind, ok := mutexOp(pass, call); ok {
		switch kind {
		case opLock:
			for _, h := range held {
				switch {
				case h.expr == lk.expr:
					allows.Report(pass, call.Pos(),
						"re-acquiring %s already held since this function locked it: the engine locks are not re-entrant", lk.expr)
				case h.rank >= 0 && lk.rank >= 0 && lk.rank <= h.rank:
					allows.Report(pass, call.Pos(),
						"acquiring %s while holding %s violates the declared lock order (Workspace.mu before IndexSet.mu)", lk.expr, h.expr)
				case h.rank < 0 || lk.rank < 0:
					allows.Report(pass, call.Pos(),
						"acquiring %s while holding %s: this lock pair has no declared acquisition order", lk.expr, h.expr)
				}
			}
			return append(held, lk)
		case opUnlock:
			for i, h := range held {
				if h.expr == lk.expr {
					return append(held[:i:i], held[i+1:]...)
				}
			}
			return held
		}
	}

	if len(held) == 0 {
		return held
	}

	// Blocking calls: WaitGroup.Wait, Cond.Wait, time.Sleep.
	if what, ok := blockingCall(pass, call); ok {
		allows.Report(pass, call.Pos(), "%s while holding %s can block indefinitely with the lock held", what, heldNames())
		return held
	}

	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		fn, isFunc := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		if isFunc {
			if sig := fn.Type().(*types.Signature); sig.Recv() != nil && ast.IsExported(fn.Name()) {
				recv := types.ExprString(fun.X)
				for _, h := range held {
					if h.holder == recv {
						allows.Report(pass, call.Pos(),
							"call to exported method %s.%s while holding its lock %s can re-enter the public API and deadlock", recv, fn.Name(), h.expr)
						break
					}
				}
			}
			return held
		}
		// Selector resolving to a func-typed field or variable.
		if isFuncValue(pass.TypesInfo.Uses[fun.Sel]) {
			allows.Report(pass, call.Pos(),
				"call through function value %s while holding %s: callbacks can re-enter the locked API", types.ExprString(call.Fun), heldNames())
		}
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[fun]
		if isFuncValue(obj) {
			allows.Report(pass, call.Pos(),
				"call through function value %s while holding %s: callbacks can re-enter the locked API", fun.Name, heldNames())
		}
	}
	return held
}

// isFuncValue reports whether obj is a variable (parameter, local,
// field) of function type — a dynamic call target.
func isFuncValue(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	_, isSig := v.Type().Underlying().(*types.Signature)
	return isSig
}

type mutexOpKind int

const (
	opLock mutexOpKind = iota
	opUnlock
)

// mutexOp decodes x.Lock()/RLock()/TryLock() and Unlock()/RUnlock()
// calls on sync.Mutex/sync.RWMutex receivers.
func mutexOp(pass *analysis.Pass, call *ast.CallExpr) (heldLock, mutexOpKind, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return heldLock{}, 0, false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return heldLock{}, 0, false
	}
	var kind mutexOpKind
	switch fn.Name() {
	case "Lock", "RLock":
		kind = opLock
	case "TryLock", "TryRLock":
		// A successful TryLock holds the lock; treat like Lock for
		// ordering (failed attempts make the analysis conservative).
		kind = opLock
	case "Unlock", "RUnlock":
		kind = opUnlock
	default:
		return heldLock{}, 0, false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil || !isMutexType(recv.Type()) {
		return heldLock{}, 0, false
	}
	lk := heldLock{expr: types.ExprString(sel.X), pos: call.Pos(), rank: -1}
	lk.holder = lk.expr
	if fieldSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
		if s, ok := pass.TypesInfo.Selections[fieldSel]; ok && s.Kind() == types.FieldVal {
			lk.holder = types.ExprString(fieldSel.X)
			if id := qualifiedField(s.Recv(), fieldSel.Sel.Name); id != "" {
				lk.id = id
				if r, ok := lockRank[id]; ok {
					lk.rank = r
				}
			}
		}
	}
	return lk, kind, true
}

func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// qualifiedField builds the "<pkgpath>.<Type>.<field>" id used by the
// rank table from the holder's type.
func qualifiedField(holder types.Type, field string) string {
	if p, ok := holder.(*types.Pointer); ok {
		holder = p.Elem()
	}
	named, ok := holder.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + field
}

// blockingCall decodes sync.WaitGroup.Wait, sync.Cond.Wait, and
// time.Sleep calls.
func blockingCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	switch fn.Pkg().Path() {
	case "sync":
		if fn.Name() == "Wait" {
			return types.ExprString(call.Fun), true
		}
	case "time":
		if fn.Name() == "Sleep" {
			return "time.Sleep", true
		}
	}
	return "", false
}

func hasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}
