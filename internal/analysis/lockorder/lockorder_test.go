package lockorder_test

import (
	"testing"

	"dyncq/internal/analysis/atest"
	"dyncq/internal/analysis/lockorder"
)

func TestPositive(t *testing.T) {
	atest.Run(t, "testdata", lockorder.Analyzer, "a")
}

func TestNegative(t *testing.T) {
	atest.Run(t, "testdata", lockorder.Analyzer, "b")
}

func TestRankedAndReentry(t *testing.T) {
	atest.Run(t, "testdata", lockorder.Analyzer, "dyncq/pkg/dyncq")
}

func TestBrokerRank(t *testing.T) {
	atest.Run(t, "testdata", lockorder.Analyzer, "dyncq/internal/server")
}
