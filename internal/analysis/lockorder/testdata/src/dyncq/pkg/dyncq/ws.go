// Fixture for the declared-order and public-re-entry rules: the
// package path and type/field names match the real engine, so the rank
// table applies.
package dyncq

import "sync"

type Workspace struct {
	mu sync.RWMutex
	n  int
}

func (w *Workspace) Public() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.n
}

func (w *Workspace) reenter() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.Public() // want `re-enter the public API`
}

func (w *Workspace) allowedReenter() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.Public() //dyncq:allow lockorder Public is lock-free by construction here
}

func sameRank(a, b *Workspace) {
	a.mu.Lock()
	b.mu.Lock() // want `violates the declared lock order`
	b.mu.Unlock()
	a.mu.Unlock()
}

func readThenWrite(w *Workspace) {
	w.mu.RLock()
	w.n++ // field access is fine; only calls and blocking ops are flagged
	w.mu.RUnlock()
	w.mu.Lock()
	w.n++
	w.mu.Unlock()
}
