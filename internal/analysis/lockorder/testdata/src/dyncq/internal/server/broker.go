// Fixture for the subscription-broker rank: package path and
// type/field names match the real internal/server broker, so the rank
// table entry (rank 2, above the engine locks) applies. The property
// under test is the slow-consumer policy's foundation — publish runs
// with the workspace write lock held, so a blocking send under
// broker.mu would let one stuck subscriber stall every commit.
package server

import "sync"

type broker struct {
	mu   sync.Mutex
	subs map[string][]chan []byte
}

// blockingPublish is the bug the rank + channel rules catch: a plain
// channel send while holding broker.mu blocks the whole commit path on
// one full outbox.
func (b *broker) blockingPublish(name string, frame []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, out := range b.subs[name] {
		out <- frame // want `channel send while holding b.mu can block indefinitely with the lock held`
	}
}

// publish is the correct shape: select with default never blocks, so
// it is exempt from the channel rule.
func (b *broker) publish(name string, frame []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, out := range b.subs[name] {
		select {
		case out <- frame:
		default:
		}
	}
}

// twoBrokers acquires a second broker.mu under the first: both are
// rank 2, and equal rank under the declared order is an inversion the
// same way it is for two Workspaces — there is exactly one broker per
// server, so a second acquisition is a deadlock-shaped bug.
func twoBrokers(a, b *broker) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want `violates the declared lock order`
	b.mu.Unlock()
}
