// Fixture for the enumerate frame-cache rank: package path and
// type/field names match the real internal/server frameCache, so the
// rank table entry (rank 3, innermost) applies. The property under test
// is the encode-outside-the-lock discipline — fc.mu guards only the map
// probe/store, so neither a callback (the encoder) nor any other ranked
// lock may be taken while it is held.
package server

import "sync"

type frameCache struct {
	mu      sync.Mutex
	entries map[string][]byte
}

// encodeUnderLock is the bug the rank rules catch: running the encoder
// callback while holding fc.mu serializes every O(|result|) encode
// behind one mutex — and the callback can re-enter the locked API.
func (fc *frameCache) encodeUnderLock(name string, encode func() []byte) []byte {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	frame, ok := fc.entries[name]
	if !ok {
		frame = encode() // want `call through function value encode while holding fc.mu: callbacks can re-enter the locked API`
		fc.entries[name] = frame
	}
	return frame
}

// publishUnderCache acquires the broker lock (rank 2) under the frame
// cache lock (rank 3): an inversion of the declared innermost-last
// order.
func publishUnderCache(fc *frameCache, b *broker, name string, frame []byte) {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	b.mu.Lock() // want `violates the declared lock order`
	b.mu.Unlock()
}

// frameFor is the correct shape: probe under the lock, encode with the
// lock released, re-lock only to store. Racing misses may encode twice;
// the frames are identical and either wins.
func (fc *frameCache) frameFor(name string, encode func() []byte) []byte {
	fc.mu.Lock()
	if frame, ok := fc.entries[name]; ok {
		fc.mu.Unlock()
		return frame
	}
	fc.mu.Unlock()
	frame := encode()
	fc.mu.Lock()
	fc.entries[name] = frame
	fc.mu.Unlock()
	return frame
}
