// Negative fixture: lock usage the analyzer must leave alone —
// release-before-block, unexported calls under a lock, non-blocking
// select, goroutine bodies, and callbacks invoked after unlocking.
package b

import "sync"

type box struct {
	mu sync.Mutex
	ch chan int
	n  int
}

func (b *box) plain() {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
	b.ch <- 1 // released before the send: fine
}

func (b *box) deferUnlock() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.snapshot() // unexported helper: no public re-entry
}

func (b *box) snapshot() int { return b.n }

func (b *box) nonBlockingSelect() {
	b.mu.Lock()
	defer b.mu.Unlock()
	select {
	case v := <-b.ch:
		b.n = v
	default:
	}
}

func (b *box) spawn() {
	b.mu.Lock()
	defer b.mu.Unlock()
	go func() {
		b.ch <- 1 // runs on its own goroutine without our lock
	}()
}

func (b *box) callbackAfterUnlock(f func()) {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
	f()
}
