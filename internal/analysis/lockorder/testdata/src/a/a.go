// Positive fixture: the generic lockorder violations — re-acquisition,
// undeclared lock pairs, and blocking operations under a held lock.
package a

import (
	"sync"
	"time"
)

type box struct {
	mu    sync.Mutex
	other sync.Mutex
	ch    chan int
	n     int
}

func (b *box) reacquire() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.mu.Lock() // want `re-acquiring b\.mu`
}

func (b *box) undeclaredPair() {
	b.mu.Lock()
	b.other.Lock() // want `no declared acquisition order`
	b.other.Unlock()
	b.mu.Unlock()
}

func (b *box) blockUnderLock() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ch <- 1                    // want `channel send`
	<-b.ch                       // want `channel receive`
	time.Sleep(time.Millisecond) // want `time\.Sleep`
}

func (b *box) waitUnderLock(wg *sync.WaitGroup) {
	b.mu.Lock()
	wg.Wait() // want `wg\.Wait`
	b.mu.Unlock()
}

func (b *box) callbackUnderLock(f func()) {
	b.mu.Lock()
	defer b.mu.Unlock()
	f() // want `function value`
}

func (b *box) selectUnderLock() {
	b.mu.Lock()
	defer b.mu.Unlock()
	select { // want `select without default`
	case v := <-b.ch:
		_ = v
	}
}

func (b *box) rangeChanUnderLock() {
	b.mu.Lock()
	defer b.mu.Unlock()
	for v := range b.ch { // want `range over channel`
		_ = v
	}
}
