// Negative fixture: packages outside the engine interior (cmd/, bench
// display) are the decode boundary and decode freely.
package display

import "dyncq/internal/dict"

func Format(d *dict.Dict, codes []int64) []string {
	out := make([]string, 0, len(codes))
	for _, c := range codes {
		if name, ok := d.TryDecode(c); ok {
			out = append(out, name)
		}
	}
	return out
}
