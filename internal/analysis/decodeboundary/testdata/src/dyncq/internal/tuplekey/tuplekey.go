// Dependency fixture mirroring the real tuplekey Decode.
package tuplekey

func Decode(k string) []int64 {
	out := make([]int64, 0, len(k)/8)
	for i := 0; i+8 <= len(k); i += 8 {
		var v int64
		for j := 7; j >= 0; j-- {
			v = v<<8 | int64(k[i+j])
		}
		out = append(out, v)
	}
	return out
}
