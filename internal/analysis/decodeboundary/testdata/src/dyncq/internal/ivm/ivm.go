// Positive/negative fixture: decode calls inside a hot-path package
// are flagged except inside the Enumerate/Tuples boundary functions or
// under an explicit allow.
package ivm

import (
	"dyncq/internal/dict"
	"dyncq/internal/tuplekey"
)

type store struct {
	d    *dict.Dict
	keys []string
}

func (s *store) hotLookup(k string) []int64 {
	return tuplekey.Decode(k) // want `interned handles must stay interned`
}

func (s *store) display(code int64) string {
	return s.d.Decode(code) // want `interned handles must stay interned`
}

func (s *store) displayAll(codes []int64) []string {
	return s.d.DecodeAll(codes) // want `interned handles must stay interned`
}

// Enumerate is the enumeration boundary: it hands each decoded tuple
// to the caller exactly once per delivered result.
func (s *store) Enumerate(yield func([]int64) bool) {
	for _, k := range s.keys {
		if !yield(tuplekey.Decode(k)) {
			return
		}
	}
}

// Tuples is the other boundary entry point.
func (s *store) Tuples() [][]int64 {
	out := make([][]int64, 0, len(s.keys))
	for _, k := range s.keys {
		out = append(out, tuplekey.Decode(k))
	}
	return out
}

func (s *store) errPath(code int64) (string, bool) {
	return s.d.TryDecode(code) //dyncq:allow decodeboundary one-shot display of the offending tuple on a cold error path
}

func (s *store) encodeFine(name string) int64 {
	return s.d.Encode(name)
}
