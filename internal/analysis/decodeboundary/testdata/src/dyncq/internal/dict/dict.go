// Dependency fixture mirroring the real dict API surface.
package dict

type Dict struct {
	names []string
}

func (d *Dict) Encode(name string) int64 {
	d.names = append(d.names, name)
	return int64(len(d.names))
}

func (d *Dict) Decode(code int64) string { return d.names[code-1] }

func (d *Dict) TryDecode(code int64) (string, bool) {
	if code < 1 || int(code) > len(d.names) {
		return "", false
	}
	return d.names[code-1], true
}

func (d *Dict) DecodeAll(codes []int64) []string {
	out := make([]string, len(codes))
	for i, c := range codes {
		out[i] = d.Decode(c)
	}
	return out
}
