package decodeboundary_test

import (
	"testing"

	"dyncq/internal/analysis/atest"
	"dyncq/internal/analysis/decodeboundary"
)

func TestInteriorPackage(t *testing.T) {
	atest.Run(t, "testdata", decodeboundary.Analyzer, "dyncq/internal/ivm")
}

func TestBoundaryPackageIsClean(t *testing.T) {
	atest.Run(t, "testdata", decodeboundary.Analyzer, "example.com/display")
}
