// Package decodeboundary implements the dyncq-lint pass that keeps
// interned values interned through the engine. Tuples travel as
// dict-interned uint64 handles from ingestion to enumeration; the only
// place a handle may be turned back into its string is the documented
// display boundary (cmd/, bench display, formatTuple) and the
// enumeration surface itself (the Enumerate/Tuples methods that hand
// results to callers). A Decode call anywhere inside the core, eval,
// ivm, or dyndb hot paths would silently reintroduce per-tuple string
// materialisation and destroy the constant-delay budget.
package decodeboundary

import (
	"go/ast"
	"go/types"
	"strings"

	"dyncq/internal/analysis/directive"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

var Analyzer = &analysis.Analyzer{
	Name:     "decodeboundary",
	Doc:      "forbid dict/tuplekey decode calls inside engine hot paths; decoding belongs to the enumeration/display boundary",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// scopedPackages are the interior packages where a decode call is a
// boundary violation. cmd/, internal/bench, and pkg/dyncq (the session
// surface handing results to callers) are the boundary and stay free.
var scopedPackages = map[string]bool{
	"dyncq/internal/core":  true,
	"dyncq/internal/eval":  true,
	"dyncq/internal/ivm":   true,
	"dyncq/internal/dyndb": true,
}

// boundaryFuncs are the function names that form the documented
// enumeration boundary even inside scoped packages: they exist to hand
// decoded tuples to the caller, once per delivered result.
var boundaryFuncs = map[string]bool{
	"Enumerate": true,
	"Tuples":    true,
}

func run(pass *analysis.Pass) (any, error) {
	if !scopedPackages[pass.Pkg.Path()] {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	allows := directive.NewIndex(pass.Fset, pass.Files)

	// Walk with a stack so each call knows its enclosing declaration;
	// function literals belong to the top-level function declaring them
	// (a decode inside a closure built by Enumerate is still boundary).
	ins.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		call := n.(*ast.CallExpr)
		if strings.HasSuffix(pass.Fset.Position(call.Pos()).Filename, "_test.go") {
			return true
		}
		name, ok := decodeCall(pass, call)
		if !ok {
			return true
		}
		if fd := enclosingFuncDecl(stack); fd != nil && boundaryFuncs[fd.Name.Name] {
			return true
		}
		allows.Report(pass, call.Pos(),
			"%s inside %s: interned handles must stay interned until the enumeration/display boundary (cmd/, bench display, Enumerate/Tuples)",
			name, pass.Pkg.Path())
		return true
	})
	return nil, nil
}

// decodeCall reports whether the call decodes an interned handle:
// dict.(*Dict).Decode / TryDecode / DecodeAll, or tuplekey.Decode.
func decodeCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	pkg := fn.Pkg().Path()
	switch {
	case strings.HasSuffix(pkg, "internal/dict"):
		switch fn.Name() {
		case "Decode", "TryDecode", "DecodeAll":
			return "dict." + fn.Name(), true
		}
	case strings.HasSuffix(pkg, "internal/tuplekey"):
		if fn.Name() == "Decode" {
			return "tuplekey.Decode", true
		}
	}
	return "", false
}

func enclosingFuncDecl(stack []ast.Node) *ast.FuncDecl {
	for _, n := range stack {
		if fd, ok := n.(*ast.FuncDecl); ok {
			return fd
		}
	}
	return nil
}
