// Negative fixture: un-annotated functions may allocate freely — the
// analyzer audits only the declared hot path.
package b

import "fmt"

func coldSprintf(n int) string {
	return fmt.Sprintf("%d", n)
}

func coldConcat(a, b string) string {
	return a + b
}

func coldAppend(dst []int, v int) []int {
	return append(dst, v)
}

func coldBox(v int64) any {
	return v
}
