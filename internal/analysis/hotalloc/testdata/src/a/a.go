// Positive fixture: the allocation patterns hotalloc flags inside
// //dyncq:hot functions, with the pre-sized and panic-path forms that
// stay clean.
package a

import "fmt"

func sink(v any) { _ = v }

//dyncq:hot
func hotFmt(n int) {
	fmt.Println(n) // want `fmt\.Println`
}

//dyncq:hot
func hotSprintf(n int) string {
	return fmt.Sprintf("%d", n) // want `fmt\.Sprintf`
}

//dyncq:hot
func hotConcat(a, b string) string {
	return a + b // want `string concatenation`
}

//dyncq:hot
func hotPlusEquals(parts []string) string {
	s := ""
	for _, p := range parts {
		s += p // want `string \+=`
	}
	return s
}

//dyncq:hot
func hotConvert(b []byte) string {
	return string(b) // want `conversion`
}

//dyncq:hot
func hotConvertBack(s string) []byte {
	return []byte(s) // want `conversion`
}

//dyncq:hot
func hotMap() map[int]int {
	return make(map[int]int) // want `unsized make\(map\)`
}

//dyncq:hot
func hotAppend(dst []int, v int) []int {
	return append(dst, v) // want `append to unsized destination`
}

//dyncq:hot
func hotBox(v int64) {
	sink(v) // want `boxes int64 into interface`
}

//dyncq:hot
func hotAppendSized(src []int) []int {
	out := make([]int, 0, len(src))
	for _, v := range src {
		out = append(out, v)
	}
	return out
}

//dyncq:hot
func hotReslice(buf []int, v int) []int {
	out := buf[:0]
	out = append(out, v)
	return append(out[:0], v)
}

//dyncq:hot
func hotSizedMap(n int) map[int]int {
	return make(map[int]int, n)
}

//dyncq:hot
func hotPanicPath(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("negative count %d", n))
	}
	return n * 2
}

//dyncq:hot
func hotAllowed(counts map[string]int, k string) string {
	return "rel:" + k //dyncq:allow hotalloc diagnostics label built once per batch, not per tuple
}
