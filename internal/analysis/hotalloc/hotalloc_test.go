package hotalloc_test

import (
	"testing"

	"dyncq/internal/analysis/atest"
	"dyncq/internal/analysis/hotalloc"
)

func TestHotFunctions(t *testing.T) {
	atest.Run(t, "testdata", hotalloc.Analyzer, "a")
}

func TestColdFunctionsAreClean(t *testing.T) {
	atest.Run(t, "testdata", hotalloc.Analyzer, "b")
}
