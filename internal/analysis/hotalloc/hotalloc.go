// Package hotalloc implements the dyncq-lint pass guarding the
// engine's ≈0.5 allocs/op core update budget. Functions on the
// ApplyBatch → fan-out → slab path carry a //dyncq:hot annotation;
// inside them the pass flags the allocation patterns that silently
// destroy a constant-delay budget: fmt calls, string concatenation,
// string↔[]byte conversions, unsized maps, appends to slices without a
// pre-sized backing array, and implicit interface boxing. Expressions
// inside a panic(...) argument are exempt — a panic is the cold path
// by definition, and the engine's hot functions format their
// invariant-violation messages there.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"dyncq/internal/analysis/directive"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

var Analyzer = &analysis.Analyzer{
	Name:     "hotalloc",
	Doc:      "flag allocation patterns (fmt, string concat, unsized append/make, interface boxing) in //dyncq:hot functions",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	allows := directive.NewIndex(pass.Fset, pass.Files)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil || !directive.IsHot(fd.Doc) {
			return
		}
		checkHotFunc(pass, allows, fd)
	})
	return nil, nil
}

func checkHotFunc(pass *analysis.Pass, allows *directive.Index, fd *ast.FuncDecl) {
	sized := sizedSlices(pass, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isPanic(pass, n) {
				return false // cold path: don't descend into the argument
			}
			checkCall(pass, allows, sized, fd, n)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(pass, n) {
				allows.Report(pass, n.OpPos,
					"string concatenation in hot function %s allocates; build into a reused buffer", fd.Name.Name)
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(pass, n.Lhs[0]) {
				allows.Report(pass, n.TokPos,
					"string += in hot function %s allocates; build into a reused buffer", fd.Name.Name)
			}
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, allows *directive.Index, sized map[types.Object]bool, fd *ast.FuncDecl, call *ast.CallExpr) {
	// Type conversions between string and byte/rune slices copy.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := tv.Type, pass.TypesInfo.TypeOf(call.Args[0])
		if from != nil && stringBytesConversion(to, from) {
			allows.Report(pass, call.Pos(),
				"%s conversion in hot function %s copies its operand", types.TypeString(to, types.RelativeTo(pass.Pkg)), fd.Name.Name)
		}
		return
	}

	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if isBuiltin(pass, fun) {
			switch fun.Name {
			case "make":
				mt := pass.TypesInfo.TypeOf(call.Args[0])
				if mt == nil {
					return
				}
				if _, isMap := mt.Underlying().(*types.Map); isMap && len(call.Args) == 1 {
					allows.Report(pass, call.Pos(),
						"unsized make(map) in hot function %s grows by rehashing; pass a size hint", fd.Name.Name)
				}
			case "append":
				if len(call.Args) > 0 && !sizedDest(pass, sized, call.Args[0]) {
					allows.Report(pass, call.Pos(),
						"append to unsized destination in hot function %s can grow the backing array; pre-size it or reslice with [:0]", fd.Name.Name)
				}
			}
			return
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			allows.Report(pass, call.Pos(),
				"fmt.%s in hot function %s allocates (formatting + interface boxing)", fn.Name(), fd.Name.Name)
			return
		}
	}

	// Implicit interface boxing: a concrete-typed argument passed where
	// the parameter is an interface escapes to the heap.
	sig, ok := calleeSignature(pass, call)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		if call.Ellipsis.IsValid() && i == len(call.Args)-1 {
			break // xs... passes the slice itself, no boxing
		}
		pt := paramType(sig, i)
		if pt == nil {
			break
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := pass.TypesInfo.TypeOf(arg)
		if at == nil || at == types.Typ[types.UntypedNil] {
			continue
		}
		if _, argIface := at.Underlying().(*types.Interface); argIface {
			continue
		}
		allows.Report(pass, arg.Pos(),
			"argument boxes %s into interface %s in hot function %s",
			types.TypeString(at, types.RelativeTo(pass.Pkg)),
			types.TypeString(pt, types.RelativeTo(pass.Pkg)), fd.Name.Name)
	}
}

// sizedSlices collects local slice variables whose defining assignment
// provably reuses or pre-sizes a backing array: make with explicit
// length/capacity, a reslice (x[:0] keeps x's array), or a full slice
// expression. Appending to them is amortised-allocation-free.
func sizedSlices(pass *analysis.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	sized := make(map[types.Object]bool)
	ast.Inspect(fd, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = pass.TypesInfo.Uses[id]
			}
			if obj == nil {
				continue
			}
			if presizedExpr(pass, rhs) {
				sized[obj] = true
			}
		}
		return true
	})
	return sized
}

// presizedExpr reports whether the expression denotes a slice with a
// deliberately chosen backing array.
func presizedExpr(pass *analysis.Pass, e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.SliceExpr:
		return true // x[:0], x[a:b], x[a:b:c] all reuse x's array
	case *ast.CallExpr:
		fun, ok := ast.Unparen(x.Fun).(*ast.Ident)
		if !ok || fun.Name != "make" || !isBuiltin(pass, fun) || len(x.Args) == 0 {
			return false
		}
		mt := pass.TypesInfo.TypeOf(x.Args[0])
		if mt == nil {
			return false
		}
		if _, isSlice := mt.Underlying().(*types.Slice); !isSlice {
			return false
		}
		return len(x.Args) >= 2 // make([]T, n) or make([]T, n, c)
	}
	return false
}

// sizedDest reports whether the append destination is a pre-sized
// local (or itself a reslice expression like buf[:0]).
func sizedDest(pass *analysis.Pass, sized map[types.Object]bool, dst ast.Expr) bool {
	switch x := ast.Unparen(dst).(type) {
	case *ast.SliceExpr:
		return true
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[x]
		if obj == nil {
			obj = pass.TypesInfo.Defs[x]
		}
		return obj != nil && sized[obj]
	}
	return false
}

func stringBytesConversion(to, from types.Type) bool {
	return (isStringType(to) && isByteOrRuneSlice(from)) || (isByteOrRuneSlice(to) && isStringType(from))
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func isString(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	return t != nil && isStringType(t)
}

func isPanic(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic" && isBuiltin(pass, id)
}

func isBuiltin(pass *analysis.Pass, id *ast.Ident) bool {
	_, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

// calleeSignature resolves the static signature of a call's callee for
// the boxing check; dynamic calls and builtins are skipped.
func calleeSignature(pass *analysis.Pass, call *ast.CallExpr) (*types.Signature, bool) {
	t := pass.TypesInfo.TypeOf(call.Fun)
	if t == nil {
		return nil, false
	}
	sig, ok := t.(*types.Signature)
	return sig, ok
}

// paramType returns the type of parameter i, expanding the variadic
// tail; nil when i is out of range (shouldn't happen on typed code).
func paramType(sig *types.Signature, i int) types.Type {
	params := sig.Params()
	if params == nil {
		return nil
	}
	n := params.Len()
	if sig.Variadic() {
		if i >= n-1 {
			last := params.At(n - 1).Type()
			if s, ok := last.(*types.Slice); ok {
				return s.Elem()
			}
			return last
		}
		return params.At(i).Type()
	}
	if i >= n {
		return nil
	}
	return params.At(i).Type()
}
