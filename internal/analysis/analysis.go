// Package analysis registers the dyncq-lint analyzer suite: the custom
// go/analysis passes enforcing the engine invariants that runtime
// tests can only probe — lock discipline, store/index epoch lockstep,
// seed determinism, the intern/decode boundary, and the hot-path
// allocation budget. cmd/dyncq-lint ships them as a vet tool; the
// fixtures under each analyzer's testdata directory are the executable
// specification of what each pass flags and what it deliberately
// leaves alone.
package analysis

import (
	"dyncq/internal/analysis/decodeboundary"
	"dyncq/internal/analysis/determinism"
	"dyncq/internal/analysis/epochstep"
	"dyncq/internal/analysis/hotalloc"
	"dyncq/internal/analysis/lockorder"

	goanalysis "golang.org/x/tools/go/analysis"
)

// Analyzers returns the full dyncq-lint suite in reporting order.
func Analyzers() []*goanalysis.Analyzer {
	return []*goanalysis.Analyzer{
		lockorder.Analyzer,
		epochstep.Analyzer,
		determinism.Analyzer,
		decodeboundary.Analyzer,
		hotalloc.Analyzer,
	}
}

// Names returns the set of analyzer names a //dyncq:allow comment may
// reference; the allow meta-test rejects unknown names.
func Names() map[string]bool {
	names := make(map[string]bool)
	for _, a := range Analyzers() {
		names[a.Name] = true
	}
	return names
}
