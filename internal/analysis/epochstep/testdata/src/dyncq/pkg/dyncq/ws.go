// Fixture for the shared-store half of epochstep: engine code holding
// the workspace's store must not call per-tuple mutators directly.
package dyncq

import "dyncq/internal/dyndb"

type workspace struct {
	store *dyndb.Database
}

func (w *workspace) applyDirect(u dyndb.Update) error {
	_, err := w.store.Insert(u.Rel, u.Tuple...) // want `direct store mutation`
	return err
}

func (w *workspace) applySingle(u dyndb.Update) error {
	_, err := w.store.Apply(u) // want `direct store mutation`
	return err
}

func (w *workspace) applyBatch(us []dyndb.Update) error {
	return w.store.ApplyNetDelta(us, 1)
}

func (w *workspace) load(src *dyndb.Database) error {
	w.store.Clear()
	return w.store.CopyFrom(src)
}

func (w *workspace) applyAllowed(u dyndb.Update) error {
	_, err := w.store.Apply(u) //dyncq:allow epochstep single-update fast path, index maintenance applied in lockstep by the caller
	return err
}
