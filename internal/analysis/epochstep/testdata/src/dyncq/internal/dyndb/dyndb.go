// Positive/negative fixture for the inside-dyndb half of epochstep:
// functions mutating relation/adom state must advance d.epoch in the
// same body.
package dyndb

import "dyncq/internal/tuplekey"

type Value = int64

type Update struct {
	Rel   string
	Tuple []Value
}

type Database struct {
	rels     map[string]*tuplekey.Map[struct{}]
	adom     []map[Value]int
	adomSize int
	card     int
	muts     uint64
	epoch    uint64
}

func (d *Database) Epoch() uint64 { return d.epoch }

// Insert mirrors the real single-tuple mutator: shard-map write plus
// counter writes, with the epoch advanced in the same body.
func (d *Database) Insert(rel string, tuple ...Value) (bool, error) {
	m := d.rels[rel]
	m.Put(tuple, struct{}{})
	d.card++
	d.muts++
	d.epoch++
	return true, nil
}

func (d *Database) Apply(u Update) (bool, error) {
	return d.Insert(u.Rel, u.Tuple...)
}

func (d *Database) ApplyNetDelta(updates []Update, workers int) error {
	for _, u := range updates {
		d.rels[u.Rel].Put(u.Tuple, struct{}{})
		d.card++
	}
	d.epoch += uint64(len(updates))
	return nil
}

func (d *Database) Clear() {
	d.rels = make(map[string]*tuplekey.Map[struct{}])
	d.adomSize = 0
	d.card = 0
	d.epoch++
}

func (d *Database) CopyFrom(src *Database) error {
	for name := range src.rels {
		if _, err := d.Insert(name); err != nil {
			return err
		}
	}
	return nil
}

func (d *Database) insertForgotten(rel string, tuple ...Value) {
	m := d.rels[rel]
	m.Put(tuple, struct{}{}) // want `insertForgotten mutates store state but never advances d\.epoch`
	d.card++                 // want `insertForgotten mutates store state but never advances d\.epoch`
}

func (d *Database) adomThroughAlias(v Value) {
	a := d.adom[0]
	a[v]++ // want `adomThroughAlias mutates store state but never advances d\.epoch`
}

func (d *Database) adomThroughAliasStepped(v Value) {
	a := d.adom[0]
	a[v]++
	if a[v] == 1 {
		d.adomSize++
	}
	d.epoch++
}

func (d *Database) deleteForgotten(v Value) {
	a := d.adom[0]
	delete(a, v) // want `deleteForgotten mutates store state but never advances d\.epoch`
}

// declare writes the relation table without content changes; the allow
// documents why no epoch advance is needed.
func (d *Database) declare(name string) {
	d.rels[name] = tuplekey.NewMap[struct{}](0) //dyncq:allow epochstep declaring an empty relation adds no tuple or adom content
}

// parallelStepped mutates shards from worker closures; the closures
// count toward this body, which does advance the epoch.
func (d *Database) parallelStepped(shards []*tuplekey.Map[struct{}], tuple []Value) {
	done := make(chan struct{})
	for _, m := range shards {
		m := m
		go func() {
			m.Put(tuple, struct{}{})
			done <- struct{}{}
		}()
	}
	for range shards {
		<-done
	}
	d.epoch += uint64(len(shards))
}

// reader performs no writes: Get on a shard map and field reads.
func (d *Database) reader(rel string, tuple []Value) bool {
	m := d.rels[rel]
	if m == nil {
		return false
	}
	_, ok := m.Get(tuple)
	return ok && d.card > 0
}
