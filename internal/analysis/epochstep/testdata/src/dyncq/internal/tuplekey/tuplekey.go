// Dependency fixture mirroring the real tuplekey.Map shape: the
// analyzer identifies relation shard maps by this type.
package tuplekey

type Map[V any] struct {
	m map[string]V
}

func NewMap[V any](size int) *Map[V] {
	return &Map[V]{m: make(map[string]V, size)}
}

func (m *Map[V]) Put(k []int64, v V)      { m.m[key(k)] = v }
func (m *Map[V]) Delete(k []int64) bool   { _, ok := m.m[key(k)]; delete(m.m, key(k)); return ok }
func (m *Map[V]) Get(k []int64) (V, bool) { v, ok := m.m[key(k)]; return v, ok }

func key(k []int64) string {
	b := make([]byte, 0, len(k)*8)
	for _, v := range k {
		for i := 0; i < 8; i++ {
			b = append(b, byte(v>>(8*i)))
		}
	}
	return string(b)
}
