// Negative fixture: code outside the shared-store packages (oracles,
// benches, cmd/) may use the per-tuple mutators on private databases.
package oracle

import "dyncq/internal/dyndb"

type oracle struct {
	db *dyndb.Database
}

func (o *oracle) replay(us []dyndb.Update) error {
	for _, u := range us {
		if _, err := o.db.Apply(u); err != nil {
			return err
		}
	}
	return nil
}
