// Package epochstep implements the dyncq-lint pass that keeps the
// store and its companion index structures in epoch lockstep. The
// eval.IndexSet detects missed updates by comparing the epoch it is
// synchronised to against dyndb.Database.Epoch(), so every state
// transition of the store must advance the epoch — and engine code
// holding the shared store must mutate it only through the batch entry
// points the workspace pairs with index maintenance.
//
// The pass has two halves:
//
//   - Inside internal/dyndb, any function that mutates relation or
//     adom state (writes to the rels/adom/adomSize/card fields, their
//     local aliases, or Put/Delete on a relation shard map) must also
//     advance d.epoch in the same function body.
//
//   - In the engine packages sharing the store (pkg/dyncq, internal/eval,
//     internal/ivm), calls to the per-tuple mutators Insert, Delete,
//     Apply, and ApplyAll on a *dyndb.Database are flagged; batches go
//     through ApplyNetDelta, lifecycle through Clear/CopyFrom, which
//     the workspace pairs with index maintenance.
package epochstep

import (
	"go/ast"
	"go/types"
	"strings"

	"dyncq/internal/analysis/directive"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

var Analyzer = &analysis.Analyzer{
	Name:     "epochstep",
	Doc:      "every dyndb store mutation must advance the epoch (inside dyndb) and go through the blessed batch entry points (outside)",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// storeFields are the Database fields holding relation/adom state.
// epoch and muts are the counters themselves, not content.
var storeFields = map[string]bool{
	"rels":     true,
	"adom":     true,
	"adomSize": true,
	"card":     true,
}

// mutatorMethods are the per-tuple Database mutators that engine code
// sharing the store with an IndexSet must not call directly.
var mutatorMethods = map[string]bool{
	"Insert":   true,
	"Delete":   true,
	"Apply":    true,
	"ApplyAll": true,
}

// sharedStorePackages are the packages that hold the workspace's shared
// store and therefore must keep store and indexes in lockstep. Oracles,
// benches, and cmd/ build private databases and stay out of scope.
var sharedStorePackages = map[string]bool{
	"dyncq/pkg/dyncq":     true,
	"dyncq/internal/eval": true,
	"dyncq/internal/ivm":  true,
}

func run(pass *analysis.Pass) (any, error) {
	if strings.HasSuffix(pass.Pkg.Path(), "internal/dyndb") {
		runInsideDyndb(pass)
		return nil, nil
	}
	if sharedStorePackages[pass.Pkg.Path()] {
		runSharedStore(pass)
	}
	return nil, nil
}

// ---------------------------------------------------------------- outside

func runSharedStore(pass *analysis.Pass) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	allows := directive.NewIndex(pass.Fset, pass.Files)
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		if strings.HasSuffix(pass.Fset.Position(call.Pos()).Filename, "_test.go") {
			return
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || !mutatorMethods[fn.Name()] {
			return
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil || !isDatabase(sig.Recv().Type()) {
			return
		}
		allows.Report(pass, call.Pos(),
			"direct store mutation %s.%s in %s: shared-store code must use ApplyNetDelta/Clear/CopyFrom so indexes stay in epoch lockstep",
			types.TypeString(sig.Recv().Type(), types.RelativeTo(pass.Pkg)), fn.Name(), pass.Pkg.Path())
	})
}

// isDatabase reports whether t is dyndb.Database or a pointer to it.
func isDatabase(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Database" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/dyndb")
}

// ----------------------------------------------------------------- inside

func runInsideDyndb(pass *analysis.Pass) {
	allows := directive.NewIndex(pass.Fset, pass.Files)
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkDyndbFunc(pass, allows, fd)
		}
	}
}

// checkDyndbFunc flags store-state writes in a dyndb function whose
// body (nested literals included — parallel appliers mutate shards
// from worker closures) never advances the epoch.
func checkDyndbFunc(pass *analysis.Pass, allows *directive.Index, fd *ast.FuncDecl) {
	aliases := storeAliases(pass, fd)
	var writes []ast.Node
	advancesEpoch := false

	recordLHS := func(lhs ast.Expr) {
		root, field := fieldRoot(pass, lhs, aliases)
		if !root {
			return
		}
		if field == "epoch" {
			advancesEpoch = true
			return
		}
		if storeFields[field] || field == aliasField {
			writes = append(writes, lhs)
		}
	}

	ast.Inspect(fd, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				recordLHS(lhs)
			}
		case *ast.IncDecStmt:
			recordLHS(n.X)
		case *ast.CallExpr:
			switch fun := ast.Unparen(n.Fun).(type) {
			case *ast.Ident:
				if fun.Name == "delete" && len(n.Args) == 2 {
					recordLHS(n.Args[0])
				}
			case *ast.SelectorExpr:
				// Put/Delete on a relation shard map mutates stored
				// tuples no matter how the map reference was obtained.
				if (fun.Sel.Name == "Put" || fun.Sel.Name == "Delete") && isShardMap(pass, fun.X) {
					writes = append(writes, n)
				}
			}
		}
		return true
	})

	if advancesEpoch || len(writes) == 0 {
		return
	}
	for _, w := range writes {
		allows.Report(pass, w.Pos(),
			"%s mutates store state but never advances d.epoch: companion indexes cannot detect the change",
			fd.Name.Name)
	}
}

// aliasField is the pseudo-field name recorded for writes through a
// local alias of store state (a := d.adom[i]; a[v]++).
const aliasField = "(alias)"

// storeAliases collects the local identifiers a function binds to store
// state (assignments whose RHS is rooted at a Database store field), so
// writes through the alias count as store writes.
func storeAliases(pass *analysis.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	aliases := make(map[types.Object]bool)
	for changed := true; changed; { // fixed point: aliases of aliases
		changed = false
		ast.Inspect(fd, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				if root, _ := fieldRootWith(pass, rhs, aliases, true); !root {
					continue
				}
				id, ok := as.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				if obj != nil && !aliases[obj] {
					aliases[obj] = true
					changed = true
				}
			}
			return true
		})
	}
	return aliases
}

// fieldRoot unwraps selector/index chains and reports whether the
// expression is rooted at a Database store field (or a local alias of
// one), returning the field name ((alias) for alias roots).
func fieldRoot(pass *analysis.Pass, e ast.Expr, aliases map[types.Object]bool) (bool, string) {
	return fieldRootWith(pass, e, aliases, false)
}

func fieldRootWith(pass *analysis.Pass, e ast.Expr, aliases map[types.Object]bool, storeOnly bool) (bool, string) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			if fn, ok := pass.TypesInfo.Selections[x]; ok && fn.Kind() == types.FieldVal && isDatabase(fn.Recv()) {
				name := x.Sel.Name
				if storeOnly && !storeFields[name] {
					return false, ""
				}
				return true, name
			}
			e = x.X
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[x]; obj != nil && aliases[obj] {
				return true, aliasField
			}
			return false, ""
		default:
			return false, ""
		}
	}
}

// isShardMap reports whether the expression is a *tuplekey.Map[struct{}]
// — the concrete type of every relation shard map.
func isShardMap(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Map" || named.Obj().Pkg() == nil ||
		!strings.HasSuffix(named.Obj().Pkg().Path(), "internal/tuplekey") {
		return false
	}
	args := named.TypeArgs()
	if args == nil || args.Len() != 1 {
		return false
	}
	st, ok := args.At(0).Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}
