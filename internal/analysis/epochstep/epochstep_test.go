package epochstep_test

import (
	"testing"

	"dyncq/internal/analysis/atest"
	"dyncq/internal/analysis/epochstep"
)

func TestInsideDyndb(t *testing.T) {
	atest.Run(t, "testdata", epochstep.Analyzer, "dyncq/internal/dyndb")
}

func TestSharedStoreCallers(t *testing.T) {
	atest.Run(t, "testdata", epochstep.Analyzer, "dyncq/pkg/dyncq")
}

func TestOutOfScopePackageIsClean(t *testing.T) {
	// The oracle fixture calls Insert directly on a private database;
	// its package is not in the shared-store scope, so nothing fires.
	atest.Run(t, "testdata", epochstep.Analyzer, "example.com/oracle")
}
