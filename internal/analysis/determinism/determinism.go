// Package determinism implements the dyncq-lint pass that keeps the
// engine packages a pure function of their inputs. The torture oracle
// replays every scenario from a seed and the core engine's enumeration
// is order-sensitive, so wall-clock reads, global (unseeded) math/rand
// calls, and map-iteration order must never influence results inside
// internal/core, internal/eval, or internal/dyndb. Map ranges whose
// output is provably order-insensitive (sorted afterwards, commutative
// folds) carry a //dyncq:allow determinism comment explaining why.
package determinism

import (
	"go/ast"
	"go/types"
	"strings"

	"dyncq/internal/analysis/directive"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

var Analyzer = &analysis.Analyzer{
	Name:     "determinism",
	Doc:      "forbid wall-clock reads, global math/rand, and map-order-dependent iteration in the deterministic engine packages",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// scopedPackages are the packages whose behaviour must be a pure
// function of inputs (plus any explicit seed threaded through APIs).
var scopedPackages = map[string]bool{
	"dyncq/internal/core":  true,
	"dyncq/internal/eval":  true,
	"dyncq/internal/dyndb": true,
}

// forbiddenTimeFuncs are the time package functions that read the wall
// clock. time.Sleep is left to lockorder (it is a blocking concern, not
// a determinism one).
var forbiddenTimeFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// randConstructors are the math/rand[/v2] package-level functions that
// build an explicitly seeded source; everything else at package level
// draws from the shared global source and is forbidden. Methods on
// *rand.Rand are always fine — constructing one forces a seed choice.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func run(pass *analysis.Pass) (any, error) {
	if !scopedPackages[pass.Pkg.Path()] {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	allows := directive.NewIndex(pass.Fset, pass.Files)

	inTest := func(n ast.Node) bool {
		return strings.HasSuffix(pass.Fset.Position(n.Pos()).Filename, "_test.go")
	}

	nodeFilter := []ast.Node{(*ast.CallExpr)(nil), (*ast.RangeStmt)(nil)}
	ins.Preorder(nodeFilter, func(n ast.Node) {
		if inTest(n) {
			return
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := calleeFunc(pass, n)
			if fn == nil || fn.Pkg() == nil {
				return
			}
			// Only package-level functions matter here; methods on
			// *rand.Rand or time.Time values are fine.
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return
			}
			switch fn.Pkg().Path() {
			case "time":
				if forbiddenTimeFuncs[fn.Name()] {
					allows.Report(pass, n.Pos(),
						"call to time.%s in deterministic engine package %s: results must be a pure function of inputs",
						fn.Name(), pass.Pkg.Name())
				}
			case "math/rand", "math/rand/v2":
				if !randConstructors[fn.Name()] {
					allows.Report(pass, n.Pos(),
						"call to global (unseeded) %s.%s in deterministic engine package %s: use an explicitly seeded *rand.Rand",
						fn.Pkg().Name(), fn.Name(), pass.Pkg.Name())
				}
			}
		case *ast.RangeStmt:
			tv, ok := pass.TypesInfo.Types[n.X]
			if !ok {
				return
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				allows.Report(pass, n.Pos(),
					"range over map in deterministic engine package %s: iteration order is nondeterministic; sort, or justify with //dyncq:allow determinism <reason>",
					pass.Pkg.Name())
			}
		}
	})
	return nil, nil
}

// calleeFunc resolves the called function object of a call expression,
// or nil for dynamic calls, conversions, and builtins.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
