package determinism_test

import (
	"testing"

	"dyncq/internal/analysis/atest"
	"dyncq/internal/analysis/determinism"
)

func TestScopedPackage(t *testing.T) {
	atest.Run(t, "testdata", determinism.Analyzer, "dyncq/internal/core")
}

func TestOutOfScopePackageIsClean(t *testing.T) {
	atest.Run(t, "testdata", determinism.Analyzer, "example.com/outside")
}
