// Negative fixture: the same patterns outside the scoped engine
// packages are none of this analyzer's business (benches and the CLI
// read clocks legitimately).
package outside

import (
	"math/rand"
	"time"
)

func now() int64 {
	return time.Now().UnixNano()
}

func roll() int {
	return rand.Intn(6)
}

func keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
