// Positive fixture: nondeterminism sources inside a scoped engine
// package, plus the seeded and allow-annotated forms that stay clean.
package core

import (
	"math/rand"
	"sort"
	"time"
)

func nowBad() int64 {
	return time.Now().UnixNano() // want `time\.Now`
}

func sinceBad(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time\.Since`
}

func randBad() int {
	return rand.Intn(10) // want `unseeded`
}

func shuffleBad(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `unseeded`
}

func randSeeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

func mapRangeBad(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m { // want `range over map`
		out = append(out, k)
	}
	return out
}

func mapRangeSortedAfter(m map[string]int) []string {
	out := make([]string, 0, len(m))
	//dyncq:allow determinism keys are sorted before use, iteration order cannot leak
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sliceRangeFine(xs []int) int {
	n := 0
	for _, v := range xs {
		n += v
	}
	return n
}
