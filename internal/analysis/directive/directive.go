// Package directive parses the two source annotations the dyncq-lint
// analyzer suite runs on:
//
//	//dyncq:hot
//	    marks a function as part of the engine's allocation-audited hot
//	    path (the ApplyBatch → fan-out → slab path). The hotalloc
//	    analyzer checks only annotated functions.
//
//	//dyncq:allow <analyzer> <reason>
//	    suppresses findings of the named analyzer. Suppression is
//	    line-scoped and auditable: a trailing comment suppresses
//	    findings on its own line, a standalone comment (or comment
//	    group) suppresses findings on the first line after it. The
//	    reason is mandatory; the allow meta-test in internal/analysis
//	    fails the build on a reason-less or unknown-analyzer allow.
package directive

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

const (
	hotPrefix   = "//dyncq:hot"
	allowPrefix = "//dyncq:allow"
)

// Allow is one parsed //dyncq:allow comment.
type Allow struct {
	// Analyzer is the analyzer name the allow addresses ("" when the
	// comment is malformed).
	Analyzer string
	// Reason is the mandatory free-text justification ("" when missing).
	Reason string
	// Pos is the position of the comment.
	Pos token.Pos
	// Line is the source line the allow suppresses findings on.
	Line int
	// File is the filename the comment appears in.
	File string
}

// ParseAllow parses the text of one comment. The second result reports
// whether the comment is an allow directive at all (malformed allows
// still return true, with empty Analyzer/Reason fields for the caller
// to report).
func ParseAllow(text string) (Allow, bool) {
	if !strings.HasPrefix(text, allowPrefix) {
		return Allow{}, false
	}
	rest := strings.TrimPrefix(text, allowPrefix)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return Allow{}, false // e.g. //dyncq:allowance
	}
	fields := strings.Fields(rest)
	var a Allow
	if len(fields) >= 1 {
		a.Analyzer = fields[0]
	}
	if len(fields) >= 2 {
		a.Reason = strings.TrimSpace(rest[strings.Index(rest, fields[0])+len(fields[0]):])
	}
	return a, true
}

// IsHot reports whether the comment group marks its subject as hot.
func IsHot(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == hotPrefix || strings.HasPrefix(c.Text, hotPrefix+" ") {
			return true
		}
	}
	return false
}

// Index holds every allow directive of one package, keyed by the line
// it suppresses.
type Index struct {
	fset   *token.FileSet
	allows map[string]map[int][]Allow // file → suppressed line → allows
	All    []Allow                    // every allow, for meta-checks
}

// NewIndex scans the files' comments for allow directives.
func NewIndex(fset *token.FileSet, files []*ast.File) *Index {
	ix := &Index{fset: fset, allows: make(map[string]map[int][]Allow)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				a, ok := ParseAllow(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				a.Pos = c.Pos()
				a.File = pos.Filename
				// A trailing comment shares its line with code and
				// suppresses that line; a standalone comment group
				// suppresses the first line after the group.
				if onOwnLine(fset, f, c) {
					a.Line = fset.Position(cg.End()).Line + 1
				} else {
					a.Line = pos.Line
				}
				ix.All = append(ix.All, a)
				byLine := ix.allows[a.File]
				if byLine == nil {
					byLine = make(map[int][]Allow)
					ix.allows[a.File] = byLine
				}
				byLine[a.Line] = append(byLine[a.Line], a)
			}
		}
	}
	return ix
}

// onOwnLine reports whether no code shares the comment's line — i.e.
// the comment's start column is the first non-blank content. We check
// whether any declaration or statement of the file starts or ends on
// the comment's line before the comment's column.
func onOwnLine(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	line := fset.Position(c.Pos()).Line
	sameLine := false
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || sameLine {
			return false
		}
		if n.Pos() > c.Pos() {
			return false
		}
		if fset.Position(n.End()).Line == line && n.End() <= c.Pos() {
			sameLine = true
			return false
		}
		return true
	})
	return !sameLine
}

// Allowed reports whether a finding of the named analyzer at pos is
// suppressed by an allow directive with a non-empty reason.
func (ix *Index) Allowed(analyzer string, pos token.Pos) bool {
	p := ix.fset.Position(pos)
	for _, a := range ix.allows[p.Filename][p.Line] {
		if a.Analyzer == analyzer && a.Reason != "" {
			return true
		}
	}
	return false
}

// Report emits a diagnostic through the pass unless an allow directive
// suppresses it.
func (ix *Index) Report(pass *analysis.Pass, pos token.Pos, format string, args ...any) {
	if ix.Allowed(pass.Analyzer.Name, pos) {
		return
	}
	pass.Reportf(pos, format, args...)
}
