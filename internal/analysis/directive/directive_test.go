package directive

import "testing"

func TestParseAllow(t *testing.T) {
	cases := []struct {
		text     string
		ok       bool
		analyzer string
		reason   string
	}{
		{"//dyncq:allow hotalloc amortised growth", true, "hotalloc", "amortised growth"},
		{"//dyncq:allow lockorder", true, "lockorder", ""},
		{"//dyncq:allow", true, "", ""},
		{"//dyncq:allow   determinism   spaced   reason  ", true, "determinism", "spaced   reason"},
		{"//dyncq:allowance hotalloc nope", false, "", ""},
		{"// dyncq:allow hotalloc spaced prefix is not a directive", false, "", ""},
		{"//dyncq:hot", false, "", ""},
	}
	for _, c := range cases {
		a, ok := ParseAllow(c.text)
		if ok != c.ok {
			t.Errorf("ParseAllow(%q) ok = %v, want %v", c.text, ok, c.ok)
			continue
		}
		if a.Analyzer != c.analyzer || a.Reason != c.reason {
			t.Errorf("ParseAllow(%q) = (%q, %q), want (%q, %q)", c.text, a.Analyzer, a.Reason, c.analyzer, c.reason)
		}
	}
}
