package workload

import (
	"fmt"
	"math/rand"

	"dyncq/internal/dyndb"
)

// This file adds the adversarial, production-shaped generators behind
// the torture harness (internal/torture) and the large bench tier
// (internal/bench): Zipf-skewed update streams — real traffic
// concentrates on hot keys, which is exactly the access shape the
// free-access-patterns line (Kara, Nikolic, Olteanu, Zhang) motivates —
// and register/unregister churn plans for query-lifecycle stress. Every
// generator is a pure function of its configuration, so any failure
// replays bit-identically from the recorded seed.

// TortureConfig is the seed-driven stream-generator configuration shared
// by the torture harness and the large bench tier. The zero value is not
// useful; call Normalize (idempotent) to clamp arbitrary field values —
// including adversarial ones from the fuzzer — into the generator's
// valid ranges. A normalized config fully determines its stream: same
// config, same bytes.
type TortureConfig struct {
	// Seed drives every random choice of the generator.
	Seed int64
	// Domain is the value universe: constants are drawn from 1..Domain.
	Domain int
	// Updates is the requested stream length. The generator may fall
	// short when the domain saturates (every possible tuple is present
	// and deletions are rare) — it never spins forever to force length.
	Updates int
	// PDelete in [0,1] is the fraction of deletions attempted. Deletions
	// always target a currently-present tuple, so the stream is
	// well-formed: no no-op deletes, no duplicate inserts.
	PDelete float64
	// ZipfS > 1 skews value draws by a Zipf distribution with exponent
	// ZipfS (hot values drawn vastly more often); <= 1 means uniform.
	ZipfS float64
	// ZipfV >= 1 is the Zipf v parameter (flattens the head as it grows).
	ZipfV float64
}

// Normalize clamps every field into the generator's valid range and
// returns the result. It is how arbitrary inputs (the fuzzer's, a
// CLI user's) become a runnable configuration: Domain and Updates are
// forced positive and capped, PDelete clamped into [0,1], ZipfV raised
// to 1 whenever a Zipf skew is requested. Normalizing twice is a no-op.
func (c TortureConfig) Normalize() TortureConfig {
	if c.Domain < 1 {
		c.Domain = 1
	}
	if c.Domain > 1<<20 {
		c.Domain = 1 << 20
	}
	if c.Updates < 0 {
		c.Updates = 0
	}
	if c.Updates > 1<<22 {
		c.Updates = 1 << 22
	}
	if c.PDelete < 0 || c.PDelete != c.PDelete { // NaN guards included
		c.PDelete = 0
	}
	if c.PDelete > 1 {
		c.PDelete = 1
	}
	if c.ZipfS != c.ZipfS || c.ZipfS <= 1 {
		c.ZipfS = 0 // uniform
	}
	if c.ZipfS > 16 {
		c.ZipfS = 16
	}
	if c.ZipfV != c.ZipfV || c.ZipfV < 1 {
		c.ZipfV = 1
	}
	if c.ZipfV > 1<<20 {
		c.ZipfV = 1 << 20
	}
	return c
}

// draw builds the value sampler of a normalized config: Zipf-skewed when
// ZipfS > 1, uniform otherwise. Zipf ranks map onto 1..Domain, so rank 0
// (the hottest) is value 1.
func (c TortureConfig) draw(rng *rand.Rand) func() dyndb.Value {
	if c.ZipfS > 1 {
		z := rand.NewZipf(rng, c.ZipfS, c.ZipfV, uint64(c.Domain-1))
		return func() dyndb.Value { return dyndb.Value(1 + z.Uint64()) }
	}
	return func() dyndb.Value { return dyndb.Value(1 + rng.Intn(c.Domain)) }
}

// Stream generates a well-formed update stream against the schema: every
// deletion targets a tuple present at that point of the stream, inserts
// never duplicate a present tuple, and all arities match the schema. The
// stream is a pure function of (config, schema). When the domain
// saturates (fresh tuples become hard to draw) the generator forces
// deletions — adversarial insert/delete flapping on hot tuples — instead
// of spinning; only a schema with no present tuple left to delete ends
// the stream early.
func (c TortureConfig) Stream(schema map[string]int) []dyndb.Update {
	c = c.Normalize()
	if len(schema) == 0 || c.Updates == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(c.Seed))
	value := c.draw(rng)
	rels := sortedRelations(schema)

	present := make(map[string][][]Value, len(schema))
	index := make(map[string]map[string]int, len(schema))
	for r := range schema {
		index[r] = map[string]int{}
	}
	key := func(t []Value) string { return fmt.Sprint(t) }
	out := make([]dyndb.Update, 0, c.Updates)
	// Misses counts consecutive failed insert attempts (duplicates of
	// present tuples); past the cap the domain is treated as saturated
	// for this round and a deletion is forced if one is possible.
	const missCap = 64
	misses := 0
	for len(out) < c.Updates {
		rel := rels[rng.Intn(len(rels))]
		ar := schema[rel]
		wantDelete := rng.Float64() < c.PDelete || misses >= missCap
		if wantDelete && len(present[rel]) > 0 {
			i := rng.Intn(len(present[rel]))
			t := present[rel][i]
			last := len(present[rel]) - 1
			present[rel][i] = present[rel][last]
			index[rel][key(present[rel][i])] = i
			present[rel] = present[rel][:last]
			delete(index[rel], key(t))
			out = append(out, dyndb.Delete(rel, t...))
			misses = 0
			continue
		}
		t := make([]Value, ar)
		for j := range t {
			t[j] = value()
		}
		if _, dup := index[rel][key(t)]; dup {
			misses++
			if misses >= 2*missCap {
				// Saturated and nothing deletable was picked for this
				// relation: give up instead of spinning.
				if !anyPresent(present) {
					break
				}
				misses = missCap // keep forcing deletions
			}
			continue
		}
		index[rel][key(t)] = len(present[rel])
		present[rel] = append(present[rel], t)
		out = append(out, dyndb.Insert(rel, t...))
		misses = 0
	}
	return out
}

// Database builds an initial database of roughly tuples random tuples
// drawn with the config's value distribution, spread across the schema's
// relations. Like Stream it is a pure function of its inputs and gives
// up on saturated relations instead of spinning.
func (c TortureConfig) Database(schema map[string]int, tuples int) *dyndb.Database {
	c = c.Normalize()
	rng := rand.New(rand.NewSource(c.Seed ^ 0x5eed1a96))
	value := c.draw(rng)
	rels := sortedRelations(schema)
	db := dyndb.New()
	for rel, ar := range schema {
		if err := db.EnsureRelation(rel, ar); err != nil {
			panic(err)
		}
	}
	misses := 0
	for db.Cardinality() < tuples && misses < 1024 {
		rel := rels[rng.Intn(len(rels))]
		t := make([]Value, schema[rel])
		for j := range t {
			t[j] = value()
		}
		changed, err := db.Insert(rel, t...)
		if err != nil {
			panic(err)
		}
		if changed {
			misses = 0
		} else {
			misses++
		}
	}
	return db
}

func sortedRelations(schema map[string]int) []string {
	rels := make([]string, 0, len(schema))
	for r := range schema {
		rels = append(rels, r)
	}
	for i := 1; i < len(rels); i++ {
		for j := i; j > 0 && rels[j] < rels[j-1]; j-- {
			rels[j], rels[j-1] = rels[j-1], rels[j]
		}
	}
	return rels
}

func anyPresent(present map[string][][]Value) bool {
	for _, ts := range present {
		if len(ts) > 0 {
			return true
		}
	}
	return false
}

// ChurnEvent is one step of a query-lifecycle churn plan: register the
// named query (drawn from the plan's pool) or unregister it again.
type ChurnEvent struct {
	Unregister bool
	// Name is the registration name, "q<i>" for pool index i.
	Name string
	// Pool is the pool index of the query this event concerns.
	Pool int
}

// ChurnPlan generates a deterministic register/unregister schedule over
// a pool of poolSize queries: each event registers a random unregistered
// pool entry or unregisters a random live one (pRegister biases the
// choice; a plan never unregisters below one live query, so the
// workspace always serves traffic). The plan starts by registering pool
// entry 0.
func ChurnPlan(rng *rand.Rand, poolSize, events int, pRegister float64) []ChurnEvent {
	if poolSize < 1 || events < 1 {
		return nil
	}
	live := []int{0}
	idle := make([]int, 0, poolSize)
	for i := 1; i < poolSize; i++ {
		idle = append(idle, i)
	}
	plan := []ChurnEvent{{Name: "q0", Pool: 0}}
	for len(plan) < events {
		register := len(live) <= 1 || (len(idle) > 0 && rng.Float64() < pRegister)
		if register && len(idle) > 0 {
			i := rng.Intn(len(idle))
			p := idle[i]
			idle[i] = idle[len(idle)-1]
			idle = idle[:len(idle)-1]
			live = append(live, p)
			plan = append(plan, ChurnEvent{Name: fmt.Sprintf("q%d", p), Pool: p})
			continue
		}
		if len(live) <= 1 {
			break // pool of one: nothing left to churn
		}
		i := rng.Intn(len(live))
		p := live[i]
		live[i] = live[len(live)-1]
		live = live[:len(live)-1]
		idle = append(idle, p)
		plan = append(plan, ChurnEvent{Unregister: true, Name: fmt.Sprintf("q%d", p), Pool: p})
	}
	return plan
}
