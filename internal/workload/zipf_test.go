package workload

import (
	"math/rand"
	"reflect"
	"testing"

	"dyncq/internal/dyndb"
)

// checkWellFormed replays a stream against a fresh database and fails on
// any ill-formed command: arity mismatch, duplicate insert, or deletion
// of an absent tuple — the generator's contract.
func checkWellFormed(t *testing.T, schema map[string]int, stream []dyndb.Update) {
	t.Helper()
	db := dyndb.New()
	for i, u := range stream {
		if want, ok := schema[u.Rel]; !ok || want != len(u.Tuple) {
			t.Fatalf("update %d: %s outside schema %v", i, u, schema)
		}
		changed, err := db.Apply(u)
		if err != nil {
			t.Fatalf("update %d: %s: %v", i, u, err)
		}
		if !changed {
			t.Fatalf("update %d: %s is a no-op (duplicate insert or absent delete)", i, u)
		}
	}
}

func TestZipfStreamWellFormedAndDeterministic(t *testing.T) {
	schema := map[string]int{"E": 2, "T": 1}
	cfg := TortureConfig{Seed: 7, Domain: 50, Updates: 2000, PDelete: 0.4, ZipfS: 1.5, ZipfV: 1}
	s1 := cfg.Stream(schema)
	s2 := cfg.Stream(schema)
	if len(s1) == 0 {
		t.Fatal("empty stream")
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("stream is not deterministic in its config")
	}
	checkWellFormed(t, schema, s1)
	other := TortureConfig{Seed: 8, Domain: 50, Updates: 2000, PDelete: 0.4, ZipfS: 1.5, ZipfV: 1}.Stream(schema)
	if reflect.DeepEqual(s1, other) {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestZipfStreamIsSkewed(t *testing.T) {
	schema := map[string]int{"E": 2}
	cfg := TortureConfig{Seed: 1, Domain: 10000, Updates: 4000, ZipfS: 2.0, ZipfV: 1}
	counts := map[dyndb.Value]int{}
	total := 0
	for _, u := range cfg.Stream(schema) {
		for _, v := range u.Tuple {
			counts[v]++
			total++
		}
	}
	// Under s=2 the hottest value (rank 0 → value 1) should dominate —
	// a uniform draw over 10k values would give it ~0.01% of the mass,
	// so even 5% is a 500× concentration (set-semantics dedup flattens
	// the accepted distribution below the raw Zipf head).
	if hot := counts[1]; float64(hot) < 0.05*float64(total) {
		t.Fatalf("value 1 drawn %d/%d times; stream does not look Zipf-skewed", hot, total)
	}
}

func TestZipfStreamSaturationTerminates(t *testing.T) {
	// Domain 1, unary relation: exactly one possible tuple. With
	// PDelete=0 the generator must fall back to forced deletions
	// (insert/delete flapping on the hot tuple) instead of spinning on
	// duplicate inserts — the stream still reaches its length and stays
	// well-formed.
	schema := map[string]int{"T": 1}
	cfg := TortureConfig{Seed: 3, Domain: 1, Updates: 100, PDelete: 0}
	s := cfg.Stream(schema)
	if len(s) != 100 {
		t.Fatalf("saturated stream length %d, want 100", len(s))
	}
	checkWellFormed(t, schema, s)
}

func TestTortureDatabaseDeterministic(t *testing.T) {
	schema := map[string]int{"E": 2, "S": 1}
	cfg := TortureConfig{Seed: 11, Domain: 200, ZipfS: 1.2, ZipfV: 2}
	d1 := cfg.Database(schema, 500)
	d2 := cfg.Database(schema, 500)
	if d1.Cardinality() < 400 {
		t.Fatalf("database cardinality %d, want ≈500", d1.Cardinality())
	}
	if !reflect.DeepEqual(d1.Updates(), d2.Updates()) {
		t.Fatal("database generation is not deterministic")
	}
}

func TestChurnPlanInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	plan := ChurnPlan(rng, 8, 100, 0.5)
	if len(plan) != 100 {
		t.Fatalf("plan length %d, want 100", len(plan))
	}
	live := map[int]bool{}
	for i, ev := range plan {
		if ev.Unregister {
			if !live[ev.Pool] {
				t.Fatalf("event %d unregisters %s which is not live", i, ev.Name)
			}
			delete(live, ev.Pool)
		} else {
			if live[ev.Pool] {
				t.Fatalf("event %d registers %s twice", i, ev.Name)
			}
			live[ev.Pool] = true
		}
		if len(live) < 1 {
			t.Fatalf("event %d left the workspace with no live query", i)
		}
	}
}

// FuzzTortureConfig proves the generator's contract over arbitrary
// configurations: after Normalize, every generated stream is well-formed
// (valid arities, no duplicate inserts, no deletions of absent tuples)
// and replays bit-identically from its seed. This is the reproducibility
// guarantee the torture harness's failure-seed workflow rests on.
func FuzzTortureConfig(f *testing.F) {
	f.Add(int64(1), 50, 500, 0.3, 1.5, 1.0)
	f.Add(int64(-9), 0, -3, -0.5, 0.0, -2.0)
	f.Add(int64(42), 1, 10000, 1.5, 99.0, 0.0)
	f.Add(int64(0), 1<<30, 1<<30, 0.999, 1.0000001, 1.0)
	f.Fuzz(func(t *testing.T, seed int64, domain, updates int, pDelete, zipfS, zipfV float64) {
		cfg := TortureConfig{Seed: seed, Domain: domain, Updates: updates,
			PDelete: pDelete, ZipfS: zipfS, ZipfV: zipfV}.Normalize()
		if cfg != cfg.Normalize() {
			t.Fatalf("Normalize is not idempotent: %+v vs %+v", cfg, cfg.Normalize())
		}
		// Keep fuzz iterations fast regardless of the requested length.
		if cfg.Updates > 2000 {
			cfg.Updates = 2000
		}
		schema := map[string]int{"E": 2, "T": 1}
		s1 := cfg.Stream(schema)
		checkWellFormed(t, schema, s1)
		if s2 := cfg.Stream(schema); !reflect.DeepEqual(s1, s2) {
			t.Fatalf("config %+v does not replay deterministically", cfg)
		}
	})
}
