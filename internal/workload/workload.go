// Package workload generates queries, databases and update streams for
// tests and benchmarks: random q-hierarchical queries (built from random
// q-trees, so they are q-hierarchical by construction), random arbitrary
// conjunctive queries, random graphs and matrix encodings, and random
// insert/delete streams with valid deletions.
package workload

import (
	"fmt"
	"math/rand"

	"dyncq/internal/cq"
	"dyncq/internal/dyndb"
)

// Value is a database constant.
type Value = dyndb.Value

// QHierarchicalOptions controls RandomQHierarchical.
type QHierarchicalOptions struct {
	MaxVars       int  // tree size cap (>=1)
	MaxAtoms      int  // extra atoms beyond the per-leaf covering atoms
	AllowSelfJoin bool // reuse relation symbols across atoms
	AllowRepeats  bool // repeat variables inside an atom
	ForceBoolean  bool // make all variables quantified
}

// DefaultQHOptions are sensible small-query defaults for property tests.
func DefaultQHOptions() QHierarchicalOptions {
	return QHierarchicalOptions{MaxVars: 6, MaxAtoms: 3, AllowSelfJoin: true, AllowRepeats: true}
}

// RandomQHierarchical generates a random q-hierarchical query:
//
//  1. draw a random rooted tree on 1..MaxVars variables,
//  2. mark a root-connected prefix of nodes as free,
//  3. emit one atom per leaf covering its full root path (so every
//     variable occurs in some atom and every atom is a root path), plus up
//     to MaxAtoms extra atoms over random root paths.
//
// Every atom's variable set is a root path of the tree and the free set
// is root-connected, so the result is q-hierarchical by construction
// (Definition 4.1/Lemma 4.2); tests cross-check this against the
// brute-force Definition 3.1 predicate.
func RandomQHierarchical(rng *rand.Rand, opt QHierarchicalOptions) *cq.Query {
	if opt.MaxVars < 1 {
		opt.MaxVars = 1
	}
	n := 1 + rng.Intn(opt.MaxVars)
	parent := make([]int, n) // parent[0] unused
	for i := 1; i < n; i++ {
		parent[i] = rng.Intn(i)
	}
	vars := make([]string, n)
	for i := range vars {
		vars[i] = fmt.Sprintf("v%d", i)
	}
	// Free set: root-connected prefix by marking each node free with a
	// probability that requires the parent to be free.
	free := make([]bool, n)
	if !opt.ForceBoolean {
		free[0] = rng.Intn(4) != 0 // root free 75% of the time
		for i := 1; i < n; i++ {
			free[i] = free[parent[i]] && rng.Intn(2) == 0
		}
	}
	path := func(i int) []int {
		var rev []int
		for j := i; ; j = parent[j] {
			rev = append(rev, j)
			if j == 0 {
				break
			}
		}
		for a, b := 0, len(rev)-1; a < b; a, b = a+1, b-1 {
			rev[a], rev[b] = rev[b], rev[a]
		}
		return rev
	}
	isLeaf := make([]bool, n)
	for i := range isLeaf {
		isLeaf[i] = true
	}
	for i := 1; i < n; i++ {
		isLeaf[parent[i]] = false
	}

	q := &cq.Query{Name: "Q"}
	relNames := map[string]int{} // relation → arity (for self-join reuse)
	mkAtom := func(p []int) {
		// Argument list: the path variables in random order, optionally
		// with repeats appended.
		args := make([]string, 0, len(p)+2)
		perm := rng.Perm(len(p))
		for _, pi := range perm {
			args = append(args, vars[p[pi]])
		}
		if opt.AllowRepeats {
			for rng.Intn(3) == 0 {
				args = append(args, args[rng.Intn(len(args))])
			}
		}
		var rel string
		if opt.AllowSelfJoin && len(relNames) > 0 && rng.Intn(3) == 0 {
			// Reuse an existing relation of matching arity if any.
			for name, ar := range relNames {
				if ar == len(args) {
					rel = name
					break
				}
			}
		}
		if rel == "" {
			rel = fmt.Sprintf("R%d_%d", len(q.Atoms), len(args))
			relNames[rel] = len(args)
		}
		q.Atoms = append(q.Atoms, cq.Atom{Rel: rel, Args: args})
	}
	for i := 0; i < n; i++ {
		if isLeaf[i] {
			mkAtom(path(i))
		}
	}
	extra := rng.Intn(opt.MaxAtoms + 1)
	for i := 0; i < extra; i++ {
		mkAtom(path(rng.Intn(n)))
	}
	for i := 0; i < n; i++ {
		if free[i] {
			q.Head = append(q.Head, vars[i])
		}
	}
	if err := q.Validate(); err != nil {
		panic(fmt.Sprintf("workload: generated invalid query %s: %v", q, err))
	}
	return q
}

// RandomStream generates count updates against the query's schema over an
// active domain of domainSize constants. Inserts draw fresh random
// tuples; deletes pick a uniformly random currently-present tuple, so the
// stream never contains no-op deletions unless the database is empty.
// pDelete in [0,1] is the fraction of deletions attempted.
func RandomStream(rng *rand.Rand, schema map[string]int, domainSize, count int, pDelete float64) []dyndb.Update {
	rels := make([]string, 0, len(schema))
	for r := range schema {
		rels = append(rels, r)
	}
	// Deterministic relation order for a given seed.
	for i := 1; i < len(rels); i++ {
		for j := i; j > 0 && rels[j] < rels[j-1]; j-- {
			rels[j], rels[j-1] = rels[j-1], rels[j]
		}
	}
	// present[rel] is the list of live tuples for delete sampling.
	present := map[string][][]Value{}
	var out []dyndb.Update
	key := func(t []Value) string { return fmt.Sprint(t) }
	index := map[string]map[string]int{} // rel → tuple key → slot in present
	for r := range schema {
		index[r] = map[string]int{}
	}
	for len(out) < count {
		rel := rels[rng.Intn(len(rels))]
		ar := schema[rel]
		if rng.Float64() < pDelete && len(present[rel]) > 0 {
			i := rng.Intn(len(present[rel]))
			t := present[rel][i]
			last := len(present[rel]) - 1
			present[rel][i] = present[rel][last]
			index[rel][key(present[rel][i])] = i
			present[rel] = present[rel][:last]
			delete(index[rel], key(t))
			out = append(out, dyndb.Delete(rel, t...))
			continue
		}
		t := make([]Value, ar)
		for j := range t {
			t[j] = Value(1 + rng.Intn(domainSize))
		}
		if _, dup := index[rel][key(t)]; dup {
			continue // set semantics: skip duplicate inserts
		}
		index[rel][key(t)] = len(present[rel])
		present[rel] = append(present[rel], t)
		out = append(out, dyndb.Insert(rel, t...))
	}
	return out
}

// RandomDatabase builds a database with roughly tuplesPerRel random
// tuples per schema relation over a domain of domainSize constants.
func RandomDatabase(rng *rand.Rand, schema map[string]int, domainSize, tuplesPerRel int) *dyndb.Database {
	db := dyndb.New()
	for rel, ar := range schema {
		if err := db.EnsureRelation(rel, ar); err != nil {
			panic(err)
		}
		for i := 0; i < tuplesPerRel; i++ {
			t := make([]Value, ar)
			for j := range t {
				t[j] = Value(1 + rng.Intn(domainSize))
			}
			if _, err := db.Insert(rel, t...); err != nil {
				panic(err)
			}
		}
	}
	return db
}

// StarSchemaStream generates the paper-style workload used by the scaling
// benchmarks for the q-hierarchical query
// Q(y) :- E(x,y), T(y): a random bipartite E ⊆ [n]×[n] with about
// edgesPerNode edges per node and T ⊆ [n].
func StarSchemaStream(rng *rand.Rand, n, edgesPerNode int) []dyndb.Update {
	var out []dyndb.Update
	for i := 1; i <= n; i++ {
		for e := 0; e < edgesPerNode; e++ {
			out = append(out, dyndb.Insert("E", Value(i), Value(1+rng.Intn(n))))
		}
		if rng.Intn(2) == 0 {
			out = append(out, dyndb.Insert("T", Value(i)))
		}
	}
	return out
}
