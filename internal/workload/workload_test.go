package workload

import (
	"math/rand"
	"testing"

	"dyncq/internal/dyndb"
	"dyncq/internal/qtree"
)

// TestRandomQHierarchicalClassifies: generated queries must be valid and
// must classify as q-hierarchical under both the q-tree decision
// procedure and the brute-force Definition 3.1 predicate, across option
// combinations.
func TestRandomQHierarchicalClassifies(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	opts := []QHierarchicalOptions{
		DefaultQHOptions(),
		{MaxVars: 1, MaxAtoms: 0},
		{MaxVars: 8, MaxAtoms: 5, AllowSelfJoin: false, AllowRepeats: false},
		{MaxVars: 5, MaxAtoms: 2, ForceBoolean: true},
		{MaxVars: 10, MaxAtoms: 4, AllowSelfJoin: true, AllowRepeats: true},
	}
	for oi, opt := range opts {
		for trial := 0; trial < 200; trial++ {
			q := RandomQHierarchical(rng, opt)
			if err := q.Validate(); err != nil {
				t.Fatalf("opt %d trial %d: invalid query %s: %v", oi, trial, q, err)
			}
			if !qtree.IsQHierarchical(q) {
				t.Fatalf("opt %d trial %d: %s not q-hierarchical per qtree", oi, trial, q)
			}
			if !q.IsQHierarchicalByDefinition() {
				t.Fatalf("opt %d trial %d: %s fails Definition 3.1 brute force", oi, trial, q)
			}
			if opt.ForceBoolean && !q.IsBoolean() {
				t.Fatalf("opt %d trial %d: ForceBoolean produced head %v", oi, trial, q.Head)
			}
		}
	}
}

// TestRandomStreamWellFormed: a random stream must have the requested
// length, respect the schema arities and domain, and contain only valid
// deletions — replaying it tuple by tuple, every update changes the
// database.
func TestRandomStreamWellFormed(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	schema := map[string]int{"E": 2, "T": 1, "R": 3}
	const domain = 10
	stream := RandomStream(rng, schema, domain, 500, 0.4)
	if len(stream) != 500 {
		t.Fatalf("stream length %d, want 500", len(stream))
	}
	db := dyndb.New()
	deletes := 0
	for i, u := range stream {
		ar, ok := schema[u.Rel]
		if !ok {
			t.Fatalf("update %d: unknown relation %s", i, u.Rel)
		}
		if len(u.Tuple) != ar {
			t.Fatalf("update %d: %s arity %d, want %d", i, u.Rel, len(u.Tuple), ar)
		}
		for _, v := range u.Tuple {
			if v < 1 || v > domain {
				t.Fatalf("update %d: value %d outside domain [1,%d]", i, v, domain)
			}
		}
		if u.Op == dyndb.OpDelete {
			deletes++
		}
		changed, err := db.Apply(u)
		if err != nil {
			t.Fatalf("update %d (%s): %v", i, u, err)
		}
		if !changed {
			t.Fatalf("update %d (%s): no-op update in stream", i, u)
		}
	}
	if deletes == 0 {
		t.Fatal("no deletions generated at pDelete=0.4")
	}
}

// TestRandomStreamDeterministic: the same seed must produce the same
// stream (benchmarks depend on this for reproducibility).
func TestRandomStreamDeterministic(t *testing.T) {
	schema := map[string]int{"E": 2, "T": 1}
	a := RandomStream(rand.New(rand.NewSource(9)), schema, 8, 200, 0.3)
	b := RandomStream(rand.New(rand.NewSource(9)), schema, 8, 200, 0.3)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("update %d differs: %s vs %s", i, a[i], b[i])
		}
	}
}

// TestStarSchemaStream: the star workload must be all-insert, well-typed
// for Q(y) :- E(x,y), T(y), and confined to [1,n].
func TestStarSchemaStream(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n, epn = 50, 3
	stream := StarSchemaStream(rng, n, epn)
	if len(stream) < n*epn {
		t.Fatalf("stream length %d, want at least %d", len(stream), n*epn)
	}
	eCount := 0
	for i, u := range stream {
		if u.Op != dyndb.OpInsert {
			t.Fatalf("update %d: star stream contains a deletion", i)
		}
		switch u.Rel {
		case "E":
			if len(u.Tuple) != 2 {
				t.Fatalf("update %d: E arity %d", i, len(u.Tuple))
			}
			eCount++
		case "T":
			if len(u.Tuple) != 1 {
				t.Fatalf("update %d: T arity %d", i, len(u.Tuple))
			}
		default:
			t.Fatalf("update %d: unexpected relation %s", i, u.Rel)
		}
		for _, v := range u.Tuple {
			if v < 1 || v > n {
				t.Fatalf("update %d: value %d outside [1,%d]", i, v, n)
			}
		}
	}
	if eCount != n*epn {
		t.Fatalf("%d E-inserts, want %d", eCount, n*epn)
	}
}

// TestRandomDatabase: generated databases must respect the schema.
func TestRandomDatabase(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	schema := map[string]int{"E": 2, "T": 1}
	db := RandomDatabase(rng, schema, 20, 30)
	for rel, ar := range schema {
		r := db.Relation(rel)
		if r == nil {
			t.Fatalf("relation %s missing", rel)
		}
		if r.Arity() != ar {
			t.Fatalf("relation %s arity %d, want %d", rel, r.Arity(), ar)
		}
		if r.Len() == 0 || r.Len() > 30 {
			t.Fatalf("relation %s has %d tuples, want 1..30", rel, r.Len())
		}
	}
}
