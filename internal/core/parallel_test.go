package core

import (
	"math/rand"
	"testing"

	"dyncq/internal/cq"
	"dyncq/internal/dyndb"
	"dyncq/internal/eval"
	"dyncq/internal/tuplekey"
	"dyncq/internal/workload"
)

// TestNewShardedValidation: shard counts round up to powers of two and
// non-positive counts are rejected.
func TestNewShardedValidation(t *testing.T) {
	q := cq.MustParse("Q(y) :- E(x,y), T(y)")
	for _, c := range []struct{ in, want int }{{1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {16, 16}} {
		e, err := NewSharded(q, c.in)
		if err != nil {
			t.Fatalf("NewSharded(%d): %v", c.in, err)
		}
		if e.Shards() != c.want {
			t.Errorf("NewSharded(%d).Shards() = %d, want %d", c.in, e.Shards(), c.want)
		}
	}
	if _, err := NewSharded(q, 0); err == nil {
		t.Error("NewSharded(0): want error")
	}
}

// TestShardedEngineAgrees drives identical streams through unsharded and
// sharded engines: counts, answers and tuple sets must agree with each
// other and the oracle at every checkpoint, and the sharded invariants
// (including shard assignment) must hold.
func TestShardedEngineAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	queries := []*cq.Query{
		cq.MustParse("Q(y) :- E(x,y), T(y)"),
		cq.MustParse("Q(x,y,z,yp,zp) :- R(x,y,z), R(x,y,zp), E(x,y), E(x,yp), S(x,y,z)"),
		cq.MustParse("Q(x,u) :- S(x), U(u)"), // disconnected: per-component sharding
	}
	for i := 0; i < 4; i++ {
		queries = append(queries, workload.RandomQHierarchical(rng, workload.DefaultQHOptions()))
	}
	for _, q := range queries {
		plain, err := New(q)
		if err != nil {
			t.Fatal(err)
		}
		sharded, err := NewSharded(q, 8)
		if err != nil {
			t.Fatal(err)
		}
		db := dyndb.New()
		stream := workload.RandomStream(rng, q.Schema(), 6, 150, 0.4)
		for ui, u := range stream {
			if _, err := db.Apply(u); err != nil {
				t.Fatal(err)
			}
			if _, err := plain.Apply(u); err != nil {
				t.Fatalf("%s plain: %v", q, err)
			}
			if _, err := sharded.Apply(u); err != nil {
				t.Fatalf("%s sharded: %v", q, err)
			}
			if ui%30 != 29 && ui != len(stream)-1 {
				continue
			}
			if plain.Count() != sharded.Count() {
				t.Fatalf("%s after %d updates: plain count %d, sharded %d", q, ui+1, plain.Count(), sharded.Count())
			}
			if want := eval.Count(q, db); sharded.Count() != uint64(want) {
				t.Fatalf("%s after %d updates: sharded count %d, oracle %d", q, ui+1, sharded.Count(), want)
			}
			if plain.Answer() != sharded.Answer() {
				t.Fatalf("%s: answers disagree", q)
			}
			if !sameTupleSet(plain.Tuples(), sharded.Tuples()) {
				t.Fatalf("%s after %d updates: tuple sets disagree", q, ui+1)
			}
			if err := sharded.checkInvariants(); err != nil {
				t.Fatalf("%s sharded invariants: %v", q, err)
			}
		}
	}
}

// TestApplyBatchParallelMatchesSequential: on engines with the same shard
// count, the parallel batch path must produce state byte-for-byte
// equivalent to the sequential one — same counts, same enumeration ORDER
// — regardless of the worker count, including after a bulk load.
func TestApplyBatchParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, qs := range []string{
		"Q(y) :- E(x,y), T(y)",
		"Q(x,y,z,yp,zp) :- R(x,y,z), R(x,y,zp), E(x,y), E(x,yp), S(x,y,z)",
	} {
		q := cq.MustParse(qs)
		init := workload.RandomDatabase(rng, q.Schema(), 10, 80)
		stream := workload.RandomStream(rng, q.Schema(), 10, 400, 0.4)
		for _, workers := range []int{2, 3, 8} {
			seq, err := NewSharded(q, 8)
			if err != nil {
				t.Fatal(err)
			}
			if err := seq.Load(init); err != nil {
				t.Fatal(err)
			}
			par, err := NewSharded(q, 8)
			if err != nil {
				t.Fatal(err)
			}
			if err := par.Load(init); err != nil {
				t.Fatal(err)
			}
			const chunk = 50
			for from := 0; from < len(stream); from += chunk {
				to := from + chunk
				if to > len(stream) {
					to = len(stream)
				}
				ns, err := seq.ApplyBatch(stream[from:to])
				if err != nil {
					t.Fatal(err)
				}
				np, err := par.ApplyBatchParallel(stream[from:to], workers)
				if err != nil {
					t.Fatal(err)
				}
				if ns != np {
					t.Fatalf("%s workers=%d: applied %d sequentially, %d in parallel", q, workers, ns, np)
				}
				if seq.Count() != par.Count() {
					t.Fatalf("%s workers=%d: counts diverge (%d vs %d)", q, workers, seq.Count(), par.Count())
				}
			}
			if err := par.checkInvariants(); err != nil {
				t.Fatalf("%s workers=%d: %v", q, workers, err)
			}
			if !sameEnumerationOrder(seq, par) {
				t.Fatalf("%s workers=%d: enumeration order diverged from sequential", q, workers)
			}
			// Subsequent sequential updates on the parallel-built structure
			// must keep agreeing (the structure is not subtly corrupted).
			if _, err := par.ApplyBatch(init.Updates()); err != nil {
				t.Fatal(err)
			}
			if _, err := seq.ApplyBatch(init.Updates()); err != nil {
				t.Fatal(err)
			}
			if seq.Count() != par.Count() {
				t.Fatalf("%s workers=%d: post-batch counts diverge", q, workers)
			}
		}
	}
}

// TestApplyBatchParallelDrain: a parallel batch that deletes everything
// returns the sharded structure to pristine state.
func TestApplyBatchParallelDrain(t *testing.T) {
	q := cq.MustParse("Q(y) :- E(x,y), T(y)")
	rng := rand.New(rand.NewSource(47))
	db := workload.RandomDatabase(rng, q.Schema(), 20, 100)
	e, err := NewSharded(q, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Load(db); err != nil {
		t.Fatal(err)
	}
	del := db.Updates()
	for i := range del {
		del[i].Op = dyndb.OpDelete
	}
	if _, err := e.ApplyBatchParallel(del, 4); err != nil {
		t.Fatal(err)
	}
	if e.Count() != 0 || e.Answer() || e.Cardinality() != 0 {
		t.Errorf("count=%d answer=%v |D|=%d after parallel drain", e.Count(), e.Answer(), e.Cardinality())
	}
	for _, c := range e.comps {
		for si := range c.shards {
			for ni, m := range c.shards[si].index {
				if m.Len() != 0 {
					t.Errorf("node %s shard %d: %d items left after drain", c.nodes[ni].name, si, m.Len())
				}
			}
		}
	}
}

// TestApplyBatchParallelErrors: arity errors — against the query schema
// or against a stored relation outside it — reject the whole batch
// atomically, exactly like the sequential path.
func TestApplyBatchParallelErrors(t *testing.T) {
	q := cq.MustParse("Q(y) :- E(x,y), T(y)")
	e, err := NewSharded(q, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.ApplyBatchParallel([]dyndb.Update{
		dyndb.Insert("E", 1, 2),
		dyndb.Insert("T", 2, 3), // arity mismatch against the query
	}, 4); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if e.Cardinality() != 0 {
		t.Fatalf("|D| = %d after rejected batch, want 0 (atomic rejection)", e.Cardinality())
	}
	// db-level error on a relation outside the query schema: NetDelta's
	// store validation rejects the batch with nothing applied.
	if _, err := e.Apply(dyndb.Insert("X", 1)); err != nil {
		t.Fatal(err)
	}
	n, err := e.ApplyBatchParallel([]dyndb.Update{
		dyndb.Insert("E", 1, 2),
		dyndb.Insert("T", 2),
		dyndb.Insert("X", 1, 2), // X exists with arity 1: rejected atomically
		dyndb.Insert("E", 3, 4),
	}, 4)
	if err == nil {
		t.Fatal("expected a db-level arity error")
	}
	if n != 0 {
		t.Errorf("applied = %d on a rejected batch, want 0", n)
	}
	if e.Count() != 0 {
		t.Errorf("count = %d after rejected batch, want 0", e.Count())
	}
	if e.Cardinality() != 1 {
		t.Errorf("|D| = %d after rejected batch, want 1 (only the X tuple)", e.Cardinality())
	}
	if err := e.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func sameEnumerationOrder(a, b *Engine) bool {
	var ta, tb [][]Value
	a.Enumerate(func(t []Value) bool { ta = append(ta, append([]Value(nil), t...)); return true })
	b.Enumerate(func(t []Value) bool { tb = append(tb, append([]Value(nil), t...)); return true })
	if len(ta) != len(tb) {
		return false
	}
	for i := range ta {
		if !tuplekey.Equal(ta[i], tb[i]) {
			return false
		}
	}
	return true
}

func sameTupleSet(a, b [][]Value) bool {
	if len(a) != len(b) {
		return false
	}
	seen := make(map[string]int, len(a))
	for _, t := range a {
		seen[tuplekey.String(t)]++
	}
	for _, t := range b {
		k := tuplekey.String(t)
		if seen[k] == 0 {
			return false
		}
		seen[k]--
	}
	return true
}
