package core

import (
	"errors"
	"fmt"

	"dyncq/internal/cq"
	"dyncq/internal/dyndb"
)

// This file implements the engine's shared-store mode, the core half of
// the workspace front door (pkg/dyncq.Workspace): one dyndb.Database is
// owned by the workspace and shared by every registered query, so the
// store is mutated once per batch no matter how many queries are live.
// An engine built with NewOnStore therefore never writes to e.db — the
// workspace applies the net delta to the store and hands the same delta
// to the engine, which only maintains its view structure (items, lists,
// counters). The self-driving entry points Apply/ApplyBatch/
// ApplyBatchParallel/Load refuse to run in this mode: they would mutate
// the shared store a second time.

// errSharedStore is returned by the self-driving entry points of an
// engine bound to an external store.
var errSharedStore = errors.New("core: engine is bound to a shared store; updates are driven by its workspace")

// NewOnStore compiles the query into an engine bound to an externally
// owned store. The engine starts with an empty view structure: if store
// is already non-empty, call RebuildFromStore to run the preprocessing
// phase over it. Sharding semantics match NewSharded.
func NewOnStore(q *cq.Query, shards int, store *dyndb.Database) (*Engine, error) {
	e, err := NewSharded(q, shards)
	if err != nil {
		return nil, err
	}
	e.db = store
	e.extStore = true
	return e, nil
}

// ApplySharedUpdate runs the Section 6.4 update procedure for one
// command that the workspace has already validated against the query
// schema and applied to the shared store (so it is known to have changed
// the database). This is the single-update fast path of the workspace:
// no batch bookkeeping, no allocation.
func (e *Engine) ApplySharedUpdate(u dyndb.Update) {
	e.version++
	insert := u.Op == dyndb.OpInsert
	for _, ref := range e.rels[u.Rel] {
		e.updateAtom(ref, u.Tuple, insert)
	}
}

// ApplySharedDelta runs the update procedures for a net delta the
// workspace applied to the shared store: survivors must be coalesced,
// schema-validated commands each of which changed the database. With
// workers > 1 on a sharded engine the per-atom operations run on worker
// goroutines exactly as in ApplyBatchParallel (same deterministic
// result); otherwise they run sequentially in delta order, which on an
// unsharded engine reproduces the canonical enumeration order of the
// sequential batch path. The version advances at most once per delta.
func (e *Engine) ApplySharedDelta(survivors []dyndb.Update, workers int) {
	if len(survivors) == 0 {
		return
	}
	e.version++
	if workers > 1 && e.shardCount > 1 && len(e.comps) > 0 {
		e.runDeltaParallel(survivors, workers)
		return
	}
	for _, u := range survivors {
		insert := u.Op == dyndb.OpInsert
		for _, ref := range e.rels[u.Rel] {
			e.updateAtom(ref, u.Tuple, insert)
		}
	}
}

// RebuildFromStore discards the view structure and runs the bulk
// preprocessing phase (one counting pass + one bottom-up weight pass,
// see loadBulk) over the shared store's current contents. The workspace
// calls this after replacing the store's contents (Load) and when a
// query registers against an already-populated store. A schema clash
// (a store relation whose arity contradicts the query) fails with the
// structure cleared — the engine then represents the empty result, and
// the workspace is expected to resolve the clash before retrying.
func (e *Engine) RebuildFromStore() error {
	e.clearStructure()
	e.version++
	for _, rel := range e.db.Relations() {
		r := e.db.Relation(rel)
		if want, ok := e.schema[rel]; ok && want != r.Arity() {
			e.clearStructure()
			return fmt.Errorf("core: %s has arity %d in query, %d in the shared store", rel, want, r.Arity())
		}
		refs := e.rels[rel]
		if len(refs) == 0 {
			continue
		}
		r.Each(func(t []Value) bool {
			for _, ref := range refs {
				e.countAtom(ref, t)
			}
			return true
		})
	}
	var scratch []listEntry
	for _, c := range e.comps {
		for si := range c.shards {
			e.buildWeights(c, &c.shards[si])
			scratch = sortLists(c, &c.shards[si], scratch)
		}
	}
	return nil
}

// ClearStructure discards the view structure without touching the
// store, leaving the engine representing the empty database. The
// workspace uses it when a failed Load empties the shared store.
func (e *Engine) ClearStructure() {
	e.clearStructure()
	e.version++
}
