package core

import (
	"errors"
	"math/rand"
	"testing"

	"dyncq/internal/cq"
	"dyncq/internal/dyndb"
	"dyncq/internal/eval"
	"dyncq/internal/tuplekey"
	"dyncq/internal/workload"
)

func mustEngine(t *testing.T, query string) *Engine {
	t.Helper()
	e, err := New(cq.MustParse(query))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestRejectsNonQHierarchical(t *testing.T) {
	for _, q := range []string{
		"Q(x,y) :- S(x), E(x,y), T(y)", // ϕS-E-T
		"Q() :- S(x), E(x,y), T(y)",    // ϕ'S-E-T
		"Q(x) :- E(x,y), T(y)",         // ϕE-T
		"Q(x,y) :- E(x,x), E(x,y), E(y,y)",
	} {
		_, err := New(cq.MustParse(q))
		if err == nil {
			t.Errorf("New(%s) succeeded, want ErrNotQHierarchical", q)
			continue
		}
		if !errors.Is(err, ErrNotQHierarchical) {
			t.Errorf("New(%s): error %v does not wrap ErrNotQHierarchical", q, err)
		}
	}
}

func TestRejectsInvalidQuery(t *testing.T) {
	bad := &cq.Query{Name: "Q", Head: []string{"x"}, Atoms: nil}
	if _, err := New(bad); err == nil {
		t.Error("New accepted an atom-less query")
	}
}

func TestBooleanAnswerUnderUpdates(t *testing.T) {
	// ∃x∃y (Exy ∧ Ty) is q-hierarchical (Section 3).
	e := mustEngine(t, "Q() :- E(x,y), T(y)")
	if e.Answer() {
		t.Error("empty database answers yes")
	}
	e.Insert("E", 1, 2)
	if e.Answer() {
		t.Error("yes without T")
	}
	e.Insert("T", 2)
	if !e.Answer() {
		t.Error("no after E(1,2), T(2)")
	}
	if got := e.Count(); got != 1 {
		t.Errorf("Boolean count = %d, want 1", got)
	}
	e.Delete("E", 1, 2)
	if e.Answer() {
		t.Error("yes after deleting the only edge")
	}
	if got := e.Count(); got != 0 {
		t.Errorf("Boolean count = %d, want 0", got)
	}
	// Boolean enumeration: exactly one empty tuple when yes.
	e.Insert("E", 3, 2)
	n := 0
	e.Enumerate(func(tup []Value) bool {
		if len(tup) != 0 {
			t.Errorf("Boolean tuple has arity %d", len(tup))
		}
		n++
		return true
	})
	if n != 1 {
		t.Errorf("Boolean enumeration yielded %d tuples, want 1", n)
	}
}

func TestCountWithQuantifier(t *testing.T) {
	// Q(y) = ∃x (Exy ∧ Ty): count distinct y, not valuations.
	e := mustEngine(t, "Q(y) :- E(x,y), T(y)")
	e.Insert("T", 10)
	e.Insert("T", 11)
	e.Insert("E", 1, 10)
	e.Insert("E", 2, 10) // second witness for y=10: count must stay 1 for y=10
	if got := e.Count(); got != 1 {
		t.Errorf("count = %d, want 1", got)
	}
	e.Insert("E", 1, 11)
	if got := e.Count(); got != 2 {
		t.Errorf("count = %d, want 2", got)
	}
	e.Delete("E", 1, 10)
	if got := e.Count(); got != 2 {
		t.Errorf("count = %d, want 2 (witness x=2 remains)", got)
	}
	e.Delete("E", 2, 10)
	if got := e.Count(); got != 1 {
		t.Errorf("count = %d, want 1", got)
	}
	got := e.Tuples()
	if len(got) != 1 || got[0][0] != 11 {
		t.Errorf("Tuples = %v, want [[11]]", got)
	}
}

func TestDisconnectedProduct(t *testing.T) {
	// ϕ(D) = ϕ1(D) × ϕ2(D) for disconnected queries (Section 6 intro).
	e := mustEngine(t, "Q(x,u) :- S(x), U(u)")
	e.Insert("S", 1)
	e.Insert("S", 2)
	e.Insert("U", 7)
	e.Insert("U", 8)
	e.Insert("U", 9)
	if got := e.Count(); got != 6 {
		t.Errorf("count = %d, want 6", got)
	}
	tuples := e.Tuples()
	if len(tuples) != 6 {
		t.Fatalf("enumerated %d tuples, want 6: %v", len(tuples), tuples)
	}
	seen := map[[2]Value]bool{}
	for _, tp := range tuples {
		seen[[2]Value{tp[0], tp[1]}] = true
	}
	for _, x := range []Value{1, 2} {
		for _, u := range []Value{7, 8, 9} {
			if !seen[[2]Value{x, u}] {
				t.Errorf("missing (%d,%d)", x, u)
			}
		}
	}
	e.Delete("U", 7)
	e.Delete("U", 8)
	e.Delete("U", 9)
	if got := e.Count(); got != 0 {
		t.Errorf("count = %d, want 0 after emptying U", got)
	}
	if got := e.Tuples(); len(got) != 0 {
		t.Errorf("enumerated %v from empty product", got)
	}
}

func TestBooleanComponentGatesProduct(t *testing.T) {
	// Q(x) :- S(x), E(u,w): the E component is Boolean; the result is S
	// if E is nonempty, else empty.
	e := mustEngine(t, "Q(x) :- S(x), E(u,w)")
	e.Insert("S", 1)
	e.Insert("S", 2)
	if e.Count() != 0 || e.Answer() {
		t.Error("nonempty result with empty Boolean component")
	}
	if got := e.Tuples(); len(got) != 0 {
		t.Errorf("Tuples = %v, want empty", got)
	}
	e.Insert("E", 5, 6)
	if e.Count() != 2 || !e.Answer() {
		t.Errorf("count = %d answer = %v, want 2 true", e.Count(), e.Answer())
	}
	if got := e.Tuples(); len(got) != 2 {
		t.Errorf("Tuples = %v, want 2 tuples", got)
	}
	e.Delete("E", 5, 6)
	if e.Count() != 0 {
		t.Error("Boolean component delete not reflected")
	}
}

func TestSelfJoinQHierarchical(t *testing.T) {
	// Self-joins are fine for the upper bound as long as the query is
	// q-hierarchical: Q(x) :- E(x,x) plus a second occurrence of E.
	e := mustEngine(t, "Q(x,y) :- E(x,y), E(x,y)")
	e.Insert("E", 1, 2)
	if got := e.Count(); got != 1 {
		t.Errorf("count = %d, want 1", got)
	}
	e2 := mustEngine(t, "Q(x) :- E(x,x)")
	e2.Insert("E", 1, 2)
	e2.Insert("E", 3, 3)
	if got := e2.Count(); got != 1 {
		t.Errorf("count = %d, want 1 (only the loop)", got)
	}
	got := e2.Tuples()
	if len(got) != 1 || got[0][0] != 3 {
		t.Errorf("Tuples = %v, want [[3]]", got)
	}
	e2.Delete("E", 3, 3)
	if e2.Answer() {
		t.Error("loop deleted but answer still yes")
	}
}

func TestRepeatedVariablePatterns(t *testing.T) {
	// R(x,y,x): only tuples with first = third position match.
	e := mustEngine(t, "Q(x,y) :- R(x,y,x)")
	e.Insert("R", 1, 2, 3) // no match
	if e.Answer() {
		t.Error("non-matching tuple satisfied the pattern")
	}
	e.Insert("R", 1, 2, 1)
	if !e.Answer() || e.Count() != 1 {
		t.Errorf("answer=%v count=%d, want true 1", e.Answer(), e.Count())
	}
	got := e.Tuples()
	if len(got) != 1 || got[0][0] != 1 || got[0][1] != 2 {
		t.Errorf("Tuples = %v", got)
	}
	e.Delete("R", 1, 2, 1)
	if e.Answer() {
		t.Error("delete of matching tuple ignored")
	}
	// The non-matching tuple is still stored in the database.
	if !e.Has("R", 1, 2, 3) {
		t.Error("non-matching tuple lost from database")
	}
}

func TestDuplicateInsertAndAbsentDelete(t *testing.T) {
	e := mustEngine(t, "Q(y) :- E(x,y), T(y)")
	if ch, _ := e.Insert("E", 1, 2); !ch {
		t.Error("first insert reported unchanged")
	}
	if ch, _ := e.Insert("E", 1, 2); ch {
		t.Error("duplicate insert reported change")
	}
	e.Insert("T", 2)
	if e.Count() != 1 {
		t.Errorf("count = %d, want 1", e.Count())
	}
	if ch, _ := e.Delete("E", 9, 9); ch {
		t.Error("absent delete reported change")
	}
	e.Delete("E", 1, 2)
	if e.Count() != 0 {
		t.Errorf("count = %d after delete, want 0", e.Count())
	}
	if err := e.checkInvariants(); err != nil {
		t.Error(err)
	}
}

func TestArityMismatchRejected(t *testing.T) {
	e := mustEngine(t, "Q(y) :- E(x,y), T(y)")
	if _, err := e.Insert("E", 1); err == nil {
		t.Error("arity-1 insert into binary E accepted")
	}
	if _, err := e.Delete("T", 1, 2); err == nil {
		t.Error("arity-2 delete from unary T accepted")
	}
}

func TestUnknownRelationUpdates(t *testing.T) {
	e := mustEngine(t, "Q(y) :- E(x,y), T(y)")
	ch, err := e.Insert("Unrelated", 1, 2, 3)
	if err != nil || !ch {
		t.Fatalf("insert into unrelated relation: %v %v", ch, err)
	}
	if e.Cardinality() != 1 {
		t.Errorf("|D| = %d, want 1", e.Cardinality())
	}
	if e.Answer() {
		t.Error("unrelated tuple affected the query")
	}
}

func TestIteratorInvalidatedByUpdate(t *testing.T) {
	e := mustEngine(t, "Q(y) :- E(x,y), T(y)")
	e.Insert("E", 1, 2)
	e.Insert("T", 2)
	it := e.Iterator()
	if _, ok := it.Next(); !ok {
		t.Fatal("expected one tuple")
	}
	e.Insert("E", 1, 3)
	defer func() {
		if recover() == nil {
			t.Error("Next on stale iterator did not panic")
		}
	}()
	it.Next()
}

func TestStatsAccessors(t *testing.T) {
	e := mustEngine(t, "Q(y) :- E(x,y), T(y)")
	e.Insert("E", 1, 2)
	e.Insert("T", 2)
	if e.Cardinality() != 2 || e.ActiveDomainSize() != 2 {
		t.Errorf("|D|=%d n=%d, want 2 2", e.Cardinality(), e.ActiveDomainSize())
	}
	if e.DatabaseSize() <= 0 {
		t.Error("DatabaseSize not positive")
	}
	if e.Query().String() == "" {
		t.Error("Query accessor broken")
	}
	if !e.Has("E", 1, 2) || e.Has("E", 2, 1) {
		t.Error("Has broken")
	}
}

func TestLoadEqualsIncremental(t *testing.T) {
	q := cq.MustParse("Q(x,y,z,yp,zp) :- R(x,y,z), R(x,y,zp), E(x,y), E(x,yp), S(x,y,z)")
	rng := rand.New(rand.NewSource(21))
	db := workload.RandomDatabase(rng, q.Schema(), 6, 30)
	bulk, err := New(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := bulk.Load(db); err != nil {
		t.Fatal(err)
	}
	inc, err := New(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range db.Updates() {
		if _, err := inc.Apply(u); err != nil {
			t.Fatal(err)
		}
	}
	if bulk.Count() != inc.Count() {
		t.Errorf("bulk count %d != incremental count %d", bulk.Count(), inc.Count())
	}
	if bulk.Count() != uint64(eval.Count(q, db)) {
		t.Errorf("engine count %d != eval count %d", bulk.Count(), eval.Count(q, db))
	}
}

// TestRandomAgainstOracle is the central correctness test of the engine:
// random q-hierarchical queries (with self-joins, repeated variables,
// quantifiers, multiple components) are maintained through random
// insert/delete streams; after every update the engine's Answer and Count
// must match the static oracle, and periodically the enumerated result
// set and all internal invariants are checked.
func TestRandomAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	trials := 120
	if testing.Short() {
		trials = 25
	}
	for trial := 0; trial < trials; trial++ {
		q := workload.RandomQHierarchical(rng, workload.DefaultQHOptions())
		e, err := New(q)
		if err != nil {
			t.Fatalf("trial %d: New(%s): %v", trial, q, err)
		}
		db := dyndb.New()
		stream := workload.RandomStream(rng, q.Schema(), 4, 120, 0.35)
		for si, u := range stream {
			if _, err := e.Apply(u); err != nil {
				t.Fatalf("trial %d step %d (%s): %v", trial, si, u, err)
			}
			if _, err := db.Apply(u); err != nil {
				t.Fatal(err)
			}
			wantCount := eval.Count(q, db)
			if got := e.Count(); got != uint64(wantCount) {
				t.Fatalf("trial %d step %d (%s) query %s: Count = %d, oracle %d",
					trial, si, u, q, got, wantCount)
			}
			if got, want := e.Answer(), eval.Answer(q, db); got != want {
				t.Fatalf("trial %d step %d query %s: Answer = %v, oracle %v", trial, si, q, got, want)
			}
			if si%40 == 39 {
				compareEnumeration(t, e, q, db, trial, si)
				if err := e.checkInvariants(); err != nil {
					t.Fatalf("trial %d step %d query %s: %v", trial, si, q, err)
				}
			}
		}
		compareEnumeration(t, e, q, db, trial, len(stream))
		if err := e.checkInvariants(); err != nil {
			t.Fatalf("trial %d query %s: %v", trial, q, err)
		}
	}
}

func compareEnumeration(t *testing.T, e *Engine, q *cq.Query, db *dyndb.Database, trial, step int) {
	t.Helper()
	want := eval.Evaluate(q, db)
	seen := map[string]bool{}
	e.Enumerate(func(tup []Value) bool {
		k := tuplekey.String(tup)
		if seen[k] {
			t.Fatalf("trial %d step %d query %s: duplicate tuple %v", trial, step, q, tup)
		}
		seen[k] = true
		if !want.Has(tup) {
			t.Fatalf("trial %d step %d query %s: spurious tuple %v", trial, step, q, tup)
		}
		return true
	})
	if len(seen) != want.Len() {
		t.Fatalf("trial %d step %d query %s: enumerated %d tuples, oracle %d",
			trial, step, q, len(seen), want.Len())
	}
}

// TestDeepPathQuery exercises long root paths (arity-5 atom) where the
// bottom-up propagation crosses many levels.
func TestDeepPathQuery(t *testing.T) {
	e := mustEngine(t, "Q(a,b) :- R(a,b,c,d,f), S(a,b), T(a)")
	db := dyndb.New()
	q := e.Query()
	rng := rand.New(rand.NewSource(4))
	stream := workload.RandomStream(rng, q.Schema(), 3, 300, 0.4)
	for _, u := range stream {
		if _, err := e.Apply(u); err != nil {
			t.Fatal(err)
		}
		db.Apply(u)
		if got, want := e.Count(), eval.Count(q, db); got != uint64(want) {
			t.Fatalf("after %s: count %d, oracle %d", u, got, want)
		}
	}
	if err := e.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestDrainToEmpty inserts a block and deletes everything, verifying the
// structure returns to pristine state (no leftover items).
func TestDrainToEmpty(t *testing.T) {
	e := mustEngine(t, "Q(x,y,z,yp,zp) :- R(x,y,z), R(x,y,zp), E(x,y), E(x,yp), S(x,y,z)")
	rng := rand.New(rand.NewSource(8))
	db := workload.RandomDatabase(rng, e.Query().Schema(), 4, 40)
	if err := e.Load(db); err != nil {
		t.Fatal(err)
	}
	for _, u := range db.Updates() {
		if _, err := e.Delete(u.Rel, u.Tuple...); err != nil {
			t.Fatal(err)
		}
	}
	if e.Count() != 0 || e.Answer() {
		t.Errorf("count=%d answer=%v after draining", e.Count(), e.Answer())
	}
	for _, c := range e.comps {
		for si := range c.shards {
			sh := &c.shards[si]
			for ni, m := range sh.index {
				if m.Len() != 0 {
					t.Errorf("node %s still has %d items after draining", c.nodes[ni].name, m.Len())
				}
			}
			if sh.startHead != nil || sh.startTail != nil {
				t.Error("start list not empty after draining")
			}
			if sh.cStart != 0 || sh.cfStart != 0 {
				t.Errorf("cStart=%d cfStart=%d after draining", sh.cStart, sh.cfStart)
			}
		}
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	e := mustEngine(t, "Q(x,u) :- S(x), U(u)")
	for i := Value(1); i <= 10; i++ {
		e.Insert("S", i)
		e.Insert("U", i+100)
	}
	n := 0
	e.Enumerate(func([]Value) bool {
		n++
		return n < 7
	})
	if n != 7 {
		t.Errorf("early stop after %d tuples, want 7", n)
	}
}
