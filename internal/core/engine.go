// Package core implements the paper's primary contribution: the dynamic
// data structure of Section 6 that maintains the result of a
// q-hierarchical conjunctive query under single-tuple updates with
//
//   - preprocessing time linear in the initial database,
//   - poly(ϕ) (constant data-complexity) update time,
//   - O(1) counting and Boolean answering, and
//   - constant-delay enumeration (Algorithm 1),
//
// as stated in Theorem 3.2.
//
// The structure follows Section 6.2 faithfully. For every q-tree node v
// and every assignment α to path[v) with constant a for v there may be an
// item [v, α, a], stored in a per-node hash map keyed by the path values
// (the "arrays A_v" of the paper, realised as tuplekey maps per the
// paper's footnote 2). Each item carries
//
//   - C^i_ψ for every ψ ∈ atoms(v) (field counts): the number of
//     expansions of the item's assignment to vars(ψ) satisfied by the
//     database — an item is present iff some C^i_ψ > 0 (invariant (a) of
//     Section 6.4);
//   - C^i (field weight), maintained by Lemma 6.3 as the product of the
//     rep-atom counts and the child list sums — an item is "fit" iff
//     C^i > 0, and the doubly linked child lists L^i_u contain exactly the
//     fit items;
//   - C̃^i (field fweight) for free nodes, maintained by Lemma 6.4, whose
//     root-list sum C̃_start is |ϕ(D)| for a connected query.
//
// Disconnected queries are handled as in the start of Section 6: one
// structure per connected component, with counts multiplied and
// enumeration as a product (nested loops) over the components.
package core

import (
	"fmt"

	"dyncq/internal/cq"
	"dyncq/internal/dyndb"
	"dyncq/internal/qtree"
	"dyncq/internal/tuplekey"
)

// ErrNotQHierarchical is returned by New for queries outside the class the
// engine supports. By Theorems 3.3–3.5 such queries have no efficient
// dynamic algorithm at all (conditional on OMv/OV); use the IVM baseline
// in internal/ivm if you need to maintain them regardless.
var ErrNotQHierarchical = qtree.ErrNotQHierarchical

// Value is a database constant.
type Value = dyndb.Value

// item is one entry [v, α, a] of the data structure (Section 6.2). Its
// key holds the constants assigned along path[v] (α followed by a), so
// len(key) == depth(v)+1.
type item struct {
	key    []Value
	parent *item

	// prev/next link the item into the doubly linked fit list of its
	// parent (L^{parent}_v) or the component's start list if v is the
	// root; inList tells whether the item is currently linked. Lists are
	// appended at the tail, so they run in "became fit" order; with a
	// sorted initial load this reproduces the paper's Figure 3 layout and
	// Table 1 enumeration order exactly.
	prev, next *item
	inList     bool

	// counts[s] is C^i_ψ for the tracked atom with slot s at this node.
	counts []uint64
	// weight is C^i; fweight is C̃^i (free nodes only).
	weight  uint64
	fweight uint64
	// childSum[c] is C^i_u = Σ_{i'∈L^i_u} C^{i'} for the c-th child u;
	// fchildSum[c] is the C̃ analogue for the c-th free child.
	childSum  []uint64
	fchildSum []uint64
	// childHead[c]/childTail[c] point to the first and last element of
	// L^i_u.
	childHead []*item
	childTail []*item
}

// cnode is a compiled q-tree node.
type cnode struct {
	name           string
	free           bool
	parent         int32 // -1 for the root
	depth          int32
	slotInParent   int32
	freeOrd        int32   // index among the free nodes in document order, -1 if quantified
	children       []int32 // free children first (document order)
	freeChildCount int32
	repSlots       []int32 // count slots of atoms represented at this node
	numTracked     int32   // number of atoms ψ with v ∈ vars(ψ)
}

// catom is a compiled atom: its root path in the q-tree, how to extract
// the path values from an update tuple, and where its C^i_ψ counters live.
type catom struct {
	rel         string
	arity       int
	pathNodes   []int32    // node index per depth, root..rep(ψ)
	extract     []int32    // tuple position holding the value of path var j
	eqChecks    [][2]int32 // tuple positions that must agree (repeated vars)
	slotAtDepth []int32    // counts slot of this atom at pathNodes[j]
}

// comp is the per-connected-component structure: compiled tree and atoms
// plus the dynamic state, split into shards by the root value (see
// compShard).
type comp struct {
	nodes     []cnode
	atoms     []catom
	freeCount int
	hasFree   bool
	// freeNodes lists the free nodes in document order; it is the node
	// sequence y_1,…,y_k of Algorithm 1 (the free subtree T' in
	// pre-order, since free nodes are root-connected and document order
	// keeps parents before children).
	freeNodes []int32

	// shards partitions the dynamic state by hash of the root value: an
	// item [v, α, a] lives in the shard of α's first (root) constant, and
	// all its descendants share that constant, so every parent/child
	// pointer and every fit list stays inside one shard. With a single
	// shard (the default) this is exactly the paper's layout; with more,
	// updates whose root values hash to different shards touch disjoint
	// state and can be applied by parallel workers (ApplyBatchParallel).
	shards []compShard
}

// compShard is one shard of a component's dynamic state: the per-node
// item indexes (the "arrays A_v", restricted to root values hashing
// here), this shard's slice of the start list, its contribution to
// C_start/C̃_start (summed across shards by Count/Answer), and the slab
// its items are allocated from (see slab.go).
type compShard struct {
	index     []*tuplekey.Map[*item] // per node: the "array A_v"
	startHead *item
	startTail *item
	cStart    uint64 // Σ C^i over fit root items of this shard
	cfStart   uint64 // Σ C̃^i over fit root items (root free only)
	slab      itemSlab
}

// totals sums C_start and C̃_start across the component's shards.
func (c *comp) totals() (cStart, cfStart uint64) {
	for si := range c.shards {
		cStart += c.shards[si].cStart
		cfStart += c.shards[si].cfStart
	}
	return cStart, cfStart
}

type atomRef struct {
	comp, atom int
}

// headLoc locates one head variable: its component, its position among
// the component's free nodes in document order (the enumeration-state
// index), and its depth (position in an item key).
type headLoc struct {
	comp    int
	freeOrd int32
	depth   int32
}

// Engine maintains ϕ(D) for one q-hierarchical query ϕ under updates.
// An Engine is not safe for concurrent use; wrap it in a
// pkg/dyncq.ConcurrentSession for a locked front door.
type Engine struct {
	query   *cq.Query
	db      *dyndb.Database
	comps   []*comp
	rels    map[string][]atomRef // relation → atoms over it
	schema  map[string]int
	heads   []headLoc
	freeIdx []int // component → index among free components, -1 if Boolean
	version uint64

	// shardCount is the number of compShards per component (a power of
	// two); shardMask is shardCount-1, zero for the unsharded default.
	shardCount int
	shardMask  uint64
	// extStore marks an engine bound to an externally owned shared store
	// (NewOnStore): the engine never mutates e.db itself — the owning
	// workspace applies updates to the store once and feeds the net delta
	// in through ApplySharedUpdate/ApplySharedDelta. The self-driving
	// entry points (Apply, ApplyBatch, ApplyBatchParallel, Load) refuse
	// to run in this mode, since they would mutate the shared store a
	// second time.
	extStore bool
	// maxDepth is the longest atom root path, the scratch buffer size.
	maxDepth int

	// scratch buffers for the update path (avoid per-update allocation).
	scratchVals  []Value
	scratchItems []*item
}

// New compiles the query and returns an unsharded engine representing
// the empty database — the paper's exact layout, with the canonical
// enumeration order. It fails with an error wrapping ErrNotQHierarchical
// if the query is not q-hierarchical, and with a validation error for
// malformed queries. Compilation is poly(ϕ): it never touches data.
func New(q *cq.Query) (*Engine, error) { return NewSharded(q, 1) }

// NewSharded compiles the query into an engine whose per-component
// dynamic state is split into the given number of shards (rounded up to
// a power of two) by root-value hash. Sharding is what makes
// ApplyBatchParallel able to run shard-disjoint update procedures on
// worker goroutines; its price is that the enumeration order interleaves
// per shard instead of following the single canonical list (still
// deterministic for a fixed shard count). shards < 1 is an error.
func NewSharded(q *cq.Query, shards int) (*Engine, error) {
	if shards < 1 {
		return nil, fmt.Errorf("core.NewSharded: shards %d < 1", shards)
	}
	pow := 1
	for pow < shards {
		pow *= 2
	}
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("core.New: %w", err)
	}
	e := &Engine{
		query: q,
		// The private database shares the engine's shard count, so the
		// parallel batch path can apply the store phase shard-disjoint
		// (dyndb.ApplyNetDelta) concurrently with the structure phase.
		db:         dyndb.NewSharded(pow),
		rels:       make(map[string][]atomRef),
		schema:     q.Schema(),
		shardCount: pow,
		shardMask:  uint64(pow - 1),
	}
	subs := q.Components()
	maxDepth := 0
	for ci, sub := range subs {
		tree, err := qtree.Build(sub)
		if err != nil {
			return nil, fmt.Errorf("core.New: %w", err)
		}
		c, err := compileComp(sub, tree, e.shardCount)
		if err != nil {
			return nil, fmt.Errorf("core.New: %w", err)
		}
		e.comps = append(e.comps, c)
		for ai, a := range c.atoms {
			e.rels[a.rel] = append(e.rels[a.rel], atomRef{ci, ai})
			if len(a.pathNodes) > maxDepth {
				maxDepth = len(a.pathNodes)
			}
		}
	}
	// Locate head variables for output assembly.
	for _, h := range q.Head {
		loc, ok := e.locate(h)
		if !ok {
			return nil, fmt.Errorf("core.New: head variable %s not found in any component", h)
		}
		e.heads = append(e.heads, loc)
	}
	e.freeIdx = make([]int, len(e.comps))
	nf := 0
	for ci, c := range e.comps {
		if c.hasFree {
			e.freeIdx[ci] = nf
			nf++
		} else {
			e.freeIdx[ci] = -1
		}
	}
	e.maxDepth = maxDepth
	e.scratchVals = make([]Value, maxDepth)
	e.scratchItems = make([]*item, maxDepth)
	return e, nil
}

// Shards returns the number of shards per component (1 for New).
func (e *Engine) Shards() int { return e.shardCount }

// shardOf maps a component-root value to its shard index. The value is
// diffused with a splitmix64-style finaliser so consecutive constants
// (the common case in generated workloads) spread across shards.
//
//dyncq:hot
func (e *Engine) shardOf(v Value) uint64 {
	if e.shardMask == 0 {
		return 0
	}
	z := uint64(v) + 0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	return z & e.shardMask
}

func (e *Engine) locate(v string) (headLoc, bool) {
	for ci, c := range e.comps {
		for ni := range c.nodes {
			if c.nodes[ni].name == v && c.nodes[ni].free {
				return headLoc{comp: ci, freeOrd: c.nodes[ni].freeOrd, depth: c.nodes[ni].depth}, true
			}
		}
	}
	return headLoc{}, false
}

// compileComp builds the static structures for one connected component.
func compileComp(sub *cq.Query, tree *qtree.Tree, shards int) (*comp, error) {
	n := len(tree.Nodes)
	c := &comp{
		nodes:     make([]cnode, n),
		freeCount: tree.FreeCount,
		hasFree:   tree.FreeCount > 0,
		shards:    make([]compShard, shards),
	}
	for i, tn := range tree.Nodes {
		nd := &c.nodes[i]
		nd.name = tn.Var
		nd.free = tn.Free
		nd.parent = int32(tn.Parent)
		nd.depth = int32(tn.Depth)
		for _, ch := range tn.Children {
			nd.children = append(nd.children, int32(ch))
			if tree.Nodes[ch].Free {
				nd.freeChildCount++
			}
		}
	}
	for si := range c.shards {
		c.shards[si].index = make([]*tuplekey.Map[*item], n)
		for i := 0; i < n; i++ {
			c.shards[si].index[i] = tuplekey.NewMap[*item](0)
		}
		c.shards[si].slab.initFree(n)
	}
	for i := range c.nodes {
		for sl, ch := range c.nodes[i].children {
			c.nodes[ch].slotInParent = int32(sl)
		}
	}
	for i := range c.nodes {
		if c.nodes[i].free {
			c.nodes[i].freeOrd = int32(len(c.freeNodes))
			c.freeNodes = append(c.freeNodes, int32(i))
		} else {
			c.nodes[i].freeOrd = -1
		}
	}
	nextSlot := make([]int32, n)
	for _, a := range sub.Atoms {
		ca := catom{rel: a.Rel, arity: len(a.Args)}
		// Representative node: the deepest variable of the atom. In a valid
		// q-tree the atom's variables are exactly path[rep].
		avs := a.Vars()
		rep := tree.VarNode[avs[0]]
		for _, v := range avs[1:] {
			if tree.Nodes[tree.VarNode[v]].Depth > tree.Nodes[rep].Depth {
				rep = tree.VarNode[v]
			}
		}
		path := tree.Path(rep)
		if len(path) != len(avs) {
			return nil, fmt.Errorf("atom %s: variables do not form a root path in the q-tree", a)
		}
		firstPos := make(map[string]int32, len(a.Args))
		for p, v := range a.Args {
			if _, ok := firstPos[v]; !ok {
				firstPos[v] = int32(p)
			} else {
				ca.eqChecks = append(ca.eqChecks, [2]int32{firstPos[v], int32(p)})
			}
		}
		for _, nodeIdx := range path {
			name := tree.Nodes[nodeIdx].Var
			pos, ok := firstPos[name]
			if !ok {
				return nil, fmt.Errorf("atom %s: path variable %s missing", a, name)
			}
			ca.pathNodes = append(ca.pathNodes, int32(nodeIdx))
			ca.extract = append(ca.extract, pos)
			ca.slotAtDepth = append(ca.slotAtDepth, nextSlot[nodeIdx])
			nextSlot[nodeIdx]++
		}
		repSlot := ca.slotAtDepth[len(ca.slotAtDepth)-1]
		c.nodes[rep].repSlots = append(c.nodes[rep].repSlots, repSlot)
		c.atoms = append(c.atoms, ca)
	}
	for i := range c.nodes {
		c.nodes[i].numTracked = nextSlot[i]
		if nextSlot[i] == 0 {
			return nil, fmt.Errorf("node %s is tracked by no atom", c.nodes[i].name)
		}
	}
	return c, nil
}

// arityErr is the uniform update-vs-query arity mismatch error.
func arityErr(rel string, want, got int) error {
	return fmt.Errorf("core: %s has arity %d in query, got tuple of length %d", rel, want, got)
}

// Query returns the compiled query.
func (e *Engine) Query() *cq.Query { return e.query }

// Cardinality returns |D| for the currently represented database.
func (e *Engine) Cardinality() int { return e.db.Cardinality() }

// ActiveDomainSize returns n = |adom(D)|.
func (e *Engine) ActiveDomainSize() int { return e.db.ActiveDomainSize() }

// DatabaseSize returns ||D||.
func (e *Engine) DatabaseSize() int { return e.db.Size() }

// Has reports whether the tuple is currently in the named relation.
func (e *Engine) Has(rel string, tuple ...Value) bool { return e.db.Has(rel, tuple...) }

// Insert applies "insert R(a1,…,ar)", reporting whether the database
// changed (false if the tuple was already present — set semantics).
func (e *Engine) Insert(rel string, tuple ...Value) (bool, error) {
	return e.Apply(dyndb.Insert(rel, tuple...))
}

// Delete applies "delete R(a1,…,ar)", reporting whether the database
// changed.
func (e *Engine) Delete(rel string, tuple ...Value) (bool, error) {
	return e.Apply(dyndb.Delete(rel, tuple...))
}

// Apply executes one update command in poly(ϕ) time (Section 6.4's update
// procedure). Updates to relations not mentioned in the query only change
// the stored database. Outstanding iterators are invalidated.
func (e *Engine) Apply(u dyndb.Update) (bool, error) {
	if e.extStore {
		return false, errSharedStore
	}
	if want, ok := e.schema[u.Rel]; ok && want != len(u.Tuple) {
		return false, arityErr(u.Rel, want, len(u.Tuple))
	}
	changed, err := e.db.Apply(u)
	if err != nil || !changed {
		return changed, err
	}
	e.version++
	insert := u.Op == dyndb.OpInsert
	for _, ref := range e.rels[u.Rel] {
		e.updateAtom(ref, u.Tuple, insert)
	}
	return true, nil
}

// ApplyAll executes a sequence of updates, stopping at the first error.
func (e *Engine) ApplyAll(updates []dyndb.Update) error {
	for _, u := range updates {
		if _, err := e.Apply(u); err != nil {
			return err
		}
	}
	return nil
}

// Load performs the preprocessing phase for an initial database D0 with
// reset-then-load semantics: after Load the engine represents exactly D0,
// regardless of any updates applied before — the uniform contract across
// all maintenance strategies (see pkg/dyncq.Session.Load). The build is
// the bulk path of batch.go: one linear counting pass over D0 followed by
// a single bottom-up weight pass, instead of |D0| full single-tuple
// update procedures (both are linear in |D0| per Section 6.4; the bulk
// path pays the bottom-up propagation once per item instead of once per
// tuple).
//
// The reset is unconditional — even drained-but-declared relations from
// before the Load are forgotten, so a relation outside the query schema
// cannot leave a stale arity registration behind. A failed Load (arity
// clash between D0 and the query schema) leaves the engine representing
// the EMPTY database, not the half-built one. Either way the version
// advances, so outstanding iterators are always invalidated.
func (e *Engine) Load(db *dyndb.Database) error {
	if e.extStore {
		return errSharedStore
	}
	e.reset()
	if err := e.loadBulk(db); err != nil {
		e.reset()
		e.version++
		return err
	}
	return nil
}

// reset discards all dynamic state (database, items, lists, counters),
// returning the engine to the empty-database representation. The version
// counter is preserved (loadBulk bumps it), keeping iterator invalidation
// monotonic.
func (e *Engine) reset() {
	e.db = dyndb.NewSharded(e.shardCount)
	e.clearStructure()
}

// clearStructure discards the view structure (items, lists, counters)
// without touching the database — the shared-store half of reset, where
// the store's lifecycle belongs to the workspace that owns it. Item
// slabs are freed wholesale: the GC retires a shard's items as whole
// chunks instead of tracing them individually.
func (e *Engine) clearStructure() {
	for _, c := range e.comps {
		for si := range c.shards {
			sh := &c.shards[si]
			for ni := range sh.index {
				sh.index[ni] = tuplekey.NewMap[*item](0)
			}
			sh.startHead, sh.startTail = nil, nil
			sh.cStart, sh.cfStart = 0, 0
			sh.slab.reset(len(c.nodes))
		}
	}
}

// updateAtom is the per-atom part of the Section 6.4 update procedure,
// run with the engine's own scratch buffers (the sequential path).
//
//dyncq:hot
func (e *Engine) updateAtom(ref atomRef, tuple []Value, insert bool) {
	c := e.comps[ref.comp]
	e.updateAtomScratch(c, &c.atoms[ref.atom], tuple, insert, e.scratchVals, e.scratchItems)
}

// updateAtomScratch is the per-atom update procedure proper: if the tuple
// matches the atom's repeated-variable pattern, walk the atom's root path
// top-down adjusting C^i_ψ (creating items on insert), then bottom-up
// recompute C^i and C̃^i by Lemmas 6.3/6.4, fix fit-list membership,
// propagate the sums, and drop items whose counters all reached zero.
// Every touched map, item and list belongs to the shard of the root value
// vals[0], so calls whose root values hash to different shards are
// mutually independent — the property ApplyBatchParallel exploits. The
// caller supplies the scratch buffers (parallel workers have their own).
//
//dyncq:hot
func (e *Engine) updateAtomScratch(c *comp, a *catom, tuple []Value, insert bool, scratchVals []Value, scratchItems []*item) {
	for _, eq := range a.eqChecks {
		if tuple[eq[0]] != tuple[eq[1]] {
			return // tuple does not match the atom's variable pattern
		}
	}
	d := len(a.pathNodes)
	vals := scratchVals[:d]
	items := scratchItems[:d]
	for j := 0; j < d; j++ {
		vals[j] = tuple[a.extract[j]]
	}
	sh := &c.shards[e.shardOf(vals[0])]

	// Top-down: fetch or create the items on the path, adjust C^i_ψ.
	for j := 0; j < d; j++ {
		nodeIdx := a.pathNodes[j]
		m := sh.index[nodeIdx]
		it, ok := m.Get(vals[: j+1 : j+1])
		if !ok {
			if !insert {
				panic(fmt.Sprintf("core: missing item for %s at node %s during delete (corrupted structure)",
					a.rel, c.nodes[nodeIdx].name))
			}
			var parent *item
			if j > 0 {
				parent = items[j-1]
			}
			it = sh.slab.alloc(&c.nodes[nodeIdx], nodeIdx, vals[:j+1], parent)
			m.Put(it.key, it)
		}
		items[j] = it
		if insert {
			it.counts[a.slotAtDepth[j]]++
		} else {
			it.counts[a.slotAtDepth[j]]--
		}
	}

	// Bottom-up: recompute weights, maintain lists and sums.
	for j := d - 1; j >= 0; j-- {
		nodeIdx := a.pathNodes[j]
		nd := &c.nodes[nodeIdx]
		it := items[j]
		oldW, oldF := it.weight, it.fweight

		// Lemma 6.3: C^i = Π_{ψ∈rep(v)} C^i_ψ · Π_{u∈N(v)} C^i_u
		// (rep-atom counts are 0/1 under set semantics).
		w := uint64(1)
		for _, s := range nd.repSlots {
			if it.counts[s] == 0 {
				w = 0
				break
			}
		}
		if w != 0 {
			for ci := range nd.children {
				w *= it.childSum[ci]
				if w == 0 {
					break
				}
			}
		}
		// Lemma 6.4: C̃^i = 0 if C^i = 0, else Π over free children of C̃^i_u.
		var f uint64
		if nd.free {
			if w != 0 {
				f = 1
				for ci := int32(0); ci < nd.freeChildCount; ci++ {
					f *= it.fchildSum[ci]
				}
			}
		}
		it.weight, it.fweight = w, f

		if j == 0 {
			sh.cStart = sh.cStart - oldW + w
			if nd.free {
				sh.cfStart = sh.cfStart - oldF + f
			}
		} else {
			p := items[j-1]
			sl := nd.slotInParent
			p.childSum[sl] = p.childSum[sl] - oldW + w
			if nd.free {
				p.fchildSum[sl] = p.fchildSum[sl] - oldF + f
			}
		}

		// Fit-list membership: L lists contain exactly the fit items.
		if w > 0 && !it.inList {
			link(sh, nd, it)
		} else if w == 0 && it.inList {
			unlink(sh, nd, it)
		}

		// Invariant (a): drop the item once no atom supports it.
		if !insert {
			all0 := true
			for _, cnt := range it.counts {
				if cnt != 0 {
					all0 = false
					break
				}
			}
			if all0 {
				sh.index[nodeIdx].Delete(it.key)
				sh.slab.recycle(nodeIdx, it)
			}
		}
	}
}

// listOf returns the head and tail pointers of the list it belongs to:
// the parent's child list for nd, or the shard's start list for root
// items.
func listOf(sh *compShard, nd *cnode, it *item) (head, tail **item) {
	if it.parent == nil {
		return &sh.startHead, &sh.startTail
	}
	return &it.parent.childHead[nd.slotInParent], &it.parent.childTail[nd.slotInParent]
}

// link appends it to the tail of its list.
//
//dyncq:hot
func link(sh *compShard, nd *cnode, it *item) {
	head, tail := listOf(sh, nd, it)
	it.next = nil
	it.prev = *tail
	if *tail != nil {
		(*tail).next = it
	} else {
		*head = it
	}
	*tail = it
	it.inList = true
}

// unlink removes it from its list.
//
//dyncq:hot
func unlink(sh *compShard, nd *cnode, it *item) {
	head, tail := listOf(sh, nd, it)
	if it.prev != nil {
		it.prev.next = it.next
	} else {
		*head = it.next
	}
	if it.next != nil {
		it.next.prev = it.prev
	} else {
		*tail = it.prev
	}
	it.prev, it.next = nil, nil
	it.inList = false
}

// Count returns |ϕ(D)| in constant time: the product over components of
// C̃_start (free components) and of the 0/1 emptiness indicator (Boolean
// components). For a Boolean query the count is 1 (the empty tuple) or 0.
//
// Counts are exact as long as |ϕ(D)| and every intermediate C value fit
// in uint64; with n = |adom(D)| they are bounded by n^k for a k-ary
// query, so e.g. any query with n·…·n ≤ 2^64 is safe. This mirrors the
// paper's O(log n)-word RAM arithmetic assumption.
func (e *Engine) Count() uint64 {
	total := uint64(1)
	for _, c := range e.comps {
		cStart, cfStart := c.totals()
		if c.hasFree {
			total *= cfStart
		} else if cStart == 0 {
			return 0
		}
		if total == 0 {
			return 0
		}
	}
	return total
}

// Answer reports whether ϕ(D) is nonempty, in constant time (the shard
// count is a configuration constant, not data).
func (e *Engine) Answer() bool {
	for _, c := range e.comps {
		if cStart, _ := c.totals(); cStart == 0 {
			return false
		}
	}
	return true
}

// checkInvariants verifies the data-structure invariants (a)–(d) of
// Section 6.4 by full recomputation. It is exported to the package tests
// through export_test.go and costs time linear in the structure.
func (e *Engine) checkInvariants() error {
	for ci, c := range e.comps {
		// Recompute weights bottom-up per item via direct definition is
		// involved; instead check local consistency: list sums match member
		// weights, weights match Lemma 6.3, membership matches fitness.
		var errOut error
		for si := range c.shards {
			sh := &c.shards[si]
			for ni := range c.nodes {
				nd := &c.nodes[ni]
				sh.index[ni].Range(func(key []Value, it *item) bool {
					// Shard assignment: every item hashes here by root value.
					if got := e.shardOf(key[0]); got != uint64(si) {
						errOut = fmt.Errorf("comp %d node %s item %v: stored in shard %d, hashes to %d", ci, nd.name, key, si, got)
						return false
					}
					// weight per Lemma 6.3
					w := uint64(1)
					for _, s := range nd.repSlots {
						if it.counts[s] == 0 {
							w = 0
						}
					}
					if w != 0 {
						for sl := range nd.children {
							w *= it.childSum[sl]
						}
					}
					if w != it.weight {
						errOut = fmt.Errorf("comp %d node %s item %v: weight %d, recomputed %d", ci, nd.name, key, it.weight, w)
						return false
					}
					if (it.weight > 0) != it.inList {
						errOut = fmt.Errorf("comp %d node %s item %v: fit=%v inList=%v", ci, nd.name, key, it.weight > 0, it.inList)
						return false
					}
					all0 := true
					for _, cnt := range it.counts {
						if cnt != 0 {
							all0 = false
						}
					}
					if all0 {
						errOut = fmt.Errorf("comp %d node %s item %v: present with all-zero counts", ci, nd.name, key)
						return false
					}
					// child list sums
					for sl, chIdx := range nd.children {
						var sum, fsum uint64
						for ch := it.childHead[sl]; ch != nil; ch = ch.next {
							sum += ch.weight
							fsum += ch.fweight
						}
						if sum != it.childSum[sl] {
							errOut = fmt.Errorf("comp %d node %s item %v child %s: childSum %d, actual %d",
								ci, nd.name, key, c.nodes[chIdx].name, it.childSum[sl], sum)
							return false
						}
						if int32(sl) < nd.freeChildCount && nd.free && fsum != it.fchildSum[sl] {
							errOut = fmt.Errorf("comp %d node %s item %v child %s: fchildSum %d, actual %d",
								ci, nd.name, key, c.nodes[chIdx].name, it.fchildSum[sl], fsum)
							return false
						}
					}
					return true
				})
				if errOut != nil {
					return errOut
				}
			}
			var sum, fsum uint64
			for it := sh.startHead; it != nil; it = it.next {
				sum += it.weight
				fsum += it.fweight
			}
			if sum != sh.cStart {
				return fmt.Errorf("comp %d shard %d: cStart %d, actual %d", ci, si, sh.cStart, sum)
			}
			if c.hasFree && fsum != sh.cfStart {
				return fmt.Errorf("comp %d shard %d: cfStart %d, actual %d", ci, si, sh.cfStart, fsum)
			}
		}
	}
	return nil
}
