// Package core implements the paper's primary contribution: the dynamic
// data structure of Section 6 that maintains the result of a
// q-hierarchical conjunctive query under single-tuple updates with
//
//   - preprocessing time linear in the initial database,
//   - poly(ϕ) (constant data-complexity) update time,
//   - O(1) counting and Boolean answering, and
//   - constant-delay enumeration (Algorithm 1),
//
// as stated in Theorem 3.2.
//
// The structure follows Section 6.2 faithfully. For every q-tree node v
// and every assignment α to path[v) with constant a for v there may be an
// item [v, α, a], stored in a per-node hash map keyed by the path values
// (the "arrays A_v" of the paper, realised as tuplekey maps per the
// paper's footnote 2). Each item carries
//
//   - C^i_ψ for every ψ ∈ atoms(v) (field counts): the number of
//     expansions of the item's assignment to vars(ψ) satisfied by the
//     database — an item is present iff some C^i_ψ > 0 (invariant (a) of
//     Section 6.4);
//   - C^i (field weight), maintained by Lemma 6.3 as the product of the
//     rep-atom counts and the child list sums — an item is "fit" iff
//     C^i > 0, and the doubly linked child lists L^i_u contain exactly the
//     fit items;
//   - C̃^i (field fweight) for free nodes, maintained by Lemma 6.4, whose
//     root-list sum C̃_start is |ϕ(D)| for a connected query.
//
// Disconnected queries are handled as in the start of Section 6: one
// structure per connected component, with counts multiplied and
// enumeration as a product (nested loops) over the components.
package core

import (
	"fmt"

	"dyncq/internal/cq"
	"dyncq/internal/dyndb"
	"dyncq/internal/qtree"
	"dyncq/internal/tuplekey"
)

// ErrNotQHierarchical is returned by New for queries outside the class the
// engine supports. By Theorems 3.3–3.5 such queries have no efficient
// dynamic algorithm at all (conditional on OMv/OV); use the IVM baseline
// in internal/ivm if you need to maintain them regardless.
var ErrNotQHierarchical = qtree.ErrNotQHierarchical

// Value is a database constant.
type Value = dyndb.Value

// item is one entry [v, α, a] of the data structure (Section 6.2). Its
// key holds the constants assigned along path[v] (α followed by a), so
// len(key) == depth(v)+1.
type item struct {
	key    []Value
	parent *item

	// prev/next link the item into the doubly linked fit list of its
	// parent (L^{parent}_v) or the component's start list if v is the
	// root; inList tells whether the item is currently linked. Lists are
	// appended at the tail, so they run in "became fit" order; with a
	// sorted initial load this reproduces the paper's Figure 3 layout and
	// Table 1 enumeration order exactly.
	prev, next *item
	inList     bool

	// counts[s] is C^i_ψ for the tracked atom with slot s at this node.
	counts []uint64
	// weight is C^i; fweight is C̃^i (free nodes only).
	weight  uint64
	fweight uint64
	// childSum[c] is C^i_u = Σ_{i'∈L^i_u} C^{i'} for the c-th child u;
	// fchildSum[c] is the C̃ analogue for the c-th free child.
	childSum  []uint64
	fchildSum []uint64
	// childHead[c]/childTail[c] point to the first and last element of
	// L^i_u.
	childHead []*item
	childTail []*item
}

// cnode is a compiled q-tree node.
type cnode struct {
	name           string
	free           bool
	parent         int32 // -1 for the root
	depth          int32
	slotInParent   int32
	freeOrd        int32   // index among the free nodes in document order, -1 if quantified
	children       []int32 // free children first (document order)
	freeChildCount int32
	repSlots       []int32 // count slots of atoms represented at this node
	numTracked     int32   // number of atoms ψ with v ∈ vars(ψ)
}

// catom is a compiled atom: its root path in the q-tree, how to extract
// the path values from an update tuple, and where its C^i_ψ counters live.
type catom struct {
	rel         string
	arity       int
	pathNodes   []int32    // node index per depth, root..rep(ψ)
	extract     []int32    // tuple position holding the value of path var j
	eqChecks    [][2]int32 // tuple positions that must agree (repeated vars)
	slotAtDepth []int32    // counts slot of this atom at pathNodes[j]
}

// comp is the per-connected-component structure: compiled tree and atoms
// plus the dynamic state (item indexes, start list, C_start, C̃_start).
type comp struct {
	nodes     []cnode
	atoms     []catom
	freeCount int
	hasFree   bool
	// freeNodes lists the free nodes in document order; it is the node
	// sequence y_1,…,y_k of Algorithm 1 (the free subtree T' in
	// pre-order, since free nodes are root-connected and document order
	// keeps parents before children).
	freeNodes []int32

	index     []*tuplekey.Map[*item] // per node: the "array A_v"
	startHead *item
	startTail *item
	cStart    uint64 // Σ C^i over fit root items
	cfStart   uint64 // Σ C̃^i over fit root items (root free only)
}

type atomRef struct {
	comp, atom int
}

// headLoc locates one head variable: its component, its position among
// the component's free nodes in document order (the enumeration-state
// index), and its depth (position in an item key).
type headLoc struct {
	comp    int
	freeOrd int32
	depth   int32
}

// Engine maintains ϕ(D) for one q-hierarchical query ϕ under updates.
// An Engine is not safe for concurrent use.
type Engine struct {
	query   *cq.Query
	db      *dyndb.Database
	comps   []*comp
	rels    map[string][]atomRef // relation → atoms over it
	schema  map[string]int
	heads   []headLoc
	freeIdx []int // component → index among free components, -1 if Boolean
	version uint64

	// scratch buffers for the update path (avoid per-update allocation).
	scratchVals  []Value
	scratchItems []*item
}

// New compiles the query and returns an engine representing the empty
// database. It fails with an error wrapping ErrNotQHierarchical if the
// query is not q-hierarchical, and with a validation error for malformed
// queries. Compilation is poly(ϕ): it never touches data.
func New(q *cq.Query) (*Engine, error) {
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("core.New: %w", err)
	}
	e := &Engine{
		query:  q,
		db:     dyndb.New(),
		rels:   make(map[string][]atomRef),
		schema: q.Schema(),
	}
	subs := q.Components()
	maxDepth := 0
	for ci, sub := range subs {
		tree, err := qtree.Build(sub)
		if err != nil {
			return nil, fmt.Errorf("core.New: %w", err)
		}
		c, err := compileComp(sub, tree)
		if err != nil {
			return nil, fmt.Errorf("core.New: %w", err)
		}
		e.comps = append(e.comps, c)
		for ai, a := range c.atoms {
			e.rels[a.rel] = append(e.rels[a.rel], atomRef{ci, ai})
			if len(a.pathNodes) > maxDepth {
				maxDepth = len(a.pathNodes)
			}
		}
	}
	// Locate head variables for output assembly.
	for _, h := range q.Head {
		loc, ok := e.locate(h)
		if !ok {
			return nil, fmt.Errorf("core.New: head variable %s not found in any component", h)
		}
		e.heads = append(e.heads, loc)
	}
	e.freeIdx = make([]int, len(e.comps))
	nf := 0
	for ci, c := range e.comps {
		if c.hasFree {
			e.freeIdx[ci] = nf
			nf++
		} else {
			e.freeIdx[ci] = -1
		}
	}
	e.scratchVals = make([]Value, maxDepth)
	e.scratchItems = make([]*item, maxDepth)
	return e, nil
}

func (e *Engine) locate(v string) (headLoc, bool) {
	for ci, c := range e.comps {
		for ni := range c.nodes {
			if c.nodes[ni].name == v && c.nodes[ni].free {
				return headLoc{comp: ci, freeOrd: c.nodes[ni].freeOrd, depth: c.nodes[ni].depth}, true
			}
		}
	}
	return headLoc{}, false
}

// compileComp builds the static structures for one connected component.
func compileComp(sub *cq.Query, tree *qtree.Tree) (*comp, error) {
	n := len(tree.Nodes)
	c := &comp{
		nodes:     make([]cnode, n),
		freeCount: tree.FreeCount,
		hasFree:   tree.FreeCount > 0,
		index:     make([]*tuplekey.Map[*item], n),
	}
	for i, tn := range tree.Nodes {
		nd := &c.nodes[i]
		nd.name = tn.Var
		nd.free = tn.Free
		nd.parent = int32(tn.Parent)
		nd.depth = int32(tn.Depth)
		for _, ch := range tn.Children {
			nd.children = append(nd.children, int32(ch))
			if tree.Nodes[ch].Free {
				nd.freeChildCount++
			}
		}
		c.index[i] = tuplekey.NewMap[*item](0)
	}
	for i := range c.nodes {
		for sl, ch := range c.nodes[i].children {
			c.nodes[ch].slotInParent = int32(sl)
		}
	}
	for i := range c.nodes {
		if c.nodes[i].free {
			c.nodes[i].freeOrd = int32(len(c.freeNodes))
			c.freeNodes = append(c.freeNodes, int32(i))
		} else {
			c.nodes[i].freeOrd = -1
		}
	}
	nextSlot := make([]int32, n)
	for _, a := range sub.Atoms {
		ca := catom{rel: a.Rel, arity: len(a.Args)}
		// Representative node: the deepest variable of the atom. In a valid
		// q-tree the atom's variables are exactly path[rep].
		avs := a.Vars()
		rep := tree.VarNode[avs[0]]
		for _, v := range avs[1:] {
			if tree.Nodes[tree.VarNode[v]].Depth > tree.Nodes[rep].Depth {
				rep = tree.VarNode[v]
			}
		}
		path := tree.Path(rep)
		if len(path) != len(avs) {
			return nil, fmt.Errorf("atom %s: variables do not form a root path in the q-tree", a)
		}
		firstPos := make(map[string]int32, len(a.Args))
		for p, v := range a.Args {
			if _, ok := firstPos[v]; !ok {
				firstPos[v] = int32(p)
			} else {
				ca.eqChecks = append(ca.eqChecks, [2]int32{firstPos[v], int32(p)})
			}
		}
		for _, nodeIdx := range path {
			name := tree.Nodes[nodeIdx].Var
			pos, ok := firstPos[name]
			if !ok {
				return nil, fmt.Errorf("atom %s: path variable %s missing", a, name)
			}
			ca.pathNodes = append(ca.pathNodes, int32(nodeIdx))
			ca.extract = append(ca.extract, pos)
			ca.slotAtDepth = append(ca.slotAtDepth, nextSlot[nodeIdx])
			nextSlot[nodeIdx]++
		}
		repSlot := ca.slotAtDepth[len(ca.slotAtDepth)-1]
		c.nodes[rep].repSlots = append(c.nodes[rep].repSlots, repSlot)
		c.atoms = append(c.atoms, ca)
	}
	for i := range c.nodes {
		c.nodes[i].numTracked = nextSlot[i]
		if nextSlot[i] == 0 {
			return nil, fmt.Errorf("node %s is tracked by no atom", c.nodes[i].name)
		}
	}
	return c, nil
}

// Query returns the compiled query.
func (e *Engine) Query() *cq.Query { return e.query }

// Cardinality returns |D| for the currently represented database.
func (e *Engine) Cardinality() int { return e.db.Cardinality() }

// ActiveDomainSize returns n = |adom(D)|.
func (e *Engine) ActiveDomainSize() int { return e.db.ActiveDomainSize() }

// DatabaseSize returns ||D||.
func (e *Engine) DatabaseSize() int { return e.db.Size() }

// Has reports whether the tuple is currently in the named relation.
func (e *Engine) Has(rel string, tuple ...Value) bool { return e.db.Has(rel, tuple...) }

// Insert applies "insert R(a1,…,ar)", reporting whether the database
// changed (false if the tuple was already present — set semantics).
func (e *Engine) Insert(rel string, tuple ...Value) (bool, error) {
	return e.Apply(dyndb.Insert(rel, tuple...))
}

// Delete applies "delete R(a1,…,ar)", reporting whether the database
// changed.
func (e *Engine) Delete(rel string, tuple ...Value) (bool, error) {
	return e.Apply(dyndb.Delete(rel, tuple...))
}

// Apply executes one update command in poly(ϕ) time (Section 6.4's update
// procedure). Updates to relations not mentioned in the query only change
// the stored database. Outstanding iterators are invalidated.
func (e *Engine) Apply(u dyndb.Update) (bool, error) {
	if want, ok := e.schema[u.Rel]; ok && want != len(u.Tuple) {
		return false, fmt.Errorf("core: %s has arity %d in query, got tuple of length %d", u.Rel, want, len(u.Tuple))
	}
	changed, err := e.db.Apply(u)
	if err != nil || !changed {
		return changed, err
	}
	e.version++
	insert := u.Op == dyndb.OpInsert
	for _, ref := range e.rels[u.Rel] {
		e.updateAtom(ref, u.Tuple, insert)
	}
	return true, nil
}

// ApplyAll executes a sequence of updates, stopping at the first error.
func (e *Engine) ApplyAll(updates []dyndb.Update) error {
	for _, u := range updates {
		if _, err := e.Apply(u); err != nil {
			return err
		}
	}
	return nil
}

// Load performs the preprocessing phase for an initial database D0. On an
// empty engine it runs the bulk build of batch.go: one linear counting
// pass over D0 followed by a single bottom-up weight pass, instead of
// |D0| full single-tuple update procedures. A non-empty engine falls back
// to replaying D0's tuples as insertions. Both paths are linear in |D0|
// (Section 6.4); the bulk path just pays the bottom-up propagation once
// per item instead of once per tuple.
func (e *Engine) Load(db *dyndb.Database) error {
	if e.db.Cardinality() != 0 {
		return e.ApplyAll(db.Updates())
	}
	return e.loadBulk(db)
}

// updateAtom is the per-atom part of the Section 6.4 update procedure: if
// the tuple matches the atom's repeated-variable pattern, walk the atom's
// root path top-down adjusting C^i_ψ (creating items on insert), then
// bottom-up recompute C^i and C̃^i by Lemmas 6.3/6.4, fix fit-list
// membership, propagate the sums, and drop items whose counters all
// reached zero.
func (e *Engine) updateAtom(ref atomRef, tuple []Value, insert bool) {
	c := e.comps[ref.comp]
	a := &c.atoms[ref.atom]
	for _, eq := range a.eqChecks {
		if tuple[eq[0]] != tuple[eq[1]] {
			return // tuple does not match the atom's variable pattern
		}
	}
	d := len(a.pathNodes)
	vals := e.scratchVals[:d]
	items := e.scratchItems[:d]
	for j := 0; j < d; j++ {
		vals[j] = tuple[a.extract[j]]
	}

	// Top-down: fetch or create the items on the path, adjust C^i_ψ.
	for j := 0; j < d; j++ {
		nodeIdx := a.pathNodes[j]
		m := c.index[nodeIdx]
		it, ok := m.Get(vals[: j+1 : j+1])
		if !ok {
			if !insert {
				panic(fmt.Sprintf("core: missing item for %s at node %s during delete (corrupted structure)",
					a.rel, c.nodes[nodeIdx].name))
			}
			var parent *item
			if j > 0 {
				parent = items[j-1]
			}
			it = newItem(&c.nodes[nodeIdx], vals[:j+1], parent)
			m.Put(it.key, it)
		}
		items[j] = it
		if insert {
			it.counts[a.slotAtDepth[j]]++
		} else {
			it.counts[a.slotAtDepth[j]]--
		}
	}

	// Bottom-up: recompute weights, maintain lists and sums.
	for j := d - 1; j >= 0; j-- {
		nodeIdx := a.pathNodes[j]
		nd := &c.nodes[nodeIdx]
		it := items[j]
		oldW, oldF := it.weight, it.fweight

		// Lemma 6.3: C^i = Π_{ψ∈rep(v)} C^i_ψ · Π_{u∈N(v)} C^i_u
		// (rep-atom counts are 0/1 under set semantics).
		w := uint64(1)
		for _, s := range nd.repSlots {
			if it.counts[s] == 0 {
				w = 0
				break
			}
		}
		if w != 0 {
			for ci := range nd.children {
				w *= it.childSum[ci]
				if w == 0 {
					break
				}
			}
		}
		// Lemma 6.4: C̃^i = 0 if C^i = 0, else Π over free children of C̃^i_u.
		var f uint64
		if nd.free {
			if w != 0 {
				f = 1
				for ci := int32(0); ci < nd.freeChildCount; ci++ {
					f *= it.fchildSum[ci]
				}
			}
		}
		it.weight, it.fweight = w, f

		if j == 0 {
			c.cStart = c.cStart - oldW + w
			if nd.free {
				c.cfStart = c.cfStart - oldF + f
			}
		} else {
			p := items[j-1]
			sl := nd.slotInParent
			p.childSum[sl] = p.childSum[sl] - oldW + w
			if nd.free {
				p.fchildSum[sl] = p.fchildSum[sl] - oldF + f
			}
		}

		// Fit-list membership: L lists contain exactly the fit items.
		if w > 0 && !it.inList {
			e.link(c, nd, it)
		} else if w == 0 && it.inList {
			e.unlink(c, nd, it)
		}

		// Invariant (a): drop the item once no atom supports it.
		if !insert {
			all0 := true
			for _, cnt := range it.counts {
				if cnt != 0 {
					all0 = false
					break
				}
			}
			if all0 {
				c.index[nodeIdx].Delete(it.key)
			}
		}
	}
}

// newItem allocates a fresh zero-count item for node nd with the given
// path values (copied) and parent.
func newItem(nd *cnode, vals []Value, parent *item) *item {
	it := &item{
		key:       append([]Value(nil), vals...),
		parent:    parent,
		counts:    make([]uint64, nd.numTracked),
		childSum:  make([]uint64, len(nd.children)),
		childHead: make([]*item, len(nd.children)),
		childTail: make([]*item, len(nd.children)),
	}
	if nd.free && nd.freeChildCount > 0 {
		it.fchildSum = make([]uint64, nd.freeChildCount)
	}
	return it
}

// listOf returns the head and tail pointers of the list it belongs to:
// the parent's child list for nd, or the component's start list for root
// items.
func listOf(c *comp, nd *cnode, it *item) (head, tail **item) {
	if it.parent == nil {
		return &c.startHead, &c.startTail
	}
	return &it.parent.childHead[nd.slotInParent], &it.parent.childTail[nd.slotInParent]
}

// link appends it to the tail of its list.
func (e *Engine) link(c *comp, nd *cnode, it *item) {
	head, tail := listOf(c, nd, it)
	it.next = nil
	it.prev = *tail
	if *tail != nil {
		(*tail).next = it
	} else {
		*head = it
	}
	*tail = it
	it.inList = true
}

// unlink removes it from its list.
func (e *Engine) unlink(c *comp, nd *cnode, it *item) {
	head, tail := listOf(c, nd, it)
	if it.prev != nil {
		it.prev.next = it.next
	} else {
		*head = it.next
	}
	if it.next != nil {
		it.next.prev = it.prev
	} else {
		*tail = it.prev
	}
	it.prev, it.next = nil, nil
	it.inList = false
}

// Count returns |ϕ(D)| in constant time: the product over components of
// C̃_start (free components) and of the 0/1 emptiness indicator (Boolean
// components). For a Boolean query the count is 1 (the empty tuple) or 0.
//
// Counts are exact as long as |ϕ(D)| and every intermediate C value fit
// in uint64; with n = |adom(D)| they are bounded by n^k for a k-ary
// query, so e.g. any query with n·…·n ≤ 2^64 is safe. This mirrors the
// paper's O(log n)-word RAM arithmetic assumption.
func (e *Engine) Count() uint64 {
	total := uint64(1)
	for _, c := range e.comps {
		if c.hasFree {
			total *= c.cfStart
		} else if c.cStart == 0 {
			return 0
		}
		if total == 0 {
			return 0
		}
	}
	return total
}

// Answer reports whether ϕ(D) is nonempty, in constant time.
func (e *Engine) Answer() bool {
	for _, c := range e.comps {
		if c.cStart == 0 {
			return false
		}
	}
	return true
}

// checkInvariants verifies the data-structure invariants (a)–(d) of
// Section 6.4 by full recomputation. It is exported to the package tests
// through export_test.go and costs time linear in the structure.
func (e *Engine) checkInvariants() error {
	for ci, c := range e.comps {
		// Recompute weights bottom-up per item via direct definition is
		// involved; instead check local consistency: list sums match member
		// weights, weights match Lemma 6.3, membership matches fitness.
		var errOut error
		for ni := range c.nodes {
			nd := &c.nodes[ni]
			c.index[ni].Range(func(key []Value, it *item) bool {
				// weight per Lemma 6.3
				w := uint64(1)
				for _, s := range nd.repSlots {
					if it.counts[s] == 0 {
						w = 0
					}
				}
				if w != 0 {
					for sl := range nd.children {
						w *= it.childSum[sl]
					}
				}
				if w != it.weight {
					errOut = fmt.Errorf("comp %d node %s item %v: weight %d, recomputed %d", ci, nd.name, key, it.weight, w)
					return false
				}
				if (it.weight > 0) != it.inList {
					errOut = fmt.Errorf("comp %d node %s item %v: fit=%v inList=%v", ci, nd.name, key, it.weight > 0, it.inList)
					return false
				}
				all0 := true
				for _, cnt := range it.counts {
					if cnt != 0 {
						all0 = false
					}
				}
				if all0 {
					errOut = fmt.Errorf("comp %d node %s item %v: present with all-zero counts", ci, nd.name, key)
					return false
				}
				// child list sums
				for sl, chIdx := range nd.children {
					var sum, fsum uint64
					for ch := it.childHead[sl]; ch != nil; ch = ch.next {
						sum += ch.weight
						fsum += ch.fweight
					}
					if sum != it.childSum[sl] {
						errOut = fmt.Errorf("comp %d node %s item %v child %s: childSum %d, actual %d",
							ci, nd.name, key, c.nodes[chIdx].name, it.childSum[sl], sum)
						return false
					}
					if int32(sl) < nd.freeChildCount && nd.free && fsum != it.fchildSum[sl] {
						errOut = fmt.Errorf("comp %d node %s item %v child %s: fchildSum %d, actual %d",
							ci, nd.name, key, c.nodes[chIdx].name, it.fchildSum[sl], fsum)
						return false
					}
				}
				return true
			})
			if errOut != nil {
				return errOut
			}
		}
		var sum, fsum uint64
		for it := c.startHead; it != nil; it = it.next {
			sum += it.weight
			fsum += it.fweight
		}
		if sum != c.cStart {
			return fmt.Errorf("comp %d: cStart %d, actual %d", ci, c.cStart, sum)
		}
		if c.hasFree && fsum != c.cfStart {
			return fmt.Errorf("comp %d: cfStart %d, actual %d", ci, c.cfStart, fsum)
		}
	}
	return nil
}
