package core

import "fmt"

// This file implements constant-delay enumeration (Section 6.3,
// Algorithm 1). Per connected component, the enumeration state is one
// item per free q-tree node, in document order; a step advances the
// deepest (document-order-maximal) item that is not last in its fit list
// and re-fills the states after it with the first elements of their
// lists. Across components the result is the cross product
// ϕ(D) = ϕ1(D) × … × ϕj(D), enumerated as nested loops.
//
// Every step costs O(k) for a k-ary query: the delay is independent of
// the database, as Theorem 3.2(a) requires.

// compIter enumerates the result tuples of one component. The root state
// walks the shards' start lists in shard order (one list, the canonical
// order, on an unsharded engine); all deeper states follow child lists,
// which never cross shards.
type compIter struct {
	c         *comp
	cur       []*item // per free node (document order)
	rootShard int     // shard whose start list cur[0] currently walks
	done      bool
}

func newCompIter(c *comp) *compIter {
	return &compIter{c: c, cur: make([]*item, len(c.freeNodes))}
}

// reset positions the iterator on the first result tuple (Algorithm 1,
// lines 4–9). It reports false if the component's result is empty.
func (ci *compIter) reset() bool {
	for si := range ci.c.shards {
		if head := ci.c.shards[si].startHead; head != nil {
			ci.done = false
			ci.rootShard = si
			ci.cur[0] = head
			ci.fill(1)
			return true
		}
	}
	ci.done = true
	return false
}

// fill sets states from (inclusive) onward to the first elements of
// their lists (the Set function of Algorithm 1). Free parents precede
// their free children in document order, so cur[parent] is valid when
// cur[child] is filled; the parent being fit guarantees every child list
// is nonempty.
func (ci *compIter) fill(from int) {
	for mu := from; mu < len(ci.c.freeNodes); mu++ {
		nd := &ci.c.nodes[ci.c.freeNodes[mu]]
		parent := ci.cur[ci.c.nodes[nd.parent].freeOrd]
		head := parent.childHead[nd.slotInParent]
		if head == nil {
			panic(fmt.Sprintf("core: fit item has empty %s-list (corrupted structure)", nd.name))
		}
		ci.cur[mu] = head
	}
}

// next advances to the next result tuple (the visit procedure), reporting
// false at end of enumeration.
func (ci *compIter) next() bool {
	if ci.done {
		return false
	}
	for mu := len(ci.c.freeNodes) - 1; mu >= 1; mu-- {
		if ci.cur[mu].next != nil {
			ci.cur[mu] = ci.cur[mu].next
			ci.fill(mu + 1)
			return true
		}
	}
	// Advance the root state: within its shard's start list first, then on
	// to the next shard with a nonempty list.
	if nxt := ci.cur[0].next; nxt != nil {
		ci.cur[0] = nxt
		ci.fill(1)
		return true
	}
	for si := ci.rootShard + 1; si < len(ci.c.shards); si++ {
		if head := ci.c.shards[si].startHead; head != nil {
			ci.rootShard = si
			ci.cur[0] = head
			ci.fill(1)
			return true
		}
	}
	ci.done = true
	return false
}

// Iterator enumerates ϕ(D) without repetition. It is created by
// Engine.Iterator and invalidated by any subsequent update: calling Next
// on a stale iterator panics. (The paper's "constant-time restart" after
// an update is simply creating a fresh iterator.)
type Iterator struct {
	e       *Engine
	version uint64
	iters   []*compIter // one per component with free variables
	out     []Value
	state   iterState
}

type iterState uint8

const (
	iterFresh iterState = iota
	iterActive
	iterDone
)

// Iterator returns a new enumeration of the current query result.
func (e *Engine) Iterator() *Iterator {
	it := &Iterator{
		e:       e,
		version: e.version,
		out:     make([]Value, len(e.heads)),
	}
	for _, c := range e.comps {
		if c.hasFree {
			it.iters = append(it.iters, newCompIter(c))
		}
	}
	return it
}

// Next returns the next result tuple, or ok=false after the last tuple
// (the paper's EOE message). The returned slice is reused by subsequent
// calls; copy it if it must survive. Next panics if the engine has been
// updated since the iterator was created.
func (it *Iterator) Next() (tuple []Value, ok bool) {
	if it.version != it.e.version {
		panic("core: iterator used after update; restart enumeration with Engine.Iterator")
	}
	switch it.state {
	case iterDone:
		return nil, false
	case iterFresh:
		it.state = iterActive
		// Boolean components gate the whole product.
		for _, c := range it.e.comps {
			if cStart, _ := c.totals(); cStart == 0 {
				it.state = iterDone
				return nil, false
			}
		}
		for _, ci := range it.iters {
			if !ci.reset() {
				it.state = iterDone
				return nil, false
			}
		}
		return it.assemble(), true
	default:
		// Odometer over component iterators: advance the last, carrying
		// leftward; each carry resets the component to its first tuple.
		for i := len(it.iters) - 1; i >= 0; i-- {
			if it.iters[i].next() {
				return it.assemble(), true
			}
			it.iters[i].reset()
		}
		it.state = iterDone
		return nil, false
	}
}

// assemble builds the output tuple from the per-component states: head
// variable i lives at component heads[i].comp, free-node position
// heads[i].freeOrd, and its value is that item's own constant (position
// depth in the key).
func (it *Iterator) assemble() []Value {
	for i, loc := range it.e.heads {
		ci := it.compIterFor(loc.comp)
		item := ci.cur[loc.freeOrd]
		it.out[i] = item.key[loc.depth]
	}
	return it.out
}

func (it *Iterator) compIterFor(comp int) *compIter {
	return it.iters[it.e.freeIdx[comp]]
}

// Enumerate calls yield for every tuple of ϕ(D), in the fixed enumeration
// order of Algorithm 1, until yield returns false. The slice passed to
// yield follows the uniform contract of pkg/dyncq.Session.Enumerate: it
// is owned by the callee and reused between calls (this is what keeps the
// delay allocation-free) — copy it to retain it. For a Boolean query with
// ϕ(D) = yes, yield is called once with an empty tuple.
func (e *Engine) Enumerate(yield func(tuple []Value) bool) {
	it := e.Iterator()
	for t, ok := it.Next(); ok; t, ok = it.Next() {
		if !yield(t) {
			return
		}
	}
}

// Tuples returns the full query result as freshly allocated tuples —
// convenient for tests and small results; for large results prefer
// Iterator or Enumerate.
func (e *Engine) Tuples() [][]Value {
	var out [][]Value
	e.Enumerate(func(t []Value) bool {
		out = append(out, append([]Value(nil), t...))
		return true
	})
	return out
}
