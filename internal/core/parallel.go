package core

import (
	"sync"
	"sync/atomic"

	"dyncq/internal/dyndb"
)

// This file implements the parallel batch pipeline over the sharded
// engine. A coalesced batch decomposes into per-atom operations; every
// operation touches only the items under one component root value, so
// grouping operations into (component, shard-of-root-value) buckets makes
// the buckets mutually independent: worker goroutines drain whole buckets
// concurrently without any locking, and within a bucket operations keep
// their batch order, so the final structure — counters, lists, list order
// and therefore enumeration order — is identical no matter how many
// workers ran or how they were scheduled.

// bucketOp is one deferred per-atom update procedure.
type bucketOp struct {
	c      *comp
	a      *catom
	tuple  []Value
	insert bool
}

// ApplyBatchParallel executes a batch like ApplyBatch but runs the
// per-atom update procedures on up to workers goroutines, sharded by
// component root value, while the database phase applies the same net
// delta shard-disjoint on the store's own shards (dyndb.ApplyNetDelta)
// CONCURRENTLY with the structure phase — the update procedures never
// read the stored database, so the formerly sequential db phase now
// overlaps with per-shard structure work instead of serialising in
// front of it. The observable result (database, counters, lists,
// enumeration order, applied count) is identical to ApplyBatch on an
// engine with the same shard count. On an unsharded engine, with workers
// <= 1, or when the batch yields at most one nonempty bucket, it falls
// back to the sequential path. Validation is atomic, exactly as in
// ApplyBatch. The engine version advances at most once per batch. Like
// every Engine method it must not run concurrently with other engine
// use — it parallelises the inside of one batch; callers wanting
// concurrent batches and readers use pkg/dyncq.ConcurrentSession, which
// serialises commits behind a lock.
func (e *Engine) ApplyBatchParallel(updates []dyndb.Update, workers int) (applied int, err error) {
	if e.extStore {
		return 0, errSharedStore
	}
	if workers <= 1 || e.shardCount == 1 || len(e.comps) == 0 {
		return e.ApplyBatch(updates)
	}
	survivors, err := e.netDelta(updates)
	if err != nil || len(survivors) == 0 {
		return 0, err
	}
	e.version++
	// Database phase on its own goroutine, overlapping the structure
	// phase below. The worker budget is split between the two phases so
	// the overlap never runs ~2×workers goroutines: the db phase (cheap
	// map writes) gets at most half, the structure phase (the per-atom
	// procedures, the expensive side) the rest. Small deltas keep the db
	// phase sequential anyway (dyndb.minParallelDelta), leaving the full
	// budget to the structure phase. A contract-violation panic from
	// ApplyNetDelta is re-raised on the caller's stack, preserving the
	// sequential path's failure semantics (recoverable by the caller,
	// full stack context).
	dbWorkers := workers / 2
	structWorkers := workers
	if e.db.Shards() > 1 && dbWorkers > 1 && len(survivors) >= dyndb.MinParallelDelta {
		structWorkers = workers - dbWorkers
	} else {
		dbWorkers = 1
	}
	var dbWG sync.WaitGroup
	var dbPanic any
	dbWG.Add(1)
	go func() {
		defer dbWG.Done()
		defer func() { dbPanic = recover() }()
		e.db.ApplyNetDelta(survivors, dbWorkers)
	}()
	e.runDeltaParallel(survivors, structWorkers)
	dbWG.Wait()
	if dbPanic != nil {
		panic(dbPanic)
	}
	return len(survivors), nil
}

// runDeltaParallel runs the per-atom update procedures for a net delta
// of survivors (commands that changed the database) on up to workers
// goroutines: the bucket phase groups operations by (component, shard),
// then workers claim whole buckets off a shared counter so a few
// oversized buckets don't serialise behind an even split. The caller is
// responsible for the database phase and the version bump.
func (e *Engine) runDeltaParallel(survivors []dyndb.Update, workers int) {
	// Bucket phase: group the per-atom operations by (component, shard).
	buckets := make([][]bucketOp, len(e.comps)*e.shardCount)
	for _, u := range survivors {
		insert := u.Op == dyndb.OpInsert
		for _, ref := range e.rels[u.Rel] {
			c := e.comps[ref.comp]
			a := &c.atoms[ref.atom]
			b := ref.comp*e.shardCount + int(e.shardOf(u.Tuple[a.extract[0]]))
			buckets[b] = append(buckets[b], bucketOp{c: c, a: a, tuple: u.Tuple, insert: insert})
		}
	}
	nonempty := buckets[:0]
	for _, b := range buckets {
		if len(b) > 0 {
			nonempty = append(nonempty, b)
		}
	}
	if len(nonempty) == 0 {
		return
	}
	if workers > len(nonempty) {
		workers = len(nonempty)
	}
	if workers == 1 {
		for _, b := range nonempty {
			for _, op := range b {
				e.updateAtomScratch(op.c, op.a, op.tuple, op.insert, e.scratchVals, e.scratchItems)
			}
		}
		return
	}

	// Worker phase: buckets are claimed off a shared counter so a few
	// oversized buckets don't serialise behind an even split.
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			vals := make([]Value, e.maxDepth)
			items := make([]*item, e.maxDepth)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(nonempty) {
					return
				}
				for _, op := range nonempty[i] {
					e.updateAtomScratch(op.c, op.a, op.tuple, op.insert, vals, items)
				}
			}
		}()
	}
	wg.Wait()
}
