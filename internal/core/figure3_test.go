package core

// This file reproduces the paper's worked example end to end:
//   - Example 6.1's database D0,
//   - Figure 3(a): the data structure for D0, with every item weight,
//   - Figure 3(b): the structure after insert E(b,p),
//   - Table 1: the exact enumeration sequence of the 23 result tuples.

import (
	"testing"

	"dyncq/internal/cq"
	"dyncq/internal/dyndb"
)

// Constants of Example 6.1, encoded as the paper's dom = N_{>=1}.
const (
	cA = int64(iota + 1)
	cB
	cC
	cD
	cE
	cF
	cG
	cH
	cP
)

var ex61Names = map[Value]string{
	cA: "a", cB: "b", cC: "c", cD: "d", cE: "e", cF: "f", cG: "g", cH: "h", cP: "p",
}

// qEx61 is ϕ(x,y,z,y',z') = Rxyz ∧ Rxyz' ∧ Exy ∧ Exy' ∧ Sxyz.
// Head order follows the paper: (x, y, z, y', z').
var qEx61 = cq.MustParse("Q(x,y,z,yp,zp) :- R(x,y,z), R(x,y,zp), E(x,y), E(x,yp), S(x,y,z)")

// ex61DB builds D0 from Example 6.1. Tuples are returned in sorted order
// so that the tail-appending fit lists reproduce the layout drawn in
// Figure 3 and the enumeration order of Table 1.
func ex61DB(t *testing.T) *dyndb.Database {
	t.Helper()
	db := dyndb.New()
	eD := [][2]Value{{cA, cE}, {cA, cF}, {cB, cD}, {cB, cG}, {cB, cH}}
	sD := [][3]Value{{cA, cE, cA}, {cA, cE, cB}, {cA, cF, cC}, {cB, cG, cB}, {cB, cP, cA}}
	rD := append(append([][3]Value{}, sD...),
		[3]Value{cA, cE, cC}, [3]Value{cB, cG, cA}, [3]Value{cB, cG, cC},
		[3]Value{cB, cP, cB}, [3]Value{cB, cP, cC})
	for _, e := range eD {
		if _, err := db.Insert("E", e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range sD {
		if _, err := db.Insert("S", s[0], s[1], s[2]); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range rD {
		if _, err := db.Insert("R", r[0], r[1], r[2]); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func ex61Engine(t *testing.T) *Engine {
	t.Helper()
	e, err := New(qEx61)
	if err != nil {
		t.Fatal(err)
	}
	// Load in the deterministic sorted order of Database.Updates (E before
	// R before S, tuples sorted), which matches the figure's list layout.
	if err := e.Load(ex61DB(t)); err != nil {
		t.Fatal(err)
	}
	return e
}

// weightOf returns C^i for the item [node(var), pathVals...] in the (only)
// component, and whether the item exists.
func weightOf(e *Engine, varName string, pathVals ...Value) (uint64, bool) {
	c := e.comps[0]
	for ni := range c.nodes {
		if c.nodes[ni].name == varName {
			it, ok := c.shards[e.shardOf(pathVals[0])].index[ni].Get(pathVals)
			if !ok {
				return 0, false
			}
			return it.weight, true
		}
	}
	return 0, false
}

// TestFigure3a checks every weight displayed in Figure 3(a) plus the
// seven unfit items the caption lists as omitted.
func TestFigure3a(t *testing.T) {
	e := ex61Engine(t)
	if err := e.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := e.Count(); got != 23 {
		t.Fatalf("C_start = %d, want 23", got)
	}
	wantWeights := []struct {
		v    string
		path []Value
		w    uint64
	}{
		{"x", []Value{cA}, 14},
		{"x", []Value{cB}, 9},
		{"y", []Value{cA, cE}, 6},
		{"y", []Value{cA, cF}, 1},
		{"yp", []Value{cA, cE}, 1},
		{"yp", []Value{cA, cF}, 1},
		{"y", []Value{cB, cG}, 3},
		{"y", []Value{cB, cP}, 0}, // the displayed unfit item [y, b/x, p]
		{"yp", []Value{cB, cD}, 1},
		{"yp", []Value{cB, cG}, 1},
		{"yp", []Value{cB, cH}, 1},
		{"z", []Value{cA, cE, cA}, 1},
		{"z", []Value{cA, cE, cB}, 1},
		{"zp", []Value{cA, cE, cA}, 1},
		{"zp", []Value{cA, cE, cB}, 1},
		{"zp", []Value{cA, cE, cC}, 1},
		{"z", []Value{cA, cF, cC}, 1},
		{"zp", []Value{cA, cF, cC}, 1},
		{"z", []Value{cB, cG, cB}, 1},
		{"zp", []Value{cB, cG, cA}, 1},
		{"zp", []Value{cB, cG, cB}, 1},
		{"zp", []Value{cB, cG, cC}, 1},
		{"z", []Value{cB, cP, cA}, 1},
		{"zp", []Value{cB, cP, cA}, 1},
		{"zp", []Value{cB, cP, cB}, 1},
		{"zp", []Value{cB, cP, cC}, 1},
	}
	for _, w := range wantWeights {
		got, ok := weightOf(e, w.v, w.path...)
		if !ok {
			t.Errorf("item [%s, %v] missing", w.v, w.path)
			continue
		}
		if got != w.w {
			t.Errorf("C[%s, %v] = %d, want %d", w.v, w.path, got, w.w)
		}
	}
	// The seven unfit items enumerated in the caption of Figure 3(a).
	unfit := []struct {
		v    string
		path []Value
	}{
		{"y", []Value{cB, cD}},
		{"y", []Value{cB, cH}},
		{"z", []Value{cA, cE, cC}},
		{"z", []Value{cB, cG, cA}},
		{"z", []Value{cB, cG, cC}},
		{"z", []Value{cB, cP, cB}},
		{"z", []Value{cB, cP, cC}},
	}
	for _, u := range unfit {
		w, ok := weightOf(e, u.v, u.path...)
		if !ok {
			t.Errorf("unfit item [%s, %v] should be present", u.v, u.path)
			continue
		}
		if w != 0 {
			t.Errorf("item [%s, %v] has weight %d, want 0 (unfit)", u.v, u.path, w)
		}
	}
	// Non-items: assignments never supported by any atom.
	if _, ok := weightOf(e, "z", cA, cE, cD); ok {
		t.Error("item [z, (a,e,d)] should not exist")
	}
	if _, ok := weightOf(e, "x", cC); ok {
		t.Error("item [x, c] should not exist")
	}
}

// TestFigure3b checks the update step shown in Figure 3(b): inserting
// E(b,p) raises C_start from 23 to 38, makes [y, b/x, p] fit with weight
// 3, creates the fit item [y', b/x, p], and lifts the root item b to 24.
func TestFigure3b(t *testing.T) {
	e := ex61Engine(t)
	changed, err := e.Insert("E", cB, cP)
	if err != nil || !changed {
		t.Fatalf("insert E(b,p): %v %v", changed, err)
	}
	if err := e.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := e.Count(); got != 38 {
		t.Fatalf("C_start = %d, want 38", got)
	}
	checks := []struct {
		v    string
		path []Value
		w    uint64
	}{
		{"x", []Value{cA}, 14},
		{"x", []Value{cB}, 24},
		{"y", []Value{cB, cP}, 3},
		{"yp", []Value{cB, cP}, 1},
	}
	for _, c := range checks {
		got, ok := weightOf(e, c.v, c.path...)
		if !ok || got != c.w {
			t.Errorf("C[%s, %v] = %d (present=%v), want %d", c.v, c.path, got, ok, c.w)
		}
	}
	// Deleting E(b,p) again must restore Figure 3(a) exactly.
	if _, err := e.Delete("E", cB, cP); err != nil {
		t.Fatal(err)
	}
	if err := e.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := e.Count(); got != 23 {
		t.Fatalf("C_start after undo = %d, want 23", got)
	}
	if w, ok := weightOf(e, "y", cB, cP); !ok || w != 0 {
		t.Errorf("[y, b/x, p] after undo: weight %d present %v, want 0 true", w, ok)
	}
}

// table1Want is the exact enumeration sequence of Table 1, as tuples
// (x, y, z, y', z') — the head order of ϕ — read off the table's columns.
var table1Want = [][5]string{
	{"a", "e", "a", "e", "a"}, {"a", "e", "a", "f", "a"},
	{"a", "e", "a", "e", "b"}, {"a", "e", "a", "f", "b"},
	{"a", "e", "a", "e", "c"}, {"a", "e", "a", "f", "c"},
	{"a", "e", "b", "e", "a"}, {"a", "e", "b", "f", "a"},
	{"a", "e", "b", "e", "b"}, {"a", "e", "b", "f", "b"},
	{"a", "e", "b", "e", "c"}, {"a", "e", "b", "f", "c"},
	{"a", "f", "c", "e", "c"}, {"a", "f", "c", "f", "c"},
	{"b", "g", "b", "d", "a"}, {"b", "g", "b", "g", "a"}, {"b", "g", "b", "h", "a"},
	{"b", "g", "b", "d", "b"}, {"b", "g", "b", "g", "b"}, {"b", "g", "b", "h", "b"},
	{"b", "g", "b", "d", "c"}, {"b", "g", "b", "g", "c"}, {"b", "g", "b", "h", "c"},
}

// TestTable1 reproduces the paper's Table 1: same 23 tuples, same order.
// The paper lists tuples by the document order x,y,z,z',y' with the fixed
// child orders y<y', z<z'; our builder derives exactly that tree (see
// qtree.TestFigure2), so the sequences must agree tuple for tuple.
func TestTable1(t *testing.T) {
	e := ex61Engine(t)
	var got [][5]string
	e.Enumerate(func(tup []Value) bool {
		var row [5]string
		for i, v := range tup {
			row[i] = ex61Names[v]
		}
		got = append(got, row)
		return true
	})
	if len(got) != len(table1Want) {
		t.Fatalf("enumerated %d tuples, want %d:\n%v", len(got), len(table1Want), got)
	}
	for i := range table1Want {
		if got[i] != table1Want[i] {
			t.Errorf("tuple %d = %v, want %v", i, got[i], table1Want[i])
		}
	}
}

// TestTable1Iterator drives the same enumeration through the pull
// iterator and checks the no-duplicates guarantee.
func TestTable1Iterator(t *testing.T) {
	e := ex61Engine(t)
	it := e.Iterator()
	seen := map[[5]string]bool{}
	n := 0
	for tup, ok := it.Next(); ok; tup, ok = it.Next() {
		var row [5]string
		for i, v := range tup {
			row[i] = ex61Names[v]
		}
		if seen[row] {
			t.Fatalf("duplicate tuple %v", row)
		}
		seen[row] = true
		n++
	}
	if n != 23 {
		t.Fatalf("iterator yielded %d tuples, want 23", n)
	}
	// Exhausted iterator keeps returning EOE.
	if _, ok := it.Next(); ok {
		t.Error("Next after EOE returned a tuple")
	}
}
