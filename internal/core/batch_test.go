package core

import (
	"math/rand"
	"testing"

	"dyncq/internal/cq"
	"dyncq/internal/dyndb"
	"dyncq/internal/eval"
	"dyncq/internal/tuplekey"
	"dyncq/internal/workload"
)

// TestApplyBatchMatchesSequential drives random q-hierarchical queries
// through the same random stream twice — one engine per update, one in
// batches — and demands identical counts, identical result sets, and
// intact invariants after every batch.
func TestApplyBatchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	trials := 40
	if testing.Short() {
		trials = 10
	}
	for trial := 0; trial < trials; trial++ {
		q := workload.RandomQHierarchical(rng, workload.DefaultQHOptions())
		seq, err := New(q)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		bat, err := New(q)
		if err != nil {
			t.Fatal(err)
		}
		stream := workload.RandomStream(rng, q.Schema(), 4, 150, 0.35)
		size := 1 + rng.Intn(40)
		for from := 0; from < len(stream); from += size {
			to := from + size
			if to > len(stream) {
				to = len(stream)
			}
			chunk := stream[from:to]
			for _, u := range chunk {
				if _, err := seq.Apply(u); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := bat.ApplyBatch(chunk); err != nil {
				t.Fatalf("trial %d query %s: ApplyBatch: %v", trial, q, err)
			}
			if seq.Count() != bat.Count() {
				t.Fatalf("trial %d query %s batch %d: sequential count %d, batch count %d",
					trial, q, size, seq.Count(), bat.Count())
			}
			if err := bat.checkInvariants(); err != nil {
				t.Fatalf("trial %d query %s: %v", trial, q, err)
			}
		}
		want := map[string]bool{}
		seq.Enumerate(func(tup []Value) bool {
			want[tuplekey.String(tup)] = true
			return true
		})
		got := 0
		bat.Enumerate(func(tup []Value) bool {
			if !want[tuplekey.String(tup)] {
				t.Fatalf("trial %d query %s: spurious tuple %v in batched engine", trial, q, tup)
			}
			got++
			return true
		})
		if got != len(want) {
			t.Fatalf("trial %d query %s: batched engine enumerated %d tuples, sequential %d",
				trial, q, got, len(want))
		}
	}
}

// TestApplyBatchCoalesces checks that insert/delete pairs on the same
// tuple cancel: the data structure is never touched, the version does not
// advance, and the net count is 0.
func TestApplyBatchCoalesces(t *testing.T) {
	e := mustEngine(t, "Q(y) :- E(x,y), T(y)")
	v0 := e.version
	n, err := e.ApplyBatch([]dyndb.Update{
		dyndb.Insert("E", 1, 2),
		dyndb.Insert("T", 2),
		dyndb.Delete("T", 2),
		dyndb.Delete("E", 1, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("net applied = %d, want 0", n)
	}
	if e.version != v0 {
		t.Error("cancelled batch advanced the engine version")
	}
	if e.Cardinality() != 0 {
		t.Errorf("|D| = %d after cancelled batch, want 0", e.Cardinality())
	}
	// The last op per tuple wins: insert-delete-insert nets to one insert.
	n, err = e.ApplyBatch([]dyndb.Update{
		dyndb.Insert("E", 1, 2),
		dyndb.Delete("E", 1, 2),
		dyndb.Insert("E", 1, 2),
		dyndb.Insert("T", 2),
	})
	if err != nil || n != 2 {
		t.Fatalf("net applied = %d (%v), want 2", n, err)
	}
	if e.Count() != 1 {
		t.Errorf("count = %d, want 1", e.Count())
	}
}

// TestApplyBatchArityError checks that an arity error anywhere in the
// batch rejects the whole batch before any change, matching ivm.
func TestApplyBatchArityError(t *testing.T) {
	e := mustEngine(t, "Q(y) :- E(x,y), T(y)")
	n, err := e.ApplyBatch([]dyndb.Update{
		dyndb.Insert("E", 1, 2),
		dyndb.Insert("T", 2, 3), // arity 2 against unary T
	})
	if err == nil {
		t.Fatal("arity mismatch in batch accepted")
	}
	if n != 0 || e.Cardinality() != 0 {
		t.Errorf("batch partially applied: net=%d |D|=%d, want 0 0", n, e.Cardinality())
	}
}

// TestApplyBatchForeignArityAtomicRejection: an arity conflict on a
// relation outside the query schema (invisible to the schema check, but
// caught by dyndb.NetDelta's validation against the stored relations)
// rejects the whole batch with nothing applied — the same atomic
// contract as query-schema errors, so a failed batch never advances the
// version and outstanding iterators stay valid.
func TestApplyBatchForeignArityAtomicRejection(t *testing.T) {
	e := mustEngine(t, "Q(y) :- E(x,y), T(y)")
	if _, err := e.ApplyBatch([]dyndb.Update{dyndb.Insert("E", 1, 2), dyndb.Insert("T", 2)}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Insert("X", 1); err != nil {
		t.Fatal(err)
	}
	it := e.Iterator()
	n, err := e.ApplyBatch([]dyndb.Update{
		dyndb.Delete("T", 2),
		dyndb.Insert("X", 1, 2), // X exists with arity 1: rejected atomically
	})
	if err == nil {
		t.Fatal("expected a db-level arity error")
	}
	if n != 0 {
		t.Fatalf("applied = %d on a rejected batch, want 0", n)
	}
	if e.Count() != 1 {
		t.Fatalf("count = %d after rejected batch, want 1 (nothing applied)", e.Count())
	}
	// Nothing changed, so the iterator from before the failed batch is
	// still usable.
	if _, ok := it.Next(); !ok {
		t.Fatal("iterator invalidated by a rejected batch")
	}
	// An inconsistency within the batch itself is caught the same way.
	n, err = e.ApplyBatch([]dyndb.Update{
		dyndb.Insert("Y", 1),
		dyndb.Insert("Y", 1, 2), // clashes with the batch's own declaration
	})
	if err == nil || n != 0 {
		t.Fatalf("intra-batch arity clash: n=%d err=%v, want 0 and an error", n, err)
	}
	if err := e.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestBulkLoadMatchesReplayAndOracle compares the bulk Load path against
// a single-update replay and the static oracle on random databases:
// same counts, same result sets, intact invariants, and a deterministic
// enumeration order across repeated bulk loads.
func TestBulkLoadMatchesReplayAndOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	trials := 30
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		q := workload.RandomQHierarchical(rng, workload.DefaultQHOptions())
		db := workload.RandomDatabase(rng, q.Schema(), 5, 25)
		bulk, err := New(q)
		if err != nil {
			t.Fatal(err)
		}
		if err := bulk.Load(db); err != nil {
			t.Fatalf("trial %d query %s: bulk load: %v", trial, q, err)
		}
		if err := bulk.checkInvariants(); err != nil {
			t.Fatalf("trial %d query %s: bulk load invariants: %v", trial, q, err)
		}
		replay, err := New(q)
		if err != nil {
			t.Fatal(err)
		}
		if err := replay.ApplyAll(db.Updates()); err != nil {
			t.Fatal(err)
		}
		if bulk.Count() != replay.Count() {
			t.Fatalf("trial %d query %s: bulk count %d, replay count %d", trial, q, bulk.Count(), replay.Count())
		}
		if want := eval.Count(q, db); bulk.Count() != uint64(want) {
			t.Fatalf("trial %d query %s: bulk count %d, oracle %d", trial, q, bulk.Count(), want)
		}
		compareEnumeration(t, bulk, q, db, trial, -1)

		// Determinism: a second bulk load enumerates the same sequence.
		again, err := New(q)
		if err != nil {
			t.Fatal(err)
		}
		if err := again.Load(db); err != nil {
			t.Fatal(err)
		}
		var first, second [][]Value
		bulk.Enumerate(func(tup []Value) bool {
			first = append(first, append([]Value(nil), tup...))
			return true
		})
		again.Enumerate(func(tup []Value) bool {
			second = append(second, append([]Value(nil), tup...))
			return true
		})
		if len(first) != len(second) {
			t.Fatalf("trial %d: repeated bulk loads enumerate %d vs %d tuples", trial, len(first), len(second))
		}
		for i := range first {
			if !tuplekey.Equal(first[i], second[i]) {
				t.Fatalf("trial %d: repeated bulk loads diverge at tuple %d: %v vs %v",
					trial, i, first[i], second[i])
			}
		}
	}
}

// TestBulkLoadThenUpdates checks that the structure built by bulk Load
// behaves identically to a replay-built one under subsequent updates,
// including draining back to empty.
func TestBulkLoadThenUpdates(t *testing.T) {
	q := cq.MustParse("Q(x,y,z,yp,zp) :- R(x,y,z), R(x,y,zp), E(x,y), E(x,yp), S(x,y,z)")
	rng := rand.New(rand.NewSource(17))
	db := workload.RandomDatabase(rng, q.Schema(), 5, 30)
	e, err := New(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Load(db); err != nil {
		t.Fatal(err)
	}
	oracle := db.Clone()
	stream := workload.RandomStream(rng, q.Schema(), 5, 200, 0.5)
	for _, u := range stream {
		if _, err := e.Apply(u); err != nil {
			t.Fatal(err)
		}
		if _, err := oracle.Apply(u); err != nil {
			t.Fatal(err)
		}
		if got, want := e.Count(), eval.Count(q, oracle); got != uint64(want) {
			t.Fatalf("after %s: count %d, oracle %d", u, got, want)
		}
	}
	if err := e.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	// Drain everything inserted so far; the structure must reach pristine
	// state even though it was built by the bulk path.
	if _, err := e.ApplyBatch(oracle.Updates()); err != nil {
		t.Fatal(err)
	}
	del := oracle.Updates()
	for i := range del {
		del[i].Op = dyndb.OpDelete
	}
	if _, err := e.ApplyBatch(del); err != nil {
		t.Fatal(err)
	}
	if e.Count() != 0 || e.Answer() {
		t.Errorf("count=%d answer=%v after draining", e.Count(), e.Answer())
	}
	for _, c := range e.comps {
		for si := range c.shards {
			for ni, m := range c.shards[si].index {
				if m.Len() != 0 {
					t.Errorf("node %s still has %d items after draining", c.nodes[ni].name, m.Len())
				}
			}
		}
	}
}

// TestLoadResetsNonEmptyEngine: Load follows the uniform reset-then-load
// contract — after Load the engine represents exactly the loaded
// database, discarding whatever the session held before.
func TestLoadResetsNonEmptyEngine(t *testing.T) {
	e := mustEngine(t, "Q(y) :- E(x,y), T(y)")
	if _, err := e.Insert("E", 1, 2); err != nil {
		t.Fatal(err)
	}
	db := dyndb.New()
	db.Insert("E", 7, 8)
	db.Insert("T", 8)
	if err := e.Load(db); err != nil {
		t.Fatal(err)
	}
	if e.Count() != 1 {
		t.Errorf("count = %d after Load, want 1 (only the loaded E(7,8),T(8))", e.Count())
	}
	if e.Has("E", 1, 2) {
		t.Error("pre-Load tuple E(1,2) survived a Load (want reset-then-load)")
	}
	if e.Cardinality() != 2 {
		t.Errorf("|D| = %d after Load, want 2", e.Cardinality())
	}
	if err := e.checkInvariants(); err != nil {
		t.Error(err)
	}
	// The structure must stay fully functional after the reset.
	if _, err := e.Delete("T", 8); err != nil {
		t.Fatal(err)
	}
	if e.Count() != 0 || e.Answer() {
		t.Errorf("count=%d answer=%v after deleting T(8)", e.Count(), e.Answer())
	}
}
