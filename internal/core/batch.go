package core

import (
	"fmt"
	"slices"

	"dyncq/internal/dyndb"
)

// This file implements the batch update pipeline of the engine: a true
// bulk Load that performs the preprocessing phase of Section 6.4 in one
// linear counting pass plus one bottom-up weight pass (instead of |D0|
// full single-tuple update procedures), and ApplyBatch, which coalesces a
// batch of commands to its net effect before running the O(1) per-update
// procedure on the survivors.

// ApplyBatch executes a batch of update commands as one block. The batch
// is reduced to its net delta against the current database
// (dyndb.NetDelta: coalesced, arity-validated against the query schema
// AND the stored relations, no-ops dropped); each surviving command runs
// the constant-time update procedure of Section 6.4. It returns the
// number of net commands that changed the database. Validation is
// atomic: any arity error — against the query schema, a stored foreign
// relation, or an inconsistency within the batch itself — rejects the
// whole batch with nothing applied (matching ivm.Maintainer.ApplyBatch
// and the workspace front door). The engine version advances exactly
// once per batch that changed anything, so outstanding iterators are
// invalidated iff the structure moved.
//
//dyncq:hot
func (e *Engine) ApplyBatch(updates []dyndb.Update) (applied int, err error) {
	if e.extStore {
		return 0, errSharedStore
	}
	survivors, err := e.netDelta(updates)
	if err != nil || len(survivors) == 0 {
		return 0, err
	}
	e.version++
	for _, u := range survivors {
		if changed, err := e.db.Apply(u); err != nil || !changed {
			panic(fmt.Sprintf("core: validated delta failed to apply at %s (changed=%v err=%v)", u, changed, err))
		}
		insert := u.Op == dyndb.OpInsert
		for _, ref := range e.rels[u.Rel] {
			e.updateAtom(ref, u.Tuple, insert)
		}
	}
	return len(survivors), nil
}

// netDelta validates a batch against the query schema and reduces it to
// the net delta against the engine's database — the shared validation
// front of ApplyBatch and ApplyBatchParallel. A nil slice with a nil
// error means the batch is a no-op.
func (e *Engine) netDelta(updates []dyndb.Update) ([]dyndb.Update, error) {
	for _, u := range updates {
		if want, ok := e.schema[u.Rel]; ok && want != len(u.Tuple) {
			return nil, arityErr(u.Rel, want, len(u.Tuple))
		}
	}
	survivors, err := e.db.NetDelta(updates)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return survivors, nil
}

// loadBulk builds the data structure for an initial database in two
// passes over the data instead of |D0| single-tuple update procedures:
//
//  1. a counting pass copies every tuple into the engine's database and
//     walks each matching atom's root path top-down, creating items and
//     incrementing their C^i_ψ counters (the top-down half of the update
//     procedure) while skipping the bottom-up weight propagation entirely;
//  2. one bottom-up pass per component visits the q-tree nodes children
//     before parents and computes every item's C^i and C̃^i once, by
//     Lemmas 6.3/6.4, linking fit items into their lists and summing into
//     the parent's child sums (or C_start/C̃_start at the root).
//
// Items are linked per list in lexicographic key order, which on the
// paper's Example 6.1 database reproduces the Figure 3 list layout and
// the Table 1 enumeration order, same as a sorted single-tuple replay.
// That canonical order costs a sort over the items — the price of a
// deterministic enumeration order independent of how the initial
// database was assembled; replay's order, by contrast, depends on its
// exact update sequence. The engine must represent the empty database.
func (e *Engine) loadBulk(db *dyndb.Database) error {
	for _, rel := range db.Relations() {
		r := db.Relation(rel)
		if want, ok := e.schema[rel]; ok && want != r.Arity() {
			return fmt.Errorf("core: %s has arity %d in query, %d in the loaded database", rel, want, r.Arity())
		}
		if err := e.db.EnsureRelation(rel, r.Arity()); err != nil {
			return err
		}
		refs := e.rels[rel]
		var insErr error
		r.Each(func(t []Value) bool {
			if _, err := e.db.Insert(rel, t...); err != nil {
				insErr = err
				return false
			}
			for _, ref := range refs {
				e.countAtom(ref, t)
			}
			return true
		})
		if insErr != nil {
			return insErr
		}
	}
	var scratch []listEntry
	for _, c := range e.comps {
		for si := range c.shards {
			e.buildWeights(c, &c.shards[si])
			scratch = sortLists(c, &c.shards[si], scratch)
		}
	}
	e.version++
	return nil
}

// countAtom is the top-down half of the update procedure for one atom and
// one inserted tuple: match the repeated-variable pattern, fetch or create
// the items along the atom's root path, and increment their C^i_ψ. Weight
// maintenance is deferred to buildWeights.
//
//dyncq:hot
func (e *Engine) countAtom(ref atomRef, tuple []Value) {
	c := e.comps[ref.comp]
	a := &c.atoms[ref.atom]
	for _, eq := range a.eqChecks {
		if tuple[eq[0]] != tuple[eq[1]] {
			return
		}
	}
	d := len(a.pathNodes)
	vals := e.scratchVals[:d]
	for j := 0; j < d; j++ {
		vals[j] = tuple[a.extract[j]]
	}
	sh := &c.shards[e.shardOf(vals[0])]
	var parent *item
	for j := 0; j < d; j++ {
		nodeIdx := a.pathNodes[j]
		m := sh.index[nodeIdx]
		it, ok := m.Get(vals[: j+1 : j+1])
		if !ok {
			it = sh.slab.alloc(&c.nodes[nodeIdx], nodeIdx, vals[:j+1], parent)
			m.Put(it.key, it)
		}
		parent = it
		it.counts[a.slotAtDepth[j]]++
	}
}

// buildWeights runs the deferred bottom-up pass of loadBulk for one
// shard of one component. Nodes are stored in document order (pre-order),
// so reverse index order visits every child before its parent and each
// item's child sums are complete when its own weight is computed (parents
// and children always share a shard). Fit items are prepended to their
// list's head as an unordered chain; sortLists turns the chains into
// properly ordered doubly linked lists afterwards.
func (e *Engine) buildWeights(c *comp, sh *compShard) {
	for ni := len(c.nodes) - 1; ni >= 0; ni-- {
		nd := &c.nodes[ni]
		m := sh.index[ni]
		if m.Len() == 0 {
			continue
		}
		m.Range(func(_ []Value, it *item) bool {
			w := uint64(1)
			for _, s := range nd.repSlots {
				if it.counts[s] == 0 {
					w = 0
					break
				}
			}
			if w != 0 {
				for ci := range nd.children {
					w *= it.childSum[ci]
					if w == 0 {
						break
					}
				}
			}
			var f uint64
			if nd.free && w != 0 {
				f = 1
				for ci := int32(0); ci < nd.freeChildCount; ci++ {
					f *= it.fchildSum[ci]
				}
			}
			it.weight, it.fweight = w, f
			if w == 0 {
				return true
			}
			if ni == 0 {
				it.next = sh.startHead
				sh.startHead = it
				sh.cStart += w
				if nd.free {
					sh.cfStart += f
				}
			} else {
				p := it.parent
				sl := nd.slotInParent
				it.next = p.childHead[sl]
				p.childHead[sl] = it
				p.childSum[sl] += w
				if nd.free {
					p.fchildSum[sl] += f
				}
			}
			return true
		})
	}
}

// listEntry decorates one chained item with its own constant (the last
// element of its key), so sorting a sibling list compares contiguous
// int64s instead of chasing key slices.
type listEntry struct {
	v  Value
	it *item
}

// sortLists rebuilds every chain produced by buildWeights into a doubly
// linked list in ascending order of the items' own constants. Siblings
// share their key prefix, so per-list order by last element is exactly
// the lexicographic order a sorted single-tuple replay produces — but
// sorting per list costs Σ k·log k over the (typically small) list sizes
// instead of one comparison-heavy sort over all items of a node. (With
// more than one shard the root list is sorted per shard, so enumeration
// is lexicographic within each shard; the fully canonical global order is
// a property of the unsharded engine.)
func sortLists(c *comp, sh *compShard, scratch []listEntry) []listEntry {
	fix := func(head, tail **item) {
		if *head == nil || (*head).next == nil {
			if *head != nil {
				(*head).inList = true
				*tail = *head
			}
			return
		}
		buf := scratch[:0]
		for x := *head; x != nil; x = x.next {
			buf = append(buf, listEntry{v: x.key[len(x.key)-1], it: x})
		}
		if cap(buf) > cap(scratch) {
			scratch = buf
		}
		slices.SortFunc(buf, func(a, b listEntry) int {
			if a.v < b.v {
				return -1
			}
			return 1 // keys are unique per node: equality cannot happen
		})
		var prev *item
		for _, en := range buf {
			en.it.prev = prev
			if prev != nil {
				prev.next = en.it
			} else {
				*head = en.it
			}
			en.it.inList = true
			prev = en.it
		}
		prev.next = nil
		*tail = prev
	}
	fix(&sh.startHead, &sh.startTail)
	for ni := range c.nodes {
		if len(c.nodes[ni].children) == 0 {
			continue
		}
		sh.index[ni].Range(func(_ []Value, it *item) bool {
			for sl := range it.childHead {
				fix(&it.childHead[sl], &it.childTail[sl])
			}
			return true
		})
	}
	return scratch
}
