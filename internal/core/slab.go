package core

// This file implements slab/arena allocation for the engine's dynamic
// state. The paper's O(1) update bound counts RAM operations; at tens of
// millions of tuples the real-world constant is dominated by allocator
// and GC work — the baseline newItem performed up to six heap
// allocations per item (struct, key, counts, childSum, childHead,
// childTail), each an independently traced GC object. The slab packs
// them into three kinds of chunked arenas per (component, shard):
//
//   - item structs in exponentially growing blocks,
//   - all of an item's uint64 state (counts, childSum, fchildSum) carved
//     from one shared []uint64 arena,
//   - the pointer pairs (childHead, childTail) from one []*item arena,
//     and the key from a []Value arena.
//
// A per-node free list recycles dropped items: an item leaves the
// structure only when every C^i_ψ counter is zero, at which point it is
// provably unfit (weight 0, unlinked) and childless, so its slices can
// be zeroed and reused for the next item of the same node — same node,
// same slice shapes. Everything else is freed wholesale: clearStructure
// (and with it RebuildFromStore and Load) drops the slab in one step, so
// the GC retires a whole shard's items as a handful of chunks instead of
// millions of individual objects.
//
// Lifetime caveat (the standard arena trade-off): a dropped item that is
// not yet recycled keeps its chunk alive, so memory is returned to the
// GC per shard at clearStructure/RebuildFromStore, not per tuple. The
// free lists bound the growth: steady-state churn reuses items instead
// of extending the arenas.
//
// Concurrency: a slab belongs to one compShard and inherits its
// discipline — the parallel batch path claims whole (component, shard)
// buckets per worker, so no two goroutines ever touch one slab
// concurrently.

// slabItemBlock / slabArenaChunk size the allocation granularity: item
// blocks double from 256 up to 8192 structs; arena chunks hold at least
// 1024 words.
const (
	slabItemBlockMin = 256
	slabItemBlockMax = 8192
	slabArenaChunk   = 1024
)

// itemSlab allocates the items of one compShard. The zero value is
// ready except for the per-node free lists (initFree).
type itemSlab struct {
	blocks [][]item // chunked item storage
	used   int      // structs handed out of the last block
	u64    []uint64 // remaining region of the current uint64 arena chunk
	ptr    []*item  // remaining region of the current pointer arena chunk
	val    []Value  // remaining region of the current key arena chunk
	free   [][]*item
}

// initFree sizes the per-node free lists (one per q-tree node — recycled
// items keep their slice shapes, which are a property of the node).
func (s *itemSlab) initFree(nodes int) {
	s.free = make([][]*item, nodes)
}

// reset frees everything wholesale: all blocks, arenas and free lists
// are dropped in one step for the GC to retire as whole chunks.
func (s *itemSlab) reset(nodes int) {
	*s = itemSlab{}
	s.initFree(nodes)
}

// nextStruct hands out the next item struct, growing the block list
// exponentially up to the cap.
//
//dyncq:hot
func (s *itemSlab) nextStruct() *item {
	if len(s.blocks) == 0 || s.used == len(s.blocks[len(s.blocks)-1]) {
		size := slabItemBlockMin
		if n := len(s.blocks); n > 0 {
			size = 2 * len(s.blocks[n-1])
			if size > slabItemBlockMax {
				size = slabItemBlockMax
			}
		}
		s.blocks = append(s.blocks, make([]item, size)) //dyncq:allow hotalloc exponential block growth, amortised to ~0 allocs per alloc() call
		s.used = 0
	}
	b := s.blocks[len(s.blocks)-1]
	it := &b[s.used]
	s.used++
	return it
}

// u64s carves n words off the uint64 arena. The returned slice has full
// capacity n, so later carves can never alias it through append.
//
//dyncq:hot
func (s *itemSlab) u64s(n int) []uint64 {
	if len(s.u64) < n {
		size := slabArenaChunk
		if n > size {
			size = n
		}
		s.u64 = make([]uint64, size)
	}
	out := s.u64[:n:n]
	s.u64 = s.u64[n:]
	return out
}

// ptrs carves n pointers off the pointer arena.
//
//dyncq:hot
func (s *itemSlab) ptrs(n int) []*item {
	if len(s.ptr) < n {
		size := slabArenaChunk
		if n > size {
			size = n
		}
		s.ptr = make([]*item, size)
	}
	out := s.ptr[:n:n]
	s.ptr = s.ptr[n:]
	return out
}

// vals carves n values off the key arena.
//
//dyncq:hot
func (s *itemSlab) vals(n int) []Value {
	if len(s.val) < n {
		size := slabArenaChunk
		if n > size {
			size = n
		}
		s.val = make([]Value, size)
	}
	out := s.val[:n:n]
	s.val = s.val[n:]
	return out
}

// alloc returns a zero-count item for node nd (index nodeIdx) with the
// given path values (copied) and parent — the slab-backed replacement
// for the per-item heap allocations of the baseline. Recycled items are
// fully re-zeroed; their slices are reused as-is (same node, same
// shapes).
//
//dyncq:hot
func (s *itemSlab) alloc(nd *cnode, nodeIdx int32, vals []Value, parent *item) *item {
	if fl := s.free[nodeIdx]; len(fl) > 0 {
		it := fl[len(fl)-1]
		fl[len(fl)-1] = nil
		s.free[nodeIdx] = fl[:len(fl)-1]
		copy(it.key, vals)
		it.parent = parent
		it.prev, it.next = nil, nil
		it.inList = false
		clear(it.counts)
		it.weight, it.fweight = 0, 0
		clear(it.childSum)
		clear(it.fchildSum)
		clear(it.childHead)
		clear(it.childTail)
		return it
	}
	it := s.nextStruct()
	it.key = s.vals(len(vals))
	copy(it.key, vals)
	it.parent = parent
	nt, nc := int(nd.numTracked), len(nd.children)
	fc := 0
	if nd.free && nd.freeChildCount > 0 {
		fc = int(nd.freeChildCount)
	}
	u := s.u64s(nt + nc + fc)
	it.counts = u[:nt:nt]
	it.childSum = u[nt : nt+nc : nt+nc]
	if fc > 0 {
		it.fchildSum = u[nt+nc : nt+nc+fc : nt+nc+fc]
	}
	p := s.ptrs(2 * nc)
	it.childHead = p[:nc:nc]
	it.childTail = p[nc : 2*nc : 2*nc]
	return it
}

// recycle returns a dropped item (all counts zero: unfit, unlinked,
// childless by invariant (a)) to its node's free list for reuse by the
// next alloc on the same node.
//
//dyncq:hot
func (s *itemSlab) recycle(nodeIdx int32, it *item) {
	s.free[nodeIdx] = append(s.free[nodeIdx], it) //dyncq:allow hotalloc free-list push reuses capacity after warm-up; growth is amortised
}
