// Package dict provides dictionary encoding between arbitrary string
// constants and the dense int64 domain values used by the query engine.
//
// The paper assumes dom = N (natural numbers) so that constants can index
// arrays in the RAM model. Real databases store strings, timestamps and
// other values; dictionary encoding is the standard bridge: every distinct
// external constant is assigned the next free int64 code, and codes can be
// translated back for display. Encoding is append-only — codes are never
// reused, so a code remains valid even after all tuples mentioning it have
// been deleted.
package dict

import "fmt"

// Dict maps external string constants to dense int64 codes and back.
// The zero value is not ready for use; call New.
type Dict struct {
	codes map[string]int64
	names []string // names[code-1] == external name; codes start at 1
	hits  uint64   // Encode calls that found an existing code
	miss  uint64   // Encode calls that assigned a fresh code
}

// New returns an empty dictionary. Codes are assigned starting at 1,
// matching the paper's convention dom = N_{>=1} (0 is reserved so that
// zero-initialised storage never collides with a real constant).
func New() *Dict {
	return &Dict{codes: make(map[string]int64)}
}

// Encode returns the code for name, assigning a fresh code if name has not
// been seen before.
func (d *Dict) Encode(name string) int64 {
	if c, ok := d.codes[name]; ok {
		d.hits++
		return c
	}
	d.miss++
	d.names = append(d.names, name)
	c := int64(len(d.names))
	d.codes[name] = c
	return c
}

// Stats describes the dictionary's encoding traffic: Size is the number
// of distinct constants, Hits the Encode calls answered from the table,
// Misses the calls that assigned a fresh code (Hits+Misses is the total
// Encode traffic; Misses == Size always).
type Stats struct {
	Size   int
	Hits   uint64
	Misses uint64
}

// Stats returns the dictionary's current encoding statistics.
func (d *Dict) Stats() Stats {
	return Stats{Size: len(d.names), Hits: d.hits, Misses: d.miss}
}

// HitRate returns the fraction of Encode calls answered from the table,
// or 0 if Encode was never called.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// EncodeAll encodes a slice of names, returning freshly allocated codes.
func (d *Dict) EncodeAll(names ...string) []int64 {
	out := make([]int64, len(names))
	for i, n := range names {
		out[i] = d.Encode(n)
	}
	return out
}

// Lookup returns the code for name without assigning a new one.
// The second result reports whether name is known.
func (d *Dict) Lookup(name string) (int64, bool) {
	c, ok := d.codes[name]
	return c, ok
}

// Decode returns the external name for code. It panics if code was never
// assigned by this dictionary; codes come only from Encode, so a bad code
// indicates a programming error rather than bad input.
func (d *Dict) Decode(code int64) string {
	if code < 1 || code > int64(len(d.names)) {
		panic(fmt.Sprintf("dict: code %d was never assigned (have 1..%d)", code, len(d.names)))
	}
	return d.names[code-1]
}

// TryDecode returns the external name for code without panicking: the
// second result reports whether code was ever assigned. Use it for codes
// from untrusted input (streams, wire formats); Decode remains the right
// call for codes that are internal invariants.
func (d *Dict) TryDecode(code int64) (string, bool) {
	if code < 1 || code > int64(len(d.names)) {
		return "", false
	}
	return d.names[code-1], true
}

// DecodeAll decodes a tuple of codes into a freshly allocated name slice.
func (d *Dict) DecodeAll(codes []int64) []string {
	out := make([]string, len(codes))
	for i, c := range codes {
		out[i] = d.Decode(c)
	}
	return out
}

// Len returns the number of distinct constants seen so far.
func (d *Dict) Len() int { return len(d.names) }
