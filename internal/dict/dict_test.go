package dict

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	d := New()
	names := []string{"alice", "bob", "carol", "", "alice", "bob", "日本語", "x y z"}
	codes := make([]int64, len(names))
	for i, n := range names {
		codes[i] = d.Encode(n)
	}
	for i, n := range names {
		if got := d.Decode(codes[i]); got != n {
			t.Errorf("Decode(Encode(%q)) = %q", n, got)
		}
	}
	// 6 distinct names: alice bob carol "" 日本語 "x y z"
	if d.Len() != 6 {
		t.Errorf("Len() = %d, want 6", d.Len())
	}
}

func TestEncodeStable(t *testing.T) {
	d := New()
	a1 := d.Encode("a")
	b := d.Encode("b")
	a2 := d.Encode("a")
	if a1 != a2 {
		t.Errorf("Encode(a) twice gave %d then %d", a1, a2)
	}
	if a1 == b {
		t.Errorf("distinct names share code %d", a1)
	}
}

func TestCodesStartAtOne(t *testing.T) {
	d := New()
	if c := d.Encode("first"); c != 1 {
		t.Errorf("first code = %d, want 1", c)
	}
	if c := d.Encode("second"); c != 2 {
		t.Errorf("second code = %d, want 2", c)
	}
}

func TestLookup(t *testing.T) {
	d := New()
	if _, ok := d.Lookup("missing"); ok {
		t.Error("Lookup on empty dict reported ok")
	}
	want := d.Encode("present")
	got, ok := d.Lookup("present")
	if !ok || got != want {
		t.Errorf("Lookup(present) = %d,%v want %d,true", got, ok, want)
	}
	if _, ok := d.Lookup("missing"); ok {
		t.Error("Lookup(missing) reported ok")
	}
}

func TestEncodeAllDecodeAll(t *testing.T) {
	d := New()
	codes := d.EncodeAll("x", "y", "x")
	if len(codes) != 3 || codes[0] != codes[2] || codes[0] == codes[1] {
		t.Errorf("EncodeAll gave %v", codes)
	}
	names := d.DecodeAll(codes)
	if names[0] != "x" || names[1] != "y" || names[2] != "x" {
		t.Errorf("DecodeAll gave %v", names)
	}
}

func TestDecodeBadCodePanics(t *testing.T) {
	for _, code := range []int64{0, -1, 7} {
		t.Run(fmt.Sprint(code), func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("Decode(%d) did not panic", code)
				}
			}()
			d := New()
			d.Encode("only")
			d.Decode(code)
		})
	}
}

func TestQuickRoundTrip(t *testing.T) {
	d := New()
	f := func(names []string) bool {
		for _, n := range names {
			if d.Decode(d.Encode(n)) != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickInjective(t *testing.T) {
	d := New()
	seen := make(map[int64]string)
	f := func(name string) bool {
		c := d.Encode(name)
		if prev, ok := seen[c]; ok {
			return prev == name
		}
		seen[c] = name
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTryDecode(t *testing.T) {
	d := New()
	c := d.Encode("known")
	if got, ok := d.TryDecode(c); !ok || got != "known" {
		t.Errorf("TryDecode(%d) = %q,%v want known,true", c, got, ok)
	}
	for _, bad := range []int64{0, -1, 2, 1 << 40} {
		if got, ok := d.TryDecode(bad); ok {
			t.Errorf("TryDecode(%d) = %q,true want _,false", bad, got)
		}
	}
}

func TestStableUnderReinsertion(t *testing.T) {
	// Codes must survive arbitrary interleavings of old and new names:
	// re-encoding any prefix never shifts an assigned code.
	d := New()
	names := make([]string, 200)
	codes := make([]int64, 200)
	for i := range names {
		names[i] = fmt.Sprintf("name-%d", i)
		codes[i] = d.Encode(names[i])
		// Re-insert every name seen so far, in reverse.
		for j := i; j >= 0; j-- {
			if c := d.Encode(names[j]); c != codes[j] {
				t.Fatalf("after %d inserts: Encode(%s) = %d, want %d", i+1, names[j], c, codes[j])
			}
		}
	}
	if d.Len() != 200 {
		t.Errorf("Len = %d, want 200", d.Len())
	}
	for i, c := range codes {
		if got := d.Decode(c); got != names[i] {
			t.Errorf("Decode(%d) = %q, want %q", c, got, names[i])
		}
	}
}
