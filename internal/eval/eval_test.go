package eval

import (
	"math/rand"
	"testing"

	"dyncq/internal/cq"
	"dyncq/internal/dyndb"
	"dyncq/internal/tuplekey"
)

func mkdb(t *testing.T, inserts ...dyndb.Update) *dyndb.Database {
	t.Helper()
	db := dyndb.New()
	if err := db.ApplyAll(inserts); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestEvaluateSET(t *testing.T) {
	q := cq.MustParse("Q(x,y) :- S(x), E(x,y), T(y)")
	db := mkdb(t,
		dyndb.Insert("S", 1), dyndb.Insert("S", 2),
		dyndb.Insert("E", 1, 10), dyndb.Insert("E", 1, 11), dyndb.Insert("E", 3, 10),
		dyndb.Insert("T", 10),
	)
	res := Evaluate(q, db)
	if res.Len() != 1 {
		t.Fatalf("|result| = %d, want 1: %v", res.Len(), res.Tuples())
	}
	if !res.Has([]Value{1, 10}) {
		t.Errorf("missing (1,10): %v", res.Tuples())
	}
	if !Answer(q, db) {
		t.Error("Answer = false")
	}
	if Count(q, db) != 1 {
		t.Error("Count != 1")
	}
}

func TestEvaluateProjection(t *testing.T) {
	// ϕE-T(x) = ∃y (Exy ∧ Ty): distinct x only.
	q := cq.MustParse("Q(x) :- E(x,y), T(y)")
	db := mkdb(t,
		dyndb.Insert("E", 1, 10), dyndb.Insert("E", 1, 11),
		dyndb.Insert("E", 2, 10), dyndb.Insert("E", 3, 12),
		dyndb.Insert("T", 10), dyndb.Insert("T", 11),
	)
	res := Evaluate(q, db)
	want := [][]Value{{1}, {2}}
	got := res.Tuples()
	if len(got) != len(want) {
		t.Fatalf("result = %v, want %v", got, want)
	}
	for i := range want {
		if got[i][0] != want[i][0] {
			t.Errorf("result = %v, want %v", got, want)
		}
	}
}

func TestEvaluateSelfJoin(t *testing.T) {
	// ϕ1(x,y) = Exx ∧ Exy ∧ Eyy.
	q := cq.MustParse("Q(x,y) :- E(x,x), E(x,y), E(y,y)")
	db := mkdb(t,
		dyndb.Insert("E", 1, 1), dyndb.Insert("E", 2, 2),
		dyndb.Insert("E", 1, 2), dyndb.Insert("E", 2, 3),
	)
	res := Evaluate(q, db)
	// (1,1), (2,2) via loops; (1,2) via 1→2 with both loops.
	if res.Len() != 3 || !res.Has([]Value{1, 2}) || !res.Has([]Value{1, 1}) || !res.Has([]Value{2, 2}) {
		t.Errorf("result = %v", res.Tuples())
	}
}

func TestEvaluateRepeatedVarsInAtom(t *testing.T) {
	q := cq.MustParse("Q(x) :- R(x,x)")
	db := mkdb(t, dyndb.Insert("R", 1, 2), dyndb.Insert("R", 3, 3))
	res := Evaluate(q, db)
	if res.Len() != 1 || !res.Has([]Value{3}) {
		t.Errorf("result = %v", res.Tuples())
	}
}

func TestEvaluateBoolean(t *testing.T) {
	q := cq.MustParse("Q() :- E(x,y), T(y)")
	db := mkdb(t, dyndb.Insert("E", 1, 2))
	if Answer(q, db) {
		t.Error("Answer true without T tuples")
	}
	res := Evaluate(q, db)
	if res.Len() != 0 {
		t.Errorf("Boolean no: result = %v", res.Tuples())
	}
	db.Insert("T", 2)
	if !Answer(q, db) {
		t.Error("Answer false after adding T(2)")
	}
	res = Evaluate(q, db)
	if res.Len() != 1 { // the empty tuple
		t.Errorf("Boolean yes: |result| = %d, want 1", res.Len())
	}
}

func TestEvaluateMissingRelation(t *testing.T) {
	q := cq.MustParse("Q(x) :- E(x,y), T(y)")
	db := mkdb(t, dyndb.Insert("E", 1, 2)) // no T at all
	if got := Evaluate(q, db).Len(); got != 0 {
		t.Errorf("|result| = %d, want 0", got)
	}
}

func TestEvaluateCartesian(t *testing.T) {
	q := cq.MustParse("Q(x,u) :- S(x), U(u)")
	db := mkdb(t,
		dyndb.Insert("S", 1), dyndb.Insert("S", 2),
		dyndb.Insert("U", 7), dyndb.Insert("U", 8), dyndb.Insert("U", 9),
	)
	if got := Evaluate(q, db).Len(); got != 6 {
		t.Errorf("|S×U| = %d, want 6", got)
	}
}

func TestCountValuationsVsDistinct(t *testing.T) {
	q := cq.MustParse("Q(x) :- E(x,y), T(y)")
	db := mkdb(t,
		dyndb.Insert("E", 1, 10), dyndb.Insert("E", 1, 11),
		dyndb.Insert("T", 10), dyndb.Insert("T", 11),
	)
	counts := CountValuations(q, db, nil, nil)
	if len(counts) != 1 {
		t.Fatalf("distinct heads = %d, want 1", len(counts))
	}
	if c := counts[tuplekey.String([]Value{1})]; c != 2 {
		t.Errorf("multiplicity of (1) = %d, want 2", c)
	}
}

func TestCountValuationsPinned(t *testing.T) {
	// Pin the E atom to (1,10): only valuations through that tuple count.
	q := cq.MustParse("Q(x) :- E(x,y), T(y)")
	db := mkdb(t,
		dyndb.Insert("E", 1, 10), dyndb.Insert("E", 1, 11), dyndb.Insert("E", 2, 10),
		dyndb.Insert("T", 10), dyndb.Insert("T", 11),
	)
	counts := CountValuations(q, db, Pinned{0: []Value{1, 10}}, nil)
	if len(counts) != 1 || counts[tuplekey.String([]Value{1})] != 1 {
		t.Errorf("pinned counts = %v", counts)
	}
	// Pin to a tuple violating a repeated-variable pattern.
	q2 := cq.MustParse("Q(x) :- R(x,x)")
	db2 := mkdb(t, dyndb.Insert("R", 3, 3))
	counts = CountValuations(q2, db2, Pinned{0: []Value{1, 2}}, nil)
	if len(counts) != 0 {
		t.Errorf("inconsistent pin matched: %v", counts)
	}
}

func TestPinnedTupleNeedNotBeInRelation(t *testing.T) {
	// IVM computes deletion deltas by pinning atoms to the tuple being
	// deleted, which may already be gone from the relation.
	q := cq.MustParse("Q(x) :- E(x,y), T(y)")
	db := mkdb(t, dyndb.Insert("T", 10))
	counts := CountValuations(q, db, Pinned{0: []Value{5, 10}}, nil)
	if len(counts) != 1 || counts[tuplekey.String([]Value{5})] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestIndexSetMaintenance(t *testing.T) {
	db := dyndb.New()
	db.Insert("E", 1, 2)
	db.Insert("E", 1, 3)
	idx := NewIndexSet(db)
	ix := idx.Get("E", 0b01) // index on first position
	if got := len(ix.bucket([]Value{1})); got != 2 {
		t.Fatalf("bucket(1) has %d tuples, want 2", got)
	}
	db.Insert("E", 1, 4)
	idx.ApplyUpdate(dyndb.Insert("E", 1, 4))
	db.Delete("E", 1, 2)
	idx.ApplyUpdate(dyndb.Delete("E", 1, 2))
	if got := len(ix.bucket([]Value{1})); got != 2 {
		t.Fatalf("bucket(1) after updates has %d tuples, want 2", got)
	}
	if err := idx.SanityCheck(); err != nil {
		t.Error(err)
	}
}

func TestIndexSetSecondPosition(t *testing.T) {
	db := dyndb.New()
	db.Insert("E", 1, 9)
	db.Insert("E", 2, 9)
	db.Insert("E", 3, 8)
	idx := NewIndexSet(db)
	ix := idx.Get("E", 0b10)
	if got := len(ix.bucket([]Value{9})); got != 2 {
		t.Errorf("bucket(·,9) = %d, want 2", got)
	}
}

// TestAgainstBruteForce cross-checks the planner/index machinery against a
// direct nested-loop evaluation on random databases and a mix of query
// shapes, including self-joins and quantifiers.
func TestAgainstBruteForce(t *testing.T) {
	queries := []*cq.Query{
		cq.MustParse("Q(x,y) :- S(x), E(x,y), T(y)"),
		cq.MustParse("Q(x) :- E(x,y), T(y)"),
		cq.MustParse("Q(x,y) :- E(x,x), E(x,y), E(y,y)"),
		cq.MustParse("Q() :- E(x,y), E(y,z)"),
		cq.MustParse("Q(x,z) :- E(x,y), E(y,z)"),
		cq.MustParse("Q(x,y,z) :- R(x,y,z), E(x,y)"),
		cq.MustParse("Q(y) :- E(x,y), T(y)"),
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 60; trial++ {
		db := dyndb.New()
		nv := int64(1 + rng.Intn(6))
		for i := 0; i < 25; i++ {
			switch rng.Intn(4) {
			case 0:
				db.Insert("S", rng.Int63n(nv))
			case 1:
				db.Insert("T", rng.Int63n(nv))
			case 2:
				db.Insert("E", rng.Int63n(nv), rng.Int63n(nv))
			case 3:
				db.Insert("R", rng.Int63n(nv), rng.Int63n(nv), rng.Int63n(nv))
			}
		}
		for _, q := range queries {
			got := Evaluate(q, db)
			want := bruteForce(q, db)
			if got.Len() != len(want) {
				t.Fatalf("trial %d, %s: |got| = %d, |want| = %d", trial, q, got.Len(), len(want))
			}
			for k := range want {
				if !got.Has(tuplekey.Decode(k)) {
					t.Fatalf("trial %d, %s: missing %v", trial, q, tuplekey.Decode(k))
				}
			}
		}
	}
}

// bruteForce evaluates by enumerating all assignments over the active
// domain — exponential, only for tiny test databases.
func bruteForce(q *cq.Query, db *dyndb.Database) map[string]bool {
	vars := q.Vars()
	adom := db.ActiveDomain()
	out := map[string]bool{}
	assign := map[string]Value{}
	var rec func(i int)
	rec = func(i int) {
		if i == len(vars) {
			for _, a := range q.Atoms {
				t := make([]Value, len(a.Args))
				for j, v := range a.Args {
					t[j] = assign[v]
				}
				if !db.Has(a.Rel, t...) {
					return
				}
			}
			head := make([]Value, len(q.Head))
			for j, h := range q.Head {
				head[j] = assign[h]
			}
			out[tuplekey.String(head)] = true
			return
		}
		for _, v := range adom {
			assign[vars[i]] = v
			rec(i + 1)
		}
	}
	if len(adom) > 0 {
		rec(0)
	}
	return out
}

func TestCountValuationsRestricted(t *testing.T) {
	q := cq.MustParse("Q(x) :- E(x,y), T(y)")
	db := mkdb(t,
		dyndb.Insert("E", 1, 10), dyndb.Insert("E", 1, 11),
		dyndb.Insert("E", 2, 10), dyndb.Insert("E", 3, 12),
		dyndb.Insert("T", 10), dyndb.Insert("T", 11), dyndb.Insert("T", 12),
	)
	// Each valuation matches the restricted atom to exactly one tuple, so
	// restricting to a set must equal the sum of pinning to each element.
	set := [][]Value{{1, 10}, {2, 10}, {3, 12}}
	got := CountValuationsRestricted(q, db, nil, Restricted{0: set}, nil)
	want := map[string]int64{}
	for _, tup := range set {
		for k, c := range CountValuations(q, db, Pinned{0: tup}, nil) {
			want[k] += c
		}
	}
	if len(got) != len(want) {
		t.Fatalf("restricted gave %d head tuples, pinned sum %d", len(got), len(want))
	}
	for k, c := range want {
		if got[k] != c {
			t.Errorf("head %v: restricted %d, pinned sum %d", tuplekey.Decode(k), got[k], c)
		}
	}
	// Restricting to the full relation is the unrestricted count.
	full := db.Relation("E").Tuples()
	gotFull := CountValuationsRestricted(q, db, nil, Restricted{0: full}, nil)
	wantFull := CountValuations(q, db, nil, nil)
	if len(gotFull) != len(wantFull) {
		t.Fatalf("full restriction gave %d head tuples, unrestricted %d", len(gotFull), len(wantFull))
	}
	for k, c := range wantFull {
		if gotFull[k] != c {
			t.Errorf("head %v: full restriction %d, unrestricted %d", tuplekey.Decode(k), gotFull[k], c)
		}
	}
}

func TestRestrictedSkipsWrongArity(t *testing.T) {
	q := cq.MustParse("Q(x) :- E(x,y)")
	db := mkdb(t, dyndb.Insert("E", 1, 2))
	got := CountValuationsRestricted(q, db, nil, Restricted{0: {{1}, {1, 2}, {1, 2, 3}}}, nil)
	if len(got) != 1 || got[tuplekey.String([]Value{1})] != 1 {
		t.Errorf("restricted with mixed arities = %v, want exactly E(1,2)", got)
	}
}

func TestRestrictedSelfJoin(t *testing.T) {
	// Both occurrences of E restricted: only valuations drawing both atoms
	// from the delta set survive — the N_S terms of the batched delta rule.
	q := cq.MustParse("Q(x,z) :- E(x,y), E(y,z)")
	db := mkdb(t,
		dyndb.Insert("E", 1, 2), dyndb.Insert("E", 2, 3), dyndb.Insert("E", 3, 4),
	)
	delta := [][]Value{{1, 2}, {2, 3}}
	got := CountValuationsRestricted(q, db, nil, Restricted{0: delta, 1: delta}, nil)
	if len(got) != 1 || got[tuplekey.String([]Value{1, 3})] != 1 {
		t.Errorf("double restriction = %v, want exactly (1,3)", got)
	}
}
