package eval

import (
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"

	"dyncq/internal/dyndb"
	"dyncq/internal/tuplekey"
)

// dumpIndex flattens an index into sorted (projKey, tupleKey) pairs for
// order-insensitive comparison.
func dumpIndex(ix *Index) []string {
	var out []string
	ix.buckets.Range(func(pk []int64, b *ixBucket) bool {
		for _, t := range b.tuples {
			out = append(out, tuplekey.String(pk)+"\x00"+tuplekey.String(t))
		}
		return true
	})
	sort.Strings(out)
	return out
}

// checkAgainstFresh compares every built index of s against a fresh
// build over the same database.
func checkAgainstFresh(t *testing.T, s *IndexSet, db *dyndb.Database) {
	t.Helper()
	if err := s.SanityCheck(); err != nil {
		t.Fatal(err)
	}
	fresh := NewIndexSet(db)
	for k, ix := range s.idx {
		want := fresh.Get(k.rel, k.mask)
		if !reflect.DeepEqual(dumpIndex(ix), dumpIndex(want)) {
			t.Fatalf("index (%s,%b) diverges from a fresh build", k.rel, k.mask)
		}
	}
}

// TestIndexSetIncrementalMatchesFresh is the property test of the
// incrementally maintained index set: a randomised stream of inserts,
// deletes, and Load-style wholesale replacements (Clear + CopyFrom +
// Reload with the diff), interleaved with index builds on random masks,
// leaves every index equal to a fresh NewIndexSet build over the same
// database.
func TestIndexSetIncrementalMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 10; trial++ {
		db := dyndb.New()
		s := NewIndexSet(db)
		randomUpdate := func() dyndb.Update {
			v1, v2 := int64(rng.Intn(12)), int64(rng.Intn(12))
			if rng.Intn(3) == 0 {
				if rng.Intn(2) == 0 {
					return dyndb.Insert("T", v1)
				}
				return dyndb.Delete("T", v1)
			}
			if rng.Intn(2) == 0 {
				return dyndb.Insert("E", v1, v2)
			}
			return dyndb.Delete("E", v1, v2)
		}
		masks := []struct {
			rel  string
			mask uint32
		}{{"E", 1}, {"E", 2}, {"E", 3}, {"T", 1}}
		for step := 0; step < 400; step++ {
			switch r := rng.Intn(20); {
			case r == 0:
				// Load-style replacement of the whole contents: build the
				// target database, diff, swap, reconcile.
				target := dyndb.New()
				for i := 0; i < rng.Intn(30); i++ {
					if u := randomUpdate(); u.Op == dyndb.OpInsert {
						if _, err := target.Apply(u); err != nil {
							t.Fatal(err)
						}
					}
				}
				var diff []dyndb.Update
				for _, rel := range db.Relations() {
					old := db.Relation(rel)
					cur := target.Relation(rel)
					old.Each(func(tu []int64) bool {
						if cur == nil || !cur.Has(tu) {
							diff = append(diff, dyndb.Delete(rel, append([]int64(nil), tu...)...))
						}
						return true
					})
				}
				for _, rel := range target.Relations() {
					old := db.Relation(rel)
					target.Relation(rel).Each(func(tu []int64) bool {
						if old == nil || !old.Has(tu) {
							diff = append(diff, dyndb.Insert(rel, append([]int64(nil), tu...)...))
						}
						return true
					})
				}
				db.Clear()
				if err := db.CopyFrom(target); err != nil {
					t.Fatal(err)
				}
				s.Reload(diff)
			case r < 4:
				// Build (or fetch) an index on a random mask.
				m := masks[rng.Intn(len(masks))]
				s.Get(m.rel, m.mask)
			default:
				u := randomUpdate()
				changed, err := db.Apply(u)
				if err != nil {
					t.Fatal(err)
				}
				if changed {
					s.ApplyUpdate(u)
				}
			}
			if !s.Synced() {
				t.Fatalf("trial %d step %d: index set lost sync (epoch %d, store %d)", trial, step, s.Epoch(), db.Epoch())
			}
		}
		checkAgainstFresh(t, s, db)
	}
}

// TestIndexSetEpochFallback: a store mutated behind the set's back is
// detected by the epoch check, and the next Get rebuilds from scratch
// instead of serving stale buckets.
func TestIndexSetEpochFallback(t *testing.T) {
	db := dyndb.New()
	for i := int64(0); i < 10; i++ {
		if _, err := db.Insert("E", i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	s := NewIndexSet(db)
	ix := s.Get("E", 1)
	if got := len(ix.bucket([]int64{3})); got != 1 {
		t.Fatalf("bucket(3) has %d tuples, want 1", got)
	}
	// Mutate the store without telling the set: stale until the next Get.
	if _, err := db.Delete("E", 3, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("E", 3, 9); err != nil {
		t.Fatal(err)
	}
	if s.Synced() {
		t.Fatal("set claims sync after unreported mutations")
	}
	ix = s.Get("E", 1)
	if !s.Synced() {
		t.Fatal("Get did not resynchronise")
	}
	got := ix.bucket([]int64{3})
	if len(got) != 1 || got[0][1] != 9 {
		t.Fatalf("rebuilt bucket(3) = %v, want [[3 9]]", got)
	}
	checkAgainstFresh(t, s, db)

	// A Clear nobody diffs takes the same fallback.
	db.Clear()
	if s.Get("E", 1) == nil || s.Get("E", 1).buckets.Len() != 0 {
		t.Fatal("index after unreported Clear not empty")
	}
	if !s.Synced() {
		t.Fatal("set out of sync after fallback")
	}
}

// TestIndexSetRebuildsCounter: the fallback is observable — steady-state
// maintenance leaves Rebuilds at zero, silent store movement with built
// indexes increments it, and an epoch mismatch with nothing built resyncs
// without counting (nothing was rebuilt).
func TestIndexSetRebuildsCounter(t *testing.T) {
	db := dyndb.New()
	for i := int64(0); i < 10; i++ {
		if _, err := db.Insert("E", i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	s := NewIndexSet(db)
	s.Get("E", 1)
	u := dyndb.Insert("E", 100, 101)
	if _, err := db.Apply(u); err != nil {
		t.Fatal(err)
	}
	s.ApplyUpdate(u)
	if got := s.Rebuilds(); got != 0 {
		t.Fatalf("Rebuilds = %d after clean maintenance, want 0", got)
	}
	// Mutate behind the set's back: the next Get drops and counts.
	if _, err := db.Insert("E", 200, 201); err != nil {
		t.Fatal(err)
	}
	s.Get("E", 1)
	if got := s.Rebuilds(); got != 1 {
		t.Fatalf("Rebuilds = %d after silent mutation, want 1", got)
	}
	// With nothing built, an epoch mismatch resyncs without a rebuild.
	empty := NewIndexSet(db)
	if _, err := db.Insert("E", 300, 301); err != nil {
		t.Fatal(err)
	}
	empty.Get("E", 1)
	if got := empty.Rebuilds(); got != 0 {
		t.Fatalf("Rebuilds = %d with no indexes to drop, want 0", got)
	}
}

// TestIndexSetConcurrentGetMatchesFresh is the concurrent extension of
// TestIndexSetIncrementalMatchesFresh: after every maintenance step, a
// group of goroutines hammers Get on random masks concurrently (racing
// lazy builds and the epoch-sync fallback against each other), and the
// resulting indexes must equal a fresh NewIndexSet build. Run under
// -race this is the safety proof for sharing one IndexSet between the
// workspace's parallel IVM handles.
func TestIndexSetConcurrentGetMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	masks := []struct {
		rel  string
		mask uint32
	}{{"E", 1}, {"E", 2}, {"E", 3}, {"T", 1}}
	const readers = 8
	for trial := 0; trial < 5; trial++ {
		db := dyndb.New()
		s := NewIndexSet(db)
		for step := 0; step < 60; step++ {
			// Mutate the store (exclusive phase): half the steps notify the
			// set, the other half leave it to the concurrent fallback.
			v1, v2 := int64(rng.Intn(10)), int64(rng.Intn(10))
			var u dyndb.Update
			if rng.Intn(4) == 0 {
				u = dyndb.Delete("E", v1, v2)
			} else if rng.Intn(5) == 0 {
				u = dyndb.Insert("T", v1)
			} else {
				u = dyndb.Insert("E", v1, v2)
			}
			changed, err := db.Apply(u)
			if err != nil {
				t.Fatal(err)
			}
			if changed && step%2 == 0 {
				s.ApplyUpdate(u)
			}
			// Quiescent store: concurrent readers race builds and syncs.
			var wg sync.WaitGroup
			for r := 0; r < readers; r++ {
				wg.Add(1)
				seed := int64(trial*1000 + step*10 + r)
				go func() {
					defer wg.Done()
					lrng := rand.New(rand.NewSource(seed))
					for i := 0; i < 4; i++ {
						m := masks[lrng.Intn(len(masks))]
						ix := s.Get(m.rel, m.mask)
						if ix == nil {
							panic("nil index from concurrent Get")
						}
						// Exercise the read path too.
						ix.bucket([]int64{int64(lrng.Intn(10))})
					}
				}()
			}
			wg.Wait()
			if !s.Synced() {
				t.Fatalf("trial %d step %d: set out of sync after concurrent Gets", trial, step)
			}
		}
		checkAgainstFresh(t, s, db)
	}
}

// TestIndexSetApplyDelta: the batch maintenance entry point keeps epoch
// lockstep with dyndb.ApplyNetDelta.
func TestIndexSetApplyDelta(t *testing.T) {
	db := dyndb.NewSharded(4)
	var initial []dyndb.Update
	for i := int64(0); i < 50; i++ {
		initial = append(initial, dyndb.Insert("E", i%10, i))
	}
	if err := db.ApplyAll(initial); err != nil {
		t.Fatal(err)
	}
	s := NewIndexSet(db)
	s.Get("E", 1)
	var batch []dyndb.Update
	for i := int64(0); i < 40; i++ {
		if i%2 == 0 {
			batch = append(batch, dyndb.Insert("E", i%10, 100+i))
		} else {
			batch = append(batch, dyndb.Delete("E", i%10, i))
		}
	}
	delta, err := db.NetDelta(batch)
	if err != nil {
		t.Fatal(err)
	}
	db.ApplyNetDelta(delta, 2)
	s.ApplyDelta(delta)
	if !s.Synced() {
		t.Fatalf("epoch %d after ApplyDelta, store %d", s.Epoch(), db.Epoch())
	}
	checkAgainstFresh(t, s, db)
}
