// Package eval is a static (non-incremental) conjunctive query evaluator:
// a backtracking join with lazily built hash indexes. It plays three roles
// in this repository:
//
//   - the correctness oracle that the dynamic engine (internal/core) and
//     the IVM baseline (internal/ivm) are tested against,
//   - the "recompute from scratch after every update" baseline of the
//     benchmark suite, and
//   - the residual-query evaluator inside the IVM baseline's delta rules,
//     via pinned atoms.
//
// Evaluation is exponential in the query size in the worst case (CQ
// evaluation is NP-hard in combined complexity); queries are fixed and
// small (data complexity), matching the paper's cost model.
package eval

import (
	"fmt"
	"sort"
	"sync"

	"dyncq/internal/cq"
	"dyncq/internal/dyndb"
	"dyncq/internal/tuplekey"
)

// Value is a database constant.
type Value = dyndb.Value

// Pinned maps an atom index (into q.Atoms) to a fixed tuple: during
// evaluation that atom matches only the given tuple instead of its
// relation. This is the hook the IVM delta rules use to force occurrences
// of an updated relation onto the updated tuple.
type Pinned map[int][]Value

// Restricted maps an atom index (into q.Atoms) to an explicit tuple set:
// during evaluation that atom matches only the listed tuples instead of
// its full relation. This is the batch analogue of Pinned — the IVM
// batched delta rules restrict occurrences of an updated relation to the
// batch's delta tuples, so the residual join against the base relations
// runs once per batch instead of once per tuple. Callers guarantee the
// listed tuples belong to the database state being evaluated; tuples of
// the wrong arity are skipped, matching Pinned.
type Restricted map[int][][]Value

// Result is a set of distinct head tuples.
type Result struct {
	arity int
	set   map[string][]Value
}

// Len returns the number of distinct tuples — the paper's |ϕ(D)|.
func (r *Result) Len() int { return len(r.set) }

// Has reports whether the tuple is in the result.
func (r *Result) Has(tuple []Value) bool {
	_, ok := r.set[tuplekey.String(tuple)]
	return ok
}

// Tuples returns the result tuples sorted lexicographically.
func (r *Result) Tuples() [][]Value {
	out := make([][]Value, 0, len(r.set))
	for _, t := range r.set { //dyncq:allow determinism tuples are sorted below, iteration order cannot leak
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		for k := range out[i] {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out
}

// Each calls fn for every tuple until fn returns false.
func (r *Result) Each(fn func(tuple []Value) bool) {
	for _, t := range r.set { //dyncq:allow determinism Each documents no yield order; order-sensitive consumers use Tuples
		if !fn(t) {
			return
		}
	}
}

// Evaluate computes ϕ(D): the set of distinct head projections of all
// valuations satisfying the body.
func Evaluate(q *cq.Query, db *dyndb.Database) *Result {
	res := &Result{arity: len(q.Head), set: make(map[string][]Value)}
	run(q, db, nil, nil, func(head []Value) bool {
		k := tuplekey.String(head)
		if _, ok := res.set[k]; !ok {
			res.set[k] = append([]Value(nil), head...)
		}
		return true
	})
	return res
}

// Count returns |ϕ(D)| (number of distinct head tuples).
func Count(q *cq.Query, db *dyndb.Database) int {
	return Evaluate(q, db).Len()
}

// Answer reports whether ϕ(D) is nonempty, stopping at the first
// satisfying valuation.
func Answer(q *cq.Query, db *dyndb.Database) bool {
	found := false
	run(q, db, nil, nil, func([]Value) bool {
		found = true
		return false
	})
	return found
}

// CountValuations returns, for every head tuple, the number of valuations
// (homomorphisms ϕ → D over all variables) projecting to it, honouring
// pinned atoms. Keys are tuplekey.String encodings of head tuples. If idx
// is non-nil its indexes are used and extended; otherwise a transient
// index set over db is built.
func CountValuations(q *cq.Query, db *dyndb.Database, pinned Pinned, idx *IndexSet) map[string]int64 {
	return CountValuationsRestricted(q, db, pinned, nil, idx)
}

// CountValuationsRestricted is CountValuations with additional restricted
// atoms: atoms in restricted range only over their listed tuple sets (see
// Restricted). Pinning and restricting the same atom is a programming
// error; the pin wins.
func CountValuationsRestricted(q *cq.Query, db *dyndb.Database, pinned Pinned, restricted Restricted, idx *IndexSet) map[string]int64 {
	out := make(map[string]int64)
	runRestricted(q, db, pinned, restricted, idx, func(head []Value) bool {
		out[tuplekey.String(head)]++
		return true
	})
	return out
}

// run enumerates all satisfying valuations of q over db (with pinned atom
// overrides), calling emit with the head projection of each until emit
// returns false. The head slice passed to emit is reused between calls.
func run(q *cq.Query, db *dyndb.Database, pinned Pinned, idx *IndexSet, emit func(head []Value) bool) {
	runRestricted(q, db, pinned, nil, idx, emit)
}

func runRestricted(q *cq.Query, db *dyndb.Database, pinned Pinned, restricted Restricted, idx *IndexSet, emit func(head []Value) bool) {
	if idx == nil {
		idx = NewIndexSet(db)
	} else if idx.db != db {
		panic("eval: IndexSet belongs to a different database")
	}
	vars := q.Vars()
	varIdx := make(map[string]int, len(vars))
	for i, v := range vars {
		varIdx[v] = i
	}
	atoms := make([]catom, len(q.Atoms))
	for i, a := range q.Atoms {
		ca := catom{orig: i, rel: a.Rel, args: make([]int, len(a.Args))}
		for j, v := range a.Args {
			ca.args[j] = varIdx[v]
		}
		if t, ok := pinned[i]; ok {
			ca.pinTo, ca.pinSet = t, true
		} else if ts, ok := restricted[i]; ok {
			ca.restrict, ca.restrictSet = ts, true
		}
		atoms[i] = ca
	}

	// Greedy join order: pinned atoms first, then repeatedly the atom with
	// the most already-bound variables, tie-broken by smaller relation.
	order := planOrder(atoms, db)

	assign := make([]Value, len(vars))
	bound := make([]bool, len(vars))
	head := make([]Value, len(q.Head))
	headIdx := make([]int, len(q.Head))
	for i, h := range q.Head {
		headIdx[i] = varIdx[h]
	}

	stopped := false
	var step func(d int)
	step = func(d int) {
		if stopped {
			return
		}
		if d == len(order) {
			for i, vi := range headIdx {
				head[i] = assign[vi]
			}
			if !emit(head) {
				stopped = true
			}
			return
		}
		a := atoms[order[d]]
		// tryTuple binds the atom's unbound variables to the tuple and
		// recurses, then unbinds.
		tryTuple := func(t []Value) {
			var newlyBound []int
			ok := true
			for j, vi := range a.args {
				if bound[vi] {
					if assign[vi] != t[j] {
						ok = false
						break
					}
				} else {
					assign[vi] = t[j]
					bound[vi] = true
					newlyBound = append(newlyBound, vi)
				}
			}
			if ok {
				step(d + 1)
			}
			for _, vi := range newlyBound {
				bound[vi] = false
			}
		}
		if a.pinSet {
			if len(a.pinTo) == len(a.args) {
				tryTuple(a.pinTo)
			}
			return
		}
		if a.restrictSet {
			for _, t := range a.restrict {
				if len(t) == len(a.args) {
					tryTuple(t)
				}
				if stopped {
					return
				}
			}
			return
		}
		rel := db.Relation(a.rel)
		if rel == nil {
			return // empty relation: no matches
		}
		// Determine bound positions.
		var mask uint32
		var boundVals []Value
		allBound := true
		for j, vi := range a.args {
			if bound[vi] {
				mask |= 1 << uint(j)
				boundVals = append(boundVals, assign[vi])
			} else {
				allBound = false
			}
		}
		switch {
		case allBound:
			t := make([]Value, len(a.args))
			for j, vi := range a.args {
				t[j] = assign[vi]
			}
			if rel.Has(t) {
				step(d + 1)
			}
		case mask == 0:
			rel.Each(func(t []Value) bool {
				tryTuple(t)
				return !stopped
			})
		default:
			ix := idx.Get(a.rel, mask)
			for _, t := range ix.bucket(boundVals) {
				tryTuple(t)
				if stopped {
					return
				}
			}
		}
	}
	step(0)
}

// catom is an atom compiled for evaluation: argument variables resolved
// to indices, with an optional pinned tuple.
type catom struct {
	orig        int
	rel         string
	args        []int // variable indices per position
	pinTo       []Value
	pinSet      bool
	restrict    [][]Value
	restrictSet bool
}

func planOrder(atoms []catom, db *dyndb.Database) []int {
	n := len(atoms)
	used := make([]bool, n)
	boundVars := map[int]bool{}
	var order []int
	relSize := func(rel string) int {
		r := db.Relation(rel)
		if r == nil {
			return 0
		}
		return r.Len()
	}
	for len(order) < n {
		best, bestScore, bestSize := -1, -1, 0
		for i, a := range atoms {
			if used[i] {
				continue
			}
			score := 0
			if a.pinSet {
				score = 1 << 20 // pinned: essentially free, schedule first
			} else if a.restrictSet {
				score = 1 << 19 // restricted: a small delta set, schedule early
			}
			for _, vi := range a.args {
				if boundVars[vi] {
					score++
				}
			}
			size := relSize(a.rel)
			if a.restrictSet {
				size = len(a.restrict)
			}
			if best == -1 || score > bestScore || (score == bestScore && size < bestSize) {
				best, bestScore, bestSize = i, score, size
			}
		}
		used[best] = true
		order = append(order, best)
		for _, vi := range atoms[best].args {
			boundVars[vi] = true
		}
	}
	return order
}

// IndexSet is a collection of hash indexes over a database's relations,
// keyed by (relation, bound-position mask). Indexes are built lazily on
// first use and maintained incrementally under updates, which is how the
// IVM baseline keeps its residual joins fast without rescanning.
//
// The set records the store epoch (dyndb.Database.Epoch) it is
// synchronised to: every ApplyUpdate/ApplyDelta call advances the
// recorded epoch in lockstep with the store's own counter, so as long
// as the owner notifies the set of every mutation, built indexes stay
// warm indefinitely — across IVM batches and (via Reload) across Loads
// of overlapping databases. If the store moved without notification
// (direct writes, a Clear the owner chose not to diff), the next Get
// detects the epoch mismatch and falls back to dropping every index;
// they are then rebuilt lazily by relation scans, exactly as on first
// use. Incremental maintenance is an optimisation with a rebuild safety
// net, never a correctness risk. Rebuilds() counts how often that
// fallback fired with built indexes to drop, so silent store movement is
// observable in production instead of showing up only as latency.
//
// Concurrency contract: Get and the other read entry points (Epoch,
// Synced, Built, Rebuilds, IndexedRelations, SanityCheck) are safe to
// call from any number of goroutines concurrently with each other,
// PROVIDED the underlying store is quiescent — evaluators sharing the
// set may race on lazy builds and the epoch-sync fallback, which the
// internal lock serialises. The maintenance entry points (ApplyUpdate,
// ApplyDelta, Reload) require exclusive access relative to the store
// mutation they mirror: the owner must not run them concurrently with
// evaluation, which is exactly the phase discipline of the workspace
// layer (hooks and fan-out never overlap the store phase).
type IndexSet struct {
	db *dyndb.Database

	// mu guards idx, epoch and rebuilds. Concurrent evaluators hold the
	// read lock on the Get fast path; lazy builds, the epoch-sync
	// fallback and the maintenance entry points hold the write lock.
	// Published *Index values are mutated only under the write lock, so a
	// pointer returned by Get stays internally consistent for every
	// concurrent reader until the next maintenance call.
	mu       sync.RWMutex
	idx      map[indexKey]*Index
	epoch    uint64 // store epoch the indexes reflect
	rebuilds uint64 // epoch-mismatch fallbacks that dropped built indexes
}

type indexKey struct {
	rel  string
	mask uint32
}

// Index maps the projection of tuples onto the mask's positions to the
// set of matching tuples. Buckets are keyed directly by the projected
// tuple in a tuplekey.Map, so the probe path (bucket) performs no string
// encoding and no per-call allocation.
type Index struct {
	mask    uint32
	arity   int
	buckets *tuplekey.Map[*ixBucket] // projected tuple → bucket
	scratch []Value                  // projection scratch, mutators only
}

// ixBucket holds the tuples sharing one projection: a dense slice for
// allocation-free iteration plus a position map for O(1) removal.
type ixBucket struct {
	pos    *tuplekey.Map[int] // stored tuple → index into tuples
	tuples [][]Value
}

func newIndex(mask uint32, arity int) *Index {
	return &Index{mask: mask, arity: arity, buckets: tuplekey.NewMap[*ixBucket](0)}
}

// NewIndexSet returns an empty index set over db, synchronised to its
// current epoch.
func NewIndexSet(db *dyndb.Database) *IndexSet {
	return &IndexSet{db: db, idx: make(map[indexKey]*Index), epoch: db.Epoch()}
}

// Epoch returns the store epoch the indexes reflect.
func (s *IndexSet) Epoch() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.epoch
}

// Synced reports whether the set is up to date with its store: false
// means the next Get will take the rebuild fallback.
func (s *IndexSet) Synced() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.epoch == s.db.Epoch()
}

// Built returns the number of built indexes. Owners use it to skip
// computing an incremental reconciliation no index would benefit from.
func (s *IndexSet) Built() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.idx)
}

// Rebuilds returns how many times the epoch-sync fallback dropped built
// indexes because the store moved without notification. In steady state
// (an owner that reports every mutation) it stays zero; a nonzero value
// means some store movement bypassed the maintenance entry points and
// indexes were silently rebuilt by relation scans.
func (s *IndexSet) Rebuilds() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.rebuilds
}

// IndexedRelations returns the set of relations with at least one built
// index. A reconciliation diff (Reload) only needs to cover these:
// commands on any other relation are dropped by the maintenance loop
// anyway.
func (s *IndexSet) IndexedRelations() map[string]bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]bool, len(s.idx))
	for k := range s.idx { //dyncq:allow determinism builds an order-free set, iteration order cannot leak
		out[k.rel] = true
	}
	return out
}

// syncLocked is the rebuild fallback: if the store moved without
// notifying the set, every index is dropped (to be rebuilt lazily) and
// the epoch resynchronised. Caller holds the write lock.
func (s *IndexSet) syncLocked() {
	cur := s.db.Epoch()
	if s.epoch == cur {
		return
	}
	if len(s.idx) > 0 {
		s.idx = make(map[indexKey]*Index)
		s.rebuilds++
	}
	s.epoch = cur
}

// Get returns the index for (rel, mask), building it by a relation scan if
// it does not exist yet. A store that moved without notification first
// invalidates every index (see IndexSet). Safe for concurrent use by any
// number of evaluators while the store is quiescent: the common case (set
// synced, index built) takes only the read lock.
func (s *IndexSet) Get(rel string, mask uint32) *Index {
	k := indexKey{rel, mask}
	storeEpoch := s.db.Epoch()
	s.mu.RLock()
	if s.epoch == storeEpoch {
		if ix, ok := s.idx[k]; ok {
			s.mu.RUnlock()
			return ix
		}
	}
	s.mu.RUnlock()

	s.mu.Lock()
	defer s.mu.Unlock()
	s.syncLocked()
	if ix, ok := s.idx[k]; ok {
		return ix
	}
	r := s.db.Relation(rel)
	arity := 0
	if r != nil {
		arity = r.Arity()
	}
	ix := newIndex(mask, arity)
	if r != nil {
		r.Each(func(t []Value) bool {
			ix.add(t)
			return true
		})
	}
	s.idx[k] = ix
	return ix
}

// ApplyUpdate maintains all existing indexes on u.Rel for one command
// that changed the database. Call it after the store applied the
// command, exactly once per store-changing command, so the set's epoch
// advances in lockstep with the store's.
func (s *IndexSet) ApplyUpdate(u dyndb.Update) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.epoch++
	s.applyOne(u)
}

//dyncq:hot
func (s *IndexSet) applyOne(u dyndb.Update) {
	for k, ix := range s.idx { //dyncq:allow determinism per-index maintenance is independent, any visit order yields the same indexes
		if k.rel != u.Rel {
			continue
		}
		if u.Op == dyndb.OpInsert {
			ix.add(u.Tuple)
		} else {
			ix.remove(u.Tuple)
		}
	}
}

// ApplyDelta maintains all existing indexes under a net delta the store
// already applied (each command having changed the database — e.g. the
// survivors handed to dyndb.ApplyNetDelta). The epoch advances by the
// delta length, staying in lockstep with the store.
func (s *IndexSet) ApplyDelta(survivors []dyndb.Update) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.epoch += uint64(len(survivors))
	if len(s.idx) == 0 {
		return
	}
	for _, u := range survivors {
		s.applyOne(u)
	}
}

// Reload reconciles the set with a store whose contents were wholesale
// replaced (Clear + CopyFrom): diff must be a net delta transforming the
// pre-replacement contents into the current ones. Existing indexes are
// patched tuple by tuple — the incremental alternative to the rebuild
// fallback a bare Clear would trigger — and the epoch resynchronises to
// the store's current value. With no built indexes it only resyncs.
func (s *IndexSet) Reload(diff []dyndb.Update) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.idx) > 0 {
		for _, u := range diff {
			s.applyOne(u)
		}
	}
	s.epoch = s.db.Epoch()
}

// proj writes the masked positions of t into the index's scratch slice
// and returns it. Mutators only (add/remove run under the owning set's
// write lock); the concurrent read path (bucket) never touches scratch.
//
//dyncq:hot
func (ix *Index) proj(t []Value) []Value {
	p := ix.scratch[:0]
	for j := range t {
		if ix.mask&(1<<uint(j)) != 0 {
			p = append(p, t[j])
		}
	}
	ix.scratch = p
	return p
}

//dyncq:hot
func (ix *Index) add(t []Value) {
	p := ix.proj(t)
	b, ok := ix.buckets.Get(p)
	if !ok {
		b = &ixBucket{pos: tuplekey.NewMap[int](0)}
		ix.buckets.Put(append([]Value(nil), p...), b) //dyncq:allow hotalloc first insert into a fresh bucket only; the bucket key must outlive the scratch projection
	}
	if _, ok := b.pos.Get(t); ok {
		return
	}
	stored := append([]Value(nil), t...) //dyncq:allow hotalloc audited per-tuple copy: the index must own its tuples
	b.pos.Put(stored, len(b.tuples))
	b.tuples = append(b.tuples, stored) //dyncq:allow hotalloc bucket growth is amortised; remove() backfills so capacity is reused
}

//dyncq:hot
func (ix *Index) remove(t []Value) {
	p := ix.proj(t)
	b, ok := ix.buckets.Get(p)
	if !ok {
		return
	}
	i, ok := b.pos.Get(t)
	if !ok {
		return
	}
	// Swap-delete from the dense slice, keeping the position map exact.
	last := len(b.tuples) - 1
	if i != last {
		moved := b.tuples[last]
		b.tuples[i] = moved
		b.pos.Put(moved, i)
	}
	b.tuples[last] = nil
	b.tuples = b.tuples[:last]
	b.pos.Delete(t)
	if len(b.tuples) == 0 {
		ix.buckets.Delete(p)
	}
}

// bucket returns the tuples whose masked positions equal boundVals (in
// mask position order). The returned slice is owned by the index and
// valid until its next mutation; callers must not modify it. No
// allocation and no key encoding happen on this path.
//
//dyncq:hot
func (ix *Index) bucket(boundVals []Value) [][]Value {
	b, ok := ix.buckets.Get(boundVals)
	if !ok {
		return nil
	}
	return b.tuples
}

// SanityCheck verifies that the index set is consistent with its database
// (every indexed tuple present, every relation tuple indexed, every
// bucket's position map exact). Intended for tests; cost is linear in the
// database and indexes.
func (s *IndexSet) SanityCheck() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for k, ix := range s.idx { //dyncq:allow determinism test-only diagnostic; which violation is reported first may vary, presence does not
		count := 0
		var err error
		ix.buckets.Range(func(_ []Value, b *ixBucket) bool {
			if b.pos.Len() != len(b.tuples) {
				err = fmt.Errorf("index (%s,%b) bucket has %d tuples but %d positions", k.rel, k.mask, len(b.tuples), b.pos.Len())
				return false
			}
			for i, t := range b.tuples {
				count++
				if !s.db.Has(k.rel, t...) {
					err = fmt.Errorf("index (%s,%b) holds stale tuple %v", k.rel, k.mask, t)
					return false
				}
				if at, ok := b.pos.Get(t); !ok || at != i {
					err = fmt.Errorf("index (%s,%b) position map wrong for %v", k.rel, k.mask, t)
					return false
				}
			}
			return true
		})
		if err != nil {
			return err
		}
		r := s.db.Relation(k.rel)
		want := 0
		if r != nil {
			want = r.Len()
		}
		if count != want {
			return fmt.Errorf("index (%s,%b) has %d tuples, relation has %d", k.rel, k.mask, count, want)
		}
	}
	return nil
}
