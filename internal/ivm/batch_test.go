package ivm

import (
	"math/rand"
	"testing"

	"dyncq/internal/cq"
	"dyncq/internal/dyndb"
	"dyncq/internal/eval"
	"dyncq/internal/tuplekey"
	"dyncq/internal/workload"
)

// checkAgainstOracle compares the maintainer's materialised result (and
// multiplicities) against full evaluation of the query over db.
func checkAgainstOracle(t *testing.T, m *Maintainer, q *cq.Query, db *dyndb.Database, ctx string) {
	t.Helper()
	want := eval.CountValuations(q, db, nil, nil)
	if len(want) != len(m.result) {
		t.Fatalf("%s: result has %d tuples, oracle %d", ctx, len(m.result), len(want))
	}
	for k, c := range want {
		if got := m.result[k]; got != c {
			t.Fatalf("%s: multiplicity of %v = %d, oracle %d", ctx, tuplekey.Decode(k), got, c)
		}
	}
	if err := m.idx.SanityCheck(); err != nil {
		t.Fatalf("%s: %v", ctx, err)
	}
}

// TestApplyBatchMatchesOracle drives hard (non-q-hierarchical) queries,
// including self-joins, through mixed batches of several sizes and checks
// the materialised result and every multiplicity against the static
// oracle after each batch. Small batch sizes exercise the batched delta
// path, large ones the full-rebuild crossover.
func TestApplyBatchMatchesOracle(t *testing.T) {
	queries := []string{
		"Q(x,y) :- S(x), E(x,y), T(y)",     // ϕS-E-T, the canonical hard query
		"Q(x) :- E(x,y), T(y)",             // ϕE-T
		"Q(x,z) :- E(x,y), E(y,z)",         // self-join path query
		"Q() :- S(x), E(x,y), T(y)",        // Boolean hard query
		"Q(x,y) :- E(x,y), E(y,x), E(x,x)", // triple self-join
	}
	for _, qs := range queries {
		q := cq.MustParse(qs)
		for _, size := range []int{1, 3, 17, 1000} {
			rng := rand.New(rand.NewSource(int64(31 + size)))
			m, err := New(q)
			if err != nil {
				t.Fatal(err)
			}
			db := dyndb.New()
			stream := workload.RandomStream(rng, q.Schema(), 5, 160, 0.35)
			for from := 0; from < len(stream); from += size {
				to := from + size
				if to > len(stream) {
					to = len(stream)
				}
				chunk := stream[from:to]
				if _, err := m.ApplyBatch(chunk); err != nil {
					t.Fatalf("query %s size %d: %v", q, size, err)
				}
				for _, u := range chunk {
					if _, err := db.Apply(u); err != nil {
						t.Fatal(err)
					}
				}
				checkAgainstOracle(t, m, q, db, qs)
			}
		}
	}
}

// TestApplyBatchDeltaPathMatchesOracle pins the heuristic to the batched
// delta path (batch far smaller than the database) and checks mixed
// insert/delete batches against the oracle.
func TestApplyBatchDeltaPathMatchesOracle(t *testing.T) {
	q := cq.MustParse("Q(x,y) :- S(x), E(x,y), T(y)")
	rng := rand.New(rand.NewSource(5))
	db := workload.RandomDatabase(rng, q.Schema(), 8, 60)
	m, err := New(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(db); err != nil {
		t.Fatal(err)
	}
	oracle := db.Clone()
	stream := workload.RandomStream(rng, q.Schema(), 8, 120, 0.45)
	for from := 0; from < len(stream); from += 6 {
		to := from + 6
		if to > len(stream) {
			to = len(stream)
		}
		chunk := stream[from:to]
		// 6 net commands against ~180 tuples keeps applied*3 < |D|+applied,
		// so this exercises applyDeltaSet, not the rebuild.
		if _, err := m.ApplyBatch(chunk); err != nil {
			t.Fatal(err)
		}
		for _, u := range chunk {
			if _, err := oracle.Apply(u); err != nil {
				t.Fatal(err)
			}
		}
		checkAgainstOracle(t, m, q, oracle, "delta path")
	}
}

// TestApplyBatchCoalesces: cancelled pairs must produce no work and no
// result change.
func TestApplyBatchCoalesces(t *testing.T) {
	q := cq.MustParse("Q(x,y) :- S(x), E(x,y), T(y)")
	m, err := New(q)
	if err != nil {
		t.Fatal(err)
	}
	n, err := m.ApplyBatch([]dyndb.Update{
		dyndb.Insert("E", 1, 2),
		dyndb.Delete("E", 1, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 || m.Cardinality() != 0 || m.Count() != 0 {
		t.Errorf("cancelled batch: net=%d |D|=%d count=%d, want all 0", n, m.Cardinality(), m.Count())
	}
	// Duplicate inserts coalesce to one net command.
	n, err = m.ApplyBatch([]dyndb.Update{
		dyndb.Insert("S", 1),
		dyndb.Insert("S", 1),
		dyndb.Insert("S", 1),
	})
	if err != nil || n != 1 {
		t.Fatalf("net = %d (%v), want 1", n, err)
	}
}

// TestApplyBatchAtomicValidation: an arity error anywhere in the batch
// rejects the whole batch before any change.
func TestApplyBatchAtomicValidation(t *testing.T) {
	q := cq.MustParse("Q(x,y) :- S(x), E(x,y), T(y)")
	m, err := New(q)
	if err != nil {
		t.Fatal(err)
	}
	n, err := m.ApplyBatch([]dyndb.Update{
		dyndb.Insert("S", 1),
		dyndb.Insert("E", 1), // wrong arity
	})
	if err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if n != 0 || m.Cardinality() != 0 {
		t.Errorf("batch partially applied: net=%d |D|=%d, want 0 0", n, m.Cardinality())
	}
}

// TestLoadUsesRebuild: loading an initial database into an empty
// maintainer must produce the same state as incremental replay (it takes
// the one-shot rebuild path internally).
func TestLoadUsesRebuild(t *testing.T) {
	q := cq.MustParse("Q(x,y) :- S(x), E(x,y), T(y)")
	rng := rand.New(rand.NewSource(2))
	db := workload.RandomDatabase(rng, q.Schema(), 10, 80)
	bulk, err := New(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := bulk.Load(db); err != nil {
		t.Fatal(err)
	}
	checkAgainstOracle(t, bulk, q, db, "bulk load")
	inc, err := New(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := inc.ApplyAll(db.Updates()); err != nil {
		t.Fatal(err)
	}
	if bulk.Count() != inc.Count() {
		t.Errorf("bulk count %d != incremental count %d", bulk.Count(), inc.Count())
	}
}

// TestApplyBatchDbErrorRejectsAtomically: a db-level arity conflict —
// against a stored relation outside the query schema, or within the
// batch's own declarations — rejects the whole batch with nothing
// applied, on both the rebuild and the delta path (NetDelta validates
// before anything moves).
func TestApplyBatchDbErrorRejectsAtomically(t *testing.T) {
	q := cq.MustParse("Q(x) :- E(x,y)")
	// Rebuild path: empty maintainer, batch crosses the heuristic. The
	// batch declares X with arity 1 and then contradicts itself.
	m, err := New(q)
	if err != nil {
		t.Fatal(err)
	}
	n, err := m.ApplyBatch([]dyndb.Update{
		dyndb.Insert("E", 1, 2),
		dyndb.Insert("X", 1),
		dyndb.Insert("X", 1, 2), // clashes with the batch's own declaration
	})
	if err == nil {
		t.Fatal("expected a db-level arity error")
	}
	if n != 0 || m.Cardinality() != 0 || m.Count() != 0 {
		t.Errorf("rejected batch left state behind: n=%d |D|=%d count=%d", n, m.Cardinality(), m.Count())
	}
	checkAgainstOracle(t, m, q, m.db, "rebuild path after rejection")
	if _, err := m.Apply(dyndb.Insert("E", 3, 4)); err != nil {
		t.Fatal(err)
	}
	if m.Count() != 1 {
		t.Errorf("count = %d after recovery insert, want 1", m.Count())
	}
	// Delta path: batch small against a populated database, conflicting
	// with a stored foreign relation.
	rng := rand.New(rand.NewSource(3))
	db := workload.RandomDatabase(rng, q.Schema(), 8, 60)
	m2, err := New(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Load(db); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Apply(dyndb.Insert("X", 1)); err != nil {
		t.Fatal(err)
	}
	before := m2.Cardinality()
	if _, err := m2.ApplyBatch([]dyndb.Update{
		dyndb.Insert("E", 100, 200),
		dyndb.Insert("X", 1, 2), // X exists with arity 1: rejected atomically
	}); err == nil {
		t.Fatal("expected a db-level arity error")
	}
	if m2.Cardinality() != before {
		t.Errorf("|D| = %d after rejected batch, want %d", m2.Cardinality(), before)
	}
	checkAgainstOracle(t, m2, q, m2.db, "delta path after rejection")
}
