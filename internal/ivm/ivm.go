// Package ivm is a classical incremental view maintenance (IVM) baseline:
// it maintains the materialised result of an arbitrary conjunctive query
// (no q-hierarchy required) with counting-based delta processing, the
// approach of Gupta–Mumick–Subrahmanian that the paper cites as the
// practical state of the art ([22] in Section 1.2).
//
// For every head tuple the maintainer stores its multiplicity: the number
// of valuations (homomorphisms over all variables) projecting to it.
// An update to relation R triggers the delta rule
//
//	Δ = Σ_{∅≠S⊆occ(R)} (−1)^{|S|+1} · N_S,
//
// where occ(R) is the set of atoms over R and N_S counts valuations with
// the atoms in S pinned to the updated tuple, evaluated over the post-state
// (insert) or pre-state (delete) — the inclusion–exclusion form of the
// standard delta query, correct under set semantics and self-joins.
//
// The point of this baseline in the reproduction: its update cost is a
// residual join, i.e. Θ(n) or worse for the paper's hard queries
// (ϕS-E-T, ϕE-T, ϕ1), whereas the engine in internal/core achieves O(1) —
// but only for q-hierarchical queries. Theorems 3.3–3.5 say that the gap
// is fundamental, not an artefact of this particular baseline.
package ivm

import (
	"fmt"
	"sort"

	"dyncq/internal/cq"
	"dyncq/internal/dyndb"
	"dyncq/internal/eval"
	"dyncq/internal/tuplekey"
)

// Value is a database constant.
type Value = dyndb.Value

// Maintainer keeps |ϕ(D)| and the materialised ϕ(D) up to date under
// single-tuple updates, for any conjunctive query. Not safe for
// concurrent use.
type Maintainer struct {
	query *cq.Query
	db    *dyndb.Database
	idx   *eval.IndexSet
	// result maps encoded head tuples to their valuation multiplicity.
	result map[string]int64
	// occ maps relation names to the indices of atoms over them.
	occ     map[string][]int
	schema  map[string]int
	version uint64
	// shared marks a maintainer bound to an externally owned store
	// (NewOnStore): m.db and m.idx belong to the workspace, which applies
	// updates to them exactly once and drives the delta propagation
	// through the *Shared hooks. The self-driving entry points refuse to
	// run in this mode.
	shared bool
	// rebuildPending is set by BeginSharedBatch when the batch is large
	// enough that one full re-evaluation beats per-relation delta joins;
	// the delta hooks then no-op and FinishSharedBatch rebuilds.
	rebuildPending bool
}

// New returns a maintainer for q over the empty database. Any valid CQ is
// accepted.
func New(q *cq.Query) (*Maintainer, error) {
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("ivm.New: %w", err)
	}
	m := &Maintainer{
		query:  q,
		db:     dyndb.New(),
		result: make(map[string]int64),
		occ:    make(map[string][]int),
		schema: q.Schema(),
	}
	m.idx = eval.NewIndexSet(m.db)
	for i, a := range q.Atoms {
		m.occ[a.Rel] = append(m.occ[a.Rel], i)
	}
	return m, nil
}

// Query returns the maintained query.
func (m *Maintainer) Query() *cq.Query { return m.query }

// Insert applies an insertion, reporting whether the database changed.
func (m *Maintainer) Insert(rel string, tuple ...Value) (bool, error) {
	return m.Apply(dyndb.Insert(rel, tuple...))
}

// Delete applies a deletion, reporting whether the database changed.
func (m *Maintainer) Delete(rel string, tuple ...Value) (bool, error) {
	return m.Apply(dyndb.Delete(rel, tuple...))
}

// Apply executes one update command and incrementally maintains the
// materialised result. Cost: the residual joins N_S (data-dependent; this
// is the baseline the engine's O(1) is compared against).
func (m *Maintainer) Apply(u dyndb.Update) (bool, error) {
	if m.shared {
		return false, errSharedStore
	}
	if want, ok := m.schema[u.Rel]; ok && want != len(u.Tuple) {
		return false, fmt.Errorf("ivm: %s has arity %d in query, got tuple of length %d", u.Rel, want, len(u.Tuple))
	}
	occs := m.occ[u.Rel]
	if u.Op == dyndb.OpInsert {
		changed, err := m.db.Apply(u) //dyncq:allow epochstep private store (shared mode rejected above); idx.ApplyUpdate follows in lockstep
		if err != nil || !changed {
			return changed, err
		}
		m.idx.ApplyUpdate(u)
		m.version++
		// Post-state deltas: valuations using the new tuple at least once.
		m.applyDelta(occs, u.Tuple, +1)
		return true, nil
	}
	// Deletion: compute the delta on the pre-state, then remove.
	if !m.db.Has(u.Rel, u.Tuple...) {
		return false, nil
	}
	m.version++
	m.applyDelta(occs, u.Tuple, -1)
	if _, err := m.db.Apply(u); err != nil { //dyncq:allow epochstep private store (shared mode rejected above); idx.ApplyUpdate follows in lockstep
		return false, err
	}
	m.idx.ApplyUpdate(u)
	return true, nil
}

// ApplyAll executes a sequence of updates, stopping at the first error.
func (m *Maintainer) ApplyAll(updates []dyndb.Update) error {
	for _, u := range updates {
		if _, err := m.Apply(u); err != nil {
			return err
		}
	}
	return nil
}

// ApplyBatch executes a batch of update commands with batched delta
// processing. The batch is reduced to its net delta against the current
// database (dyndb.NetDelta: coalesced, arity-validated against the
// query schema and the stored relations, no-ops dropped); the surviving
// deltas are grouped per relation, and each relation's deletions and
// insertions are propagated by one inclusion–exclusion delta evaluation
// per occurrence subset with the subset's atoms restricted to the whole
// delta set (eval.Restricted) — the residual join against the base
// relations runs once per batch instead of once per updated tuple. A
// batch that rewrites a large fraction of the database instead applies
// the whole delta through the sequential store path and rebuilds the
// materialised result with a single full evaluation, the static
// preprocessing path. Returns the number of net commands that changed
// the database. Validation is atomic: any arity error rejects the whole
// batch with nothing applied (matching core.Engine.ApplyBatch and the
// workspace front door).
func (m *Maintainer) ApplyBatch(updates []dyndb.Update) (int, error) {
	if m.shared {
		return 0, errSharedStore
	}
	for _, u := range updates {
		if want, ok := m.schema[u.Rel]; ok && want != len(u.Tuple) {
			return 0, fmt.Errorf("ivm: %s has arity %d in query, got tuple of length %d", u.Rel, want, len(u.Tuple))
		}
	}
	survivors, err := m.db.NetDelta(updates)
	if err != nil {
		return 0, fmt.Errorf("ivm: %w", err)
	}
	if len(survivors) == 0 {
		return 0, nil
	}
	m.version++
	mustApply := func(u dyndb.Update) {
		if changed, err := m.db.Apply(u); err != nil || !changed { //dyncq:allow epochstep private store (shared mode rejected above); idx.ApplyUpdate follows in lockstep
			panic(fmt.Sprintf("ivm: validated delta failed to apply at %s (changed=%v err=%v)", u, changed, err))
		}
		m.idx.ApplyUpdate(u)
	}
	// Heuristic crossover: once the net batch is a third or more of the
	// resulting database, |batch| residual joins cost more than rebuilding
	// the result from scratch once. In particular a bulk load into an
	// empty maintainer always takes the rebuild path — before the
	// per-relation grouping below, which only the delta path reads.
	if len(survivors)*3 >= m.db.Cardinality()+len(survivors) {
		for _, u := range survivors {
			mustApply(u)
		}
		m.result = eval.CountValuations(m.query, m.db, nil, m.idx)
		return len(survivors), nil
	}
	type relDelta struct {
		dels, ins [][]Value
	}
	deltas := make(map[string]*relDelta)
	var order []string
	for _, u := range survivors {
		d := deltas[u.Rel]
		if d == nil {
			d = &relDelta{}
			deltas[u.Rel] = d
			order = append(order, u.Rel)
		}
		if u.Op == dyndb.OpInsert {
			d.ins = append(d.ins, u.Tuple)
		} else {
			d.dels = append(d.dels, u.Tuple)
		}
	}
	for _, rel := range order {
		d := deltas[rel]
		occs := m.occ[rel]
		if len(d.dels) > 0 {
			// Pre-state deltas: valuations losing at least one deleted tuple.
			m.applyDeltaSet(occs, d.dels, -1)
			for _, t := range d.dels {
				mustApply(dyndb.Delete(rel, t...))
			}
		}
		if len(d.ins) > 0 {
			for _, t := range d.ins {
				mustApply(dyndb.Insert(rel, t...))
			}
			// Post-state deltas: valuations using at least one new tuple.
			m.applyDeltaSet(occs, d.ins, +1)
		}
	}
	return len(survivors), nil
}

// SharedBatchRebuilds reports whether the batch opened by
// BeginSharedBatch chose the full-rebuild crossover: the per-relation
// delta hooks will no-op, so the workspace is free to apply the store
// phase shard-parallel instead of relation-phased. Only meaningful
// between BeginSharedBatch and FinishSharedBatch.
func (m *Maintainer) SharedBatchRebuilds() bool { return m.rebuildPending }

// Load performs the preprocessing phase for an initial database with
// reset-then-load semantics: after Load the maintainer represents
// exactly db, regardless of earlier updates — the uniform contract
// across all maintenance strategies (see pkg/dyncq.Session.Load). The
// materialised result is rebuilt with a single full evaluation
// (linear+join-cost preprocessing) instead of |D0| residual-join
// updates. A failed Load (a relation clashing with the query schema's
// arity) leaves the maintainer representing the EMPTY database; either
// way the prior state is discarded and the version advances.
func (m *Maintainer) Load(db *dyndb.Database) error {
	if m.shared {
		return errSharedStore
	}
	for _, rel := range db.Relations() {
		if want, ok := m.schema[rel]; ok && want != db.Relation(rel).Arity() {
			m.Reset(dyndb.New())
			return fmt.Errorf("ivm: %s has arity %d in query, %d in the loaded database", rel, want, db.Relation(rel).Arity())
		}
	}
	m.Reset(db)
	return nil
}

// Reset replaces the maintained database with db and rebuilds the
// materialised result by full evaluation (linear+join-cost preprocessing,
// the static analogue).
func (m *Maintainer) Reset(db *dyndb.Database) {
	m.db = db.Clone()
	m.idx = eval.NewIndexSet(m.db)
	m.result = eval.CountValuations(m.query, m.db, nil, m.idx)
	m.version++
}

// applyDelta adds sign × (number of valuations using the tuple in at
// least one occurrence) to the multiplicities, via inclusion–exclusion
// over nonempty occurrence subsets.
func (m *Maintainer) applyDelta(occs []int, tuple []Value, sign int64) {
	n := len(occs)
	for mask := 1; mask < 1<<uint(n); mask++ {
		pinned := eval.Pinned{}
		bits := 0
		for b := 0; b < n; b++ {
			if mask&(1<<uint(b)) != 0 {
				pinned[occs[b]] = tuple
				bits++
			}
		}
		coef := sign
		if bits%2 == 0 {
			coef = -sign
		}
		for k, c := range eval.CountValuations(m.query, m.db, pinned, m.idx) {
			nv := m.result[k] + coef*c
			if nv == 0 {
				delete(m.result, k)
			} else {
				m.result[k] = nv
			}
		}
	}
}

// applyDeltaSet is the batch analogue of applyDelta: it adds sign × (the
// number of valuations using at least one of the given tuples in at least
// one occurrence) to the multiplicities, via inclusion–exclusion over
// nonempty occurrence subsets with the subset's atoms restricted to the
// whole tuple set. All tuples must share the delta's direction (all
// inserted, evaluated post-state, or all deleted, evaluated pre-state).
func (m *Maintainer) applyDeltaSet(occs []int, tuples [][]Value, sign int64) {
	if len(occs) == 0 || len(tuples) == 0 {
		return
	}
	n := len(occs)
	for mask := 1; mask < 1<<uint(n); mask++ {
		restricted := eval.Restricted{}
		bits := 0
		for b := 0; b < n; b++ {
			if mask&(1<<uint(b)) != 0 {
				restricted[occs[b]] = tuples
				bits++
			}
		}
		coef := sign
		if bits%2 == 0 {
			coef = -sign
		}
		for k, c := range eval.CountValuationsRestricted(m.query, m.db, nil, restricted, m.idx) {
			nv := m.result[k] + coef*c
			if nv == 0 {
				delete(m.result, k)
			} else {
				m.result[k] = nv
			}
		}
	}
}

// Count returns |ϕ(D)|: the number of distinct head tuples.
func (m *Maintainer) Count() uint64 { return uint64(len(m.result)) }

// Answer reports whether ϕ(D) is nonempty.
func (m *Maintainer) Answer() bool { return len(m.result) > 0 }

// Has reports whether the tuple is in ϕ(D).
func (m *Maintainer) Has(tuple []Value) bool {
	_, ok := m.result[tuplekey.String(tuple)]
	return ok
}

// Multiplicity returns the number of valuations projecting to the tuple
// (0 if absent).
func (m *Maintainer) Multiplicity(tuple []Value) int64 {
	return m.result[tuplekey.String(tuple)]
}

// Enumerate calls yield for every tuple in the materialised result until
// yield returns false. Order is unspecified. The slice passed to yield
// follows the uniform contract of pkg/dyncq.Session.Enumerate: it is
// owned by the callee and only valid during the call — copy it to retain
// it. (This backend happens to decode a fresh slice per tuple today, but
// callers must not rely on that.)
func (m *Maintainer) Enumerate(yield func(tuple []Value) bool) {
	for k := range m.result {
		if !yield(tuplekey.Decode(k)) {
			return
		}
	}
}

// Tuples returns the materialised result sorted lexicographically.
func (m *Maintainer) Tuples() [][]Value {
	out := make([][]Value, 0, len(m.result))
	for k := range m.result {
		out = append(out, tuplekey.Decode(k))
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for x := range a {
			if a[x] != b[x] {
				return a[x] < b[x]
			}
		}
		return false
	})
	return out
}

// Cardinality returns |D| of the maintained database.
func (m *Maintainer) Cardinality() int { return m.db.Cardinality() }

// ActiveDomainSize returns n = |adom(D)|.
func (m *Maintainer) ActiveDomainSize() int { return m.db.ActiveDomainSize() }
