package ivm

import (
	"math/rand"
	"testing"

	"dyncq/internal/cq"
	"dyncq/internal/dyndb"
	"dyncq/internal/eval"
	"dyncq/internal/workload"
)

func TestSETMaintenance(t *testing.T) {
	// ϕS-E-T is the paper's canonical hard query; IVM maintains it
	// correctly (just not with constant update time).
	m, err := New(cq.MustParse("Q(x,y) :- S(x), E(x,y), T(y)"))
	if err != nil {
		t.Fatal(err)
	}
	m.Insert("S", 1)
	m.Insert("E", 1, 10)
	if m.Answer() {
		t.Error("answer yes without T")
	}
	m.Insert("T", 10)
	if !m.Answer() || m.Count() != 1 {
		t.Errorf("answer=%v count=%d, want true 1", m.Answer(), m.Count())
	}
	m.Insert("E", 1, 11)
	m.Insert("T", 11)
	if m.Count() != 2 {
		t.Errorf("count = %d, want 2", m.Count())
	}
	m.Delete("S", 1)
	if m.Count() != 0 {
		t.Errorf("count = %d after deleting S(1), want 0", m.Count())
	}
	m.Insert("S", 1)
	if m.Count() != 2 {
		t.Errorf("count = %d after re-inserting S(1), want 2", m.Count())
	}
	if !m.Has([]Value{1, 10}) || !m.Has([]Value{1, 11}) {
		t.Errorf("result tuples wrong: %v", m.Tuples())
	}
}

func TestSelfJoinDeltas(t *testing.T) {
	// ϕ1(x,y) = Exx ∧ Exy ∧ Eyy: three occurrences of E; one inserted
	// tuple can serve several occurrences at once — the inclusion–
	// exclusion deltas must not double-count.
	m, err := New(cq.MustParse("Q(x,y) :- E(x,x), E(x,y), E(y,y)"))
	if err != nil {
		t.Fatal(err)
	}
	// Inserting a single loop: (1,1) serves all three occurrences.
	m.Insert("E", 1, 1)
	if m.Count() != 1 || m.Multiplicity([]Value{1, 1}) != 1 {
		t.Errorf("after loop: count=%d mult=%d, want 1 1", m.Count(), m.Multiplicity([]Value{1, 1}))
	}
	m.Insert("E", 2, 2)
	m.Insert("E", 1, 2)
	if m.Count() != 3 {
		t.Errorf("count = %d, want 3 {(1,1),(2,2),(1,2)}", m.Count())
	}
	m.Delete("E", 1, 1)
	if m.Count() != 1 || !m.Has([]Value{2, 2}) {
		t.Errorf("after deleting loop (1,1): count=%d tuples=%v, want only (2,2)", m.Count(), m.Tuples())
	}
	m.Insert("E", 1, 1)
	if m.Count() != 3 {
		t.Errorf("count = %d after re-insert, want 3", m.Count())
	}
}

func TestQuantifiedMultiplicities(t *testing.T) {
	// Q(x) = ∃y (Exy ∧ Ty): multiplicities track witnesses; the distinct
	// count collapses them.
	m, err := New(cq.MustParse("Q(x) :- E(x,y), T(y)"))
	if err != nil {
		t.Fatal(err)
	}
	m.Insert("T", 10)
	m.Insert("T", 11)
	m.Insert("E", 1, 10)
	m.Insert("E", 1, 11)
	if m.Count() != 1 || m.Multiplicity([]Value{1}) != 2 {
		t.Errorf("count=%d mult=%d, want 1 2", m.Count(), m.Multiplicity([]Value{1}))
	}
	m.Delete("E", 1, 10)
	if m.Count() != 1 || m.Multiplicity([]Value{1}) != 1 {
		t.Errorf("count=%d mult=%d, want 1 1", m.Count(), m.Multiplicity([]Value{1}))
	}
	m.Delete("T", 11)
	if m.Count() != 0 {
		t.Errorf("count = %d, want 0", m.Count())
	}
}

func TestBooleanQuery(t *testing.T) {
	m, err := New(cq.MustParse("Q() :- S(x), E(x,y), T(y)"))
	if err != nil {
		t.Fatal(err)
	}
	m.Insert("S", 1)
	m.Insert("E", 1, 2)
	m.Insert("T", 2)
	if !m.Answer() || m.Count() != 1 {
		t.Errorf("answer=%v count=%d, want yes 1", m.Answer(), m.Count())
	}
	m.Insert("E", 1, 3) // second witness; count stays 1 (empty tuple)
	m.Insert("T", 3)
	if m.Count() != 1 {
		t.Errorf("Boolean count = %d, want 1", m.Count())
	}
	m.Delete("T", 2)
	if !m.Answer() {
		t.Error("answer flipped although witness (1,3) remains")
	}
	m.Delete("T", 3)
	if m.Answer() {
		t.Error("answer yes with no witnesses")
	}
}

func TestDuplicateAndAbsentUpdates(t *testing.T) {
	m, err := New(cq.MustParse("Q(x) :- S(x)"))
	if err != nil {
		t.Fatal(err)
	}
	if ch, _ := m.Insert("S", 1); !ch {
		t.Error("first insert unchanged")
	}
	if ch, _ := m.Insert("S", 1); ch {
		t.Error("duplicate insert changed")
	}
	if m.Count() != 1 {
		t.Errorf("count = %d, want 1", m.Count())
	}
	if ch, _ := m.Delete("S", 2); ch {
		t.Error("absent delete changed")
	}
	if ch, _ := m.Delete("S", 1); !ch || m.Count() != 0 {
		t.Errorf("delete: ch=%v count=%d", ch, m.Count())
	}
}

func TestArityMismatch(t *testing.T) {
	m, err := New(cq.MustParse("Q(x) :- S(x)"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Insert("S", 1, 2); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestReset(t *testing.T) {
	q := cq.MustParse("Q(x,y) :- S(x), E(x,y), T(y)")
	m, err := New(q)
	if err != nil {
		t.Fatal(err)
	}
	db := dyndb.New()
	db.Insert("S", 1)
	db.Insert("E", 1, 2)
	db.Insert("T", 2)
	m.Reset(db)
	if m.Count() != 1 {
		t.Errorf("count after Reset = %d, want 1", m.Count())
	}
	// Mutating the source database must not affect the maintainer.
	db.Delete("T", 2)
	if m.Count() != 1 {
		t.Error("Reset did not clone the database")
	}
	// Incremental updates continue from the reset state.
	m.Delete("E", 1, 2)
	if m.Count() != 0 {
		t.Errorf("count = %d after delete, want 0", m.Count())
	}
}

// TestRandomAgainstOracle drives random queries (arbitrary CQs — both
// q-hierarchical and hard ones, with self-joins) through random update
// streams, comparing the materialised result with the static oracle after
// every step.
func TestRandomAgainstOracle(t *testing.T) {
	queries := []*cq.Query{
		cq.MustParse("Q(x,y) :- S(x), E(x,y), T(y)"),
		cq.MustParse("Q(x) :- E(x,y), T(y)"),
		cq.MustParse("Q(x,y) :- E(x,x), E(x,y), E(y,y)"),
		cq.MustParse("Q() :- E(x,y), E(y,z)"),
		cq.MustParse("Q(x,z) :- E(x,y), F(y,z)"),
		cq.MustParse("Q(y) :- E(x,y), T(y)"),
		cq.MustParse("Q(x,y,z1,z2) :- E(x,x), E(x,y), E(y,y), E(z1,z2)"),
	}
	rng := rand.New(rand.NewSource(17))
	steps := 80
	if testing.Short() {
		steps = 30
	}
	for qi, q := range queries {
		m, err := New(q)
		if err != nil {
			t.Fatal(err)
		}
		db := dyndb.New()
		stream := workload.RandomStream(rng, q.Schema(), 4, steps, 0.4)
		for si, u := range stream {
			if _, err := m.Apply(u); err != nil {
				t.Fatal(err)
			}
			db.Apply(u)
			want := eval.Evaluate(q, db)
			if int(m.Count()) != want.Len() {
				t.Fatalf("query %d (%s) step %d (%s): count %d, oracle %d",
					qi, q, si, u, m.Count(), want.Len())
			}
			for _, tup := range m.Tuples() {
				if !want.Has(tup) {
					t.Fatalf("query %d step %d: spurious %v", qi, si, tup)
				}
			}
		}
	}
}

// TestRandomQHierarchicalAgainstOracle additionally cross-checks IVM on
// generated q-hierarchical queries, where it must agree with both the
// oracle and (transitively, via the core tests) the dynamic engine.
func TestRandomQHierarchicalAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	trials := 20
	if testing.Short() {
		trials = 5
	}
	for trial := 0; trial < trials; trial++ {
		q := workload.RandomQHierarchical(rng, workload.DefaultQHOptions())
		m, err := New(q)
		if err != nil {
			t.Fatal(err)
		}
		db := dyndb.New()
		for si, u := range workload.RandomStream(rng, q.Schema(), 3, 60, 0.35) {
			m.Apply(u)
			db.Apply(u)
			if want := eval.Count(q, db); int(m.Count()) != want {
				t.Fatalf("trial %d (%s) step %d: count %d, oracle %d", trial, q, si, m.Count(), want)
			}
		}
	}
}
