package ivm

import (
	"errors"
	"fmt"

	"dyncq/internal/cq"
	"dyncq/internal/dyndb"
	"dyncq/internal/eval"
)

// This file implements the maintainer's shared-store mode, the IVM half
// of the workspace front door (pkg/dyncq.Workspace): the store and its
// eval.IndexSet are owned by the workspace and shared by every
// registered query, so both are mutated once per batch regardless of
// how many IVM-backed queries are live. Delta processing needs the
// store in a specific state relative to each relation's mutation —
// deletion deltas are evaluated on the pre-state, insertion deltas on
// the post-state — so the workspace drives the maintainer through
// per-relation hooks interleaved with the store mutation:
//
//	BeginSharedBatch(survivors)            // crossover decision
//	for each relation of the net delta:
//	    PreDeleteShared(rel, dels)         // store still pre-state here
//	    <workspace deletes dels, updates the index>
//	    <workspace inserts ins, updates the index>
//	    PostInsertShared(rel, ins)         // store post-state here
//	FinishSharedBatch()                    // rebuild if crossover chose it
//
// This is exactly the relation-phased schedule of ApplyBatch, so the
// maintained multiplicities are identical to a private-store maintainer
// replaying the same stream.

// errSharedStore is returned by the self-driving entry points of a
// maintainer bound to an external store.
var errSharedStore = errors.New("ivm: maintainer is bound to a shared store; updates are driven by its workspace")

// NewOnStore returns a maintainer for q bound to an externally owned
// store and index set (idx must be over store). The maintainer starts
// with an empty materialised result: if store is already non-empty, call
// RebuildShared to evaluate over it.
func NewOnStore(q *cq.Query, store *dyndb.Database, idx *eval.IndexSet) (*Maintainer, error) {
	m, err := New(q)
	if err != nil {
		return nil, err
	}
	m.db = store
	m.idx = idx
	m.shared = true
	return m, nil
}

// BeginSharedBatch opens a batch of the given net-delta size (commands
// that will change the store). It applies the same crossover heuristic
// as ApplyBatch: once the delta is a third or more of the resulting
// database, |delta| residual joins cost more than one full
// re-evaluation, so the per-relation hooks no-op and FinishSharedBatch
// rebuilds from the post-state store.
func (m *Maintainer) BeginSharedBatch(survivors int) {
	m.rebuildPending = survivors*3 >= m.db.Cardinality()+survivors
	m.version++
}

// PreDeleteShared propagates the deletion delta of one relation,
// evaluated on the pre-state: the workspace must call it BEFORE deleting
// the tuples from the shared store. Every tuple must currently be
// present (the workspace's net-delta filter guarantees it).
func (m *Maintainer) PreDeleteShared(rel string, tuples [][]Value) {
	if m.rebuildPending || len(tuples) == 0 {
		return
	}
	occs := m.occ[rel]
	if len(occs) == 0 {
		return
	}
	if len(tuples) == 1 {
		// Single-tuple deltas take the pinned-atom path: substituting the
		// constants beats scanning a restriction set of size one.
		m.applyDelta(occs, tuples[0], -1)
		return
	}
	m.applyDeltaSet(occs, tuples, -1)
}

// PostInsertShared propagates the insertion delta of one relation,
// evaluated on the post-state: the workspace must call it AFTER
// inserting the tuples into the shared store (and its index).
func (m *Maintainer) PostInsertShared(rel string, tuples [][]Value) {
	if m.rebuildPending || len(tuples) == 0 {
		return
	}
	occs := m.occ[rel]
	if len(occs) == 0 {
		return
	}
	if len(tuples) == 1 {
		m.applyDelta(occs, tuples[0], +1)
		return
	}
	m.applyDeltaSet(occs, tuples, +1)
}

// FinishSharedBatch closes the batch opened by BeginSharedBatch: if the
// crossover chose a rebuild, the materialised result is recomputed with
// one full evaluation over the (now post-state) shared store.
func (m *Maintainer) FinishSharedBatch() {
	if !m.rebuildPending {
		return
	}
	m.rebuildPending = false
	m.result = eval.CountValuations(m.query, m.db, nil, m.idx)
}

// RebuildShared rebinds the maintainer to idx (the workspace recreates
// the index set when it replaces the store's contents) and recomputes
// the materialised result with one full evaluation over the shared
// store. A schema clash (a store relation whose arity contradicts the
// query) fails with the result cleared.
func (m *Maintainer) RebuildShared(idx *eval.IndexSet) error {
	m.idx = idx
	m.version++
	for _, rel := range m.db.Relations() {
		if want, ok := m.schema[rel]; ok && want != m.db.Relation(rel).Arity() {
			m.result = make(map[string]int64)
			return fmt.Errorf("ivm: %s has arity %d in query, %d in the shared store", rel, want, m.db.Relation(rel).Arity())
		}
	}
	m.result = eval.CountValuations(m.query, m.db, nil, m.idx)
	return nil
}

// ClearShared discards the materialised result and rebinds to idx,
// leaving the maintainer representing the empty database. The workspace
// uses it when a failed Load empties the shared store.
func (m *Maintainer) ClearShared(idx *eval.IndexSet) {
	m.idx = idx
	m.result = make(map[string]int64)
	m.rebuildPending = false
	m.version++
}
