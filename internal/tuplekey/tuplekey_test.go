package tuplekey

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStringDecodeRoundTrip(t *testing.T) {
	cases := [][]int64{
		nil,
		{},
		{0},
		{1, 2, 3},
		{-1, -2, 1 << 62, -(1 << 62)},
		{42},
	}
	for _, c := range cases {
		got := Decode(String(c))
		if !Equal(got, c) {
			t.Errorf("Decode(String(%v)) = %v", c, got)
		}
	}
}

func TestStringInjective(t *testing.T) {
	seen := map[string][]int64{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		k := randTuple(rng, rng.Intn(5))
		s := String(k)
		if prev, ok := seen[s]; ok && !Equal(prev, k) {
			t.Fatalf("collision: %v and %v encode to same string", prev, k)
		}
		seen[s] = k
	}
}

func TestDecodeBadLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Decode on 3-byte string did not panic")
		}
	}()
	Decode("abc")
}

func TestEqual(t *testing.T) {
	cases := []struct {
		a, b []int64
		want bool
	}{
		{nil, nil, true},
		{nil, []int64{}, true},
		{[]int64{1}, []int64{1}, true},
		{[]int64{1}, []int64{2}, false},
		{[]int64{1, 2}, []int64{1}, false},
		{[]int64{1, 2}, []int64{1, 2}, true},
	}
	for _, c := range cases {
		if got := Equal(c.a, c.b); got != c.want {
			t.Errorf("Equal(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestHashRespectsLength(t *testing.T) {
	// Tuples that are prefixes of each other must (very likely) differ.
	if Hash([]int64{1}) == Hash([]int64{1, 0}) {
		t.Error("Hash([1]) == Hash([1,0])")
	}
	if Hash(nil) == Hash([]int64{0}) {
		t.Error("Hash(nil) == Hash([0])")
	}
}

func TestMapBasic(t *testing.T) {
	m := NewMap[int](0)
	if _, ok := m.Get([]int64{1}); ok {
		t.Error("Get on empty map reported ok")
	}
	m.Put([]int64{1, 2}, 12)
	m.Put([]int64{1, 3}, 13)
	m.Put([]int64{1}, 1)
	if m.Len() != 3 {
		t.Fatalf("Len = %d, want 3", m.Len())
	}
	if v, ok := m.Get([]int64{1, 2}); !ok || v != 12 {
		t.Errorf("Get([1 2]) = %d,%v", v, ok)
	}
	m.Put([]int64{1, 2}, 99) // overwrite
	if v, _ := m.Get([]int64{1, 2}); v != 99 {
		t.Errorf("after overwrite Get = %d", v)
	}
	if m.Len() != 3 {
		t.Errorf("Len after overwrite = %d, want 3", m.Len())
	}
	if !m.Delete([]int64{1, 2}) {
		t.Error("Delete existing returned false")
	}
	if m.Delete([]int64{1, 2}) {
		t.Error("Delete absent returned true")
	}
	if _, ok := m.Get([]int64{1, 2}); ok {
		t.Error("Get after Delete reported ok")
	}
	if m.Len() != 2 {
		t.Errorf("Len after delete = %d, want 2", m.Len())
	}
}

func TestMapZeroValueUsable(t *testing.T) {
	var m Map[string]
	m.Put([]int64{7}, "seven")
	if v, ok := m.Get([]int64{7}); !ok || v != "seven" {
		t.Errorf("zero-value map Get = %q,%v", v, ok)
	}
}

func TestMapEmptyKey(t *testing.T) {
	m := NewMap[int](4)
	m.Put([]int64{}, 5)
	if v, ok := m.Get(nil); !ok || v != 5 {
		t.Errorf("Get(nil) after Put([]) = %d,%v", v, ok)
	}
}

func TestMapGrowAndTombstones(t *testing.T) {
	m := NewMap[int](0)
	const n = 5000
	for i := 0; i < n; i++ {
		m.Put([]int64{int64(i), int64(i * 7)}, i)
	}
	if m.Len() != n {
		t.Fatalf("Len = %d, want %d", m.Len(), n)
	}
	// Delete evens, verify odds survive.
	for i := 0; i < n; i += 2 {
		if !m.Delete([]int64{int64(i), int64(i * 7)}) {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	for i := 0; i < n; i++ {
		v, ok := m.Get([]int64{int64(i), int64(i * 7)})
		if i%2 == 0 && ok {
			t.Fatalf("deleted key %d still present", i)
		}
		if i%2 == 1 && (!ok || v != i) {
			t.Fatalf("key %d: got %d,%v", i, v, ok)
		}
	}
	// Churn on the same keys to exercise tombstone reuse and same-size rehash.
	for round := 0; round < 10; round++ {
		for i := 0; i < n; i += 2 {
			m.Put([]int64{int64(i), int64(i * 7)}, i+round)
		}
		for i := 0; i < n; i += 2 {
			m.Delete([]int64{int64(i), int64(i * 7)})
		}
	}
	if m.Len() != n/2 {
		t.Fatalf("Len after churn = %d, want %d", m.Len(), n/2)
	}
}

func TestMapRange(t *testing.T) {
	m := NewMap[int](0)
	want := map[string]int{}
	for i := 0; i < 100; i++ {
		k := []int64{int64(i % 10), int64(i)}
		m.Put(k, i)
		want[String(k)] = i
	}
	got := map[string]int{}
	m.Range(func(k []int64, v int) bool {
		got[String(k)] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Range visited %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("Range mismatch for %v: got %d want %d", Decode(k), got[k], v)
		}
	}
	// Early stop.
	count := 0
	m.Range(func([]int64, int) bool { count++; return count < 5 })
	if count != 5 {
		t.Errorf("early-stop Range visited %d, want 5", count)
	}
}

func randTuple(rng *rand.Rand, n int) []int64 {
	t := make([]int64, n)
	for i := range t {
		t[i] = int64(rng.Intn(20)) - 5
	}
	return t
}

// TestMapAgainstModel drives Map and a Go map through the same random
// operation sequence and checks they agree at every step.
func TestMapAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := NewMap[int](0)
	model := map[string]int{}
	for step := 0; step < 200000; step++ {
		k := randTuple(rng, 1+rng.Intn(3))
		ks := String(k)
		switch rng.Intn(3) {
		case 0: // put
			v := rng.Int()
			m.Put(k, v)
			model[ks] = v
		case 1: // delete
			got := m.Delete(k)
			_, want := model[ks]
			if got != want {
				t.Fatalf("step %d: Delete(%v) = %v, model %v", step, k, got, want)
			}
			delete(model, ks)
		case 2: // get
			v, ok := m.Get(k)
			wv, wok := model[ks]
			if ok != wok || (ok && v != wv) {
				t.Fatalf("step %d: Get(%v) = %d,%v, model %d,%v", step, k, v, ok, wv, wok)
			}
		}
		if m.Len() != len(model) {
			t.Fatalf("step %d: Len = %d, model %d", step, m.Len(), len(model))
		}
	}
}

func TestQuickPutGet(t *testing.T) {
	f := func(keys [][]int64) bool {
		m := NewMap[int](0)
		for i, k := range keys {
			m.Put(k, i)
		}
		// The last write for each distinct key must win.
		last := map[string]int{}
		for i, k := range keys {
			last[String(k)] = i
		}
		for _, k := range keys {
			v, ok := m.Get(k)
			if !ok || v != last[String(k)] {
				return false
			}
		}
		return m.Len() == len(last)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMapPut(b *testing.B) {
	keys := make([][]int64, 1<<14)
	rng := rand.New(rand.NewSource(7))
	for i := range keys {
		keys[i] = []int64{rng.Int63(), rng.Int63()}
	}
	b.ResetTimer()
	m := NewMap[int](len(keys))
	for i := 0; i < b.N; i++ {
		m.Put(keys[i%len(keys)], i)
	}
}

func BenchmarkMapGetHit(b *testing.B) {
	m := NewMap[int](1 << 14)
	keys := make([][]int64, 1<<14)
	rng := rand.New(rand.NewSource(7))
	for i := range keys {
		keys[i] = []int64{rng.Int63(), rng.Int63()}
		m.Put(keys[i], i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Get(keys[i%len(keys)])
	}
}

func BenchmarkGoMapGetHit(b *testing.B) {
	m := map[string]int{}
	keys := make([][]int64, 1<<14)
	rng := rand.New(rand.NewSource(7))
	for i := range keys {
		keys[i] = []int64{rng.Int63(), rng.Int63()}
		m[String(keys[i])] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m[String(keys[i%len(keys)])]
	}
}
