// Package tuplekey provides hashing, encoding, and an open-addressing hash
// map for tuples of int64 constants.
//
// The paper's RAM model (Section 2, footnote 2) assumes d-ary arrays A_v
// indexed by tuples of domain elements with constant-time access, and notes
// that "for an implementation on real-world computers one would probably
// have to resort to ... suitably designed hash functions". Map is exactly
// that replacement: a linear-probing open-addressing table keyed by []int64
// tuples with expected O(1) lookup, insert and delete. It is the index
// structure behind every A_v array of the dynamic engine as well as the
// relation storage of the dynamic database.
package tuplekey

// Hash returns a 64-bit hash of the tuple. Each element is diffused with a
// splitmix64-style finaliser and folded into the running hash, so tuples
// differing in any single position or in length hash differently with high
// probability. The function is deterministic across runs.
func Hash(key []int64) uint64 {
	h := uint64(0x9e3779b97f4a7c15) ^ (uint64(len(key)) * 0xff51afd7ed558ccd)
	for _, x := range key {
		z := uint64(x) + 0x9e3779b97f4a7c15
		z ^= z >> 30
		z *= 0xbf58476d1ce4e5b9
		z ^= z >> 27
		z *= 0x94d049bb133111eb
		z ^= z >> 31
		h ^= z
		h *= 0xc2b2ae3d27d4eb4f
		h ^= h >> 29
	}
	return h
}

// Equal reports whether two tuples have the same length and elements.
func Equal(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i, x := range a {
		if x != b[i] {
			return false
		}
	}
	return true
}

// String encodes a tuple as a raw byte string, suitable as a Go map key.
// Distinct tuples map to distinct strings (8 bytes per element,
// little-endian), so it is a perfect encoding rather than a hash.
func String(key []int64) string {
	buf := make([]byte, 8*len(key))
	for i, x := range key {
		u := uint64(x)
		off := 8 * i
		buf[off+0] = byte(u)
		buf[off+1] = byte(u >> 8)
		buf[off+2] = byte(u >> 16)
		buf[off+3] = byte(u >> 24)
		buf[off+4] = byte(u >> 32)
		buf[off+5] = byte(u >> 40)
		buf[off+6] = byte(u >> 48)
		buf[off+7] = byte(u >> 56)
	}
	return string(buf)
}

// Decode reverses String, returning the tuple encoded in s.
// It panics if len(s) is not a multiple of 8.
func Decode(s string) []int64 {
	if len(s)%8 != 0 {
		panic("tuplekey: Decode on string whose length is not a multiple of 8")
	}
	out := make([]int64, len(s)/8)
	for i := range out {
		off := 8 * i
		u := uint64(s[off+0]) | uint64(s[off+1])<<8 | uint64(s[off+2])<<16 |
			uint64(s[off+3])<<24 | uint64(s[off+4])<<32 | uint64(s[off+5])<<40 |
			uint64(s[off+6])<<48 | uint64(s[off+7])<<56
		out[i] = int64(u)
	}
	return out
}

const (
	slotEmpty uint8 = iota
	slotFull
	slotTombstone
)

// Map is a hash map from []int64 tuples to values of type V, implemented
// with open addressing and linear probing. The zero value is ready to use.
//
// Keys passed to Put are stored by reference: the caller must not mutate a
// key slice after handing it to Put. Keys passed to Get and Delete are only
// read during the call.
type Map[V any] struct {
	ctrl  []uint8
	keys  [][]int64
	vals  []V
	n     int // live entries
	tombs int // tombstones
}

// NewMap returns a map pre-sized for about hint entries.
func NewMap[V any](hint int) *Map[V] {
	m := &Map[V]{}
	if hint > 0 {
		m.rehash(capacityFor(hint))
	}
	return m
}

func capacityFor(n int) int {
	c := 8
	for c*3 < n*4 { // keep load factor under 3/4
		c *= 2
	}
	return c
}

// Len returns the number of live entries.
func (m *Map[V]) Len() int { return m.n }

// Get returns the value stored under key.
func (m *Map[V]) Get(key []int64) (V, bool) {
	var zero V
	if len(m.ctrl) == 0 {
		return zero, false
	}
	mask := uint64(len(m.ctrl) - 1)
	i := Hash(key) & mask
	for {
		switch m.ctrl[i] {
		case slotEmpty:
			return zero, false
		case slotFull:
			if Equal(m.keys[i], key) {
				return m.vals[i], true
			}
		}
		i = (i + 1) & mask
	}
}

// Put stores val under key, replacing any existing entry.
func (m *Map[V]) Put(key []int64, val V) {
	if len(m.ctrl) == 0 || (m.n+m.tombs+1)*4 > len(m.ctrl)*3 {
		m.grow()
	}
	mask := uint64(len(m.ctrl) - 1)
	i := Hash(key) & mask
	firstTomb := -1
	for {
		switch m.ctrl[i] {
		case slotEmpty:
			if firstTomb >= 0 {
				i = uint64(firstTomb)
				m.tombs--
			}
			m.ctrl[i] = slotFull
			m.keys[i] = key
			m.vals[i] = val
			m.n++
			return
		case slotTombstone:
			if firstTomb < 0 {
				firstTomb = int(i)
			}
		case slotFull:
			if Equal(m.keys[i], key) {
				m.vals[i] = val
				return
			}
		}
		i = (i + 1) & mask
	}
}

// Delete removes the entry under key, reporting whether it was present.
func (m *Map[V]) Delete(key []int64) bool {
	if len(m.ctrl) == 0 {
		return false
	}
	mask := uint64(len(m.ctrl) - 1)
	i := Hash(key) & mask
	for {
		switch m.ctrl[i] {
		case slotEmpty:
			return false
		case slotFull:
			if Equal(m.keys[i], key) {
				var zero V
				m.ctrl[i] = slotTombstone
				m.keys[i] = nil
				m.vals[i] = zero
				m.n--
				m.tombs++
				return true
			}
		}
		i = (i + 1) & mask
	}
}

// Range calls fn for every entry until fn returns false. The iteration
// order is unspecified. The map must not be modified during Range.
func (m *Map[V]) Range(fn func(key []int64, val V) bool) {
	for i, c := range m.ctrl {
		if c == slotFull {
			if !fn(m.keys[i], m.vals[i]) {
				return
			}
		}
	}
}

func (m *Map[V]) grow() {
	newCap := 8
	if len(m.ctrl) > 0 {
		// Grow only if live entries dominate; otherwise rehash at the same
		// size to clear tombstones.
		if m.n*2 >= len(m.ctrl) {
			newCap = len(m.ctrl) * 2
		} else {
			newCap = len(m.ctrl)
		}
	}
	m.rehash(newCap)
}

func (m *Map[V]) rehash(newCap int) {
	oldCtrl, oldKeys, oldVals := m.ctrl, m.keys, m.vals
	m.ctrl = make([]uint8, newCap)
	m.keys = make([][]int64, newCap)
	m.vals = make([]V, newCap)
	m.n = 0
	m.tombs = 0
	mask := uint64(newCap - 1)
	for i, c := range oldCtrl {
		if c != slotFull {
			continue
		}
		j := Hash(oldKeys[i]) & mask
		for m.ctrl[j] == slotFull {
			j = (j + 1) & mask
		}
		m.ctrl[j] = slotFull
		m.keys[j] = oldKeys[i]
		m.vals[j] = oldVals[i]
		m.n++
	}
}
