package dyndb

import (
	"math/rand"
	"testing"
)

func TestInsertDeleteSetSemantics(t *testing.T) {
	d := New()
	ch, err := d.Insert("E", 1, 2)
	if err != nil || !ch {
		t.Fatalf("first insert: %v %v", ch, err)
	}
	ch, err = d.Insert("E", 1, 2)
	if err != nil || ch {
		t.Fatalf("duplicate insert changed the db: %v %v", ch, err)
	}
	if d.Cardinality() != 1 {
		t.Errorf("|D| = %d, want 1", d.Cardinality())
	}
	ch, err = d.Delete("E", 1, 2)
	if err != nil || !ch {
		t.Fatalf("delete: %v %v", ch, err)
	}
	ch, err = d.Delete("E", 1, 2)
	if err != nil || ch {
		t.Fatalf("double delete changed the db: %v %v", ch, err)
	}
	if d.Cardinality() != 0 {
		t.Errorf("|D| = %d, want 0", d.Cardinality())
	}
}

func TestArityEnforcement(t *testing.T) {
	d := New()
	if _, err := d.Insert("E", 1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Insert("E", 1); err == nil {
		t.Error("arity mismatch on insert not detected")
	}
	if _, err := d.Delete("E", 1); err == nil {
		t.Error("arity mismatch on delete not detected")
	}
	if err := d.EnsureRelation("E", 3); err == nil {
		t.Error("EnsureRelation with wrong arity succeeded")
	}
	if err := d.EnsureRelation("E", 2); err != nil {
		t.Errorf("EnsureRelation idempotent call failed: %v", err)
	}
	if err := d.EnsureRelation("Z", 0); err == nil {
		t.Error("zero arity accepted")
	}
}

func TestDeleteUndeclared(t *testing.T) {
	d := New()
	ch, err := d.Delete("Nope", 1)
	if err != nil || ch {
		t.Errorf("delete from undeclared relation: %v %v", ch, err)
	}
}

// TestActiveDomain checks that n = |adom(D)| is maintained exactly,
// including under repeated values within one tuple (the paper's updates
// "may change the database's active domain" in both directions).
func TestActiveDomain(t *testing.T) {
	d := New()
	d.Insert("E", 1, 1)
	if d.ActiveDomainSize() != 1 {
		t.Errorf("n = %d, want 1", d.ActiveDomainSize())
	}
	d.Insert("E", 1, 2)
	d.Insert("F", 2, 3)
	if d.ActiveDomainSize() != 3 {
		t.Errorf("n = %d, want 3", d.ActiveDomainSize())
	}
	d.Delete("E", 1, 2)
	// 1 survives via E(1,1); 2 survives via F(2,3).
	if d.ActiveDomainSize() != 3 {
		t.Errorf("n = %d, want 3 after delete", d.ActiveDomainSize())
	}
	d.Delete("E", 1, 1)
	if d.ActiveDomainSize() != 2 || d.InActiveDomain(1) {
		t.Errorf("n = %d, want 2; 1 in adom: %v", d.ActiveDomainSize(), d.InActiveDomain(1))
	}
	adom := d.ActiveDomain()
	if len(adom) != 2 || adom[0] != 2 || adom[1] != 3 {
		t.Errorf("ActiveDomain = %v", adom)
	}
}

func TestSizeFormula(t *testing.T) {
	d := New()
	d.Insert("E", 1, 2) // |σ|=1, adom {1,2}, 2·1 = 2 → ||D|| = 1+2+2 = 5
	if got := d.Size(); got != 5 {
		t.Errorf("||D|| = %d, want 5", got)
	}
	d.Insert("T", 3) // |σ|=2, adom {1,2,3}, 2+1 → ||D|| = 2+3+3 = 8
	if got := d.Size(); got != 8 {
		t.Errorf("||D|| = %d, want 8", got)
	}
}

func TestApplyAndUpdates(t *testing.T) {
	d := New()
	stream := []Update{
		Insert("E", 1, 2),
		Insert("E", 2, 3),
		Insert("T", 3),
		Delete("E", 1, 2),
	}
	if err := d.ApplyAll(stream); err != nil {
		t.Fatal(err)
	}
	if !d.Has("E", 2, 3) || d.Has("E", 1, 2) || !d.Has("T", 3) {
		t.Error("ApplyAll produced wrong state")
	}
	// Rebuild from Updates() and compare.
	d2 := New()
	if err := d2.ApplyAll(d.Updates()); err != nil {
		t.Fatal(err)
	}
	if d2.Cardinality() != d.Cardinality() || d2.Size() != d.Size() {
		t.Errorf("rebuild mismatch: |D|=%d vs %d", d2.Cardinality(), d.Cardinality())
	}
	if !d2.Has("E", 2, 3) || !d2.Has("T", 3) {
		t.Error("rebuild lost tuples")
	}
}

func TestCloneIsDeep(t *testing.T) {
	d := New()
	d.Insert("E", 1, 2)
	c := d.Clone()
	c.Insert("E", 5, 6)
	if d.Has("E", 5, 6) {
		t.Error("clone shares state with original")
	}
	if !c.Has("E", 1, 2) {
		t.Error("clone missing original tuple")
	}
}

func TestRelationAccessors(t *testing.T) {
	d := New()
	d.Insert("E", 3, 4)
	d.Insert("E", 1, 2)
	r := d.Relation("E")
	if r == nil || r.Arity() != 2 || r.Len() != 2 {
		t.Fatalf("Relation accessor broken: %+v", r)
	}
	ts := r.Tuples()
	if len(ts) != 2 || ts[0][0] != 1 || ts[1][0] != 3 {
		t.Errorf("Tuples not sorted: %v", ts)
	}
	count := 0
	r.Each(func([]Value) bool { count++; return true })
	if count != 2 {
		t.Errorf("Each visited %d", count)
	}
	if got := d.Relations(); len(got) != 1 || got[0] != "E" {
		t.Errorf("Relations = %v", got)
	}
}

// TestRandomStreamInvariants runs a random update stream and checks the
// maintained statistics against recomputation from scratch.
func TestRandomStreamInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := New()
	type key struct{ a, b Value }
	model := map[key]bool{}
	for step := 0; step < 20000; step++ {
		a, b := Value(rng.Intn(30)), Value(rng.Intn(30))
		if rng.Intn(2) == 0 {
			ch, err := d.Insert("E", a, b)
			if err != nil {
				t.Fatal(err)
			}
			if ch == model[key{a, b}] {
				t.Fatalf("step %d: insert changed=%v but model present=%v", step, ch, model[key{a, b}])
			}
			model[key{a, b}] = true
		} else {
			ch, err := d.Delete("E", a, b)
			if err != nil {
				t.Fatal(err)
			}
			if ch != model[key{a, b}] {
				t.Fatalf("step %d: delete changed=%v but model present=%v", step, ch, model[key{a, b}])
			}
			delete(model, key{a, b})
		}
		if d.Cardinality() != len(model) {
			t.Fatalf("step %d: |D| = %d, model %d", step, d.Cardinality(), len(model))
		}
	}
	// Recompute adom from the model.
	adom := map[Value]bool{}
	for k := range model {
		adom[k.a] = true
		adom[k.b] = true
	}
	if d.ActiveDomainSize() != len(adom) {
		t.Errorf("n = %d, recomputed %d", d.ActiveDomainSize(), len(adom))
	}
}

func TestUpdateString(t *testing.T) {
	u := Insert("E", 1, 2)
	if u.String() != "insert E[1 2]" {
		t.Errorf("String() = %q", u.String())
	}
	u = Delete("T", 7)
	if u.String() != "delete T[7]" {
		t.Errorf("String() = %q", u.String())
	}
}

func TestCoalesce(t *testing.T) {
	in := []Update{
		Insert("E", 1, 2),
		Insert("T", 5),
		Delete("E", 1, 2), // cancels nothing at db level but supersedes the insert
		Insert("E", 3, 4),
		Insert("E", 1, 2), // last op on E(1,2) wins again
		Delete("T", 5),
	}
	got := Coalesce(in)
	want := []Update{
		Insert("E", 1, 2), // slot of first appearance, final op = insert
		Delete("T", 5),
		Insert("E", 3, 4),
	}
	if len(got) != len(want) {
		t.Fatalf("Coalesce gave %d updates, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i].String() != want[i].String() {
			t.Errorf("coalesced[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// The input must be untouched.
	if in[0].String() != "insert E[1 2]" {
		t.Errorf("input mutated: %v", in[0])
	}
}

func TestCoalesceDistinguishesRelations(t *testing.T) {
	// Same tuple in different relations must not merge; relation names that
	// could collide under naive concatenation must stay distinct.
	got := Coalesce([]Update{
		Insert("E", 1),
		Insert("F", 1),
		Delete("E", 1),
	})
	if len(got) != 2 {
		t.Fatalf("Coalesce merged across relations: %v", got)
	}
	if got[0].Op != OpDelete || got[0].Rel != "E" || got[1].Op != OpInsert || got[1].Rel != "F" {
		t.Errorf("coalesced = %v", got)
	}
}

func TestCoalescedApply(t *testing.T) {
	d := New()
	if err := d.ApplyAll(Coalesce([]Update{
		Insert("E", 1, 2),
		Insert("E", 1, 2), // duplicate coalesces away
		Insert("T", 7),
		Delete("T", 7), // cancels the insert
		Insert("E", 3, 4),
	})); err != nil {
		t.Fatal(err)
	}
	if d.Cardinality() != 2 || !d.Has("E", 1, 2) || !d.Has("E", 3, 4) || d.Has("T", 7) {
		t.Errorf("unexpected state: |D|=%d", d.Cardinality())
	}
}

// TestPartition: shards preserve per-shard order, keep all commands on a
// tuple together, and commute — applying the shards in any order matches
// applying the original batch directly.
func TestPartition(t *testing.T) {
	batch := Coalesce([]Update{
		Insert("E", 1, 2), Insert("E", 3, 4), Insert("T", 2),
		Delete("E", 1, 2), Insert("T", 4), Insert("E", 5, 6),
		Insert("F", 1), Delete("T", 4),
	})
	shards := Partition(batch, 4)
	if len(shards) != 4 {
		t.Fatalf("got %d shards, want 4", len(shards))
	}
	total := 0
	for _, s := range shards {
		total += len(s)
	}
	if total != len(batch) {
		t.Fatalf("partition holds %d commands, batch has %d", total, len(batch))
	}
	// Same-tuple commands land in the same shard (batch pre-coalesced here,
	// so check with a raw batch instead).
	raw := []Update{Insert("E", 1, 2), Insert("T", 7), Delete("E", 1, 2)}
	for _, s := range Partition(raw, 8) {
		seenE := -1
		for i, u := range s {
			if u.Rel == "E" {
				if seenE >= 0 && u.Op != OpDelete {
					t.Error("E commands out of order within a shard")
				}
				seenE = i
			}
		}
	}
	// Commutativity: shards applied in reverse shard order reach the same
	// database as the batch applied directly.
	direct := New()
	if err := direct.ApplyAll(batch); err != nil {
		t.Fatal(err)
	}
	viaShards := New()
	for i := len(shards) - 1; i >= 0; i-- {
		if err := viaShards.ApplyAll(shards[i]); err != nil {
			t.Fatal(err)
		}
	}
	if direct.Cardinality() != viaShards.Cardinality() {
		t.Fatalf("|D| diverges: direct %d, via shards %d", direct.Cardinality(), viaShards.Cardinality())
	}
	for _, name := range direct.Relations() {
		direct.Relation(name).Each(func(tu []Value) bool {
			if !viaShards.Has(name, tu...) {
				t.Errorf("%s%v missing after sharded apply", name, tu)
			}
			return true
		})
	}
	// shards < 2: one shard, input copied.
	one := Partition(raw, 1)
	if len(one) != 1 || len(one[0]) != len(raw) {
		t.Fatalf("Partition(_, 1) = %d shards of %d commands", len(one), len(one[0]))
	}
}

func TestNetDelta(t *testing.T) {
	db := New()
	for _, u := range []Update{Insert("E", 1, 2), Insert("T", 2)} {
		if _, err := db.Apply(u); err != nil {
			t.Fatal(err)
		}
	}
	// Coalescing: insert+delete on one tuple cancels to the last command;
	// no-ops against the store are dropped; deletes from undeclared
	// relations are dropped.
	net, err := db.NetDelta([]Update{
		Insert("E", 3, 4), // survives (new tuple)
		Delete("E", 3, 4), // coalesces over the insert, then no-ops (absent pre-state)
		Insert("E", 1, 2), // no-op: already present
		Delete("T", 2),    // survives
		Delete("X", 7),    // undeclared relation: no-op
		Insert("F", 1),    // survives, declares F within the batch
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []Update{Delete("T", 2), Insert("F", 1)}
	if len(net) != len(want) {
		t.Fatalf("net delta %v, want %v", net, want)
	}
	for i := range want {
		if net[i].Op != want[i].Op || net[i].Rel != want[i].Rel {
			t.Fatalf("net delta %v, want %v", net, want)
		}
	}
	// The store was not modified.
	if !db.Has("E", 1, 2) || !db.Has("T", 2) || db.Cardinality() != 2 {
		t.Fatal("NetDelta modified the database")
	}

	// Arity validation: against declared relations…
	if _, err := db.NetDelta([]Update{Insert("E", 1)}); err == nil {
		t.Fatal("arity clash against a declared relation accepted")
	}
	if _, err := db.NetDelta([]Update{Delete("E", 1)}); err == nil {
		t.Fatal("delete arity clash against a declared relation accepted")
	}
	// …and within the batch for relations the batch itself declares.
	if _, err := db.NetDelta([]Update{Insert("G", 1), Insert("G", 1, 2)}); err == nil {
		t.Fatal("intra-batch arity clash accepted")
	}
}

func TestMutationsAndClear(t *testing.T) {
	db := New()
	if db.Mutations() != 0 {
		t.Fatalf("fresh store has %d mutations", db.Mutations())
	}
	if _, err := db.Insert("E", 1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("E", 1, 2); err != nil { // set-semantics no-op
		t.Fatal(err)
	}
	if _, err := db.Delete("E", 1, 2); err != nil {
		t.Fatal(err)
	}
	if got := db.Mutations(); got != 2 {
		t.Fatalf("mutations = %d, want 2 (no-ops do not count)", got)
	}
	if _, err := db.Insert("E", 3, 4); err != nil {
		t.Fatal(err)
	}
	db.Clear()
	if db.Cardinality() != 0 || db.ActiveDomainSize() != 0 || len(db.Relations()) != 0 {
		t.Fatal("Clear left state behind")
	}
	if got := db.Mutations(); got != 3 {
		t.Fatalf("mutations = %d after Clear, want 3 (lifetime counter survives)", got)
	}
	// Clear keeps the pointer usable and forgets declarations: E can be
	// redeclared with a different arity.
	if _, err := db.Insert("E", 1); err != nil {
		t.Fatalf("unary E after Clear: %v", err)
	}
}

func TestCopyFrom(t *testing.T) {
	src := New()
	if err := src.EnsureRelation("EMPTY", 3); err != nil {
		t.Fatal(err)
	}
	for _, u := range []Update{Insert("E", 1, 2), Insert("T", 2)} {
		if _, err := src.Apply(u); err != nil {
			t.Fatal(err)
		}
	}
	dst := New()
	if err := dst.CopyFrom(src); err != nil {
		t.Fatal(err)
	}
	if dst.Cardinality() != 2 || !dst.Has("E", 1, 2) || !dst.Has("T", 2) {
		t.Fatal("CopyFrom missed tuples")
	}
	if dst.Relation("EMPTY") == nil || dst.Relation("EMPTY").Arity() != 3 {
		t.Fatal("CopyFrom dropped the empty relation's declaration")
	}
	// Arity clash with an existing declaration fails.
	bad := New()
	if _, err := bad.Insert("E", 1); err != nil {
		t.Fatal(err)
	}
	if err := bad.CopyFrom(src); err == nil {
		t.Fatal("CopyFrom over a conflicting declaration accepted")
	}
}
