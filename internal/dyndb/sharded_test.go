package dyndb

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomStream builds a mixed insert/delete stream over a small schema,
// biased toward values that collide so deletes actually hit.
func randomStream(rng *rand.Rand, n int) []Update {
	var out []Update
	for i := 0; i < n; i++ {
		v1, v2 := int64(rng.Intn(20)), int64(rng.Intn(20))
		switch rng.Intn(4) {
		case 0:
			out = append(out, Insert("E", v1, v2))
		case 1:
			out = append(out, Delete("E", v1, v2))
		case 2:
			out = append(out, Insert("T", v1))
		default:
			out = append(out, Delete("T", v1))
		}
	}
	return out
}

// equalContent compares two databases' observable state exactly.
func equalContent(t *testing.T, a, b *Database) {
	t.Helper()
	if a.Cardinality() != b.Cardinality() {
		t.Fatalf("|D| %d vs %d", a.Cardinality(), b.Cardinality())
	}
	if a.ActiveDomainSize() != b.ActiveDomainSize() {
		t.Fatalf("adom size %d vs %d", a.ActiveDomainSize(), b.ActiveDomainSize())
	}
	if a.Size() != b.Size() {
		t.Fatalf("||D|| %d vs %d", a.Size(), b.Size())
	}
	if !reflect.DeepEqual(a.ActiveDomain(), b.ActiveDomain()) {
		t.Fatalf("active domains diverge: %v vs %v", a.ActiveDomain(), b.ActiveDomain())
	}
	if !reflect.DeepEqual(a.Relations(), b.Relations()) {
		t.Fatalf("relations diverge: %v vs %v", a.Relations(), b.Relations())
	}
	for _, rel := range a.Relations() {
		if !reflect.DeepEqual(a.Relation(rel).Tuples(), b.Relation(rel).Tuples()) {
			t.Fatalf("relation %s content diverges", rel)
		}
	}
}

// TestShardedMatchesUnsharded: the shard count is invisible in every
// observable quantity under a random replayed stream.
func TestShardedMatchesUnsharded(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	stream := randomStream(rng, 3000)
	base := New()
	for _, shards := range []int{2, 3, 8} {
		db := NewSharded(shards)
		if db.Shards() != shards {
			t.Fatalf("Shards() = %d, want %d", db.Shards(), shards)
		}
		if err := db.ApplyAll(stream); err != nil {
			t.Fatal(err)
		}
		if base.Cardinality() == 0 {
			if err := base.ApplyAll(stream); err != nil {
				t.Fatal(err)
			}
		}
		equalContent(t, db, base)
		for _, v := range base.ActiveDomain() {
			if !db.InActiveDomain(v) {
				t.Fatalf("shards=%d: %d missing from active domain", shards, v)
			}
		}
	}
}

// TestApplyNetDeltaParallelMatchesSequential: the parallel net-delta
// application reaches exactly the sequential state, including the
// mutation counter and epoch, at every worker count.
func TestApplyNetDeltaParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		init := randomStream(rng, 400)
		batch := randomStream(rng, 600)
		seq := NewSharded(8)
		if err := seq.ApplyAll(init); err != nil {
			t.Fatal(err)
		}
		seqDelta, err := seq.NetDelta(batch)
		if err != nil {
			t.Fatal(err)
		}
		seq.ApplyNetDelta(seqDelta, 1)

		for _, workers := range []int{2, 4} {
			par := NewSharded(8)
			if err := par.ApplyAll(init); err != nil {
				t.Fatal(err)
			}
			delta, err := par.NetDelta(batch)
			if err != nil {
				t.Fatal(err)
			}
			if n := par.ApplyNetDelta(delta, workers); n != len(delta) {
				t.Fatalf("applied %d of %d", n, len(delta))
			}
			equalContent(t, par, seq)
			if par.Mutations() != seq.Mutations() {
				t.Fatalf("mutations %d vs %d", par.Mutations(), seq.Mutations())
			}
			if par.Epoch() != seq.Epoch() {
				t.Fatalf("epoch %d vs %d", par.Epoch(), seq.Epoch())
			}
		}
	}
}

// TestApplyNetDeltaFreshRelations: a parallel delta that declares new
// relations mid-batch works (declaration happens in the sequential
// prologue).
func TestApplyNetDeltaFreshRelations(t *testing.T) {
	db := NewSharded(4)
	var batch []Update
	for i := int64(0); i < 64; i++ {
		batch = append(batch, Insert("A", i), Insert("B", i, i+1))
	}
	delta, err := db.NetDelta(batch)
	if err != nil {
		t.Fatal(err)
	}
	db.ApplyNetDelta(delta, 4)
	if db.Cardinality() != 128 {
		t.Fatalf("|D| = %d, want 128", db.Cardinality())
	}
	if db.Relation("A") == nil || db.Relation("B") == nil {
		t.Fatal("fresh relations not declared")
	}
}

// TestApplyNetDeltaContractViolation: a delta that no-ops against the
// current state panics instead of silently corrupting the counters.
func TestApplyNetDeltaContractViolation(t *testing.T) {
	db := NewSharded(2)
	if _, err := db.Insert("E", 1, 2); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no-op command accepted as net delta")
		}
	}()
	db.ApplyNetDelta([]Update{Insert("E", 1, 2)}, 1)
}

// TestEpoch: mutations, Clear, and no-ops move the epoch exactly as
// documented.
func TestEpoch(t *testing.T) {
	db := New()
	if db.Epoch() != 0 {
		t.Fatalf("fresh epoch %d", db.Epoch())
	}
	mustApply := func(u Update) {
		t.Helper()
		if _, err := db.Apply(u); err != nil {
			t.Fatal(err)
		}
	}
	mustApply(Insert("E", 1, 2))
	mustApply(Insert("E", 1, 2)) // no-op: epoch unchanged
	if db.Epoch() != 1 {
		t.Fatalf("epoch %d after insert + no-op, want 1", db.Epoch())
	}
	mustApply(Delete("E", 1, 2))
	if db.Epoch() != 2 {
		t.Fatalf("epoch %d after delete, want 2", db.Epoch())
	}
	db.Clear()
	if db.Epoch() != 3 {
		t.Fatalf("epoch %d after Clear, want 3", db.Epoch())
	}
	if db.Shards() != 1 {
		t.Fatalf("Clear changed shard count to %d", db.Shards())
	}
}

// TestClearKeepsShards: Clear preserves the shard layout so the parallel
// path stays available across Load cycles.
func TestClearKeepsShards(t *testing.T) {
	db := NewSharded(4)
	if err := db.ApplyAll(randomStream(rand.New(rand.NewSource(3)), 200)); err != nil {
		t.Fatal(err)
	}
	db.Clear()
	if db.Shards() != 4 {
		t.Fatalf("Shards() = %d after Clear, want 4", db.Shards())
	}
	if db.Cardinality() != 0 || db.ActiveDomainSize() != 0 {
		t.Fatal("Clear left content behind")
	}
	if err := db.ApplyAll(randomStream(rand.New(rand.NewSource(4)), 200)); err != nil {
		t.Fatal(err)
	}
}
