// Package dyndb implements the fully dynamic relational databases of
// Section 2 of the paper: finite relations over the domain dom = int64
// under set semantics, modified by single-tuple insert and delete
// commands. It tracks the quantities the paper's bounds are stated in:
// the cardinality |D| (number of stored tuples), the active domain size
// n = |adom(D)|, and the size ||D|| = |σ| + |adom(D)| + Σ_R ar(R)·|R^D|.
package dyndb

import (
	"fmt"
	"sort"

	"dyncq/internal/tuplekey"
)

// Value is a database constant. The paper takes dom = N_{>=1}; any int64
// works here, with 0 conventionally unused (dictionary encoding in package
// dict starts at 1).
type Value = int64

// Op distinguishes the two update commands.
type Op uint8

const (
	// OpInsert is the paper's "insert R(a1,…,ar)" command.
	OpInsert Op = iota
	// OpDelete is the paper's "delete R(a1,…,ar)" command.
	OpDelete
)

func (o Op) String() string {
	if o == OpInsert {
		return "insert"
	}
	return "delete"
}

// Update is a single update command.
type Update struct {
	Op    Op
	Rel   string
	Tuple []Value
}

func (u Update) String() string {
	return fmt.Sprintf("%s %s%v", u.Op, u.Rel, u.Tuple)
}

// Insert returns an insertion command for the given tuple.
func Insert(rel string, tuple ...Value) Update {
	return Update{Op: OpInsert, Rel: rel, Tuple: tuple}
}

// Delete returns a deletion command for the given tuple.
func Delete(rel string, tuple ...Value) Update {
	return Update{Op: OpDelete, Rel: rel, Tuple: tuple}
}

// Relation is a finite set of tuples of a fixed arity.
type Relation struct {
	name   string
	arity  int
	tuples *tuplekey.Map[struct{}]
}

// Arity returns the relation's arity.
func (r *Relation) Arity() int { return r.arity }

// Len returns |R^D|.
func (r *Relation) Len() int { return r.tuples.Len() }

// Has reports whether the tuple is present.
func (r *Relation) Has(tuple []Value) bool {
	_, ok := r.tuples.Get(tuple)
	return ok
}

// Each calls fn for every tuple until fn returns false. The tuple slice
// passed to fn is owned by the relation and must not be mutated. The
// relation must not be modified during iteration.
func (r *Relation) Each(fn func(tuple []Value) bool) {
	r.tuples.Range(func(k []int64, _ struct{}) bool { return fn(k) })
}

// Tuples returns all tuples, sorted lexicographically (deterministic for
// tests and display). The inner slices are owned by the relation.
func (r *Relation) Tuples() [][]Value {
	out := make([][]Value, 0, r.Len())
	r.Each(func(t []Value) bool { out = append(out, t); return true })
	sort.Slice(out, func(i, j int) bool { return lessTuple(out[i], out[j]) })
	return out
}

func lessTuple(a, b []Value) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// Database is a σ-db: a set of named relations. The zero value is not
// ready; use New.
type Database struct {
	rels map[string]*Relation
	// adom counts occurrences of every constant across all stored tuples
	// so that deletions maintain the active domain exactly.
	adom     map[Value]int
	adomSize int
	card     int // |D|: total number of tuples
	// muts counts successful mutations (inserts + deletes that changed the
	// database) over the store's lifetime — the quantity the workspace
	// layer's "shared store applied once per batch" claim is measured in.
	muts uint64
}

// New returns an empty database with no declared relations.
func New() *Database {
	return &Database{rels: make(map[string]*Relation), adom: make(map[Value]int)}
}

// EnsureRelation declares a relation with the given arity (idempotent).
// It returns an error if the relation exists with a different arity.
func (d *Database) EnsureRelation(name string, arity int) error {
	if arity < 1 {
		return fmt.Errorf("relation %s: arity %d < 1", name, arity)
	}
	if r, ok := d.rels[name]; ok {
		if r.arity != arity {
			return fmt.Errorf("relation %s has arity %d, requested %d", name, r.arity, arity)
		}
		return nil
	}
	d.rels[name] = &Relation{name: name, arity: arity, tuples: tuplekey.NewMap[struct{}](0)}
	return nil
}

// Relation returns the named relation, or nil if undeclared.
func (d *Database) Relation(name string) *Relation { return d.rels[name] }

// Relations returns the declared relation names in sorted order.
func (d *Database) Relations() []string {
	out := make([]string, 0, len(d.rels))
	for n := range d.rels {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Insert adds the tuple to the relation, declaring the relation with the
// tuple's arity if it is new. It reports whether the database changed
// (false if the tuple was already present). An error is returned on arity
// mismatch.
func (d *Database) Insert(rel string, tuple ...Value) (bool, error) {
	if err := d.EnsureRelation(rel, len(tuple)); err != nil {
		return false, err
	}
	r := d.rels[rel]
	if r.arity != len(tuple) {
		return false, fmt.Errorf("insert %s: tuple arity %d, relation arity %d", rel, len(tuple), r.arity)
	}
	if r.Has(tuple) {
		return false, nil
	}
	stored := append([]Value(nil), tuple...)
	r.tuples.Put(stored, struct{}{})
	d.card++
	d.muts++
	for _, v := range stored {
		d.adom[v]++
		if d.adom[v] == 1 {
			d.adomSize++
		}
	}
	return true, nil
}

// Delete removes the tuple from the relation, reporting whether the
// database changed. Deleting from an undeclared relation is a no-op.
func (d *Database) Delete(rel string, tuple ...Value) (bool, error) {
	r := d.rels[rel]
	if r == nil {
		return false, nil
	}
	if r.arity != len(tuple) {
		return false, fmt.Errorf("delete %s: tuple arity %d, relation arity %d", rel, len(tuple), r.arity)
	}
	if !r.tuples.Delete(tuple) {
		return false, nil
	}
	d.card--
	d.muts++
	for _, v := range tuple {
		d.adom[v]--
		if d.adom[v] == 0 {
			d.adomSize--
			delete(d.adom, v)
		}
	}
	return true, nil
}

// Mutations returns the number of successful mutations (inserts and
// deletes that changed the database) over the store's lifetime. Clear
// does not reset it, so the counter measures work done on the store
// regardless of Load cycles — the quantity behind the workspace layer's
// "shared store applied once per batch, independent of the number of
// registered queries" guarantee.
func (d *Database) Mutations() uint64 { return d.muts }

// Clear drops every relation (declarations included), returning the
// database to the empty state in place. Unlike assigning a fresh New(),
// Clear keeps the *Database pointer valid for every structure holding a
// reference to it — the shared-store contract of the workspace layer.
// The mutation counter is preserved.
func (d *Database) Clear() {
	d.rels = make(map[string]*Relation)
	d.adom = make(map[Value]int)
	d.adomSize = 0
	d.card = 0
}

// CopyFrom inserts every tuple of src into d, declaring src's relations
// (including empty ones). It fails on an arity clash with a relation
// already declared in d; on a cleared or fresh database it cannot fail.
func (d *Database) CopyFrom(src *Database) error {
	for _, name := range src.Relations() {
		r := src.Relation(name)
		if err := d.EnsureRelation(name, r.Arity()); err != nil {
			return err
		}
		var insErr error
		r.Each(func(t []Value) bool {
			if _, err := d.Insert(name, t...); err != nil {
				insErr = err
				return false
			}
			return true
		})
		if insErr != nil {
			return insErr
		}
	}
	return nil
}

// NetDelta coalesces a batch and returns the subset of net commands that
// would actually change the database — the net delta a shared-store
// front door applies once and fans out to every registered query's
// maintenance structure, instead of each backend re-deriving it against
// a private copy. Commands keep their coalesced order. The check is
// stateless with respect to application order: coalescing leaves at most
// one command per (relation, tuple) pair and commands on distinct tuples
// are independent, so a command's effect against the pre-state equals
// its effect at its turn in any serial application of the delta.
//
// Arities are validated against d's declared relations and against the
// other commands of the batch (a batch that first declares a new
// relation must use it consistently), so a returned delta applies to d
// without errors. d is not modified.
func (d *Database) NetDelta(updates []Update) ([]Update, error) {
	net := Coalesce(updates)
	fresh := make(map[string]int) // relations the batch itself would declare
	out := net[:0]
	for _, u := range net {
		if r := d.rels[u.Rel]; r != nil {
			if r.arity != len(u.Tuple) {
				return nil, fmt.Errorf("%s %s: tuple arity %d, relation arity %d", u.Op, u.Rel, len(u.Tuple), r.arity)
			}
			if (u.Op == OpInsert) != r.Has(u.Tuple) {
				out = append(out, u)
			}
			continue
		}
		if want, ok := fresh[u.Rel]; ok && want != len(u.Tuple) {
			return nil, fmt.Errorf("%s %s: tuple arity %d, relation arity %d earlier in the batch", u.Op, u.Rel, len(u.Tuple), want)
		}
		if u.Op == OpDelete {
			continue // deleting from an undeclared relation is a no-op
		}
		fresh[u.Rel] = len(u.Tuple)
		out = append(out, u)
	}
	return out, nil
}

// Apply executes an update command, reporting whether the database
// changed.
func (d *Database) Apply(u Update) (bool, error) {
	if u.Op == OpInsert {
		return d.Insert(u.Rel, u.Tuple...)
	}
	return d.Delete(u.Rel, u.Tuple...)
}

// Coalesce reduces a batch of update commands to its net effect: for every
// (relation, tuple) pair only the last command in the batch survives,
// since under set semantics the final presence of a tuple is decided by
// the last command touching it and commands on distinct tuples commute.
// Surviving commands keep the order in which their tuple first appeared
// in the batch, so coalescing is deterministic. The input is not modified.
func Coalesce(updates []Update) []Update {
	if len(updates) <= 1 {
		return append([]Update(nil), updates...)
	}
	slot := make(map[string]int, len(updates))
	out := make([]Update, 0, len(updates))
	var key []byte
	for _, u := range updates {
		key = key[:0]
		key = append(key, u.Rel...)
		key = append(key, 0)
		key = append(key, tuplekey.String(u.Tuple)...)
		if i, ok := slot[string(key)]; ok {
			out[i] = u
			continue
		}
		slot[string(key)] = len(out)
		out = append(out, u)
	}
	return out
}

// Partition splits a batch into shards sub-batches by hash of the
// (relation, tuple) pair, preserving the relative order of commands
// inside every shard. All commands on the same tuple land in the same
// shard, so under set semantics the shards commute: applying them in any
// order (or concurrently, each as its own batch) reaches the same final
// database as the original batch — the companion of Coalesce for callers
// that fan a net batch out over parallel appliers. Empty shards are
// returned as nil slices; shards < 2 returns the whole batch as one
// shard. The input is not modified.
func Partition(updates []Update, shards int) [][]Update {
	if shards < 2 {
		return [][]Update{append([]Update(nil), updates...)}
	}
	out := make([][]Update, shards)
	for _, u := range updates {
		h := tuplekey.Hash(u.Tuple)
		for i := 0; i < len(u.Rel); i++ {
			h = h*0x100000001b3 ^ uint64(u.Rel[i])
		}
		s := h % uint64(shards)
		out[s] = append(out[s], u)
	}
	return out
}

// ApplyAll executes a sequence of update commands, stopping at the first
// error.
func (d *Database) ApplyAll(updates []Update) error {
	for _, u := range updates {
		if _, err := d.Apply(u); err != nil {
			return err
		}
	}
	return nil
}

// Has reports whether the tuple is present in the named relation.
func (d *Database) Has(rel string, tuple ...Value) bool {
	r := d.rels[rel]
	return r != nil && r.Has(tuple)
}

// Cardinality returns |D|, the number of stored tuples.
func (d *Database) Cardinality() int { return d.card }

// ActiveDomainSize returns n = |adom(D)|.
func (d *Database) ActiveDomainSize() int { return d.adomSize }

// InActiveDomain reports whether v occurs in some stored tuple.
func (d *Database) InActiveDomain(v Value) bool { return d.adom[v] > 0 }

// ActiveDomain returns the active domain in sorted order.
func (d *Database) ActiveDomain() []Value {
	out := make([]Value, 0, d.adomSize)
	for v := range d.adom {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Size returns ||D|| = |σ| + |adom(D)| + Σ_R ar(R)·|R^D| as defined in
// Section 2.
func (d *Database) Size() int {
	s := len(d.rels) + d.adomSize
	for _, r := range d.rels {
		s += r.arity * r.Len()
	}
	return s
}

// Clone returns a deep copy of the database.
func (d *Database) Clone() *Database {
	c := New()
	for name, r := range d.rels {
		if err := c.EnsureRelation(name, r.arity); err != nil {
			panic(err) // fresh database: cannot conflict
		}
		r.Each(func(t []Value) bool {
			if _, err := c.Insert(name, t...); err != nil {
				panic(err)
			}
			return true
		})
	}
	return c
}

// Updates returns a sequence of insertion commands that rebuilds the
// database from empty, in deterministic order.
func (d *Database) Updates() []Update {
	var out []Update
	for _, name := range d.Relations() {
		for _, t := range d.rels[name].Tuples() {
			out = append(out, Insert(name, append([]Value(nil), t...)...))
		}
	}
	return out
}
