// Package dyndb implements the fully dynamic relational databases of
// Section 2 of the paper: finite relations over the domain dom = int64
// under set semantics, modified by single-tuple insert and delete
// commands. It tracks the quantities the paper's bounds are stated in:
// the cardinality |D| (number of stored tuples), the active domain size
// n = |adom(D)|, and the size ||D|| = |σ| + |adom(D)| + Σ_R ar(R)·|R^D|.
package dyndb

import (
	"fmt"
	"sort"

	"dyncq/internal/tuplekey"
)

// Value is a database constant. The paper takes dom = N_{>=1}; any int64
// works here, with 0 conventionally unused (dictionary encoding in package
// dict starts at 1).
type Value = int64

// Op distinguishes the two update commands.
type Op uint8

const (
	// OpInsert is the paper's "insert R(a1,…,ar)" command.
	OpInsert Op = iota
	// OpDelete is the paper's "delete R(a1,…,ar)" command.
	OpDelete
)

func (o Op) String() string {
	if o == OpInsert {
		return "insert"
	}
	return "delete"
}

// Update is a single update command.
type Update struct {
	Op    Op
	Rel   string
	Tuple []Value
}

func (u Update) String() string {
	return fmt.Sprintf("%s %s%v", u.Op, u.Rel, u.Tuple)
}

// Insert returns an insertion command for the given tuple.
func Insert(rel string, tuple ...Value) Update {
	return Update{Op: OpInsert, Rel: rel, Tuple: tuple}
}

// Delete returns a deletion command for the given tuple.
func Delete(rel string, tuple ...Value) Update {
	return Update{Op: OpDelete, Rel: rel, Tuple: tuple}
}

// Relation is a finite set of tuples of a fixed arity. Its tuple storage
// is split into the owning database's fixed number of hash shards (one
// for the default New database): a tuple lives in the shard selected by
// updateHash, the same hash Partition buckets commands by, so a net
// batch partitioned by that hash touches pairwise disjoint shard maps —
// the property ApplyNetDelta's parallel workers rely on.
type Relation struct {
	name   string
	arity  int
	shards []*tuplekey.Map[struct{}]
}

// Arity returns the relation's arity.
func (r *Relation) Arity() int { return r.arity }

// Len returns |R^D|.
func (r *Relation) Len() int {
	n := 0
	for _, m := range r.shards {
		n += m.Len()
	}
	return n
}

// shard returns the shard map storing the tuple.
func (r *Relation) shard(tuple []Value) *tuplekey.Map[struct{}] {
	if len(r.shards) == 1 {
		return r.shards[0]
	}
	return r.shards[updateHash(r.name, tuple)%uint64(len(r.shards))]
}

// Has reports whether the tuple is present.
func (r *Relation) Has(tuple []Value) bool {
	_, ok := r.shard(tuple).Get(tuple)
	return ok
}

// Each calls fn for every tuple until fn returns false. The tuple slice
// passed to fn is owned by the relation and must not be mutated. The
// relation must not be modified during iteration. Shards are visited in
// index order (with one shard this is exactly the pre-shard iteration).
func (r *Relation) Each(fn func(tuple []Value) bool) {
	for _, m := range r.shards {
		stop := false
		m.Range(func(k []int64, _ struct{}) bool {
			if !fn(k) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}

// Tuples returns all tuples, sorted lexicographically (deterministic for
// tests and display). The inner slices are owned by the relation.
func (r *Relation) Tuples() [][]Value {
	out := make([][]Value, 0, r.Len())
	r.Each(func(t []Value) bool { out = append(out, t); return true })
	sort.Slice(out, func(i, j int) bool { return lessTuple(out[i], out[j]) })
	return out
}

func lessTuple(a, b []Value) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// Database is a σ-db: a set of named relations. The zero value is not
// ready; use New or NewSharded.
type Database struct {
	// shards is the fixed number of hash shards every relation's tuple
	// map and the adom occurrence counts are split into. 1 (New's
	// default) is bit-identical to the pre-shard single-map layout; more
	// shards let ApplyNetDelta apply a net batch on parallel workers.
	shards int
	rels   map[string]*Relation
	// adom counts occurrences of every constant across all stored tuples
	// so that deletions maintain the active domain exactly, split by
	// value hash into the same number of shards as the relations.
	adom     []map[Value]int
	adomSize int
	card     int // |D|: total number of tuples
	// muts counts successful mutations (inserts + deletes that changed the
	// database) over the store's lifetime — the quantity the workspace
	// layer's "shared store applied once per batch" claim is measured in.
	muts uint64
	// epoch counts state transitions: every successful mutation and every
	// Clear advances it. Structures maintained alongside the store (the
	// eval.IndexSet) record the epoch they are synchronised to and fall
	// back to a rebuild when the store moved without notifying them.
	epoch uint64
}

// New returns an empty unsharded database with no declared relations.
func New() *Database { return NewSharded(1) }

// NewSharded returns an empty database whose relation tuple maps and
// adom counts are split into the given number of hash shards (values
// < 1 mean 1). One shard is the default layout; more shards change no
// observable content — only the internal partitioning that lets
// ApplyNetDelta run a net batch on parallel workers.
func NewSharded(shards int) *Database {
	if shards < 1 {
		shards = 1
	}
	return &Database{shards: shards, rels: make(map[string]*Relation), adom: newAdom(shards)}
}

func newAdom(shards int) []map[Value]int {
	adom := make([]map[Value]int, shards)
	for i := range adom {
		adom[i] = make(map[Value]int)
	}
	return adom
}

// Shards returns the number of hash shards of the store (1 for New).
func (d *Database) Shards() int { return d.shards }

// Epoch returns the number of state transitions (successful mutations
// and Clears) the store has undergone. Companion structures use it to
// detect having missed updates (see eval.IndexSet).
func (d *Database) Epoch() uint64 { return d.epoch }

// updateHash is the hash both Partition and the relation shard maps
// bucket a command by: the tuple hash folded with the relation name, so
// commands on the same (relation, tuple) pair always land together.
func updateHash(rel string, tuple []Value) uint64 {
	h := tuplekey.Hash(tuple)
	for i := 0; i < len(rel); i++ {
		h = h*0x100000001b3 ^ uint64(rel[i])
	}
	return h
}

// adomShard returns the index of the adom shard counting v.
func (d *Database) adomShard(v Value) int {
	if d.shards == 1 {
		return 0
	}
	z := uint64(v) + 0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int(z % uint64(d.shards))
}

// EnsureRelation declares a relation with the given arity (idempotent).
// It returns an error if the relation exists with a different arity.
func (d *Database) EnsureRelation(name string, arity int) error {
	if arity < 1 {
		return fmt.Errorf("relation %s: arity %d < 1", name, arity)
	}
	if r, ok := d.rels[name]; ok {
		if r.arity != arity {
			return fmt.Errorf("relation %s has arity %d, requested %d", name, r.arity, arity)
		}
		return nil
	}
	shards := make([]*tuplekey.Map[struct{}], d.shards)
	for i := range shards {
		shards[i] = tuplekey.NewMap[struct{}](0)
	}
	d.rels[name] = &Relation{name: name, arity: arity, shards: shards} //dyncq:allow epochstep declaring an empty relation adds no tuple or adom content, so indexes stay consistent without an epoch step
	return nil
}

// Relation returns the named relation, or nil if undeclared.
func (d *Database) Relation(name string) *Relation { return d.rels[name] }

// Relations returns the declared relation names in sorted order.
func (d *Database) Relations() []string {
	out := make([]string, 0, len(d.rels))
	for n := range d.rels { //dyncq:allow determinism names are sorted before returning, iteration order cannot leak
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Insert adds the tuple to the relation, declaring the relation with the
// tuple's arity if it is new. It reports whether the database changed
// (false if the tuple was already present). An error is returned on arity
// mismatch.
//
//dyncq:hot
func (d *Database) Insert(rel string, tuple ...Value) (bool, error) {
	if err := d.EnsureRelation(rel, len(tuple)); err != nil {
		return false, err
	}
	r := d.rels[rel]
	if r.arity != len(tuple) {
		return false, fmt.Errorf("insert %s: tuple arity %d, relation arity %d", rel, len(tuple), r.arity) //dyncq:allow hotalloc cold error path, never taken by validated batches
	}
	m := r.shard(tuple)
	if _, ok := m.Get(tuple); ok {
		return false, nil
	}
	stored := append([]Value(nil), tuple...) //dyncq:allow hotalloc audited per-tuple copy: the store must own its tuples (callers may reuse the slice)
	m.Put(stored, struct{}{})
	d.card++
	d.muts++
	d.epoch++
	for _, v := range stored {
		a := d.adom[d.adomShard(v)]
		a[v]++
		if a[v] == 1 {
			d.adomSize++
		}
	}
	return true, nil
}

// Delete removes the tuple from the relation, reporting whether the
// database changed. Deleting from an undeclared relation is a no-op.
//
//dyncq:hot
func (d *Database) Delete(rel string, tuple ...Value) (bool, error) {
	r := d.rels[rel]
	if r == nil {
		return false, nil
	}
	if r.arity != len(tuple) {
		return false, fmt.Errorf("delete %s: tuple arity %d, relation arity %d", rel, len(tuple), r.arity) //dyncq:allow hotalloc cold error path, never taken by validated batches
	}
	if !r.shard(tuple).Delete(tuple) {
		return false, nil
	}
	d.card--
	d.muts++
	d.epoch++
	for _, v := range tuple {
		a := d.adom[d.adomShard(v)]
		a[v]--
		if a[v] == 0 {
			d.adomSize--
			delete(a, v)
		}
	}
	return true, nil
}

// Mutations returns the number of successful mutations (inserts and
// deletes that changed the database) over the store's lifetime. Clear
// does not reset it, so the counter measures work done on the store
// regardless of Load cycles — the quantity behind the workspace layer's
// "shared store applied once per batch, independent of the number of
// registered queries" guarantee.
func (d *Database) Mutations() uint64 { return d.muts }

// Clear drops every relation (declarations included), returning the
// database to the empty state in place. Unlike assigning a fresh New(),
// Clear keeps the *Database pointer valid for every structure holding a
// reference to it — the shared-store contract of the workspace layer.
// The mutation counter and the shard count are preserved; the epoch
// advances (the content changed without per-tuple notifications).
func (d *Database) Clear() {
	d.rels = make(map[string]*Relation)
	d.adom = newAdom(d.shards)
	d.adomSize = 0
	d.card = 0
	d.epoch++
}

// CopyFrom inserts every tuple of src into d, declaring src's relations
// (including empty ones). It fails on an arity clash with a relation
// already declared in d; on a cleared or fresh database it cannot fail.
func (d *Database) CopyFrom(src *Database) error {
	for _, name := range src.Relations() {
		r := src.Relation(name)
		if err := d.EnsureRelation(name, r.Arity()); err != nil {
			return err
		}
		var insErr error
		r.Each(func(t []Value) bool {
			if _, err := d.Insert(name, t...); err != nil {
				insErr = err
				return false
			}
			return true
		})
		if insErr != nil {
			return insErr
		}
	}
	return nil
}

// NetDelta coalesces a batch and returns the subset of net commands that
// would actually change the database — the net delta a shared-store
// front door applies once and fans out to every registered query's
// maintenance structure, instead of each backend re-deriving it against
// a private copy. Commands keep their coalesced order. The check is
// stateless with respect to application order: coalescing leaves at most
// one command per (relation, tuple) pair and commands on distinct tuples
// are independent, so a command's effect against the pre-state equals
// its effect at its turn in any serial application of the delta.
//
// Arities are validated against d's declared relations and against the
// other commands of the batch (a batch that first declares a new
// relation must use it consistently), so a returned delta applies to d
// without errors. d is not modified.
//
//dyncq:hot
func (d *Database) NetDelta(updates []Update) ([]Update, error) {
	net := Coalesce(updates)
	fresh := make(map[string]int, 4) // relations the batch itself would declare
	out := net[:0]
	for _, u := range net {
		if r := d.rels[u.Rel]; r != nil {
			if r.arity != len(u.Tuple) {
				return nil, fmt.Errorf("%s %s: tuple arity %d, relation arity %d", u.Op, u.Rel, len(u.Tuple), r.arity) //dyncq:allow hotalloc cold error path, never taken by validated batches
			}
			if (u.Op == OpInsert) != r.Has(u.Tuple) {
				out = append(out, u)
			}
			continue
		}
		if want, ok := fresh[u.Rel]; ok && want != len(u.Tuple) {
			return nil, fmt.Errorf("%s %s: tuple arity %d, relation arity %d earlier in the batch", u.Op, u.Rel, len(u.Tuple), want) //dyncq:allow hotalloc cold error path, never taken by validated batches
		}
		if u.Op == OpDelete {
			continue // deleting from an undeclared relation is a no-op
		}
		fresh[u.Rel] = len(u.Tuple)
		out = append(out, u)
	}
	return out, nil
}

// Apply executes an update command, reporting whether the database
// changed.
func (d *Database) Apply(u Update) (bool, error) {
	if u.Op == OpInsert {
		return d.Insert(u.Rel, u.Tuple...)
	}
	return d.Delete(u.Rel, u.Tuple...)
}

// Coalesce reduces a batch of update commands to its net effect: for every
// (relation, tuple) pair only the last command in the batch survives,
// since under set semantics the final presence of a tuple is decided by
// the last command touching it and commands on distinct tuples commute.
// Surviving commands keep the order in which their tuple first appeared
// in the batch, so coalescing is deterministic. The input is not modified.
//
// The slot table is a per-relation tuplekey.Map keyed by the tuples
// themselves, so coalescing performs no per-command string encoding — the
// front-door batch path moves interned values end to end.
//
//dyncq:hot
func Coalesce(updates []Update) []Update {
	if len(updates) <= 1 {
		out := make([]Update, len(updates))
		copy(out, updates)
		return out
	}
	slot := make(map[string]*tuplekey.Map[int], 4)
	out := make([]Update, 0, len(updates))
	for _, u := range updates {
		m := slot[u.Rel]
		if m == nil {
			m = tuplekey.NewMap[int](0)
			slot[u.Rel] = m
		}
		if i, ok := m.Get(u.Tuple); ok {
			out[i] = u
			continue
		}
		m.Put(u.Tuple, len(out))
		out = append(out, u)
	}
	return out
}

// Partition splits a batch into shards sub-batches by hash of the
// (relation, tuple) pair, preserving the relative order of commands
// inside every shard. All commands on the same tuple land in the same
// shard, so under set semantics the shards commute: applying them in any
// order (or concurrently, each as its own batch) reaches the same final
// database as the original batch — the companion of Coalesce for callers
// that fan a net batch out over parallel appliers. Empty shards are
// returned as nil slices; shards < 2 returns the whole batch as one
// shard. The input is not modified.
func Partition(updates []Update, shards int) [][]Update {
	if shards < 2 {
		return [][]Update{append([]Update(nil), updates...)}
	}
	out := make([][]Update, shards)
	for _, u := range updates {
		s := updateHash(u.Rel, u.Tuple) % uint64(shards)
		out[s] = append(out[s], u)
	}
	return out
}

// ApplyAll executes a sequence of update commands, stopping at the first
// error.
func (d *Database) ApplyAll(updates []Update) error {
	for _, u := range updates {
		if _, err := d.Apply(u); err != nil {
			return err
		}
	}
	return nil
}

// Has reports whether the tuple is present in the named relation.
func (d *Database) Has(rel string, tuple ...Value) bool {
	r := d.rels[rel]
	return r != nil && r.Has(tuple)
}

// Cardinality returns |D|, the number of stored tuples.
func (d *Database) Cardinality() int { return d.card }

// ActiveDomainSize returns n = |adom(D)|.
func (d *Database) ActiveDomainSize() int { return d.adomSize }

// InActiveDomain reports whether v occurs in some stored tuple.
func (d *Database) InActiveDomain(v Value) bool { return d.adom[d.adomShard(v)][v] > 0 }

// ActiveDomain returns the active domain in sorted order.
func (d *Database) ActiveDomain() []Value {
	out := make([]Value, 0, d.adomSize)
	for _, a := range d.adom {
		for v := range a { //dyncq:allow determinism values are sorted before returning, iteration order cannot leak
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Size returns ||D|| = |σ| + |adom(D)| + Σ_R ar(R)·|R^D| as defined in
// Section 2.
func (d *Database) Size() int {
	s := len(d.rels) + d.adomSize
	for _, r := range d.rels { //dyncq:allow determinism commutative sum, iteration order cannot affect the total
		s += r.arity * r.Len()
	}
	return s
}

// Clone returns a deep copy of the database (same shard count).
func (d *Database) Clone() *Database {
	c := NewSharded(d.shards)
	for name, r := range d.rels { //dyncq:allow determinism set-semantics copy: the clone's content is identical under any insertion order
		if err := c.EnsureRelation(name, r.arity); err != nil {
			panic(err) // fresh database: cannot conflict
		}
		r.Each(func(t []Value) bool {
			if _, err := c.Insert(name, t...); err != nil {
				panic(err)
			}
			return true
		})
	}
	return c
}

// Updates returns a sequence of insertion commands that rebuilds the
// database from empty, in deterministic order.
func (d *Database) Updates() []Update {
	var out []Update
	for _, name := range d.Relations() {
		for _, t := range d.rels[name].Tuples() {
			out = append(out, Insert(name, append([]Value(nil), t...)...))
		}
	}
	return out
}
