package dyndb

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// This file implements the parallel store phase of the sharded storage
// core: applying a validated net delta to the database on worker
// goroutines. A net delta (the output of NetDelta) has at most one
// command per (relation, tuple) pair, each known to change the store, so
// the commands grouped by updateHash shard touch pairwise disjoint
// relation shard maps — workers drain whole shards without locking, and
// within a shard commands keep their delta order, making the final store
// state identical to a sequential application at any worker count. The
// adom occurrence counts are sharded independently by value hash: every
// command contributes ±1 per tuple position to the shard of that value,
// and the per-value contributions are pre-bucketed in one cheap
// sequential pass so the count phase is shard-disjoint too.

// MinParallelDelta is the delta size below which ApplyNetDelta stays
// sequential: goroutine startup dwarfs a handful of map operations.
// Exported so callers overlapping the store phase with other work
// (core.ApplyBatchParallel) can budget their workers accordingly.
const MinParallelDelta = 32

// adomAdj is one ±1 contribution to an adom occurrence count.
type adomAdj struct {
	v     Value
	delta int8
}

// relOp is one tuple mutation bound to its (pre-resolved) relation.
type relOp struct {
	r      *Relation
	tuple  []Value
	insert bool
}

// ApplyNetDelta applies a net delta to the database, returning the
// number of commands applied (always len(survivors)). The survivors
// MUST come from NetDelta against the database's current state (or be
// equivalent: coalesced, arity-consistent, and each changing the store);
// ApplyNetDelta panics on a violated contract, exactly like the
// workspace layer's "validated delta failed to apply" guard.
//
// With workers > 1 on a sharded database (NewSharded) the commands are
// grouped by the Partition/updateHash shard and applied by up to workers
// goroutines, with the adom counting pre-bucketed per value shard; the
// resulting state is identical to the sequential path at any worker
// count. With workers <= 1, one shard, or a small delta it applies
// sequentially (bit-identical to ApplyAll over the survivors).
//
//dyncq:hot
func (d *Database) ApplyNetDelta(survivors []Update, workers int) int {
	if workers <= 1 || d.shards == 1 || len(survivors) < MinParallelDelta {
		for _, u := range survivors {
			changed, err := d.Apply(u)
			if err != nil || !changed {
				panic(fmt.Sprintf("dyndb: net delta violates its contract at %s: changed=%v err=%v", u, changed, err))
			}
		}
		return len(survivors)
	}

	// Sequential prologue: declare fresh relations (map writes on d.rels
	// must not race with the workers reading it), resolve each command's
	// relation, bucket the tuple ops per store shard and the adom
	// adjustments per value shard, and tally the card delta.
	tupleOps := make([][]relOp, d.shards)
	adomOps := make([][]adomAdj, d.shards)
	cardDelta := 0
	for _, u := range survivors {
		if u.Op == OpInsert {
			if err := d.EnsureRelation(u.Rel, len(u.Tuple)); err != nil {
				panic("dyndb: net delta violates its contract: " + err.Error())
			}
		}
		r := d.rels[u.Rel]
		if r == nil || r.arity != len(u.Tuple) {
			panic(fmt.Sprintf("dyndb: net delta violates its contract at %s", u))
		}
		insert := u.Op == OpInsert
		s := updateHash(u.Rel, u.Tuple) % uint64(d.shards)
		tupleOps[s] = append(tupleOps[s], relOp{r: r, tuple: u.Tuple, insert: insert}) //dyncq:allow hotalloc per-shard bucket; growth is amortised over the batch, not per tuple
		delta := int8(-1)
		if insert {
			delta = 1
			cardDelta++
		} else {
			cardDelta--
		}
		for _, v := range u.Tuple {
			a := d.adomShard(v)
			adomOps[a] = append(adomOps[a], adomAdj{v: v, delta: delta}) //dyncq:allow hotalloc per-shard bucket; growth is amortised over the batch, not per tuple
		}
	}

	// Worker phase: tuple-shard tasks and adom-shard tasks are mutually
	// independent (disjoint maps), so one pool drains them all off a
	// shared counter. Per-shard adomSize deltas are summed afterwards.
	adomSizeDelta := make([]int, d.shards)
	var bad atomic.Bool
	total := 2 * d.shards
	if workers > total {
		workers = total
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					return
				}
				if i < d.shards {
					for _, op := range tupleOps[i] {
						m := op.r.shards[i]
						if op.insert {
							if _, ok := m.Get(op.tuple); ok {
								bad.Store(true)
								continue
							}
							m.Put(append([]Value(nil), op.tuple...), struct{}{}) //dyncq:allow hotalloc audited per-tuple copy: the store must own its tuples
						} else if !m.Delete(op.tuple) {
							bad.Store(true)
						}
					}
					continue
				}
				s := i - d.shards
				a := d.adom[s]
				size := 0
				for _, adj := range adomOps[s] {
					n := a[adj.v] + int(adj.delta)
					switch {
					case n == 0:
						delete(a, adj.v)
						size--
					case n == int(adj.delta) && adj.delta > 0:
						a[adj.v] = n
						size++
					case n < 0:
						bad.Store(true)
						delete(a, adj.v)
					default:
						a[adj.v] = n
					}
				}
				adomSizeDelta[s] = size
			}
		}()
	}
	wg.Wait()
	if bad.Load() {
		panic("dyndb: net delta violates its contract (no-op or underflow during parallel application)")
	}
	for _, s := range adomSizeDelta {
		d.adomSize += s
	}
	d.card += cardDelta
	d.muts += uint64(len(survivors))
	d.epoch += uint64(len(survivors))
	return len(survivors)
}
