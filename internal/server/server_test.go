package server

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"testing"
	"time"

	"dyncq/internal/cq"
	"dyncq/internal/dyndb"
	"dyncq/internal/eval"
	"dyncq/internal/workload"
	"dyncq/pkg/dyncq"
)

// pipeClient wires a Client to a fresh in-process session over
// net.Pipe (deterministic; no real sockets).
func pipeClient(t *testing.T, srv *Server) *Client {
	t.Helper()
	cs, ss := net.Pipe()
	go srv.ServeConn(ss)
	c := NewClient(cs)
	t.Cleanup(func() { c.Close() })
	return c
}

func newTestServer(t *testing.T, opt Options) *Server {
	t.Helper()
	srv := New(opt)
	t.Cleanup(func() { srv.Close() })
	return srv
}

func TestProtocolBasics(t *testing.T) {
	srv := newTestServer(t, Options{})
	c := pipeClient(t, srv)

	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := c.Register("q", "Q(y) :- E(x,y), T(y)"); err != nil {
		t.Fatal(err)
	}
	if err := c.Register("q", "Q(y) :- E(x,y)"); err == nil {
		t.Fatal("duplicate register succeeded")
	}
	if names, err := c.Queries(); err != nil || len(names) != 1 || names[0] != "q" {
		t.Fatalf("queries = %v, %v", names, err)
	}

	changed, v, err := c.Apply(dyndb.Insert("E", 1, 2))
	if err != nil || !changed || v != 1 {
		t.Fatalf("apply: changed=%v v=%d err=%v", changed, v, err)
	}
	if changed, _, err = c.Apply(dyndb.Insert("E", 1, 2)); err != nil || changed {
		t.Fatalf("duplicate insert reported changed=%v err=%v", changed, err)
	}
	if _, _, err := c.ApplyBatch([]dyncq.Update{
		dyndb.Insert("T", 2),
		dyndb.Insert("E", 3, 2),
		dyndb.Insert("E", 4, 7),
	}); err != nil {
		t.Fatal(err)
	}

	n, _, err := c.Count("q")
	if err != nil || n != 1 {
		t.Fatalf("count = %d, %v", n, err)
	}
	yes, _, err := c.Answer("q")
	if err != nil || !yes {
		t.Fatalf("answer = %v, %v", yes, err)
	}
	snap, err := c.Enumerate("q")
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Tuples) != 1 || snap.Tuples[0][0] != 2 || snap.Arity != 1 {
		t.Fatalf("enumerate = %+v", snap)
	}
	if _, err := c.Enumerate("nope"); err == nil {
		t.Fatal("enumerate of unknown query succeeded")
	}
	if err := c.Unregister("q"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Count("q"); err == nil {
		t.Fatal("count after unregister succeeded")
	}
	if err := c.Quit(); err != nil {
		t.Fatal(err)
	}
}

func TestProtocolBatchAbortAndPoison(t *testing.T) {
	srv := newTestServer(t, Options{})
	c := pipeClient(t, srv)
	if err := c.Register("q", "Q(x,y) :- E(x,y)"); err != nil {
		t.Fatal(err)
	}

	// A malformed line inside begin/commit poisons the whole batch:
	// nothing is applied.
	cs, ss := net.Pipe()
	go srv.ServeConn(ss)
	defer cs.Close()
	br := bufio.NewReader(cs)
	sendLine := func(l string) {
		t.Helper()
		if _, err := cs.Write([]byte(l + "\n")); err != nil {
			t.Fatal(err)
		}
	}
	expect := func(prefix string) string {
		t.Helper()
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		line = strings.TrimRight(line, "\n")
		if !strings.HasPrefix(line, prefix) {
			t.Fatalf("got %q, want prefix %q", line, prefix)
		}
		return line
	}
	sendLine("begin")
	expect("ok begin")
	sendLine("+E(1,2)")
	sendLine("this is not an update")
	sendLine("+E(3,4)")
	sendLine("commit")
	expect("err batch aborted:")
	if n, _, err := c.Count("q"); err != nil || n != 0 {
		t.Fatalf("poisoned batch leaked state: count=%d err=%v", n, err)
	}

	sendLine("begin")
	expect("ok begin")
	sendLine("+E(1,2)")
	sendLine("abort")
	expect("ok aborted")
	if n, _, err := c.Count("q"); err != nil || n != 0 {
		t.Fatalf("aborted batch leaked state: count=%d err=%v", n, err)
	}

	sendLine("commit")
	expect("err commit outside begin")
}

// TestSubscribeStreamsDeltas: the full subscribe → enumerate → apply
// deltas loop reconstructs the query result exactly, verified against
// an eval.Evaluate oracle on an independently maintained database.
func TestSubscribeStreamsDeltas(t *testing.T) {
	srv := newTestServer(t, Options{})
	writer := pipeClient(t, srv)
	subsc := pipeClient(t, srv)

	queryText := "Q(y) :- E(x,y), T(y)"
	if err := writer.Register("q", queryText); err != nil {
		t.Fatal(err)
	}
	q := cq.MustParse(queryText)

	if _, err := subsc.Subscribe("q"); err != nil {
		t.Fatal(err)
	}
	if _, err := subsc.Subscribe("q"); err == nil {
		t.Fatal("duplicate subscribe succeeded")
	}
	base, err := subsc.Enumerate("q")
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(11))
	db := dyndb.New()
	stream := workload.RandomStream(rng, q.Schema(), 12, 400, 0.35)
	var finalVersion uint64
	for i := 0; i < len(stream); i += 40 {
		end := i + 40
		if end > len(stream) {
			end = len(stream)
		}
		if _, finalVersion, err = writer.ApplyBatch(stream[i:end]); err != nil {
			t.Fatal(err)
		}
		for _, u := range stream[i:end] {
			if _, err := db.Apply(u); err != nil {
				t.Fatal(err)
			}
		}
	}

	state := make(map[string]bool)
	for _, tup := range base.Tuples {
		state[fmt.Sprint(tup)] = true
	}
	for d := range subsc.Deltas() {
		if d.Resync {
			t.Fatalf("unexpected resync (outbox should be ample): %+v", d)
		}
		if d.Version <= base.Version {
			continue // pre-snapshot delta; already folded into the base
		}
		for _, tup := range d.Added {
			k := fmt.Sprint(tup)
			if state[k] {
				t.Fatalf("version %d adds duplicate %v", d.Version, tup)
			}
			state[k] = true
		}
		for _, tup := range d.Removed {
			k := fmt.Sprint(tup)
			if !state[k] {
				t.Fatalf("version %d removes absent %v", d.Version, tup)
			}
			delete(state, k)
		}
		if d.Version == finalVersion {
			break
		}
	}

	want := eval.Evaluate(q, db).Tuples()
	if len(want) != len(state) {
		t.Fatalf("replayed state has %d tuples, oracle %d", len(state), len(want))
	}
	for _, tup := range want {
		if !state[fmt.Sprint([]dyncq.Value(tup))] {
			t.Fatalf("oracle tuple %v missing from replayed state", tup)
		}
	}

	if err := subsc.Unsubscribe("q"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := writer.Apply(dyndb.Insert("E", 999, 999)); err != nil {
		t.Fatal(err)
	}
	// After the last unsubscribe the capture is stopped server-side.
	if srv.broker.droppedFrames("q") != 0 {
		t.Fatal("dropped frames on an ample outbox")
	}
}

// TestSlowSubscriberDoesNotStallCommits is the graceful-degradation
// satellite: a subscriber that stops reading must not block ApplyBatch.
// The bounded outbox fills, frames are dropped, and once the subscriber
// drains it receives a resync line and can rebuild exact state with one
// re-enumerate.
func TestSlowSubscriberDoesNotStallCommits(t *testing.T) {
	srv := newTestServer(t, Options{OutboxFrames: 2, WriteTimeout: time.Minute})
	writer := pipeClient(t, srv)
	queryText := "Q(x,y) :- E(x,y)"
	if err := writer.Register("q", queryText); err != nil {
		t.Fatal(err)
	}

	// Raw subscriber connection: net.Pipe is unbuffered, so not
	// reading stalls the session writer on its first frame and the
	// 2-frame outbox right after.
	cs, ss := net.Pipe()
	go srv.ServeConn(ss)
	defer cs.Close()
	br := bufio.NewReader(cs)
	if _, err := cs.Write([]byte("subscribe q\n")); err != nil {
		t.Fatal(err)
	}
	line, err := br.ReadString('\n')
	if err != nil || !strings.HasPrefix(line, "ok subscribed q ") {
		t.Fatalf("subscribe: %q, %v", line, err)
	}
	// The subscriber now goes silent.

	const commits = 60
	start := time.Now()
	for i := 0; i < commits; i++ {
		if _, _, err := writer.ApplyBatch([]dyncq.Update{
			dyndb.Insert("E", dyncq.Value(i), dyncq.Value(i)),
			dyndb.Insert("E", dyncq.Value(i), dyncq.Value(i+1)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("%d commits took %v against a stuck subscriber: commits must not stall", commits, elapsed)
	}
	if srv.broker.droppedFrames("q") == 0 {
		t.Fatal("no frames dropped: outbox bound not exercised (test setup broken?)")
	}

	// The subscriber wakes up and drains: some leading delta frames,
	// then exactly one resync, then it re-enumerates for exact state.
	// One more commit guarantees a publish that sees the drained
	// outbox and emits the pending resync.
	sawResync := false
	var resyncAt uint64
	deadline := time.After(10 * time.Second)
	lines := make(chan string, 64)
	go func() {
		for {
			l, err := br.ReadString('\n')
			if err != nil {
				close(lines)
				return
			}
			lines <- strings.TrimRight(l, "\n")
		}
	}()
	next := 0
	for !sawResync {
		select {
		case l, ok := <-lines:
			if !ok {
				t.Fatal("subscriber connection closed before resync")
			}
			if strings.HasPrefix(l, "resync q ") {
				var dropped uint64
				if _, err := fmt.Sscanf(l, "resync q %d %d", &resyncAt, &dropped); err != nil {
					t.Fatalf("malformed resync %q: %v", l, err)
				}
				if dropped == 0 {
					t.Fatalf("resync with zero dropped frames: %q", l)
				}
				sawResync = true
			}
		case <-time.After(200 * time.Millisecond):
			// Keep the stream moving: each commit is another publish
			// attempt, and the first one that finds outbox room
			// delivers the pending resync.
			next++
			if _, _, err := writer.Apply(dyndb.Insert("E", 5000, dyncq.Value(next))); err != nil {
				t.Fatal(err)
			}
		case <-deadline:
			t.Fatal("no resync within deadline")
		}
	}

	// Quiesce, then resync-recover: enumerate and verify against the
	// server's own count (exact-state rebuild after drops).
	finalN, finalV, err := writer.Count("q")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Write([]byte("enumerate q\n")); err != nil {
		t.Fatal(err)
	}
	var header string
	for l := range lines {
		if strings.HasPrefix(l, "snapshot q ") {
			header = l
			break
		}
		// Skip delta frames interleaved before our snapshot response.
	}
	var n int
	var v uint64
	var arity int
	if _, err := fmt.Sscanf(header, "snapshot q %d %d %d", &n, &v, &arity); err != nil {
		t.Fatalf("malformed snapshot header %q: %v", header, err)
	}
	if v < resyncAt {
		t.Fatalf("re-enumerate pinned version %d, older than resync point %d", v, resyncAt)
	}
	if v == finalV && uint64(n) != finalN {
		t.Fatalf("re-enumerate at version %d has %d tuples, server count %d", v, n, finalN)
	}
}

// TestServerCloseDrains: Close disconnects sessions and returns; a
// session blocked on a stuck peer does not hold Close past its drain
// timeout budget.
func TestServerCloseDrains(t *testing.T) {
	srv := New(Options{DrainTimeout: 2 * time.Second})
	c := pipeClient(t, srv)
	if err := c.Register("q", "Q(x) :- S(x)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Subscribe("q"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("close took %v", elapsed)
	}
	if srv.SessionCount() != 0 {
		t.Fatalf("%d sessions survive close", srv.SessionCount())
	}
	// Subscriptions were reaped with the sessions: capture is off.
	if !captureInactive(srv, "q") {
		t.Fatal("delta capture still active after close")
	}
}

// captureInactive probes whether a fresh CaptureDeltas succeeds (and
// undoes it) — i.e. no capture was left behind.
func captureInactive(srv *Server, name string) bool {
	if err := srv.ws.CaptureDeltas(name, func(dyncq.DeltaEvent) {}); err != nil {
		return false
	}
	srv.ws.StopDeltaCapture(name)
	return true
}

// TestDisconnectReapsSubscriptions: an abrupt client disconnect (no
// quit) reaps its subscriptions; the last subscriber leaving stops
// delta capture.
func TestDisconnectReapsSubscriptions(t *testing.T) {
	srv := newTestServer(t, Options{})
	c1 := pipeClient(t, srv)
	if err := c1.Register("q", "Q(x) :- S(x)"); err != nil {
		t.Fatal(err)
	}
	c2 := pipeClient(t, srv)
	if _, err := c1.Subscribe("q"); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Subscribe("q"); err != nil {
		t.Fatal(err)
	}
	c2.Close()
	c1.Close()
	deadline := time.Now().Add(5 * time.Second)
	for !captureInactive(srv, "q") {
		if time.Now().After(deadline) {
			t.Fatal("capture still active after both subscribers disconnected")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
