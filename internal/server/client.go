package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"

	"dyncq/pkg/dyncq"
)

// Delta is one asynchronous subscription frame as decoded by the
// client. A Resync delta means the server dropped Dropped frames up to
// and including Version because this client lagged; re-enumerate and
// skip deltas at or below the fresh snapshot's version.
type Delta struct {
	Query   string
	Version uint64
	Added   [][]dyncq.Value
	Removed [][]dyncq.Value
	Resync  bool
	Dropped uint64
	// Raw is the exact frame as it came off the wire, preserved so
	// tests can assert byte-identical streams across subscribers.
	Raw []byte
}

// Snapshot is a decoded `enumerate` response.
type Snapshot struct {
	Query   string
	Version uint64
	Arity   int
	Tuples  [][]dyncq.Value
}

// Client speaks the wire protocol over one connection. Command methods
// are safe for concurrent use (serialized round-trips); asynchronous
// subscription frames arrive on Deltas and must be drained while
// subscribed — the channel is buffered, but a full buffer eventually
// blocks the demux loop and with it command responses.
type Client struct {
	conn net.Conn
	bw   *bufio.Writer

	mu sync.Mutex // serializes request/response round-trips

	resp   chan respFrame
	deltas chan Delta

	closeOnce sync.Once
	readErr   error
	readDone  chan struct{}
}

type respFrame struct {
	line  string
	block []string // tuple lines of a snapshot frame
}

// Dial connects to a dyncq server at addr ("host:port").
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (TCP or net.Pipe).
func NewClient(conn net.Conn) *Client {
	c := &Client{
		conn:     conn,
		bw:       bufio.NewWriter(conn),
		resp:     make(chan respFrame, 4),
		deltas:   make(chan Delta, 1024),
		readDone: make(chan struct{}),
	}
	go c.demux()
	return c
}

// Deltas is the stream of subscription frames. Closed when the
// connection ends.
func (c *Client) Deltas() <-chan Delta { return c.deltas }

// Close tears the connection down. In-flight round-trips fail.
func (c *Client) Close() error {
	var err error
	c.closeOnce.Do(func() { err = c.conn.Close() })
	return err
}

// demux routes incoming lines: delta/resync frames to the Deltas
// channel, everything else (ok/err/bye/snapshot frames) to the
// round-trip response channel.
func (c *Client) demux() {
	defer func() {
		close(c.deltas)
		close(c.resp)
		close(c.readDone)
	}()
	sc := bufio.NewScanner(c.conn)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "delta "):
			d, err := c.readDelta(sc, line)
			if err != nil {
				c.readErr = err
				return
			}
			c.deltas <- d
		case strings.HasPrefix(line, "resync "):
			d, err := parseResync(line)
			if err != nil {
				c.readErr = err
				return
			}
			c.deltas <- d
		case strings.HasPrefix(line, "snapshot "):
			block := []string{}
			for sc.Scan() {
				l := sc.Text()
				if l == "." {
					break
				}
				block = append(block, l)
			}
			c.resp <- respFrame{line: line, block: block}
		default:
			c.resp <- respFrame{line: line}
		}
	}
	if err := sc.Err(); err != nil && c.readErr == nil {
		c.readErr = err
	}
}

// readDelta consumes a delta frame's payload lines, rebuilding both
// the decoded tuples and the exact raw bytes.
// Header: delta <name> <version> <nAdded> <nRemoved>
func (c *Client) readDelta(sc *bufio.Scanner, header string) (Delta, error) {
	f := strings.Fields(header)
	if len(f) != 5 || f[0] != "delta" {
		return Delta{}, fmt.Errorf("malformed delta header %q", header)
	}
	version, err1 := strconv.ParseUint(f[2], 10, 64)
	nAdded, err2 := strconv.Atoi(f[3])
	nRemoved, err3 := strconv.Atoi(f[4])
	if err1 != nil || err2 != nil || err3 != nil || nAdded < 0 || nRemoved < 0 {
		return Delta{}, fmt.Errorf("malformed delta header %q", header)
	}
	d := Delta{
		Query:   f[1],
		Version: version,
		Added:   make([][]dyncq.Value, 0, nAdded),
		Removed: make([][]dyncq.Value, 0, nRemoved),
		Raw:     append([]byte(header), '\n'),
	}
	for i := 0; i < nAdded+nRemoved; i++ {
		if !sc.Scan() {
			return Delta{}, fmt.Errorf("delta frame for %q truncated after %d lines", d.Query, i)
		}
		line := sc.Text()
		d.Raw = append(d.Raw, line...)
		d.Raw = append(d.Raw, '\n')
		sign, _, tuple, err := parseTupleLine(line)
		if err != nil {
			return Delta{}, err
		}
		if sign == '+' {
			d.Added = append(d.Added, tuple)
		} else {
			d.Removed = append(d.Removed, tuple)
		}
	}
	if !sc.Scan() || sc.Text() != "." {
		return Delta{}, fmt.Errorf("delta frame for %q missing terminator", d.Query)
	}
	d.Raw = append(d.Raw, frameEnd...)
	return d, nil
}

func parseResync(line string) (Delta, error) {
	f := strings.Fields(line)
	if len(f) != 4 {
		return Delta{}, fmt.Errorf("malformed resync line %q", line)
	}
	version, err := strconv.ParseUint(f[2], 10, 64)
	if err != nil {
		return Delta{}, fmt.Errorf("malformed resync line %q", line)
	}
	dropped, err := strconv.ParseUint(f[3], 10, 64)
	if err != nil {
		return Delta{}, fmt.Errorf("malformed resync line %q", line)
	}
	return Delta{Query: f[1], Version: version, Resync: true, Dropped: dropped, Raw: []byte(line + "\n")}, nil
}

// roundTrip sends one request line and awaits its response frame.
func (c *Client) roundTrip(req string) (respFrame, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.bw.WriteString(req + "\n"); err != nil {
		return respFrame{}, err
	}
	if err := c.bw.Flush(); err != nil {
		return respFrame{}, err
	}
	f, ok := <-c.resp //dyncq:allow lockorder client request pipeline: c.mu serialises round-trips and the response wait IS the critical section; demux never takes c.mu, and a dead connection closes c.resp
	if !ok {
		if c.readErr != nil {
			return respFrame{}, c.readErr
		}
		return respFrame{}, errors.New("connection closed")
	}
	return f, nil
}

// okFields validates an `ok <verb> …` response and returns the fields
// after the verb.
func (c *Client) okFields(req, verb string, want int) ([]string, error) {
	f, err := c.roundTrip(req)
	if err != nil {
		return nil, err
	}
	if strings.HasPrefix(f.line, "err ") {
		return nil, errors.New(strings.TrimPrefix(f.line, "err "))
	}
	fields := strings.Fields(f.line)
	if len(fields) < 2+want || fields[0] != "ok" || fields[1] != verb {
		return nil, fmt.Errorf("unexpected response %q to %q", f.line, req)
	}
	return fields[2:], nil
}

// Register registers a query on the server.
func (c *Client) Register(name, query string) error {
	_, err := c.okFields("register "+name+" "+query, "registered", 2)
	return err
}

// Unregister removes a query.
func (c *Client) Unregister(name string) error {
	_, err := c.okFields("unregister "+name, "unregistered", 1)
	return err
}

// Apply applies one update; reports whether it changed the database
// and the resulting version.
func (c *Client) Apply(u dyncq.Update) (bool, uint64, error) {
	fields, err := c.okFields("apply "+dyncq.FormatUpdate(u), "applied", 2)
	if err != nil {
		return false, 0, err
	}
	version, err := strconv.ParseUint(fields[1], 10, 64)
	if err != nil {
		return false, 0, err
	}
	return fields[0] == "1", version, nil
}

// ApplyBatch streams updates as one begin/commit block, committed
// atomically server-side. Returns the net change count and version.
func (c *Client) ApplyBatch(updates []dyncq.Update) (int, uint64, error) {
	c.mu.Lock()
	if _, err := c.bw.WriteString("begin\n"); err != nil {
		c.mu.Unlock()
		return 0, 0, err
	}
	for _, u := range updates {
		if _, err := c.bw.WriteString(dyncq.FormatUpdate(u) + "\n"); err != nil {
			c.mu.Unlock()
			return 0, 0, err
		}
	}
	if _, err := c.bw.WriteString("commit\n"); err != nil {
		c.mu.Unlock()
		return 0, 0, err
	}
	if err := c.bw.Flush(); err != nil {
		c.mu.Unlock()
		return 0, 0, err
	}
	// Two responses: ok begin, then ok committed.
	beginResp, ok := <-c.resp //dyncq:allow lockorder client request pipeline: same response-wait-under-c.mu contract as roundTrip
	if !ok {
		c.mu.Unlock()
		return 0, 0, errors.New("connection closed")
	}
	commitResp, ok := <-c.resp //dyncq:allow lockorder client request pipeline: same response-wait-under-c.mu contract as roundTrip
	c.mu.Unlock()
	if !ok {
		return 0, 0, errors.New("connection closed")
	}
	if beginResp.line != "ok begin" {
		return 0, 0, fmt.Errorf("unexpected response %q to begin", beginResp.line)
	}
	if strings.HasPrefix(commitResp.line, "err ") {
		return 0, 0, errors.New(strings.TrimPrefix(commitResp.line, "err "))
	}
	fields := strings.Fields(commitResp.line)
	if len(fields) != 4 || fields[0] != "ok" || fields[1] != "committed" {
		return 0, 0, fmt.Errorf("unexpected response %q to commit", commitResp.line)
	}
	n, err1 := strconv.Atoi(fields[2])
	version, err2 := strconv.ParseUint(fields[3], 10, 64)
	if err1 != nil || err2 != nil {
		return 0, 0, fmt.Errorf("unexpected response %q to commit", commitResp.line)
	}
	return n, version, nil
}

// Count returns |ϕ(D)| for name and the observed version.
func (c *Client) Count(name string) (uint64, uint64, error) {
	fields, err := c.okFields("count "+name, "count", 3)
	if err != nil {
		return 0, 0, err
	}
	n, err1 := strconv.ParseUint(fields[1], 10, 64)
	version, err2 := strconv.ParseUint(fields[2], 10, 64)
	if err1 != nil || err2 != nil {
		return 0, 0, fmt.Errorf("unexpected count response %v", fields)
	}
	return n, version, nil
}

// Answer reports whether ϕ(D) is nonempty for name.
func (c *Client) Answer(name string) (bool, uint64, error) {
	fields, err := c.okFields("answer "+name, "answer", 3)
	if err != nil {
		return false, 0, err
	}
	version, err := strconv.ParseUint(fields[2], 10, 64)
	if err != nil {
		return false, 0, fmt.Errorf("unexpected answer response %v", fields)
	}
	return fields[1] == "true", version, nil
}

// Enumerate fetches the full result of name from a server-side pinned
// MVCC snapshot.
func (c *Client) Enumerate(name string) (*Snapshot, error) {
	f, err := c.roundTrip("enumerate " + name)
	if err != nil {
		return nil, err
	}
	if strings.HasPrefix(f.line, "err ") {
		return nil, errors.New(strings.TrimPrefix(f.line, "err "))
	}
	fields := strings.Fields(f.line)
	if len(fields) != 5 || fields[0] != "snapshot" {
		return nil, fmt.Errorf("unexpected response %q to enumerate", f.line)
	}
	n, err1 := strconv.Atoi(fields[2])
	version, err2 := strconv.ParseUint(fields[3], 10, 64)
	arity, err3 := strconv.Atoi(fields[4])
	if err1 != nil || err2 != nil || err3 != nil {
		return nil, fmt.Errorf("malformed snapshot header %q", f.line)
	}
	if n != len(f.block) {
		return nil, fmt.Errorf("snapshot header promises %d tuples, frame has %d", n, len(f.block))
	}
	snap := &Snapshot{Query: fields[1], Version: version, Arity: arity, Tuples: make([][]dyncq.Value, 0, n)}
	for _, line := range f.block {
		_, _, tuple, err := parseTupleLine(line)
		if err != nil {
			return nil, err
		}
		snap.Tuples = append(snap.Tuples, tuple)
	}
	return snap, nil
}

// Subscribe starts the delta stream for name. The returned version is
// a lower bound from before capture started: sync by calling Enumerate
// next and skipping deltas at or below that snapshot's version.
func (c *Client) Subscribe(name string) (uint64, error) {
	fields, err := c.okFields("subscribe "+name, "subscribed", 2)
	if err != nil {
		return 0, err
	}
	return strconv.ParseUint(fields[1], 10, 64)
}

// Unsubscribe stops the delta stream for name. Frames already in
// flight may still arrive on Deltas.
func (c *Client) Unsubscribe(name string) error {
	_, err := c.okFields("unsubscribe "+name, "unsubscribed", 1)
	return err
}

// Queries lists the registered query names.
func (c *Client) Queries() ([]string, error) {
	f, err := c.roundTrip("queries")
	if err != nil {
		return nil, err
	}
	if strings.HasPrefix(f.line, "err ") {
		return nil, errors.New(strings.TrimPrefix(f.line, "err "))
	}
	rest := strings.TrimPrefix(f.line, "ok queries")
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return nil, nil
	}
	return strings.Split(rest, ","), nil
}

// Version returns the server's committed version counter.
func (c *Client) Version() (uint64, error) {
	fields, err := c.okFields("version", "version", 1)
	if err != nil {
		return 0, err
	}
	return strconv.ParseUint(fields[0], 10, 64)
}

// Ping round-trips a no-op.
func (c *Client) Ping() error {
	_, err := c.okFields("ping", "pong", 0)
	return err
}

// Quit asks for a clean goodbye and closes the connection.
func (c *Client) Quit() error {
	f, err := c.roundTrip("quit")
	if err == nil && f.line != "bye" {
		err = fmt.Errorf("unexpected response %q to quit", f.line)
	}
	c.Close()
	return err
}
