package server

import (
	"sync"

	"dyncq/pkg/dyncq"
)

// broker fans committed delta frames out to subscribers. It sits at
// the end of the engine's hot commit path: Workspace.ApplyBatch →
// delta capture hook → broker.publish, with the workspace write lock
// held the whole way — so everything under broker.mu must be
// non-blocking. Sends use the session's bounded outbox with a
// select-default; a full outbox marks the subscriber lagged instead of
// stalling the commit (the slow-consumer policy: drop with resync).
//
// Lock ranking: broker.mu ranks ABOVE Workspace.mu (publish runs with
// the workspace lock held), and nothing may be acquired under it.
// Subscription topology changes (add/remove/dropQuery, plus each
// session's view of its own subscriptions) are serialized by
// Server.subMu, which is always taken with no other lock held.
type broker struct {
	mu   sync.Mutex
	subs map[string][]*subscriber
}

// subscriber is one (session, query) subscription. The lag state is
// guarded by broker.mu.
type subscriber struct {
	sess *session
	// lagged is set when a delta frame was dropped because the
	// session's outbox was full. While lagged, further deltas are
	// dropped (counted) and the subscriber owes a resync line.
	lagged  bool
	dropped uint64
}

func newBroker() *broker {
	return &broker{subs: make(map[string][]*subscriber)}
}

// add registers sub for name and reports whether it is the first
// subscriber of that query (the caller then starts delta capture).
// Caller holds Server.subMu.
func (b *broker) add(name string, sub *subscriber) (first bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	prev := b.subs[name]
	b.subs[name] = append(prev, sub)
	return len(prev) == 0
}

// remove drops the subscription of sess for name and reports whether
// the query now has no subscribers left (the caller then stops delta
// capture). Caller holds Server.subMu.
func (b *broker) remove(name string, sess *session) (found, last bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	subs := b.subs[name]
	for i, sub := range subs {
		if sub.sess == sess {
			subs[i] = subs[len(subs)-1]
			subs = subs[:len(subs)-1]
			if len(subs) == 0 {
				delete(b.subs, name)
				return true, true
			}
			b.subs[name] = subs
			return true, false
		}
	}
	return false, false
}

// take removes and returns every subscription of name (query
// unregistered); the caller reaps the sessions' own bookkeeping.
// Caller holds Server.subMu.
func (b *broker) take(name string) []*subscriber {
	b.mu.Lock()
	defer b.mu.Unlock()
	subs := b.subs[name]
	delete(b.subs, name)
	return subs
}

// dropped returns the total frames dropped across current lagged
// subscribers of name (observability; used by tests and stats).
func (b *broker) droppedFrames(name string) uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	var n uint64
	for _, sub := range b.subs[name] {
		n += sub.dropped
	}
	return n
}

// publish delivers one committed delta event to every subscriber of
// its query. Runs inside the commit, with the workspace write lock
// held: it must never block. The frame is encoded exactly once and the
// identical byte slice goes to each subscriber's outbox, so delta
// streams are byte-identical across connections. A subscriber whose
// outbox is full is marked lagged and skipped; once its outbox drains
// enough to accept a frame again it gets a resync line first (telling
// it how many frames it lost and through which version) and resumes
// with the NEXT delta — the current one is intentionally skipped so
// the resync boundary is unambiguous.
//
//dyncq:hot
func (b *broker) publish(ev dyncq.DeltaEvent) {
	frame := encodeDelta(ev)
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, sub := range b.subs[ev.Query] {
		if sub.lagged {
			sub.dropped++
			if sub.sess.trySend(encodeResync(ev.Query, ev.Version, sub.dropped)) {
				sub.lagged = false
				sub.dropped = 0
			}
			continue
		}
		if !sub.sess.trySend(frame) {
			sub.lagged = true
			sub.dropped = 1
		}
	}
}
