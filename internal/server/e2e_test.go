package server

import (
	"bytes"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"testing"
	"time"

	"dyncq/internal/cq"
	"dyncq/internal/dyndb"
	"dyncq/internal/eval"
	"dyncq/internal/workload"
	"dyncq/pkg/dyncq"
)

// e2eClients sizes the subscriber fleet of the byte-identity test; CI's
// deep lane raises it (go test ./internal/server -run E2E -server.e2eclients=6).
var e2eClients = flag.Int("server.e2eclients", 3, "concurrent subscriber connections in the e2e tests")

// startTCPServer boots a real listener on a kernel-assigned port.
func startTCPServer(t *testing.T, opt Options) (*Server, string) {
	t.Helper()
	srv := New(opt)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	return srv, l.Addr().String()
}

// TestE2EByteIdenticalDeltaStreams is acceptance criterion (a): N
// subscribers on separate TCP connections receive byte-identical
// per-batch delta streams, and the stream matches an oracle replay
// (eval.Evaluate over an independently maintained database).
func TestE2EByteIdenticalDeltaStreams(t *testing.T) {
	_, addr := startTCPServer(t, Options{})
	queryText := "Q(y) :- E(x,y), T(y)"
	q := cq.MustParse(queryText)

	admin, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	if err := admin.Register("q", queryText); err != nil {
		t.Fatal(err)
	}

	// All subscribers join before the first update: their streams
	// cover the full history from version 0.
	nSubs := *e2eClients
	subs := make([]*Client, nSubs)
	for i := range subs {
		c, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if _, err := c.Subscribe("q"); err != nil {
			t.Fatal(err)
		}
		subs[i] = c
	}

	rng := rand.New(rand.NewSource(4242))
	db := dyndb.New()
	stream := workload.RandomStream(rng, q.Schema(), 15, 900, 0.35)
	var finalVersion uint64
	for i := 0; i < len(stream); i += 60 {
		end := i + 60
		if end > len(stream) {
			end = len(stream)
		}
		if _, finalVersion, err = admin.ApplyBatch(stream[i:end]); err != nil {
			t.Fatal(err)
		}
		for _, u := range stream[i:end] {
			if _, err := db.Apply(u); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Each subscriber drains its stream to the final version and
	// concatenates the raw frame bytes.
	type drained struct {
		raw    []byte
		frames int
		state  map[string]bool
	}
	results := make(chan drained, nSubs)
	errs := make(chan error, nSubs)
	for _, c := range subs {
		go func(c *Client) {
			var d drained
			d.state = make(map[string]bool)
			timeout := time.After(30 * time.Second)
			for {
				select {
				case delta, ok := <-c.Deltas():
					if !ok {
						errs <- fmt.Errorf("delta stream closed at frame %d", d.frames)
						return
					}
					if delta.Resync {
						errs <- fmt.Errorf("unexpected resync: %+v", delta)
						return
					}
					d.raw = append(d.raw, delta.Raw...)
					d.frames++
					for _, tup := range delta.Added {
						d.state[fmt.Sprint(tup)] = true
					}
					for _, tup := range delta.Removed {
						delete(d.state, fmt.Sprint(tup))
					}
					if delta.Version == finalVersion {
						results <- d
						return
					}
				case <-timeout:
					errs <- fmt.Errorf("subscriber stuck at frame %d waiting for version %d", d.frames, finalVersion)
					return
				}
			}
		}(c)
	}
	var all []drained
	for range subs {
		select {
		case d := <-results:
			all = append(all, d)
		case err := <-errs:
			t.Fatal(err)
		}
	}

	// Byte-identical across connections.
	for i := 1; i < len(all); i++ {
		if !bytes.Equal(all[0].raw, all[i].raw) {
			t.Fatalf("subscriber %d stream (%d bytes, %d frames) differs from subscriber 0 (%d bytes, %d frames)",
				i, len(all[i].raw), all[i].frames, len(all[0].raw), all[0].frames)
		}
	}
	// One frame per committed version, even empty ones.
	if all[0].frames != int(finalVersion) {
		t.Fatalf("subscriber 0 saw %d frames over %d committed versions", all[0].frames, finalVersion)
	}

	// Oracle replay: the delta-replayed state equals a from-scratch
	// evaluation of the query on the replayed database.
	want := eval.Evaluate(q, db).Tuples()
	if len(want) != len(all[0].state) {
		t.Fatalf("replayed state has %d tuples, oracle %d", len(all[0].state), len(want))
	}
	for _, tup := range want {
		if !all[0].state[fmt.Sprint([]dyncq.Value(tup))] {
			t.Fatalf("oracle tuple %v missing from replayed state", tup)
		}
	}

	// And matches what the server itself enumerates.
	snap, err := admin.Enumerate("q")
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Tuples) != len(want) {
		t.Fatalf("server enumerates %d tuples, oracle %d", len(snap.Tuples), len(want))
	}
}

// TestE2ESnapshotReaderDoesNotBlockWriter is acceptance criterion (b)
// at the wire level: a client that requests an enumeration and then
// stalls without reading it holds a pinned MVCC snapshot server-side —
// and a concurrent ApplyBatch on another connection completes inside a
// strict time bound anyway.
func TestE2ESnapshotReaderDoesNotBlockWriter(t *testing.T) {
	_, addr := startTCPServer(t, Options{})
	queryText := "Q(x,y) :- E(x,y)"
	q := cq.MustParse(queryText)

	writer, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer writer.Close()
	if err := writer.Register("q", queryText); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	if _, _, err := writer.ApplyBatch(workload.RandomStream(rng, q.Schema(), 60, 3000, 0.1)); err != nil {
		t.Fatal(err)
	}
	_, preVersion, err := writer.Count("q")
	if err != nil {
		t.Fatal(err)
	}

	// Raw reader connection: request the enumeration, then sleep
	// without reading a byte of the response.
	reader, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer reader.Close()
	if _, err := reader.Write([]byte("enumerate q\n")); err != nil {
		t.Fatal(err)
	}
	// Give the server ample time to pin the snapshot (the version
	// check below fails loudly if it somehow hadn't).
	time.Sleep(300 * time.Millisecond)

	start := time.Now()
	if _, _, err := writer.ApplyBatch(workload.RandomStream(rng, q.Schema(), 60, 500, 0.5)); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed > 2*time.Second {
		t.Fatalf("ApplyBatch took %v while an unread enumeration was pending: snapshot readers must not block writers", elapsed)
	}

	// The stalled reader now drains its response: the snapshot is
	// pinned at the pre-batch version.
	time.Sleep(1 * time.Second) // the "reader sleeps mid-iteration" phase
	rc := NewClient(reader)     // demux the already-pending snapshot frame
	// NewClient wraps the same conn; the pending frame is a snapshot
	// response to the enumerate we sent manually, so round-trip
	// plumbing sees it as an unsolicited response. Read it directly.
	f, ok := <-rc.resp
	if !ok {
		t.Fatal("reader connection closed before snapshot arrived")
	}
	var n int
	var v uint64
	var arity int
	if _, err := fmt.Sscanf(f.line, "snapshot q %d %d %d", &n, &v, &arity); err != nil {
		t.Fatalf("malformed snapshot header %q: %v", f.line, err)
	}
	if v != preVersion {
		t.Fatalf("snapshot pinned at version %d, want pre-batch version %d", v, preVersion)
	}
	if n != len(f.block) {
		t.Fatalf("snapshot header promises %d tuples, frame carries %d", n, len(f.block))
	}
}
