package server

import (
	"sync"
	"sync/atomic"

	"dyncq/pkg/dyncq"
)

// frameCache is the encode-once store for `enumerate` response frames:
// one encoded frame per (query, snapshot), fanned out byte-identical to
// every client — the same discipline broker.publish already applies to
// delta frames. Validity is keyed by snapshot POINTER identity, which
// the workspace cache makes exactly right: every pin at an unchanged
// version returns the same shared *QuerySnapshot, and any commit,
// eviction, or unregister/re-register produces a fresh pointer — so a
// stale frame can never match and no version bookkeeping is needed.
type frameCache struct {
	// mu is rank 3 in the lockorder analyzer: innermost, guards only
	// the map probe/store — encoding always happens outside it, and no
	// other lock is ever acquired under it.
	mu      sync.Mutex
	entries map[string]frameEntry

	hits, misses atomic.Uint64
}

type frameEntry struct {
	snap  *dyncq.QuerySnapshot
	frame []byte
}

func newFrameCache() *frameCache {
	return &frameCache{entries: make(map[string]frameEntry)}
}

// frameFor returns the encoded enumerate frame for snap, encoding it
// only when this snapshot has not been encoded before. Racing misses on
// the same snapshot may encode twice; the frames are byte-identical
// (snapshot enumeration order is deterministic) and either wins — the
// cost of keeping the O(|result|) encode outside the lock.
//
//dyncq:hot
func (fc *frameCache) frameFor(snap *dyncq.QuerySnapshot) []byte {
	name := snap.Name()
	fc.mu.Lock()
	if e, ok := fc.entries[name]; ok && e.snap == snap {
		fc.mu.Unlock()
		fc.hits.Add(1)
		return e.frame
	}
	fc.mu.Unlock()
	frame := encodeSnapshot(snap)
	fc.mu.Lock()
	fc.entries[name] = frameEntry{snap: snap, frame: frame}
	fc.mu.Unlock()
	fc.misses.Add(1)
	return frame
}

// purge drops a query's cached frame. Called on unregister so the
// entry's snapshot (and its result buffer) can be collected; staleness
// is already impossible via pointer identity, this is purely memory
// hygiene.
func (fc *frameCache) purge(name string) {
	fc.mu.Lock()
	delete(fc.entries, name)
	fc.mu.Unlock()
}

// FrameCacheStats is the server's encode-once counters: Hits served an
// already-encoded frame with no enumeration or encoding; Misses paid
// one encode (first enumerate at a version).
type FrameCacheStats struct {
	Hits   uint64
	Misses uint64
}

// FrameCacheStats returns the monotonic frame-cache counters.
func (s *Server) FrameCacheStats() FrameCacheStats {
	return FrameCacheStats{Hits: s.frames.hits.Load(), Misses: s.frames.misses.Load()}
}
