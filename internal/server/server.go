package server

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"dyncq/pkg/dyncq"
)

// Options configures a Server. The zero value is usable; zero fields
// take the defaults below.
type Options struct {
	// Workers is the Workspace worker count (see
	// dyncq.WorkspaceOptions.Workers). 0 keeps every path sequential.
	Workers int
	// OutboxFrames bounds each connection's outgoing frame queue.
	// When a subscriber's outbox is full, delta frames are dropped and
	// the subscriber is resynced later — commits never wait on a slow
	// consumer. Default 256.
	OutboxFrames int
	// WriteTimeout bounds each frame write to a connection; a stuck
	// peer is disconnected rather than pinning its writer goroutine.
	// Default 10s; negative disables.
	WriteTimeout time.Duration
	// DrainTimeout bounds Close's wait for live sessions to finish.
	// Default 5s.
	DrainTimeout time.Duration
	// MaxLine bounds one request line in bytes. Default 16 MiB
	// (matching the update-stream reader).
	MaxLine int
}

func (o Options) withDefaults() Options {
	if o.OutboxFrames <= 0 {
		o.OutboxFrames = 256
	}
	if o.WriteTimeout == 0 {
		o.WriteTimeout = 10 * time.Second
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 5 * time.Second
	}
	if o.MaxLine <= 0 {
		o.MaxLine = 16 << 20
	}
	return o
}

// Server owns one Workspace and serves it to many concurrent client
// connections. Writers (apply/commit) serialize on the workspace's own
// write lock; readers are MVCC — count/answer/enumerate pin snapshots
// and never block commits. Subscriptions push per-commit delta frames
// through a bounded outbox per connection (see broker).
type Server struct {
	ws     *dyncq.Workspace
	opt    Options
	broker *broker
	frames *frameCache

	// subMu serializes all subscription topology changes: broker
	// add/remove, capture start/stop, and each session's subs map. It
	// is always acquired with no other lock held; the workspace and
	// broker locks nest beneath the operations it serializes.
	subMu sync.Mutex

	mu        sync.Mutex // guards sessions, listeners, closed
	sessions  map[*session]struct{}
	listeners map[net.Listener]struct{}
	closed    bool
	wg        sync.WaitGroup
}

// New builds a Server around a fresh Workspace.
func New(opt Options) *Server {
	return &Server{
		ws:        dyncq.NewWorkspace(dyncq.WorkspaceOptions{Workers: opt.Workers}),
		opt:       opt.withDefaults(),
		broker:    newBroker(),
		frames:    newFrameCache(),
		sessions:  make(map[*session]struct{}),
		listeners: make(map[net.Listener]struct{}),
	}
}

// Workspace exposes the served workspace, e.g. to pre-register queries
// or preload a database before accepting clients.
func (s *Server) Workspace() *dyncq.Workspace { return s.ws }

// ErrClosed is returned by Serve/ServeConn after Close.
var ErrClosed = errors.New("server closed")

// Serve accepts connections on l until l is closed or the server shuts
// down. Blocking; one goroutine per accepted connection.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return ErrClosed
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrClosed
			}
			return err
		}
		go s.ServeConn(conn)
	}
}

// ListenAndServe listens on addr ("host:port") and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// ServeConn runs the wire protocol on one already-established
// connection (any net.Conn — TCP, Unix socket, or net.Pipe in tests).
// Blocking until the client quits, the connection drops, or the server
// closes; callers wanting concurrency spawn it: go srv.ServeConn(c).
func (s *Server) ServeConn(conn net.Conn) error {
	sess := newSession(s, conn)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return ErrClosed
	}
	s.sessions[sess] = struct{}{}
	s.wg.Add(1)
	s.mu.Unlock()
	defer s.wg.Done()
	sess.run()
	return nil
}

// Close stops accepting, disconnects every session, and waits up to
// DrainTimeout for their goroutines to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for l := range s.listeners {
		l.Close()
	}
	live := make([]*session, 0, len(s.sessions))
	for sess := range s.sessions {
		live = append(live, sess)
	}
	s.mu.Unlock()

	for _, sess := range live {
		sess.close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-time.After(s.opt.DrainTimeout):
		return fmt.Errorf("server close: %d session(s) still draining after %v", s.SessionCount(), s.opt.DrainTimeout)
	}
}

// DroppedFrames reports the delta frames dropped for name's currently
// lagged subscribers (observability; the bench server phase records it).
func (s *Server) DroppedFrames(name string) uint64 {
	return s.broker.droppedFrames(name)
}

// SessionCount returns the number of live sessions (observability).
func (s *Server) SessionCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// subscribe wires sess into name's delta stream. The first subscriber
// of a query starts delta capture on the workspace; the returned
// version is a pre-capture lower bound — the client syncs by
// enumerating AFTER subscribing and skipping deltas at or below the
// snapshot's version.
func (s *Server) subscribe(sess *session, name string) (uint64, error) {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	if s.ws.Handle(name) == nil {
		return 0, fmt.Errorf("unknown query %q", name)
	}
	if _, dup := sess.subs[name]; dup {
		return 0, fmt.Errorf("already subscribed to %q", name)
	}
	version := s.ws.Version()
	sub := &subscriber{sess: sess}
	if first := s.broker.add(name, sub); first {
		if err := s.ws.CaptureDeltas(name, func(ev dyncq.DeltaEvent) { s.broker.publish(ev) }); err != nil {
			s.broker.remove(name, sess)
			return 0, err
		}
	}
	sess.subs[name] = sub
	return version, nil
}

// unsubscribe unwires sess from name; the last unsubscribe of a query
// stops its delta capture.
func (s *Server) unsubscribe(sess *session, name string) bool {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	return s.unsubscribeLocked(sess, name)
}

func (s *Server) unsubscribeLocked(sess *session, name string) bool {
	if _, ok := sess.subs[name]; !ok {
		return false
	}
	delete(sess.subs, name)
	found, last := s.broker.remove(name, sess)
	if found && last {
		s.ws.StopDeltaCapture(name)
	}
	return true
}

// unregister removes a query from the workspace and severs all its
// subscriptions. Subscribers simply stop receiving frames for it.
func (s *Server) unregister(name string) bool {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	// Unregister clears the capture hook itself; the broker hands back
	// the severed subscribers so their sessions' subs maps (guarded by
	// subMu, held here) are reaped eagerly — a later subscribe to a
	// re-registered name must not read as a "duplicate".
	if !s.ws.Unregister(name) {
		return false
	}
	for _, sub := range s.broker.take(name) {
		delete(sub.sess.subs, name)
	}
	s.frames.purge(name)
	return true
}

// dropSession severs a disconnecting session's subscriptions, stopping
// capture for any query it was the last subscriber of.
func (s *Server) dropSession(sess *session) {
	s.subMu.Lock()
	for name := range sess.subs {
		s.unsubscribeLocked(sess, name)
	}
	s.subMu.Unlock()
	s.mu.Lock()
	delete(s.sessions, sess)
	s.mu.Unlock()
}
