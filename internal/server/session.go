package server

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"dyncq/pkg/dyncq"
)

// session is one client connection: a reader goroutine parsing and
// dispatching commands, and a writer goroutine draining the bounded
// outbox. Command responses go through send (blocking — natural
// backpressure on the client's own requests); broker deltas go through
// trySend (non-blocking — a slow subscriber never stalls a commit).
// Frames are whole []byte blocks, so responses and asynchronous deltas
// interleave only at frame boundaries.
type session struct {
	srv  *Server
	conn net.Conn
	out  chan []byte
	done chan struct{}

	closeOnce sync.Once

	// subs is this session's active subscriptions, guarded by
	// Server.subMu (all subscription topology shares that one lock).
	subs map[string]*subscriber

	// flushed is closed by the writer when it encounters the nil
	// sentinel frame: every frame enqueued before it has been written
	// to the connection. Used once, for the farewell on quit.
	flushed chan struct{}

	// Batch state (reader goroutine only).
	inBatch  bool
	pending  []dyncq.Update
	batchErr error
}

func newSession(srv *Server, conn net.Conn) *session {
	return &session{
		srv:     srv,
		conn:    conn,
		out:     make(chan []byte, srv.opt.OutboxFrames),
		done:    make(chan struct{}),
		flushed: make(chan struct{}),
		subs:    make(map[string]*subscriber),
	}
}

// run services the connection until the client quits, the connection
// drops, or the server shuts down. Blocking; callers spawn it.
func (s *session) run() {
	defer s.close()
	go s.writer()
	sc := bufio.NewScanner(s.conn)
	sc.Buffer(make([]byte, 0, 64*1024), s.srv.opt.MaxLine)
	for sc.Scan() {
		line := strings.TrimRight(sc.Text(), "\r")
		if line == "" {
			continue
		}
		if !s.dispatch(line) {
			return
		}
	}
}

// writer drains the outbox onto the connection. A write error or
// timeout tears the session down; in-flight frames are discarded.
func (s *session) writer() {
	for {
		select {
		case <-s.done:
			return
		case frame := <-s.out:
			if frame == nil {
				close(s.flushed) // quit sentinel: everything before it is on the wire
				continue
			}
			if s.srv.opt.WriteTimeout > 0 {
				s.conn.SetWriteDeadline(time.Now().Add(s.srv.opt.WriteTimeout))
			}
			if _, err := s.conn.Write(frame); err != nil {
				s.close()
				return
			}
		}
	}
}

// send enqueues a command response, blocking until the outbox has
// room. Returns false when the session is closed.
func (s *session) send(frame []byte) bool {
	select {
	case s.out <- frame:
		return true
	case <-s.done:
		return false
	}
}

// trySend enqueues a broker frame without blocking: the commit path
// calls this with the workspace write lock held, so a full outbox
// drops the frame (the broker records the lag) rather than stalling
// every other client's updates. A closed session reports success —
// the frame is moot and the subscription is about to be reaped.
//
//dyncq:hot
func (s *session) trySend(frame []byte) bool {
	select {
	case <-s.done:
		return true
	case s.out <- frame:
		return true
	default:
		return false
	}
}

func (s *session) sendLine(line string) bool { return s.send([]byte(line + "\n")) }

func (s *session) ok(format string, args ...any) bool {
	return s.sendLine("ok " + fmt.Sprintf(format, args...))
}

func (s *session) err(e error) bool {
	return s.sendLine("err " + sanitizeErr(e))
}

func (s *session) errf(format string, args ...any) bool {
	return s.err(fmt.Errorf(format, args...))
}

// close tears the session down exactly once: wakes the writer, closes
// the connection (unblocking the reader), and unhooks every
// subscription from the broker. Safe from any goroutine.
func (s *session) close() {
	s.closeOnce.Do(func() {
		close(s.done)
		s.conn.Close()
		s.srv.dropSession(s)
	})
}

// dispatch handles one request line. Returns false to end the session.
func (s *session) dispatch(line string) bool {
	if s.inBatch {
		return s.dispatchBatch(line)
	}
	cmd, rest, _ := strings.Cut(line, " ")
	switch cmd {
	case "register":
		name, query, okSplit := strings.Cut(rest, " ")
		if !okSplit || name == "" || strings.TrimSpace(query) == "" {
			return s.errf("usage: register <name> <query>")
		}
		h, err := s.srv.ws.Register(name, query)
		if err != nil {
			return s.err(err)
		}
		return s.ok("registered %s %s %d", name, h.Strategy(), s.srv.ws.Version())
	case "unregister":
		name := strings.TrimSpace(rest)
		if name == "" {
			return s.errf("usage: unregister <name>")
		}
		if !s.srv.unregister(name) {
			return s.errf("unknown query %q", name)
		}
		return s.ok("unregistered %s", name)
	case "apply":
		u, err := dyncq.ParseUpdate(strings.TrimSpace(rest))
		if err != nil {
			return s.err(err)
		}
		changed, err := s.srv.ws.Apply(u)
		if err != nil {
			return s.err(err)
		}
		n := 0
		if changed {
			n = 1
		}
		return s.ok("applied %d %d", n, s.srv.ws.Version())
	case "begin":
		s.inBatch = true
		s.pending = s.pending[:0]
		s.batchErr = nil
		return s.ok("begin")
	case "commit", "abort":
		return s.errf("%s outside begin", cmd)
	case "count":
		h, bad := s.handleArg(rest, "count")
		if h == nil {
			return bad
		}
		// Served from the cached snapshot header when one is current —
		// no workspace lock at all on a warm query. The cold fallback
		// reads the live backend under the read lock as before.
		if snap := h.CachedSnapshot(); snap != nil {
			return s.ok("count %s %d %d", h.Name(), snap.Count(), snap.Version())
		}
		return s.ok("count %s %d %d", h.Name(), h.Count(), s.srv.ws.Version())
	case "answer":
		h, bad := s.handleArg(rest, "answer")
		if h == nil {
			return bad
		}
		if snap := h.CachedSnapshot(); snap != nil {
			return s.ok("answer %s %t %d", h.Name(), snap.Answer(), snap.Version())
		}
		return s.ok("answer %s %t %d", h.Name(), h.Answer(), s.srv.ws.Version())
	case "enumerate":
		h, bad := s.handleArg(rest, "enumerate")
		if h == nil {
			return bad
		}
		// Pin an MVCC snapshot (O(1) on a warm version) and serve the
		// frame from the encode-once cache: the same bytes fan out to
		// every client until the next commit moves the snapshot. No
		// lock is held while encoding, so a slow client draining a
		// huge result never blocks ApplyBatch.
		return s.send(s.srv.frames.frameFor(h.Snapshot()))
	case "subscribe":
		name := strings.TrimSpace(rest)
		if name == "" {
			return s.errf("usage: subscribe <name>")
		}
		version, err := s.srv.subscribe(s, name)
		if err != nil {
			return s.err(err)
		}
		return s.ok("subscribed %s %d", name, version)
	case "unsubscribe":
		name := strings.TrimSpace(rest)
		if name == "" {
			return s.errf("usage: unsubscribe <name>")
		}
		if !s.srv.unsubscribe(s, name) {
			return s.errf("not subscribed to %q", name)
		}
		return s.ok("unsubscribed %s", name)
	case "queries":
		names := make([]string, 0, 8)
		for _, h := range s.srv.ws.Handles() {
			names = append(names, h.Name())
		}
		return s.ok("queries %s", strings.Join(names, ","))
	case "version":
		return s.ok("version %d", s.srv.ws.Version())
	case "ping":
		return s.ok("pong")
	case "quit":
		s.farewell()
		return false
	default:
		return s.errf("unknown command %q", cmd)
	}
}

// dispatchBatch handles lines between begin and commit/abort: bare
// ±R(t) update lines accumulate without per-line responses (that is
// the batch streaming efficiency); the first malformed line poisons
// the batch, reported at commit.
func (s *session) dispatchBatch(line string) bool {
	switch line {
	case "commit":
		s.inBatch = false
		if s.batchErr != nil {
			s.pending = s.pending[:0]
			return s.errf("batch aborted: %v", s.batchErr)
		}
		n, err := s.srv.ws.ApplyBatch(s.pending)
		s.pending = s.pending[:0]
		if err != nil {
			return s.err(err)
		}
		return s.ok("committed %d %d", n, s.srv.ws.Version())
	case "abort":
		s.inBatch = false
		s.pending = s.pending[:0]
		s.batchErr = nil
		return s.ok("aborted")
	case "quit":
		s.farewell()
		return false
	}
	if s.batchErr != nil {
		return true // already poisoned; keep consuming until commit/abort
	}
	u, err := dyncq.ParseUpdate(line)
	if err != nil {
		s.batchErr = err
		return true
	}
	s.pending = append(s.pending, u)
	return true
}

// handleArg resolves the single query-name argument of count/answer/
// enumerate. On failure the session has already been answered; the
// bool is the dispatch return value.
func (s *session) handleArg(rest, cmd string) (*dyncq.Handle, bool) {
	name := strings.TrimSpace(rest)
	if name == "" {
		return nil, s.errf("usage: %s <name>", cmd)
	}
	h := s.srv.ws.Handle(name)
	if h == nil {
		return nil, s.errf("unknown query %q", name)
	}
	return h, true
}

// farewell sends the bye line and waits (bounded) until the writer
// has put it on the wire, so the deferred close doesn't race the
// client's read of the goodbye.
func (s *session) farewell() {
	if !s.sendLine("bye") || !s.send(nil) {
		return
	}
	select {
	case <-s.flushed:
	case <-s.done:
	case <-time.After(500 * time.Millisecond):
	}
}
