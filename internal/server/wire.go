// Package server is the dyncq serving front door: a long-lived
// multi-client server process owning one Workspace. Clients speak a
// line-oriented wire protocol over any net.Conn (TCP in production,
// net.Pipe in deterministic tests), reusing the update-stream text
// format for tuples: `+E(1,2)` inserts, `-E(1,2)` deletes, and result
// tuples are rendered the same way with the query name as the relation.
//
// # Wire protocol
//
// Requests are single lines. Responses are either a single line
// (`ok …` / `err <message>` / `bye`) or a multi-line frame terminated
// by a lone `.`:
//
//	register <name> <query text>      -> ok registered <name> <strategy> <version>
//	unregister <name>                 -> ok unregistered <name>
//	apply <update>                    -> ok applied <0|1> <version>
//	begin                             -> ok begin          (then bare ±R(t) lines)
//	commit                            -> ok committed <n> <version>
//	abort                             -> ok aborted
//	count <name>                      -> ok count <name> <n> <version>
//	answer <name>                     -> ok answer <name> <true|false> <version>
//	enumerate <name>                  -> snapshot <name> <n> <version> <arity>
//	                                     +<name>(v,…)  ×n
//	                                     .
//	subscribe <name>                  -> ok subscribed <name> <version>
//	unsubscribe <name>                -> ok unsubscribed <name>
//	queries                           -> ok queries <csv>
//	version                           -> ok version <v>
//	ping                              -> ok pong
//	quit                              -> bye
//
// A subscription asynchronously pushes one delta frame per committed
// version (even when that query's result did not change — subscribers
// track versions in lockstep):
//
//	delta <name> <version> <nAdded> <nRemoved>
//	+<name>(v,…)  ×nAdded
//	-<name>(v,…)  ×nRemoved
//	.
//
// Added and removed tuples are sorted lexicographically and each frame
// is encoded exactly once, so every subscriber of a query receives
// byte-identical delta streams. `enumerate` frames follow the same
// encode-once discipline: each is encoded once per (query, version)
// and the identical bytes are fanned out to every client asking while
// that version is current. A subscriber that cannot keep up
// (bounded per-connection outbox) has frames dropped; on recovery it
// receives a single
//
//	resync <name> <version> <dropped>
//
// line instead, after which it must re-enumerate and skip deltas with
// version <= the snapshot's version. The same subscribe → enumerate →
// skip-stale-deltas pattern is how a fresh subscriber syncs: the
// version in `ok subscribed` is a pre-capture lower bound, not an
// exact stream start.
package server

import (
	"fmt"
	"strconv"
	"strings"

	"dyncq/pkg/dyncq"
)

// Frame terminator for multi-line frames.
const frameEnd = ".\n"

// appendTupleLine appends `<sign><name>(v1,…,vk)\n` to buf and returns
// the extended slice. The caller provides the backing array;
// appendTupleLine only ever appends.
//
//dyncq:hot
func appendTupleLine(buf []byte, sign byte, name string, tuple []dyncq.Value) []byte {
	b := buf[:]
	b = append(b, sign)
	b = append(b, name...)
	b = append(b, '(')
	for i, v := range tuple {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(v), 10)
	}
	b = append(b, ')', '\n')
	return b
}

// encodeDelta renders one DeltaEvent as a complete wire frame. It is
// called once per event; the broker hands the same slice to every
// subscriber, which is what makes cross-connection delta streams
// byte-identical.
//
//dyncq:hot
func encodeDelta(ev dyncq.DeltaEvent) []byte {
	est := len(ev.Query) + 48
	for _, t := range ev.Added {
		est += len(ev.Query) + 4 + 21*len(t)
	}
	for _, t := range ev.Removed {
		est += len(ev.Query) + 4 + 21*len(t)
	}
	buf := make([]byte, 0, est+len(frameEnd))
	buf = append(buf, "delta "...)
	buf = append(buf, ev.Query...)
	buf = append(buf, ' ')
	buf = strconv.AppendUint(buf, ev.Version, 10)
	buf = append(buf, ' ')
	buf = strconv.AppendInt(buf, int64(len(ev.Added)), 10)
	buf = append(buf, ' ')
	buf = strconv.AppendInt(buf, int64(len(ev.Removed)), 10)
	buf = append(buf, '\n')
	for _, t := range ev.Added {
		buf = appendTupleLine(buf, '+', ev.Query, t)
	}
	for _, t := range ev.Removed {
		buf = appendTupleLine(buf, '-', ev.Query, t)
	}
	buf = append(buf, frameEnd...)
	return buf
}

// encodeResync renders the per-subscriber lag notice. Only built on
// the degraded path (a subscriber recovering from overflow).
//
//dyncq:hot
func encodeResync(name string, version, dropped uint64) []byte {
	buf := make([]byte, 0, len(name)+56)
	buf = append(buf, "resync "...)
	buf = append(buf, name...)
	buf = append(buf, ' ')
	buf = strconv.AppendUint(buf, version, 10)
	buf = append(buf, ' ')
	buf = strconv.AppendUint(buf, dropped, 10)
	buf = append(buf, '\n')
	return buf
}

// encodeSnapshot renders an `enumerate` response frame from a pinned
// MVCC snapshot. Runs without any workspace lock held. Callers go
// through frameCache.frameFor, so each shared snapshot is encoded at
// most once (modulo benign racing misses) and every client receives
// the same bytes.
//
//dyncq:hot
func encodeSnapshot(s *dyncq.QuerySnapshot) []byte {
	name := s.Name()
	est := len(name) + 64 + s.Len()*(len(name)+4+21*s.Arity())
	buf := make([]byte, 0, est+len(frameEnd))
	buf = append(buf, "snapshot "...)
	buf = append(buf, name...)
	buf = append(buf, ' ')
	buf = strconv.AppendInt(buf, int64(s.Len()), 10)
	buf = append(buf, ' ')
	buf = strconv.AppendUint(buf, s.Version(), 10)
	buf = append(buf, ' ')
	buf = strconv.AppendInt(buf, int64(s.Arity()), 10)
	buf = append(buf, '\n')
	s.Enumerate(func(t []dyncq.Value) bool {
		buf = appendTupleLine(buf, '+', name, t)
		return true
	})
	buf = append(buf, frameEnd...)
	return buf
}

// parseTupleLine decodes one `<sign><name>(v1,…,vk)` line as emitted
// by appendTupleLine (client side; not on the server hot path).
func parseTupleLine(line string) (sign byte, name string, tuple []dyncq.Value, err error) {
	if len(line) < 4 || (line[0] != '+' && line[0] != '-') {
		return 0, "", nil, fmt.Errorf("malformed tuple line %q", line)
	}
	sign = line[0]
	open := strings.IndexByte(line, '(')
	if open < 1 || line[len(line)-1] != ')' {
		return 0, "", nil, fmt.Errorf("malformed tuple line %q", line)
	}
	name = line[1:open]
	body := line[open+1 : len(line)-1]
	if body == "" {
		return sign, name, []dyncq.Value{}, nil
	}
	parts := strings.Split(body, ",")
	tuple = make([]dyncq.Value, len(parts))
	for i, p := range parts {
		v, perr := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if perr != nil {
			return 0, "", nil, fmt.Errorf("malformed value %q in tuple line %q", p, line)
		}
		tuple[i] = dyncq.Value(v)
	}
	return sign, name, tuple, nil
}

// sanitizeErr collapses an error message onto one line so it cannot
// break the line-oriented framing.
func sanitizeErr(err error) string {
	return strings.ReplaceAll(strings.ReplaceAll(err.Error(), "\r", " "), "\n", " ")
}
