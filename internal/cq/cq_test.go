package cq

import (
	"strings"
	"testing"
)

// Queries from the paper, used across the test suite.
var (
	// ϕS-E-T, equation (2): hierarchical for Fink–Olteanu, not for
	// Koutris–Suciu, not q-hierarchical.
	qSET = MustParse("Q(x,y) :- S(x), E(x,y), T(y)")
	// ϕ'S-E-T, equation (3): Boolean version.
	qSETBool = MustParse("Q() :- S(x), E(x,y), T(y)")
	// ϕE-T, equation (4): hierarchical but not q-hierarchical.
	qET = MustParse("Q(x) :- E(x,y), T(y)")
	// The three q-hierarchical variants of ϕE-T named in Section 3.
	qETFreeY = MustParse("Q(y) :- E(x,y), T(y)")
	qETJoin  = MustParse("Q(x,y) :- E(x,y), T(y)")
	qETBool  = MustParse("Q() :- E(x,y), T(y)")
	// Section 3's hierarchical Boolean example
	// ∃x∃y∃z∃y'∃z' (Rxyz ∧ Rxyz' ∧ Exy ∧ Exy').
	qHier = MustParse("Q() :- R(x,y,z), R(x,y,zp), E(x,y), E(x,yp)")
	// Example 6.1.
	qEx61 = MustParse("Q(x,y,z,yp,zp) :- R(x,y,z), R(x,y,zp), E(x,y), E(x,yp), S(x,y,z)")
	// Figure 1 query ϕ(x1,x2,x3) = ∃x4∃x5 (Ex1x2 ∧ Rx4x1x2x1 ∧ Rx5x3x2x1).
	qFig1 = MustParse("Q(x1,x2,x3) :- E(x1,x2), R(x4,x1,x2,x1), R(x5,x3,x2,x1)")
	// Section 3's core example ϕ = ∃x∃y (Exx ∧ Exy ∧ Eyy) and its core.
	qLoops     = MustParse("Q() :- E(x,x), E(x,y), E(y,y)")
	qLoopsCore = MustParse("Q() :- E(x,x)")
	// Appendix A's ϕ1(x,y).
	qPhi1 = MustParse("Q(x,y) :- E(x,x), E(x,y), E(y,y)")
)

func TestParseBasic(t *testing.T) {
	q, err := Parse("Ans(x, y) :- R(x, y), S(y, z).")
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != "Ans" {
		t.Errorf("Name = %q", q.Name)
	}
	if got := strings.Join(q.Head, ","); got != "x,y" {
		t.Errorf("Head = %q", got)
	}
	if len(q.Atoms) != 2 || q.Atoms[0].String() != "R(x,y)" || q.Atoms[1].String() != "S(y,z)" {
		t.Errorf("Atoms = %v", q.Atoms)
	}
}

func TestParseBoolean(t *testing.T) {
	q := MustParse("Q() :- E(x,y)")
	if !q.IsBoolean() || q.Arity() != 0 {
		t.Errorf("Boolean query misparsed: %v", q)
	}
}

func TestParsePrimes(t *testing.T) {
	q := MustParse("Q(y') :- E(x,y'), T(y')")
	if q.Head[0] != "y'" {
		t.Errorf("primed variable misparsed: %q", q.Head[0])
	}
}

func TestParseWhitespaceAndNoDot(t *testing.T) {
	q, err := Parse("  Q ( x )  :-  R ( x , y )  ")
	if err != nil {
		t.Fatal(err)
	}
	if q.String() != "Q(x) :- R(x,y)." {
		t.Errorf("String() = %q", q.String())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"Q(x)",
		"Q(x) :-",
		"Q(x) :- R(x,)",
		"Q(x) :- R(x) extra",
		"Q(x,x) :- R(x)",       // repeated head var
		"Q(z) :- R(x)",         // head var not in body
		"Q(x) :- R(x), R(x,y)", // inconsistent arity
		"Q(x) :- R()",          // empty atom
		"1Q(x) :- R(x)",        // bad identifier
		"Q(x) :- R(x),, S(x)",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, q := range []*Query{qSET, qSETBool, qET, qEx61, qFig1, qLoops} {
		r, err := Parse(q.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", q.String(), err)
		}
		if r.String() != q.String() {
			t.Errorf("round trip changed %q to %q", q.String(), r.String())
		}
	}
}

func TestVarsAndFreeVars(t *testing.T) {
	if got := strings.Join(qSET.Vars(), ","); got != "x,y" {
		t.Errorf("Vars = %q", got)
	}
	if got := strings.Join(qEx61.Vars(), ","); got != "x,y,z,yp,zp" {
		t.Errorf("Vars = %q", got)
	}
	if got := strings.Join(qET.QuantifiedVars(), ","); got != "y" {
		t.Errorf("QuantifiedVars = %q", got)
	}
	if qET.IsFree("y") || !qET.IsFree("x") {
		t.Error("IsFree wrong for qET")
	}
}

func TestIsSelfJoinFree(t *testing.T) {
	if !qSET.IsSelfJoinFree() {
		t.Error("qSET should be self-join free")
	}
	if qEx61.IsSelfJoinFree() {
		t.Error("qEx61 repeats R and E")
	}
	if qLoops.IsSelfJoinFree() {
		t.Error("qLoops repeats E")
	}
}

func TestSchema(t *testing.T) {
	s := qEx61.Schema()
	want := map[string]int{"R": 3, "E": 2, "S": 3}
	for r, a := range want {
		if s[r] != a {
			t.Errorf("Schema[%s] = %d, want %d", r, s[r], a)
		}
	}
	if got := strings.Join(qEx61.Relations(), ","); got != "E,R,S" {
		t.Errorf("Relations = %q", got)
	}
}

// TestHierarchicalVariants checks the Section 3 discussion: ϕS-E-T is
// hierarchical w.r.t. Fink–Olteanu's notion and non-hierarchical w.r.t.
// Koutris–Suciu's notion.
func TestHierarchicalVariants(t *testing.T) {
	if qSET.IsHierarchical() {
		t.Error("ϕS-E-T must not be hierarchical (Koutris–Suciu)")
	}
	if !qSET.IsHierarchicalFinkOlteanu() {
		t.Error("ϕS-E-T must be hierarchical (Fink–Olteanu)")
	}
	if !qHier.IsHierarchical() {
		t.Error("Section 3's example must be hierarchical")
	}
	if !qET.IsHierarchical() {
		t.Error("ϕE-T is hierarchical (only condition (ii) fails)")
	}
}

// TestQHierarchicalByDefinition pins Definition 3.1 on every example the
// paper classifies explicitly.
func TestQHierarchicalByDefinition(t *testing.T) {
	cases := []struct {
		q    *Query
		want bool
	}{
		{qSET, false},     // violates (i)
		{qSETBool, false}, // violates (i)
		{qET, false},      // violates (ii)
		{qETFreeY, true},
		{qETJoin, true},
		{qETBool, true},
		{qHier, true},
		{qEx61, true},
		{qFig1, true},
		{qLoops, false}, // non-q-hierarchical (its core is q-hierarchical)
		{qPhi1, false},
	}
	for _, c := range cases {
		if got := c.q.IsQHierarchicalByDefinition(); got != c.want {
			t.Errorf("IsQHierarchicalByDefinition(%s) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestComponents(t *testing.T) {
	q := MustParse("Q(x,u) :- E(x,y), T(y), F(u), G(u,w)")
	comps := q.Components()
	if len(comps) != 2 {
		t.Fatalf("got %d components, want 2", len(comps))
	}
	if got := strings.Join(comps[0].Head, ","); got != "x" {
		t.Errorf("component 0 head = %q", got)
	}
	if got := strings.Join(comps[1].Head, ","); got != "u" {
		t.Errorf("component 1 head = %q", got)
	}
	if len(comps[0].Atoms) != 2 || len(comps[1].Atoms) != 2 {
		t.Errorf("component atom counts: %d, %d", len(comps[0].Atoms), len(comps[1].Atoms))
	}
	if !qSET.IsConnected() {
		t.Error("qSET is connected")
	}
	if q.IsConnected() {
		t.Error("q is not connected")
	}
}

func TestComponentsCrossAtomConnectivity(t *testing.T) {
	// x–y connected through one atom, y–z through another: one component.
	q := MustParse("Q() :- E(x,y), F(y,z)")
	if n := len(q.Components()); n != 1 {
		t.Errorf("got %d components, want 1", n)
	}
}

func TestHomomorphismBasics(t *testing.T) {
	// Triangle maps into a looped vertex.
	tri := MustParse("Q() :- E(x,y), E(y,z), E(z,x)")
	loop := MustParse("Q() :- E(v,v)")
	if Homomorphism(tri, loop) == nil {
		t.Error("triangle must map into loop")
	}
	if Homomorphism(loop, tri) != nil {
		t.Error("loop must not map into a loop-free triangle")
	}
	// Heads block collapses.
	if Homomorphism(qPhi1, MustParse("Q(x,y) :- E(x,x), E(y,y)")) != nil {
		t.Error("missing E(x,y) atom in target")
	}
}

func TestHomomorphismRespectsHead(t *testing.T) {
	a := MustParse("Q(x) :- E(x,y)")
	b := MustParse("Q(u) :- E(u,u)")
	h := Homomorphism(a, b)
	if h == nil {
		t.Fatal("expected homomorphism")
	}
	if h["x"] != "u" {
		t.Errorf("head not respected: h(x) = %q", h["x"])
	}
	// Reverse direction: E(u,u) must map to some E edge with head u ↦ x;
	// E(x,x) is not present in a, so none exists.
	if Homomorphism(b, a) != nil {
		t.Error("unexpected homomorphism from loop query")
	}
}

func TestHomEquivalent(t *testing.T) {
	a := MustParse("Q(x) :- E(x,y), E(x,z)")
	b := MustParse("Q(x) :- E(x,y)")
	if !HomEquivalent(a, b) {
		t.Error("a and b are homomorphically equivalent")
	}
	if HomEquivalent(a, MustParse("Q(x) :- E(y,x)")) {
		t.Error("direction matters")
	}
}

// TestCoreLoops pins the paper's Section 3 example: the core of
// ∃x∃y (Exx ∧ Exy ∧ Eyy) is ∃x Exx.
func TestCoreLoops(t *testing.T) {
	c := Core(qLoops)
	if len(c.Atoms) != 1 {
		t.Fatalf("core has %d atoms, want 1: %v", len(c.Atoms), c)
	}
	if !Isomorphic(c, qLoopsCore) {
		t.Errorf("Core(%s) = %s, want iso to %s", qLoops, c, qLoopsCore)
	}
}

// TestCoreNonBooleanLoops pins the §5.4 phenomenon: ϕ(x,y) = Exx∧Exy∧Eyy
// is its own core because the head pins x and y.
func TestCoreNonBooleanLoops(t *testing.T) {
	c := Core(qPhi1)
	if len(c.Atoms) != 3 {
		t.Fatalf("core has %d atoms, want 3: %v", len(c.Atoms), c)
	}
	if !Isomorphic(c, qPhi1) {
		t.Errorf("Core(%s) = %s, want itself", qPhi1, c)
	}
}

func TestCoreSelfJoinFreeIsIdentity(t *testing.T) {
	// Self-join free queries are their own cores (Section 3).
	for _, q := range []*Query{qSET, qSETBool, qET} {
		c := Core(q)
		if !Isomorphic(c, q.DedupAtoms()) {
			t.Errorf("Core(%s) = %s, want itself", q, c)
		}
	}
}

func TestCoreIdempotent(t *testing.T) {
	queries := []*Query{
		qLoops, qPhi1, qSET, qEx61,
		MustParse("Q() :- E(x,y), E(y,z), E(z,x), E(u,u)"), // collapses to loop
		MustParse("Q(x) :- E(x,y), E(x,z), F(z)"),
	}
	for _, q := range queries {
		c := Core(q)
		cc := Core(c)
		if !Isomorphic(c, cc) {
			t.Errorf("Core not idempotent for %s: %s vs %s", q, c, cc)
		}
		if Homomorphism(q, c) == nil || Homomorphism(c, q) == nil {
			t.Errorf("Core(%s) = %s not hom-equivalent to original", q, c)
		}
	}
}

func TestCoreTriangleWithLoop(t *testing.T) {
	q := MustParse("Q() :- E(x,y), E(y,z), E(z,x), E(u,u)")
	c := Core(q)
	if len(c.Atoms) != 1 || !Isomorphic(c, qLoopsCore) {
		t.Errorf("Core(%s) = %s, want single loop", q, c)
	}
}

func TestBooleanVersion(t *testing.T) {
	b := BooleanVersion(qPhi1)
	if !b.IsBoolean() {
		t.Fatal("BooleanVersion not Boolean")
	}
	// The Boolean version of ϕ1 collapses to ∃x Exx — the asymmetry the
	// paper highlights before Theorem 3.5.
	if c := Core(b); !Isomorphic(c, qLoopsCore) {
		t.Errorf("Core(Bool(ϕ1)) = %s, want loop", c)
	}
}

func TestIsomorphic(t *testing.T) {
	a := MustParse("Q(x) :- E(x,y), F(y)")
	b := MustParse("Q(u) :- E(u,w), F(w)")
	if !Isomorphic(a, b) {
		t.Error("renamed copies must be isomorphic")
	}
	if Isomorphic(a, MustParse("Q(x) :- E(x,y), F(x)")) {
		t.Error("different shape must not be isomorphic")
	}
	if Isomorphic(a, MustParse("Q(y) :- E(x,y), F(y)")) {
		t.Error("different head must not be isomorphic")
	}
}

func TestEndomorphisms(t *testing.T) {
	count := 0
	Endomorphisms(qLoops, func(map[string]string) bool { count++; return true })
	// x↦x,y↦y; x↦x,y↦x; x↦y,y↦y.
	if count != 3 {
		t.Errorf("qLoops has %d endomorphisms, want 3", count)
	}
	count = 0
	Endomorphisms(qPhi1, func(map[string]string) bool { count++; return true })
	// Head fixes both variables.
	if count != 1 {
		t.Errorf("qPhi1 has %d head-fixing endomorphisms, want 1", count)
	}
}

func TestHeadPermutations(t *testing.T) {
	sym := MustParse("Q(x,y) :- E(x,y), E(y,x)")
	perms := HeadPermutations(sym)
	if len(perms) != 2 {
		t.Errorf("symmetric query has %d head permutations, want 2: %v", len(perms), perms)
	}
	asym := MustParse("Q(x,y) :- E(x,y)")
	perms = HeadPermutations(asym)
	if len(perms) != 1 {
		t.Errorf("asymmetric query has %d head permutations, want 1: %v", len(perms), perms)
	}
	// ϕ1 is rigid: only the identity.
	perms = HeadPermutations(qPhi1)
	if len(perms) != 1 {
		t.Errorf("ϕ1 has %d head permutations, want 1: %v", len(perms), perms)
	}
}

func TestCanonical(t *testing.T) {
	a := MustParse("Q(x) :- E(x,y), F(y)")
	b := MustParse("Q(u) :- E(u,w), F(w)")
	if a.Canonical().String() != b.Canonical().String() {
		t.Errorf("canonical forms differ: %s vs %s", a.Canonical(), b.Canonical())
	}
}

func TestDedupAtoms(t *testing.T) {
	q := MustParse("Q(x) :- E(x,y), E(x,y), E(y,x)")
	d := q.DedupAtoms()
	if len(d.Atoms) != 2 {
		t.Errorf("DedupAtoms left %d atoms, want 2", len(d.Atoms))
	}
}

func TestSize(t *testing.T) {
	// Size must be positive and grow with the query; exact value is an
	// encoding convention.
	if qSET.Size() <= 0 || qEx61.Size() <= qET.Size() {
		t.Errorf("Size misbehaves: qSET=%d qET=%d qEx61=%d", qSET.Size(), qET.Size(), qEx61.Size())
	}
}

func TestAtomVars(t *testing.T) {
	a := Atom{Rel: "R", Args: []string{"x", "y", "x"}}
	vs := a.Vars()
	if len(vs) != 2 || vs[0] != "x" || vs[1] != "y" {
		t.Errorf("Vars = %v", vs)
	}
}
