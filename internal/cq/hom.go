package cq

import "sort"

// A homomorphism h from ϕ(x1,…,xk) to ϕ'(y1,…,yk) (Section 3 of the
// paper) is a variable mapping with h(xi) = yi for all i such that the
// h-image of every atom of ϕ is an atom of ϕ'. This file implements the
// backtracking search for homomorphisms, endomorphisms, isomorphisms, and
// homomorphic cores. Query sizes are tiny compared to databases (data
// complexity), so exponential-in-||ϕ|| search is the intended trade-off —
// the same stance the paper takes for its poly(ϕ) factors.

// Homomorphism returns a homomorphism from q to target respecting the
// heads (h(q.Head[i]) = target.Head[i]), or nil if none exists. Both
// queries must have the same arity; otherwise no homomorphism exists and
// nil is returned.
func Homomorphism(q, target *Query) map[string]string {
	if len(q.Head) != len(target.Head) {
		return nil
	}
	h := make(map[string]string, len(q.Head))
	for i, x := range q.Head {
		if prev, ok := h[x]; ok && prev != target.Head[i] {
			return nil // repeated head var would need two images
		}
		h[x] = target.Head[i]
	}
	return searchHom(q, target, h)
}

// HomomorphismWithSeed returns a homomorphism from q to target extending
// the given partial mapping seed (in addition to the head constraint), or
// nil if none exists. seed is not modified.
func HomomorphismWithSeed(q, target *Query, seed map[string]string) map[string]string {
	if len(q.Head) != len(target.Head) {
		return nil
	}
	h := make(map[string]string, len(seed)+len(q.Head))
	for k, v := range seed {
		h[k] = v
	}
	for i, x := range q.Head {
		if prev, ok := h[x]; ok && prev != target.Head[i] {
			return nil
		}
		h[x] = target.Head[i]
	}
	return searchHom(q, target, h)
}

// searchHom extends the partial map h to a full homomorphism q → target,
// returning the completed map or nil. h is consumed.
func searchHom(q, target *Query, h map[string]string) map[string]string {
	// Target atom index: relation → atoms.
	byRel := make(map[string][]Atom)
	for _, a := range target.Atoms {
		byRel[a.Rel] = append(byRel[a.Rel], a)
	}
	targetVars := target.Vars()

	// Order unassigned variables: most-constrained first (descending atom
	// membership count) for cheaper backtracking.
	occ := make(map[string]int)
	for _, a := range q.Atoms {
		for _, v := range a.Args {
			occ[v]++
		}
	}
	var todo []string
	for _, v := range q.Vars() {
		if _, ok := h[v]; !ok {
			todo = append(todo, v)
		}
	}
	sort.SliceStable(todo, func(i, j int) bool { return occ[todo[i]] > occ[todo[j]] })

	// consistent reports whether every fully-mapped atom of q has its image
	// in target.
	consistent := func() bool {
	atomLoop:
		for _, a := range q.Atoms {
			img := make([]string, len(a.Args))
			for i, v := range a.Args {
				w, ok := h[v]
				if !ok {
					continue atomLoop // not fully mapped yet
				}
				img[i] = w
			}
			found := false
			for _, t := range byRel[a.Rel] {
				if sameArgs(img, t.Args) {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}

	if !consistent() {
		return nil
	}

	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(todo) {
			return true
		}
		v := todo[i]
		for _, w := range targetVars {
			h[v] = w
			if consistentFor(q, byRel, h, v) && rec(i+1) {
				return true
			}
		}
		delete(h, v)
		return false
	}
	if rec(0) {
		return h
	}
	return nil
}

// consistentFor checks only the atoms containing v that are now fully
// mapped — an incremental version of the consistency check.
func consistentFor(q *Query, byRel map[string][]Atom, h map[string]string, v string) bool {
atomLoop:
	for _, a := range q.Atoms {
		contains := false
		for _, u := range a.Args {
			if u == v {
				contains = true
				break
			}
		}
		if !contains {
			continue
		}
		img := make([]string, len(a.Args))
		for i, u := range a.Args {
			w, ok := h[u]
			if !ok {
				continue atomLoop
			}
			img[i] = w
		}
		found := false
		for _, t := range byRel[a.Rel] {
			if sameArgs(img, t.Args) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func sameArgs(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// HomEquivalent reports whether q1 and q2 are homomorphically equivalent
// (homomorphisms exist in both directions). By Chandra–Merlin this is
// exactly result-equivalence on all databases.
func HomEquivalent(q1, q2 *Query) bool {
	return Homomorphism(q1, q2) != nil && Homomorphism(q2, q1) != nil
}

// Isomorphic reports whether q1 and q2 are isomorphic: a bijective
// variable renaming respecting heads maps the atom set of q1 onto that of
// q2. Cores are unique up to isomorphism, which tests rely on.
func Isomorphic(q1, q2 *Query) bool {
	d1, d2 := q1.DedupAtoms(), q2.DedupAtoms()
	if len(d1.Atoms) != len(d2.Atoms) || len(d1.Vars()) != len(d2.Vars()) {
		return false
	}
	h := Homomorphism(d1, d2)
	if h == nil {
		return false
	}
	// A homomorphism between queries with equally many variables and atoms
	// is an isomorphism iff it is injective on variables and surjective on
	// atoms; search specifically for one.
	return injectiveHom(d1, d2)
}

func injectiveHom(q, target *Query) bool {
	if len(q.Head) != len(target.Head) {
		return false
	}
	h := make(map[string]string)
	used := make(map[string]bool)
	for i, x := range q.Head {
		y := target.Head[i]
		if prev, ok := h[x]; ok {
			if prev != y {
				return false
			}
			continue
		}
		if used[y] {
			return false
		}
		h[x], used[y] = y, true
	}
	byRel := make(map[string][]Atom)
	for _, a := range target.Atoms {
		byRel[a.Rel] = append(byRel[a.Rel], a)
	}
	var todo []string
	for _, v := range q.Vars() {
		if _, ok := h[v]; !ok {
			todo = append(todo, v)
		}
	}
	targetVars := target.Vars()
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(todo) {
			// All variables injectively mapped and all atoms present in the
			// image; with equal atom counts after dedup, image covers target.
			imgAtoms := make(map[string]bool)
			for _, a := range q.Atoms {
				img := Atom{Rel: a.Rel, Args: make([]string, len(a.Args))}
				for j, v := range a.Args {
					img.Args[j] = h[v]
				}
				imgAtoms[img.String()] = true
			}
			return len(imgAtoms) == len(target.Atoms)
		}
		v := todo[i]
		for _, w := range targetVars {
			if used[w] {
				continue
			}
			h[v], used[w] = w, true
			if consistentFor(q, byRel, h, v) && rec(i+1) {
				return true
			}
			delete(h, v)
			used[w] = false
		}
		return false
	}
	return rec(0)
}
