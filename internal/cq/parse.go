package cq

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse reads a conjunctive query in Datalog-style syntax:
//
//	Q(x, y) :- R(x, y), S(y, z).
//
// The head lists the free variables (possibly empty: "Q() :- R(x)." is a
// Boolean query); every other body variable is existentially quantified.
// Variable and relation names are identifiers: a letter or underscore
// followed by letters, digits, underscores or primes ('). The trailing
// period is optional. Parse validates the query (see Query.Validate).
func Parse(text string) (*Query, error) {
	p := &parser{src: text}
	q, err := p.parseQuery()
	if err != nil {
		return nil, fmt.Errorf("parsing %q: %w", text, err)
	}
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("parsing %q: %w", text, err)
	}
	return q, nil
}

// MustParse is Parse but panics on error; intended for tests, examples and
// package-level query constants.
func MustParse(text string) *Query {
	q, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	src string
	pos int
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{}
	name, err := p.ident()
	if err != nil {
		return nil, fmt.Errorf("query name: %w", err)
	}
	q.Name = name
	head, err := p.argList()
	if err != nil {
		return nil, fmt.Errorf("head of %s: %w", name, err)
	}
	q.Head = head
	if err := p.expect(":-"); err != nil {
		return nil, err
	}
	for {
		rel, err := p.ident()
		if err != nil {
			return nil, fmt.Errorf("atom: %w", err)
		}
		args, err := p.argList()
		if err != nil {
			return nil, fmt.Errorf("atom %s: %w", rel, err)
		}
		if len(args) == 0 {
			return nil, fmt.Errorf("atom %s has no arguments", rel)
		}
		q.Atoms = append(q.Atoms, Atom{Rel: rel, Args: args})
		p.skipSpace()
		if !p.eat(",") {
			break
		}
	}
	p.skipSpace()
	p.eat(".") // optional
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("unexpected trailing input at offset %d: %q", p.pos, p.rest())
	}
	return q, nil
}

func (p *parser) rest() string {
	r := p.src[p.pos:]
	if len(r) > 20 {
		r = r[:20] + "…"
	}
	return r
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
}

func (p *parser) eat(tok string) bool {
	p.skipSpace()
	if strings.HasPrefix(p.src[p.pos:], tok) {
		p.pos += len(tok)
		return true
	}
	return false
}

func (p *parser) expect(tok string) error {
	if !p.eat(tok) {
		return fmt.Errorf("expected %q at offset %d, found %q", tok, p.pos, p.rest())
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || c == '\'' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func (p *parser) ident() (string, error) {
	p.skipSpace()
	start := p.pos
	if p.pos >= len(p.src) || !isIdentStart(p.src[p.pos]) {
		return "", fmt.Errorf("expected identifier at offset %d, found %q", p.pos, p.rest())
	}
	for p.pos < len(p.src) && isIdentPart(p.src[p.pos]) {
		p.pos++
	}
	return p.src[start:p.pos], nil
}

// argList parses "(" [ident {"," ident}] ")".
func (p *parser) argList() ([]string, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var args []string
	p.skipSpace()
	if p.eat(")") {
		return args, nil
	}
	for {
		v, err := p.ident()
		if err != nil {
			return nil, err
		}
		args = append(args, v)
		p.skipSpace()
		if p.eat(")") {
			return args, nil
		}
		if err := p.expect(","); err != nil {
			return nil, err
		}
	}
}
