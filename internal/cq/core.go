package cq

// Core returns the homomorphic core of q: a minimal subquery ϕ' of q such
// that there is a homomorphism from q to ϕ' but none from ϕ' to a proper
// subquery of ϕ' (Section 3 of the paper). By Chandra–Merlin the core is
// unique up to isomorphism and ϕ'(D) = ϕ(D) for every database D, which is
// why Theorems 3.4 and 3.5 classify queries by the q-hierarchicality of
// their cores.
//
// The computation iterates proper retractions: find an endomorphism of the
// current query that fixes every free variable and whose image misses at
// least one atom, restrict to the image, repeat. Core computation is
// NP-hard in ||ϕ|| in general; queries are small, so backtracking search
// is fine (data-complexity viewpoint).
func Core(q *Query) *Query {
	cur := q.DedupAtoms()
	for {
		next, shrunk := retract(cur)
		if !shrunk {
			return cur
		}
		cur = next
	}
}

// retract searches for an endomorphism of q (fixing the head pointwise)
// whose atom image is a proper subset of q's atoms. If found, it returns
// the image subquery and true.
func retract(q *Query) (*Query, bool) {
	// Try to find an endomorphism avoiding each atom in turn. An
	// endomorphism with a proper image must avoid some atom, so trying each
	// "excluded" atom is complete.
	for excl := range q.Atoms {
		target := &Query{Name: q.Name, Head: q.Head}
		for i, a := range q.Atoms {
			if i != excl {
				target.Atoms = append(target.Atoms, a)
			}
		}
		h := Homomorphism(q, target)
		if h == nil {
			continue
		}
		// Build the image subquery: the atoms of q actually hit by h. (The
		// image is contained in target's atoms, hence misses atom excl.)
		img := &Query{Name: q.Name, Head: append([]string(nil), q.Head...)}
		seen := make(map[string]bool)
		for _, a := range q.Atoms {
			ia := Atom{Rel: a.Rel, Args: make([]string, len(a.Args))}
			for j, v := range a.Args {
				ia.Args[j] = h[v]
			}
			if key := ia.String(); !seen[key] {
				seen[key] = true
				img.Atoms = append(img.Atoms, ia)
			}
		}
		return img, true
	}
	return nil, false
}

// BooleanVersion returns ∃x1…∃xk ϕ: the query with all free variables
// existentially quantified. Theorem 3.4 concerns the core of this query,
// while Theorem 3.5 concerns the core of ϕ itself — the paper stresses the
// difference with the example (Exx ∧ Exy ∧ Eyy).
func BooleanVersion(q *Query) *Query {
	b := q.Clone()
	b.Name = q.displayName() + "_bool"
	b.Head = nil
	return b
}

// Endomorphisms calls fn for every endomorphism of q that fixes the head
// pointwise, until fn returns false. The mapping passed to fn is reused
// across calls; copy it if needed.
func Endomorphisms(q *Query, fn func(h map[string]string) bool) {
	byRel := make(map[string][]Atom)
	for _, a := range q.Atoms {
		byRel[a.Rel] = append(byRel[a.Rel], a)
	}
	h := make(map[string]string)
	for _, x := range q.Head {
		h[x] = x
	}
	var todo []string
	for _, v := range q.Vars() {
		if _, ok := h[v]; !ok {
			todo = append(todo, v)
		}
	}
	vars := q.Vars()
	stop := false
	var rec func(i int)
	rec = func(i int) {
		if stop {
			return
		}
		if i == len(todo) {
			if !fn(h) {
				stop = true
			}
			return
		}
		v := todo[i]
		for _, w := range vars {
			h[v] = w
			if consistentFor(q, byRel, h, v) {
				rec(i + 1)
				if stop {
					return
				}
			}
		}
		delete(h, v)
	}
	// Head-fixing must itself be consistent for atoms over head vars only.
	ok := true
	for _, x := range q.Head {
		if !consistentFor(q, byRel, h, x) {
			ok = false
			break
		}
	}
	if ok {
		rec(0)
	}
}

// HeadPermutations returns the set Π of Lemma 5.8: all permutations π of
// the head positions such that xi ↦ x_{π(i)} extends to an endomorphism of
// q. Each permutation is returned as a slice p with p[i] = π(i) (0-based).
// The identity is always included (for a valid query).
func HeadPermutations(q *Query) [][]int {
	k := len(q.Head)
	pos := make(map[string]int, k)
	for i, x := range q.Head {
		pos[x] = i
	}
	var perms [][]int
	seen := make(map[string]bool)
	var rec func(p []int, used []bool)
	rec = func(p []int, used []bool) {
		if len(p) == k {
			key := ""
			for _, i := range p {
				key += string(rune('a' + i))
			}
			if seen[key] {
				return
			}
			// Check xi ↦ x_{p[i]} extends to an endomorphism.
			seed := make(map[string]string, k)
			for i, x := range q.Head {
				seed[x] = q.Head[p[i]]
			}
			// Build the "unconstrained-head" version so that the seed, not the
			// identity head constraint, pins the head variables.
			free := q.Clone()
			free.Head = nil
			if HomomorphismWithSeed(free, free, seed) != nil {
				seen[key] = true
				perms = append(perms, append([]int(nil), p...))
			}
			return
		}
		for i := 0; i < k; i++ {
			if used[i] {
				continue
			}
			used[i] = true
			rec(append(p, i), used)
			used[i] = false
		}
	}
	rec([]int{}, make([]bool, k))
	return perms
}
