// Package cq defines conjunctive queries (CQs) as in Section 2 of
// Berkholz, Keppeler, Schweikardt: "Answering Conjunctive Queries under
// Updates" (PODS 2017): queries of the form
//
//	ϕ(x1,…,xk) = ∃y1 … ∃yℓ (ψ1 ∧ … ∧ ψd)
//
// over a relational schema, where the ψj are relational atoms whose
// arguments are variables, the xi are the free (output) variables, and all
// remaining variables are existentially quantified.
//
// The package provides the textual Datalog-style syntax used throughout
// this repository (see Parse), structural accessors (free variables,
// connected components, atoms-of-a-variable sets), homomorphisms between
// queries, and homomorphic cores (Chandra–Merlin), which the paper's
// Theorems 3.4 and 3.5 classify by.
package cq

import (
	"fmt"
	"sort"
	"strings"
)

// Atom is a relational atom R(u1,…,ur). Arguments are variable names; the
// paper's atoms contain no constants, and neither do ours.
type Atom struct {
	Rel  string
	Args []string
}

// String renders the atom as R(u1,…,ur).
func (a Atom) String() string {
	return a.Rel + "(" + strings.Join(a.Args, ",") + ")"
}

// Vars returns the distinct variables of the atom in order of first
// occurrence.
func (a Atom) Vars() []string {
	seen := make(map[string]bool, len(a.Args))
	var out []string
	for _, v := range a.Args {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// equalAtoms reports syntactic equality.
func equalAtoms(a, b Atom) bool {
	if a.Rel != b.Rel || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if a.Args[i] != b.Args[i] {
			return false
		}
	}
	return true
}

// Query is a k-ary conjunctive query. Head lists the free variables
// x1,…,xk in output order (empty for Boolean queries); Atoms is the
// quantifier-free body; every body variable not in Head is existentially
// quantified. Name is the head predicate name used for display only.
type Query struct {
	Name  string
	Head  []string
	Atoms []Atom
}

// Arity returns k, the number of free variables.
func (q *Query) Arity() int { return len(q.Head) }

// IsBoolean reports whether the query has no free variables.
func (q *Query) IsBoolean() bool { return len(q.Head) == 0 }

// String renders the query in the parseable syntax, e.g.
// "Q(x,y) :- R(x,y), S(y)."
func (q *Query) String() string {
	name := q.Name
	if name == "" {
		name = "Q"
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('(')
	b.WriteString(strings.Join(q.Head, ","))
	b.WriteString(") :- ")
	for i, a := range q.Atoms {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	b.WriteByte('.')
	return b.String()
}

// Vars returns all variables of the query in order of first occurrence
// (head first, then body).
func (q *Query) Vars() []string {
	seen := make(map[string]bool)
	var out []string
	add := func(v string) {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	for _, v := range q.Head {
		add(v)
	}
	for _, a := range q.Atoms {
		for _, v := range a.Args {
			add(v)
		}
	}
	return out
}

// FreeVars returns the free variables (a copy of Head).
func (q *Query) FreeVars() []string {
	return append([]string(nil), q.Head...)
}

// IsFree reports whether v is a free variable of q.
func (q *Query) IsFree(v string) bool {
	for _, h := range q.Head {
		if h == v {
			return true
		}
	}
	return false
}

// QuantifiedVars returns the existentially quantified variables in order
// of first occurrence.
func (q *Query) QuantifiedVars() []string {
	var out []string
	for _, v := range q.Vars() {
		if !q.IsFree(v) {
			out = append(out, v)
		}
	}
	return out
}

// IsSelfJoinFree reports whether no relation symbol occurs in more than
// one atom (the paper's "self-join free", also called non-repeating).
func (q *Query) IsSelfJoinFree() bool {
	seen := make(map[string]bool)
	for _, a := range q.Atoms {
		if seen[a.Rel] {
			return false
		}
		seen[a.Rel] = true
	}
	return true
}

// Schema returns the relation symbols of the query with their arities.
func (q *Query) Schema() map[string]int {
	s := make(map[string]int)
	for _, a := range q.Atoms {
		s[a.Rel] = len(a.Args)
	}
	return s
}

// Relations returns the distinct relation symbols in sorted order.
func (q *Query) Relations() []string {
	s := q.Schema()
	out := make([]string, 0, len(s))
	for r := range s {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// Size returns ||ϕ|| as defined in the paper: the length of the query
// viewed as a word over σ ∪ var ∪ {∃, ∧, (, )}. Head variables are counted
// once, each atom contributes 1 (symbol) + arity (variables) + 2
// (parentheses), quantifiers contribute 1 + 1 each, conjunctions d-1.
func (q *Query) Size() int {
	n := len(q.Head)
	n += 2 * len(q.QuantifiedVars())
	for _, a := range q.Atoms {
		n += 1 + len(a.Args) + 2
	}
	if len(q.Atoms) > 0 {
		n += len(q.Atoms) - 1
	}
	return n
}

// AtomsOf returns, for every variable, the set of indices of atoms that
// contain it — the paper's atoms(x). The returned map is freshly built.
func (q *Query) AtomsOf() map[string]map[int]bool {
	out := make(map[string]map[int]bool)
	for i, a := range q.Atoms {
		for _, v := range a.Args {
			s := out[v]
			if s == nil {
				s = make(map[int]bool)
				out[v] = s
			}
			s[i] = true
		}
	}
	return out
}

// Validate checks the structural well-formedness rules assumed throughout
// the paper and this repository: at least one atom, every atom has at
// least one argument, relation arities are consistent, head variables are
// pairwise distinct and occur in the body.
func (q *Query) Validate() error {
	if len(q.Atoms) == 0 {
		return fmt.Errorf("query %s has no atoms", q.displayName())
	}
	arity := make(map[string]int)
	for _, a := range q.Atoms {
		if len(a.Args) == 0 {
			return fmt.Errorf("atom %s has no arguments", a.Rel)
		}
		if prev, ok := arity[a.Rel]; ok && prev != len(a.Args) {
			return fmt.Errorf("relation %s used with arities %d and %d", a.Rel, prev, len(a.Args))
		}
		arity[a.Rel] = len(a.Args)
	}
	seen := make(map[string]bool)
	body := make(map[string]bool)
	for _, a := range q.Atoms {
		for _, v := range a.Args {
			body[v] = true
		}
	}
	for _, h := range q.Head {
		if seen[h] {
			return fmt.Errorf("head variable %s repeated", h)
		}
		seen[h] = true
		if !body[h] {
			return fmt.Errorf("head variable %s does not occur in the body", h)
		}
	}
	return nil
}

func (q *Query) displayName() string {
	if q.Name == "" {
		return "Q"
	}
	return q.Name
}

// Clone returns a deep copy of the query.
func (q *Query) Clone() *Query {
	c := &Query{Name: q.Name, Head: append([]string(nil), q.Head...)}
	c.Atoms = make([]Atom, len(q.Atoms))
	for i, a := range q.Atoms {
		c.Atoms[i] = Atom{Rel: a.Rel, Args: append([]string(nil), a.Args...)}
	}
	return c
}

// DedupAtoms returns a copy of q with syntactically duplicate atoms
// removed (conjunction is idempotent, so the query is equivalent).
func (q *Query) DedupAtoms() *Query {
	c := &Query{Name: q.Name, Head: append([]string(nil), q.Head...)}
	for _, a := range q.Atoms {
		dup := false
		for _, b := range c.Atoms {
			if equalAtoms(a, b) {
				dup = true
				break
			}
		}
		if !dup {
			c.Atoms = append(c.Atoms, Atom{Rel: a.Rel, Args: append([]string(nil), a.Args...)})
		}
	}
	return c
}

// Components splits q into its connected components (Section 4): maximal
// sub-queries whose variable sets are connected via shared atoms. Head
// variables keep their relative order; component order follows the first
// occurrence of any of the component's variables in the body.
func (q *Query) Components() []*Query {
	if len(q.Atoms) == 0 {
		return nil
	}
	// Union-find over variables.
	parent := make(map[string]string)
	var find func(string) string
	find = func(v string) string {
		if parent[v] == v {
			return v
		}
		parent[v] = find(parent[v])
		return parent[v]
	}
	for _, v := range q.Vars() {
		parent[v] = v
	}
	union := func(a, b string) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, a := range q.Atoms {
		vs := a.Vars()
		for _, v := range vs[1:] {
			union(vs[0], v)
		}
	}
	// Group atoms by component root, preserving atom order.
	var roots []string
	atomsByRoot := make(map[string][]Atom)
	for _, a := range q.Atoms {
		r := find(a.Args[0])
		if _, ok := atomsByRoot[r]; !ok {
			roots = append(roots, r)
		}
		atomsByRoot[r] = append(atomsByRoot[r], a)
	}
	out := make([]*Query, 0, len(roots))
	for i, r := range roots {
		sub := &Query{Name: fmt.Sprintf("%s_c%d", q.displayName(), i)}
		for _, h := range q.Head {
			if find(h) == r {
				sub.Head = append(sub.Head, h)
			}
		}
		sub.Atoms = atomsByRoot[r]
		out = append(out, sub)
	}
	return out
}

// IsConnected reports whether q has exactly one connected component.
func (q *Query) IsConnected() bool { return len(q.Components()) == 1 }

// IsQHierarchicalByDefinition checks Definition 3.1 literally: for all
// variable pairs x, y, (i) atoms(x) and atoms(y) are comparable or
// disjoint, and (ii) if atoms(x) ⊊ atoms(y) and x is free then y is free.
// This brute-force check is the specification that the q-tree based
// decision procedure in package qtree is tested against.
func (q *Query) IsQHierarchicalByDefinition() bool {
	ao := q.AtomsOf()
	vars := q.Vars()
	subset := func(a, b map[int]bool) bool {
		for i := range a {
			if !b[i] {
				return false
			}
		}
		return true
	}
	disjoint := func(a, b map[int]bool) bool {
		for i := range a {
			if b[i] {
				return false
			}
		}
		return true
	}
	for _, x := range vars {
		for _, y := range vars {
			if x == y {
				continue
			}
			ax, ay := ao[x], ao[y]
			xiny, yinx := subset(ax, ay), subset(ay, ax)
			if !xiny && !yinx && !disjoint(ax, ay) {
				return false // violates (i)
			}
			if xiny && !yinx && q.IsFree(x) && !q.IsFree(y) {
				return false // violates (ii)
			}
		}
	}
	return true
}

// IsHierarchical checks condition (i) of Definition 3.1 for all variable
// pairs — the hierarchical property of Dalvi–Suciu (for Boolean queries)
// and Koutris–Suciu (for join queries).
func (q *Query) IsHierarchical() bool {
	return q.hierarchicalOver(q.Vars())
}

// IsHierarchicalFinkOlteanu checks condition (i) only for pairs of
// quantified variables — Fink and Olteanu's variant, under which every
// quantifier-free query is hierarchical (Section 3 of the paper).
func (q *Query) IsHierarchicalFinkOlteanu() bool {
	return q.hierarchicalOver(q.QuantifiedVars())
}

func (q *Query) hierarchicalOver(vars []string) bool {
	ao := q.AtomsOf()
	subset := func(a, b map[int]bool) bool {
		for i := range a {
			if !b[i] {
				return false
			}
		}
		return true
	}
	disjoint := func(a, b map[int]bool) bool {
		for i := range a {
			if b[i] {
				return false
			}
		}
		return true
	}
	for i, x := range vars {
		for _, y := range vars[i+1:] {
			ax, ay := ao[x], ao[y]
			if !subset(ax, ay) && !subset(ay, ax) && !disjoint(ax, ay) {
				return false
			}
		}
	}
	return true
}

// Canonical returns a copy of q with variables renamed to v0, v1, … in
// order of first occurrence and atoms sorted; two queries that are equal
// up to consistent variable renaming and atom order have identical
// Canonical forms. Used by tests to compare cores structurally.
func (q *Query) Canonical() *Query {
	ren := make(map[string]string)
	next := 0
	name := func(v string) string {
		if n, ok := ren[v]; ok {
			return n
		}
		n := fmt.Sprintf("v%d", next)
		next++
		ren[v] = n
		return n
	}
	c := &Query{Name: q.displayName()}
	for _, h := range q.Head {
		c.Head = append(c.Head, name(h))
	}
	// Rename body vars in first-occurrence order for determinism.
	for _, a := range q.Atoms {
		na := Atom{Rel: a.Rel, Args: make([]string, len(a.Args))}
		for i, v := range a.Args {
			na.Args[i] = name(v)
		}
		c.Atoms = append(c.Atoms, na)
	}
	sort.Slice(c.Atoms, func(i, j int) bool {
		return c.Atoms[i].String() < c.Atoms[j].String()
	})
	return c
}
