package omv

import (
	"math/rand"
	"testing"
)

func TestVectorSetGetString(t *testing.T) {
	v := NewVector(130) // spans three words
	for _, i := range []int{0, 63, 64, 127, 128, 129} {
		if v.Get(i) {
			t.Fatalf("fresh vector has bit %d set", i)
		}
		v.Set(i, true)
		if !v.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
		v.Set(i, false)
		if v.Get(i) {
			t.Fatalf("bit %d not cleared", i)
		}
	}
	u := NewVector(4)
	u.Set(0, true)
	u.Set(2, true)
	if got := u.String(); got != "1010" {
		t.Fatalf("String = %q, want 1010", got)
	}
}

func TestDot(t *testing.T) {
	u, v := NewVector(70), NewVector(70)
	if u.Dot(v) {
		t.Fatal("zero vectors have nonzero dot")
	}
	u.Set(69, true)
	if u.Dot(v) {
		t.Fatal("dot with zero vector")
	}
	v.Set(69, true)
	if !u.Dot(v) {
		t.Fatal("overlapping bit 69 not detected")
	}
}

func TestMulVecAgainstDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(40)
		m := RandomMatrix(rng, n, 0.3)
		v := RandomVector(rng, n, 0.3)
		got := m.MulVec(v)
		for i := 0; i < n; i++ {
			want := false
			for j := 0; j < n; j++ {
				if m.Get(i, j) && v.Get(j) {
					want = true
				}
			}
			if got.Get(i) != want {
				t.Fatalf("n=%d: (Mv)_%d = %v, want %v", n, i, got.Get(i), want)
			}
		}
	}
}

func TestVecMatVecAgainstDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(30)
		m := RandomMatrix(rng, n, 0.2)
		u := RandomVector(rng, n, 0.3)
		v := RandomVector(rng, n, 0.3)
		want := false
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if u.Get(i) && m.Get(i, j) && v.Get(j) {
					want = true
				}
			}
		}
		if got := VecMatVec(u, m, v); got != want {
			t.Fatalf("n=%d: uMv = %v, want %v", n, got, want)
		}
	}
}

func TestNaiveOV(t *testing.T) {
	mk := func(bits ...int) Vector {
		v := NewVector(4)
		for _, b := range bits {
			v.Set(b, true)
		}
		return v
	}
	// Every pair overlaps: no orthogonal pair.
	inst := OVInstance{U: []Vector{mk(0, 1)}, V: []Vector{mk(1, 2)}}
	if NaiveOV(inst) {
		t.Fatal("overlapping pair reported orthogonal")
	}
	inst.V = append(inst.V, mk(2, 3))
	if !NaiveOV(inst) {
		t.Fatal("orthogonal pair missed")
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := Log2Ceil(n); got != want {
			t.Errorf("Log2Ceil(%d) = %d, want %d", n, got, want)
		}
	}
}
