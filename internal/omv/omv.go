// Package omv implements the fine-grained-complexity machinery behind the
// paper's lower bounds (Section 5): the online matrix–vector
// multiplication problem (OMv), its vector–matrix–vector variant (OuMv,
// Theorem 5.1), and the orthogonal vectors problem (OV, Conjecture 5.2),
// together with naive reference solvers and the paper's reductions from
// these problems to dynamic query evaluation.
//
// The reductions are the constructive content of Theorems 3.3–3.5: they
// drive any dynamic query-evaluation algorithm (anything satisfying
// DynamicEvaluator) with update streams encoding matrices and vectors and
// read the problem's answers off the query results. Plugging in a
// hypothetical algorithm with O(n^{1−ε}) update and answer/delay/count
// time would solve OMv/OuMv in O(n^{3−ε}) or OV in O(n^{2−ε}), refuting
// the conjectures; plugging in the Θ(n)-update IVM baseline (internal/ivm)
// demonstrates the reductions end to end and realises exactly the cubic
// cost the conjecture says is unavoidable.
//
// All arithmetic is over the Boolean semiring (∧ for ·, ∨ for +).
package omv

import (
	"math/rand"
	"strings"
)

// Vector is a dense bit vector over the Boolean semiring.
type Vector struct {
	n int
	w []uint64
}

// NewVector returns an all-zero vector of dimension n.
func NewVector(n int) Vector {
	return Vector{n: n, w: make([]uint64, (n+63)/64)}
}

// Dim returns the dimension.
func (v Vector) Dim() int { return v.n }

// Set sets bit i (0-based) to b.
func (v Vector) Set(i int, b bool) {
	if b {
		v.w[i/64] |= 1 << uint(i%64)
	} else {
		v.w[i/64] &^= 1 << uint(i%64)
	}
}

// Get returns bit i.
func (v Vector) Get(i int) bool {
	return v.w[i/64]&(1<<uint(i%64)) != 0
}

// Dot returns the Boolean inner product ⟨u,v⟩ = ∨_i (u_i ∧ v_i).
func (v Vector) Dot(u Vector) bool {
	if v.n != u.n {
		panic("omv: dimension mismatch in Dot")
	}
	for i := range v.w {
		if v.w[i]&u.w[i] != 0 {
			return true
		}
	}
	return false
}

// Equal reports whether two vectors agree.
func (v Vector) Equal(u Vector) bool {
	if v.n != u.n {
		return false
	}
	for i := range v.w {
		if v.w[i] != u.w[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	c := NewVector(v.n)
	copy(c.w, v.w)
	return c
}

// String renders the vector as a 0/1 string, e.g. "1010".
func (v Vector) String() string {
	var b strings.Builder
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// Matrix is a dense Boolean n×n matrix.
type Matrix struct {
	n    int
	rows []Vector
}

// NewMatrix returns an all-zero n×n matrix.
func NewMatrix(n int) Matrix {
	m := Matrix{n: n, rows: make([]Vector, n)}
	for i := range m.rows {
		m.rows[i] = NewVector(n)
	}
	return m
}

// Dim returns n.
func (m Matrix) Dim() int { return m.n }

// Set sets entry (i,j) (0-based).
func (m Matrix) Set(i, j int, b bool) { m.rows[i].Set(j, b) }

// Get returns entry (i,j).
func (m Matrix) Get(i, j int) bool { return m.rows[i].Get(j) }

// Row returns row i (shared storage).
func (m Matrix) Row(i int) Vector { return m.rows[i] }

// MulVec returns M·v over the Boolean semiring: (Mv)_i = ∨_j (M_ij ∧ v_j).
// This is the O(n²)-per-vector naive algorithm the OMv-conjecture
// benchmarks against.
func (m Matrix) MulVec(v Vector) Vector {
	out := NewVector(m.n)
	for i := 0; i < m.n; i++ {
		if m.rows[i].Dot(v) {
			out.Set(i, true)
		}
	}
	return out
}

// VecMatVec returns uᵀMv over the Boolean semiring.
func VecMatVec(u Vector, m Matrix, v Vector) bool {
	for i := 0; i < m.n; i++ {
		if u.Get(i) && m.rows[i].Dot(v) {
			return true
		}
	}
	return false
}

// NaiveOMv answers an OMv instance: for each vector v_t, M·v_t computed
// before seeing v_{t+1} (the online restriction is moot for the naive
// algorithm but kept for interface parity).
func NaiveOMv(m Matrix, vs []Vector) []Vector {
	out := make([]Vector, len(vs))
	for t, v := range vs {
		out[t] = m.MulVec(v)
	}
	return out
}

// NaiveOuMv answers an OuMv instance: for each pair (u_t, v_t) the bit
// u_tᵀ M v_t.
func NaiveOuMv(m Matrix, us, vs []Vector) []bool {
	if len(us) != len(vs) {
		panic("omv: |us| != |vs|")
	}
	out := make([]bool, len(us))
	for t := range us {
		out[t] = VecMatVec(us[t], m, vs[t])
	}
	return out
}

// OVInstance is an orthogonal vectors instance: two sets of n Boolean
// vectors of dimension d (Section 5.2; the conjecture takes d = ⌈log₂ n⌉).
type OVInstance struct {
	U, V []Vector
}

// NaiveOV reports whether some u ∈ U and v ∈ V are orthogonal
// (⟨u,v⟩ = 0), by checking all pairs in O(n²d).
func NaiveOV(inst OVInstance) bool {
	for _, u := range inst.U {
		for _, v := range inst.V {
			if !u.Dot(v) {
				return true
			}
		}
	}
	return false
}

// RandomVector returns a vector with each bit set independently with
// probability density.
func RandomVector(rng *rand.Rand, n int, density float64) Vector {
	v := NewVector(n)
	for i := 0; i < n; i++ {
		if rng.Float64() < density {
			v.Set(i, true)
		}
	}
	return v
}

// RandomMatrix returns an n×n matrix with i.i.d. entries of the given
// density.
func RandomMatrix(rng *rand.Rand, n int, density float64) Matrix {
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < density {
				m.Set(i, j, true)
			}
		}
	}
	return m
}

// RandomOuMvInstance returns a matrix and n pairs of query vectors.
func RandomOuMvInstance(rng *rand.Rand, n int, density float64) (Matrix, []Vector, []Vector) {
	m := RandomMatrix(rng, n, density)
	us := make([]Vector, n)
	vs := make([]Vector, n)
	for t := 0; t < n; t++ {
		us[t] = RandomVector(rng, n, density)
		vs[t] = RandomVector(rng, n, density)
	}
	return m, us, vs
}

// RandomOVInstance returns an OV instance with n vectors per side of
// dimension d; densities are biased low so that orthogonal pairs occur
// with reasonable probability.
func RandomOVInstance(rng *rand.Rand, n, d int, density float64) OVInstance {
	inst := OVInstance{U: make([]Vector, n), V: make([]Vector, n)}
	for i := 0; i < n; i++ {
		inst.U[i] = RandomVector(rng, d, density)
		inst.V[i] = RandomVector(rng, d, density)
	}
	return inst
}

// Log2Ceil returns max(1, ⌈log₂ n⌉) — the OV-conjecture's dimension
// d = ⌈log₂ n⌉, clamped to 1 so that degenerate instances (n = 1) still
// have nonzero-dimension vectors.
func Log2Ceil(n int) int {
	d := 0
	for 1<<uint(d) < n {
		d++
	}
	if d == 0 {
		d = 1
	}
	return d
}
