package omv

import (
	"fmt"

	"dyncq/internal/cq"
	"dyncq/internal/dyndb"
)

// DynamicEvaluator is the interface the reductions drive: any dynamic
// query-evaluation algorithm with update, Boolean answer, count and
// enumeration routines. Both internal/core.Engine (for q-hierarchical
// queries) and internal/ivm.Maintainer (for arbitrary CQs, with Θ(n)
// updates) satisfy it.
type DynamicEvaluator interface {
	Apply(dyndb.Update) (bool, error)
	Answer() bool
	Count() uint64
	Enumerate(yield func(tuple []int64) bool)
}

// EvaluatorFactory builds a dynamic evaluator for a query over the empty
// database.
type EvaluatorFactory func(q *cq.Query) (DynamicEvaluator, error)

// ConditionIWitness is a violation of Definition 3.1(i): two variables
// x, y and three atoms ψx, ψxy, ψy of the query with
// vars(ψx)∩{x,y} = {x}, vars(ψxy)∩{x,y} = {x,y}, vars(ψy)∩{x,y} = {y}.
// Such a witness exists iff the query is non-hierarchical, and it is the
// gadget the OuMv reduction of Section 5.4 encodes into.
type ConditionIWitness struct {
	X, Y              string
	PsiX, PsiXY, PsiY int // atom indices
}

// FindConditionIWitness searches q for a condition-(i) violation.
func FindConditionIWitness(q *cq.Query) (ConditionIWitness, bool) {
	ao := q.AtomsOf()
	vars := q.Vars()
	for _, x := range vars {
		for _, y := range vars {
			if x == y {
				continue
			}
			ax, ay := ao[x], ao[y]
			psiX, psiXY, psiY := -1, -1, -1
			for i := range ax {
				if ay[i] {
					psiXY = i
				} else {
					psiX = i
				}
			}
			for i := range ay {
				if !ax[i] {
					psiY = i
				}
			}
			if psiX >= 0 && psiXY >= 0 && psiY >= 0 {
				return ConditionIWitness{X: x, Y: y, PsiX: psiX, PsiXY: psiXY, PsiY: psiY}, true
			}
		}
	}
	return ConditionIWitness{}, false
}

// ConditionIIWitness is a violation of Definition 3.1(ii): a free
// variable x, a quantified variable y, and atoms ψxy (containing both)
// and ψy (containing y but not x). Used by the OMv-to-enumeration and
// OV-to-counting reductions (Theorems 3.3 and 3.5, second cases).
type ConditionIIWitness struct {
	X, Y        string
	PsiXY, PsiY int
}

// FindConditionIIWitness searches q for a condition-(ii) violation.
func FindConditionIIWitness(q *cq.Query) (ConditionIIWitness, bool) {
	ao := q.AtomsOf()
	for _, x := range q.Head {
		for _, y := range q.QuantifiedVars() {
			ax, ay := ao[x], ao[y]
			psiXY, psiY := -1, -1
			for i := range ay {
				if ax[i] {
					psiXY = i
				} else {
					psiY = i
				}
			}
			// Section 5.4's reduction only needs the atom pair (ψxy, ψy);
			// whether atoms(x) ⊆ atoms(y) additionally holds is irrelevant.
			if psiXY >= 0 && psiY >= 0 {
				return ConditionIIWitness{X: x, Y: y, PsiXY: psiXY, PsiY: psiY}, true
			}
		}
	}
	return ConditionIIWitness{}, false
}

// encoder realises the §5.4 database encodings D(ϕ,M,u,v), D(ϕ,M,v) and
// D(ϕ,U,v): it maps the variables of ϕ to the constant families a_i (for
// x, i < nA), b_j (for y, j < nB) and c_s (one per remaining variable)
// and materialises per-atom tuple sets. Tuples arising from distinct
// atoms are distinct (the constant families are disjoint and an atom's
// tuple pattern determines its variable sequence), so per-atom insertions
// and deletions never interfere.
type encoder struct {
	q      *cq.Query
	x, y   string
	nA, nB int
	cOf    map[string]int64 // c_s constants for variables other than x, y
}

func newEncoder(q *cq.Query, x, y string, nA, nB int) *encoder {
	e := &encoder{q: q, x: x, y: y, nA: nA, nB: nB, cOf: make(map[string]int64)}
	next := int64(1)
	for _, v := range q.Vars() {
		if v != x && v != y {
			e.cOf[v] = next
			next++
		}
	}
	return e
}

// aConst and bConst return the constants a_i and b_j (0-based i, j).
func (e *encoder) aConst(i int) int64 { return int64(len(e.cOf)) + 1 + int64(i) }
func (e *encoder) bConst(j int) int64 { return int64(len(e.cOf)) + 1 + int64(e.nA) + int64(j) }

// tuple materialises ι_{i,j}(ψ) for atom index ai.
func (e *encoder) tuple(ai, i, j int) []int64 {
	a := e.q.Atoms[ai]
	t := make([]int64, len(a.Args))
	for p, v := range a.Args {
		switch v {
		case e.x:
			t[p] = e.aConst(i)
		case e.y:
			t[p] = e.bConst(j)
		default:
			t[p] = e.cOf[v]
		}
	}
	return t
}

// dependsOn reports whether atom ai contains x and/or y.
func (e *encoder) dependsOn(ai int) (onX, onY bool) {
	for _, v := range e.q.Atoms[ai].Args {
		if v == e.x {
			onX = true
		}
		if v == e.y {
			onY = true
		}
	}
	return
}

// staticUpdates returns the insertions for every atom except the listed
// dynamic ones: tuples ι_{i,j}(ψ) for all relevant (i,j) (deduplicated by
// which of x, y the atom actually mentions).
func (e *encoder) staticUpdates(except map[int]bool) []dyndb.Update {
	var out []dyndb.Update
	for ai, a := range e.q.Atoms {
		if except[ai] {
			continue
		}
		onX, onY := e.dependsOn(ai)
		switch {
		case onX && onY:
			for i := 0; i < e.nA; i++ {
				for j := 0; j < e.nB; j++ {
					out = append(out, dyndb.Insert(a.Rel, e.tuple(ai, i, j)...))
				}
			}
		case onX:
			for i := 0; i < e.nA; i++ {
				out = append(out, dyndb.Insert(a.Rel, e.tuple(ai, i, 0)...))
			}
		case onY:
			for j := 0; j < e.nB; j++ {
				out = append(out, dyndb.Insert(a.Rel, e.tuple(ai, 0, j)...))
			}
		default:
			out = append(out, dyndb.Insert(a.Rel, e.tuple(ai, 0, 0)...))
		}
	}
	return out
}

// matrixUpdates returns the insertions encoding M into atom ai
// (ι_{i,j}(ψ) for all M_{ij} = 1).
func (e *encoder) matrixUpdates(ai int, m Matrix) []dyndb.Update {
	var out []dyndb.Update
	rel := e.q.Atoms[ai].Rel
	for i := 0; i < e.nA; i++ {
		for j := 0; j < e.nB; j++ {
			if m.Get(i, j) {
				out = append(out, dyndb.Insert(rel, e.tuple(ai, i, j)...))
			}
		}
	}
	return out
}

// vectorDiffX returns the updates switching atom ai's relation from
// encoding vector prev to encoding next, where the atom depends on x
// (entry i toggles tuple ι_{i,·}).
func (e *encoder) vectorDiffX(ai int, prev, next Vector) []dyndb.Update {
	var out []dyndb.Update
	rel := e.q.Atoms[ai].Rel
	for i := 0; i < e.nA; i++ {
		was, is := prev.Get(i), next.Get(i)
		if was == is {
			continue
		}
		if is {
			out = append(out, dyndb.Insert(rel, e.tuple(ai, i, 0)...))
		} else {
			out = append(out, dyndb.Delete(rel, e.tuple(ai, i, 0)...))
		}
	}
	return out
}

// vectorDiffY is vectorDiffX for a y-dependent atom (entry j toggles
// ι_{·,j}).
func (e *encoder) vectorDiffY(ai int, prev, next Vector) []dyndb.Update {
	var out []dyndb.Update
	rel := e.q.Atoms[ai].Rel
	for j := 0; j < e.nB; j++ {
		was, is := prev.Get(j), next.Get(j)
		if was == is {
			continue
		}
		if is {
			out = append(out, dyndb.Insert(rel, e.tuple(ai, 0, j)...))
		} else {
			out = append(out, dyndb.Delete(rel, e.tuple(ai, 0, j)...))
		}
	}
	return out
}

// AnswerReduction is the Theorem 3.4 reduction: OuMv solved through
// Boolean answering of a conjunctive query whose homomorphic core is not
// hierarchical (violates Definition 3.1(i)). Claims 5.6 and 5.7 guarantee
// correctness: for the core ϕ of the query, uᵀMv = 1 iff ϕ holds on
// D(ϕ,M,u,v).
type AnswerReduction struct {
	core *cq.Query
	wit  ConditionIWitness
	enc  *encoder
	ev   DynamicEvaluator
	u, v Vector
}

// NewAnswerReduction prepares the reduction for q (taking its core
// internally) with side length n, using factory to build the dynamic
// evaluator. It fails if the core is hierarchical — then condition (i)
// holds and this gadget does not apply (see NewEnumerateReduction for the
// condition-(ii) case).
func NewAnswerReduction(q *cq.Query, n int, factory EvaluatorFactory) (*AnswerReduction, error) {
	core := cq.Core(q)
	wit, ok := FindConditionIWitness(core)
	if !ok {
		return nil, fmt.Errorf("omv: core of %s is hierarchical; the OuMv answering gadget needs a condition-(i) violation", q)
	}
	ev, err := factory(core)
	if err != nil {
		return nil, fmt.Errorf("omv: building evaluator: %w", err)
	}
	return &AnswerReduction{
		core: core,
		wit:  wit,
		enc:  newEncoder(core, wit.X, wit.Y, n, n),
		ev:   ev,
		u:    NewVector(n),
		v:    NewVector(n),
	}, nil
}

// Core returns the core query the reduction actually evaluates.
func (r *AnswerReduction) Core() *cq.Query { return r.core }

// Witness returns the condition-(i) violation used by the encoding.
func (r *AnswerReduction) Witness() ConditionIWitness { return r.wit }

// SetMatrix loads M into the ψxy relation and materialises all static
// atoms (the preprocessing phase: at most n² + O(n) updates).
func (r *AnswerReduction) SetMatrix(m Matrix) error {
	if m.Dim() != r.enc.nA {
		return fmt.Errorf("omv: matrix dim %d, reduction built for %d", m.Dim(), r.enc.nA)
	}
	except := map[int]bool{r.wit.PsiX: true, r.wit.PsiXY: true, r.wit.PsiY: true}
	for _, u := range r.enc.staticUpdates(except) {
		if _, err := r.ev.Apply(u); err != nil {
			return err
		}
	}
	for _, u := range r.enc.matrixUpdates(r.wit.PsiXY, m) {
		if _, err := r.ev.Apply(u); err != nil {
			return err
		}
	}
	return nil
}

// Round processes one OuMv round: switch the ψx and ψy relations to the
// characteristic vectors of u and v (at most 2n updates) and return the
// Boolean answer, which equals uᵀMv.
func (r *AnswerReduction) Round(u, v Vector) (bool, error) {
	for _, upd := range r.enc.vectorDiffX(r.wit.PsiX, r.u, u) {
		if _, err := r.ev.Apply(upd); err != nil {
			return false, err
		}
	}
	for _, upd := range r.enc.vectorDiffY(r.wit.PsiY, r.v, v) {
		if _, err := r.ev.Apply(upd); err != nil {
			return false, err
		}
	}
	r.u, r.v = u.Clone(), v.Clone()
	return r.ev.Answer(), nil
}

// SolveOuMvViaAnswering runs the full Theorem 3.4 pipeline: preprocessing
// with M, then one Round per vector pair.
func SolveOuMvViaAnswering(q *cq.Query, m Matrix, us, vs []Vector, factory EvaluatorFactory) ([]bool, error) {
	if len(us) != len(vs) {
		return nil, fmt.Errorf("omv: |us| = %d, |vs| = %d", len(us), len(vs))
	}
	r, err := NewAnswerReduction(q, m.Dim(), factory)
	if err != nil {
		return nil, err
	}
	if err := r.SetMatrix(m); err != nil {
		return nil, err
	}
	out := make([]bool, len(us))
	for t := range us {
		out[t], err = r.Round(us[t], vs[t])
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// EnumerateReduction is the Theorem 3.3 reduction for queries satisfying
// condition (i) but violating condition (ii) (the proof's second case,
// generalising Lemma 5.4's ϕE-T example): OMv solved through enumeration
// of a self-join-free query. After loading M into ψxy, each round updates
// ψy to v_t and reads M·v_t off the x-coordinates of the enumerated
// result.
type EnumerateReduction struct {
	q    *cq.Query
	wit  ConditionIIWitness
	enc  *encoder
	ev   DynamicEvaluator
	v    Vector
	xPos int // position of x in the head
}

// NewEnumerateReduction prepares the reduction. The query must be
// self-join free (as in Theorem 3.3: every homomorphism then agrees with
// some ι_{i,j}) and violate condition (ii).
func NewEnumerateReduction(q *cq.Query, n int, factory EvaluatorFactory) (*EnumerateReduction, error) {
	if !q.IsSelfJoinFree() {
		return nil, fmt.Errorf("omv: %s is not self-join free; Theorem 3.3's reduction needs self-join freeness", q)
	}
	wit, ok := FindConditionIIWitness(q)
	if !ok {
		return nil, fmt.Errorf("omv: %s has no condition-(ii) violation; use AnswerReduction for condition-(i) cases", q)
	}
	xPos := -1
	for i, h := range q.Head {
		if h == wit.X {
			xPos = i
		}
	}
	if xPos < 0 {
		return nil, fmt.Errorf("omv: witness variable %s is not free", wit.X)
	}
	ev, err := factory(q)
	if err != nil {
		return nil, err
	}
	return &EnumerateReduction{
		q:    q,
		wit:  wit,
		enc:  newEncoder(q, wit.X, wit.Y, n, n),
		ev:   ev,
		v:    NewVector(n),
		xPos: xPos,
	}, nil
}

// SetMatrix loads M into ψxy and materialises the static atoms.
func (r *EnumerateReduction) SetMatrix(m Matrix) error {
	if m.Dim() != r.enc.nA {
		return fmt.Errorf("omv: matrix dim %d, reduction built for %d", m.Dim(), r.enc.nA)
	}
	except := map[int]bool{r.wit.PsiXY: true, r.wit.PsiY: true}
	for _, u := range r.enc.staticUpdates(except) {
		if _, err := r.ev.Apply(u); err != nil {
			return err
		}
	}
	for _, u := range r.enc.matrixUpdates(r.wit.PsiXY, m) {
		if _, err := r.ev.Apply(u); err != nil {
			return err
		}
	}
	return nil
}

// Round processes one OMv round: switch ψy to the characteristic vector
// of v (at most n updates), enumerate the ≤ n result tuples, and return
// M·v read off the a_i constants in the x position.
func (r *EnumerateReduction) Round(v Vector) (Vector, error) {
	for _, upd := range r.enc.vectorDiffY(r.wit.PsiY, r.v, v) {
		if _, err := r.ev.Apply(upd); err != nil {
			return Vector{}, err
		}
	}
	r.v = v.Clone()
	out := NewVector(r.enc.nA)
	base := r.enc.aConst(0)
	r.ev.Enumerate(func(t []int64) bool {
		i := int(t[r.xPos] - base)
		if i >= 0 && i < r.enc.nA {
			out.Set(i, true)
		}
		return true
	})
	return out, nil
}

// SolveOMvViaEnumeration runs the full Theorem 3.3 pipeline on q
// (canonically ϕE-T(x) = ∃y (Exy ∧ Ty)).
func SolveOMvViaEnumeration(q *cq.Query, m Matrix, vs []Vector, factory EvaluatorFactory) ([]Vector, error) {
	r, err := NewEnumerateReduction(q, m.Dim(), factory)
	if err != nil {
		return nil, err
	}
	if err := r.SetMatrix(m); err != nil {
		return nil, err
	}
	out := make([]Vector, len(vs))
	for t, v := range vs {
		out[t], err = r.Round(v)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
