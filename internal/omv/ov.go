package omv

import (
	"fmt"

	"dyncq/internal/cq"
	"dyncq/internal/dyndb"
)

// CountReduction is the Theorem 3.5 (second case) reduction, generalising
// Lemma 5.5's ϕE-T example: the orthogonal vectors problem solved through
// dynamic counting of a self-join-free query violating condition (ii).
//
// The database D(ϕ,U,v) encodes the vector set U into the ψxy relation
// over pairs (a_i, b_j) with i < n = |U| and j < d (the vector dimension)
// and the current right-hand vector v into ψy. Self-join-freeness makes
// every homomorphism an ι_{i,j}, so
//
//	|ϕ(D)| = |{ i : ⟨u_i, v⟩ ≠ 0 }|,
//
// and some u_i is orthogonal to v iff the count is < n. Each new v costs
// at most d updates plus one count call.
//
// (For queries with self-joins, Theorem 3.5 composes this with the
// Lemma 5.8 partition-counting gadget; see internal/countdist.)
type CountReduction struct {
	q   *cq.Query
	wit ConditionIIWitness
	enc *encoder
	ev  DynamicEvaluator
	v   Vector
	n   int
}

// NewCountReduction prepares the reduction for n vectors of dimension d.
func NewCountReduction(q *cq.Query, n, d int, factory EvaluatorFactory) (*CountReduction, error) {
	if !q.IsSelfJoinFree() {
		return nil, fmt.Errorf("omv: %s is not self-join free; compose with the Lemma 5.8 gadget instead", q)
	}
	wit, ok := FindConditionIIWitness(q)
	if !ok {
		return nil, fmt.Errorf("omv: %s has no condition-(ii) violation", q)
	}
	ev, err := factory(q)
	if err != nil {
		return nil, err
	}
	return &CountReduction{
		q:   q,
		wit: wit,
		enc: newEncoder(q, wit.X, wit.Y, n, d),
		ev:  ev,
		v:   NewVector(d),
		n:   n,
	}, nil
}

// SetVectors loads U into ψxy ((a_i,b_j) present iff u_i[j] = 1) and
// materialises the static atoms — at most n·d + O(n+d) updates.
func (r *CountReduction) SetVectors(u []Vector) error {
	if len(u) != r.n {
		return fmt.Errorf("omv: %d vectors, reduction built for %d", len(u), r.n)
	}
	except := map[int]bool{r.wit.PsiXY: true, r.wit.PsiY: true}
	for _, upd := range r.enc.staticUpdates(except) {
		if _, err := r.ev.Apply(upd); err != nil {
			return err
		}
	}
	rel := r.q.Atoms[r.wit.PsiXY].Rel
	for i, ui := range u {
		if ui.Dim() != r.enc.nB {
			return fmt.Errorf("omv: vector %d has dimension %d, want %d", i, ui.Dim(), r.enc.nB)
		}
		for j := 0; j < r.enc.nB; j++ {
			if ui.Get(j) {
				if _, err := r.ev.Apply(dyndb.Insert(rel, r.enc.tuple(r.wit.PsiXY, i, j)...)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Round switches ψy to the characteristic vector of v (at most d
// updates) and reports whether some u_i is orthogonal to v
// (count < n).
func (r *CountReduction) Round(v Vector) (foundOrthogonal bool, err error) {
	for _, upd := range r.enc.vectorDiffY(r.wit.PsiY, r.v, v) {
		if _, err := r.ev.Apply(upd); err != nil {
			return false, err
		}
	}
	r.v = v.Clone()
	return r.ev.Count() < uint64(r.n), nil
}

// SolveOVViaCounting runs the full Lemma 5.5 pipeline on q (canonically
// ϕE-T(x) = ∃y (Exy ∧ Ty)): it reports whether the instance has an
// orthogonal pair, touching each v ∈ V with ≤ d updates and one count.
func SolveOVViaCounting(q *cq.Query, inst OVInstance, factory EvaluatorFactory) (bool, error) {
	if len(inst.U) == 0 || len(inst.V) == 0 {
		return false, nil
	}
	d := inst.U[0].Dim()
	r, err := NewCountReduction(q, len(inst.U), d, factory)
	if err != nil {
		return false, err
	}
	if err := r.SetVectors(inst.U); err != nil {
		return false, err
	}
	for _, v := range inst.V {
		found, err := r.Round(v)
		if err != nil {
			return false, err
		}
		if found {
			return true, nil
		}
	}
	return false, nil
}
