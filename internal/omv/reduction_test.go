package omv

import (
	"math/rand"
	"testing"

	"dyncq/internal/cq"
	"dyncq/internal/dyndb"
	"dyncq/internal/ivm"
)

func ivmFactory(q *cq.Query) (DynamicEvaluator, error) { return ivm.New(q) }

// TestFindConditionIWitness: the paper's hard queries must yield a
// condition-(i) violation; hierarchical queries must not.
func TestFindConditionIWitness(t *testing.T) {
	hard := []string{
		"Q(x,y) :- S(x), E(x,y), T(y)",  // ϕS-E-T
		"Q() :- S(x), E(x,y), T(y)",     // ϕ1
		"Q() :- E(x,y), F(y,z), G(z,x)", // triangle
	}
	for _, text := range hard {
		q := cq.MustParse(text)
		wit, ok := FindConditionIWitness(q)
		if !ok {
			t.Errorf("%s: no condition-(i) witness found", text)
			continue
		}
		// Verify the witness against its definition.
		ao := q.AtomsOf()
		x, y := wit.X, wit.Y
		if !ao[x][wit.PsiX] || ao[y][wit.PsiX] {
			t.Errorf("%s: ψx=%d does not isolate %s", text, wit.PsiX, x)
		}
		if !ao[x][wit.PsiXY] || !ao[y][wit.PsiXY] {
			t.Errorf("%s: ψxy=%d does not contain both %s and %s", text, wit.PsiXY, x, y)
		}
		if ao[x][wit.PsiY] || !ao[y][wit.PsiY] {
			t.Errorf("%s: ψy=%d does not isolate %s", text, wit.PsiY, y)
		}
		if q.IsHierarchical() {
			t.Errorf("%s: witness found but query is hierarchical", text)
		}
	}
	easy := []string{
		"Q(x) :- E(x,y), T(y)", // ϕE-T: hierarchical, violates only (ii)
		"Q(x,y) :- E(x,y)",
		"Q() :- R(x)",
	}
	for _, text := range easy {
		q := cq.MustParse(text)
		if wit, ok := FindConditionIWitness(q); ok {
			t.Errorf("%s: unexpected condition-(i) witness %+v on a hierarchical query", text, wit)
		}
	}
}

// TestFindConditionIIWitness: ϕE-T-style queries must yield a
// condition-(ii) violation; q-hierarchical queries must not yield either
// kind.
func TestFindConditionIIWitness(t *testing.T) {
	q := cq.MustParse("Q(x) :- E(x,y), T(y)")
	wit, ok := FindConditionIIWitness(q)
	if !ok {
		t.Fatalf("%s: no condition-(ii) witness", q)
	}
	if wit.X != "x" || wit.Y != "y" {
		t.Fatalf("witness (%s,%s), want (x,y)", wit.X, wit.Y)
	}
	ao := q.AtomsOf()
	if !ao[wit.X][wit.PsiXY] || !ao[wit.Y][wit.PsiXY] || ao[wit.X][wit.PsiY] || !ao[wit.Y][wit.PsiY] {
		t.Fatalf("witness atoms wrong: %+v", wit)
	}
	for _, text := range []string{
		"Q(y) :- E(x,y), T(y)", // q-hierarchical
		"Q(x,y) :- E(x,y)",
		"Q() :- E(x,y), T(y)", // Boolean: no free variable, no (ii) violation
	} {
		qq := cq.MustParse(text)
		if w, ok := FindConditionIIWitness(qq); ok {
			t.Errorf("%s: unexpected condition-(ii) witness %+v", text, w)
		}
	}
	// Every q-hierarchical query has neither witness (Definition 3.1).
	qh := cq.MustParse("Q(y) :- E(x,y), T(y)")
	if _, ok := FindConditionIWitness(qh); ok {
		t.Errorf("%s: condition-(i) witness on a q-hierarchical query", qh)
	}
}

// TestEncoderRoundTrip: loading a matrix through the encoder's update
// stream into a plain database and decoding the constants back must
// reproduce the matrix exactly, and vector diffs must track vector state.
func TestEncoderRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	q := cq.MustParse("Q(x) :- E(x,y), T(y)")
	const n = 17
	enc := newEncoder(q, "x", "y", n, n)
	m := RandomMatrix(rng, n, 0.35)

	db := dyndb.New()
	for _, u := range enc.matrixUpdates(0, m) { // atom 0 is E(x,y)
		if _, err := db.Apply(u); err != nil {
			t.Fatal(err)
		}
	}
	got := NewMatrix(n)
	aBase, bBase := enc.aConst(0), enc.bConst(0)
	db.Relation("E").Each(func(tu []int64) bool {
		i, j := int(tu[0]-aBase), int(tu[1]-bBase)
		if i < 0 || i >= n || j < 0 || j >= n {
			t.Fatalf("tuple %v decodes outside the matrix: (%d,%d)", tu, i, j)
		}
		got.Set(i, j, true)
		return true
	})
	for i := 0; i < n; i++ {
		if !got.Row(i).Equal(m.Row(i)) {
			t.Fatalf("row %d: got %s, want %s", i, got.Row(i), m.Row(i))
		}
	}

	// Vector diffs: walking prev→next must leave exactly next's bits set.
	prev := NewVector(n)
	for step := 0; step < 10; step++ {
		next := RandomVector(rng, n, 0.4)
		for _, u := range enc.vectorDiffY(1, prev, next) { // atom 1 is T(y)
			changed, err := db.Apply(u)
			if err != nil {
				t.Fatal(err)
			}
			if !changed {
				t.Fatalf("diff update %s was a no-op: diffs must be exact", u)
			}
		}
		decoded := NewVector(n)
		db.Relation("T").Each(func(tu []int64) bool {
			decoded.Set(int(tu[0]-bBase), true)
			return true
		})
		if !decoded.Equal(next) {
			t.Fatalf("step %d: decoded %s, want %s", step, decoded, next)
		}
		prev = next
	}
}

// TestSolveOuMvViaAnswering: the Theorem 3.4 reduction driven by the IVM
// baseline must agree with the naive OuMv solver.
func TestSolveOuMvViaAnswering(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	q := cq.MustParse("Q(x,y) :- S(x), E(x,y), T(y)")
	for trial := 0; trial < 3; trial++ {
		n := 4 + rng.Intn(6)
		m, us, vs := RandomOuMvInstance(rng, n, 0.3)
		got, err := SolveOuMvViaAnswering(q, m, us, vs, ivmFactory)
		if err != nil {
			t.Fatal(err)
		}
		want := NaiveOuMv(m, us, vs)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d round %d: reduction %v, naive %v", n, i, got[i], want[i])
			}
		}
	}
	// The gadget must refuse hierarchical cores.
	if _, err := NewAnswerReduction(cq.MustParse("Q(x) :- E(x,y), T(y)"), 4, ivmFactory); err == nil {
		t.Fatal("AnswerReduction accepted a query with hierarchical core")
	}
}

// TestSolveOMvViaEnumeration: the Theorem 3.3 reduction on ϕE-T must
// agree with the naive OMv solver.
func TestSolveOMvViaEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	q := cq.MustParse("Q(x) :- E(x,y), T(y)")
	for trial := 0; trial < 3; trial++ {
		n := 4 + rng.Intn(6)
		m := RandomMatrix(rng, n, 0.3)
		vs := make([]Vector, n)
		for i := range vs {
			vs[i] = RandomVector(rng, n, 0.3)
		}
		got, err := SolveOMvViaEnumeration(q, m, vs, ivmFactory)
		if err != nil {
			t.Fatal(err)
		}
		want := NaiveOMv(m, vs)
		for i := range want {
			if !got[i].Equal(want[i]) {
				t.Fatalf("n=%d round %d: reduction %s, naive %s", n, i, got[i], want[i])
			}
		}
	}
	// The gadget must refuse queries without a condition-(ii) violation.
	if _, err := NewEnumerateReduction(cq.MustParse("Q(y) :- E(x,y), T(y)"), 4, ivmFactory); err == nil {
		t.Fatal("EnumerateReduction accepted a q-hierarchical query")
	}
}
