package bench

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"dyncq/internal/cq"
	"dyncq/internal/dyndb"
	"dyncq/internal/workload"
	"dyncq/pkg/dyncq"
)

func allStrategies() []dyncq.Strategy {
	return []dyncq.Strategy{dyncq.StrategyCore, dyncq.StrategyIVM, dyncq.StrategyRecompute}
}

func TestRunCaseQHierarchical(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	q := cq.MustParse("Q(y) :- E(x,y), T(y)")
	cfg := Config{
		Name:         "star-small",
		Query:        q,
		Initial:      workload.StarSchemaStream(rng, 40, 2),
		Stream:       workload.RandomStream(rng, q.Schema(), 40, 200, 0.3),
		MaxEnumerate: 100,
	}
	res, err := RunCase(cfg, allStrategies())
	if err != nil {
		t.Fatal(err)
	}
	if !res.QHierarchical {
		t.Fatalf("%s should classify q-hierarchical", q)
	}
	if len(res.Strategies) != 3 {
		t.Fatalf("got %d strategy results, want 3 (core must run on a q-hierarchical query)", len(res.Strategies))
	}
	// All strategies must report the same final count — the harness runs
	// the identical stream through each.
	for _, s := range res.Strategies[1:] {
		if s.Count != res.Strategies[0].Count {
			t.Fatalf("strategy %s count %d, %s count %d",
				s.Strategy, s.Count, res.Strategies[0].Strategy, res.Strategies[0].Count)
		}
	}
	for _, s := range res.Strategies {
		if s.Updates != len(cfg.Stream) {
			t.Errorf("%s: %d updates recorded, want %d", s.Strategy, s.Updates, len(cfg.Stream))
		}
		if s.UpdateNS.Max < s.UpdateNS.P50 {
			t.Errorf("%s: max %d < p50 %d", s.Strategy, s.UpdateNS.Max, s.UpdateNS.P50)
		}
	}
}

func TestRunCaseSkipsCoreOnHardQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	q := cq.MustParse("Q(x,y) :- S(x), E(x,y), T(y)")
	cfg := Config{
		Name:   "hard-small",
		Query:  q,
		Stream: workload.RandomStream(rng, q.Schema(), 20, 100, 0.3),
	}
	res, err := RunCase(cfg, allStrategies())
	if err != nil {
		t.Fatal(err)
	}
	if res.QHierarchical {
		t.Fatalf("%s should not classify q-hierarchical", q)
	}
	for _, s := range res.Strategies {
		if s.Strategy == "core" {
			t.Fatal("core strategy ran on a non-q-hierarchical query")
		}
	}
	if len(res.Strategies) != 2 {
		t.Fatalf("got %d strategy results, want 2 (ivm + recompute)", len(res.Strategies))
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	q := cq.MustParse("Q(x) :- R(x), S(x)")
	rep, err := Run([]Config{{
		Name:   "tiny",
		Query:  q,
		Stream: workload.RandomStream(rng, q.Schema(), 10, 50, 0.2),
	}}, allStrategies())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal written report: %v", err)
	}
	if len(back.Cases) != 1 || back.Cases[0].Name != "tiny" {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if len(back.Cases[0].Strategies) == 0 {
		t.Fatal("no strategy results survived the round trip")
	}
}

// TestAutoStrategyLabeledWithResolvedBackend: requesting StrategyAuto
// must report the backend that actually ran, not "auto".
func TestAutoStrategyLabeledWithResolvedBackend(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	q := cq.MustParse("Q(y) :- E(x,y), T(y)")
	res, err := RunCase(Config{
		Name:   "auto-label",
		Query:  q,
		Stream: workload.RandomStream(rng, q.Schema(), 10, 50, 0.2),
	}, []dyncq.Strategy{dyncq.StrategyAuto})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Strategies) != 1 {
		t.Fatalf("got %d strategy results, want 1", len(res.Strategies))
	}
	if got := res.Strategies[0].Strategy; got != "core" {
		t.Fatalf("auto on a q-hierarchical query labeled %q, want \"core\"", got)
	}
}

func TestPercentiles(t *testing.T) {
	if p := percentiles(nil); p != (Percentiles{}) {
		t.Fatalf("empty sample: %+v", p)
	}
	sample := make([]int64, 100)
	for i := range sample {
		sample[i] = int64(100 - i) // reversed, so sorting matters
	}
	p := percentiles(sample)
	if p.P50 != 50 || p.P90 != 90 || p.P99 != 99 || p.Max != 100 {
		t.Fatalf("percentiles of 1..100: %+v", p)
	}
}

func TestRunCaseBatchPhase(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	q := cq.MustParse("Q(y) :- E(x,y), T(y)")
	cfg := Config{
		Name:         "star-batched",
		Query:        q,
		Initial:      workload.StarSchemaStream(rng, 30, 2),
		Stream:       workload.RandomStream(rng, q.Schema(), 30, 120, 0.3),
		MaxEnumerate: 50,
		BatchSizes:   []int{16, 64},
	}
	res, err := RunCase(cfg, allStrategies())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Strategies {
		if s.BulkLoadNS <= 0 {
			t.Errorf("%s: BulkLoadNS = %d, want > 0 (Initial is nonempty)", s.Strategy, s.BulkLoadNS)
		}
		if len(s.Batches) != 2 {
			t.Fatalf("%s: %d batch results, want 2", s.Strategy, len(s.Batches))
		}
		for _, b := range s.Batches {
			wantBatches := (len(cfg.Stream) + b.BatchSize - 1) / b.BatchSize
			if b.Batches != wantBatches {
				t.Errorf("%s size %d: %d batches, want %d", s.Strategy, b.BatchSize, b.Batches, wantBatches)
			}
			if b.NetApplied <= 0 || b.NetApplied > len(cfg.Stream) {
				t.Errorf("%s size %d: net applied %d out of range (0,%d]", s.Strategy, b.BatchSize, b.NetApplied, len(cfg.Stream))
			}
			if b.TotalNS <= 0 {
				t.Errorf("%s size %d: TotalNS = %d", s.Strategy, b.BatchSize, b.TotalNS)
			}
		}
		// Same stream, same final state: the batched sessions are not read
		// here, but net counts must agree across batch sizes (coalescing
		// within different chunk boundaries can differ only when an
		// insert/delete pair falls inside one chunk — verify monotone
		// bound: larger chunks can only coalesce more).
		if s.Batches[0].NetApplied < s.Batches[1].NetApplied {
			t.Errorf("%s: larger batches applied more net commands (%d < %d)",
				s.Strategy, s.Batches[0].NetApplied, s.Batches[1].NetApplied)
		}
	}
}

func TestRunSweep(t *testing.T) {
	q := cq.MustParse("Q(y) :- E(x,y), T(y)")
	cfg := SweepConfig{
		Name:  "star-scaling",
		Query: q,
		Sizes: []int{20, 40},
		Generate: func(n int) (initial, stream []dyndb.Update) {
			rng := rand.New(rand.NewSource(int64(n)))
			return workload.StarSchemaStream(rng, n, 2),
				workload.RandomStream(rng, q.Schema(), n, 80, 0.3)
		},
		MaxEnumerate: 50,
	}
	res, err := RunSweep(cfg, allStrategies())
	if err != nil {
		t.Fatal(err)
	}
	if !res.QHierarchical {
		t.Error("star query should classify q-hierarchical")
	}
	if len(res.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(res.Points))
	}
	for i, n := range cfg.Sizes {
		p := res.Points[i]
		if p.N != n {
			t.Errorf("point %d: n = %d, want %d", i, p.N, n)
		}
		if p.InitialSize == 0 || p.StreamSize != 80 {
			t.Errorf("point %d: initial %d stream %d", i, p.InitialSize, p.StreamSize)
		}
		if len(p.Strategies) != 3 {
			t.Errorf("point %d: %d strategies, want 3", i, len(p.Strategies))
		}
	}
}

// TestRunCaseParallelPhase: the parallel phase records one entry per
// worker count, engages sharding exactly on the core backend with >1
// worker, and computes speedups against the workers=1 entry.
func TestRunCaseParallelPhase(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	q := cq.MustParse("Q(y) :- E(x,y), T(y)")
	cfg := Config{
		Name:          "star-parallel",
		Query:         q,
		Initial:       workload.StarSchemaStream(rng, 30, 2),
		Stream:        workload.RandomStream(rng, q.Schema(), 30, 200, 0.3),
		MaxEnumerate:  50,
		Workers:       []int{1, 2},
		ParallelBatch: 64,
	}
	res, err := RunCase(cfg, allStrategies())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Strategies {
		if len(s.Parallel) != 2 {
			t.Fatalf("%s: %d parallel results, want 2", s.Strategy, len(s.Parallel))
		}
		for _, p := range s.Parallel {
			if p.TotalNS <= 0 || p.UpdatesPerSec <= 0 {
				t.Errorf("%s workers %d: TotalNS=%d u/s=%f", s.Strategy, p.Workers, p.TotalNS, p.UpdatesPerSec)
			}
			wantSharded := s.Strategy == "core" && p.Workers > 1
			if p.Sharded != wantSharded {
				t.Errorf("%s workers %d: sharded=%v, want %v", s.Strategy, p.Workers, p.Sharded, wantSharded)
			}
			if p.NetApplied <= 0 {
				t.Errorf("%s workers %d: net applied %d", s.Strategy, p.Workers, p.NetApplied)
			}
		}
		if s.Parallel[0].SpeedupVs1 == 0 || s.Parallel[1].SpeedupVs1 == 0 {
			t.Errorf("%s: speedups not filled: %+v", s.Strategy, s.Parallel)
		}
	}
}
