package bench

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"dyncq/internal/cq"
	"dyncq/internal/workload"
	"dyncq/pkg/dyncq"
)

func allStrategies() []dyncq.Strategy {
	return []dyncq.Strategy{dyncq.StrategyCore, dyncq.StrategyIVM, dyncq.StrategyRecompute}
}

func TestRunCaseQHierarchical(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	q := cq.MustParse("Q(y) :- E(x,y), T(y)")
	cfg := Config{
		Name:         "star-small",
		Query:        q,
		Initial:      workload.StarSchemaStream(rng, 40, 2),
		Stream:       workload.RandomStream(rng, q.Schema(), 40, 200, 0.3),
		MaxEnumerate: 100,
	}
	res, err := RunCase(cfg, allStrategies())
	if err != nil {
		t.Fatal(err)
	}
	if !res.QHierarchical {
		t.Fatalf("%s should classify q-hierarchical", q)
	}
	if len(res.Strategies) != 3 {
		t.Fatalf("got %d strategy results, want 3 (core must run on a q-hierarchical query)", len(res.Strategies))
	}
	// All strategies must report the same final count — the harness runs
	// the identical stream through each.
	for _, s := range res.Strategies[1:] {
		if s.Count != res.Strategies[0].Count {
			t.Fatalf("strategy %s count %d, %s count %d",
				s.Strategy, s.Count, res.Strategies[0].Strategy, res.Strategies[0].Count)
		}
	}
	for _, s := range res.Strategies {
		if s.Updates != len(cfg.Stream) {
			t.Errorf("%s: %d updates recorded, want %d", s.Strategy, s.Updates, len(cfg.Stream))
		}
		if s.UpdateNS.Max < s.UpdateNS.P50 {
			t.Errorf("%s: max %d < p50 %d", s.Strategy, s.UpdateNS.Max, s.UpdateNS.P50)
		}
	}
}

func TestRunCaseSkipsCoreOnHardQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	q := cq.MustParse("Q(x,y) :- S(x), E(x,y), T(y)")
	cfg := Config{
		Name:   "hard-small",
		Query:  q,
		Stream: workload.RandomStream(rng, q.Schema(), 20, 100, 0.3),
	}
	res, err := RunCase(cfg, allStrategies())
	if err != nil {
		t.Fatal(err)
	}
	if res.QHierarchical {
		t.Fatalf("%s should not classify q-hierarchical", q)
	}
	for _, s := range res.Strategies {
		if s.Strategy == "core" {
			t.Fatal("core strategy ran on a non-q-hierarchical query")
		}
	}
	if len(res.Strategies) != 2 {
		t.Fatalf("got %d strategy results, want 2 (ivm + recompute)", len(res.Strategies))
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	q := cq.MustParse("Q(x) :- R(x), S(x)")
	rep, err := Run([]Config{{
		Name:   "tiny",
		Query:  q,
		Stream: workload.RandomStream(rng, q.Schema(), 10, 50, 0.2),
	}}, allStrategies())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal written report: %v", err)
	}
	if len(back.Cases) != 1 || back.Cases[0].Name != "tiny" {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if len(back.Cases[0].Strategies) == 0 {
		t.Fatal("no strategy results survived the round trip")
	}
}

// TestAutoStrategyLabeledWithResolvedBackend: requesting StrategyAuto
// must report the backend that actually ran, not "auto".
func TestAutoStrategyLabeledWithResolvedBackend(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	q := cq.MustParse("Q(y) :- E(x,y), T(y)")
	res, err := RunCase(Config{
		Name:   "auto-label",
		Query:  q,
		Stream: workload.RandomStream(rng, q.Schema(), 10, 50, 0.2),
	}, []dyncq.Strategy{dyncq.StrategyAuto})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Strategies) != 1 {
		t.Fatalf("got %d strategy results, want 1", len(res.Strategies))
	}
	if got := res.Strategies[0].Strategy; got != "core" {
		t.Fatalf("auto on a q-hierarchical query labeled %q, want \"core\"", got)
	}
}

func TestPercentiles(t *testing.T) {
	if p := percentiles(nil); p != (Percentiles{}) {
		t.Fatalf("empty sample: %+v", p)
	}
	sample := make([]int64, 100)
	for i := range sample {
		sample[i] = int64(100 - i) // reversed, so sorting matters
	}
	p := percentiles(sample)
	if p.P50 != 50 || p.P90 != 90 || p.P99 != 99 || p.Max != 100 {
		t.Fatalf("percentiles of 1..100: %+v", p)
	}
}
