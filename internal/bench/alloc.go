package bench

import (
	"fmt"
	"runtime"
)

// This file adds allocator-traffic measurement to the harness. The
// paper's O(1) update bound counts RAM operations, but at real scale the
// constant is dominated by allocator and GC work — which is exactly what
// the slab allocator (internal/core), the interned index pool
// (internal/eval) and the end-to-end interning (internal/dict,
// internal/tuplekey) attack. Every measured phase of the report records
// allocs/op and bytes/op from runtime.MemStats deltas taken outside the
// timed regions, so those refactors are visible in the JSON artifact and
// `bench -compare` can call out allocation regressions as notices.

// AllocStats records the allocator traffic of one measured phase:
// heap allocations and allocated bytes per operation, from
// runtime.MemStats deltas (Mallocs / TotalAlloc) around the phase. The
// numbers include the harness's own bookkeeping (latency-sample appends),
// which is amortised to well under one allocation per op, and — like any
// MemStats delta — allocations of concurrent goroutines; the harness runs
// phases one at a time, so in practice the delta is the phase's own.
type AllocStats struct {
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// String renders the stats the way the CLI prints them.
func (a AllocStats) String() string {
	return fmt.Sprintf("%.1f allocs/op, %.0f B/op", a.AllocsPerOp, a.BytesPerOp)
}

func (a AllocStats) zero() bool { return a.AllocsPerOp == 0 && a.BytesPerOp == 0 }

// allocMeter snapshots the process-wide allocation counters; perOp
// returns the traffic since the snapshot divided by the op count. Both
// ReadMemStats calls sit outside the timed spans of the phases that use
// the meter, so latency percentiles are unaffected.
type allocMeter struct {
	mallocs uint64
	bytes   uint64
}

func startAllocMeter() allocMeter {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return allocMeter{mallocs: m.Mallocs, bytes: m.TotalAlloc}
}

func (a allocMeter) perOp(ops int) AllocStats {
	if ops <= 0 {
		return AllocStats{}
	}
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return AllocStats{
		AllocsPerOp: float64(m.Mallocs-a.mallocs) / float64(ops),
		BytesPerOp:  float64(m.TotalAlloc-a.bytes) / float64(ops),
	}
}

// minAlloc folds one repetition into the best-of accumulator, same
// estimator as the latencies: allocation noise (GC-assist bookkeeping,
// map growth landing in one rep but not another) is one-sided, so the
// minimum is the stable per-op cost.
func minAlloc(a, b AllocStats) AllocStats {
	if b.AllocsPerOp < a.AllocsPerOp {
		a.AllocsPerOp = b.AllocsPerOp
	}
	if b.BytesPerOp < a.BytesPerOp {
		a.BytesPerOp = b.BytesPerOp
	}
	return a
}
