package bench

import (
	"fmt"

	"dyncq/internal/cq"
	"dyncq/internal/dyndb"
	"dyncq/internal/qtree"
	"dyncq/pkg/dyncq"
)

// This file implements scaling sweeps: the same workload generated at a
// range of database sizes n, so the report shows how per-update latency
// grows with n instead of asserting it. For a q-hierarchical query the
// core engine's per-update percentiles must stay flat across the sweep
// (Theorem 3.2's O(1) update time), while the IVM baseline's residual
// joins grow with n — that contrast is the paper's central claim, made
// visible as data.

// SweepConfig describes one scaling sweep.
type SweepConfig struct {
	// Name labels the sweep in the report.
	Name string
	// Query is the maintained query.
	Query *cq.Query
	// Sizes lists the database sizes n to measure, in order.
	Sizes []int
	// Generate builds the initial database and measured stream for one
	// size. It must be deterministic in n for comparable reports.
	Generate func(n int) (initial, stream []dyndb.Update)
	// MaxEnumerate caps the tuples pulled during the delay measurement.
	MaxEnumerate int
	// Repeat is Config.Repeat for every point.
	Repeat int
}

// SweepPoint is the measurement of all strategies at one size n.
type SweepPoint struct {
	N           int              `json:"n"`
	InitialSize int              `json:"initial_size"`
	StreamSize  int              `json:"stream_size"`
	Strategies  []StrategyResult `json:"strategies"`
}

// SweepResult is the full report of one scaling sweep.
type SweepResult struct {
	Name          string       `json:"name"`
	Query         string       `json:"query"`
	QHierarchical bool         `json:"q_hierarchical"`
	Points        []SweepPoint `json:"points"`
}

// RunSweep measures every strategy at every size of the sweep. Strategies
// that cannot serve the query are skipped, as in RunCase.
func RunSweep(cfg SweepConfig, strategies []dyncq.Strategy) (SweepResult, error) {
	res := SweepResult{
		Name:          cfg.Name,
		Query:         cfg.Query.String(),
		QHierarchical: qtree.IsQHierarchical(cfg.Query),
	}
	for _, n := range cfg.Sizes {
		initial, stream := cfg.Generate(n)
		cr, err := RunCase(Config{
			Name:         fmt.Sprintf("%s/n=%d", cfg.Name, n),
			Query:        cfg.Query,
			Initial:      initial,
			Stream:       stream,
			MaxEnumerate: cfg.MaxEnumerate,
			Repeat:       cfg.Repeat,
		}, strategies)
		if err != nil {
			return res, err
		}
		res.Points = append(res.Points, SweepPoint{
			N:           n,
			InitialSize: len(initial),
			StreamSize:  len(stream),
			Strategies:  cr.Strategies,
		})
	}
	return res, nil
}
