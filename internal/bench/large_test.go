package bench

import (
	"encoding/json"
	"testing"

	"dyncq/internal/cq"
	"dyncq/pkg/dyncq"
)

// tinyLarge is the test-sized tier: same code path as the nightly
// million-tuple run, two orders of magnitude smaller.
func tinyLarge(seed int64) LargeConfig {
	return LargeConfig{
		Name:    "large-test",
		Seed:    seed,
		Groups:  2,
		Tuples:  3000,
		Updates: 1500,
		Workers: []int{1, 2},
		PDelete: 0.35,
		ZipfS:   1.2,
		ZipfV:   4,
	}
}

func TestRunLargePhasesAndIdentity(t *testing.T) {
	res, err := RunLarge(tinyLarge(7))
	if err != nil {
		t.Fatal(err)
	}
	if res.NumQueries != 8 {
		t.Fatalf("NumQueries = %d, want 4*Groups = 8", res.NumQueries)
	}
	if res.InitSize == 0 || res.StreamSize == 0 {
		t.Fatalf("empty workload: init=%d stream=%d", res.InitSize, res.StreamSize)
	}
	if len(res.Runs) != 2 || res.Runs[0].Workers != 1 || res.Runs[1].Workers != 2 {
		t.Fatalf("runs = %+v, want workers 1 then 2", res.Runs)
	}
	for _, run := range res.Runs {
		if !run.MatchesWorkers1 {
			t.Errorf("workers=%d diverged from the workers=1 baseline", run.Workers)
		}
		if len(run.Phases) != 3 {
			t.Fatalf("workers=%d: %d phases, want load/updates/read", run.Workers, len(run.Phases))
		}
		for i, want := range []string{"load", "updates", "read"} {
			p := run.Phases[i]
			if p.Name != want {
				t.Fatalf("workers=%d phase %d = %q, want %q", run.Workers, i, p.Name, want)
			}
			if p.TotalNS <= 0 || p.Ops <= 0 {
				t.Errorf("workers=%d phase %s: TotalNS=%d Ops=%d, want positive", run.Workers, p.Name, p.TotalNS, p.Ops)
			}
			if p.Alloc.zero() {
				t.Errorf("workers=%d phase %s: no allocator traffic recorded", run.Workers, p.Name)
			}
		}
		if run.UpdatesPerSec <= 0 {
			t.Errorf("workers=%d: UpdatesPerSec = %v", run.Workers, run.UpdatesPerSec)
		}
	}
	if d := res.Diverged(); len(d) != 0 {
		t.Errorf("Diverged() = %v, want none", d)
	}
	// The tier must survive the report round-trip (the nightly artifact).
	var rep Report
	rep.Large = append(rep.Large, res)
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Large) != 1 || back.Large[0].Name != "large-test" || len(back.Large[0].Runs) != 2 {
		t.Fatalf("report round-trip lost the large tier: %+v", back.Large)
	}
}

func TestRunLargeDeterministicWorkload(t *testing.T) {
	a, err := RunLarge(tinyLarge(11))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunLarge(tinyLarge(11))
	if err != nil {
		t.Fatal(err)
	}
	if a.InitSize != b.InitSize || a.StreamSize != b.StreamSize {
		t.Fatalf("same seed, different workload: (%d,%d) vs (%d,%d)",
			a.InitSize, a.StreamSize, b.InitSize, b.StreamSize)
	}
	c, err := RunLarge(tinyLarge(12))
	if err != nil {
		t.Fatal(err)
	}
	if c.InitSize == a.InitSize && c.StreamSize == a.StreamSize {
		t.Logf("note: seeds 11 and 12 produced identically sized workloads (possible, but suspicious)")
	}
}

func TestLargeDivergedReporting(t *testing.T) {
	r := LargeResult{Runs: []LargeWorkerRun{
		{Workers: 1, MatchesWorkers1: true},
		{Workers: 2, MatchesWorkers1: false},
		{Workers: 4, MatchesWorkers1: true},
		{Workers: 8, MatchesWorkers1: false},
	}}
	d := r.Diverged()
	if len(d) != 2 || d[0] != 2 || d[1] != 8 {
		t.Fatalf("Diverged() = %v, want [2 8]", d)
	}
}

func TestFingerprintOrderSensitivity(t *testing.T) {
	// The unordered fingerprint must be insertion-order independent (it
	// checks set equality for ivm/recompute backends); same content in a
	// different order, same fingerprint.
	build := func(updates []dyncq.Update) *dyncq.Handle {
		ws := dyncq.NewWorkspace(dyncq.WorkspaceOptions{})
		h, err := ws.RegisterQuery("q", mustParseQuery(t, "Q(x,y) :- E(x,y)"), dyncq.Options{Force: dyncq.StrategyRecompute})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ws.ApplyBatch(updates); err != nil {
			t.Fatal(err)
		}
		return h
	}
	fwd := []dyncq.Update{dyncq.Insert("E", 1, 2), dyncq.Insert("E", 3, 4), dyncq.Insert("E", 5, 6)}
	rev := []dyncq.Update{dyncq.Insert("E", 5, 6), dyncq.Insert("E", 3, 4), dyncq.Insert("E", 1, 2)}
	if a, b := fingerprint(build(fwd), false), fingerprint(build(rev), false); a != b {
		t.Fatalf("unordered fingerprint depends on insertion order: %x vs %x", a, b)
	}
	// Different content must (overwhelmingly) differ.
	other := []dyncq.Update{dyncq.Insert("E", 1, 2), dyncq.Insert("E", 3, 4), dyncq.Insert("E", 5, 7)}
	if a, b := fingerprint(build(fwd), false), fingerprint(build(other), false); a == b {
		t.Fatalf("different results share fingerprint %x", a)
	}
}

func mustParseQuery(t *testing.T, text string) *cq.Query {
	t.Helper()
	q, err := cq.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	return q
}
