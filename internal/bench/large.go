package bench

import (
	"fmt"
	"time"

	"dyncq/internal/cq"
	"dyncq/internal/dyndb"
	"dyncq/internal/workload"
	"dyncq/pkg/dyncq"
)

// This file implements the large tier: one production-shaped workload —
// a million-tuple initial database, a Zipf-skewed mixed insert/delete
// stream, and K >= 64 live queries over grouped relations — measured
// per phase (load, updates, read) with latency percentiles and
// allocator traffic, across worker counts. Results are checked across
// worker counts by result fingerprints, so the "byte-identical
// regardless of parallelism" claim is enforced at a scale where storing
// every result set for comparison would dwarf the workload itself.

// LargeConfig describes the large-tier workload. Queries are generated
// over Groups disjoint relation groups {E<g>/2, T<g>/1, S<g>/1}, four
// per group (two core routes, one IVM, one forced recompute), so the
// per-group state stays bounded while the workspace fans out to
// 4*Groups live queries.
type LargeConfig struct {
	// Name labels the tier in the report.
	Name string
	// Seed drives every generated artifact; same seed, same workload.
	Seed int64
	// Groups is the number of relation groups; the query count is
	// 4*Groups (64 at the default 16).
	Groups int
	// Tuples is the initial database size, split across the groups.
	Tuples int
	// Updates is the measured stream length, split across the groups.
	Updates int
	// BatchSize is the chunk size of the update phase (0 = 1024).
	BatchSize int
	// Workers lists the worker counts to measure. A workers=1 baseline
	// always runs (recorded, whether or not the list names it): it is
	// what speedups and fingerprint matches are computed against.
	Workers []int
	// PDelete, ZipfS, ZipfV shape each group's stream exactly as in
	// workload.TortureConfig.
	PDelete float64
	ZipfS   float64
	ZipfV   float64
	// MaxEnumerate caps the tuples pulled per query in the timed read
	// phase (0 = enumerate everything). The fingerprint pass always
	// enumerates everything, untimed.
	MaxEnumerate int
}

// DefaultLargeConfig is the production-scale tier the nightly runs: one
// million initial tuples, a heavily skewed stream, 64 live queries.
func DefaultLargeConfig(seed int64) LargeConfig {
	return LargeConfig{
		Name:    "large-zipf-k64",
		Seed:    seed,
		Groups:  16,
		Tuples:  1_000_000,
		Updates: 100_000,
		Workers: []int{1, 2, 4},
		PDelete: 0.35,
		ZipfS:   1.2,
		ZipfV:   8,
	}
}

func (c LargeConfig) withDefaults() LargeConfig {
	if c.Name == "" {
		c.Name = "large"
	}
	if c.Groups < 1 {
		c.Groups = 1
	}
	if c.Tuples < c.Groups {
		c.Tuples = c.Groups
	}
	if c.Updates < 0 {
		c.Updates = 0
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 1024
	}
	return c
}

// LargePhase is one measured phase of a large-tier run.
type LargePhase struct {
	// Name is load (bulk preprocessing), updates (the batched stream) or
	// read (count + capped enumeration over every query).
	Name string `json:"name"`
	// Ops is the phase's denominator: tuples for load, stream updates
	// for updates, queries for read.
	Ops     int   `json:"ops"`
	TotalNS int64 `json:"total_ns"`
	// NS summarises the phase's individual latencies — per batch for
	// updates, per query for read; load is one block and leaves it zero.
	NS Percentiles `json:"ns"`
	// Alloc is the allocator traffic per op.
	Alloc AllocStats `json:"alloc"`
}

// LargeWorkerRun is one worker count's full pass over the tier.
type LargeWorkerRun struct {
	Workers int          `json:"workers"`
	Phases  []LargePhase `json:"phases"`
	// UpdatesPerSec is the update phase's stream-level throughput;
	// SpeedupVs1 compares the update phase against the workers=1 run.
	UpdatesPerSec float64 `json:"updates_per_sec"`
	SpeedupVs1    float64 `json:"speedup_vs_1,omitempty"`
	// MatchesWorkers1 reports whether every query's fingerprint — exact
	// enumeration order for core backends, order-free for the others —
	// equals the workers=1 run's. The layout (store and engine shards)
	// is pinned across runs, so false is a scheduling bug.
	MatchesWorkers1 bool `json:"matches_workers_1"`
}

// LargeResult is the report entry of one large-tier configuration.
type LargeResult struct {
	Name       string           `json:"name"`
	Seed       int64            `json:"seed"`
	Groups     int              `json:"groups"`
	NumQueries int              `json:"num_queries"`
	InitSize   int              `json:"initial_size"`
	StreamSize int              `json:"stream_size"`
	BatchSize  int              `json:"batch_size"`
	PDelete    float64          `json:"p_delete"`
	ZipfS      float64          `json:"zipf_s"`
	ZipfV      float64          `json:"zipf_v"`
	Runs       []LargeWorkerRun `json:"runs"`
}

// Diverged returns the worker counts whose results did not match the
// workers=1 baseline — the list a caller turns into a hard failure.
func (r LargeResult) Diverged() []int {
	var out []int
	for _, run := range r.Runs {
		if !run.MatchesWorkers1 {
			out = append(out, run.Workers)
		}
	}
	return out
}

// largeQueries builds the 4*Groups query pool over the grouped schema.
func largeQueries(groups int) ([]NamedQuery, error) {
	out := make([]NamedQuery, 0, 4*groups)
	for g := 0; g < groups; g++ {
		for _, t := range []struct {
			kind  string
			text  string
			force dyncq.Strategy
		}{
			{"star", fmt.Sprintf("Q(y) :- E%d(x,y), T%d(y)", g, g), dyncq.StrategyAuto},
			{"src", fmt.Sprintf("Q(x) :- E%d(x,y)", g), dyncq.StrategyAuto},
			{"hard", fmt.Sprintf("Q(x,y) :- S%d(x), E%d(x,y), T%d(y)", g, g, g), dyncq.StrategyAuto},
			{"audit", fmt.Sprintf("Q(y) :- E%d(x,y), T%d(y)", g, g), dyncq.StrategyRecompute},
		} {
			q, err := cq.Parse(t.text)
			if err != nil {
				return nil, fmt.Errorf("large tier: query %q: %w", t.text, err)
			}
			out = append(out, NamedQuery{Name: fmt.Sprintf("g%02d-%s", g, t.kind), Query: q, Force: t.force})
		}
	}
	return out, nil
}

// largeGroupSchema is group g's slice of the schema.
func largeGroupSchema(g int) map[string]int {
	return map[string]int{
		fmt.Sprintf("E%d", g): 2,
		fmt.Sprintf("T%d", g): 1,
		fmt.Sprintf("S%d", g): 1,
	}
}

// largeWorkload builds the initial database and the interleaved update
// stream — a pure function of the config.
func largeWorkload(cfg LargeConfig) (*dyndb.Database, []dyndb.Update, error) {
	initDB := dyndb.New()
	perGroup := make([][]dyndb.Update, cfg.Groups)
	for g := 0; g < cfg.Groups; g++ {
		gc := workload.TortureConfig{
			Seed:    cfg.Seed + int64(g),
			Domain:  cfg.Tuples / cfg.Groups, // ~half-full relations under the birthday bound
			Updates: cfg.Updates / cfg.Groups,
			PDelete: cfg.PDelete,
			ZipfS:   cfg.ZipfS,
			ZipfV:   cfg.ZipfV,
		}
		schema := largeGroupSchema(g)
		gdb := gc.Database(schema, cfg.Tuples/cfg.Groups)
		if err := initDB.ApplyAll(gdb.Updates()); err != nil {
			return nil, nil, fmt.Errorf("large tier: merging group %d: %w", g, err)
		}
		perGroup[g] = gc.Stream(schema)
	}
	// Interleave the group streams round-robin so every batch touches
	// every group — the fan-out always has all K queries' relations in
	// flight, never a quiet majority.
	var stream []dyndb.Update
	for i := 0; ; i++ {
		live := false
		for g := 0; g < cfg.Groups; g++ {
			if i < len(perGroup[g]) {
				stream = append(stream, perGroup[g][i])
				live = true
			}
		}
		if !live {
			break
		}
	}
	return initDB, stream, nil
}

// fingerprint folds one query's full result into 64 bits: an FNV-style
// chain over the enumeration when ordered (core's canonical order is
// part of the contract), a commutative sum of per-tuple hashes
// otherwise (the other backends enumerate in unspecified order).
func fingerprint(h *dyncq.Handle, ordered bool) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	var acc uint64
	if ordered {
		acc = offset
	}
	h.Enumerate(func(tuple []dyncq.Value) bool {
		th := uint64(offset)
		th = (th ^ uint64(len(tuple))) * prime
		for _, v := range tuple {
			th = (th ^ uint64(v)) * prime
		}
		if ordered {
			acc = (acc ^ th) * prime
		} else {
			acc += th
		}
		return true
	})
	return acc
}

// RunLarge measures the tier: a workers=1 baseline plus one run per
// configured worker count, all with the pinned scalingShards layout so
// the fingerprint comparison is exact. The returned result records
// divergence (LargeWorkerRun.MatchesWorkers1 / LargeResult.Diverged);
// deciding whether that fails the invocation is the caller's policy.
func RunLarge(cfg LargeConfig) (LargeResult, error) {
	cfg = cfg.withDefaults()
	queries, err := largeQueries(cfg.Groups)
	if err != nil {
		return LargeResult{}, err
	}
	initDB, stream, err := largeWorkload(cfg)
	if err != nil {
		return LargeResult{}, err
	}
	res := LargeResult{
		Name:       cfg.Name,
		Seed:       cfg.Seed,
		Groups:     cfg.Groups,
		NumQueries: len(queries),
		InitSize:   initDB.Cardinality(),
		StreamSize: len(stream),
		BatchSize:  cfg.BatchSize,
		PDelete:    cfg.PDelete,
		ZipfS:      cfg.ZipfS,
		ZipfV:      cfg.ZipfV,
	}

	type runOut struct {
		run   LargeWorkerRun
		fps   []uint64
		count []uint64
	}
	measure := func(workers int) (runOut, error) {
		out := runOut{run: LargeWorkerRun{Workers: workers}}
		ws := dyncq.NewWorkspace(dyncq.WorkspaceOptions{Workers: workers, StoreShards: scalingShards})
		handles := make([]*dyncq.Handle, len(queries))
		for i, nq := range queries {
			h, err := ws.RegisterQuery(nq.Name, nq.Query, dyncq.Options{Force: nq.Force, Shards: scalingShards})
			if err != nil {
				return out, fmt.Errorf("large tier: register %s: %w", nq.Name, err)
			}
			handles[i] = h
		}

		// Phase 1: load. One block — preprocessing at scale.
		am := startAllocMeter()
		t0 := time.Now()
		if err := ws.Load(initDB); err != nil {
			return out, fmt.Errorf("large tier: load: %w", err)
		}
		loadNS := time.Since(t0).Nanoseconds()
		out.run.Phases = append(out.run.Phases, LargePhase{
			Name: "load", Ops: res.InitSize, TotalNS: loadNS, Alloc: am.perOp(res.InitSize),
		})

		// Phase 2: updates. The batched stream, per-batch latencies.
		am = startAllocMeter()
		lat := make([]int64, 0, len(stream)/cfg.BatchSize+1)
		var totalNS int64
		for from := 0; from < len(stream); from += cfg.BatchSize {
			to := from + cfg.BatchSize
			if to > len(stream) {
				to = len(stream)
			}
			t0 := time.Now()
			if _, err := ws.ApplyBatch(stream[from:to]); err != nil {
				return out, fmt.Errorf("large tier: batch at %d: %w", from, err)
			}
			ns := time.Since(t0).Nanoseconds()
			lat = append(lat, ns)
			totalNS += ns
		}
		out.run.Phases = append(out.run.Phases, LargePhase{
			Name: "updates", Ops: len(stream), TotalNS: totalNS, NS: percentiles(lat), Alloc: am.perOp(len(stream)),
		})
		if totalNS > 0 {
			out.run.UpdatesPerSec = float64(len(stream)) / (float64(totalNS) / 1e9)
		}

		// Phase 3: read. Count plus capped enumeration, per query.
		am = startAllocMeter()
		readLat := make([]int64, 0, len(handles))
		var readNS int64
		for _, h := range handles {
			t0 := time.Now()
			_ = h.Count()
			n := 0
			h.Enumerate(func([]dyncq.Value) bool {
				n++
				return cfg.MaxEnumerate <= 0 || n < cfg.MaxEnumerate
			})
			ns := time.Since(t0).Nanoseconds()
			readLat = append(readLat, ns)
			readNS += ns
		}
		out.run.Phases = append(out.run.Phases, LargePhase{
			Name: "read", Ops: len(handles), TotalNS: readNS, NS: percentiles(readLat), Alloc: am.perOp(len(handles)),
		})

		// Fingerprints, untimed: the cross-worker identity check.
		out.fps = make([]uint64, len(handles))
		out.count = make([]uint64, len(handles))
		for i, h := range handles {
			out.fps[i] = fingerprint(h, h.Strategy() == dyncq.StrategyCore)
			out.count[i] = h.Count()
		}
		if err := ws.CheckInvariants(); err != nil {
			return out, fmt.Errorf("large tier (workers=%d): %w", workers, err)
		}
		return out, nil
	}

	base, err := measure(1)
	if err != nil {
		return res, err
	}
	base.run.MatchesWorkers1 = true
	base.run.SpeedupVs1 = 1
	baseUpdateNS := base.run.Phases[1].TotalNS
	res.Runs = append(res.Runs, base.run)
	for _, workers := range cfg.Workers {
		if workers <= 1 {
			continue
		}
		out, err := measure(workers)
		if err != nil {
			return res, err
		}
		out.run.MatchesWorkers1 = true
		for i := range queries {
			if out.fps[i] != base.fps[i] || out.count[i] != base.count[i] {
				out.run.MatchesWorkers1 = false
			}
		}
		if ns := out.run.Phases[1].TotalNS; baseUpdateNS > 0 && ns > 0 {
			out.run.SpeedupVs1 = float64(baseUpdateNS) / float64(ns)
		}
		res.Runs = append(res.Runs, out.run)
	}
	return res, nil
}
