package bench

import "fmt"

// This file implements the scaling summary behind `dyncq bench
// -speedup`: a human-readable digest of every parallel measurement in a
// report, plus soft notices when parallel scaling under-delivers. The
// notices are advisory, never a hard failure — scaling depends on the
// machine (a 1-core container can only report ≈1×), so CI surfaces them
// as annotations instead of failing the build.

// SpeedupOptions tunes the scaling summary.
type SpeedupOptions struct {
	// MinAtTwo is the speedup the summary expects from workers=2 on a
	// multi-core machine; measurements below it (on sharded paths only)
	// earn a notice. The default used by the CLI is 1.2.
	MinAtTwo float64
}

// SpeedupSummary digests every parallel phase of the report into
// summary lines and under-scaling notices. On a single-CPU machine
// notices are suppressed (parallel speedup is physically impossible)
// and replaced by one line saying so. Suppression keys on the physical
// CPU count only: a multi-core machine whose GOMAXPROCS is capped below
// NumCPU keeps its notices armed and earns an extra misconfiguration
// notice instead — a capped runner must not masquerade as a 1-core box
// and dodge the scaling gate.
func SpeedupSummary(r Report, opt SpeedupOptions) (lines, notices []string) {
	minAtTwo := opt.MinAtTwo
	if minAtTwo <= 0 {
		minAtTwo = 1.2
	}
	multiCore := r.NumCPU > 1
	lines = append(lines, fmt.Sprintf("machine: %d CPU, GOMAXPROCS %d, %s", r.NumCPU, r.Gomaxprocs, r.GoVersion))
	// Gomaxprocs == 0 means a report predating the field; nothing to say.
	capped := multiCore && r.Gomaxprocs > 0 && r.Gomaxprocs < r.NumCPU
	if capped {
		lines = append(lines, fmt.Sprintf("GOMAXPROCS %d capped below %d CPUs: parallel phases cannot use the full machine, scaling notices stay armed", r.Gomaxprocs, r.NumCPU))
		notices = append(notices, fmt.Sprintf("runner misconfigured: GOMAXPROCS %d on a %d-CPU machine — parallel scaling measurements are not meaningful; unset the cap or pin the job to 1 CPU", r.Gomaxprocs, r.NumCPU))
	}
	for _, c := range r.Cases {
		for _, s := range c.Strategies {
			for _, p := range s.Parallel {
				if p.Workers == 1 {
					continue
				}
				mode := "sequential pipeline"
				if p.Sharded {
					mode = "sharded"
				}
				lines = append(lines, fmt.Sprintf("%s/%s workers=%d (%s): %.2fx vs workers=1 (%.0f updates/s)",
					c.Name, s.Strategy, p.Workers, mode, p.SpeedupVs1, p.UpdatesPerSec))
				if multiCore && p.Sharded && p.Workers == 2 && p.SpeedupVs1 > 0 && p.SpeedupVs1 < minAtTwo {
					notices = append(notices, fmt.Sprintf("%s/%s: workers=2 speedup %.2fx < %.2fx",
						c.Name, s.Strategy, p.SpeedupVs1, minAtTwo))
				}
			}
		}
	}
	for _, m := range r.Multi {
		for _, sc := range m.Scaling {
			if sc.Workers == 1 {
				continue
			}
			ok := "byte-identical to workers=1"
			if !sc.MatchesWorkers1 {
				ok = "DIVERGES FROM workers=1"
			}
			lines = append(lines, fmt.Sprintf("multi/%s workers=%d: %.2fx vs workers=1 (%.0f updates/s, %s)",
				m.Name, sc.Workers, sc.SpeedupVs1, sc.UpdatesPerSec, ok))
			if multiCore && sc.Workers == 2 && sc.SpeedupVs1 > 0 && sc.SpeedupVs1 < minAtTwo {
				notices = append(notices, fmt.Sprintf("multi/%s: workers=2 speedup %.2fx < %.2fx",
					m.Name, sc.SpeedupVs1, minAtTwo))
			}
		}
	}
	for _, lg := range r.Large {
		for _, run := range lg.Runs {
			if run.Workers == 1 {
				continue
			}
			ok := "results identical to workers=1"
			if !run.MatchesWorkers1 {
				ok = "DIVERGES FROM workers=1"
			}
			lines = append(lines, fmt.Sprintf("large/%s workers=%d: %.2fx vs workers=1 (%.0f updates/s, %s)",
				lg.Name, run.Workers, run.SpeedupVs1, run.UpdatesPerSec, ok))
			if multiCore && run.Workers == 2 && run.SpeedupVs1 > 0 && run.SpeedupVs1 < minAtTwo {
				notices = append(notices, fmt.Sprintf("large/%s: workers=2 speedup %.2fx < %.2fx",
					lg.Name, run.SpeedupVs1, minAtTwo))
			}
		}
	}
	if !multiCore {
		lines = append(lines, "single-CPU machine: parallel scaling is not expected here, notices suppressed")
		notices = nil
	}
	return lines, notices
}
