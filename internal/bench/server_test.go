package bench

import (
	"testing"
)

// TestRunServerSmoke runs one tiny server case end to end: real server,
// real wire protocol over net.Pipe, every measured dimension populated.
func TestRunServerSmoke(t *testing.T) {
	res, err := RunServer(ServerConfig{
		Name: "smoke", Query: "Q(y) :- E(x,y), T(y)",
		Subscribers: 2, Readers: 1,
		Batches: 20, BatchSize: 10, Domain: 12, PDelete: 0.3, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CommitNS.P50 <= 0 {
		t.Fatalf("commit p50 not measured: %+v", res.CommitNS)
	}
	if res.NotifyNS.P50 <= 0 {
		t.Fatalf("notify p50 not measured: %+v", res.NotifyNS)
	}
	if res.Reads <= 0 || res.ReadsPerSec <= 0 {
		t.Fatalf("reader throughput not measured: reads=%d rate=%f", res.Reads, res.ReadsPerSec)
	}
	if res.DroppedFrames != 0 {
		t.Fatalf("healthy smoke run dropped %d frames", res.DroppedFrames)
	}
}

func TestRunServerRejectsBadConfig(t *testing.T) {
	if _, err := RunServer(ServerConfig{Name: "no-batches", Query: "Q(x) :- E(x,y)"}); err == nil {
		t.Fatal("zero Batches accepted")
	}
	if _, err := RunServer(ServerConfig{Name: "bad-query", Query: "nonsense(", Batches: 1, BatchSize: 1}); err == nil {
		t.Fatal("unparsable query accepted")
	}
}

// TestCompareServerPhaseNotices: a baseline that predates the server
// phase skips it with a notice (both directions), never a regression.
func TestCompareServerPhaseNotices(t *testing.T) {
	withServer := Report{Server: []ServerResult{{
		Name:     "serve-star",
		CommitNS: Percentiles{P50: 1 << 30, P99: 1 << 30}, // huge, but ungated: no baseline
		NotifyNS: Percentiles{P50: 1 << 30, P99: 1 << 30},
	}}}
	regs, notices := CompareWithNotices(Report{}, withServer, DefaultCompareOptions())
	if len(regs) != 0 {
		t.Fatalf("server phase absent from baseline produced regressions: %v", regs)
	}
	if len(notices) != 1 {
		t.Fatalf("notices = %v, want exactly the missing-server-phase notice", notices)
	}
	regs, notices = CompareWithNotices(withServer, Report{}, DefaultCompareOptions())
	if len(regs) != 0 || len(notices) != 1 {
		t.Fatalf("reverse direction: regs=%v notices=%v, want 0 regs and 1 notice", regs, notices)
	}
}

// TestCompareGatesServerPhase: with a server phase in both reports, its
// commit and notify percentiles are gated like every other latency.
func TestCompareGatesServerPhase(t *testing.T) {
	mk := func(commitP50, notifyP50 int64) Report {
		// p99s held constant so only the p50 movement is under test.
		return Report{Server: []ServerResult{{
			Name:     "serve-star",
			CommitNS: Percentiles{P50: commitP50, P99: 900000},
			NotifyNS: Percentiles{P50: notifyP50, P99: 900000},
		}}}
	}
	opt := DefaultCompareOptions()
	regs, notices := CompareWithNotices(mk(100000, 200000), mk(100000, 200000), opt)
	if len(regs) != 0 || len(notices) != 0 {
		t.Fatalf("identical server phases flagged: regs=%v notices=%v", regs, notices)
	}
	regs, _ = CompareWithNotices(mk(100000, 200000), mk(250000, 200000), opt)
	if len(regs) != 1 || regs[0].Metric != "commit_ns.p50" {
		t.Fatalf("regressed commit p50 not flagged exactly once: %v", regs)
	}
	regs, _ = CompareWithNotices(mk(100000, 200000), mk(100000, 500000), opt)
	if len(regs) != 1 || regs[0].Metric != "notify_ns.p50" {
		t.Fatalf("regressed notify p50 not flagged exactly once: %v", regs)
	}
}
