package bench

import (
	"strings"
	"testing"
	"time"

	"dyncq/pkg/dyncq"
)

// TestRunReadSmoke runs one small read case end to end and checks the
// dimensions the phase exists to protect: hot pins are hits (rate ~1),
// allocate nothing, and beat cold pins.
func TestRunReadSmoke(t *testing.T) {
	res, err := RunRead(ReadConfig{
		Name: "smoke", Query: "Q(x,y) :- E(x,y)", Strategy: dyncq.StrategyCore,
		Tuples: 5000, PinSamples: 100, Readers: 2,
		ReadWindow: 30 * time.Millisecond, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ColdPinNS.P50 <= 0 {
		t.Fatalf("cold pin not measured: %+v", res.ColdPinNS)
	}
	if res.HotPinNS.P50 >= res.ColdPinNS.P50 {
		t.Fatalf("hot pin p50 %dns not better than cold %dns", res.HotPinNS.P50, res.ColdPinNS.P50)
	}
	if res.HotPinAlloc.AllocsPerOp >= 1 {
		t.Fatalf("hot pin allocates: %s", res.HotPinAlloc)
	}
	if res.QuietReadsPerSec <= 0 || res.BusyReadsPerSec <= 0 {
		t.Fatalf("throughput windows empty: quiet=%f busy=%f", res.QuietReadsPerSec, res.BusyReadsPerSec)
	}
	if res.CommitNS.P50 <= 0 {
		t.Fatalf("busy window committed nothing: %+v", res.CommitNS)
	}
	// PinSamples cold evictions are the only misses after priming; the
	// hot loop and both windows are all hits.
	if res.CacheHitRate < 0.5 {
		t.Fatalf("cache hit rate %f, want the hot paths dominating", res.CacheHitRate)
	}
}

func TestRunReadRejectsBadConfig(t *testing.T) {
	if _, err := RunRead(ReadConfig{Name: "no-tuples", Query: "Q(x,y) :- E(x,y)"}); err == nil {
		t.Fatal("zero Tuples accepted")
	}
	if _, err := RunRead(ReadConfig{Name: "bad-query", Query: "nope(", Tuples: 10, PinSamples: 1}); err == nil {
		t.Fatal("unparsable query accepted")
	}
}

func mkReadReport(coldP50, hotP50, commitP50 int64) Report {
	return Report{Read: []ReadResult{{
		Name:      "read-core-10k",
		Strategy:  "core",
		Tuples:    10000,
		ColdPinNS: Percentiles{P50: coldP50, P99: coldP50 * 2},
		HotPinNS:  Percentiles{P50: hotP50, P99: hotP50 * 2},
		CommitNS:  Percentiles{P50: commitP50, P99: commitP50 * 2},
	}}}
}

// TestCompareReadPhaseNotices: baselines from before the read phase (and
// new reports that skipped -read) produce skip notices, not regressions.
func TestCompareReadPhaseNotices(t *testing.T) {
	withRead := mkReadReport(100000, 100, 50000)
	regs, notices := CompareWithNotices(Report{}, withRead, DefaultCompareOptions())
	if len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
	if !hasNotice(notices, "baseline has no read phase") {
		t.Fatalf("missing forward notice, got %v", notices)
	}
	regs, notices = CompareWithNotices(withRead, Report{}, DefaultCompareOptions())
	if len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
	if !hasNotice(notices, "new report has no read phase (bench -read?)") {
		t.Fatalf("missing reverse notice, got %v", notices)
	}
}

// TestCompareGatesReadPhase: a cold-pin regression beyond tolerance is
// flagged; matching reports pass; unmatched cases notice both ways.
func TestCompareGatesReadPhase(t *testing.T) {
	oldRep := mkReadReport(100000, 100, 50000)
	newRep := mkReadReport(200000, 100, 50000) // cold pin 2x
	regs := Compare(oldRep, newRep, DefaultCompareOptions())
	if len(regs) != 2 { // p50 and p99 both doubled
		t.Fatalf("got %d regressions, want 2: %v", len(regs), regs)
	}
	if regs[0].Case != "read/read-core-10k" || regs[0].Metric != "cold_pin_ns.p50" {
		t.Fatalf("regression = %+v", regs[0])
	}
	if regs := Compare(oldRep, oldRep, DefaultCompareOptions()); len(regs) != 0 {
		t.Fatalf("identical reports regressed: %v", regs)
	}
	renamed := mkReadReport(100000, 100, 50000)
	renamed.Read[0].Name = "read-core-20k"
	_, notices := CompareWithNotices(oldRep, renamed, DefaultCompareOptions())
	if !hasNotice(notices, `read case "read-core-20k" absent from baseline`) ||
		!hasNotice(notices, `read case "read-core-10k" in baseline but not in new report`) {
		t.Fatalf("missing per-case notices: %v", notices)
	}
}

func hasNotice(notices []string, want string) bool {
	for _, n := range notices {
		if strings.Contains(n, want) {
			return true
		}
	}
	return false
}
