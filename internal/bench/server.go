package bench

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dyncq/internal/cq"
	"dyncq/internal/server"
	"dyncq/internal/workload"
)

// This file is the server phase of the bench suite: it measures the
// serving front door (internal/server) end to end — update-to-
// subscriber-notification latency and concurrent MVCC reader
// throughput while a writer streams batches. Connections are net.Pipe:
// in-process and unbuffered, so the measured path is the full
// parse → commit → delta capture → broker publish → outbox → wire
// pipeline without kernel socket noise.

// ServerConfig describes one server-phase benchmark case.
type ServerConfig struct {
	// Name labels the case in the report.
	Name string
	// Query is the maintained query text, registered as "q".
	Query string
	// Subscribers is the number of delta-subscribed client connections.
	Subscribers int
	// Readers is the number of client connections hammering count
	// requests (MVCC snapshot reads) while the writer streams.
	Readers int
	// Batches and BatchSize shape the measured update stream.
	Batches   int
	BatchSize int
	// Domain and PDelete shape the workload (see workload.RandomStream).
	Domain  int
	PDelete float64
	// Seed makes the workload reproducible.
	Seed int64
	// OutboxFrames sizes the per-connection outbox (0 = server default).
	OutboxFrames int
}

// ServerResult records one server-phase case.
type ServerResult struct {
	Name        string `json:"name"`
	Subscribers int    `json:"subscribers"`
	Readers     int    `json:"readers"`
	Batches     int    `json:"batches"`
	BatchSize   int    `json:"batch_size"`
	// CommitNS is the writer-observed ApplyBatch round-trip latency
	// (request write to ok-committed receipt).
	CommitNS Percentiles `json:"commit_ns"`
	// NotifyNS is the update-to-notification latency: commit start at
	// the writer to delta-frame receipt at a subscriber, pooled over
	// all subscribers and versions.
	NotifyNS Percentiles `json:"notify_ns"`
	// Reads is the number of count round-trips completed by the reader
	// clients while the writer streamed; ReadsPerSec normalises by the
	// streaming wall time.
	Reads       int64   `json:"reads"`
	ReadsPerSec float64 `json:"reads_per_sec"`
	// DroppedFrames counts subscriber frames dropped to the bounded
	// outbox during the run (0 on a healthy run; nonzero means the
	// notify percentiles describe a degraded, resyncing consumer).
	DroppedFrames uint64 `json:"dropped_frames"`
}

// DefaultServerSuite is the standard server phase: one core-routed and
// one IVM-routed query case, small enough for a CI smoke yet busy
// enough to exercise fan-out, broker publish, and reader concurrency.
func DefaultServerSuite() []ServerConfig {
	return []ServerConfig{
		{
			Name: "serve-star", Query: "Q(y) :- E(x,y), T(y)",
			Subscribers: 3, Readers: 2,
			Batches: 150, BatchSize: 40, Domain: 24, PDelete: 0.35, Seed: 1,
		},
		{
			Name: "serve-hard", Query: "Q(x,y) :- S(x), E(x,y), T(y)",
			Subscribers: 2, Readers: 2,
			Batches: 100, BatchSize: 40, Domain: 20, PDelete: 0.35, Seed: 2,
		},
	}
}

// RunServer measures one server-phase case.
func RunServer(cfg ServerConfig) (ServerResult, error) {
	if cfg.Batches <= 0 || cfg.BatchSize <= 0 {
		return ServerResult{}, fmt.Errorf("server case %q: Batches and BatchSize must be positive", cfg.Name)
	}
	q, err := cq.Parse(cfg.Query)
	if err != nil {
		return ServerResult{}, fmt.Errorf("server case %q: %v", cfg.Name, err)
	}
	srv := server.New(server.Options{OutboxFrames: cfg.OutboxFrames})
	defer srv.Close()
	dial := func() (*server.Client, error) {
		cs, ss := net.Pipe()
		go srv.ServeConn(ss)
		return server.NewClient(cs), nil
	}

	writer, err := dial()
	if err != nil {
		return ServerResult{}, err
	}
	defer writer.Close()
	if err := writer.Register("q", cfg.Query); err != nil {
		return ServerResult{}, fmt.Errorf("server case %q: %v", cfg.Name, err)
	}

	// commitStart[v] is the wall-clock instant just before the batch
	// that committed version v was sent; subscribers subtract it from
	// their frame receipt instant. Versions are 1-based and dense.
	commitStart := make([]time.Time, cfg.Batches+1)

	var notifyMu sync.Mutex
	notifyNS := make([]int64, 0, cfg.Batches*max(cfg.Subscribers, 1))
	var dropped atomic.Uint64
	var subWG sync.WaitGroup
	for i := 0; i < cfg.Subscribers; i++ {
		sub, err := dial()
		if err != nil {
			return ServerResult{}, err
		}
		defer sub.Close()
		if _, err := sub.Subscribe("q"); err != nil {
			return ServerResult{}, fmt.Errorf("server case %q: %v", cfg.Name, err)
		}
		subWG.Add(1)
		go func(c *server.Client) {
			defer subWG.Done()
			local := make([]int64, 0, cfg.Batches)
			// The whole-run bound guards the degenerate case where a
			// lagged subscriber's terminal frame was dropped and no
			// further commit arrives to carry the resync.
			timeout := time.After(60 * time.Second)
		drain:
			for {
				select {
				case d, ok := <-c.Deltas():
					if !ok {
						break drain
					}
					now := time.Now()
					if d.Resync {
						dropped.Add(d.Dropped)
					} else if d.Version >= 1 && d.Version <= uint64(cfg.Batches) {
						local = append(local, now.Sub(commitStart[d.Version]).Nanoseconds())
					}
					if d.Version >= uint64(cfg.Batches) {
						break drain
					}
				case <-timeout:
					break drain
				}
			}
			notifyMu.Lock()
			notifyNS = append(notifyNS, local...)
			notifyMu.Unlock()
		}(sub)
	}

	stop := make(chan struct{})
	var reads atomic.Int64
	var readerWG sync.WaitGroup
	for i := 0; i < cfg.Readers; i++ {
		rc, err := dial()
		if err != nil {
			return ServerResult{}, err
		}
		defer rc.Close()
		readerWG.Add(1)
		go func(c *server.Client) {
			defer readerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, _, err := c.Count("q"); err != nil {
					return
				}
				reads.Add(1)
			}
		}(rc)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	commitNS := make([]int64, 0, cfg.Batches)
	streamStart := time.Now()
	for b := 1; b <= cfg.Batches; b++ {
		batch := workload.RandomStream(rng, q.Schema(), cfg.Domain, cfg.BatchSize, cfg.PDelete)
		t0 := time.Now()
		commitStart[b] = t0
		if _, _, err := writer.ApplyBatch(batch); err != nil {
			close(stop)
			return ServerResult{}, fmt.Errorf("server case %q batch %d: %v", cfg.Name, b, err)
		}
		commitNS = append(commitNS, time.Since(t0).Nanoseconds())
	}
	streamed := time.Since(streamStart)
	close(stop)
	readerWG.Wait()
	subWG.Wait()

	res := ServerResult{
		Name:        cfg.Name,
		Subscribers: cfg.Subscribers,
		Readers:     cfg.Readers,
		Batches:     cfg.Batches,
		BatchSize:   cfg.BatchSize,
		CommitNS:    percentiles(commitNS),
		NotifyNS:    percentiles(notifyNS),
		Reads:       reads.Load(),
		DroppedFrames: dropped.Load() +
			srv.DroppedFrames("q"), // resynced + still-lagged at shutdown
	}
	if sec := streamed.Seconds(); sec > 0 {
		res.ReadsPerSec = float64(res.Reads) / sec
	}
	return res, nil
}

// RunServerSuite measures every case of the suite.
func RunServerSuite(suite []ServerConfig) ([]ServerResult, error) {
	out := make([]ServerResult, 0, len(suite))
	for _, cfg := range suite {
		r, err := RunServer(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
