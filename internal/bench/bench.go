// Package bench is the benchmark harness: it drives update streams
// (typically produced by internal/workload) through the maintenance
// strategies behind pkg/dyncq and measures the three quantities the
// paper's bounds are stated in — preprocessing time, per-update time,
// and enumeration delay — plus counting time. Results marshal to JSON so
// every PR's performance claims are recorded in a comparable artifact.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"dyncq/internal/cq"
	"dyncq/internal/dyndb"
	"dyncq/internal/qtree"
	"dyncq/pkg/dyncq"
)

// Config describes one benchmark case: a query, a preprocessing stream
// (the initial database D0), and a measured update stream.
type Config struct {
	// Name labels the case in the report.
	Name string
	// Query is the maintained query.
	Query *cq.Query
	// Initial is replayed as the preprocessing phase (timed as one block).
	Initial []dyndb.Update
	// Stream is the measured phase: each update is timed individually.
	Stream []dyndb.Update
	// MaxEnumerate caps the number of tuples pulled during the delay
	// measurement (0 = enumerate everything).
	MaxEnumerate int
	// BatchSizes lists the chunk sizes of the batch phase: for every size
	// a fresh session bulk-loads Initial and applies Stream through
	// ApplyBatch in chunks of that size, so the report shows how batching
	// amortises maintenance against the per-update loop. Empty = skip.
	BatchSizes []int
	// Repeat runs every strategy measurement this many times and records
	// the best latency per metric (noise in wall-clock measurement is
	// one-sided, so best-of-R is the robust estimator the regression gate
	// needs). 0 or 1 means a single run.
	Repeat int
	// Workers lists the worker counts of the parallel phase: for every
	// count a fresh ConcurrentSession bulk-loads Initial and applies
	// Stream through ApplyBatched with that many shard workers, so the
	// report shows how sharded parallel application scales. Include 1 to
	// record the locked-but-sequential baseline the speedups are computed
	// against. Empty = skip.
	Workers []int
	// ParallelBatch is the chunk size of the parallel phase (0 = 512).
	ParallelBatch int
}

// Percentiles summarises a latency sample in nanoseconds.
type Percentiles struct {
	P50 int64 `json:"p50_ns"`
	P90 int64 `json:"p90_ns"`
	P99 int64 `json:"p99_ns"`
	Max int64 `json:"max_ns"`
}

// percentiles computes the summary of a sample; it sorts its argument.
func percentiles(sample []int64) Percentiles {
	if len(sample) == 0 {
		return Percentiles{}
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
	at := func(q float64) int64 {
		i := int(q * float64(len(sample)-1))
		return sample[i]
	}
	return Percentiles{
		P50: at(0.50),
		P90: at(0.90),
		P99: at(0.99),
		Max: sample[len(sample)-1],
	}
}

// BatchResult measures one batch size of the batch phase: the stream is
// applied through Session.ApplyBatch in chunks of BatchSize on a fresh,
// bulk-loaded session.
type BatchResult struct {
	BatchSize int `json:"batch_size"`
	// Batches is how many chunks the stream split into; NetApplied is the
	// total number of net commands that changed the database (coalescing
	// makes this ≤ the stream length).
	Batches    int `json:"batches"`
	NetApplied int `json:"net_applied"`
	// TotalNS is the wall time of the whole batched stream and
	// UpdatesPerSec the resulting stream-level throughput; BatchNS
	// summarises per-batch latencies.
	TotalNS       int64       `json:"total_ns"`
	UpdatesPerSec float64     `json:"updates_per_sec"`
	BatchNS       Percentiles `json:"batch_ns"`
	// Alloc is the allocator traffic of the batched stream, per stream
	// update (same denominator as the per-update loop, so the two phases
	// are directly comparable).
	Alloc AllocStats `json:"alloc"`
}

// ParallelResult measures one worker count of the parallel phase: the
// stream applied through ConcurrentSession.ApplyBatched on a fresh,
// bulk-loaded session with Workers shard workers per batch.
type ParallelResult struct {
	Workers   int `json:"workers"`
	BatchSize int `json:"batch_size"`
	// Sharded reports whether the parallel path actually engaged
	// (core backend with >1 worker); false means the run went through the
	// sequential pipeline under the lock, measuring pure lock overhead.
	Sharded    bool  `json:"sharded"`
	NetApplied int   `json:"net_applied"`
	TotalNS    int64 `json:"total_ns"`
	// UpdatesPerSec is the aggregate stream-level throughput; SpeedupVs1
	// is TotalNS(workers=1)/TotalNS for the same case and strategy (0 if
	// no workers=1 entry was measured).
	UpdatesPerSec float64 `json:"updates_per_sec"`
	SpeedupVs1    float64 `json:"speedup_vs_1,omitempty"`
	// Alloc is the allocator traffic per stream update, summed over all
	// worker goroutines (MemStats deltas are process-wide).
	Alloc AllocStats `json:"alloc"`
}

// StrategyResult is the measurement of one strategy on one case.
type StrategyResult struct {
	Strategy string `json:"strategy"`
	// PreprocessNS is the wall time of replaying Initial one update at a
	// time; BulkLoadNS is the wall time of Session.Load with the same
	// initial database on a fresh session (0 if Initial is empty).
	PreprocessNS int64 `json:"preprocess_ns"`
	BulkLoadNS   int64 `json:"bulk_load_ns,omitempty"`
	// PreprocessAlloc is the allocator traffic of the preprocessing
	// replay, per initial update.
	PreprocessAlloc AllocStats `json:"preprocess_alloc"`
	// Updates is len(Stream); UpdateNS summarises per-update latencies
	// and UpdatesPerSec the resulting throughput.
	Updates       int         `json:"updates"`
	UpdateTotalNS int64       `json:"update_total_ns"`
	UpdatesPerSec float64     `json:"updates_per_sec"`
	UpdateNS      Percentiles `json:"update_ns"`
	// UpdateAlloc is the allocator traffic of the measured per-update
	// loop, per update — the headline number for the slab and interning
	// work (see internal/bench/alloc.go).
	UpdateAlloc AllocStats `json:"update_alloc"`
	// CountNS is the time of one Count() call after the stream; Count is
	// its result.
	CountNS int64  `json:"count_ns"`
	Count   uint64 `json:"count"`
	// EnumeratedTuples is how many tuples the delay measurement pulled;
	// DelayNS summarises the per-tuple delays (first tuple included).
	EnumeratedTuples int         `json:"enumerated_tuples"`
	DelayNS          Percentiles `json:"delay_ns"`
	// EnumerateAlloc is the allocator traffic of the delay measurement,
	// per enumerated tuple — the decode-boundary cost of interning.
	EnumerateAlloc AllocStats `json:"enumerate_alloc"`
	// Batches holds the batch phase, one entry per Config.BatchSizes.
	Batches []BatchResult `json:"batches,omitempty"`
	// Parallel holds the parallel phase, one entry per Config.Workers.
	Parallel []ParallelResult `json:"parallel,omitempty"`
}

// CaseResult is the full report for one benchmark case.
type CaseResult struct {
	Name          string           `json:"name"`
	Query         string           `json:"query"`
	QHierarchical bool             `json:"q_hierarchical"`
	InitialSize   int              `json:"initial_size"`
	StreamSize    int              `json:"stream_size"`
	Strategies    []StrategyResult `json:"strategies"`
}

// Report is the top-level JSON artifact.
type Report struct {
	CreatedUnix int64  `json:"created_unix"`
	GoVersion   string `json:"go_version,omitempty"`
	// NumCPU and Gomaxprocs record the parallel capacity of the machine
	// the report was produced on: recorded speedups are meaningless
	// without them (a 1-core container can only ever report ≈1×, see
	// the BENCH_PR3 episode in the ROADMAP).
	NumCPU     int           `json:"num_cpu,omitempty"`
	Gomaxprocs int           `json:"gomaxprocs,omitempty"`
	Cases      []CaseResult  `json:"cases"`
	Sweeps     []SweepResult `json:"sweeps,omitempty"`
	// Multi holds the multi-query workspace phase (see RunMulti);
	// reports from before the workspace front door simply lack it.
	Multi []MultiResult `json:"multi,omitempty"`
	// Large holds the production-scale tier (see RunLarge); only
	// invocations that opt in (bench -large) produce it.
	Large []LargeResult `json:"large,omitempty"`
	// Server holds the serving front-door phase (see RunServer):
	// update-to-subscriber-notification latency and concurrent MVCC
	// reader throughput; reports from before the server existed lack it.
	Server []ServerResult `json:"server,omitempty"`
	// Read holds the snapshot-pin phase (see RunRead): cold vs hot pin
	// latency, reader throughput with and without concurrent commits,
	// and the cache hit rate; only invocations that opt in (bench
	// -read) produce it.
	Read []ReadResult `json:"read,omitempty"`
	// Notes carries free-form context an operator attached to the
	// artifact — e.g. the before/after allocation reductions recorded
	// when a memory refactor lands. Purely informational: the compare
	// gate never reads them.
	Notes []string `json:"notes,omitempty"`
}

// RunCase measures every given strategy on the case. Strategies that
// cannot serve the query (StrategyCore on a non-q-hierarchical query) are
// skipped silently, so callers can request all strategies uniformly.
func RunCase(cfg Config, strategies []dyncq.Strategy) (CaseResult, error) {
	res := CaseResult{
		Name:          cfg.Name,
		Query:         cfg.Query.String(),
		QHierarchical: qtree.IsQHierarchical(cfg.Query),
		InitialSize:   len(cfg.Initial),
		StreamSize:    len(cfg.Stream),
	}
	initDB := dyndb.New()
	if err := initDB.ApplyAll(cfg.Initial); err != nil {
		return res, fmt.Errorf("case %s: building initial database: %w", cfg.Name, err)
	}
	reps := cfg.Repeat
	if reps < 1 {
		reps = 1
	}
	for _, st := range strategies {
		var best StrategyResult
		skip := false
		for rep := 0; rep < reps; rep++ {
			sr, err := runStrategy(cfg, st, initDB)
			if err != nil {
				if st == dyncq.StrategyCore && !res.QHierarchical {
					skip = true // expected: the core engine refuses the query
					break
				}
				return res, fmt.Errorf("case %s, strategy %s: %w", cfg.Name, st, err)
			}
			if rep == 0 {
				best = sr
			} else {
				best = mergeBest(best, sr)
			}
		}
		if !skip {
			res.Strategies = append(res.Strategies, best)
		}
	}
	return res, nil
}

// mergeBest folds one repetition into the accumulated best-of result:
// latencies take the minimum, throughputs the maximum. Counts and sizes
// are identical across repetitions by construction.
func mergeBest(a, b StrategyResult) StrategyResult {
	minI := func(x, y int64) int64 {
		if y < x {
			return y
		}
		return x
	}
	minP := func(x, y Percentiles) Percentiles {
		return Percentiles{
			P50: minI(x.P50, y.P50),
			P90: minI(x.P90, y.P90),
			P99: minI(x.P99, y.P99),
			Max: minI(x.Max, y.Max),
		}
	}
	a.PreprocessNS = minI(a.PreprocessNS, b.PreprocessNS)
	a.BulkLoadNS = minI(a.BulkLoadNS, b.BulkLoadNS)
	a.PreprocessAlloc = minAlloc(a.PreprocessAlloc, b.PreprocessAlloc)
	a.UpdateTotalNS = minI(a.UpdateTotalNS, b.UpdateTotalNS)
	if b.UpdatesPerSec > a.UpdatesPerSec {
		a.UpdatesPerSec = b.UpdatesPerSec
	}
	a.UpdateNS = minP(a.UpdateNS, b.UpdateNS)
	a.UpdateAlloc = minAlloc(a.UpdateAlloc, b.UpdateAlloc)
	a.CountNS = minI(a.CountNS, b.CountNS)
	a.DelayNS = minP(a.DelayNS, b.DelayNS)
	a.EnumerateAlloc = minAlloc(a.EnumerateAlloc, b.EnumerateAlloc)
	for i := range a.Batches {
		if i >= len(b.Batches) {
			break
		}
		ab, bb := &a.Batches[i], b.Batches[i]
		ab.TotalNS = minI(ab.TotalNS, bb.TotalNS)
		if bb.UpdatesPerSec > ab.UpdatesPerSec {
			ab.UpdatesPerSec = bb.UpdatesPerSec
		}
		ab.BatchNS = minP(ab.BatchNS, bb.BatchNS)
		ab.Alloc = minAlloc(ab.Alloc, bb.Alloc)
	}
	for i := range a.Parallel {
		if i >= len(b.Parallel) {
			break
		}
		ap, bp := &a.Parallel[i], b.Parallel[i]
		ap.TotalNS = minI(ap.TotalNS, bp.TotalNS)
		if bp.UpdatesPerSec > ap.UpdatesPerSec {
			ap.UpdatesPerSec = bp.UpdatesPerSec
		}
		ap.Alloc = minAlloc(ap.Alloc, bp.Alloc)
	}
	fillSpeedups(a.Parallel)
	return a
}

func runStrategy(cfg Config, st dyncq.Strategy, initDB *dyndb.Database) (StrategyResult, error) {
	sess, err := dyncq.NewWithOptions(cfg.Query, dyncq.Options{Force: st})
	if err != nil {
		return StrategyResult{}, err
	}
	// Label with the resolved backend, not the request: StrategyAuto must
	// report which engine actually ran.
	sr := StrategyResult{Strategy: sess.Strategy().String(), Updates: len(cfg.Stream)}

	am := startAllocMeter()
	start := time.Now()
	if err := sess.ApplyAll(cfg.Initial); err != nil {
		return sr, fmt.Errorf("preprocessing: %w", err)
	}
	sr.PreprocessNS = time.Since(start).Nanoseconds()
	sr.PreprocessAlloc = am.perOp(len(cfg.Initial))

	// Bulk-load comparison: the same initial database through the batch
	// pipeline on a fresh session.
	if len(cfg.Initial) > 0 {
		bulk, err := dyncq.NewWithOptions(cfg.Query, dyncq.Options{Force: st})
		if err != nil {
			return sr, err
		}
		t0 := time.Now()
		if err := bulk.Load(initDB); err != nil {
			return sr, fmt.Errorf("bulk load: %w", err)
		}
		sr.BulkLoadNS = time.Since(t0).Nanoseconds()
	}

	lat := make([]int64, 0, len(cfg.Stream))
	am = startAllocMeter()
	for _, u := range cfg.Stream {
		t0 := time.Now()
		if _, err := sess.Apply(u); err != nil {
			return sr, fmt.Errorf("update %s: %w", u, err)
		}
		lat = append(lat, time.Since(t0).Nanoseconds())
	}
	sr.UpdateAlloc = am.perOp(len(lat))
	for _, ns := range lat {
		sr.UpdateTotalNS += ns
	}
	if sr.UpdateTotalNS > 0 {
		sr.UpdatesPerSec = float64(len(lat)) / (float64(sr.UpdateTotalNS) / 1e9)
	}
	sr.UpdateNS = percentiles(lat)

	t0 := time.Now()
	sr.Count = sess.Count()
	sr.CountNS = time.Since(t0).Nanoseconds()

	delays := make([]int64, 0, 1024)
	am = startAllocMeter()
	last := time.Now()
	sess.Enumerate(func(_ []dyncq.Value) bool {
		now := time.Now()
		delays = append(delays, now.Sub(last).Nanoseconds())
		last = now
		return cfg.MaxEnumerate == 0 || len(delays) < cfg.MaxEnumerate
	})
	sr.EnumerateAlloc = am.perOp(len(delays))
	sr.EnumeratedTuples = len(delays)
	sr.DelayNS = percentiles(delays)

	// Batch phase: fresh session per size, bulk-loaded, stream applied in
	// chunks through ApplyBatch.
	for _, size := range cfg.BatchSizes {
		if size < 1 {
			continue
		}
		br, err := runBatched(cfg, st, initDB, size)
		if err != nil {
			return sr, fmt.Errorf("batch size %d: %w", size, err)
		}
		sr.Batches = append(sr.Batches, br)
	}

	// Parallel phase: fresh concurrent session per worker count.
	for _, workers := range cfg.Workers {
		if workers < 1 {
			continue
		}
		pr, err := runParallel(cfg, st, initDB, workers)
		if err != nil {
			return sr, fmt.Errorf("workers %d: %w", workers, err)
		}
		sr.Parallel = append(sr.Parallel, pr)
	}
	fillSpeedups(sr.Parallel)
	return sr, nil
}

// runParallel measures the stream through a ConcurrentSession with the
// given worker count (sharded parallel batches on the core backend,
// locked sequential pipeline elsewhere).
func runParallel(cfg Config, st dyncq.Strategy, initDB *dyndb.Database, workers int) (ParallelResult, error) {
	sess, err := dyncq.NewConcurrent(cfg.Query, dyncq.ConcurrentOptions{Force: st, Workers: workers})
	if err != nil {
		return ParallelResult{}, err
	}
	if err := sess.Load(initDB); err != nil {
		return ParallelResult{}, err
	}
	size := cfg.ParallelBatch
	if size <= 0 {
		size = 512
	}
	pr := ParallelResult{Workers: workers, BatchSize: size, Sharded: sess.Parallel()}
	am := startAllocMeter()
	t0 := time.Now()
	n, err := sess.ApplyBatched(cfg.Stream, size)
	pr.TotalNS = time.Since(t0).Nanoseconds()
	pr.Alloc = am.perOp(len(cfg.Stream))
	pr.NetApplied = n
	if err != nil {
		return pr, err
	}
	if pr.TotalNS > 0 {
		pr.UpdatesPerSec = float64(len(cfg.Stream)) / (float64(pr.TotalNS) / 1e9)
	}
	return pr, nil
}

// fillSpeedups recomputes SpeedupVs1 against the workers=1 entry.
func fillSpeedups(parallel []ParallelResult) {
	var base int64
	for _, p := range parallel {
		if p.Workers == 1 {
			base = p.TotalNS
			break
		}
	}
	for i := range parallel {
		if base > 0 && parallel[i].TotalNS > 0 {
			parallel[i].SpeedupVs1 = float64(base) / float64(parallel[i].TotalNS)
		} else {
			parallel[i].SpeedupVs1 = 0
		}
	}
}

func runBatched(cfg Config, st dyncq.Strategy, initDB *dyndb.Database, size int) (BatchResult, error) {
	sess, err := dyncq.NewWithOptions(cfg.Query, dyncq.Options{Force: st})
	if err != nil {
		return BatchResult{}, err
	}
	if err := sess.Load(initDB); err != nil {
		return BatchResult{}, err
	}
	br := BatchResult{BatchSize: size}
	lat := make([]int64, 0, len(cfg.Stream)/size+1)
	am := startAllocMeter()
	for from := 0; from < len(cfg.Stream); from += size {
		to := from + size
		if to > len(cfg.Stream) {
			to = len(cfg.Stream)
		}
		t0 := time.Now()
		n, err := sess.ApplyBatch(cfg.Stream[from:to])
		lat = append(lat, time.Since(t0).Nanoseconds())
		br.NetApplied += n
		if err != nil {
			return br, err
		}
	}
	br.Alloc = am.perOp(len(cfg.Stream))
	br.Batches = len(lat)
	for _, ns := range lat {
		br.TotalNS += ns
	}
	if br.TotalNS > 0 {
		br.UpdatesPerSec = float64(len(cfg.Stream)) / (float64(br.TotalNS) / 1e9)
	}
	br.BatchNS = percentiles(lat)
	return br, nil
}

// Run measures all cases and assembles the report.
func Run(cases []Config, strategies []dyncq.Strategy) (Report, error) {
	rep := Report{
		CreatedUnix: time.Now().Unix(),
		NumCPU:      runtime.NumCPU(),
		Gomaxprocs:  runtime.GOMAXPROCS(0),
	}
	for _, cfg := range cases {
		cr, err := RunCase(cfg, strategies)
		if err != nil {
			return rep, err
		}
		rep.Cases = append(rep.Cases, cr)
	}
	return rep, nil
}

// WriteJSON writes the report to path, indented for readability.
func (r Report) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
