// Package bench is the benchmark harness: it drives update streams
// (typically produced by internal/workload) through the maintenance
// strategies behind pkg/dyncq and measures the three quantities the
// paper's bounds are stated in — preprocessing time, per-update time,
// and enumeration delay — plus counting time. Results marshal to JSON so
// every PR's performance claims are recorded in a comparable artifact.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"dyncq/internal/cq"
	"dyncq/internal/dyndb"
	"dyncq/internal/qtree"
	"dyncq/pkg/dyncq"
)

// Config describes one benchmark case: a query, a preprocessing stream
// (the initial database D0), and a measured update stream.
type Config struct {
	// Name labels the case in the report.
	Name string
	// Query is the maintained query.
	Query *cq.Query
	// Initial is replayed as the preprocessing phase (timed as one block).
	Initial []dyndb.Update
	// Stream is the measured phase: each update is timed individually.
	Stream []dyndb.Update
	// MaxEnumerate caps the number of tuples pulled during the delay
	// measurement (0 = enumerate everything).
	MaxEnumerate int
}

// Percentiles summarises a latency sample in nanoseconds.
type Percentiles struct {
	P50 int64 `json:"p50_ns"`
	P90 int64 `json:"p90_ns"`
	P99 int64 `json:"p99_ns"`
	Max int64 `json:"max_ns"`
}

// percentiles computes the summary of a sample; it sorts its argument.
func percentiles(sample []int64) Percentiles {
	if len(sample) == 0 {
		return Percentiles{}
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
	at := func(q float64) int64 {
		i := int(q * float64(len(sample)-1))
		return sample[i]
	}
	return Percentiles{
		P50: at(0.50),
		P90: at(0.90),
		P99: at(0.99),
		Max: sample[len(sample)-1],
	}
}

// StrategyResult is the measurement of one strategy on one case.
type StrategyResult struct {
	Strategy string `json:"strategy"`
	// PreprocessNS is the wall time of replaying Initial.
	PreprocessNS int64 `json:"preprocess_ns"`
	// Updates is len(Stream); UpdateNS summarises per-update latencies
	// and UpdatesPerSec the resulting throughput.
	Updates       int         `json:"updates"`
	UpdateTotalNS int64       `json:"update_total_ns"`
	UpdatesPerSec float64     `json:"updates_per_sec"`
	UpdateNS      Percentiles `json:"update_ns"`
	// CountNS is the time of one Count() call after the stream; Count is
	// its result.
	CountNS int64  `json:"count_ns"`
	Count   uint64 `json:"count"`
	// EnumeratedTuples is how many tuples the delay measurement pulled;
	// DelayNS summarises the per-tuple delays (first tuple included).
	EnumeratedTuples int         `json:"enumerated_tuples"`
	DelayNS          Percentiles `json:"delay_ns"`
}

// CaseResult is the full report for one benchmark case.
type CaseResult struct {
	Name          string           `json:"name"`
	Query         string           `json:"query"`
	QHierarchical bool             `json:"q_hierarchical"`
	InitialSize   int              `json:"initial_size"`
	StreamSize    int              `json:"stream_size"`
	Strategies    []StrategyResult `json:"strategies"`
}

// Report is the top-level JSON artifact.
type Report struct {
	CreatedUnix int64        `json:"created_unix"`
	GoVersion   string       `json:"go_version,omitempty"`
	Cases       []CaseResult `json:"cases"`
}

// RunCase measures every given strategy on the case. Strategies that
// cannot serve the query (StrategyCore on a non-q-hierarchical query) are
// skipped silently, so callers can request all strategies uniformly.
func RunCase(cfg Config, strategies []dyncq.Strategy) (CaseResult, error) {
	res := CaseResult{
		Name:          cfg.Name,
		Query:         cfg.Query.String(),
		QHierarchical: qtree.IsQHierarchical(cfg.Query),
		InitialSize:   len(cfg.Initial),
		StreamSize:    len(cfg.Stream),
	}
	for _, st := range strategies {
		sr, err := runStrategy(cfg, st)
		if err != nil {
			if st == dyncq.StrategyCore && !res.QHierarchical {
				continue // expected: the core engine refuses the query
			}
			return res, fmt.Errorf("case %s, strategy %s: %w", cfg.Name, st, err)
		}
		res.Strategies = append(res.Strategies, sr)
	}
	return res, nil
}

func runStrategy(cfg Config, st dyncq.Strategy) (StrategyResult, error) {
	sess, err := dyncq.NewWithOptions(cfg.Query, dyncq.Options{Force: st})
	if err != nil {
		return StrategyResult{}, err
	}
	// Label with the resolved backend, not the request: StrategyAuto must
	// report which engine actually ran.
	sr := StrategyResult{Strategy: sess.Strategy().String(), Updates: len(cfg.Stream)}

	start := time.Now()
	if err := sess.ApplyAll(cfg.Initial); err != nil {
		return sr, fmt.Errorf("preprocessing: %w", err)
	}
	sr.PreprocessNS = time.Since(start).Nanoseconds()

	lat := make([]int64, 0, len(cfg.Stream))
	for _, u := range cfg.Stream {
		t0 := time.Now()
		if _, err := sess.Apply(u); err != nil {
			return sr, fmt.Errorf("update %s: %w", u, err)
		}
		lat = append(lat, time.Since(t0).Nanoseconds())
	}
	for _, ns := range lat {
		sr.UpdateTotalNS += ns
	}
	if sr.UpdateTotalNS > 0 {
		sr.UpdatesPerSec = float64(len(lat)) / (float64(sr.UpdateTotalNS) / 1e9)
	}
	sr.UpdateNS = percentiles(lat)

	t0 := time.Now()
	sr.Count = sess.Count()
	sr.CountNS = time.Since(t0).Nanoseconds()

	delays := make([]int64, 0, 1024)
	last := time.Now()
	sess.Enumerate(func(_ []dyncq.Value) bool {
		now := time.Now()
		delays = append(delays, now.Sub(last).Nanoseconds())
		last = now
		return cfg.MaxEnumerate == 0 || len(delays) < cfg.MaxEnumerate
	})
	sr.EnumeratedTuples = len(delays)
	sr.DelayNS = percentiles(delays)
	return sr, nil
}

// Run measures all cases and assembles the report.
func Run(cases []Config, strategies []dyncq.Strategy) (Report, error) {
	rep := Report{CreatedUnix: time.Now().Unix()}
	for _, cfg := range cases {
		cr, err := RunCase(cfg, strategies)
		if err != nil {
			return rep, err
		}
		rep.Cases = append(rep.Cases, cr)
	}
	return rep, nil
}

// WriteJSON writes the report to path, indented for readability.
func (r Report) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
