package bench

import (
	"fmt"
	"reflect"
	"sort"
	"time"

	"dyncq/internal/cq"
	"dyncq/internal/dyndb"
	"dyncq/pkg/dyncq"
)

// This file implements the multi-query phase: K named queries (mixed
// core/ivm/recompute) registered in ONE dyncq.Workspace, replaying one
// update stream in batches. It measures what the workspace front door
// claims: the shared store is mutated once per batch (its mutation
// count is independent of K, recorded against the sum over K
// independent sessions), every query's result stays identical to an
// independent session replaying the same stream, and the per-query
// maintenance cost splits out via the handles' pipeline timers.

// NamedQuery is one registered query of a multi-query case.
type NamedQuery struct {
	// Name is the registration name in the workspace and the label in
	// the report.
	Name string
	// Query is the maintained query.
	Query *cq.Query
	// Force pins the strategy (StrategyAuto routes by classification).
	Force dyncq.Strategy
}

// MultiConfig describes one multi-query benchmark case.
type MultiConfig struct {
	// Name labels the case in the report.
	Name string
	// Queries are registered in order in one shared workspace.
	Queries []NamedQuery
	// Initial is bulk-loaded as the preprocessing phase.
	Initial []dyndb.Update
	// Stream is the measured phase, applied in chunks of BatchSize.
	Stream []dyndb.Update
	// BatchSize is the chunk size of the measured phase (0 = 512).
	BatchSize int
	// Repeat runs the shared measurement this many times, keeping the
	// best latencies (0 or 1 = single run). The solo comparison runs
	// once — it feeds the correctness check and the mutation counts,
	// which are deterministic.
	Repeat int
	// Workers lists the worker counts of the scaling phase: for every
	// count the same stream is replayed through a fresh workspace built
	// with that many workers (parallel store phase, per-handle fan-out,
	// per-engine shard workers) and a pinned shard count, so the
	// recorded speedups compare identical layouts. Include 1 for the
	// baseline the speedups are computed against. Empty = skip.
	Workers []int
}

// scalingShards is the pinned core-engine and store shard count of the
// multi-query scaling phase: every worker count runs the same sharded
// layout, so speedups measure workers, not layout changes — and the
// byte-identical check across worker counts is meaningful (enumeration
// order depends on the shard count, not the worker count).
const scalingShards = 8

// MultiScalingResult measures one worker count of the scaling phase.
type MultiScalingResult struct {
	Workers int   `json:"workers"`
	TotalNS int64 `json:"total_ns"`
	// UpdatesPerSec is the stream-level throughput; SpeedupVs1 is
	// TotalNS(workers=1)/TotalNS (0 if no workers=1 entry ran).
	UpdatesPerSec float64 `json:"updates_per_sec"`
	SpeedupVs1    float64 `json:"speedup_vs_1,omitempty"`
	// MatchesWorkers1 reports whether every query's final result —
	// including the enumeration order of core backends — is
	// byte-identical to the workers=1 run of the same layout.
	MatchesWorkers1 bool `json:"matches_workers_1"`
	// Alloc is the allocator traffic of the shared batched stream at this
	// worker count, per stream update (process-wide, all workers summed).
	Alloc AllocStats `json:"alloc"`
}

// MultiQueryResult is the per-query slice of a multi-query case.
type MultiQueryResult struct {
	Name     string `json:"name"`
	Query    string `json:"query"`
	Strategy string `json:"strategy"`
	// MaintainNS summarises this query's per-batch maintenance latency
	// inside the shared pipeline (delta hooks + batch fan-out), from the
	// handle's pipeline timer.
	MaintainNS Percentiles `json:"maintain_ns"`
	// MaintainTotalNS is the query's total maintenance time over the
	// stream; the sum over queries plus the store time is the shared
	// pipeline's cost.
	MaintainTotalNS int64 `json:"maintain_total_ns"`
	// Count is |ϕ(D)| after the stream; MatchesSolo reports whether the
	// result (and for core backends the exact enumeration order) equals
	// an independent session's replay of the same stream.
	Count       uint64 `json:"count"`
	MatchesSolo bool   `json:"matches_solo"`
	// SoloUpdateNS is the per-batch latency of the independent session
	// replaying the same chunks — the cost of serving this query alone.
	SoloUpdateNS Percentiles `json:"solo_update_ns"`
	SoloTotalNS  int64       `json:"solo_total_ns"`
}

// MultiResult is the full report of one multi-query case.
type MultiResult struct {
	Name       string `json:"name"`
	NumQueries int    `json:"num_queries"`
	InitSize   int    `json:"initial_size"`
	StreamSize int    `json:"stream_size"`
	BatchSize  int    `json:"batch_size"`
	Batches    int    `json:"batches"`
	NetApplied int    `json:"net_applied"`
	// SharedStoreMutations is the shared store's mutation count over the
	// measured stream; SoloStoreMutations is the sum over the K
	// independent sessions (≈ K × shared — the duplication the
	// workspace removes).
	SharedStoreMutations uint64 `json:"shared_store_mutations"`
	SoloStoreMutations   uint64 `json:"solo_store_mutations"`
	// SharedTotalNS is the wall time of the whole batched stream through
	// the workspace; SoloTotalNS sums the independent sessions' replays.
	SharedTotalNS int64   `json:"shared_total_ns"`
	SoloTotalNS   int64   `json:"solo_total_ns"`
	UpdatesPerSec float64 `json:"updates_per_sec"`
	// BatchNS summarises the shared pipeline's whole-batch latencies
	// (all K queries maintained per batch).
	BatchNS Percentiles `json:"batch_ns"`
	// Alloc is the allocator traffic of the shared batched stream, per
	// stream update — all K queries' maintenance included, so it compares
	// against the sum of the solo sessions' traffic.
	Alloc   AllocStats         `json:"alloc"`
	Queries []MultiQueryResult `json:"queries"`
	// Scaling holds the worker-scaling phase, one entry per
	// MultiConfig.Workers (pinned shard layout, see scalingShards).
	Scaling []MultiScalingResult `json:"scaling,omitempty"`
}

// RunMulti measures one multi-query case: the shared workspace replay
// (Repeat times, best kept) and one independent-session replay per
// query for the correctness check, the solo latencies, and the
// mutation-count comparison.
func RunMulti(cfg MultiConfig) (MultiResult, error) {
	size := cfg.BatchSize
	if size <= 0 {
		size = 512
	}
	res := MultiResult{
		Name:       cfg.Name,
		NumQueries: len(cfg.Queries),
		InitSize:   len(cfg.Initial),
		StreamSize: len(cfg.Stream),
		BatchSize:  size,
	}
	initDB := dyndb.New()
	if err := initDB.ApplyAll(cfg.Initial); err != nil {
		return res, fmt.Errorf("multi case %s: building initial database: %w", cfg.Name, err)
	}
	reps := cfg.Repeat
	if reps < 1 {
		reps = 1
	}

	var sharedTuples [][][]dyncq.Value
	for rep := 0; rep < reps; rep++ {
		one, tuples, err := runMultiShared(cfg, initDB, size, 0, 0)
		if err != nil {
			return res, err
		}
		if rep == 0 {
			res.Batches = one.Batches
			res.NetApplied = one.NetApplied
			res.SharedStoreMutations = one.SharedStoreMutations
			res.SharedTotalNS = one.SharedTotalNS
			res.BatchNS = one.BatchNS
			res.Alloc = one.Alloc
			res.Queries = one.Queries
			sharedTuples = tuples
			continue
		}
		if one.SharedTotalNS < res.SharedTotalNS {
			res.SharedTotalNS = one.SharedTotalNS
		}
		res.BatchNS = minPercentiles(res.BatchNS, one.BatchNS)
		res.Alloc = minAlloc(res.Alloc, one.Alloc)
		for i := range res.Queries {
			res.Queries[i].MaintainNS = minPercentiles(res.Queries[i].MaintainNS, one.Queries[i].MaintainNS)
			if one.Queries[i].MaintainTotalNS < res.Queries[i].MaintainTotalNS {
				res.Queries[i].MaintainTotalNS = one.Queries[i].MaintainTotalNS
			}
		}
	}

	// Solo comparison: one independent session per query over the same
	// stream, same chunks.
	for i, nq := range cfg.Queries {
		solo, err := dyncq.NewWithOptions(nq.Query, dyncq.Options{Force: nq.Force})
		if err != nil {
			return res, fmt.Errorf("multi case %s, query %s: %w", cfg.Name, nq.Name, err)
		}
		if err := solo.Load(initDB); err != nil {
			return res, fmt.Errorf("multi case %s, query %s: %w", cfg.Name, nq.Name, err)
		}
		base := solo.Workspace().StoreMutations()
		lat := make([]int64, 0, len(cfg.Stream)/size+1)
		for from := 0; from < len(cfg.Stream); from += size {
			to := from + size
			if to > len(cfg.Stream) {
				to = len(cfg.Stream)
			}
			t0 := time.Now()
			if _, err := solo.ApplyBatch(cfg.Stream[from:to]); err != nil {
				return res, fmt.Errorf("multi case %s, query %s: %w", cfg.Name, nq.Name, err)
			}
			lat = append(lat, time.Since(t0).Nanoseconds())
		}
		res.SoloStoreMutations += solo.Workspace().StoreMutations() - base
		for _, ns := range lat {
			res.Queries[i].SoloTotalNS += ns
		}
		res.SoloTotalNS += res.Queries[i].SoloTotalNS
		res.Queries[i].SoloUpdateNS = percentiles(lat)
		res.Queries[i].MatchesSolo = sameResult(res.Queries[i].Strategy, sharedTuples[i], solo.Tuples())
	}
	if res.SharedTotalNS > 0 {
		res.UpdatesPerSec = float64(len(cfg.Stream)) / (float64(res.SharedTotalNS) / 1e9)
	}

	// Scaling phase: the same stream through fresh workspaces built with
	// each worker count, shard layout pinned (scalingShards) so the runs
	// are byte-comparable and the speedups measure workers only. The
	// workers=1 run is the baseline for both the speedups and the
	// byte-identical bit: it runs first regardless of its position in
	// cfg.Workers, and when the list omits it entirely an unrecorded
	// workers=1 measurement still runs so the comparisons stay
	// meaningful.
	measure := func(workers int) (MultiScalingResult, [][][]dyncq.Value, error) {
		sr := MultiScalingResult{Workers: workers}
		var tuples [][][]dyncq.Value
		for rep := 0; rep < reps; rep++ {
			one, tu, err := runMultiShared(cfg, initDB, size, workers, scalingShards)
			if err != nil {
				return sr, nil, err
			}
			if rep == 0 || one.SharedTotalNS < sr.TotalNS {
				sr.TotalNS = one.SharedTotalNS
			}
			if rep == 0 {
				sr.Alloc = one.Alloc
			} else {
				sr.Alloc = minAlloc(sr.Alloc, one.Alloc)
			}
			tuples = tu
		}
		if sr.TotalNS > 0 {
			sr.UpdatesPerSec = float64(len(cfg.Stream)) / (float64(sr.TotalNS) / 1e9)
		}
		return sr, tuples, nil
	}
	wantScaling := false
	for _, workers := range cfg.Workers {
		if workers >= 1 {
			wantScaling = true
		}
	}
	if !wantScaling {
		return res, nil
	}
	baseSR, baseTuples, err := measure(1)
	if err != nil {
		return res, err
	}
	baseSR.MatchesWorkers1 = true
	baseSR.SpeedupVs1 = 1
	for _, workers := range cfg.Workers {
		if workers < 1 {
			continue
		}
		if workers == 1 {
			res.Scaling = append(res.Scaling, baseSR)
			continue
		}
		sr, tuples, err := measure(workers)
		if err != nil {
			return res, err
		}
		sr.MatchesWorkers1 = true
		for i := range cfg.Queries {
			// Pinned shard count ⇒ core enumeration order must agree
			// exactly; the other strategies are canonicalised inside
			// sameResult.
			if !sameResult(res.Queries[i].Strategy, tuples[i], baseTuples[i]) {
				sr.MatchesWorkers1 = false
			}
		}
		if baseSR.TotalNS > 0 && sr.TotalNS > 0 {
			sr.SpeedupVs1 = float64(baseSR.TotalNS) / float64(sr.TotalNS)
		}
		res.Scaling = append(res.Scaling, sr)
	}
	return res, nil
}

// runMultiShared is one repetition of the shared-workspace measurement
// with the given worker count and (for workers > 0) pinned engine/store
// shard counts; workers = 0 is the sequential default layout. It
// returns the per-query final tuples so the caller can check them
// against the independent sessions (or across worker counts).
func runMultiShared(cfg MultiConfig, initDB *dyndb.Database, size, workers, shards int) (MultiResult, [][][]dyncq.Value, error) {
	var zero MultiResult
	ws := dyncq.NewWorkspace(dyncq.WorkspaceOptions{Workers: workers, StoreShards: shards})
	handles := make([]*dyncq.Handle, len(cfg.Queries))
	for i, nq := range cfg.Queries {
		h, err := ws.RegisterQuery(nq.Name, nq.Query, dyncq.Options{Force: nq.Force, Shards: shards})
		if err != nil {
			return zero, nil, fmt.Errorf("multi case %s: register %s: %w", cfg.Name, nq.Name, err)
		}
		handles[i] = h
	}
	if err := ws.Load(initDB); err != nil {
		return zero, nil, fmt.Errorf("multi case %s: load: %w", cfg.Name, err)
	}

	res := MultiResult{Queries: make([]MultiQueryResult, len(cfg.Queries))}
	for i, h := range handles {
		res.Queries[i] = MultiQueryResult{
			Name:     h.Name(),
			Query:    h.Query().String(),
			Strategy: h.Strategy().String(),
		}
	}
	mutBase := ws.StoreMutations()
	batchLat := make([]int64, 0, len(cfg.Stream)/size+1)
	perQueryLat := make([][]int64, len(handles))
	lastNS := make([]int64, len(handles))
	am := startAllocMeter()
	for from := 0; from < len(cfg.Stream); from += size {
		to := from + size
		if to > len(cfg.Stream) {
			to = len(cfg.Stream)
		}
		t0 := time.Now()
		n, err := ws.ApplyBatch(cfg.Stream[from:to])
		batchLat = append(batchLat, time.Since(t0).Nanoseconds())
		if err != nil {
			return zero, nil, fmt.Errorf("multi case %s: batch: %w", cfg.Name, err)
		}
		res.NetApplied += n
		for i, h := range handles {
			ns, _ := h.MaintenanceNS()
			perQueryLat[i] = append(perQueryLat[i], ns-lastNS[i])
			lastNS[i] = ns
		}
	}
	res.Alloc = am.perOp(len(cfg.Stream))
	res.Batches = len(batchLat)
	res.SharedStoreMutations = ws.StoreMutations() - mutBase
	for _, ns := range batchLat {
		res.SharedTotalNS += ns
	}
	res.BatchNS = percentiles(batchLat)
	tuples := make([][][]dyncq.Value, len(handles))
	for i, h := range handles {
		res.Queries[i].MaintainTotalNS = lastNS[i]
		res.Queries[i].MaintainNS = percentiles(perQueryLat[i])
		res.Queries[i].Count = h.Count()
		tuples[i] = h.Tuples()
	}
	return res, tuples, nil
}

// sameResult compares a shared query's final tuples against its solo
// session's: core backends must agree in exact enumeration order; the
// other backends enumerate in unspecified order, so their results are
// canonicalised by sorting first.
func sameResult(strategy string, shared, solo [][]dyncq.Value) bool {
	if strategy != dyncq.StrategyCore.String() {
		sortTupleSet(shared)
		sortTupleSet(solo)
	}
	if len(shared) != len(solo) {
		return false
	}
	if len(shared) == 0 {
		return true
	}
	return reflect.DeepEqual(shared, solo)
}

func sortTupleSet(ts [][]dyncq.Value) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		for k := range a {
			if k >= len(b) {
				return false
			}
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
}

func minPercentiles(a, b Percentiles) Percentiles {
	m := func(x, y int64) int64 {
		if y < x {
			return y
		}
		return x
	}
	return Percentiles{P50: m(a.P50, b.P50), P90: m(a.P90, b.P90), P99: m(a.P99, b.P99), Max: m(a.Max, b.Max)}
}

// RunMultiAll measures all multi-query cases.
func RunMultiAll(cases []MultiConfig) ([]MultiResult, error) {
	var out []MultiResult
	for _, cfg := range cases {
		mr, err := RunMulti(cfg)
		if err != nil {
			return out, err
		}
		out = append(out, mr)
	}
	return out, nil
}
