package bench

import (
	"math/rand"
	"testing"

	"dyncq/internal/cq"
	"dyncq/internal/workload"
	"dyncq/pkg/dyncq"
)

func multiTestConfig(t *testing.T) MultiConfig {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	schema := map[string]int{"E": 2, "S": 1, "T": 1}
	return MultiConfig{
		Name: "mini",
		Queries: []NamedQuery{
			{Name: "star", Query: cq.MustParse("Q(y) :- E(x,y), T(y)")},
			{Name: "hard", Query: cq.MustParse("Q(x,y) :- S(x), E(x,y), T(y)")},
			{Name: "audit", Query: cq.MustParse("Q(y) :- E(x,y), T(y)"), Force: dyncq.StrategyRecompute},
		},
		Initial:   workload.RandomDatabase(rng, schema, 12, 40).Updates(),
		Stream:    workload.RandomStream(rng, schema, 12, 300, 0.35),
		BatchSize: 32,
		Repeat:    2,
		Workers:   []int{1, 2},
	}
}

// TestRunMultiScaling: the scaling phase records one entry per worker
// count, byte-identical results across counts, and a speedup baseline.
func TestRunMultiScaling(t *testing.T) {
	res, err := RunMulti(multiTestConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scaling) != 2 {
		t.Fatalf("scaling entries = %d, want 2", len(res.Scaling))
	}
	for _, sc := range res.Scaling {
		if !sc.MatchesWorkers1 {
			t.Errorf("workers=%d result diverges from workers=1", sc.Workers)
		}
		if sc.TotalNS <= 0 {
			t.Errorf("workers=%d: no time recorded", sc.Workers)
		}
		if sc.SpeedupVs1 <= 0 {
			t.Errorf("workers=%d: speedup %.2f, want > 0", sc.Workers, sc.SpeedupVs1)
		}
	}
}

// TestRunMultiScalingWithoutBaseline: a Workers list that omits (or
// reorders) the workers=1 entry still gets correct byte-identical bits
// and speedups — an unrecorded workers=1 baseline runs implicitly.
func TestRunMultiScalingWithoutBaseline(t *testing.T) {
	cfg := multiTestConfig(t)
	cfg.Workers = []int{4, 2} // no 1, descending order
	res, err := RunMulti(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scaling) != 2 {
		t.Fatalf("scaling entries = %d, want 2", len(res.Scaling))
	}
	for _, sc := range res.Scaling {
		if !sc.MatchesWorkers1 {
			t.Errorf("workers=%d falsely reported as diverging from workers=1", sc.Workers)
		}
		if sc.SpeedupVs1 <= 0 {
			t.Errorf("workers=%d: speedup %.2f, want > 0 (baseline missing?)", sc.Workers, sc.SpeedupVs1)
		}
	}
}

// TestRunMulti: the multi-query phase reports matching results for every
// query and a shared mutation count that is 1/K of the solo sum.
func TestRunMulti(t *testing.T) {
	cfg := multiTestConfig(t)
	res, err := RunMulti(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumQueries != 3 || len(res.Queries) != 3 {
		t.Fatalf("NumQueries = %d / %d results, want 3", res.NumQueries, len(res.Queries))
	}
	if res.NetApplied == 0 || res.Batches == 0 {
		t.Fatal("measured phase applied nothing")
	}
	for _, q := range res.Queries {
		if !q.MatchesSolo {
			t.Errorf("query %s [%s] diverges from its independent session", q.Name, q.Strategy)
		}
		if q.MaintainNS.P50 < 0 || q.MaintainTotalNS < 0 {
			t.Errorf("query %s: negative maintenance time", q.Name)
		}
	}
	// The acceptance claim: store mutations are independent of K — the
	// solo sessions together mutated exactly K times the shared count.
	if res.SharedStoreMutations == 0 {
		t.Fatal("no shared store mutations recorded; test is vacuous")
	}
	if want := res.SharedStoreMutations * uint64(res.NumQueries); res.SoloStoreMutations != want {
		t.Fatalf("solo store mutations %d, want K×shared = %d", res.SoloStoreMutations, want)
	}
}

// TestMultiReportRoundTrip: the multi phase survives the JSON artifact.
func TestMultiReportRoundTrip(t *testing.T) {
	res, err := RunMulti(multiTestConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	rep := Report{Cases: []CaseResult{}, Multi: []MultiResult{res}}
	path := t.TempDir() + "/multi.json"
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Multi) != 1 || back.Multi[0].Name != "mini" ||
		back.Multi[0].SharedStoreMutations != res.SharedStoreMutations {
		t.Fatalf("multi phase did not survive the JSON round trip: %+v", back.Multi)
	}
}
