package bench

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"dyncq/internal/cq"
	"dyncq/internal/dyndb"
	"dyncq/pkg/dyncq"
)

// This file is the read phase of the bench suite: it quantifies the
// snapshot-cache pin path in isolation, against the copy-on-pin
// baseline it replaced. Cold pins force a cache miss (evict, then pin:
// the old O(|result|) enumerate-and-copy); hot pins re-pin an unchanged
// version (the new path: one pointer load, zero allocation, shared
// buffer). Reader throughput is measured both quiet (no writer — every
// pin after the first is a hit) and busy (a writer commits single-tuple
// updates continuously, so the cache advances underneath the readers),
// with the writer's commit latency recorded to expose what cache
// maintenance costs the write path.

// ReadConfig describes one read-phase benchmark case.
type ReadConfig struct {
	// Name labels the case in the report.
	Name string
	// Query is the maintained query text, registered as "q".
	Query string
	// Strategy forces the backend (the point of the phase is comparing
	// pin behaviour per strategy, so routing is pinned, not inferred).
	Strategy dyncq.Strategy
	// Tuples sizes the result: that many distinct E(x,y) edges are
	// preloaded, and the suite's queries are chosen so |result| = Tuples.
	Tuples int
	// PinSamples is the number of cold and hot pin latency samples.
	PinSamples int
	// Readers is the pinning goroutine count of the throughput windows.
	Readers int
	// ReadWindow is the wall-clock length of each throughput window.
	ReadWindow time.Duration
	// Capture starts a no-op delta capture on the query, the way the
	// server does when a subscriber exists. With capture on, the
	// maintained-order strategies advance the cache by delta patch
	// (O(|delta|) per commit); without it every advance re-enumerates.
	Capture bool
	// Seed makes the preload reproducible.
	Seed int64
}

// ReadResult records one read-phase case.
type ReadResult struct {
	Name     string `json:"name"`
	Strategy string `json:"strategy"`
	Tuples   int    `json:"tuples"`
	// ColdPinNS is the copy-on-pin baseline: every sample evicts the
	// cache first, so the pin enumerates and copies the full result.
	ColdPinNS Percentiles `json:"cold_pin_ns"`
	// HotPinNS is the cached path: re-pinning an unchanged version.
	HotPinNS Percentiles `json:"hot_pin_ns"`
	// HotPinAlloc is the allocator traffic of the hot-pin loop — the
	// acceptance bar is exactly 0 allocs/op.
	HotPinAlloc AllocStats `json:"hot_pin_alloc"`
	// QuietReadsPerSec is pin throughput with no concurrent commits;
	// BusyReadsPerSec is the same window with a single-tuple writer
	// advancing the cache underneath.
	QuietReadsPerSec float64 `json:"quiet_reads_per_sec"`
	BusyReadsPerSec  float64 `json:"busy_reads_per_sec"`
	// CommitNS is the busy window's writer-observed single-update
	// latency — the cost of commits while the cache is kept advancing.
	CommitNS Percentiles `json:"commit_ns"`
	// CacheHitRate is hits/(hits+misses) over the whole case.
	CacheHitRate float64 `json:"cache_hit_rate"`
}

// DefaultReadSuite is the standard read phase: the core pin across
// three result sizes (the acceptance series for the O(1) claim), plus
// the two maintained-order strategies at the middle size.
func DefaultReadSuite() []ReadConfig {
	size := func(name string, s dyncq.Strategy, n int, samples int) ReadConfig {
		return ReadConfig{
			Name: name, Query: "Q(x,y) :- E(x,y)", Strategy: s,
			Tuples: n, PinSamples: samples, Readers: 4,
			ReadWindow: 120 * time.Millisecond, Capture: true, Seed: 1,
		}
	}
	return []ReadConfig{
		size("read-core-1k", dyncq.StrategyCore, 1_000, 400),
		size("read-core-10k", dyncq.StrategyCore, 10_000, 200),
		size("read-core-100k", dyncq.StrategyCore, 100_000, 60),
		size("read-ivm-10k", dyncq.StrategyIVM, 10_000, 200),
		size("read-recompute-10k", dyncq.StrategyRecompute, 10_000, 100),
	}
}

// RunRead measures one read-phase case.
func RunRead(cfg ReadConfig) (ReadResult, error) {
	if cfg.Tuples <= 0 || cfg.PinSamples <= 0 {
		return ReadResult{}, fmt.Errorf("read case %q: Tuples and PinSamples must be positive", cfg.Name)
	}
	if cfg.Readers <= 0 {
		cfg.Readers = 1
	}
	if cfg.ReadWindow <= 0 {
		cfg.ReadWindow = 100 * time.Millisecond
	}
	q, err := cq.Parse(cfg.Query)
	if err != nil {
		return ReadResult{}, fmt.Errorf("read case %q: %v", cfg.Name, err)
	}
	ws := dyncq.NewWorkspace(dyncq.WorkspaceOptions{})
	h, err := ws.RegisterQuery("q", q, dyncq.Options{Force: cfg.Strategy})
	if err != nil {
		return ReadResult{}, fmt.Errorf("read case %q: %v", cfg.Name, err)
	}
	// Preload exactly Tuples distinct edges; with Q(x,y) :- E(x,y) the
	// result size equals the edge count. A shuffled dense grid keeps
	// the insertion order (and thus the core enumeration order)
	// seed-reproducible without duplicate-tuple bookkeeping.
	side := 1
	for side*side < cfg.Tuples {
		side++
	}
	edges := make([]dyncq.Update, 0, cfg.Tuples)
	for i := 0; i < cfg.Tuples; i++ {
		edges = append(edges, dyndb.Insert("E", dyncq.Value(i/side), dyncq.Value(i%side)))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	if _, err := ws.ApplyBatch(edges); err != nil {
		return ReadResult{}, fmt.Errorf("read case %q: preload: %v", cfg.Name, err)
	}
	if cfg.Capture {
		if err := ws.CaptureDeltas("q", func(dyncq.DeltaEvent) {}); err != nil {
			return ReadResult{}, fmt.Errorf("read case %q: capture: %v", cfg.Name, err)
		}
	}
	if got := int(h.Count()); got != cfg.Tuples {
		return ReadResult{}, fmt.Errorf("read case %q: preload built %d tuples, want %d", cfg.Name, got, cfg.Tuples)
	}

	res := ReadResult{Name: cfg.Name, Strategy: cfg.Strategy.String(), Tuples: cfg.Tuples}

	// Cold pins: evict first, so each Snapshot is the full copy-on-pin
	// materialisation the cache replaced.
	coldNS := make([]int64, 0, cfg.PinSamples)
	for i := 0; i < cfg.PinSamples; i++ {
		h.EvictSnapshot()
		t0 := time.Now()
		s := h.Snapshot()
		coldNS = append(coldNS, time.Since(t0).Nanoseconds())
		if s.Len() != cfg.Tuples {
			return ReadResult{}, fmt.Errorf("read case %q: cold pin saw %d tuples", cfg.Name, s.Len())
		}
	}
	res.ColdPinNS = percentiles(coldNS)

	// Hot pins: one priming pin, then every sample re-pins the same
	// version. The alloc meter brackets only this loop; 0 allocs/op is
	// the acceptance bar.
	h.Snapshot()
	hotNS := make([]int64, cfg.PinSamples)
	am := startAllocMeter()
	for i := range hotNS {
		t0 := time.Now()
		h.Snapshot()
		hotNS[i] = time.Since(t0).Nanoseconds()
	}
	res.HotPinAlloc = am.perOp(cfg.PinSamples)
	res.HotPinNS = percentiles(hotNS)

	// Throughput windows: quiet (no commits), then busy (a writer
	// toggling one out-of-grid tuple per commit, advancing the cache).
	//
	// Single-CPU caveat: with GOMAXPROCS=1 the readers and the writer
	// time-slice instead of truly contending. During a writer scheduler
	// stint no reader can pin, so demand decay (by design) drops the
	// cache a few commits in and most of the stint commits against an
	// empty cache; when a reader runs next, one slow-path pin
	// re-materialises and the hit path serves the rest of its quantum.
	// BusyReadsPerSec and CommitNS are still internally consistent and
	// comparable against a baseline from the same machine class, but
	// only a multi-core run measures commits genuinely racing the
	// advance — the same reason CI benches only on its parallel leg.
	runWindow := func(busy bool) (float64, Percentiles, error) {
		var pins atomic.Int64
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for r := 0; r < cfg.Readers; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					h.Snapshot()
					pins.Add(1)
				}
			}()
		}
		var commitNS []int64
		start := time.Now()
		if busy {
			probe := dyncq.Value(side + 1) // outside the preloaded grid
			for on := false; time.Since(start) < cfg.ReadWindow; on = !on {
				u := dyndb.Insert("E", probe, probe)
				if on {
					u = dyndb.Delete("E", probe, probe)
				}
				t0 := time.Now()
				if _, err := ws.Apply(u); err != nil {
					close(stop)
					wg.Wait()
					return 0, Percentiles{}, fmt.Errorf("read case %q: busy writer: %v", cfg.Name, err)
				}
				commitNS = append(commitNS, time.Since(t0).Nanoseconds())
			}
		} else {
			time.Sleep(cfg.ReadWindow)
		}
		elapsed := time.Since(start)
		close(stop)
		wg.Wait()
		return float64(pins.Load()) / elapsed.Seconds(), percentiles(commitNS), nil
	}
	quiet, _, err := runWindow(false)
	if err != nil {
		return ReadResult{}, err
	}
	res.QuietReadsPerSec = quiet
	busy, commits, err := runWindow(true)
	if err != nil {
		return ReadResult{}, err
	}
	res.BusyReadsPerSec = busy
	res.CommitNS = commits

	st := h.SnapshotCacheStats()
	if total := st.Hits + st.Misses; total > 0 {
		res.CacheHitRate = float64(st.Hits) / float64(total)
	}
	return res, nil
}

// RunReadSuite measures every case of the suite.
func RunReadSuite(suite []ReadConfig) ([]ReadResult, error) {
	out := make([]ReadResult, 0, len(suite))
	for _, cfg := range suite {
		r, err := RunRead(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
