package bench

import (
	"path/filepath"
	"strings"
	"testing"
)

func mkReport(updP50, updP99, delayP50, delayP99 int64) Report {
	return Report{
		Cases: []CaseResult{{
			Name: "star",
			Strategies: []StrategyResult{{
				Strategy: "core",
				UpdateNS: Percentiles{P50: updP50, P99: updP99},
				DelayNS:  Percentiles{P50: delayP50, P99: delayP99},
			}},
		}},
	}
}

func TestCompareFlagsMedianRegression(t *testing.T) {
	oldRep := mkReport(10000, 20000, 10000, 20000)
	newRep := mkReport(15000, 20000, 10000, 20000) // p50 grew 1.5x
	regs := Compare(oldRep, newRep, CompareOptions{Tolerance: 0.30, FloorNS: 2000})
	if len(regs) != 1 {
		t.Fatalf("got %d regressions, want 1: %v", len(regs), regs)
	}
	r := regs[0]
	if r.Case != "star/core" || r.Metric != "update_ns.p50" || r.Old != 10000 || r.New != 15000 {
		t.Errorf("regression = %+v", r)
	}
	if r.Ratio < 1.49 || r.Ratio > 1.51 {
		t.Errorf("ratio = %f, want 1.5", r.Ratio)
	}
}

func TestCompareP99GetsLooserTolerance(t *testing.T) {
	oldRep := mkReport(10000, 20000, 10000, 20000)
	// p99 at 1.8x: a median would be flagged, a tail must not be (default
	// p99 tolerance is 3×0.30 = 0.90).
	newRep := mkReport(10000, 36000, 10000, 20000)
	if regs := Compare(oldRep, newRep, CompareOptions{Tolerance: 0.30, FloorNS: 2000}); len(regs) != 0 {
		t.Errorf("p99 within its looser tolerance flagged: %v", regs)
	}
	// p99 at 2.5x exceeds even the tail tolerance.
	newRep = mkReport(10000, 50000, 10000, 20000)
	regs := Compare(oldRep, newRep, CompareOptions{Tolerance: 0.30, FloorNS: 2000})
	if len(regs) != 1 || regs[0].Metric != "update_ns.p99" {
		t.Fatalf("p99 beyond tail tolerance: %v", regs)
	}
	// An explicit P99Tolerance overrides the 3× default.
	regs = Compare(oldRep, mkReport(10000, 36000, 10000, 20000),
		CompareOptions{Tolerance: 0.30, P99Tolerance: 0.30, FloorNS: 2000})
	if len(regs) != 1 {
		t.Errorf("explicit P99Tolerance ignored: %v", regs)
	}
}

func TestCompareWithinTolerance(t *testing.T) {
	oldRep := mkReport(10000, 20000, 10000, 20000)
	newRep := mkReport(12000, 25000, 12999, 25999) // p50 ≤ 1.30x, p99 ≤ 1.90x
	if regs := Compare(oldRep, newRep, CompareOptions{Tolerance: 0.30, FloorNS: 2000}); len(regs) != 0 {
		t.Errorf("regressions within tolerance: %v", regs)
	}
}

func TestCompareFloorSuppressesNoise(t *testing.T) {
	// 100ns -> 1900ns is a 19x blowup but below the noise floor.
	oldRep := mkReport(100, 100, 100, 100)
	newRep := mkReport(1900, 1900, 1900, 1900)
	if regs := Compare(oldRep, newRep, CompareOptions{Tolerance: 0.30, FloorNS: 2000}); len(regs) != 0 {
		t.Errorf("sub-floor growth flagged: %v", regs)
	}
	// Crossing the floor is flagged.
	newRep = mkReport(2100, 100, 100, 100)
	regs := Compare(oldRep, newRep, CompareOptions{Tolerance: 0.30, FloorNS: 2000})
	if len(regs) != 1 || regs[0].Metric != "update_ns.p50" {
		t.Errorf("floor crossing: %v", regs)
	}
}

func TestCompareImprovementPasses(t *testing.T) {
	oldRep := mkReport(50000, 90000, 50000, 90000)
	newRep := mkReport(10000, 20000, 10000, 20000)
	if regs := Compare(oldRep, newRep, DefaultCompareOptions()); len(regs) != 0 {
		t.Errorf("improvement flagged as regression: %v", regs)
	}
}

func TestCompareSkipsUnmatchedEntries(t *testing.T) {
	oldRep := mkReport(10000, 10000, 10000, 10000)
	newRep := Report{
		Cases: []CaseResult{
			{Name: "other", Strategies: []StrategyResult{{Strategy: "core", UpdateNS: Percentiles{P99: 1 << 40}}}},
			{Name: "star", Strategies: []StrategyResult{{Strategy: "ivm", UpdateNS: Percentiles{P99: 1 << 40}}}},
		},
	}
	if regs := Compare(oldRep, newRep, DefaultCompareOptions()); len(regs) != 0 {
		t.Errorf("unmatched case/strategy compared: %v", regs)
	}
}

func TestCompareSweeps(t *testing.T) {
	sweep := func(p99 int64) []SweepResult {
		return []SweepResult{{
			Name: "star-scaling",
			Points: []SweepPoint{{
				N: 100,
				Strategies: []StrategyResult{{
					Strategy: "core",
					UpdateNS: Percentiles{P50: 10000, P99: p99},
					DelayNS:  Percentiles{P50: 10000, P99: 10000},
				}},
			}},
		}}
	}
	oldRep := Report{Sweeps: sweep(10000)}
	newRep := Report{Sweeps: sweep(50000)}
	// Sweeps are informational by default.
	if regs := Compare(oldRep, newRep, DefaultCompareOptions()); len(regs) != 0 {
		t.Fatalf("sweeps gated without IncludeSweeps: %v", regs)
	}
	opt := DefaultCompareOptions()
	opt.IncludeSweeps = true
	regs := Compare(oldRep, newRep, opt)
	if len(regs) != 1 || regs[0].Case != "star-scaling/n=100/core" {
		t.Fatalf("sweep comparison: %v", regs)
	}
}

func TestLoadReportRoundTrip(t *testing.T) {
	rep := mkReport(1, 2, 3, 4)
	rep.CreatedUnix = 42
	path := filepath.Join(t.TempDir(), "r.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.CreatedUnix != 42 || len(got.Cases) != 1 || got.Cases[0].Strategies[0].UpdateNS.P99 != 2 {
		t.Errorf("round trip lost data: %+v", got)
	}
	if _, err := LoadReport(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file loaded")
	}
}

// TestCompareNoticesForMissingPhases: a new report with phases the
// baseline predates (the multi-query phase, a new case) is gated on the
// common part and the rest is reported as notices, never an error.
func TestCompareNoticesForMissingPhases(t *testing.T) {
	oldRep := Report{Cases: []CaseResult{{
		Name: "star",
		Strategies: []StrategyResult{{
			Strategy: "core",
			UpdateNS: Percentiles{P50: 100000, P99: 200000},
			DelayNS:  Percentiles{P50: 100000, P99: 200000},
		}},
	}}}
	newRep := Report{
		Cases: []CaseResult{
			{Name: "star", Strategies: []StrategyResult{{
				Strategy: "core",
				UpdateNS: Percentiles{P50: 100000, P99: 200000},
				DelayNS:  Percentiles{P50: 100000, P99: 200000},
			}}},
			{Name: "brand-new-case"},
		},
		Multi: []MultiResult{{
			Name:    "workspace-4q",
			BatchNS: Percentiles{P50: 1 << 30, P99: 1 << 30}, // huge, but ungated: no baseline
			Queries: []MultiQueryResult{{Name: "star", MaintainNS: Percentiles{P50: 1 << 30, P99: 1 << 30}}},
		}},
	}
	regs, notices := CompareWithNotices(oldRep, newRep, DefaultCompareOptions())
	if len(regs) != 0 {
		t.Fatalf("phases absent from the baseline produced regressions: %v", regs)
	}
	if len(notices) != 2 {
		t.Fatalf("notices = %v, want one for the new case and one for the multi phase", notices)
	}
}

// TestCompareGatesMultiPhase: once the baseline has a multi phase, its
// percentiles are gated like every other latency.
func TestCompareGatesMultiPhase(t *testing.T) {
	mk := func(batchP50, maintainP50 int64) Report {
		// p99s held constant so only the p50 movement is under test.
		return Report{Multi: []MultiResult{{
			Name:    "workspace-4q",
			BatchNS: Percentiles{P50: batchP50, P99: 500000},
			Queries: []MultiQueryResult{{
				Name:       "star",
				MaintainNS: Percentiles{P50: maintainP50, P99: 500000},
			}},
		}}}
	}
	opt := DefaultCompareOptions()
	regs, notices := CompareWithNotices(mk(100000, 50000), mk(100000, 50000), opt)
	if len(regs) != 0 || len(notices) != 0 {
		t.Fatalf("identical multi phases flagged: regs=%v notices=%v", regs, notices)
	}
	regs, _ = CompareWithNotices(mk(100000, 50000), mk(200000, 50000), opt)
	if len(regs) != 1 || regs[0].Metric != "batch_ns.p50" {
		t.Fatalf("doubled batch p50 not flagged exactly once: %v", regs)
	}
	regs, _ = CompareWithNotices(mk(100000, 50000), mk(100000, 150000), opt)
	if len(regs) != 1 || regs[0].Metric != "maintain_ns.p50" {
		t.Fatalf("tripled maintain p50 not flagged exactly once: %v", regs)
	}
}

func TestCompareAllocationNotices(t *testing.T) {
	mk := func(allocs, bytes float64) Report {
		return Report{Cases: []CaseResult{{
			Name: "star",
			Strategies: []StrategyResult{{
				Strategy:    "core",
				UpdateAlloc: AllocStats{AllocsPerOp: allocs, BytesPerOp: bytes},
			}},
		}}}
	}
	opt := DefaultCompareOptions()

	// Allocation growth beyond tolerance is a notice, never a regression.
	regs, notices := CompareWithNotices(mk(10, 1024), mk(20, 1024), opt)
	if len(regs) != 0 {
		t.Fatalf("allocation growth gated as a regression: %v", regs)
	}
	if len(notices) != 1 {
		t.Fatalf("doubled allocs/op: got %d notices, want 1: %v", len(notices), notices)
	}

	// Growth within tolerance stays quiet.
	if _, n := CompareWithNotices(mk(10, 1024), mk(12, 1100), opt); len(n) != 0 {
		t.Errorf("allocation growth within tolerance noticed: %v", n)
	}

	// Sub-floor values are noise regardless of relative growth.
	if _, n := CompareWithNotices(mk(1, 100), mk(3, 300), opt); len(n) != 0 {
		t.Errorf("sub-floor allocation jitter noticed: %v", n)
	}

	// A baseline without allocation metrics yields the one report-level
	// notice instead of per-metric ones.
	_, n := CompareWithNotices(mk(0, 0), mk(20, 4096), opt)
	if len(n) != 1 {
		t.Fatalf("alloc-less baseline: got %d notices, want 1: %v", len(n), n)
	}

	// Improvements stay quiet.
	if _, n := CompareWithNotices(mk(20, 4096), mk(10, 1024), opt); len(n) != 0 {
		t.Errorf("allocation improvement noticed: %v", n)
	}
}

// containsNotice reports whether any notice contains the substring.
func containsNotice(notices []string, sub string) bool {
	for _, n := range notices {
		if strings.Contains(n, sub) {
			return true
		}
	}
	return false
}

// TestCompareStrategyNoticesBothDirections: a strategy present in only
// one report — either side — earns a skip notice instead of a silent
// pass. The new-report side regressing out of the gate unnoticed was
// exactly the gap: dropping a strategy from the suite used to silence
// its gate without a trace.
func TestCompareStrategyNoticesBothDirections(t *testing.T) {
	mk := func(strategies ...string) Report {
		c := CaseResult{Name: "star"}
		for _, s := range strategies {
			c.Strategies = append(c.Strategies, StrategyResult{
				Strategy: s,
				UpdateNS: Percentiles{P50: 10000, P99: 20000},
				DelayNS:  Percentiles{P50: 10000, P99: 20000},
			})
		}
		return Report{Cases: []CaseResult{c}}
	}
	regs, notices := CompareWithNotices(mk("core", "ivm"), mk("core", "recompute"), DefaultCompareOptions())
	if len(regs) != 0 {
		t.Fatalf("unmatched strategies produced regressions: %v", regs)
	}
	if !containsNotice(notices, `star/recompute absent from baseline`) {
		t.Errorf("no notice for strategy only in new report: %v", notices)
	}
	if !containsNotice(notices, `star/ivm in baseline but not in new report`) {
		t.Errorf("no notice for strategy only in baseline: %v", notices)
	}
	// Matched strategies stay quiet.
	if _, n := CompareWithNotices(mk("core"), mk("core"), DefaultCompareOptions()); len(n) != 0 {
		t.Errorf("matched strategies noticed: %v", n)
	}
}

// TestCompareSweepNoticesBothDirections: sweeps and sweep points get the
// same two-direction treatment.
func TestCompareSweepNoticesBothDirections(t *testing.T) {
	mk := func(name string, ns ...int) SweepResult {
		sw := SweepResult{Name: name}
		for _, n := range ns {
			sw.Points = append(sw.Points, SweepPoint{N: n, Strategies: []StrategyResult{{
				Strategy: "core",
				UpdateNS: Percentiles{P50: 10000, P99: 20000},
			}}})
		}
		return sw
	}
	oldRep := Report{Sweeps: []SweepResult{mk("star-scaling", 100, 200), mk("old-only-sweep", 100)}}
	newRep := Report{Sweeps: []SweepResult{mk("star-scaling", 100, 400), mk("new-only-sweep", 100)}}
	opt := DefaultCompareOptions()
	opt.IncludeSweeps = true
	regs, notices := CompareWithNotices(oldRep, newRep, opt)
	if len(regs) != 0 {
		t.Fatalf("unmatched sweep entries produced regressions: %v", regs)
	}
	for _, want := range []string{
		`sweep "star-scaling" point n=400 absent from baseline`,
		`sweep "star-scaling" point n=200 in baseline but not in new report`,
		`sweep "new-only-sweep" absent from baseline`,
		`sweep "old-only-sweep" in baseline but not in new report`,
	} {
		if !containsNotice(notices, want) {
			t.Errorf("missing notice %q in %v", want, notices)
		}
	}
	// Without IncludeSweeps the sweep section stays entirely quiet.
	if _, n := CompareWithNotices(oldRep, newRep, DefaultCompareOptions()); containsNotice(n, "sweep") {
		t.Errorf("sweep notices without IncludeSweeps: %v", n)
	}
}

// TestCompareLargeTier: large-tier runs gate their phase percentiles and
// report skip notices in both directions at every level (tier, worker
// count, phase).
func TestCompareLargeTier(t *testing.T) {
	mk := func(updatesP50 int64, workers ...int) Report {
		lg := LargeResult{Name: "large-zipf-k64"}
		for _, w := range workers {
			// p99 held constant so only the p50 movement is under test.
			lg.Runs = append(lg.Runs, LargeWorkerRun{Workers: w, Phases: []LargePhase{
				{Name: "load"},
				{Name: "updates", NS: Percentiles{P50: updatesP50, P99: 1000000}},
				{Name: "read", NS: Percentiles{P50: 20000, P99: 40000}},
			}})
		}
		return Report{Large: []LargeResult{lg}}
	}
	opt := DefaultCompareOptions()

	// Identical tiers: quiet.
	regs, notices := CompareWithNotices(mk(100000, 1, 2), mk(100000, 1, 2), opt)
	if len(regs) != 0 || len(notices) != 0 {
		t.Fatalf("identical large tiers flagged: regs=%v notices=%v", regs, notices)
	}
	// A doubled updates-phase median is a regression per worker run.
	regs, _ = CompareWithNotices(mk(100000, 1, 2), mk(200000, 1, 2), opt)
	if len(regs) != 2 {
		t.Fatalf("doubled large updates p50: %v", regs)
	}
	if regs[0].Case != "large/large-zipf-k64/workers=1/updates" || regs[0].Metric != "ns.p50" {
		t.Fatalf("regression = %+v", regs[0])
	}
	// Worker counts present on only one side: notices both ways.
	_, notices = CompareWithNotices(mk(100000, 1, 2), mk(100000, 1, 4), opt)
	if !containsNotice(notices, "workers=4 absent from baseline") {
		t.Errorf("no notice for new-only worker count: %v", notices)
	}
	if !containsNotice(notices, "workers=2 in baseline but not in new report") {
		t.Errorf("no notice for baseline-only worker count: %v", notices)
	}
	// Whole tier on only one side.
	if _, n := CompareWithNotices(Report{}, mk(100000, 1), opt); !containsNotice(n, "baseline has no large tier") {
		t.Errorf("no notice for large tier missing from baseline: %v", n)
	}
	if _, n := CompareWithNotices(mk(100000, 1), Report{}, opt); !containsNotice(n, "new report has no large tier") {
		t.Errorf("no notice for large tier missing from new report: %v", n)
	}
	// Phases present on only one side.
	dropPhase := mk(100000, 1)
	dropPhase.Large[0].Runs[0].Phases = dropPhase.Large[0].Runs[0].Phases[:2] // no read phase
	if _, n := CompareWithNotices(mk(100000, 1), dropPhase, opt); !containsNotice(n, `phase "read" in baseline but not in new report`) {
		t.Errorf("no notice for baseline-only phase: %v", n)
	}
	if _, n := CompareWithNotices(dropPhase, mk(100000, 1), opt); !containsNotice(n, `phase "read" absent from baseline`) {
		t.Errorf("no notice for new-only phase: %v", n)
	}
}
