package bench

import (
	"strings"
	"testing"
)

// speedupReport builds a report with one under-scaling measurement in
// every phase family (case-parallel, multi-scaling, large tier).
func speedupReport(numCPU int, speedup float64) Report {
	return Report{
		NumCPU:     numCPU,
		Gomaxprocs: numCPU,
		Cases: []CaseResult{{
			Name: "star",
			Strategies: []StrategyResult{{
				Strategy: "core",
				Parallel: []ParallelResult{
					{Workers: 1, SpeedupVs1: 1},
					{Workers: 2, Sharded: true, SpeedupVs1: speedup},
				},
			}},
		}},
		Multi: []MultiResult{{
			Name: "workspace-4q",
			Scaling: []MultiScalingResult{
				{Workers: 1, SpeedupVs1: 1, MatchesWorkers1: true},
				{Workers: 2, SpeedupVs1: speedup, MatchesWorkers1: true},
			},
		}},
		Large: []LargeResult{{
			Name: "large-zipf-k64",
			Runs: []LargeWorkerRun{
				{Workers: 1, SpeedupVs1: 1, MatchesWorkers1: true},
				{Workers: 2, SpeedupVs1: speedup, MatchesWorkers1: true},
			},
		}},
	}
}

func TestSpeedupSummaryNoticesUnderThreshold(t *testing.T) {
	lines, notices := SpeedupSummary(speedupReport(4, 1.05), SpeedupOptions{MinAtTwo: 1.2})
	if len(notices) != 3 {
		t.Fatalf("got %d notices, want one per phase family: %v", len(notices), notices)
	}
	for _, want := range []string{"star/core", "multi/workspace-4q", "large/large-zipf-k64"} {
		found := false
		for _, n := range notices {
			if strings.Contains(n, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no notice for %s: %v", want, notices)
		}
	}
	// The large tier's runs also appear in the summary lines.
	found := false
	for _, l := range lines {
		if strings.Contains(l, "large/large-zipf-k64 workers=2") {
			found = true
		}
	}
	if !found {
		t.Errorf("large tier missing from summary lines: %v", lines)
	}
}

func TestSpeedupSummaryPassesAboveThreshold(t *testing.T) {
	_, notices := SpeedupSummary(speedupReport(4, 1.6), SpeedupOptions{MinAtTwo: 1.2})
	if len(notices) != 0 {
		t.Fatalf("scaling above threshold noticed: %v", notices)
	}
}

// TestSpeedupSummarySingleCPUSuppressed pins the property the CI gate
// relies on: a 1-core machine physically cannot scale, so the summary
// suppresses every notice and `bench -speedup -gate` passes there
// instead of failing spuriously.
func TestSpeedupSummarySingleCPUSuppressed(t *testing.T) {
	lines, notices := SpeedupSummary(speedupReport(1, 0.9), SpeedupOptions{MinAtTwo: 1.2})
	if len(notices) != 0 {
		t.Fatalf("single-CPU notices not suppressed: %v", notices)
	}
	found := false
	for _, l := range lines {
		if strings.Contains(l, "single-CPU") {
			found = true
		}
	}
	if !found {
		t.Errorf("no single-CPU explanation line: %v", lines)
	}
}

// TestSpeedupSummaryFlagsDivergence: a diverging run is named in the
// summary lines even though divergence is gated elsewhere (bench -large
// fails the run; the compare gate never sees it).
func TestSpeedupSummaryFlagsDivergence(t *testing.T) {
	rep := speedupReport(4, 1.6)
	rep.Large[0].Runs[1].MatchesWorkers1 = false
	lines, _ := SpeedupSummary(rep, SpeedupOptions{})
	found := false
	for _, l := range lines {
		if strings.Contains(l, "DIVERGES FROM workers=1") && strings.Contains(l, "large/") {
			found = true
		}
	}
	if !found {
		t.Errorf("diverging large run not called out: %v", lines)
	}
}
