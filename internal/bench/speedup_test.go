package bench

import (
	"strings"
	"testing"
)

// speedupReport builds a report with one under-scaling measurement in
// every phase family (case-parallel, multi-scaling, large tier).
func speedupReport(numCPU int, speedup float64) Report {
	return Report{
		NumCPU:     numCPU,
		Gomaxprocs: numCPU,
		Cases: []CaseResult{{
			Name: "star",
			Strategies: []StrategyResult{{
				Strategy: "core",
				Parallel: []ParallelResult{
					{Workers: 1, SpeedupVs1: 1},
					{Workers: 2, Sharded: true, SpeedupVs1: speedup},
				},
			}},
		}},
		Multi: []MultiResult{{
			Name: "workspace-4q",
			Scaling: []MultiScalingResult{
				{Workers: 1, SpeedupVs1: 1, MatchesWorkers1: true},
				{Workers: 2, SpeedupVs1: speedup, MatchesWorkers1: true},
			},
		}},
		Large: []LargeResult{{
			Name: "large-zipf-k64",
			Runs: []LargeWorkerRun{
				{Workers: 1, SpeedupVs1: 1, MatchesWorkers1: true},
				{Workers: 2, SpeedupVs1: speedup, MatchesWorkers1: true},
			},
		}},
	}
}

func TestSpeedupSummaryNoticesUnderThreshold(t *testing.T) {
	lines, notices := SpeedupSummary(speedupReport(4, 1.05), SpeedupOptions{MinAtTwo: 1.2})
	if len(notices) != 3 {
		t.Fatalf("got %d notices, want one per phase family: %v", len(notices), notices)
	}
	for _, want := range []string{"star/core", "multi/workspace-4q", "large/large-zipf-k64"} {
		found := false
		for _, n := range notices {
			if strings.Contains(n, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no notice for %s: %v", want, notices)
		}
	}
	// The large tier's runs also appear in the summary lines.
	found := false
	for _, l := range lines {
		if strings.Contains(l, "large/large-zipf-k64 workers=2") {
			found = true
		}
	}
	if !found {
		t.Errorf("large tier missing from summary lines: %v", lines)
	}
}

func TestSpeedupSummaryPassesAboveThreshold(t *testing.T) {
	_, notices := SpeedupSummary(speedupReport(4, 1.6), SpeedupOptions{MinAtTwo: 1.2})
	if len(notices) != 0 {
		t.Fatalf("scaling above threshold noticed: %v", notices)
	}
}

// TestSpeedupSummarySingleCPUSuppressed pins the property the CI gate
// relies on: a 1-core machine physically cannot scale, so the summary
// suppresses every notice and `bench -speedup -gate` passes there
// instead of failing spuriously.
func TestSpeedupSummarySingleCPUSuppressed(t *testing.T) {
	lines, notices := SpeedupSummary(speedupReport(1, 0.9), SpeedupOptions{MinAtTwo: 1.2})
	if len(notices) != 0 {
		t.Fatalf("single-CPU notices not suppressed: %v", notices)
	}
	found := false
	for _, l := range lines {
		if strings.Contains(l, "single-CPU") {
			found = true
		}
	}
	if !found {
		t.Errorf("no single-CPU explanation line: %v", lines)
	}
}

// TestSpeedupSummaryCappedGomaxprocsNotices pins the gate-dodging fix:
// a multi-core machine with GOMAXPROCS capped below NumCPU is a
// misconfigured runner, not a 1-core box — the summary must keep the
// per-measurement notices armed AND add a misconfiguration notice, even
// when every measurement clears the threshold.
func TestSpeedupSummaryCappedGomaxprocsNotices(t *testing.T) {
	rep := speedupReport(8, 1.6)
	rep.Gomaxprocs = 1
	lines, notices := SpeedupSummary(rep, SpeedupOptions{MinAtTwo: 1.2})
	found := false
	for _, n := range notices {
		if strings.Contains(n, "GOMAXPROCS 1 on a 8-CPU machine") {
			found = true
		}
	}
	if !found {
		t.Errorf("no misconfiguration notice for capped GOMAXPROCS: %v", notices)
	}
	found = false
	for _, l := range lines {
		if strings.Contains(l, "capped below 8 CPUs") {
			found = true
		}
	}
	if !found {
		t.Errorf("no cap annotation line: %v", lines)
	}
}

// TestSpeedupSummaryCappedKeepsThresholdNotices: under-scaling notices
// must not be suppressed on a capped runner (the masquerade the fix
// closes off).
func TestSpeedupSummaryCappedKeepsThresholdNotices(t *testing.T) {
	rep := speedupReport(8, 1.05)
	rep.Gomaxprocs = 2
	_, notices := SpeedupSummary(rep, SpeedupOptions{MinAtTwo: 1.2})
	// 3 per-phase-family notices + 1 misconfiguration notice.
	if len(notices) != 4 {
		t.Fatalf("got %d notices, want 4 (3 under-threshold + 1 misconfiguration): %v", len(notices), notices)
	}
}

// TestSpeedupSummaryLegacyReportNoCapNotice: reports predating the
// Gomaxprocs field (zero value) must not earn a spurious notice.
func TestSpeedupSummaryLegacyReportNoCapNotice(t *testing.T) {
	rep := speedupReport(8, 1.6)
	rep.Gomaxprocs = 0
	_, notices := SpeedupSummary(rep, SpeedupOptions{MinAtTwo: 1.2})
	if len(notices) != 0 {
		t.Fatalf("legacy report earned notices: %v", notices)
	}
}

// TestSpeedupSummaryFlagsDivergence: a diverging run is named in the
// summary lines even though divergence is gated elsewhere (bench -large
// fails the run; the compare gate never sees it).
func TestSpeedupSummaryFlagsDivergence(t *testing.T) {
	rep := speedupReport(4, 1.6)
	rep.Large[0].Runs[1].MatchesWorkers1 = false
	lines, _ := SpeedupSummary(rep, SpeedupOptions{})
	found := false
	for _, l := range lines {
		if strings.Contains(l, "DIVERGES FROM workers=1") && strings.Contains(l, "large/") {
			found = true
		}
	}
	if !found {
		t.Errorf("diverging large run not called out: %v", lines)
	}
}
