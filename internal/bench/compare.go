package bench

import (
	"encoding/json"
	"fmt"
	"os"
)

// This file implements the CI perf-regression gate: two reports produced
// by the same suite are diffed metric by metric, and any latency
// percentile that grew beyond the tolerance is reported as a regression.
// Cases, strategies, sweep points, and large-tier runs are matched by
// name; an entry present in only ONE report — whichever side — is
// skipped with a notice, never silently: reports from different suite
// versions stay comparable on their common part, and the operator is
// told exactly what escaped the gate in each direction.

// CompareOptions tunes the regression check.
type CompareOptions struct {
	// Tolerance is the allowed relative growth of a median (p50): new >
	// old*(1+Tolerance) flags a regression. 0.30 allows 30% growth.
	Tolerance float64
	// P99Tolerance is the allowed relative growth of a p99. Tail
	// percentiles jitter far more than medians between runs (a single GC
	// pause lands in the p99 of a 2000-sample stream); 0 means
	// 3×Tolerance.
	P99Tolerance float64
	// FloorNS suppresses noise: a metric only counts as a regression when
	// the new value is at least FloorNS. Single-digit-microsecond
	// percentiles jitter beyond any real tolerance between runs.
	FloorNS int64
	// IncludeSweeps also gates the scaling-sweep points. Sweep streams are
	// short, so their percentiles are the noisiest in the report; by
	// default sweeps are informational only.
	IncludeSweeps bool
}

// DefaultCompareOptions is the gate configuration used by the CLI when no
// flags override it: 30% median tolerance (3× that for p99 tails) with a
// 5µs noise floor, main cases only.
func DefaultCompareOptions() CompareOptions {
	return CompareOptions{Tolerance: 0.30, FloorNS: 5000}
}

// Allocation metrics are advisory, never gating: a grown allocs/op is a
// cost worth an operator's eyes (it is why the slab and interning layers
// exist), but it is not a latency regression by itself — the latency
// gates already catch it when it matters. Regressed allocation metrics
// therefore surface as notices. The floors play the FloorNS role:
// phases allocating almost nothing jitter relatively without meaning
// anything absolutely.
const (
	allocFloorPerOp = 4.0   // allocs/op below this are noise
	bytesFloorPerOp = 512.0 // bytes/op below this are noise
)

// allocNotices compares one phase's allocation stats against the
// baseline and describes any growth beyond the tolerance. A zero
// baseline (report from before allocation metrics existed) yields
// nothing — the report-level notice in CompareWithNotices covers that.
func allocNotices(who, metric string, oldA, newA AllocStats, opt CompareOptions) []string {
	if oldA.zero() {
		return nil
	}
	var out []string
	if newA.AllocsPerOp >= allocFloorPerOp && oldA.AllocsPerOp > 0 &&
		newA.AllocsPerOp > oldA.AllocsPerOp*(1+opt.Tolerance) {
		out = append(out, fmt.Sprintf("%s %s.allocs_per_op: %.1f -> %.1f (%.2fx) — allocation regression (not gated)",
			who, metric, oldA.AllocsPerOp, newA.AllocsPerOp, newA.AllocsPerOp/oldA.AllocsPerOp))
	}
	if newA.BytesPerOp >= bytesFloorPerOp && oldA.BytesPerOp > 0 &&
		newA.BytesPerOp > oldA.BytesPerOp*(1+opt.Tolerance) {
		out = append(out, fmt.Sprintf("%s %s.bytes_per_op: %.0f -> %.0f (%.2fx) — allocation regression (not gated)",
			who, metric, oldA.BytesPerOp, newA.BytesPerOp, newA.BytesPerOp/oldA.BytesPerOp))
	}
	return out
}

// hasAllocStats reports whether any phase of the report carries
// allocation metrics (reports from before PR 6 have none).
func hasAllocStats(r Report) bool {
	for _, c := range r.Cases {
		for _, s := range c.Strategies {
			if !s.UpdateAlloc.zero() || !s.PreprocessAlloc.zero() || !s.EnumerateAlloc.zero() {
				return true
			}
		}
	}
	for _, m := range r.Multi {
		if !m.Alloc.zero() {
			return true
		}
	}
	return false
}

func (o CompareOptions) p99Tolerance() float64 {
	if o.P99Tolerance > 0 {
		return o.P99Tolerance
	}
	return 3 * o.Tolerance
}

// Regression is one metric that grew beyond the tolerance.
type Regression struct {
	// Case identifies the measurement: "case/strategy" or
	// "sweep/n=<size>/strategy".
	Case string
	// Metric names the latency percentile, e.g. "update_ns.p99".
	Metric string
	// Old and New are the baseline and current values in nanoseconds.
	Old, New int64
	// Ratio is New/Old.
	Ratio float64
}

func (r Regression) String() string {
	return fmt.Sprintf("%s %s: %dns -> %dns (%.2fx)", r.Case, r.Metric, r.Old, r.New, r.Ratio)
}

// LoadReport reads a JSON report written by Report.WriteJSON.
func LoadReport(path string) (Report, error) {
	var rep Report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// Compare diffs the per-update latency and enumeration-delay percentiles
// of two reports, returning every regression beyond the tolerance. The
// p50 and p99 of both distributions are compared (medians at Tolerance,
// tails at the looser P99Tolerance); max is deliberately excluded as a
// single-sample outlier magnet.
func Compare(oldRep, newRep Report, opt CompareOptions) []Regression {
	regs, _ := CompareWithNotices(oldRep, newRep, opt)
	return regs
}

// CompareWithNotices is Compare plus the skip notices: every phase,
// case, or metric family present in the new report but absent from the
// baseline is reported as a notice instead of silently ignored (or,
// worse, erroring) — so a baseline recorded before a new bench phase
// existed still gates everything it can, and the CLI tells the operator
// exactly what it could not gate.
func CompareWithNotices(oldRep, newRep Report, opt CompareOptions) ([]Regression, []string) {
	var regs []Regression
	var notices []string
	if hasAllocStats(newRep) && !hasAllocStats(oldRep) {
		notices = append(notices, "baseline has no allocation metrics: allocation changes not compared")
	}
	oldCases := make(map[string]CaseResult, len(oldRep.Cases))
	for _, c := range oldRep.Cases {
		oldCases[c.Name] = c
	}
	newCases := make(map[string]bool, len(newRep.Cases))
	for _, nc := range newRep.Cases {
		newCases[nc.Name] = true
		oc, ok := oldCases[nc.Name]
		if !ok {
			notices = append(notices, fmt.Sprintf("case %q absent from baseline: not gated", nc.Name))
			continue
		}
		r, n := compareStrategies(nc.Name, oc.Strategies, nc.Strategies, opt)
		regs = append(regs, r...)
		notices = append(notices, n...)
	}
	// The reverse gap matters just as much: a baseline case the new
	// report no longer measures silently escapes the gate otherwise.
	for _, oc := range oldRep.Cases {
		if !newCases[oc.Name] {
			notices = append(notices, fmt.Sprintf("case %q in baseline but not in new report: not gated", oc.Name))
		}
	}

	// Multi-query phase: gate the shared pipeline's per-batch latency
	// and every query's maintenance percentiles against the baseline.
	switch {
	case len(newRep.Multi) > 0 && len(oldRep.Multi) == 0:
		notices = append(notices, "baseline has no multi-query phase: not gated")
	case len(newRep.Multi) == 0 && len(oldRep.Multi) > 0:
		notices = append(notices, "new report has no multi-query phase (bench -multi=false?): not gated")
	default:
		oldMulti := make(map[string]MultiResult, len(oldRep.Multi))
		for _, m := range oldRep.Multi {
			oldMulti[m.Name] = m
		}
		newMulti := make(map[string]bool, len(newRep.Multi))
		for _, nm := range newRep.Multi {
			newMulti[nm.Name] = true
			om, ok := oldMulti[nm.Name]
			if !ok {
				notices = append(notices, fmt.Sprintf("multi case %q absent from baseline: not gated", nm.Name))
				continue
			}
			who := "multi/" + nm.Name
			regs = append(regs, compareMetric(who, "batch_ns.p50", om.BatchNS.P50, nm.BatchNS.P50, opt.Tolerance, opt)...)
			regs = append(regs, compareMetric(who, "batch_ns.p99", om.BatchNS.P99, nm.BatchNS.P99, opt.p99Tolerance(), opt)...)
			notices = append(notices, allocNotices(who, "alloc", om.Alloc, nm.Alloc, opt)...)
			oldQ := make(map[string]MultiQueryResult, len(om.Queries))
			for _, q := range om.Queries {
				oldQ[q.Name] = q
			}
			newQ := make(map[string]bool, len(nm.Queries))
			for _, nq := range nm.Queries {
				newQ[nq.Name] = true
				oq, ok := oldQ[nq.Name]
				if !ok {
					notices = append(notices, fmt.Sprintf("multi case %q query %q absent from baseline: not gated", nm.Name, nq.Name))
					continue
				}
				qwho := who + "/" + nq.Name
				regs = append(regs, compareMetric(qwho, "maintain_ns.p50", oq.MaintainNS.P50, nq.MaintainNS.P50, opt.Tolerance, opt)...)
				regs = append(regs, compareMetric(qwho, "maintain_ns.p99", oq.MaintainNS.P99, nq.MaintainNS.P99, opt.p99Tolerance(), opt)...)
			}
			for _, oq := range om.Queries {
				if !newQ[oq.Name] {
					notices = append(notices, fmt.Sprintf("multi case %q query %q in baseline but not in new report: not gated", nm.Name, oq.Name))
				}
			}
		}
		for _, om := range oldRep.Multi {
			if !newMulti[om.Name] {
				notices = append(notices, fmt.Sprintf("multi case %q in baseline but not in new report: not gated", om.Name))
			}
		}
	}

	// Large tier: gate each worker run's phase latencies against the
	// baseline run with the same worker count, phases matched by name —
	// with skip notices in both directions at every level, like the rest
	// of the report.
	switch {
	case len(newRep.Large) > 0 && len(oldRep.Large) == 0:
		notices = append(notices, "baseline has no large tier: not gated")
	case len(newRep.Large) == 0 && len(oldRep.Large) > 0:
		notices = append(notices, "new report has no large tier (bench -large?): not gated")
	case len(newRep.Large) > 0:
		oldLarge := make(map[string]LargeResult, len(oldRep.Large))
		for _, lg := range oldRep.Large {
			oldLarge[lg.Name] = lg
		}
		newLarge := make(map[string]bool, len(newRep.Large))
		for _, nl := range newRep.Large {
			newLarge[nl.Name] = true
			ol, ok := oldLarge[nl.Name]
			if !ok {
				notices = append(notices, fmt.Sprintf("large tier %q absent from baseline: not gated", nl.Name))
				continue
			}
			r, n := compareLargeRuns(nl.Name, ol.Runs, nl.Runs, opt)
			regs = append(regs, r...)
			notices = append(notices, n...)
		}
		for _, ol := range oldRep.Large {
			if !newLarge[ol.Name] {
				notices = append(notices, fmt.Sprintf("large tier %q in baseline but not in new report: not gated", ol.Name))
			}
		}
	}

	// Server phase: gate the front door's commit round-trip and
	// update-to-notification latencies, with the same skip notices in
	// both directions as every other phase.
	switch {
	case len(newRep.Server) > 0 && len(oldRep.Server) == 0:
		notices = append(notices, "baseline has no server phase: not gated")
	case len(newRep.Server) == 0 && len(oldRep.Server) > 0:
		notices = append(notices, "new report has no server phase (bench -server?): not gated")
	case len(newRep.Server) > 0:
		oldServer := make(map[string]ServerResult, len(oldRep.Server))
		for _, sr := range oldRep.Server {
			oldServer[sr.Name] = sr
		}
		newServer := make(map[string]bool, len(newRep.Server))
		for _, ns := range newRep.Server {
			newServer[ns.Name] = true
			os, ok := oldServer[ns.Name]
			if !ok {
				notices = append(notices, fmt.Sprintf("server case %q absent from baseline: not gated", ns.Name))
				continue
			}
			who := "server/" + ns.Name
			regs = append(regs, compareMetric(who, "commit_ns.p50", os.CommitNS.P50, ns.CommitNS.P50, opt.Tolerance, opt)...)
			regs = append(regs, compareMetric(who, "commit_ns.p99", os.CommitNS.P99, ns.CommitNS.P99, opt.p99Tolerance(), opt)...)
			regs = append(regs, compareMetric(who, "notify_ns.p50", os.NotifyNS.P50, ns.NotifyNS.P50, opt.Tolerance, opt)...)
			regs = append(regs, compareMetric(who, "notify_ns.p99", os.NotifyNS.P99, ns.NotifyNS.P99, opt.p99Tolerance(), opt)...)
		}
		for _, os := range oldRep.Server {
			if !newServer[os.Name] {
				notices = append(notices, fmt.Sprintf("server case %q in baseline but not in new report: not gated", os.Name))
			}
		}
	}

	// Read phase: gate the snapshot-pin latencies — cold (copy-on-pin
	// baseline), hot (the cached path the phase exists to protect) and
	// the busy-window commit cost of keeping the cache advancing.
	switch {
	case len(newRep.Read) > 0 && len(oldRep.Read) == 0:
		notices = append(notices, "baseline has no read phase: not gated")
	case len(newRep.Read) == 0 && len(oldRep.Read) > 0:
		notices = append(notices, "new report has no read phase (bench -read?): not gated")
	case len(newRep.Read) > 0:
		oldRead := make(map[string]ReadResult, len(oldRep.Read))
		for _, rr := range oldRep.Read {
			oldRead[rr.Name] = rr
		}
		newRead := make(map[string]bool, len(newRep.Read))
		for _, nr := range newRep.Read {
			newRead[nr.Name] = true
			or, ok := oldRead[nr.Name]
			if !ok {
				notices = append(notices, fmt.Sprintf("read case %q absent from baseline: not gated", nr.Name))
				continue
			}
			who := "read/" + nr.Name
			regs = append(regs, compareMetric(who, "cold_pin_ns.p50", or.ColdPinNS.P50, nr.ColdPinNS.P50, opt.Tolerance, opt)...)
			regs = append(regs, compareMetric(who, "cold_pin_ns.p99", or.ColdPinNS.P99, nr.ColdPinNS.P99, opt.p99Tolerance(), opt)...)
			regs = append(regs, compareMetric(who, "hot_pin_ns.p50", or.HotPinNS.P50, nr.HotPinNS.P50, opt.Tolerance, opt)...)
			regs = append(regs, compareMetric(who, "hot_pin_ns.p99", or.HotPinNS.P99, nr.HotPinNS.P99, opt.p99Tolerance(), opt)...)
			regs = append(regs, compareMetric(who, "commit_ns.p50", or.CommitNS.P50, nr.CommitNS.P50, opt.Tolerance, opt)...)
			regs = append(regs, compareMetric(who, "commit_ns.p99", or.CommitNS.P99, nr.CommitNS.P99, opt.p99Tolerance(), opt)...)
			notices = append(notices, allocNotices(who, "hot_pin_alloc", or.HotPinAlloc, nr.HotPinAlloc, opt)...)
		}
		for _, or := range oldRep.Read {
			if !newRead[or.Name] {
				notices = append(notices, fmt.Sprintf("read case %q in baseline but not in new report: not gated", or.Name))
			}
		}
	}

	if !opt.IncludeSweeps {
		return regs, notices
	}
	oldSweeps := make(map[string]SweepResult, len(oldRep.Sweeps))
	for _, s := range oldRep.Sweeps {
		oldSweeps[s.Name] = s
	}
	newSweeps := make(map[string]bool, len(newRep.Sweeps))
	for _, ns := range newRep.Sweeps {
		newSweeps[ns.Name] = true
		oldSweep, ok := oldSweeps[ns.Name]
		if !ok {
			notices = append(notices, fmt.Sprintf("sweep %q absent from baseline: not gated", ns.Name))
			continue
		}
		oldPoints := make(map[int]SweepPoint, len(oldSweep.Points))
		for _, p := range oldSweep.Points {
			oldPoints[p.N] = p
		}
		newPoints := make(map[int]bool, len(ns.Points))
		for _, np := range ns.Points {
			newPoints[np.N] = true
			op, ok := oldPoints[np.N]
			if !ok {
				notices = append(notices, fmt.Sprintf("sweep %q point n=%d absent from baseline: not gated", ns.Name, np.N))
				continue
			}
			label := fmt.Sprintf("%s/n=%d", ns.Name, np.N)
			r, n := compareStrategies(label, op.Strategies, np.Strategies, opt)
			regs = append(regs, r...)
			notices = append(notices, n...)
		}
		for _, op := range oldSweep.Points {
			if !newPoints[op.N] {
				notices = append(notices, fmt.Sprintf("sweep %q point n=%d in baseline but not in new report: not gated", ns.Name, op.N))
			}
		}
	}
	for _, os := range oldRep.Sweeps {
		if !newSweeps[os.Name] {
			notices = append(notices, fmt.Sprintf("sweep %q in baseline but not in new report: not gated", os.Name))
		}
	}
	return regs, notices
}

// compareLargeRuns diffs the large tier's worker runs: runs matched by
// worker count, phases by name, with both-direction skip notices.
func compareLargeRuns(name string, oldRuns, newRuns []LargeWorkerRun, opt CompareOptions) ([]Regression, []string) {
	var regs []Regression
	var notices []string
	oldByWorkers := make(map[int]LargeWorkerRun, len(oldRuns))
	for _, run := range oldRuns {
		oldByWorkers[run.Workers] = run
	}
	newWorkers := make(map[int]bool, len(newRuns))
	for _, nr := range newRuns {
		newWorkers[nr.Workers] = true
		or, ok := oldByWorkers[nr.Workers]
		if !ok {
			notices = append(notices, fmt.Sprintf("large tier %q workers=%d absent from baseline: not gated", name, nr.Workers))
			continue
		}
		oldPhases := make(map[string]LargePhase, len(or.Phases))
		for _, p := range or.Phases {
			oldPhases[p.Name] = p
		}
		newPhases := make(map[string]bool, len(nr.Phases))
		for _, np := range nr.Phases {
			newPhases[np.Name] = true
			op, ok := oldPhases[np.Name]
			if !ok {
				notices = append(notices, fmt.Sprintf("large tier %q workers=%d phase %q absent from baseline: not gated", name, nr.Workers, np.Name))
				continue
			}
			who := fmt.Sprintf("large/%s/workers=%d/%s", name, nr.Workers, np.Name)
			regs = append(regs, compareMetric(who, "ns.p50", op.NS.P50, np.NS.P50, opt.Tolerance, opt)...)
			regs = append(regs, compareMetric(who, "ns.p99", op.NS.P99, np.NS.P99, opt.p99Tolerance(), opt)...)
			notices = append(notices, allocNotices(who, "alloc", op.Alloc, np.Alloc, opt)...)
		}
		for _, op := range or.Phases {
			if !newPhases[op.Name] {
				notices = append(notices, fmt.Sprintf("large tier %q workers=%d phase %q in baseline but not in new report: not gated", name, nr.Workers, op.Name))
			}
		}
	}
	for _, or := range oldRuns {
		if !newWorkers[or.Workers] {
			notices = append(notices, fmt.Sprintf("large tier %q workers=%d in baseline but not in new report: not gated", name, or.Workers))
		}
	}
	return regs, notices
}

func compareStrategies(label string, oldStrats, newStrats []StrategyResult, opt CompareOptions) ([]Regression, []string) {
	old := make(map[string]StrategyResult, len(oldStrats))
	for _, s := range oldStrats {
		old[s.Strategy] = s
	}
	var regs []Regression
	var notices []string
	newSeen := make(map[string]bool, len(newStrats))
	for _, ns := range newStrats {
		newSeen[ns.Strategy] = true
		oldStrat, ok := old[ns.Strategy]
		if !ok {
			notices = append(notices, fmt.Sprintf("%s/%s absent from baseline: not gated", label, ns.Strategy))
			continue
		}
		who := label + "/" + ns.Strategy
		regs = append(regs, compareMetric(who, "update_ns.p50", oldStrat.UpdateNS.P50, ns.UpdateNS.P50, opt.Tolerance, opt)...)
		regs = append(regs, compareMetric(who, "update_ns.p99", oldStrat.UpdateNS.P99, ns.UpdateNS.P99, opt.p99Tolerance(), opt)...)
		regs = append(regs, compareMetric(who, "delay_ns.p50", oldStrat.DelayNS.P50, ns.DelayNS.P50, opt.Tolerance, opt)...)
		regs = append(regs, compareMetric(who, "delay_ns.p99", oldStrat.DelayNS.P99, ns.DelayNS.P99, opt.p99Tolerance(), opt)...)
		notices = append(notices, allocNotices(who, "preprocess_alloc", oldStrat.PreprocessAlloc, ns.PreprocessAlloc, opt)...)
		notices = append(notices, allocNotices(who, "update_alloc", oldStrat.UpdateAlloc, ns.UpdateAlloc, opt)...)
		notices = append(notices, allocNotices(who, "enumerate_alloc", oldStrat.EnumerateAlloc, ns.EnumerateAlloc, opt)...)
		oldBatches := make(map[int]BatchResult, len(oldStrat.Batches))
		for _, b := range oldStrat.Batches {
			oldBatches[b.BatchSize] = b
		}
		for _, nb := range ns.Batches {
			if ob, ok := oldBatches[nb.BatchSize]; ok {
				notices = append(notices, allocNotices(fmt.Sprintf("%s/batch=%d", who, nb.BatchSize), "alloc", ob.Alloc, nb.Alloc, opt)...)
			}
		}
		oldParallel := make(map[int]ParallelResult, len(oldStrat.Parallel))
		for _, p := range oldStrat.Parallel {
			oldParallel[p.Workers] = p
		}
		for _, np := range ns.Parallel {
			if op, ok := oldParallel[np.Workers]; ok {
				notices = append(notices, allocNotices(fmt.Sprintf("%s/workers=%d", who, np.Workers), "alloc", op.Alloc, np.Alloc, opt)...)
			}
		}
	}
	for _, os := range oldStrats {
		if !newSeen[os.Strategy] {
			notices = append(notices, fmt.Sprintf("%s/%s in baseline but not in new report: not gated", label, os.Strategy))
		}
	}
	return regs, notices
}

func compareMetric(who, metric string, oldV, newV int64, tol float64, opt CompareOptions) []Regression {
	if oldV <= 0 || newV < opt.FloorNS {
		return nil
	}
	if float64(newV) <= float64(oldV)*(1+tol) {
		return nil
	}
	return []Regression{{
		Case:   who,
		Metric: metric,
		Old:    oldV,
		New:    newV,
		Ratio:  float64(newV) / float64(oldV),
	}}
}
