package qtree

import (
	"sort"
	"strings"

	"dyncq/internal/cq"
)

// Classification records where a query falls in the taxonomy of query
// classes discussed in Sections 1.2 and 3 of the paper, together with the
// dichotomy verdicts of Theorems 1.1–1.3.
type Classification struct {
	Connected    bool
	SelfJoinFree bool
	Boolean      bool

	// Hierarchical is condition (i) of Definition 3.1 over all variables —
	// Dalvi–Suciu for Boolean queries, Koutris–Suciu for join queries.
	Hierarchical bool
	// HierarchicalFO is Fink–Olteanu's variant: condition (i) over
	// quantified variables only.
	HierarchicalFO bool
	// QHierarchical is Definition 3.1 (both conditions).
	QHierarchical bool

	// Acyclic is α-acyclicity of the body hypergraph (GYO reducible).
	Acyclic bool
	// FreeConnex: acyclic and still acyclic after adding a hyperedge
	// covering exactly the free variables (Bagan–Durand–Grandjean's class
	// with constant-delay static enumeration).
	FreeConnex bool

	// CoreQHierarchical reports whether the homomorphic core of the query
	// itself is q-hierarchical (Theorem 3.5's counting dichotomy).
	CoreQHierarchical bool
	// BooleanCoreQHierarchical reports whether the core of the Boolean
	// version ∃x̄ ϕ is q-hierarchical (Theorem 3.4's answering dichotomy).
	BooleanCoreQHierarchical bool
}

// Dichotomy verdicts implied by the paper's main theorems, phrased from
// the data-complexity standpoint (see Theorems 1.1–1.3).

// TractableEnumeration reports whether Theorem 1.1 promises constant-delay
// enumeration with constant update time. For self-join-free queries this
// is exact (dichotomy); for queries with self-joins the upper bound of
// Theorem 3.2 still applies when the query is q-hierarchical, but the
// lower bound side is open (Section 7).
func (c Classification) TractableEnumeration() bool { return c.QHierarchical }

// TractableCounting reports whether Theorem 1.3 promises constant-time
// counting with constant update time (iff the query's core is
// q-hierarchical).
func (c Classification) TractableCounting() bool { return c.CoreQHierarchical }

// TractableAnswering reports whether Theorem 1.2 promises constant-time
// Boolean answering with constant update time (iff the core of the
// Boolean version is q-hierarchical).
func (c Classification) TractableAnswering() bool { return c.BooleanCoreQHierarchical }

// Classify computes the full classification of q.
func Classify(q *cq.Query) Classification {
	core := cq.Core(q)
	boolCore := cq.Core(cq.BooleanVersion(q))
	return Classification{
		Connected:                q.IsConnected(),
		SelfJoinFree:             q.IsSelfJoinFree(),
		Boolean:                  q.IsBoolean(),
		Hierarchical:             q.IsHierarchical(),
		HierarchicalFO:           q.IsHierarchicalFinkOlteanu(),
		QHierarchical:            IsQHierarchical(q),
		Acyclic:                  IsAcyclic(q),
		FreeConnex:               IsFreeConnex(q),
		CoreQHierarchical:        IsQHierarchical(core),
		BooleanCoreQHierarchical: IsQHierarchical(boolCore),
	}
}

// String renders the classification as a compact multi-line report.
func (c Classification) String() string {
	var b strings.Builder
	flag := func(name string, v bool) {
		b.WriteString("  ")
		b.WriteString(name)
		b.WriteString(": ")
		if v {
			b.WriteString("yes")
		} else {
			b.WriteString("no")
		}
		b.WriteByte('\n')
	}
	flag("connected", c.Connected)
	flag("self-join free", c.SelfJoinFree)
	flag("Boolean", c.Boolean)
	flag("hierarchical (Koutris–Suciu)", c.Hierarchical)
	flag("hierarchical (Fink–Olteanu)", c.HierarchicalFO)
	flag("acyclic", c.Acyclic)
	flag("free-connex", c.FreeConnex)
	flag("q-hierarchical", c.QHierarchical)
	flag("core q-hierarchical", c.CoreQHierarchical)
	flag("Boolean core q-hierarchical", c.BooleanCoreQHierarchical)
	return b.String()
}

// IsAcyclic reports whether the query's body hypergraph is α-acyclic,
// decided by the GYO reduction: repeatedly delete vertices occurring in at
// most one hyperedge and hyperedges contained in other hyperedges; the
// hypergraph is acyclic iff everything reduces away (at most one, possibly
// empty, edge remains).
func IsAcyclic(q *cq.Query) bool {
	var edges []map[string]bool
	for _, a := range q.Atoms {
		e := make(map[string]bool)
		for _, v := range a.Args {
			e[v] = true
		}
		edges = append(edges, e)
	}
	return gyoReducible(edges)
}

// IsFreeConnex reports whether the query is free-connex acyclic: acyclic,
// and acyclic after adding a hyperedge consisting of exactly the free
// variables (the standard characterisation used in the constant-delay
// enumeration literature the paper builds on). Boolean and quantifier-free
// queries are free-connex iff they are acyclic.
func IsFreeConnex(q *cq.Query) bool {
	if !IsAcyclic(q) {
		return false
	}
	if len(q.Head) == 0 {
		return true
	}
	var edges []map[string]bool
	for _, a := range q.Atoms {
		e := make(map[string]bool)
		for _, v := range a.Args {
			e[v] = true
		}
		edges = append(edges, e)
	}
	headEdge := make(map[string]bool)
	for _, h := range q.Head {
		headEdge[h] = true
	}
	edges = append(edges, headEdge)
	return gyoReducible(edges)
}

// gyoReducible runs the GYO ear-removal loop to fixpoint.
func gyoReducible(edges []map[string]bool) bool {
	// Work on copies.
	es := make([]map[string]bool, len(edges))
	for i, e := range edges {
		c := make(map[string]bool, len(e))
		for v := range e {
			c[v] = true
		}
		es[i] = c
	}
	alive := make([]bool, len(es))
	aliveCount := len(es)
	for i := range alive {
		alive[i] = true
	}
	for {
		changed := false
		// Rule 1: delete vertices occurring in at most one live edge.
		occ := make(map[string]int)
		for i, e := range es {
			if !alive[i] {
				continue
			}
			for v := range e {
				occ[v]++
			}
		}
		for i, e := range es {
			if !alive[i] {
				continue
			}
			for v := range e {
				if occ[v] <= 1 {
					delete(e, v)
					changed = true
				}
			}
		}
		// Rule 2: delete edges contained in another live edge (empty edges
		// are contained in any edge; a duplicate pair deletes one side).
		for i := range es {
			if !alive[i] {
				continue
			}
			for j := range es {
				if i == j || !alive[j] {
					continue
				}
				if containedIn(es[i], es[j]) {
					alive[i] = false
					aliveCount--
					changed = true
					break
				}
			}
		}
		if !changed {
			break
		}
	}
	if aliveCount == 0 {
		return true
	}
	if aliveCount == 1 {
		return true // a single remaining edge is an ear of itself
	}
	return false
}

func containedIn(a, b map[string]bool) bool {
	if len(a) > len(b) {
		return false
	}
	for v := range a {
		if !b[v] {
			return false
		}
	}
	return true
}

// TreeSignature returns a canonical one-line rendering of the tree
// structure, e.g. "x1(x2(x3,x5),x4)" — children sorted by variable name.
// Used by tests to compare trees against the paper's figures without
// depending on child order.
func TreeSignature(t *Tree) string {
	var rec func(n int) string
	rec = func(n int) string {
		node := t.Nodes[n]
		if len(node.Children) == 0 {
			return node.Var
		}
		parts := make([]string, 0, len(node.Children))
		for _, c := range node.Children {
			parts = append(parts, rec(c))
		}
		sort.Strings(parts)
		return node.Var + "(" + strings.Join(parts, ",") + ")"
	}
	if len(t.Nodes) == 0 {
		return ""
	}
	return rec(0)
}
