package qtree

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"dyncq/internal/cq"
)

var (
	qSET     = cq.MustParse("Q(x,y) :- S(x), E(x,y), T(y)")
	qSETBool = cq.MustParse("Q() :- S(x), E(x,y), T(y)")
	qET      = cq.MustParse("Q(x) :- E(x,y), T(y)")
	qETFreeY = cq.MustParse("Q(y) :- E(x,y), T(y)")
	qETJoin  = cq.MustParse("Q(x,y) :- E(x,y), T(y)")
	qETBool  = cq.MustParse("Q() :- E(x,y), T(y)")
	qEx61    = cq.MustParse("Q(x,y,z,yp,zp) :- R(x,y,z), R(x,y,zp), E(x,y), E(x,yp), S(x,y,z)")
	qFig1    = cq.MustParse("Q(x1,x2,x3) :- E(x1,x2), R(x4,x1,x2,x1), R(x5,x3,x2,x1)")
	qLoops   = cq.MustParse("Q() :- E(x,x), E(x,y), E(y,y)")
	qPhi1    = cq.MustParse("Q(x,y) :- E(x,x), E(x,y), E(y,y)")
	qPhi2    = cq.MustParse("Q(x,y,z1,z2) :- E(x,x), E(x,y), E(y,y), E(z1,z2)")
)

// TestFigure1 reproduces experiment E1: the paper's Figure 1 shows two
// q-trees for ϕ(x1,x2,x3) = ∃x4∃x5 (Ex1x2 ∧ Rx4x1x2x1 ∧ Rx5x3x2x1). Our
// deterministic builder emits the left tree (rooted at x1); the validator
// accepts both printed trees and rejects a corrupted variant.
func TestFigure1(t *testing.T) {
	tree, err := Build(qFig1)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(tree, qFig1); err != nil {
		t.Fatalf("built tree invalid: %v", err)
	}
	// Left tree of Figure 1: x1 → x2 → {x3 → x5, x4}.
	if sig := TreeSignature(tree); sig != "x1(x2(x3(x5),x4))" {
		t.Errorf("builder tree = %s, want x1(x2(x3(x5),x4))", sig)
	}
	// Right tree of Figure 1: x2 → x1 → {x3 → x5, x4}; construct by hand.
	right := manualTree(qFig1, "x2", map[string]string{
		"x1": "x2", "x3": "x1", "x4": "x1", "x5": "x3",
	})
	if err := Validate(right, qFig1); err != nil {
		t.Errorf("paper's right tree rejected: %v", err)
	}
	// Corrupted: x4 under x3 breaks condition (1) for atom R(x4,x1,x2,x1).
	bad := manualTree(qFig1, "x2", map[string]string{
		"x1": "x2", "x3": "x1", "x4": "x3", "x5": "x3",
	})
	if err := Validate(bad, qFig1); err == nil {
		t.Error("corrupted tree accepted")
	}
}

// TestFigure2 reproduces experiment E2: the q-tree of Example 6.1's query
// as shown in Figure 2, with document order x, y, z, z', y' (free children
// first, ties by first occurrence) as used by Table 1.
func TestFigure2(t *testing.T) {
	tree, err := Build(qEx61)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(tree, qEx61); err != nil {
		t.Fatal(err)
	}
	if sig := TreeSignature(tree); sig != "x(y(z,zp),yp)" {
		t.Errorf("tree = %s, want x(y(z,zp),yp)", sig)
	}
	var docOrder []string
	for _, n := range tree.Nodes {
		docOrder = append(docOrder, n.Var)
	}
	if got := strings.Join(docOrder, ","); got != "x,y,z,zp,yp" {
		t.Errorf("document order = %s, want x,y,z,zp,yp", got)
	}
	if tree.FreeCount != 5 {
		t.Errorf("FreeCount = %d, want 5 (join query)", tree.FreeCount)
	}
}

// manualTree builds a Tree from a root variable and a parent map, for
// validator tests. Free flags are taken from q.
func manualTree(q *cq.Query, root string, parentOf map[string]string) *Tree {
	t := &Tree{VarNode: map[string]int{}}
	t.Nodes = append(t.Nodes, Node{Var: root, Free: q.IsFree(root), Parent: -1, Depth: 0})
	t.VarNode[root] = 0
	// Insert nodes whose parents are present until done.
	for len(t.VarNode) < len(parentOf)+1 {
		progress := false
		for v, p := range parentOf {
			if _, done := t.VarNode[v]; done {
				continue
			}
			pi, ok := t.VarNode[p]
			if !ok {
				continue
			}
			idx := len(t.Nodes)
			t.Nodes = append(t.Nodes, Node{Var: v, Free: q.IsFree(v), Parent: pi, Depth: t.Nodes[pi].Depth + 1})
			t.VarNode[v] = idx
			t.Nodes[pi].Children = append(t.Nodes[pi].Children, idx)
			progress = true
		}
		if !progress {
			panic("manualTree: cyclic or disconnected parent map")
		}
	}
	for _, n := range t.Nodes {
		if n.Free {
			t.FreeCount++
		}
	}
	return t
}

// TestPaperTaxonomy is experiment E13: the classification of every query
// the paper discusses explicitly in Sections 3 and 7.
func TestPaperTaxonomy(t *testing.T) {
	cases := []struct {
		name string
		q    *cq.Query
		want func(c Classification) string // returns "" if OK
	}{
		{"ϕS-E-T", qSET, func(c Classification) string {
			switch {
			case c.QHierarchical:
				return "must not be q-hierarchical"
			case c.Hierarchical:
				return "must not be hierarchical (Koutris–Suciu)"
			case !c.HierarchicalFO:
				return "must be hierarchical (Fink–Olteanu)"
			case !c.FreeConnex:
				return "must be free-connex (static setting is easy)"
			case c.TractableEnumeration() || c.TractableCounting() || c.TractableAnswering():
				return "all three dynamic tasks must be hard"
			}
			return ""
		}},
		{"ϕ'S-E-T", qSETBool, func(c Classification) string {
			switch {
			case c.QHierarchical:
				return "must not be q-hierarchical"
			case c.TractableAnswering():
				return "Boolean answering must be hard (Lemma 5.3)"
			}
			return ""
		}},
		{"ϕE-T", qET, func(c Classification) string {
			switch {
			case !c.Hierarchical:
				return "must be hierarchical"
			case c.QHierarchical:
				return "must not be q-hierarchical (violates (ii))"
			case !c.FreeConnex:
				return "must be free-connex"
			case c.TractableEnumeration():
				return "enumeration must be hard (Lemma 5.4)"
			case c.TractableCounting():
				return "counting must be hard (Lemma 5.5)"
			case !c.TractableAnswering():
				return "Boolean version is q-hierarchical, answering easy"
			}
			return ""
		}},
		{"ϕE-T variant ∃x", qETFreeY, func(c Classification) string {
			if !c.QHierarchical {
				return "must be q-hierarchical (Section 3)"
			}
			return ""
		}},
		{"ϕE-T variant join", qETJoin, func(c Classification) string {
			if !c.QHierarchical {
				return "must be q-hierarchical (Section 3)"
			}
			return ""
		}},
		{"ϕE-T variant Boolean", qETBool, func(c Classification) string {
			if !c.QHierarchical {
				return "must be q-hierarchical (Section 3)"
			}
			return ""
		}},
		{"∃x∃y(Exx∧Exy∧Eyy)", qLoops, func(c Classification) string {
			switch {
			case c.QHierarchical:
				return "must not be q-hierarchical"
			case !c.CoreQHierarchical:
				return "core ∃x Exx must be q-hierarchical"
			case !c.TractableAnswering():
				return "answering must be easy via the core"
			}
			return ""
		}},
		{"ϕ1(x,y)", qPhi1, func(c Classification) string {
			switch {
			case c.QHierarchical:
				return "must not be q-hierarchical"
			case c.CoreQHierarchical:
				return "ϕ1 is its own (non-q-hierarchical) core"
			case c.TractableCounting():
				return "counting must be hard (§5.4 discussion)"
			case !c.TractableAnswering():
				return "Boolean core is ∃x Exx: answering easy"
			}
			return ""
		}},
		{"ϕ2(x,y,z1,z2)", qPhi2, func(c Classification) string {
			if c.QHierarchical {
				return "ϕ2 is not q-hierarchical (Section 7)"
			}
			return ""
		}},
		{"Example 6.1", qEx61, func(c Classification) string {
			if !c.QHierarchical || !c.TractableEnumeration() {
				return "must be q-hierarchical"
			}
			return ""
		}},
		{"Figure 1", qFig1, func(c Classification) string {
			if !c.QHierarchical {
				return "must be q-hierarchical"
			}
			return ""
		}},
	}
	for _, tc := range cases {
		c := Classify(tc.q)
		if msg := tc.want(c); msg != "" {
			t.Errorf("%s (%s): %s\n%s", tc.name, tc.q, msg, c)
		}
	}
}

func TestBuildRejectsNonQHierarchical(t *testing.T) {
	for _, q := range []*cq.Query{qSET, qSETBool, qET, qPhi1} {
		_, err := BuildForest(q)
		if err == nil {
			t.Errorf("BuildForest(%s) succeeded, want ErrNotQHierarchical", q)
			continue
		}
		if !errors.Is(err, ErrNotQHierarchical) {
			t.Errorf("BuildForest(%s) error %v does not wrap ErrNotQHierarchical", q, err)
		}
	}
}

func TestBuildRequiresConnected(t *testing.T) {
	q := cq.MustParse("Q(x,u) :- E(x), F(u)")
	if _, err := Build(q); err == nil {
		t.Error("Build accepted a disconnected query")
	}
	forest, err := BuildForest(q)
	if err != nil || len(forest) != 2 {
		t.Errorf("BuildForest: %v, %d trees", err, len(forest))
	}
}

func TestBuildSingleVariable(t *testing.T) {
	q := cq.MustParse("Q(x) :- E(x,x)")
	tree, err := Build(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Nodes) != 1 || tree.Nodes[0].Var != "x" {
		t.Errorf("tree = %v", tree.Nodes)
	}
	if err := Validate(tree, q); err != nil {
		t.Error(err)
	}
}

func TestPathVars(t *testing.T) {
	tree, err := Build(qEx61)
	if err != nil {
		t.Fatal(err)
	}
	z := tree.VarNode["z"]
	if got := strings.Join(tree.PathVars(z), ","); got != "x,y,z" {
		t.Errorf("PathVars(z) = %s", got)
	}
}

func TestTreeString(t *testing.T) {
	tree, err := Build(qEx61)
	if err != nil {
		t.Fatal(err)
	}
	s := tree.String()
	for _, want := range []string{"x (free)", "├─ ", "└─ "} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestAcyclicity(t *testing.T) {
	cases := []struct {
		q       string
		acyclic bool
	}{
		{"Q() :- E(x,y), E2(y,z), E3(z,x)", false},       // triangle
		{"Q() :- E(x,y), E2(y,z), E3(z,w)", true},        // path
		{"Q() :- S(x), E(x,y), T(y)", true},              // ϕS-E-T body
		{"Q() :- R(x,y,z), S(y,z,w), T(z,w,x)", false},   // 3-cycle of triples
		{"Q() :- R(x,y,z), S(x,y), T(y,z)", true},        // ear-reducible
		{"Q() :- E(x,y), F(y,z), G(z,u), H(u,y)", false}, // cycle y-z-u
		{"Q() :- E(x,x)", true},
	}
	for _, c := range cases {
		q := cq.MustParse(c.q)
		if got := IsAcyclic(q); got != c.acyclic {
			t.Errorf("IsAcyclic(%s) = %v, want %v", c.q, got, c.acyclic)
		}
	}
}

func TestFreeConnex(t *testing.T) {
	cases := []struct {
		q  string
		fc bool
	}{
		// Path with endpoints free: the classic non-free-connex example.
		{"Q(x,z) :- E(x,y), F(y,z)", false},
		{"Q(x,y) :- E(x,y), F(y,z)", true},
		{"Q(x) :- E(x,y), T(y)", true},             // ϕE-T
		{"Q(x,y) :- S(x), E(x,y), T(y)", true},     // ϕS-E-T
		{"Q() :- E(x,y), E2(y,z), E3(z,x)", false}, // cyclic
	}
	for _, c := range cases {
		q := cq.MustParse(c.q)
		if got := IsFreeConnex(q); got != c.fc {
			t.Errorf("IsFreeConnex(%s) = %v, want %v", c.q, got, c.fc)
		}
	}
}

// TestQHierarchicalSubsetOfFreeConnex spot-checks the paper's claim that
// q-hierarchical CQs are a proper subclass of free-connex CQs.
func TestQHierarchicalSubsetOfFreeConnex(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	properWitness := false
	for i := 0; i < 500; i++ {
		q := randomQuery(rng)
		if IsQHierarchical(q) && !IsFreeConnex(q) {
			t.Fatalf("q-hierarchical but not free-connex: %s", q)
		}
		if !IsQHierarchical(q) && IsFreeConnex(q) {
			properWitness = true
		}
	}
	if !properWitness {
		t.Error("no witness for properness found in 500 random queries")
	}
}

// TestBuildMatchesDefinition is the central property test: the q-tree
// based decision procedure agrees with the brute-force Definition 3.1
// check on random queries, and every built tree passes the independent
// Definition 4.1 validator.
func TestBuildMatchesDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	agree := 0
	for i := 0; i < 3000; i++ {
		q := randomQuery(rng)
		want := q.IsQHierarchicalByDefinition()
		forest, err := BuildForest(q)
		got := err == nil
		if got != want {
			t.Fatalf("disagreement on %s: q-tree %v, definition %v (err: %v)", q, got, want, err)
		}
		if got {
			agree++
			comps := q.Components()
			for j, tree := range forest {
				if verr := Validate(tree, comps[j]); verr != nil {
					t.Fatalf("built tree for %s fails validation: %v", comps[j], verr)
				}
			}
		}
	}
	if agree == 0 || agree == 3000 {
		t.Errorf("degenerate sample: %d/3000 q-hierarchical", agree)
	}
}

// randomQuery generates a small arbitrary CQ (not necessarily
// q-hierarchical): up to 5 variables, up to 4 atoms of arity up to 3,
// random free set.
func randomQuery(rng *rand.Rand) *cq.Query {
	varPool := []string{"a", "b", "c", "d", "e"}
	nVars := 1 + rng.Intn(len(varPool))
	vars := varPool[:nVars]
	nAtoms := 1 + rng.Intn(4)
	q := &cq.Query{Name: "Q"}
	used := map[string]bool{}
	for i := 0; i < nAtoms; i++ {
		arity := 1 + rng.Intn(3)
		args := make([]string, arity)
		for j := range args {
			args[j] = vars[rng.Intn(nVars)]
			used[args[j]] = true
		}
		// Random relation name: reuse allowed (self-joins) but arity must
		// match; name relations by arity to keep schemas consistent.
		rel := string(rune('R'+rng.Intn(3))) + string(rune('0'+arity))
		q.Atoms = append(q.Atoms, cq.Atom{Rel: rel, Args: args})
	}
	for _, v := range vars {
		if used[v] && rng.Intn(2) == 0 {
			q.Head = append(q.Head, v)
		}
	}
	if err := q.Validate(); err != nil {
		panic(err)
	}
	return q
}

func TestClassificationString(t *testing.T) {
	s := Classify(qET).String()
	if !strings.Contains(s, "q-hierarchical: no") || !strings.Contains(s, "free-connex: yes") {
		t.Errorf("classification rendering wrong:\n%s", s)
	}
}
