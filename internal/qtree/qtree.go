// Package qtree implements the tree-like characterisation of
// q-hierarchical conjunctive queries from Section 4 of the paper.
//
// A q-tree for a connected CQ ϕ (Definition 4.1) is a rooted directed tree
// T on vars(ϕ) such that (1) for every atom ψ the set vars(ψ) is a
// directed path in T starting at the root, and (2) if free(ϕ) ≠ ∅ then
// free(ϕ) is a connected subset of T containing the root. Lemma 4.2: ϕ is
// q-hierarchical iff every connected component has a q-tree, and a q-tree
// is computable in polynomial time. The construction below follows
// Claim 4.3: repeatedly pick a variable contained in every atom (preferring
// free variables), make it the root, strip it, and recurse on the connected
// components of the rest.
//
// The package also classifies queries along the taxonomy discussed in
// Sections 1.2 and 3: hierarchical (three variants), acyclic (GYO
// reduction), free-connex acyclic, q-hierarchical, and the q-hierarchicality
// of homomorphic cores that Theorems 3.4 and 3.5 hinge on.
package qtree

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"dyncq/internal/cq"
)

// ErrNotQHierarchical is wrapped by Build/BuildForest errors when the
// query is not q-hierarchical.
var ErrNotQHierarchical = errors.New("query is not q-hierarchical")

// Node is a q-tree node; it carries one variable of the query.
type Node struct {
	Var      string
	Free     bool
	Parent   int   // index of parent node, -1 for the root
	Children []int // child node indices in document order (free first)
	Depth    int   // root has depth 0
}

// Tree is a q-tree for one connected component. Nodes are stored in
// document order: pre-order, visiting free children before quantified
// ones, so the free nodes form a prefix Nodes[:FreeCount] (the subtree T'
// used by the enumeration procedure of Section 6.3).
type Tree struct {
	Nodes     []Node
	FreeCount int            // number of free nodes (prefix length)
	VarNode   map[string]int // variable → node index
}

// Root returns the root node index (always 0).
func (t *Tree) Root() int { return 0 }

// Path returns the node indices on the path from the root to node v,
// inclusive — the paper's path[v].
func (t *Tree) Path(v int) []int {
	var rev []int
	for u := v; u != -1; u = t.Nodes[u].Parent {
		rev = append(rev, u)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// PathVars returns the variables on path[v] in root-to-v order.
func (t *Tree) PathVars(v int) []string {
	p := t.Path(v)
	out := make([]string, len(p))
	for i, u := range p {
		out[i] = t.Nodes[u].Var
	}
	return out
}

// String renders the tree in an indented ASCII form, e.g.
//
//	x (free)
//	├─ y (free)
//	│  └─ z
//	└─ y'
func (t *Tree) String() string {
	var b strings.Builder
	var rec func(n int, prefix string, last bool, root bool)
	rec = func(n int, prefix string, last bool, root bool) {
		node := t.Nodes[n]
		if root {
			b.WriteString(node.Var)
		} else {
			b.WriteString(prefix)
			if last {
				b.WriteString("└─ ")
			} else {
				b.WriteString("├─ ")
			}
			b.WriteString(node.Var)
		}
		if node.Free {
			b.WriteString(" (free)")
		}
		b.WriteByte('\n')
		childPrefix := prefix
		if !root {
			if last {
				childPrefix += "   "
			} else {
				childPrefix += "│  "
			}
		}
		for i, c := range node.Children {
			rec(c, childPrefix, i == len(node.Children)-1, false)
		}
	}
	if len(t.Nodes) > 0 {
		rec(0, "", true, true)
	}
	return b.String()
}

// Build constructs a q-tree for a connected conjunctive query, following
// the inductive construction in the proof of Lemma 4.2. It returns an
// error wrapping ErrNotQHierarchical if none exists. The choice of root at
// each step is deterministic: among the candidate variables (contained in
// every atom of the current sub-hypergraph, free preferred), the one whose
// first occurrence in the query is earliest wins; sub-components are
// ordered by earliest first occurrence as well, with components containing
// free variables first. This reproduces the trees printed in the paper's
// Figures 1 and 2.
func Build(q *cq.Query) (*Tree, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if !q.IsConnected() {
		return nil, fmt.Errorf("qtree.Build: query %s is not connected; use BuildForest", q)
	}
	// Variable order of first occurrence, for deterministic tie-breaks.
	order := make(map[string]int)
	for i, v := range q.Vars() {
		order[v] = i
	}
	// Hyperedges: distinct-variable sets of the atoms.
	var edges [][]string
	for _, a := range q.Atoms {
		edges = append(edges, a.Vars())
	}
	free := make(map[string]bool)
	for _, h := range q.Head {
		free[h] = true
	}

	t := &Tree{VarNode: make(map[string]int)}
	if err := build(t, edges, q.Vars(), free, order, -1, 0); err != nil {
		return nil, fmt.Errorf("query %s: %w", q, err)
	}
	// Renumber into document order (pre-order, free children first).
	t = t.renumber()
	return t, nil
}

// build recursively constructs the subtree for the sub-hypergraph (edges,
// vars), attaching it under parent at the given depth. Nodes are appended
// to t in construction order; renumber fixes document order afterwards.
func build(t *Tree, edges [][]string, vars []string, free map[string]bool, order map[string]int, parent, depth int) error {
	if len(vars) == 0 {
		return nil
	}
	// S: variables contained in every edge.
	inAll := make(map[string]int)
	for _, e := range edges {
		for _, v := range e {
			inAll[v]++
		}
	}
	var candidates []string
	for _, v := range vars {
		if inAll[v] == len(edges) {
			candidates = append(candidates, v)
		}
	}
	if len(candidates) == 0 {
		return fmt.Errorf("%w: no variable occurs in every atom of component {%s}",
			ErrNotQHierarchical, strings.Join(vars, ","))
	}
	anyFree := false
	for _, v := range vars {
		if free[v] {
			anyFree = true
			break
		}
	}
	var pool []string
	if anyFree {
		for _, v := range candidates {
			if free[v] {
				pool = append(pool, v)
			}
		}
		if len(pool) == 0 {
			return fmt.Errorf("%w: component {%s} has free variables but no free variable occurs in every atom",
				ErrNotQHierarchical, strings.Join(vars, ","))
		}
	} else {
		pool = candidates
	}
	root := pool[0]
	for _, v := range pool[1:] {
		if order[v] < order[root] {
			root = v
		}
	}

	idx := len(t.Nodes)
	t.Nodes = append(t.Nodes, Node{Var: root, Free: free[root], Parent: parent, Depth: depth})
	t.VarNode[root] = idx
	if parent >= 0 {
		t.Nodes[parent].Children = append(t.Nodes[parent].Children, idx)
	}

	// Remove root from every edge; drop empty edges; recurse on connected
	// components of the remainder.
	var rest [][]string
	for _, e := range edges {
		var ne []string
		for _, v := range e {
			if v != root {
				ne = append(ne, v)
			}
		}
		if len(ne) > 0 {
			rest = append(rest, ne)
		}
	}
	var restVars []string
	for _, v := range vars {
		if v != root {
			restVars = append(restVars, v)
		}
	}
	comps := components(rest, restVars)
	// Order components: free-containing first, then by earliest variable.
	sort.SliceStable(comps, func(i, j int) bool {
		fi, fj := comps[i].hasFree(free), comps[j].hasFree(free)
		if fi != fj {
			return fi
		}
		return comps[i].minOrder(order) < comps[j].minOrder(order)
	})
	for _, c := range comps {
		if err := build(t, c.edges, c.vars, free, order, idx, depth+1); err != nil {
			return err
		}
	}
	return nil
}

type component struct {
	edges [][]string
	vars  []string
}

func (c component) hasFree(free map[string]bool) bool {
	for _, v := range c.vars {
		if free[v] {
			return true
		}
	}
	return false
}

func (c component) minOrder(order map[string]int) int {
	m := int(^uint(0) >> 1)
	for _, v := range c.vars {
		if order[v] < m {
			m = order[v]
		}
	}
	return m
}

// components splits the sub-hypergraph into connected components.
// Variables not occurring in any edge are impossible here: every variable
// of a valid query occurs in some atom, and edges only shrink by removing
// the chosen root.
func components(edges [][]string, vars []string) []component {
	parent := make(map[string]string, len(vars))
	for _, v := range vars {
		parent[v] = v
	}
	var find func(string) string
	find = func(v string) string {
		if parent[v] == v {
			return v
		}
		parent[v] = find(parent[v])
		return parent[v]
	}
	for _, e := range edges {
		for _, v := range e[1:] {
			ra, rb := find(e[0]), find(v)
			if ra != rb {
				parent[ra] = rb
			}
		}
	}
	byRoot := make(map[string]*component)
	var roots []string
	for _, v := range vars {
		r := find(v)
		c := byRoot[r]
		if c == nil {
			c = &component{}
			byRoot[r] = c
			roots = append(roots, r)
		}
		c.vars = append(c.vars, v)
	}
	for _, e := range edges {
		c := byRoot[find(e[0])]
		c.edges = append(c.edges, e)
	}
	out := make([]component, 0, len(roots))
	for _, r := range roots {
		out = append(out, *byRoot[r])
	}
	return out
}

// renumber rewrites the tree into document order: pre-order traversal
// visiting free children before quantified children. Within each class
// the original (construction) order is kept.
func (t *Tree) renumber() *Tree {
	nt := &Tree{VarNode: make(map[string]int, len(t.Nodes))}
	var rec func(old, parent int)
	rec = func(old, parent int) {
		n := t.Nodes[old]
		idx := len(nt.Nodes)
		nt.Nodes = append(nt.Nodes, Node{Var: n.Var, Free: n.Free, Parent: parent, Depth: n.Depth})
		nt.VarNode[n.Var] = idx
		if parent >= 0 {
			nt.Nodes[parent].Children = append(nt.Nodes[parent].Children, idx)
		}
		var freeKids, boundKids []int
		for _, c := range n.Children {
			if t.Nodes[c].Free {
				freeKids = append(freeKids, c)
			} else {
				boundKids = append(boundKids, c)
			}
		}
		for _, c := range freeKids {
			rec(c, idx)
		}
		for _, c := range boundKids {
			rec(c, idx)
		}
	}
	if len(t.Nodes) > 0 {
		rec(0, -1)
	}
	for _, n := range nt.Nodes {
		if n.Free {
			nt.FreeCount++
		}
	}
	return nt
}

// BuildForest builds one q-tree per connected component of q, in component
// order. It fails with an error wrapping ErrNotQHierarchical if any
// component has no q-tree (Lemma 4.2: q is q-hierarchical iff all
// components have q-trees).
func BuildForest(q *cq.Query) ([]*Tree, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	comps := q.Components()
	out := make([]*Tree, 0, len(comps))
	for _, c := range comps {
		t, err := Build(c)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// IsQHierarchical decides whether q is q-hierarchical, via Lemma 4.2.
func IsQHierarchical(q *cq.Query) bool {
	_, err := BuildForest(q)
	return err == nil
}

// Validate checks that t is a q-tree for the connected query q per
// Definition 4.1: the nodes are exactly vars(q); every atom's variable
// set is a root-started directed path; and the free variables form a
// connected subset containing the root (when nonempty). It is independent
// of Build and is used to cross-check it, and to verify the paper's
// Figure 1 trees.
func Validate(t *Tree, q *cq.Query) error {
	vars := q.Vars()
	if len(t.Nodes) != len(vars) {
		return fmt.Errorf("tree has %d nodes, query has %d variables", len(t.Nodes), len(vars))
	}
	for _, v := range vars {
		if _, ok := t.VarNode[v]; !ok {
			return fmt.Errorf("variable %s missing from tree", v)
		}
	}
	// Structural sanity: parent/child consistency, single root.
	for i, n := range t.Nodes {
		if n.Parent == -1 && i != 0 {
			return fmt.Errorf("node %d (%s) is a second root", i, n.Var)
		}
		for _, c := range n.Children {
			if t.Nodes[c].Parent != i {
				return fmt.Errorf("child link %d→%d not mirrored", i, c)
			}
		}
	}
	// Condition (1): each atom's variables form a root path.
	for _, a := range q.Atoms {
		avs := a.Vars()
		deepest := avs[0]
		for _, v := range avs[1:] {
			if t.Nodes[t.VarNode[v]].Depth > t.Nodes[t.VarNode[deepest]].Depth {
				deepest = v
			}
		}
		path := t.PathVars(t.VarNode[deepest])
		if len(path) != len(avs) {
			return fmt.Errorf("atom %s: vars do not form a root path (path %v)", a, path)
		}
		onPath := make(map[string]bool, len(path))
		for _, v := range path {
			onPath[v] = true
		}
		for _, v := range avs {
			if !onPath[v] {
				return fmt.Errorf("atom %s: variable %s not on root path %v", a, v, path)
			}
		}
	}
	// Condition (2): free variables connected and containing the root.
	if len(q.Head) > 0 {
		if !t.Nodes[0].Free {
			return fmt.Errorf("free variables exist but root %s is quantified", t.Nodes[0].Var)
		}
		for i, n := range t.Nodes {
			if n.Free != q.IsFree(n.Var) {
				return fmt.Errorf("node %s free flag %v disagrees with query", n.Var, n.Free)
			}
			if n.Free && i != 0 && !t.Nodes[n.Parent].Free {
				return fmt.Errorf("free variable %s has quantified parent %s", n.Var, t.Nodes[n.Parent].Var)
			}
		}
	}
	return nil
}
