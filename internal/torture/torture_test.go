package torture

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"
)

// The harness flags. CI lanes drive them:
//
//	quick/deep PR lanes:  go test ./internal/torture -race -torture.seed=1
//	nightly soak:         go test ./internal/torture -race -torture.duration=10m \
//	                        -torture.failure-file=torture-failures.txt
//
// Any failure prints (and, for the soak, records) the exact one-command
// repro line, so a broken nightly is reproducible locally from the
// uploaded artifact alone.
var (
	tortureSeed = flag.Int64("torture.seed", 1,
		"base seed for the torture matrix; every failure names the exact seed to replay")
	tortureDuration = flag.Duration("torture.duration", 0,
		"soak budget for TestTortureSoak; 0 runs the matrix once and skips the soak")
	tortureFailures = flag.String("torture.failure-file", "",
		"file the soak writes repro lines to on failure (the CI failure-seed artifact)")
)

// TestTorture runs the whole category matrix once at -torture.seed.
// Every scenario is an independently addressable subtest:
//
//	go test ./internal/torture -race -run 'TestTorture/eval/star-oracle$' -torture.seed=7
func TestTorture(t *testing.T) {
	for _, cat := range Categories() {
		scenarios := ByCategory(cat)
		if len(scenarios) == 0 {
			t.Fatalf("category %q has no scenarios", cat)
		}
		t.Run(cat, func(t *testing.T) {
			for _, sc := range scenarios {
				sc := sc
				t.Run(sc.Name, func(t *testing.T) {
					t.Parallel()
					if err := sc.Run(*tortureSeed); err != nil {
						t.Fatalf("%v\nrepro: %s", err, ReproLine(sc, *tortureSeed))
					}
				})
			}
		})
	}
}

// TestTortureSeedIndependence replays two scenarios per category at a
// handful of extra seeds — the cheap guard that no scenario accidentally
// hard-codes behaviour only seed 1 exhibits.
func TestTortureSeedIndependence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed replay skipped in -short")
	}
	for _, cat := range Categories() {
		scenarios := ByCategory(cat)
		if len(scenarios) > 2 {
			scenarios = scenarios[:2]
		}
		for _, sc := range scenarios {
			sc := sc
			t.Run(fmt.Sprintf("%s/%s", sc.Category, sc.Name), func(t *testing.T) {
				t.Parallel()
				for _, seed := range []int64{2, 31337, -9} {
					if err := sc.Run(seed); err != nil {
						t.Fatalf("%v\nrepro: %s", err, ReproLine(sc, seed))
					}
				}
			})
		}
	}
}

// TestTortureSoak is the nightly entry point: rounds of the full matrix
// at consecutive seeds until -torture.duration is spent. It is skipped
// entirely at the default duration 0 so PR lanes pay nothing for it.
func TestTortureSoak(t *testing.T) {
	if *tortureDuration <= 0 {
		t.Skip("soak disabled; pass -torture.duration to enable")
	}
	failures := Soak(All(), *tortureSeed, *tortureDuration, t.Logf)
	if len(failures) == 0 {
		return
	}
	var lines []string
	for _, f := range failures {
		lines = append(lines, f.Repro())
		t.Errorf("%s/%s seed=%d: %v\nrepro: %s", f.Scenario.Category, f.Scenario.Name, f.Seed, f.Err, f.Repro())
	}
	if *tortureFailures != "" {
		body := strings.Join(lines, "\n") + "\n"
		if err := os.WriteFile(*tortureFailures, []byte(body), 0o644); err != nil {
			t.Errorf("writing failure file %s: %v", *tortureFailures, err)
		} else {
			t.Logf("wrote %d repro line(s) to %s", len(lines), *tortureFailures)
		}
	}
}

// TestReproLineMatchesSubtests pins the repro-line contract: the -run
// selector it prints must actually select the scenario's subtest.
func TestReproLineMatchesSubtests(t *testing.T) {
	seen := make(map[string]bool)
	for _, sc := range All() {
		if sc.Name == "" || sc.Brief == "" || sc.Run == nil {
			t.Fatalf("scenario %+v is incomplete", sc)
		}
		if strings.ContainsAny(sc.Name, " /") || strings.ContainsAny(sc.Category, " /") {
			t.Fatalf("scenario %s/%s: names must be -run-selector safe", sc.Category, sc.Name)
		}
		key := sc.Category + "/" + sc.Name
		if seen[key] {
			t.Fatalf("duplicate scenario %s", key)
		}
		seen[key] = true
		line := ReproLine(sc, 42)
		want := fmt.Sprintf("TestTorture/%s/%s$", sc.Category, sc.Name)
		if !strings.Contains(line, want) || !strings.Contains(line, "-torture.seed=42") {
			t.Fatalf("repro line %q does not target %q", line, want)
		}
	}
}

// TestSoakBudgetZeroRunsMatrixOnce pins the soak contract PR lanes and
// the CLI rely on: a zero budget still covers the matrix exactly once.
func TestSoakBudgetZeroRunsMatrixOnce(t *testing.T) {
	runs := 0
	probe := []Scenario{
		{Category: "eval", Name: "a", Brief: "x", Run: func(int64) error { runs++; return nil }},
		{Category: "eval", Name: "b", Brief: "x", Run: func(int64) error { runs++; return fmt.Errorf("boom") }},
	}
	failures := Soak(probe, 7, 0, nil)
	if runs != 2 {
		t.Fatalf("zero-budget soak ran %d scenarios, want 2", runs)
	}
	if len(failures) != 1 || failures[0].Seed != 7 || failures[0].Scenario.Name != "b" {
		t.Fatalf("failures = %+v, want one failure for b at seed 7", failures)
	}
	if got := failures[0].Repro(); !strings.Contains(got, "TestTorture/eval/b$") {
		t.Fatalf("failure repro %q does not name the scenario", got)
	}
}

// TestSoakRunsMultipleRounds pins that a positive budget replays the
// matrix at consecutive seeds until the budget is spent.
func TestSoakRunsMultipleRounds(t *testing.T) {
	var seeds []int64
	probe := []Scenario{{Category: "eval", Name: "a", Brief: "x", Run: func(seed int64) error {
		seeds = append(seeds, seed)
		time.Sleep(2 * time.Millisecond)
		return nil
	}}}
	Soak(probe, 100, 20*time.Millisecond, nil)
	if len(seeds) < 2 {
		t.Fatalf("soak ran only %d rounds within budget", len(seeds))
	}
	for i, s := range seeds {
		if s != 100+int64(i) {
			t.Fatalf("round %d ran seed %d, want %d", i, s, 100+int64(i))
		}
	}
}
