package torture

import (
	"fmt"
	"net"
	"time"

	"dyncq/internal/server"
	"dyncq/internal/workload"
	"dyncq/pkg/dyncq"
)

// This file holds the server category: seeded multi-client sessions
// against the wire-protocol front door, checked against the same
// oracle as the in-process scenarios. All connections are net.Pipe —
// in-memory, synchronous, no real sockets — keeping the package's
// no-network rule: a scenario's verdict is a pure function of its
// seed. (The bounded drains below wait for events the protocol
// guarantees — one delta frame per committed version — so the waits
// bound patience, not the verdict.)

// serverHarness is one server plus its pipe-connected clients.
type serverHarness struct {
	srv     *server.Server
	clients []*server.Client
}

func newServerHarness(opt server.Options, nClients int) *serverHarness {
	h := &serverHarness{srv: server.New(opt)}
	for i := 0; i < nClients; i++ {
		cs, ss := net.Pipe()
		go h.srv.ServeConn(ss)
		h.clients = append(h.clients, server.NewClient(cs))
	}
	return h
}

func (h *serverHarness) close() {
	for _, c := range h.clients {
		c.Close()
	}
	h.srv.Close()
}

// drainAll reads c's delta stream in one pass until every named query
// has reached version target, returning frames and concatenated raw
// bytes per query. One pass matters: frames of the watched queries
// interleave on the connection, and a per-query drain would discard
// the others' frames.
func drainAll(c *server.Client, names []string, target uint64) (map[string][]server.Delta, map[string][]byte, error) {
	frames := make(map[string][]server.Delta, len(names))
	raw := make(map[string][]byte, len(names))
	pendings := make(map[string]bool, len(names))
	for _, n := range names {
		pendings[n] = true
	}
	deadline := time.After(30 * time.Second)
	for len(pendings) > 0 {
		select {
		case d, ok := <-c.Deltas():
			if !ok {
				return nil, nil, fmt.Errorf("delta stream closed before version %d (still pending: %v)", target, pendings)
			}
			if !pendings[d.Query] {
				continue
			}
			frames[d.Query] = append(frames[d.Query], d)
			raw[d.Query] = append(raw[d.Query], d.Raw...)
			if d.Version >= target {
				delete(pendings, d.Query)
			}
		case <-deadline:
			return nil, nil, fmt.Errorf("no frame at version %d within deadline (still pending: %v)", target, pendings)
		}
	}
	return frames, raw, nil
}

// drainTo is drainAll for a single query.
func drainTo(c *server.Client, name string, target uint64) ([]server.Delta, []byte, error) {
	frames, raw, err := drainAll(c, []string{name}, target)
	if err != nil {
		return nil, nil, err
	}
	return frames[name], raw[name], nil
}

// replayDeltas folds a delta sequence over a base tuple set.
func replayDeltas(base [][]dyncq.Value, frames []server.Delta, skipThrough uint64) (map[string]bool, error) {
	state := make(map[string]bool, len(base))
	for _, t := range base {
		state[fmt.Sprint(t)] = true
	}
	for _, d := range frames {
		if d.Resync {
			return nil, fmt.Errorf("unexpected resync at version %d", d.Version)
		}
		if d.Version <= skipThrough {
			continue
		}
		for _, t := range d.Added {
			k := fmt.Sprint(t)
			if state[k] {
				return nil, fmt.Errorf("version %d adds duplicate %v", d.Version, t)
			}
			state[k] = true
		}
		for _, t := range d.Removed {
			k := fmt.Sprint(t)
			if !state[k] {
				return nil, fmt.Errorf("version %d removes absent %v", d.Version, t)
			}
			delete(state, k)
		}
	}
	return state, nil
}

func matchState(state map[string]bool, want [][]dyncq.Value, where string) error {
	if len(state) != len(want) {
		return fmt.Errorf("%s: replayed state has %d tuples, want %d", where, len(state), len(want))
	}
	for _, t := range want {
		if !state[fmt.Sprint(t)] {
			return fmt.Errorf("%s: tuple %v missing from replayed state", where, t)
		}
	}
	return nil
}

func serverScenarios() []Scenario {
	return []Scenario{
		{
			Category: "server", Name: "multi-client-oracle",
			Brief: "two subscribers on separate connections see byte-identical delta streams matching the oracle",
			Run: func(seed int64) error {
				h := newServerHarness(server.Options{OutboxFrames: 4096}, 3)
				defer h.close()
				writer, subA, subB := h.clients[0], h.clients[1], h.clients[2]

				o := newOracle()
				for _, nq := range queryPool[:3] { // star (core), src (core), hard (ivm)
					if err := writer.Register(nq.name, nq.text); err != nil {
						return fmt.Errorf("register %s: %v", nq.name, err)
					}
					o.register(nq.name, mustParse(nq.text))
				}
				watch := []string{"star", "hard"}
				for _, c := range []*server.Client{subA, subB} {
					for _, name := range watch {
						if _, err := c.Subscribe(name); err != nil {
							return fmt.Errorf("subscribe %s: %v", name, err)
						}
					}
				}
				baseA := make(map[string]*server.Snapshot)
				for _, name := range watch {
					snap, err := subA.Enumerate(name)
					if err != nil {
						return fmt.Errorf("enumerate %s: %v", name, err)
					}
					baseA[name] = snap
				}

				cfg := workload.TortureConfig{Seed: seed, Domain: 24, Updates: 1200, PDelete: 0.4, ZipfS: 1.2, ZipfV: 1}
				stream := cfg.Stream(tortureSchema)
				rng := rngFor(seed, "server-batches")
				var final uint64
				for i := 0; i < len(stream); {
					end := i + 1 + rng.Intn(80)
					if end > len(stream) {
						end = len(stream)
					}
					var err error
					if _, final, err = writer.ApplyBatch(stream[i:end]); err != nil {
						return fmt.Errorf("batch [%d:%d): %v", i, end, err)
					}
					o.apply(stream[i:end])
					i = end
				}

				framesA, rawA, err := drainAll(subA, watch, final)
				if err != nil {
					return fmt.Errorf("subscriber A: %v", err)
				}
				_, rawB, err := drainAll(subB, watch, final)
				if err != nil {
					return fmt.Errorf("subscriber B: %v", err)
				}
				for _, name := range watch {
					if string(rawA[name]) != string(rawB[name]) {
						return fmt.Errorf("%s: delta streams differ across subscribers (%d vs %d bytes)", name, len(rawA[name]), len(rawB[name]))
					}
					state, err := replayDeltas(baseA[name].Tuples, framesA[name], baseA[name].Version)
					if err != nil {
						return fmt.Errorf("%s: %v", name, err)
					}
					snap, err := subB.Enumerate(name)
					if err != nil {
						return fmt.Errorf("re-enumerate %s: %v", name, err)
					}
					if err := matchState(state, snap.Tuples, name); err != nil {
						return err
					}
				}
				// Engine-level oracle check on the served workspace.
				return o.check(h.srv.Workspace(), "final")
			},
		},
		{
			Category: "server", Name: "disconnect-mid-stream",
			Brief: "an abrupt subscriber disconnect mid-churn leaves the writer and surviving subscribers intact",
			Run: func(seed int64) error {
				h := newServerHarness(server.Options{OutboxFrames: 4096}, 3)
				defer h.close()
				writer, survivor, doomed := h.clients[0], h.clients[1], h.clients[2]

				o := newOracle()
				nq := queryPool[0]
				if err := writer.Register(nq.name, nq.text); err != nil {
					return err
				}
				o.register(nq.name, mustParse(nq.text))
				for _, c := range []*server.Client{survivor, doomed} {
					if _, err := c.Subscribe(nq.name); err != nil {
						return err
					}
				}
				base, err := survivor.Enumerate(nq.name)
				if err != nil {
					return err
				}

				cfg := workload.TortureConfig{Seed: seed, Domain: 20, Updates: 900, PDelete: 0.35, ZipfS: 1.2, ZipfV: 1}
				stream := cfg.Stream(tortureSchema)
				rng := rngFor(seed, "server-disconnect")
				cut := len(stream)/3 + rng.Intn(len(stream)/3)
				var final uint64
				killed := false
				for i := 0; i < len(stream); {
					end := i + 1 + rng.Intn(60)
					if end > len(stream) {
						end = len(stream)
					}
					if !killed && i >= cut {
						doomed.Close() // mid-stream, no goodbye
						killed = true
					}
					if _, final, err = writer.ApplyBatch(stream[i:end]); err != nil {
						return fmt.Errorf("batch after disconnect: %v", err)
					}
					o.apply(stream[i:end])
					i = end
				}

				frames, _, err := drainTo(survivor, nq.name, final)
				if err != nil {
					return fmt.Errorf("survivor: %v", err)
				}
				state, err := replayDeltas(base.Tuples, frames, base.Version)
				if err != nil {
					return err
				}
				snap, err := survivor.Enumerate(nq.name)
				if err != nil {
					return err
				}
				if err := matchState(state, snap.Tuples, nq.name); err != nil {
					return err
				}
				return o.check(h.srv.Workspace(), "final")
			},
		},
		{
			Category: "server", Name: "register-churn",
			Brief: "register/subscribe/unregister churn across clients keeps state and subscriptions consistent",
			Run: func(seed int64) error {
				h := newServerHarness(server.Options{OutboxFrames: 4096}, 2)
				defer h.close()
				admin, watcher := h.clients[0], h.clients[1]

				o := newOracle()
				cfg := workload.TortureConfig{Seed: seed, Domain: 16, Updates: 150, PDelete: 0.3, ZipfS: 1.2, ZipfV: 1}
				rng := rngFor(seed, "server-churn")
				for round := 0; round < 6; round++ {
					nq := queryPool[rng.Intn(len(queryPool))]
					if err := admin.Register(nq.name, nq.text); err != nil {
						return fmt.Errorf("round %d register %s: %v", round, nq.name, err)
					}
					o.register(nq.name, mustParse(nq.text))
					if _, err := watcher.Subscribe(nq.name); err != nil {
						return fmt.Errorf("round %d subscribe: %v", round, err)
					}
					base, err := watcher.Enumerate(nq.name)
					if err != nil {
						return err
					}
					stream := workload.TortureConfig{Seed: seed + int64(round), Domain: cfg.Domain,
						Updates: cfg.Updates, PDelete: cfg.PDelete, ZipfS: cfg.ZipfS, ZipfV: cfg.ZipfV}.Stream(tortureSchema)
					var final uint64
					if _, final, err = admin.ApplyBatch(stream); err != nil {
						return fmt.Errorf("round %d batch: %v", round, err)
					}
					o.apply(stream)
					frames, _, err := drainTo(watcher, nq.name, final)
					if err != nil {
						return fmt.Errorf("round %d: %v", round, err)
					}
					state, err := replayDeltas(base.Tuples, frames, base.Version)
					if err != nil {
						return fmt.Errorf("round %d: %v", round, err)
					}
					snap, err := watcher.Enumerate(nq.name)
					if err != nil {
						return err
					}
					if err := matchState(state, snap.Tuples, nq.name); err != nil {
						return fmt.Errorf("round %d: %v", round, err)
					}
					if err := o.check(h.srv.Workspace(), fmt.Sprintf("round %d", round)); err != nil {
						return err
					}
					// Unregister while still subscribed: the server must
					// sever the subscription so the NEXT round's
					// re-register + re-subscribe is not a duplicate.
					if err := admin.Unregister(nq.name); err != nil {
						return fmt.Errorf("round %d unregister: %v", round, err)
					}
					o.unregister(nq.name)
				}
				return nil
			},
		},
	}
}
